// PR-4 acceptance bench: materialized CSR meta-path projections and the
// parallel training-data sampler.
//
//   1. Projection build: sequential (1 worker) vs the pool's two-pass
//      count/fill build, with a row-by-row identity check.
//   2. Per-seed community search: finder-backed (meta-path BFS per node)
//      vs projection-backed (flat CSR rows) MultiPathKPCoreSearch.
//   3. End-to-end TrainingDataGenerator::Generate: sequential
//      finder-backed baseline vs 8-thread projection-backed run, with a
//      byte-identity check on the triples.
//
// Writes BENCH_pr4.json into the current working directory. Run from the
// repo root so the artifact lands next to the sources:
//
//   ./build/bench/bench_projection

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "kpcore/multi_path.h"
#include "metapath/meta_path.h"
#include "metapath/projection.h"
#include "sampling/training_data.h"

namespace {

using namespace kpef;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool SameProjection(const HomogeneousProjection& a,
                    const HomogeneousProjection& b) {
  if (a.NumNodes() != b.NumNodes() || a.NumEntries() != b.NumEntries()) {
    return false;
  }
  for (size_t i = 0; i < a.NumNodes(); ++i) {
    const auto ra = a.Neighbors(static_cast<int32_t>(i));
    const auto rb = b.Neighbors(static_cast<int32_t>(i));
    if (!std::equal(ra.begin(), ra.end(), rb.begin(), rb.end())) return false;
  }
  return true;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kError);
  const std::vector<const char*> kPathTexts = {"P-A-P", "P-T-P", "P-P",
                                               "P-V-P"};
  const size_t kBenchThreads = 8;

  const Dataset dataset = GenerateDataset(AminerProfile());
  std::vector<MetaPath> paths;
  for (const char* text : kPathTexts) {
    auto path = MetaPath::Parse(dataset.graph.schema(), text);
    KPEF_CHECK(path.ok());
    paths.push_back(*path);
  }

  ThreadPool one(1);
  ThreadPool wide(kBenchThreads);

  // 1. Projection build, per path: 1 worker vs kBenchThreads workers.
  struct BuildRow {
    const char* path;
    size_t entries = 0;
    size_t bytes = 0;
    double serial_seconds = 0.0;
    double pool_seconds = 0.0;
  };
  std::vector<BuildRow> builds;
  std::vector<HomogeneousProjection> projections;
  for (size_t p = 0; p < paths.size(); ++p) {
    BuildRow row;
    row.path = kPathTexts[p];
    ProjectionOptions serial_opts;
    serial_opts.pool = &one;
    auto start = Clock::now();
    const HomogeneousProjection serial =
        ProjectHomogeneous(dataset.graph, paths[p], serial_opts);
    row.serial_seconds = SecondsSince(start);
    ProjectionOptions pool_opts;
    pool_opts.pool = &wide;
    start = Clock::now();
    HomogeneousProjection parallel =
        ProjectHomogeneous(dataset.graph, paths[p], pool_opts);
    row.pool_seconds = SecondsSince(start);
    KPEF_CHECK(SameProjection(serial, parallel))
        << "projection build must be deterministic across pool sizes";
    row.entries = parallel.NumEntries();
    row.bytes = parallel.MemoryUsageBytes();
    builds.push_back(row);
    projections.push_back(std::move(parallel));
    std::printf("projection %-6s  entries %8zu  1 worker %.4fs  %zu workers %.4fs\n",
                row.path, row.entries, row.serial_seconds, kBenchThreads,
                row.pool_seconds);
  }

  // 2. Per-seed multi-path search, finder vs projection, over a spread of
  //    seeds (the projections above are already built — this isolates the
  //    per-search cost the sampler pays num_seeds times).
  const auto& papers = dataset.Papers();
  const int32_t kSearchK = 4;
  std::vector<NodeId> seeds;
  for (size_t i = 0; i < papers.size(); i += 23) seeds.push_back(papers[i]);
  size_t checksum = 0;
  auto start = Clock::now();
  for (NodeId seed : seeds) {
    checksum +=
        MultiPathKPCoreSearch(dataset.graph, paths, seed, kSearchK).core.size();
  }
  const double finder_search_s = SecondsSince(start);
  start = Clock::now();
  for (NodeId seed : seeds) {
    checksum += MultiPathKPCoreSearch(dataset.graph, projections, seed, kSearchK)
                    .core.size();
  }
  const double projection_search_s = SecondsSince(start);
  KPEF_CHECK(checksum > 0);
  const double per_seed_speedup = finder_search_s / projection_search_s;
  std::printf("search  %zu seeds  finder %.3fs  projection %.3fs  (%.2fx)\n",
              seeds.size(), finder_search_s, projection_search_s,
              per_seed_speedup);

  // 3. End-to-end Generate: the PR's acceptance number. Baseline is the
  //    pre-PR shape (sequential, per-seed finder BFS); the optimized run
  //    materializes projections and fans seeds out over 8 workers.
  TrainingDataGenerator generator(dataset.graph, paths, dataset.ids.paper);
  SamplingConfig baseline;
  baseline.k = kSearchK;
  baseline.use_projection = false;
  baseline.num_threads = 1;
  SamplingConfig optimized = baseline;
  optimized.use_projection = true;
  optimized.pool = &wide;
  optimized.num_threads = 0;

  start = Clock::now();
  const SamplingResult base_result = generator.Generate(baseline);
  const double generate_baseline_s = SecondsSince(start);
  start = Clock::now();
  const SamplingResult fast_result = generator.Generate(optimized);
  const double generate_fast_s = SecondsSince(start);
  const bool byte_identical = base_result.triples == fast_result.triples;
  KPEF_CHECK(byte_identical)
      << "Generate must be byte-identical across backends and thread counts";
  KPEF_CHECK(fast_result.used_projection);
  const double generate_speedup = generate_baseline_s / generate_fast_s;
  std::printf(
      "generate  %zu seeds %zu triples  sequential-finder %.3fs  "
      "%zu-thread-projection %.3fs  (%.2fx, byte-identical)\n",
      base_result.num_seeds, base_result.triples.size(), generate_baseline_s,
      kBenchThreads, generate_fast_s, generate_speedup);

  FILE* out = std::fopen("BENCH_pr4.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_pr4.json for writing\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"dataset\": {\"name\": \"%s\", \"papers\": %zu},\n"
               "  \"threads\": %zu,\n"
               "  \"projection_build\": [\n",
               dataset.config.name.c_str(), papers.size(), kBenchThreads);
  for (size_t i = 0; i < builds.size(); ++i) {
    const BuildRow& row = builds[i];
    std::fprintf(out,
                 "    {\"path\": \"%s\", \"entries\": %zu, \"bytes\": %zu, "
                 "\"serial_seconds\": %.4f, \"pool_seconds\": %.4f, "
                 "\"deterministic\": true}%s\n",
                 row.path, row.entries, row.bytes, row.serial_seconds,
                 row.pool_seconds, i + 1 < builds.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"per_seed_search\": {\n"
               "    \"seeds\": %zu, \"k\": %d,\n"
               "    \"finder_seconds\": %.4f,\n"
               "    \"projection_seconds\": %.4f,\n"
               "    \"speedup\": %.3f\n"
               "  },\n"
               "  \"generate_end_to_end\": {\n"
               "    \"seeds\": %zu, \"triples\": %zu,\n"
               "    \"sequential_finder_seconds\": %.4f,\n"
               "    \"parallel_projection_seconds\": %.4f,\n"
               "    \"projection_build_seconds\": %.4f,\n"
               "    \"projection_bytes\": %zu,\n"
               "    \"speedup\": %.3f,\n"
               "    \"byte_identical\": %s\n"
               "  }\n"
               "}\n",
               seeds.size(), kSearchK, finder_search_s, projection_search_s,
               per_seed_speedup, base_result.num_seeds,
               base_result.triples.size(), generate_baseline_s,
               generate_fast_s, fast_result.projection_build_seconds,
               fast_result.projection_bytes, generate_speedup,
               byte_identical ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_pr4.json\n");
  return 0;
}

// Figure 8: parameter sensitivity on the Aminer profile.
//   (a) sample ratio f in 10%..50%   (quality up then saturating; train
//       time ~linear in f)
//   (b) core size k in 2..9          (quality peaks mid-range; core search
//       cost grows with community size)
//   (c) top-m papers 50..max         (quality and latency rise with m)
//   (d) top-n experts 5..100         (P@n falls with n; latency rises)

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/timer.h"
#include "eval/metrics.h"

namespace {

using namespace kpef;
using namespace kpef::bench;

void SweepSampleRatio(const BenchDataset& data, const Evaluator& evaluator) {
  std::printf("(a) sample ratio f\n");
  std::printf("%6s %7s %7s %7s %10s %9s\n", "f", "MAP", "P@5", "P@10",
              "triples", "train(s)");
  for (double f : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    EngineConfig config = DefaultEngineConfig(data);
    config.seed_fraction = f;
    EngineBuildReport report;
    auto engine = BuildEngine(data, config, &report);
    const EvaluationResult r = evaluator.Evaluate(*engine, 20);
    std::printf("%5.0f%% %7.3f %7.3f %7.3f %10zu %9.2f\n", f * 100, r.map,
                r.p_at_5, r.p_at_10, report.sampling.triples.size(),
                report.training.train_seconds +
                    report.sampling.core_search_seconds);
  }
}

void SweepK(const BenchDataset& data, const Evaluator& evaluator) {
  std::printf("\n(b) core size k\n");
  std::printf("%4s %7s %7s %7s %12s %12s\n", "k", "MAP", "P@5", "P@10",
              "core-sec", "edges-scan");
  for (int32_t k = 2; k <= 9; ++k) {
    EngineConfig config = DefaultEngineConfig(data);
    config.k = k;
    EngineBuildReport report;
    auto engine = BuildEngine(data, config, &report);
    const EvaluationResult r = evaluator.Evaluate(*engine, 20);
    std::printf("%4d %7.3f %7.3f %7.3f %12.2f %12llu\n", k, r.map, r.p_at_5,
                r.p_at_10, report.sampling.core_search_seconds,
                static_cast<unsigned long long>(report.sampling.edges_scanned));
  }
}

void SweepTopM(const BenchDataset& data, const Evaluator& evaluator) {
  std::printf("\n(c) top-m papers\n");
  std::printf("%6s %7s %7s %7s %10s\n", "m", "MAP", "P@5", "P@10",
              "ms/query");
  EngineConfig config = DefaultEngineConfig(data);
  auto engine = BuildEngine(data, config);
  const size_t max_m = DefaultTopM(data);
  for (size_t m : {max_m / 8, max_m / 4, max_m / 2, max_m, max_m * 2}) {
    if (m == 0) continue;
    engine->set_top_m(m);
    const EvaluationResult r = evaluator.Evaluate(*engine, 20);
    std::printf("%6zu %7.3f %7.3f %7.3f %10.3f\n", m, r.map, r.p_at_5,
                r.p_at_10, r.mean_response_ms);
  }
}

void SweepTopN(const BenchDataset& data) {
  std::printf("\n(d) top-n experts\n");
  std::printf("%6s %7s %7s %10s\n", "n", "P@n", "MAP", "ms/query");
  EngineConfig config = DefaultEngineConfig(data);
  auto engine = BuildEngine(data, config);
  for (size_t n : {5u, 10u, 20u, 50u, 100u}) {
    // P@n for the sweep's own n: evaluate manually per query.
    double p_at_n = 0.0;
    Timer timer;
    std::vector<std::vector<NodeId>> rankings;
    std::vector<std::vector<NodeId>> truths;
    for (const Query& q : data.queries.queries) {
      const auto experts = engine->FindExperts(q.text, n);
      std::vector<NodeId> ranked;
      for (const auto& e : experts) ranked.push_back(e.author);
      p_at_n += PrecisionAtN(ranked, q.ground_truth, n);
      rankings.push_back(std::move(ranked));
      truths.push_back(q.ground_truth);
    }
    const double total_ms = timer.ElapsedMillis();
    const double nq = static_cast<double>(data.queries.queries.size());
    std::printf("%6zu %7.3f %7.3f %10.3f\n", n, p_at_n / nq,
                MeanAveragePrecision(rankings, truths), total_ms / nq);
  }
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kError);
  PrintHeader("Figure 8: parameter sensitivity (aminer)");
  const BenchDataset data(AminerProfile());
  const Evaluator evaluator(&data.dataset, &data.queries, &data.corpus,
                            &data.tfidf, &data.tokens);
  SweepSampleRatio(data, evaluator);
  SweepK(data, evaluator);
  SweepTopM(data, evaluator);
  SweepTopN(data);
  return 0;
}

// Executor microbenchmarks: ParallelFor dispatch overhead, nested
// fan-out (the helping-join path), TaskGroup submit/wait throughput
// with concurrent callers, and the cost of carrying a live
// CancelToken through a loop that never fires it.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_pool.h"

namespace {

using namespace kpef;

ThreadPool& Pool() {
  static auto* pool = new ThreadPool(std::thread::hardware_concurrency());
  return *pool;
}

// Touches a few cache lines per index so the loop body is cheap but not
// empty — dispatch overhead dominates, as in the engine's phase loops.
uint64_t Work(size_t i) {
  uint64_t h = i * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  h *= 0xD6E8FEB86659FD93ull;
  return h ^ (h >> 29);
}

void BM_ParallelForFlat(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::atomic<uint64_t> sink{0};
  for (auto _ : state) {
    std::atomic<uint64_t> total{0};
    ParallelFor(Pool(), n, [&](size_t i) { total.fetch_add(Work(i)); });
    sink.fetch_add(total.load());
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForFlat)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

// Nested fan-out on one shared pool: every outer task joins an inner
// group, so the inner Wait() exercises the helping join.
void BM_ParallelForNested(benchmark::State& state) {
  const size_t outer = static_cast<size_t>(state.range(0));
  const size_t inner = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    std::atomic<uint64_t> total{0};
    ParallelFor(Pool(), outer, [&](size_t o) {
      ParallelFor(Pool(), inner,
                  [&](size_t i) { total.fetch_add(Work(o * inner + i)); });
    });
    benchmark::DoNotOptimize(total.load());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(outer * inner));
}
BENCHMARK(BM_ParallelForNested)->Args({8, 1 << 12})->Args({64, 1 << 9});

// Several threads each driving their own TaskGroup on one pool —
// the serving pattern: concurrent FindExpertsBatch callers.
void BM_ConcurrentGroups(benchmark::State& state) {
  const int callers = static_cast<int>(state.range(0));
  constexpr size_t kPerCaller = 1 << 12;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(callers);
    std::atomic<uint64_t> total{0};
    for (int c = 0; c < callers; ++c) {
      threads.emplace_back([&total, c] {
        ParallelFor(Pool(), kPerCaller, [&total, c](size_t i) {
          total.fetch_add(Work(c * kPerCaller + i));
        });
      });
    }
    for (std::thread& t : threads) t.join();
    benchmark::DoNotOptimize(total.load());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          callers * static_cast<int64_t>(kPerCaller));
}
BENCHMARK(BM_ConcurrentGroups)->Arg(2)->Arg(4)->Arg(8);

// The cancellation tax: same flat loop, but each chunk polls a live
// deadline token that never fires. Compare against BM_ParallelForFlat.
void BM_ParallelForWithLiveToken(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    CancelToken token = CancelToken::AfterMillis(1e9);
    std::atomic<uint64_t> total{0};
    ParallelFor(
        Pool(), n, [&](size_t i) { total.fetch_add(Work(i)); }, token);
    benchmark::DoNotOptimize(total.load());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForWithLiveToken)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();

// Table II: effectiveness of expert finding over three datasets.
//
// Reproduces MAP, P@5, P@10, P@20 and ADS for the seven baselines and the
// paper's method (P-A-P ∩ P-T-P, k = 4, near negatives) on the three
// dataset profiles. Expected shape: Ours > network-embedding baselines
// (TADW/GVNR-t/G2G/IDNE) > text-only baselines (TFIDF/AvgGloVe/SBERT).

#include <cstdio>

#include "bench_common.h"
#include "topicquery/language_model.h"
#include "common/logging.h"
#include "common/timer.h"
#include "eval/significance.h"

int main() {
  using namespace kpef;
  using namespace kpef::bench;
  SetLogLevel(LogLevel::kError);

  PrintHeader("Table II: effectiveness of expert finding");
  for (const DatasetConfig& profile : PaperProfiles()) {
    Timer setup_timer;
    const BenchDataset data(profile);
    std::printf("--- dataset: %s (%zu papers, %zu queries; setup %.1fs)\n",
                profile.name.c_str(), data.dataset.Papers().size(),
                data.queries.queries.size(), setup_timer.ElapsedSeconds());
    const Evaluator evaluator(&data.dataset, &data.queries, &data.corpus,
                              &data.tfidf, &data.tokens);
    const size_t top_m = DefaultTopM(data);

    std::vector<EvaluationResult> results;
    for (auto& model : BuildBaselines(data, top_m)) {
      results.push_back(evaluator.Evaluate(*model, 20));
    }
    // Extension (not a row of the paper's Table II): the classic
    // language-model expert finder from the topic-query literature.
    LanguageModelExpertFinder lm(&data.dataset, &data.corpus);
    results.push_back(evaluator.Evaluate(lm, 20));

    EngineConfig config = DefaultEngineConfig(data);
    config.display_name = "Ours (P-A-P ∩ P-T-P)";
    EngineBuildReport report;
    auto engine = BuildEngine(data, config, &report);
    results.push_back(evaluator.Evaluate(*engine, 20));
    std::printf("(ours offline build: %.1fs; %zu triples)\n",
                report.total_seconds, report.sampling.triples.size());

    PrintResultsTable(results);
    // Significance: ours vs the strongest baseline by MAP.
    const EvaluationResult& ours = results.back();
    const EvaluationResult* best_baseline = &results[0];
    for (size_t i = 1; i + 1 < results.size(); ++i) {
      if (results[i].map > best_baseline->map) best_baseline = &results[i];
    }
    const BootstrapResult sig =
        PairedBootstrap(ours.per_query_ap, best_baseline->per_query_ap);
    std::printf("Ours vs %s: dMAP=%+.3f (95%% CI [%.3f, %.3f], p=%.4f, "
                "paired bootstrap over %zu queries)\n\n",
                best_baseline->model.c_str(), sig.mean_difference, sig.ci_low,
                sig.ci_high, sig.p_value, sig.num_queries);
  }
  return 0;
}

// PR-2 acceptance bench: SIMD kernel throughput (scalar vs dispatched),
// parallel NNDescent / PG-Index build time (1 worker vs a pool), and
// PG-Index query throughput (per-query Search vs SearchBatch).
//
// Writes BENCH_pr2.json into the current working directory. Run from the
// repo root so the artifact lands next to the sources:
//
//   ./build/bench/bench_pr2_kernels
//
// The kernel section reports GB/s over L1-resident operands so it measures
// arithmetic throughput, not memory bandwidth. On machines without AVX2
// (or with KPEF_SIMD=scalar) the dispatched kernel equals the scalar one
// and the speedups come out at ~1.0 — the JSON records the kernel name so
// that case is self-describing.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ann/brute_force.h"
#include "ann/nndescent.h"
#include "ann/pg_index.h"
#include "common/aligned_buffer.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "embed/matrix.h"
#include "embed/vector_ops.h"

namespace {

using namespace kpef;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- Kernel throughput ------------------------------------------------

// The pre-PR implementation (see git history of embed/vector_ops.cc):
// double-precision accumulation through a single serial dependency chain,
// which the compiler cannot vectorize (float reduction reassociation is
// not allowed at default flags). This is the baseline the PR's speedup is
// measured against.
float BaselineDot(const float* a, const float* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(sum);
}

float BaselineSquaredL2(const float* a, const float* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return static_cast<float>(sum);
}

struct KernelResult {
  std::string name;
  double dot_gbps = 0.0;
  double l2_gbps = 0.0;
};

// Times `reps` kernel calls over two `dim`-float operands and converts to
// GB/s of operand traffic (2 vectors * 4 bytes/float per call).
KernelResult TimeKernel(const DistanceKernel& kernel, size_t dim,
                        size_t reps) {
  Rng rng(1234);
  AlignedVector a(dim), b(dim);
  for (float& v : a) v = static_cast<float>(rng.Normal());
  for (float& v : b) v = static_cast<float>(rng.Normal());
  const double bytes =
      static_cast<double>(reps) * 2.0 * static_cast<double>(dim) * 4.0;

  KernelResult result;
  result.name = kernel.name;
  // Fold every call's output into a sink so the loop cannot be hoisted.
  volatile float sink = 0.0f;

  auto start = Clock::now();
  for (size_t r = 0; r < reps; ++r) sink = sink + kernel.dot(a.data(), b.data(), dim);
  result.dot_gbps = bytes / SecondsSince(start) / 1e9;

  start = Clock::now();
  for (size_t r = 0; r < reps; ++r) {
    sink = sink + kernel.squared_l2(a.data(), b.data(), dim);
  }
  result.l2_gbps = bytes / SecondsSince(start) / 1e9;
  return result;
}

// --- Shared clustered point set ---------------------------------------

Matrix MakePoints(size_t n, size_t dim, size_t clusters, uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (size_t r = 0; r < centers.rows(); ++r) {
    for (float& v : centers.Row(r)) v = static_cast<float>(rng.Normal(0, 3));
  }
  Matrix points(n, dim);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.Uniform(clusters);
    for (size_t k = 0; k < dim; ++k) {
      points.At(i, k) = centers.At(c, k) + static_cast<float>(rng.Normal(0, 1));
    }
  }
  return points;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kError);
  const size_t hw_threads = ThreadPool::Default().num_threads();

  // 1. Kernel throughput: L1-resident operands, representative embedding
  //    width. reps sized for ~100ms+ per timing at scalar speed.
  const size_t kDim = 128;
  const size_t kReps = 4'000'000;
  const DistanceKernel baseline_kernel = {"pre_pr_baseline", BaselineDot,
                                          BaselineSquaredL2,
                                          nullptr,  // axpy
                                          nullptr,  // scale
                                          nullptr,  // sq8_asym_l2
                                          nullptr}; // sq8_asym_l2x4
  const KernelResult baseline = TimeKernel(baseline_kernel, kDim, kReps / 4);
  const KernelResult scalar = TimeKernel(ScalarKernel(), kDim, kReps);
  const KernelResult active = TimeKernel(ActiveKernel(), kDim, kReps);
  const double dot_speedup = active.dot_gbps / baseline.dot_gbps;
  const double l2_speedup = active.l2_gbps / baseline.l2_gbps;
  std::printf("kernel  pre-PR baseline: dot %.2f GB/s  l2 %.2f GB/s\n",
              baseline.dot_gbps, baseline.l2_gbps);
  std::printf("kernel  scalar: dot %.2f GB/s  l2 %.2f GB/s\n",
              scalar.dot_gbps, scalar.l2_gbps);
  std::printf(
      "kernel  %s: dot %.2f GB/s (%.2fx vs pre-PR)  l2 %.2f GB/s (%.2fx)\n",
      active.name.c_str(), active.dot_gbps, dot_speedup, active.l2_gbps,
      l2_speedup);

  // 2. NNDescent build: one worker vs a pool. On single-core machines the
  //    pool adds scheduling overhead and both times are similar; the JSON
  //    records the worker counts so readers can interpret the ratio.
  const Matrix points = MakePoints(4000, 64, 40, 5150);
  NNDescentConfig nnd;
  nnd.k = 10;
  ThreadPool one(1);
  nnd.pool = &one;
  auto start = Clock::now();
  const KnnGraph g1 = BuildKnnGraph(points, nnd);
  const double nnd_serial_s = SecondsSince(start);
  nnd.pool = nullptr;  // ThreadPool::Default()
  start = Clock::now();
  const KnnGraph gp = BuildKnnGraph(points, nnd);
  const double nnd_pool_s = SecondsSince(start);
  KPEF_CHECK(g1.neighbors == gp.neighbors)
      << "NNDescent must be bit-identical across pool sizes";
  std::printf("nndescent  1 worker: %.3fs   %zu workers: %.3fs\n",
              nnd_serial_s, hw_threads, nnd_pool_s);

  // 3. PG-Index build (kNN + refine + extension) under the same pools.
  PGIndexConfig pg;
  pg.knn_k = 10;
  pg.nndescent.pool = &one;
  start = Clock::now();
  const PGIndex index = PGIndex::Build(points, pg);
  const double build_serial_s = SecondsSince(start);
  pg.nndescent.pool = nullptr;
  start = Clock::now();
  const PGIndex index_pool = PGIndex::Build(points, pg);
  const double build_pool_s = SecondsSince(start);
  std::printf("pgindex build  1 worker: %.3fs   %zu workers: %.3fs\n",
              build_serial_s, hw_threads, build_pool_s);

  // 4. Query throughput: per-query Search vs SearchBatch over the same
  //    query stream.
  const size_t kBatch = 64;
  const size_t kTopK = 10;
  const size_t kEf = 60;
  Matrix queries(kBatch, points.cols());
  {
    Rng rng(777);
    for (size_t q = 0; q < kBatch; ++q) {
      const size_t anchor = rng.Uniform(points.rows());
      for (size_t k = 0; k < points.cols(); ++k) {
        queries.At(q, k) =
            points.At(anchor, k) + static_cast<float>(rng.Normal(0, 0.5));
      }
    }
  }
  const int kRounds = 50;
  size_t checksum = 0;
  start = Clock::now();
  for (int r = 0; r < kRounds; ++r) {
    for (size_t q = 0; q < kBatch; ++q) {
      checksum += index.Search(queries.Row(q), kTopK, kEf).size();
    }
  }
  const double single_s = SecondsSince(start);
  start = Clock::now();
  for (int r = 0; r < kRounds; ++r) {
    for (const auto& res : index.SearchBatch(queries, kTopK, kEf)) {
      checksum += res.size();
    }
  }
  const double batch_s = SecondsSince(start);
  const double queries_total = static_cast<double>(kRounds) * kBatch;
  const double single_qps = queries_total / single_s;
  const double batch_qps = queries_total / batch_s;
  std::printf("pgindex search  single: %.0f q/s   batched: %.0f q/s\n",
              single_qps, batch_qps);
  KPEF_CHECK(checksum > 0);

  FILE* out = std::fopen("BENCH_pr2.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_pr2.json for writing\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"kernel\": {\n"
               "    \"dim\": %zu,\n"
               "    \"pre_pr_baseline\": {\"dot_gbps\": %.3f, "
               "\"squared_l2_gbps\": %.3f},\n"
               "    \"scalar\": {\"dot_gbps\": %.3f, \"squared_l2_gbps\": %.3f},\n"
               "    \"active\": {\"name\": \"%s\", \"dot_gbps\": %.3f, "
               "\"squared_l2_gbps\": %.3f},\n"
               "    \"dot_speedup_vs_pre_pr\": %.3f,\n"
               "    \"squared_l2_speedup_vs_pre_pr\": %.3f,\n"
               "    \"dot_speedup_vs_scalar\": %.3f,\n"
               "    \"squared_l2_speedup_vs_scalar\": %.3f\n"
               "  },\n"
               "  \"nndescent_build\": {\n"
               "    \"points\": %zu, \"dim\": %zu,\n"
               "    \"serial_seconds\": %.4f,\n"
               "    \"pool_seconds\": %.4f,\n"
               "    \"pool_workers\": %zu,\n"
               "    \"bit_identical\": true\n"
               "  },\n"
               "  \"pgindex_build\": {\n"
               "    \"serial_seconds\": %.4f,\n"
               "    \"pool_seconds\": %.4f\n"
               "  },\n"
               "  \"pgindex_search\": {\n"
               "    \"batch\": %zu, \"ef\": %zu,\n"
               "    \"single_qps\": %.1f,\n"
               "    \"batched_qps\": %.1f,\n"
               "    \"batch_speedup\": %.3f\n"
               "  }\n"
               "}\n",
               kDim, baseline.dot_gbps, baseline.l2_gbps, scalar.dot_gbps,
               scalar.l2_gbps, active.name.c_str(), active.dot_gbps,
               active.l2_gbps, dot_speedup, l2_speedup,
               active.dot_gbps / scalar.dot_gbps,
               active.l2_gbps / scalar.l2_gbps,
               points.rows(), points.cols(), nnd_serial_s, nnd_pool_s,
               hw_threads, build_serial_s, build_pool_s, kBatch, kEf,
               single_qps, batch_qps, batch_qps / single_qps);
  std::fclose(out);
  std::printf("wrote BENCH_pr2.json\n");
  return 0;
}

// Table IV: effect of meta-paths on effectiveness.
//
// Runs the paper's method with every meta-path configuration — the
// no-core baseline, each single path (A = P-A-P, C = P-P, T = P-T-P),
// each pair intersection (AT, AC, CT), and the triple ACT — over the
// three dataset profiles. Expected shape: with-core > w/o-core; AT best;
// C weakest single path; ACT below AT (intersection starves training
// data).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"

int main() {
  using namespace kpef;
  using namespace kpef::bench;
  SetLogLevel(LogLevel::kError);

  struct Config {
    const char* name;
    std::vector<std::string> paths;
    bool use_core;
  };
  const std::vector<Config> configs = {
      {"w/o (k,P)-core", {"P-A-P", "P-T-P"}, false},
      {"P-A-P (A)", {"P-A-P"}, true},
      {"P-P (C)", {"P-P"}, true},
      {"P-T-P (T)", {"P-T-P"}, true},
      {"AT", {"P-A-P", "P-T-P"}, true},
      {"AC", {"P-A-P", "P-P"}, true},
      {"CT", {"P-P", "P-T-P"}, true},
      {"ACT", {"P-A-P", "P-P", "P-T-P"}, true},
  };

  PrintHeader("Table IV: effect of meta-paths on effectiveness");
  for (const DatasetConfig& profile : PaperProfiles()) {
    const BenchDataset data(profile);
    const Evaluator evaluator(&data.dataset, &data.queries, &data.corpus,
                              &data.tfidf, &data.tokens);
    std::printf("--- dataset: %s\n", profile.name.c_str());
    std::printf("%-16s %7s %7s %7s %10s\n", "Config", "MAP", "P@5", "ADS",
                "triples");
    for (const Config& c : configs) {
      EngineConfig config = DefaultEngineConfig(data);
      config.meta_paths = c.paths;
      config.use_kpcore = c.use_core;
      config.display_name = c.name;
      EngineBuildReport report;
      auto engine = BuildEngine(data, config, &report);
      const EvaluationResult r = evaluator.Evaluate(*engine, 20);
      std::printf("%-16s %7.3f %7.3f %7.3f %10zu\n", c.name, r.map, r.p_at_5,
                  r.ads, report.sampling.triples.size());
    }
    std::printf("\n");
  }
  return 0;
}

// Ablation A2: PG-Index refinement and search.
//
// Measures search latency and recall for the index variants of
// Algorithm 2 — plain kNN graph, +long-distance extension, +redundant
// removal — and brute force, across candidate-pool sizes. Expected shape:
// the refined index needs fewer hops/distance computations than the plain
// kNN graph at equal recall, and all graph variants beat brute force.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "obs/export.h"
#include "obs/pipeline_metrics.h"

#include "ann/brute_force.h"
#include "ann/hnsw.h"
#include "ann/pg_index.h"
#include "common/logging.h"
#include "common/rng.h"

namespace {

using namespace kpef;

constexpr size_t kNumPoints = 4000;
constexpr size_t kDim = 64;
constexpr size_t kTopK = 10;

const Matrix& Points() {
  static const Matrix* points = [] {
    SetLogLevel(LogLevel::kError);
    Rng rng(5150);
    // Clustered points resembling paper embeddings.
    Matrix centers(40, kDim);
    for (size_t r = 0; r < centers.rows(); ++r) {
      for (float& v : centers.Row(r)) v = static_cast<float>(rng.Normal(0, 3));
    }
    auto* m = new Matrix(kNumPoints, kDim);
    for (size_t i = 0; i < kNumPoints; ++i) {
      const size_t c = rng.Uniform(40);
      for (size_t k = 0; k < kDim; ++k) {
        m->At(i, k) = centers.At(c, k) + static_cast<float>(rng.Normal(0, 1));
      }
    }
    return m;
  }();
  return *points;
}

const PGIndex& IndexVariant(int variant) {
  static std::map<int, PGIndex>* cache = new std::map<int, PGIndex>();
  auto it = cache->find(variant);
  if (it == cache->end()) {
    PGIndexConfig config;
    config.knn_k = 10;
    config.extend_neighbors = variant >= 1;
    config.remove_redundant = variant >= 2;
    it = cache->emplace(variant, PGIndex::Build(Points(), config)).first;
  }
  return it->second;
}

std::vector<float> QueryFor(size_t i) {
  Rng rng(777 + i);
  const Matrix& points = Points();
  std::vector<float> q(kDim);
  const size_t anchor = rng.Uniform(points.rows());
  for (size_t k = 0; k < kDim; ++k) {
    q[k] = points.At(anchor, k) + static_cast<float>(rng.Normal(0, 0.5));
  }
  return q;
}

void BM_PGSearch(benchmark::State& state, int variant) {
  const PGIndex& index = IndexVariant(variant);
  const size_t ef = static_cast<size_t>(state.range(0));
  size_t query_id = 0;
  double recall = 0.0, dists = 0.0, hops = 0.0;
  size_t samples = 0;
  for (auto _ : state) {
    const std::vector<float> q = QueryFor(query_id++ % 32);
    PGIndex::SearchStats stats;
    const auto result = index.Search(q, kTopK, ef, &stats);
    benchmark::DoNotOptimize(result.data());
    state.PauseTiming();
    const auto exact = BruteForceSearch(Points(), q, kTopK);
    recall += ComputeRecall(result, exact);
    dists += static_cast<double>(stats.distance_computations);
    hops += static_cast<double>(stats.hops);
    ++samples;
    state.ResumeTiming();
  }
  state.counters["recall"] = recall / static_cast<double>(samples);
  state.counters["dist_comp"] = dists / static_cast<double>(samples);
  state.counters["hops"] = hops / static_cast<double>(samples);
}

const Hnsw& HnswIndex() {
  static const Hnsw* index = [] {
    HnswConfig config;
    config.m = 10;
    return new Hnsw(Hnsw::Build(Points(), config));
  }();
  return *index;
}

void BM_HnswSearch(benchmark::State& state) {
  const Hnsw& index = HnswIndex();
  const size_t ef = static_cast<size_t>(state.range(0));
  size_t query_id = 0;
  double recall = 0.0, dists = 0.0;
  size_t samples = 0;
  for (auto _ : state) {
    const std::vector<float> q = QueryFor(query_id++ % 32);
    Hnsw::SearchStats stats;
    const auto result = index.Search(q, kTopK, ef, &stats);
    benchmark::DoNotOptimize(result.data());
    state.PauseTiming();
    const auto exact = BruteForceSearch(Points(), q, kTopK);
    recall += ComputeRecall(result, exact);
    dists += static_cast<double>(stats.distance_computations);
    ++samples;
    state.ResumeTiming();
  }
  state.counters["recall"] = recall / static_cast<double>(samples);
  state.counters["dist_comp"] = dists / static_cast<double>(samples);
}

void BM_PGSearchBatch(benchmark::State& state) {
  const PGIndex& index = IndexVariant(2);
  constexpr size_t kBatch = 32;
  Matrix queries(kBatch, kDim);
  std::vector<std::vector<Neighbor>> truth(kBatch);
  for (size_t q = 0; q < kBatch; ++q) {
    const std::vector<float> v = QueryFor(q);
    std::copy(v.begin(), v.end(), queries.Row(q).begin());
    truth[q] = BruteForceSearch(Points(), v, kTopK);
  }
  const size_t ef = static_cast<size_t>(state.range(0));
  double recall = 0.0;
  for (auto _ : state) {
    const auto results = index.SearchBatch(queries, kTopK, ef);
    benchmark::DoNotOptimize(results.data());
    state.PauseTiming();
    recall = 0.0;  // steady-state recall: same queries every iteration
    for (size_t q = 0; q < kBatch; ++q) {
      recall += ComputeRecall(results[q], truth[q]);
    }
    recall /= static_cast<double>(kBatch);
    state.ResumeTiming();
  }
  state.counters["recall"] = recall;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
}

void BM_BruteForce(benchmark::State& state) {
  size_t query_id = 0;
  for (auto _ : state) {
    const std::vector<float> q = QueryFor(query_id++ % 32);
    const auto result = BruteForceSearch(Points(), q, kTopK);
    benchmark::DoNotOptimize(result.data());
  }
  state.counters["dist_comp"] = static_cast<double>(kNumPoints);
}

void BM_IndexBuild(benchmark::State& state, int variant) {
  PGIndexConfig config;
  config.knn_k = 10;
  config.extend_neighbors = variant >= 1;
  config.remove_redundant = variant >= 2;
  for (auto _ : state) {
    const PGIndex index = PGIndex::Build(Points(), config);
    benchmark::DoNotOptimize(index.NumEdges());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_PGSearch, knn_only, 0)->Arg(10)->Arg(40)->Arg(100);
BENCHMARK_CAPTURE(BM_PGSearch, with_extension, 1)->Arg(10)->Arg(40)->Arg(100);
BENCHMARK_CAPTURE(BM_PGSearch, full_refined, 2)->Arg(10)->Arg(40)->Arg(100);
BENCHMARK(BM_PGSearchBatch)->Arg(40)->Arg(100);
BENCHMARK(BM_HnswSearch)->Arg(10)->Arg(40)->Arg(100);
BENCHMARK(BM_BruteForce);
BENCHMARK_CAPTURE(BM_IndexBuild, knn_only, 0)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_IndexBuild, full_refined, 2)
    ->Unit(benchmark::kMillisecond);

// Custom main (instead of BENCHMARK_MAIN) so the run ends with a dump
// of the pipeline metrics accumulated across all benchmark iterations.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  kpef::obs::WarmPipelineMetrics();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  std::printf("\n### metrics (JSON)\n\n%s",
              kpef::obs::ExportMetricsJson().c_str());
  return 0;
}

// Table III: case study — top-5 experts of our method vs the strongest
// baseline (GVNR-t) for two concrete queries on the Aminer profile.
// Correct experts (per the topic-level ground truth) are marked with '*'.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"

int main() {
  using namespace kpef;
  using namespace kpef::bench;
  SetLogLevel(LogLevel::kError);

  PrintHeader("Table III: case study for expert finding (aminer)");
  const BenchDataset data(AminerProfile());
  const size_t top_m = DefaultTopM(data);

  GvnrTModel gvnr(&data.dataset, &data.corpus, &data.merged, &data.tfidf,
                  top_m);
  EngineConfig config = DefaultEngineConfig(data);
  auto engine = BuildEngine(data, config);

  // Like the paper's Table III, showcase two queries (from different
  // research areas) where the methods differ most — a qualitative look at
  // what the structural signal adds.
  const auto topic_of = [&](const Query& q) {
    return data.dataset
        .paper_primary_topic[data.dataset.graph.LocalIndex(q.query_paper)];
  };
  auto hits_of = [&](RetrievalModel& model, const Query& q) {
    size_t hits = 0;
    for (const ExpertScore& e : model.FindExperts(q.text, 5)) {
      hits += std::binary_search(q.ground_truth.begin(), q.ground_truth.end(),
                                 e.author);
    }
    return hits;
  };
  const Query* query_a = nullptr;
  const Query* query_b = nullptr;
  int best_a = -100, best_b = -100;
  for (const Query& q : data.queries.queries) {
    const int advantage = static_cast<int>(hits_of(*engine, q)) -
                          static_cast<int>(hits_of(gvnr, q));
    if (query_a == nullptr || advantage > best_a) {
      // Shift the previous best to slot b when topics differ.
      if (query_a != nullptr && topic_of(*query_a) != topic_of(q) &&
          best_a > best_b) {
        query_b = query_a;
        best_b = best_a;
      }
      query_a = &q;
      best_a = advantage;
    } else if ((query_b == nullptr || advantage > best_b) &&
               topic_of(q) != topic_of(*query_a)) {
      query_b = &q;
      best_b = advantage;
    }
  }
  KPEF_CHECK(query_a != nullptr && query_b != nullptr);
  std::printf("(queries selected to maximize the top-5 difference between "
              "the two methods)\n\n");

  for (const Query* query : {query_a, query_b}) {
    std::printf("query (topic %d): %.60s...\n", topic_of(*query),
                query->text.c_str());
    const auto gvnr_experts = gvnr.FindExperts(query->text, 5);
    const auto our_experts = engine->FindExperts(query->text, 5);
    std::printf("  %-24s | %-24s\n", "GVNR-t", "Ours");
    for (size_t i = 0; i < 5; ++i) {
      auto cell = [&](const std::vector<ExpertScore>& experts) {
        if (i >= experts.size()) return std::string("-");
        const NodeId a = experts[i].author;
        std::string label = data.dataset.graph.Label(a);
        if (std::binary_search(query->ground_truth.begin(),
                               query->ground_truth.end(), a)) {
          label += " *";
        }
        return label;
      };
      std::printf("  %-24s | %-24s\n", cell(gvnr_experts).c_str(),
                  cell(our_experts).c_str());
    }
    std::printf("\n");
  }
  std::printf("('*' marks experts in the topic-level ground truth)\n");
  return 0;
}

// Figure 7: efficiency of expert finding over three datasets.
//
// Compares the per-query response time of the seven baselines against the
// four variants of our solution:
//   Ours-1: w/ PG-Index, w/ TA (default)
//   Ours-2: w/ PG-Index, w/o TA
//   Ours-3: w/o PG-Index, w/ TA
//   Ours-4: w/o PG-Index, w/o TA
// Expected shape: Ours-1 fastest; most of the gain from the PG-Index,
// the rest from TA.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/timer.h"

int main() {
  using namespace kpef;
  using namespace kpef::bench;
  SetLogLevel(LogLevel::kError);

  PrintHeader("Figure 7: efficiency of expert finding (ms/query)");
  for (const DatasetConfig& profile : PaperProfiles()) {
    const BenchDataset data(profile);
    const Evaluator evaluator(&data.dataset, &data.queries, &data.corpus,
                              &data.tfidf, &data.tokens);
    const size_t top_m = DefaultTopM(data);
    std::printf("--- dataset: %s (%zu papers, m=%zu)\n", profile.name.c_str(),
                data.dataset.Papers().size(), top_m);
    std::printf("%-12s %12s %8s\n", "Method", "ms/query", "MAP");

    for (auto& model : BuildBaselines(data, top_m)) {
      const EvaluationResult r = evaluator.Evaluate(*model, 20);
      std::printf("%-12s %12.3f %8.3f\n", r.model.c_str(),
                  r.mean_response_ms, r.map);
    }

    struct Variant {
      const char* name;
      bool pg;
      bool ta;
    };
    const Variant variants[] = {
        {"Ours-1", true, true},
        {"Ours-2", true, false},
        {"Ours-3", false, true},
        {"Ours-4", false, false},
    };
    // Build the PG and non-PG engines once; toggle TA in place.
    EngineConfig config = DefaultEngineConfig(data);
    auto engine_pg = BuildEngine(data, config);
    config.use_pg_index = false;
    auto engine_flat = BuildEngine(data, config);
    for (const Variant& v : variants) {
      ExpertFindingEngine& engine = v.pg ? *engine_pg : *engine_flat;
      engine.set_use_ta(v.ta);
      // Name shows up in the table via the evaluator's model name; the
      // engine keeps its configured display name, so print explicitly.
      const EvaluationResult r = evaluator.Evaluate(engine, 20);
      std::printf("%-12s %12.3f %8.3f\n", v.name, r.mean_response_ms, r.map);
    }
    engine_pg->set_use_ta(true);
    std::printf("\n");
  }
  return 0;
}

// Ablation A1: (k, P)-core community-search cost.
//
// google-benchmark microbenchmarks comparing Algorithm 1 (with and
// without its pruning optimization), FastBCore, and the naive full
// decomposition, over k and meta-paths. Expected shape:
// Algorithm 1 <= FastBCore << naive, with identical strict cores.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "obs/export.h"
#include "obs/pipeline_metrics.h"

#include "common/logging.h"
#include "data/dataset.h"
#include "kpcore/fastbcore.h"
#include "kpcore/kpcore_search.h"
#include "kpcore/naive_search.h"
#include "metapath/meta_path.h"
#include "metapath/projection.h"

namespace {

using namespace kpef;

const Dataset& BenchData() {
  static const Dataset* dataset = [] {
    SetLogLevel(LogLevel::kError);
    DatasetConfig config = AminerProfile();
    config.num_papers = 1500;
    config.num_authors = 1100;
    return new Dataset(GenerateDataset(config));
  }();
  return *dataset;
}

const MetaPath& PathFor(const std::string& text) {
  static auto* cache = new std::map<std::string, MetaPath>();
  auto it = cache->find(text);
  if (it == cache->end()) {
    auto parsed = MetaPath::Parse(BenchData().graph.schema(), text);
    KPEF_CHECK(parsed.ok());
    it = cache->emplace(text, *parsed).first;
  }
  return it->second;
}

// A deterministic seed paper with a reasonable degree.
NodeId SeedPaper() {
  const Dataset& data = BenchData();
  return data.Papers()[data.Papers().size() / 2];
}

void BM_KPCoreSearch(benchmark::State& state, const char* path_text,
                     bool pruning) {
  const Dataset& data = BenchData();
  const MetaPath& path = PathFor(path_text);
  const int32_t k = static_cast<int32_t>(state.range(0));
  KPCoreSearchOptions options;
  options.enable_pruning = pruning;
  size_t core_size = 0;
  uint64_t edges = 0;
  for (auto _ : state) {
    const KPCoreCommunity c =
        KPCoreSearch(data.graph, path, SeedPaper(), k, options);
    benchmark::DoNotOptimize(c.core.data());
    core_size = c.core.size();
    edges = c.edges_scanned;
  }
  state.counters["core_size"] = static_cast<double>(core_size);
  state.counters["edges_scanned"] = static_cast<double>(edges);
}

void BM_FastBCore(benchmark::State& state, const char* path_text) {
  const Dataset& data = BenchData();
  const MetaPath& path = PathFor(path_text);
  const int32_t k = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    const KPCoreCommunity c =
        FastBCoreSearch(data.graph, path, SeedPaper(), k);
    benchmark::DoNotOptimize(c.core.data());
  }
}

void BM_NaiveDecomposition(benchmark::State& state, const char* path_text) {
  const Dataset& data = BenchData();
  const MetaPath& path = PathFor(path_text);
  const int32_t k = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    const KPCoreCommunity c =
        NaiveKPCoreSearch(data.graph, path, SeedPaper(), k);
    benchmark::DoNotOptimize(c.core.data());
  }
}

void BM_ProjectHomogeneous(benchmark::State& state, const char* path_text) {
  const Dataset& data = BenchData();
  const MetaPath& path = PathFor(path_text);
  for (auto _ : state) {
    const HomogeneousProjection proj = ProjectHomogeneous(data.graph, path);
    benchmark::DoNotOptimize(proj.NumEntries());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_KPCoreSearch, PAP_pruned, "P-A-P", true)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8);
BENCHMARK_CAPTURE(BM_KPCoreSearch, PAP_unpruned, "P-A-P", false)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8);
BENCHMARK_CAPTURE(BM_FastBCore, PAP, "P-A-P")->Arg(2)->Arg(4)->Arg(6)->Arg(8);
BENCHMARK_CAPTURE(BM_NaiveDecomposition, PAP, "P-A-P")->Arg(4);
BENCHMARK_CAPTURE(BM_KPCoreSearch, Cite_pruned, "P-P", true)->Arg(2)->Arg(4);
BENCHMARK_CAPTURE(BM_FastBCore, Cite, "P-P")->Arg(2)->Arg(4);
BENCHMARK_CAPTURE(BM_ProjectHomogeneous, PAP, "P-A-P");
BENCHMARK_CAPTURE(BM_ProjectHomogeneous, PTP, "P-T-P");

// Custom main (instead of BENCHMARK_MAIN) so the run ends with a dump
// of the pipeline metrics accumulated across all benchmark iterations.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  kpef::obs::WarmPipelineMetrics();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  std::printf("\n### metrics (JSON)\n\n%s",
              kpef::obs::ExportMetricsJson().c_str());
  return 0;
}

// Table I: statistics of the (synthetic stand-in) datasets.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"

int main() {
  using namespace kpef;
  using namespace kpef::bench;
  SetLogLevel(LogLevel::kError);

  PrintHeader("Table I: statistics of datasets");
  std::printf("%-10s %10s %10s %10s %10s %12s\n", "Dataset", "#papers",
              "#experts", "#venues", "#topics", "#relations");
  for (const DatasetConfig& profile : PaperProfiles()) {
    DatasetConfig scaled = profile.ScaledCopy(Scale(), "");
    scaled.name = profile.name;
    const Dataset dataset = GenerateDataset(scaled);
    const DatasetStats stats = ComputeStats(dataset);
    std::printf("%-10s %10zu %10zu %10zu %10zu %12zu\n",
                profile.name.c_str(), stats.papers, stats.experts,
                stats.venues, stats.topics, stats.relations);
  }
  std::printf("\n(paper: Aminer 1.1M/1.0M/15.9k/7/4.9M, DBLP "
              "1.3M/1.0M/7.5k/13/6.2M, ACM 2.0M/1.6M/11.7k/13/6.7M; ours are "
              "~500x scaled-down synthetic equivalents with finer topics)\n");
  return 0;
}

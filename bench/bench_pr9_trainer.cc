// PR-9 acceptance bench: HogWild parallel SIMD triplet trainer.
//
// Writes BENCH_pr9.json into the current working directory. Run from the
// repo root so the artifact lands next to the sources:
//
//   ./build/bench/bench_pr9_trainer
//
// Measures, on a synthetic two-hundred-cluster corpus:
//  - micro kernel throughput (adam_update / triplet_grad / axpy2),
//    scalar vs AVX2, in GB/s touched;
//  - end-to-end trainer triples/sec for four configurations: serial
//    scalar, serial SIMD (ActiveKernel), deterministic parallel, and
//    HogWild parallel (the latter two at hardware width);
//  - a byte-identity spot check of the deterministic schedule across
//    1 vs 2 threads (crashes the bench on divergence).
//
// On a single-core host the parallel rows necessarily read ~1x; the JSON
// records host_cores so that case is self-describing, and the AVX2 micro
// kernel speedups carry the acceptance evidence instead.
//
// Flags (defaults are the acceptance configuration):
//   --docs N       documents per cluster side   (default 600)
//   --triples N    training triples             (default 8000)
//   --epochs N     epochs per timed mode        (default 2)
//   --dim D        embedding width              (default 64)
//   --json PATH    output path                  (default BENCH_pr9.json)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "embed/document_encoder.h"
#include "embed/trainer.h"
#include "embed/triplet.h"
#include "embed/vector_ops.h"
#include "text/corpus.h"

namespace {

using namespace kpef;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

size_t FlagOr(int argc, char** argv, const char* name, size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

std::string FlagOr(int argc, char** argv, const char* name,
                   const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

// Two lexical clusters of documents; triples pair same-cluster positives
// with cross-cluster negatives — the shape §III-B sampling produces.
struct TrainSetup {
  Corpus corpus;
  std::vector<Triple> triples;
};

TrainSetup MakeSetup(size_t docs_per_cluster, size_t num_triples) {
  TrainSetup setup;
  Rng rng(5150);
  for (int c = 0; c < 2; ++c) {
    for (size_t i = 0; i < docs_per_cluster; ++i) {
      std::string text;
      for (int w = 0; w < 24; ++w) {
        text += (c == 0 ? "x" : "y") + std::to_string(rng.Uniform(64));
        text += ' ';
      }
      setup.corpus.AddDocument(text);
    }
  }
  const auto n = static_cast<int32_t>(docs_per_cluster);
  for (size_t t = 0; t < num_triples; ++t) {
    const auto seed = static_cast<int32_t>(rng.Uniform(docs_per_cluster));
    auto pos = static_cast<int32_t>(rng.Uniform(docs_per_cluster));
    if (pos == seed) pos = (pos + 1) % n;
    const auto neg = n + static_cast<int32_t>(rng.Uniform(docs_per_cluster));
    setup.triples.push_back({pos, seed, neg});
  }
  return setup;
}

DocumentEncoder MakeEncoder(const Corpus& corpus, size_t dim) {
  EncoderConfig config;
  config.dim = dim;
  DocumentEncoder encoder(corpus.vocabulary().size(), config);
  Rng init_rng(1);
  encoder.InitializeRandomTokens(init_rng, 0.3f);
  return encoder;
}

// One trainer configuration, timed end to end on a fresh encoder copy.
struct ModeResult {
  double triples_per_sec = 0.0;
  double final_loss = 0.0;
  double active_fraction = 0.0;
  size_t workers = 1;
  bool deterministic = true;
};

ModeResult RunMode(const TrainSetup& setup, size_t dim, size_t epochs,
                   size_t threads, bool deterministic,
                   const DistanceKernel* kernel) {
  DocumentEncoder encoder = MakeEncoder(setup.corpus, dim);
  TrainerConfig config;
  config.epochs = epochs;
  // Gentle learning rate so triples stay margin-active through the timed
  // epochs — an instantly-converged run skips every backward pass and
  // would overstate throughput.
  config.adam.learning_rate = 2e-4;
  config.num_threads = threads;
  config.deterministic = deterministic;
  config.kernel = kernel;
  TripletTrainer trainer(&encoder, &setup.corpus);
  const TrainStats stats = trainer.Train(setup.triples, config);
  ModeResult out;
  out.triples_per_sec = stats.triples_per_sec;
  out.final_loss = stats.epoch_loss.back();
  out.active_fraction = stats.final_active_fraction;
  out.workers = stats.workers;
  out.deterministic = stats.deterministic;
  return out;
}

// Micro throughput of one elementwise kernel in GB/s of touched bytes.
// `bytes_per_elem` counts every array read or written per element.
template <typename Fn>
double MeasureKernelGbps(size_t n, size_t bytes_per_elem, double min_seconds,
                         const Fn& call) {
  size_t iters = 0;
  const auto start = Clock::now();
  do {
    call();
    ++iters;
  } while (SecondsSince(start) < min_seconds);
  const double seconds = SecondsSince(start);
  return static_cast<double>(iters) * static_cast<double>(n) *
         static_cast<double>(bytes_per_elem) / seconds / 1e9;
}

struct KernelNumbers {
  double adam_gbps = 0.0;
  double triplet_gbps = 0.0;
  double axpy2_gbps = 0.0;
};

KernelNumbers MeasureKernels(const DistanceKernel& kernel, size_t n,
                             double min_seconds) {
  Rng rng(7);
  auto vec = [&](float lo, float hi) {
    std::vector<float> v(n);
    for (float& x : v) x = static_cast<float>(rng.UniformDouble(lo, hi));
    return v;
  };
  KernelNumbers out;

  auto params = vec(-1, 1);
  const auto grads = vec(-0.5, 0.5);
  auto m = vec(-0.1, 0.1);
  auto v = vec(0, 0.2);
  // adam_update: reads grads + m + v + params, writes m + v + params.
  out.adam_gbps = MeasureKernelGbps(n, 7 * sizeof(float), min_seconds, [&] {
    kernel.adam_update(params.data(), grads.data(), m.data(), v.data(), 0.9f,
                       0.999f, 1e-6f, 1e-8f, n);
  });

  const auto s = vec(-1, 1);
  const auto p = vec(-1, 1);
  const auto ng = vec(-1, 1);
  std::vector<float> gs(n), gp(n), gn(n);
  // triplet_grad: reads s + p + n, writes gs + gp + gn.
  out.triplet_gbps = MeasureKernelGbps(n, 6 * sizeof(float), min_seconds, [&] {
    kernel.triplet_grad(s.data(), p.data(), ng.data(), 1.7f, 0.9f, gs.data(),
                        gp.data(), gn.data(), n);
  });

  auto y = vec(-1, 1);
  // axpy2: reads x1 + x2 + y, writes y.
  out.axpy2_gbps = MeasureKernelGbps(n, 4 * sizeof(float), min_seconds, [&] {
    kernel.axpy2(0.7f, s.data(), -1.3f, p.data(), y.data(), n);
  });
  return out;
}

// Deterministic-mode byte identity across thread counts, checked inside
// the bench so the acceptance artifact is backed by a live run.
void CheckDeterminism(const TrainSetup& setup, size_t dim) {
  TrainerConfig config;
  config.epochs = 1;
  config.adam.learning_rate = 5e-3;
  config.deterministic = true;

  config.num_threads = 1;
  DocumentEncoder one = MakeEncoder(setup.corpus, dim);
  TripletTrainer t1(&one, &setup.corpus);
  const std::vector<Triple> subset(setup.triples.begin(),
                                   setup.triples.begin() +
                                       std::min<size_t>(512,
                                                        setup.triples.size()));
  t1.Train(subset, config);

  config.num_threads = 2;
  DocumentEncoder two = MakeEncoder(setup.corpus, dim);
  TripletTrainer t2(&two, &setup.corpus);
  t2.Train(subset, config);

  KPEF_CHECK(one.token_embeddings() == two.token_embeddings() &&
             one.projection() == two.projection() &&
             one.bias() == two.bias())
      << "deterministic schedule diverged between 1 and 2 threads";
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kError);
  const size_t kDocs = FlagOr(argc, argv, "--docs", size_t{600});
  const size_t kTriples = FlagOr(argc, argv, "--triples", size_t{8000});
  const size_t kEpochs = FlagOr(argc, argv, "--epochs", size_t{2});
  const size_t kDim = FlagOr(argc, argv, "--dim", size_t{64});
  const std::string json_path =
      FlagOr(argc, argv, "--json", std::string("BENCH_pr9.json"));
  const size_t host_cores = std::max(1u, std::thread::hardware_concurrency());
  const size_t kKernelN = 4096;
  const double kKernelSeconds = 0.5;

  std::printf("corpus  %zu docs x 2 clusters, %zu triples, dim %zu\n", kDocs,
              kTriples, kDim);
  std::printf("host    %zu core%s, active kernel %s\n", host_cores,
              host_cores == 1 ? "" : "s", ActiveKernel().name);
  const TrainSetup setup = MakeSetup(kDocs, kTriples);

  // --- Micro kernels ----------------------------------------------------
  const KernelNumbers scalar =
      MeasureKernels(ScalarKernel(), kKernelN, kKernelSeconds);
  const DistanceKernel* avx2 = Avx2KernelOrNull();
  KernelNumbers simd;
  if (avx2 != nullptr) simd = MeasureKernels(*avx2, kKernelN, kKernelSeconds);
  std::printf("kernels (GB/s touched, n=%zu)\n", kKernelN);
  std::printf("  %-14s scalar %6.2f  avx2 %6.2f  speedup %.2fx\n",
              "adam_update", scalar.adam_gbps, simd.adam_gbps,
              avx2 ? simd.adam_gbps / scalar.adam_gbps : 0.0);
  std::printf("  %-14s scalar %6.2f  avx2 %6.2f  speedup %.2fx\n",
              "triplet_grad", scalar.triplet_gbps, simd.triplet_gbps,
              avx2 ? simd.triplet_gbps / scalar.triplet_gbps : 0.0);
  std::printf("  %-14s scalar %6.2f  avx2 %6.2f  speedup %.2fx\n", "axpy2",
              scalar.axpy2_gbps, simd.axpy2_gbps,
              avx2 ? simd.axpy2_gbps / scalar.axpy2_gbps : 0.0);

  // --- Determinism spot check ------------------------------------------
  CheckDeterminism(setup, kDim);
  std::printf("determinism  1-thread vs 2-thread parameters byte-identical\n");

  // --- End-to-end trainer ----------------------------------------------
  // On a single-core host the parallel rows still run the real parallel
  // machinery (>= 2 workers time-sharing the core), so they measure its
  // overhead honestly rather than silently degenerating to serial.
  const size_t parallel_threads = std::max<size_t>(2, host_cores);
  const ModeResult serial_scalar =
      RunMode(setup, kDim, kEpochs, 1, false, &ScalarKernel());
  const ModeResult serial_simd =
      RunMode(setup, kDim, kEpochs, 1, false, nullptr);
  const ModeResult det_parallel =
      RunMode(setup, kDim, kEpochs, parallel_threads, true, nullptr);
  const ModeResult hogwild =
      RunMode(setup, kDim, kEpochs, parallel_threads, false, nullptr);
  auto print_mode = [](const char* name, const ModeResult& r) {
    std::printf(
        "  %-22s %9.0f triples/s  loss %.4f  active %.2f  (%zu worker%s, "
        "%s)\n",
        name, r.triples_per_sec, r.final_loss, r.active_fraction, r.workers,
        r.workers == 1 ? "" : "s",
        r.deterministic ? "deterministic" : "hogwild");
  };
  std::printf("trainer (%zu triples x %zu epochs)\n", kTriples, kEpochs);
  print_mode("serial scalar", serial_scalar);
  print_mode("serial simd", serial_simd);
  print_mode("parallel deterministic", det_parallel);
  print_mode("parallel hogwild", hogwild);

  // --- JSON -------------------------------------------------------------
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  KPEF_CHECK(f != nullptr) << "cannot write " << json_path;
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"pr9_trainer\",\n"
      "  \"host_cores\": %zu,\n"
      "  \"active_kernel\": \"%s\",\n"
      "  \"corpus\": {\"docs\": %zu, \"triples\": %zu, \"dim\": %zu, "
      "\"epochs\": %zu},\n"
      "  \"kernel_gbps\": {\n"
      "    \"n\": %zu,\n"
      "    \"adam_update\": {\"scalar\": %.3f, \"avx2\": %.3f, "
      "\"speedup\": %.3f},\n"
      "    \"triplet_grad\": {\"scalar\": %.3f, \"avx2\": %.3f, "
      "\"speedup\": %.3f},\n"
      "    \"axpy2\": {\"scalar\": %.3f, \"avx2\": %.3f, \"speedup\": "
      "%.3f}\n"
      "  },\n"
      "  \"parallel_workers\": %zu,\n"
      "  \"trainer_triples_per_sec\": {\n"
      "    \"serial_scalar\": %.1f,\n"
      "    \"serial_simd\": %.1f,\n"
      "    \"parallel_deterministic\": %.1f,\n"
      "    \"parallel_hogwild\": %.1f,\n"
      "    \"simd_speedup_vs_scalar\": %.3f,\n"
      "    \"hogwild_speedup_vs_serial_simd\": %.3f\n"
      "  },\n"
      "  \"final_active_fraction\": %.4f,\n"
      "  \"final_epoch_loss\": {\n"
      "    \"serial_scalar\": %.6f,\n"
      "    \"serial_simd\": %.6f,\n"
      "    \"parallel_deterministic\": %.6f,\n"
      "    \"parallel_hogwild\": %.6f\n"
      "  },\n"
      "  \"deterministic_byte_identical_1v2_threads\": true,\n"
      "  \"pr8_rerun_note\": \"bench_pr7_quantized re-run for BENCH_pr8 "
      "remains hardware-blocked: this host still has %zu core(s), same as "
      "the PR8 record.\"\n"
      "}\n",
      host_cores, ActiveKernel().name, kDocs, kTriples, kDim, kEpochs,
      kKernelN, scalar.adam_gbps, simd.adam_gbps,
      avx2 ? simd.adam_gbps / scalar.adam_gbps : 0.0, scalar.triplet_gbps,
      simd.triplet_gbps,
      avx2 ? simd.triplet_gbps / scalar.triplet_gbps : 0.0, scalar.axpy2_gbps,
      simd.axpy2_gbps, avx2 ? simd.axpy2_gbps / scalar.axpy2_gbps : 0.0,
      hogwild.workers, serial_scalar.triples_per_sec,
      serial_simd.triples_per_sec,
      det_parallel.triples_per_sec, hogwild.triples_per_sec,
      serial_simd.triples_per_sec / serial_scalar.triples_per_sec,
      hogwild.triples_per_sec / serial_simd.triples_per_sec,
      hogwild.active_fraction,
      serial_scalar.final_loss, serial_simd.final_loss,
      det_parallel.final_loss, hogwild.final_loss, host_cores);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/timer.h"
#include "metapath/meta_path.h"
#include "obs/export.h"
#include "obs/pipeline_metrics.h"

namespace kpef::bench {

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("KPEF_SCALE");
    if (!env) return 1.0;
    const double v = std::atof(env);
    return std::clamp(v > 0 ? v : 1.0, 0.05, 10.0);
  }();
  return scale;
}

size_t NumQueries() {
  return std::max<size_t>(10, static_cast<size_t>(60 * Scale()));
}

BenchDataset::BenchDataset(DatasetConfig config, size_t embedding_dim)
    : dataset([&] {
        DatasetConfig scaled = config.ScaledCopy(Scale(), "");
        scaled.name = config.name;
        return GenerateDataset(scaled);
      }()),
      corpus(BuildPaperCorpus(dataset)),
      tfidf(corpus),
      tokens([&] {
        ScopedTimer timer(&pretrain_seconds);
        PretrainConfig pretrain;
        pretrain.dim = embedding_dim;
        pretrain.seed = dataset.config.seed + 17;
        return PretrainTokenEmbeddings(corpus, pretrain).token_embeddings;
      }()),
      merged([&] {
        ScopedTimer timer(&projection_seconds);
        std::vector<HomogeneousProjection> projections;
        for (const char* p : {"P-A-P", "P-T-P", "P-P", "P-V-P"}) {
          auto path = MetaPath::Parse(dataset.graph.schema(), p);
          KPEF_CHECK(path.ok());
          projections.push_back(ProjectHomogeneous(dataset.graph, *path));
        }
        return UnionProjections(std::move(projections));
      }()),
      queries(GenerateQueries(dataset, NumQueries(),
                              dataset.config.seed + 4711)) {}

std::vector<DatasetConfig> PaperProfiles() {
  return {AminerProfile(), DblpProfile(), AcmProfile()};
}

size_t DefaultTopM(const BenchDataset& data) {
  // The paper uses m = 1000 over ~1-2M papers; proportionally our corpora
  // would need m < 5, which starves the expert ranking. Use ~10% of the
  // corpus, capped at the paper's 1000.
  return std::min<size_t>(1000, std::max<size_t>(50,
      data.dataset.Papers().size() / 10));
}

EngineConfig DefaultEngineConfig(const BenchDataset& data) {
  EngineConfig config;
  config.meta_paths = {"P-A-P", "P-T-P"};  // "AT", the paper's default
  config.k = 4;
  config.seed_fraction = 0.3;
  config.negatives_per_positive = 3;
  config.encoder.dim = data.tokens.cols();
  config.trainer.epochs = 4;
  config.top_m = DefaultTopM(data);
  config.pg_index.knn_k = 10;
  config.seed = data.dataset.config.seed + 1000;
  return config;
}

std::unique_ptr<ExpertFindingEngine> BuildEngine(const BenchDataset& data,
                                                 const EngineConfig& config,
                                                 EngineBuildReport* report) {
  auto engine = ExpertFindingEngine::Build(&data.dataset, &data.corpus,
                                           config, &data.tokens, report);
  KPEF_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

std::vector<std::unique_ptr<RetrievalModel>> BuildBaselines(
    const BenchDataset& data, size_t top_m) {
  std::vector<std::unique_ptr<RetrievalModel>> models;
  models.push_back(std::make_unique<TadwModel>(
      &data.dataset, &data.corpus, &data.merged, &data.tokens, top_m));
  models.push_back(std::make_unique<GvnrTModel>(
      &data.dataset, &data.corpus, &data.merged, &data.tfidf, top_m));
  models.push_back(std::make_unique<G2GModel>(
      &data.dataset, &data.corpus, &data.merged, &data.tokens, top_m));
  models.push_back(std::make_unique<IdneModel>(&data.dataset, &data.corpus,
                                               &data.tokens, top_m));
  models.push_back(std::make_unique<TfIdfExpertModel>(
      &data.dataset, &data.corpus, &data.tfidf, top_m));
  models.push_back(std::make_unique<AvgGloveModel>(&data.dataset, &data.corpus,
                                                   &data.tokens, top_m));
  models.push_back(std::make_unique<SbertLikeModel>(
      &data.dataset, &data.corpus, &data.tokens, top_m));
  return models;
}

void InstallMetricsDumpAtExit() {
  static const bool installed = [] {
    obs::WarmPipelineMetrics();
    std::atexit([] {
      std::printf("\n### metrics (JSON)\n\n%s",
                  obs::ExportMetricsJson().c_str());
      std::fflush(stdout);
    });
    return true;
  }();
  (void)installed;
}

void PrintHeader(const std::string& title) {
  InstallMetricsDumpAtExit();
  std::printf("\n### %s (KPEF_SCALE=%.2f)\n\n", title.c_str(), Scale());
}

}  // namespace kpef::bench

// Shared scaffolding for the experiment harnesses: dataset bundles,
// model factories, and table printing.
//
// Every bench binary honours the KPEF_SCALE environment variable
// (default 1.0): entity counts are multiplied by it, so the full suite
// can be smoke-tested quickly with KPEF_SCALE=0.2.

#ifndef KPEF_BENCH_BENCH_COMMON_H_
#define KPEF_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/g2g.h"
#include "baselines/gvnr_t.h"
#include "baselines/idne.h"
#include "baselines/tadw.h"
#include "baselines/text_models.h"
#include "core/engine.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/queries.h"
#include "embed/pretrain.h"
#include "eval/evaluation.h"
#include "metapath/projection.h"
#include "text/tfidf.h"

namespace kpef::bench {

/// Scale factor from KPEF_SCALE (clamped to [0.05, 10]).
double Scale();

/// Number of evaluation queries per dataset, scaled.
size_t NumQueries();

/// Everything the experiment harnesses need about one dataset, built once.
struct BenchDataset {
  /// Phase timings. Declared (and thus initialized) BEFORE the members
  /// whose initializers accumulate into them — the reverse order would
  /// zero them after the fact (members initialize in declaration order,
  /// not initializer-list order).
  double pretrain_seconds = 0.0;
  double projection_seconds = 0.0;

  Dataset dataset;
  Corpus corpus;
  TfIdfModel tfidf;
  /// GloVe-pretrained token embeddings shared by every method.
  Matrix tokens;
  /// Merged homogeneous paper graph (P-A-P ∪ P-T-P ∪ P-P ∪ P-V-P) for
  /// the homogeneous-embedding baselines.
  HomogeneousProjection merged;
  QuerySet queries;

  explicit BenchDataset(DatasetConfig config, size_t embedding_dim = 64);
};

/// The three Table-I-profile datasets, scaled. Heavy: construct once.
std::vector<DatasetConfig> PaperProfiles();

/// Default top-m (scaled analogue of the paper's m = 1000).
size_t DefaultTopM(const BenchDataset& data);

/// Engine config matching §VI-A defaults, sized for `data`.
EngineConfig DefaultEngineConfig(const BenchDataset& data);

/// Builds the paper's method over `data` with the given config.
std::unique_ptr<ExpertFindingEngine> BuildEngine(
    const BenchDataset& data, const EngineConfig& config,
    EngineBuildReport* report = nullptr);

/// Builds all seven baselines of Table II, in the paper's row order.
std::vector<std::unique_ptr<RetrievalModel>> BuildBaselines(
    const BenchDataset& data, size_t top_m);

/// Prints a "### <title>" section header. The first call also installs
/// an atexit hook that dumps the metrics registry (JSON) to stdout, so
/// every harness's transcript ends with per-stage counter columns.
void PrintHeader(const std::string& title);

/// Installs the atexit metrics dump (idempotent). Harnesses that never
/// call PrintHeader can call this directly.
void InstallMetricsDumpAtExit();

}  // namespace kpef::bench

#endif  // KPEF_BENCH_BENCH_COMMON_H_

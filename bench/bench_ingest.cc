// PR-10 acceptance bench: streaming ingestion under concurrent queries.
//
// Writes BENCH_pr10.json into the current working directory. Run from
// the repo root so the artifact lands next to the sources:
//
//   ./build/bench/bench_ingest
//
// Splits a generated dataset into a base prefix and a held-out tail
// (data/drip.h), serves the base through an EngineGroup, then replays
// the tail as WAL-backed ingest batches through an IngestCoordinator
// while closed-loop query threads hammer the group. Reports sustained
// ingest throughput (papers/sec, batches/sec, publish + merge counts)
// alongside the concurrent query QPS, plus an idle-query baseline taken
// before ingest starts.
//
// On a single-core host the query and ingest threads time-share, so the
// concurrent QPS necessarily dips below the idle baseline; the JSON
// records host_cores so that case is self-describing.
//
// Flags (defaults are the acceptance configuration):
//   --papers N     generated papers                 (default 900)
//   --holdout N    papers held out for streaming    (default 240)
//   --batch N      papers per ingest batch          (default 16)
//   --threads N    closed-loop query threads        (default 2)
//   --json PATH    output path                      (default BENCH_pr10.json)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/engine.h"
#include "core/engine_group.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/drip.h"
#include "data/queries.h"
#include "embed/pretrain.h"
#include "ingest/coordinator.h"
#include "ingest/ingest_batch.h"

namespace {

using namespace kpef;
namespace fs = std::filesystem;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

size_t FlagOr(int argc, char** argv, const char* name, size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

std::string FlagOr(int argc, char** argv, const char* name,
                   const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

EngineConfig BenchConfig() {
  EngineConfig config;
  config.k = 3;
  config.seed_fraction = 0.2;
  config.encoder.dim = 32;
  config.trainer.epochs = 2;
  config.top_m = 60;
  config.pg_index.knn_k = 8;
  config.use_pg_index = true;
  return config;
}

IngestBatch ToIngestBatch(const std::vector<DripPaper>& papers) {
  IngestBatch batch;
  batch.papers.reserve(papers.size());
  for (const DripPaper& p : papers) {
    batch.papers.push_back(
        IngestPaper{p.text, p.authors, p.venue, p.topics, p.cites});
  }
  return batch;
}

struct QueryLoad {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> empty_results{0};
  std::vector<std::thread> threads;

  void Start(EngineGroup* group, const std::vector<std::string>& texts,
             size_t num_threads) {
    stop.store(false);
    queries.store(0);
    empty_results.store(0);
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([this, group, &texts, t] {
        size_t at = t;  // stagger the rotation per thread
        while (!stop.load(std::memory_order_relaxed)) {
          std::vector<std::string> slice;
          for (size_t i = 0; i < 4; ++i) {
            slice.push_back(texts[(at + i) % texts.size()]);
          }
          at += 4;
          auto results = group->FindExpertsBatch(slice, 10);
          queries.fetch_add(slice.size(), std::memory_order_relaxed);
          for (const auto& r : results) {
            if (r.empty()) empty_results.fetch_add(1);
          }
        }
      });
    }
  }

  uint64_t StopAndCount() {
    stop.store(true);
    for (std::thread& t : threads) t.join();
    threads.clear();
    return queries.load();
  }
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kError);
  const size_t kPapers = FlagOr(argc, argv, "--papers", size_t{900});
  const size_t kHoldout = FlagOr(argc, argv, "--holdout", size_t{240});
  const size_t kBatch = FlagOr(argc, argv, "--batch", size_t{16});
  const size_t kThreads = FlagOr(argc, argv, "--threads", size_t{2});
  const std::string json_path =
      FlagOr(argc, argv, "--json", std::string("BENCH_pr10.json"));
  const size_t host_cores = std::max(1u, std::thread::hardware_concurrency());

  DatasetConfig config = TinyProfile();
  config.name = "bench-ingest";
  config.num_papers = kPapers;
  config.num_authors = std::max<size_t>(64, kPapers * 2 / 3);
  std::printf("dataset %zu papers (%zu held out), batch %zu, %zu query "
              "thread%s, host %zu core%s\n",
              kPapers, kHoldout, kBatch, kThreads, kThreads == 1 ? "" : "s",
              host_cores, host_cores == 1 ? "" : "s");

  const Dataset full = GenerateDataset(config);
  auto split = MakeDripSplit(full, kHoldout);
  KPEF_CHECK(split.ok()) << split.status().ToString();
  const Dataset& base = split->base;
  const Corpus corpus = BuildPaperCorpus(base);
  const QuerySet queries = GenerateQueries(base, 8, 23);
  std::vector<std::string> texts;
  for (const Query& q : queries.queries) texts.push_back(q.text);

  const EngineConfig engine_config = BenchConfig();
  Matrix tokens = [&] {
    PretrainConfig pc;
    pc.dim = engine_config.encoder.dim;
    pc.epochs = 4;
    return PretrainTokenEmbeddings(corpus, pc).token_embeddings;
  }();
  auto built = ExpertFindingEngine::Build(&base, &corpus, engine_config,
                                          &tokens);
  KPEF_CHECK(built.ok()) << built.status().ToString();

  const fs::path root = fs::temp_directory_path() /
                        ("kpef_bench_ingest_" + std::to_string(::getpid()));
  fs::create_directories(root / "artifacts");
  KPEF_CHECK((*built)->SaveArtifacts((root / "artifacts").string()).ok());

  EngineGroup::Options group_options;
  group_options.engine = engine_config;
  auto group = EngineGroup::Load(&base, &corpus, group_options,
                                 (root / "artifacts").string());
  KPEF_CHECK(group.ok()) << group.status().ToString();

  IngestOptions ingest_options;
  ingest_options.wal_path = (root / "ingest.wal").string();
  auto coordinator = IngestCoordinator::Create(
      group->get(), engine_config, ingest_options);
  KPEF_CHECK(coordinator.ok()) << coordinator.status().ToString();

  // --- Idle query baseline ---------------------------------------------
  QueryLoad idle;
  idle.Start(group->get(), texts, kThreads);
  const Clock::time_point idle_start = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  const uint64_t idle_queries = idle.StopAndCount();
  const double idle_seconds = SecondsSince(idle_start);
  const double idle_qps = static_cast<double>(idle_queries) / idle_seconds;
  std::printf("idle     %7.0f queries/s (%llu queries, %.2fs)\n", idle_qps,
              static_cast<unsigned long long>(idle_queries), idle_seconds);

  // --- Streaming ingest under concurrent query load --------------------
  const std::vector<std::vector<DripPaper>> batches =
      DripBatches(std::move(split->tail), kBatch);
  QueryLoad load;
  load.Start(group->get(), texts, kThreads);
  const Clock::time_point ingest_start = Clock::now();
  size_t applied = 0;
  size_t publishes = 0;
  double max_apply_seconds = 0.0;
  for (const std::vector<DripPaper>& drip : batches) {
    const Clock::time_point batch_start = Clock::now();
    auto result = (*coordinator)->Apply(ToIngestBatch(drip));
    KPEF_CHECK(result.ok()) << result.status().ToString();
    max_apply_seconds = std::max(max_apply_seconds, SecondsSince(batch_start));
    applied += result->applied;
    ++publishes;
  }
  const double ingest_seconds = SecondsSince(ingest_start);
  const uint64_t concurrent_queries = load.StopAndCount();
  const double concurrent_qps =
      static_cast<double>(concurrent_queries) / ingest_seconds;
  const IngestStats stats = (*coordinator)->Stats();

  KPEF_CHECK(applied == kHoldout)
      << "applied " << applied << " of " << kHoldout;
  KPEF_CHECK(load.empty_results.load() == 0)
      << load.empty_results.load() << " empty query results during ingest";
  const auto snapshot = group->get()->Snapshot();
  KPEF_CHECK(snapshot->owned_dataset != nullptr);
  KPEF_CHECK(snapshot->owned_dataset->Papers().size() == full.Papers().size());

  const double papers_per_sec = static_cast<double>(applied) / ingest_seconds;
  const double batches_per_sec =
      static_cast<double>(batches.size()) / ingest_seconds;
  std::printf("ingest   %7.1f papers/s  %5.1f batches/s  (%zu papers, %zu "
              "batches, %.2fs, max batch %.0f ms)\n",
              papers_per_sec, batches_per_sec, applied, batches.size(),
              ingest_seconds, max_apply_seconds * 1e3);
  std::printf("         %llu merges, %llu WAL bytes, %llu pending delta "
              "edges after drain\n",
              static_cast<unsigned long long>(stats.merges),
              static_cast<unsigned long long>(stats.wal_bytes),
              static_cast<unsigned long long>(stats.pending_delta_edges));
  std::printf("queries  %7.0f queries/s concurrent with ingest (%llu "
              "queries, 0 empty)\n",
              concurrent_qps,
              static_cast<unsigned long long>(concurrent_queries));

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  KPEF_CHECK(f != nullptr) << "cannot write " << json_path;
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"pr10_ingest\",\n"
      "  \"host_cores\": %zu,\n"
      "  \"dataset\": {\"papers\": %zu, \"holdout\": %zu, \"batch\": %zu},\n"
      "  \"query_threads\": %zu,\n"
      "  \"idle_query_qps\": %.1f,\n"
      "  \"ingest\": {\n"
      "    \"papers_per_sec\": %.1f,\n"
      "    \"batches_per_sec\": %.2f,\n"
      "    \"seconds\": %.3f,\n"
      "    \"max_batch_ms\": %.1f,\n"
      "    \"publishes\": %zu,\n"
      "    \"merges\": %llu,\n"
      "    \"wal_bytes\": %llu,\n"
      "    \"pending_delta_edges_after_drain\": %llu\n"
      "  },\n"
      "  \"concurrent_query_qps\": %.1f,\n"
      "  \"query_errors\": %llu,\n"
      "  \"note\": \"%s\"\n"
      "}\n",
      host_cores, kPapers, kHoldout, kBatch, kThreads, idle_qps,
      papers_per_sec, batches_per_sec, ingest_seconds, max_apply_seconds * 1e3,
      publishes, static_cast<unsigned long long>(stats.merges),
      static_cast<unsigned long long>(stats.wal_bytes),
      static_cast<unsigned long long>(stats.pending_delta_edges),
      concurrent_qps,
      static_cast<unsigned long long>(load.empty_results.load()),
      host_cores == 1
          ? "single-core host: query and ingest threads time-share, so the "
            "concurrent QPS understates multi-core behavior"
          : "");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  fs::remove_all(root);
  return 0;
}

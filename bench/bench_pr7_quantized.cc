// PR-7 acceptance bench: fp32 vs SQ8 PG-Index traversal, single-query vs
// batched, with recall@10 measured against exact brute force.
//
// Writes BENCH_pr7.json into the current working directory. Run from the
// repo root so the artifact lands next to the sources:
//
//   ./build/bench/bench_pr7_quantized
//
// The corpus is sized so the fp32 row matrix (~160 MB at the defaults) no
// longer fits the fast cache tiers while the SQ8 code matrix (~40 MB, 4x
// smaller rows) still does. That is the regime a real expert-embedding
// corpus serves from -- the index is much bigger than cache -- and the one
// where quantized rows, the BFS-contiguous layout, prefetch, and batch
// interleaving convert into throughput. On a machine with a small corpus
// fully cache-resident, fp32 and SQ8 converge and the speedups read ~1x;
// the JSON records the corpus geometry so that case is self-describing.
//
// Flags (for experimentation; defaults are the acceptance configuration):
//   --points N      corpus size                  (default 320000)
//   --dim D         embedding width              (default 128)
//   --batch B       SearchBatch size             (default 64)
//   --cache PATH    save/load the built index here to skip rebuilds
//   --json PATH     output path                  (default BENCH_pr7.json)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ann/brute_force.h"
#include "ann/pg_index.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "embed/matrix.h"
#include "embed/vector_ops.h"

namespace {

using namespace kpef;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Clustered points resembling paper embeddings: a few hundred dense
// communities (per-dimension center spread 3x the within-cluster noise,
// which in 128 dims separates clusters decisively). This is the regime
// the (k,P)-core expert graph produces — tight co-author communities
// with sparse bridges — and the hard case for a greedy graph: routing
// between clusters rides on the navigating node's highway edges.
Matrix MakePoints(size_t n, size_t dim, size_t clusters, uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (size_t r = 0; r < centers.rows(); ++r) {
    for (float& v : centers.Row(r)) v = static_cast<float>(rng.Normal(0, 3));
  }
  Matrix points(n, dim);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.Uniform(clusters);
    for (size_t k = 0; k < dim; ++k) {
      points.At(i, k) = centers.At(c, k) + static_cast<float>(rng.Normal(0, 1));
    }
  }
  return points;
}

double MeanRecall(const std::vector<std::vector<Neighbor>>& results,
                  const std::vector<std::vector<Neighbor>>& truth) {
  double total = 0.0;
  for (size_t q = 0; q < results.size(); ++q) {
    total += ComputeRecall(results[q], truth[q]);
  }
  return total / static_cast<double>(results.size());
}

// One mode (fp32 or SQ8) at one candidate-pool size.
struct ModeNumbers {
  double single_qps = 0.0;
  double batched_qps = 0.0;
  double recall = 0.0;  // batched == single by construction; asserted below
  double hops = 0.0;    // mean per query
  double dists = 0.0;   // mean traversal distance computations per query
};

// The query stream is wider than one batch (kQueries >> kBatch) so the
// steady-state working set is honest: with only one batch worth of
// distinct queries, every timing iteration re-touches the same few
// clusters and even the fp32 rows go cache-resident. `batches` holds
// the stream pre-sliced into kBatch-row matrices.
ModeNumbers MeasureMode(const PGIndex& index, const Matrix& queries,
                        const std::vector<Matrix>& batches,
                        const std::vector<std::vector<Neighbor>>& truth,
                        size_t top_k, size_t ef, bool force_exact,
                        double min_seconds, ThreadPool* pool) {
  const PGIndex::SearchParams params{
      .m = top_k, .ef = ef, .rerank_factor = 0.0, .force_exact = force_exact};
  const size_t nq = queries.rows();
  ModeNumbers out;

  // Recall + per-query stats from one instrumented batched pass, checked
  // against the per-query path (the lockstep loop is contractually
  // identical to serial search, so any mismatch is a bug worth crashing
  // the bench over).
  std::vector<std::vector<Neighbor>> batched;
  batched.reserve(nq);
  for (const Matrix& b : batches) {
    std::vector<PGIndex::SearchStats> stats;
    auto results = index.SearchBatch(b, params, &stats, pool);
    for (const auto& st : stats) {
      out.hops += static_cast<double>(st.hops);
      out.dists += static_cast<double>(force_exact
                                           ? st.distance_computations
                                           : st.sq8_distance_computations);
    }
    for (auto& r : results) batched.push_back(std::move(r));
  }
  out.recall = MeanRecall(batched, truth);
  out.hops /= static_cast<double>(nq);
  out.dists /= static_cast<double>(nq);
  for (size_t q = 0; q < nq; ++q) {
    const auto serial = index.Search(queries.Row(q), params);
    KPEF_CHECK(serial.size() == batched[q].size() &&
               std::equal(serial.begin(), serial.end(), batched[q].begin(),
                          [](const Neighbor& a, const Neighbor& b) {
                            return a.id == b.id;
                          }))
        << "batched result diverged from serial at query " << q;
  }

  // Single-query throughput: whole query set per pass, repeated until the
  // clock budget is spent.
  size_t done = 0;
  auto start = Clock::now();
  do {
    for (size_t q = 0; q < nq; ++q) {
      const auto result = index.Search(queries.Row(q), params);
      done += result.size() > 0;  // sink
    }
  } while (SecondsSince(start) < min_seconds);
  out.single_qps = static_cast<double>(done) / SecondsSince(start);

  // Batched throughput over the same stream, kBatch queries at a time.
  size_t batch_queries = 0;
  start = Clock::now();
  do {
    for (const Matrix& b : batches) {
      const auto results = index.SearchBatch(b, params, nullptr, pool);
      batch_queries += results.size();
    }
  } while (SecondsSince(start) < min_seconds);
  out.batched_qps =
      static_cast<double>(batch_queries) / SecondsSince(start);
  return out;
}

double FlagOr(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtod(argv[i + 1], nullptr);
    }
  }
  return fallback;
}

size_t FlagOr(int argc, char** argv, const char* name, size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

std::string FlagOr(int argc, char** argv, const char* name,
                   const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kError);
  const size_t kNumPoints = FlagOr(argc, argv, "--points", size_t{320000});
  const size_t kDim = FlagOr(argc, argv, "--dim", size_t{128});
  const size_t kBatch = FlagOr(argc, argv, "--batch", size_t{64});
  const std::string cache = FlagOr(argc, argv, "--cache", std::string());
  const std::string json_path =
      FlagOr(argc, argv, "--json", std::string("BENCH_pr7.json"));
  // Single-query fp32 QPS of the engine as it stood BEFORE this change
  // set, measured separately (the old code cannot be linked into this
  // binary) by an identical probe: same corpus recipe, same query
  // stream, same default build config, same machine. Passed in rather
  // than baked in so the JSON never carries a stale constant; when the
  // flags are absent the section is omitted.
  const double baseline_qps = FlagOr(argc, argv, "--baseline-fp32-qps", 0.0);
  const double baseline_recall =
      FlagOr(argc, argv, "--baseline-fp32-recall", 0.0);
  const size_t kTopK = 10;
  // ~1600-member communities: the greedy search spends its time
  // descending inside a cluster over rows scattered across the whole
  // corpus — the regime where the fp32 rows (4x the bytes) blow the
  // cache while the SQ8 codes stay resident, and where interleaving a
  // batch group's dependent row fetches actually overlaps misses.
  // (Fewer, bigger communities were tried and rejected: dense 16k-point
  // blobs inflate the pruned graph's traversal degree ~3.6x and sink
  // recall for every mode.)
  const size_t kClusters = kNumPoints / 1600 + 1;
  const std::vector<size_t> kEfs = {40, 60, 100};
  const size_t kHeadlineEf = 60;
  const double kMinSeconds = 1.5;

  // --- Corpus + index ---------------------------------------------------
  std::printf("corpus  %zu points x %zu dims (%zu clusters)\n", kNumPoints,
              kDim, kClusters);
  const Matrix points = MakePoints(kNumPoints, kDim, kClusters, 5150);

  std::optional<PGIndex> holder;
  double build_s = 0.0;
  if (!cache.empty()) {
    if (auto cached = PGIndex::Load(cache);
        cached.ok() && cached.value().NumPoints() == kNumPoints &&
        cached.value().points().cols() == kDim) {
      holder.emplace(std::move(cached).value());
      std::printf("build   skipped (loaded from %s)\n", cache.c_str());
    }
  }
  if (!holder.has_value()) {
    PGIndexConfig config;  // quantize=true by default
    auto start = Clock::now();
    holder.emplace(PGIndex::Build(points, config));
    build_s = SecondsSince(start);
    std::printf("build   %.1fs (%zu edges)\n", build_s,
                holder->NumEdges());
    if (!cache.empty()) KPEF_CHECK(holder->Save(cache).ok());
  }
  const PGIndex& index = *holder;
  KPEF_CHECK(index.quantized()) << "acceptance bench needs the SQ8 path";
  const size_t fp32_bytes = points.rows() * points.stride() * sizeof(float);
  const size_t code_stride = (kDim + 63) / 64 * 64;  // Sq8Codes row stride
  const size_t sq8_bytes = points.rows() * code_stride;
  std::printf("memory  fp32 rows %.1f MB, sq8 codes %.1f MB\n",
              fp32_bytes / 1e6, sq8_bytes / 1e6);

  // --- Queries + exact truth -------------------------------------------
  // kQueries distinct queries, measured kBatch at a time: wide enough
  // that the timing loops touch (nearly) every cluster each pass
  // instead of re-warming one batch's worth of rows.
  const size_t kQueries = kBatch * 8;
  Matrix queries(kQueries, kDim);
  {
    Rng rng(777);
    for (size_t q = 0; q < kQueries; ++q) {
      const size_t anchor = rng.Uniform(points.rows());
      for (size_t k = 0; k < kDim; ++k) {
        queries.At(q, k) =
            points.At(anchor, k) + static_cast<float>(rng.Normal(0, 0.5));
      }
    }
  }
  std::vector<Matrix> query_batches;
  for (size_t base = 0; base < kQueries; base += kBatch) {
    Matrix b(kBatch, kDim);
    for (size_t q = 0; q < kBatch; ++q) {
      for (size_t k = 0; k < kDim; ++k) b.At(q, k) = queries.At(base + q, k);
    }
    query_batches.push_back(std::move(b));
  }
  std::vector<std::vector<Neighbor>> truth(kQueries);
  for (size_t q = 0; q < kQueries; ++q) {
    truth[q] = BruteForceSearch(points, queries.Row(q), kTopK);
  }

  // --- Curves -----------------------------------------------------------
  struct Row {
    size_t ef;
    ModeNumbers fp32, sq8;
  };
  std::vector<Row> rows;
  for (const size_t ef : kEfs) {
    Row row{ef, {}, {}};
    // The serving pool, passed explicitly the way kpef_serve's
    // micro-batcher now hands its pool through BatchQueryOptions:
    // lockstep groups fan across its workers.
    ThreadPool* pool = &ThreadPool::Default();
    row.fp32 = MeasureMode(index, queries, query_batches, truth, kTopK, ef,
                           /*force_exact=*/true, kMinSeconds, pool);
    row.sq8 = MeasureMode(index, queries, query_batches, truth, kTopK, ef,
                          /*force_exact=*/false, kMinSeconds, pool);
    std::printf(
        "ef=%-4zu fp32: %7.0f qps single %7.0f qps batch%zu recall %.3f | "
        "sq8: %7.0f qps single %7.0f qps batch%zu recall %.3f\n",
        ef, row.fp32.single_qps, row.fp32.batched_qps, kBatch,
        row.fp32.recall, row.sq8.single_qps, row.sq8.batched_qps, kBatch,
        row.sq8.recall);
    rows.push_back(row);
  }

  const Row* headline = &rows.front();
  for (const Row& row : rows) {
    if (row.ef == kHeadlineEf) headline = &row;
  }
  const double batch_speedup =
      headline->sq8.batched_qps / headline->sq8.single_qps;
  const double vs_fp32_single =
      headline->sq8.batched_qps / headline->fp32.single_qps;
  const double recall_ratio = headline->sq8.recall / headline->fp32.recall;
  std::printf(
      "headline ef=%zu: batch_speedup %.2fx, sq8-batched vs fp32-single "
      "%.2fx, recall ratio %.3f\n",
      kHeadlineEf, batch_speedup, vs_fp32_single, recall_ratio);

  // --- JSON -------------------------------------------------------------
  std::string curves;
  for (const Row& row : rows) {
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "      {\"ef\": %zu,\n"
        "       \"fp32\": {\"single_qps\": %.1f, \"batched_qps\": %.1f, "
        "\"recall_at_10\": %.4f, \"hops\": %.1f, \"dist_comp\": %.1f},\n"
        "       \"sq8\": {\"single_qps\": %.1f, \"batched_qps\": %.1f, "
        "\"recall_at_10\": %.4f, \"hops\": %.1f, \"sq8_dist_comp\": %.1f}}%s\n",
        row.ef, row.fp32.single_qps, row.fp32.batched_qps, row.fp32.recall,
        row.fp32.hops, row.fp32.dists, row.sq8.single_qps,
        row.sq8.batched_qps, row.sq8.recall, row.sq8.hops, row.sq8.dists,
        &row == &rows.back() ? "" : ",");
    curves += buf;
  }

  std::string baseline;
  if (baseline_qps > 0.0) {
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "  \"pre_pr_baseline\": {\n"
        "    \"fp32_single_qps\": %.1f,\n"
        "    \"recall_at_10\": %.4f,\n"
        "    \"sq8_batched_vs_pre_pr_fp32_single\": %.1f,\n"
        "    \"provenance\": \"measured by an identical probe linked against"
        " the pre-change engine on the same corpus, queries, build config,"
        " and machine; per-query visited allocation and the unrepaired"
        " NNDescent graph dominate its cost\"\n"
        "  },\n",
        baseline_qps, baseline_recall,
        headline->sq8.batched_qps / baseline_qps);
    baseline = buf;
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  KPEF_CHECK(f != nullptr) << "cannot write " << json_path;
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"pr7_quantized_pgindex\",\n"
      "  \"kernel\": \"%s\",\n"
      "  \"pool_workers\": %zu,\n"
      "  \"corpus\": {\"points\": %zu, \"dim\": %zu, \"clusters\": %zu,\n"
      "             \"fp32_mb\": %.1f, \"sq8_mb\": %.1f, \"edges\": %zu,\n"
      "             \"build_seconds\": %.1f},\n"
      "  \"pgindex_search\": {\n"
      "    \"top_k\": %zu,\n"
      "    \"batch\": %zu,\n"
      "    \"ef\": %zu,\n"
      "    \"fp32_single_qps\": %.1f,\n"
      "    \"fp32_batched_qps\": %.1f,\n"
      "    \"sq8_single_qps\": %.1f,\n"
      "    \"sq8_batched_qps\": %.1f,\n"
      "    \"batch_speedup\": %.3f,\n"
      "    \"sq8_batched_vs_fp32_single\": %.3f,\n"
      "    \"recall_at_10_fp32\": %.4f,\n"
      "    \"recall_at_10_sq8\": %.4f,\n"
      "    \"recall_ratio\": %.4f,\n"
      "    \"notes\": \"single host core: batched and single-query paths"
      " share one core, so batch_speedup here is pure per-round constant"
      " amortization plus shared row decodes; SearchBatch additionally"
      " parallelizes lockstep groups across a ThreadPool when cores"
      " exist\",\n"
      "    \"curves\": [\n%s    ]\n"
      "  },\n"
      "%s"
      "  \"host_cores\": %zu\n"
      "}\n",
      ActiveKernel().name, ThreadPool::Default().num_threads(), kNumPoints,
      kDim, kClusters, fp32_bytes / 1e6, sq8_bytes / 1e6, index.NumEdges(),
      build_s, kTopK, kBatch, kHeadlineEf, headline->fp32.single_qps,
      headline->fp32.batched_qps, headline->sq8.single_qps,
      headline->sq8.batched_qps, batch_speedup, vs_fp32_single,
      headline->fp32.recall, headline->sq8.recall, recall_ratio,
      curves.c_str(), baseline.c_str(),
      static_cast<size_t>(std::thread::hardware_concurrency()));
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

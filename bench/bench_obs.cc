// PR-6 acceptance bench: what does request observability cost?
//
// Boots the real service + epoll server over a tiny-profile engine and
// drives it with closed-loop keep-alive clients three times, identical
// except for the observability configuration:
//
//   off      trace mode kOff, no access log — the PR-5 fast path
//   sampled  kSampled (head 1/64 + tail keep) + access log to a
//            discarding sink — the production default
//   always   kAlwaysOn (every trace retained) + access log
//
// Each mode runs kRepeats times round-robin (decorrelates clock-speed
// drift); the best run per mode is compared. The documented budget is
// sampled overhead < 2% of off-mode throughput (DESIGN.md §12).
//
// Writes BENCH_pr6.json into the current working directory. Run from
// the repo root:
//
//   ./build/bench/bench_obs

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "obs/trace.h"
#include "serve/http_server.h"
#include "serve/service.h"

namespace {

using namespace kpef;
using Clock = std::chrono::steady_clock;

class BenchClient {
 public:
  explicit BenchClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  /// One POST round trip; returns the HTTP status (0 on transport error).
  int RoundTrip(const std::string& body) {
    const std::string wire =
        "POST /v1/find_experts HTTP/1.1\r\ncontent-length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return 0;
      sent += static_cast<size_t>(n);
    }
    while (true) {
      const size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const int status = std::atoi(buffer_.c_str() + 9);
        const size_t body_len = ContentLength(header_end);
        const size_t total = header_end + 4 + body_len;
        while (buffer_.size() < total) {
          if (!Fill()) return 0;
        }
        buffer_.erase(0, total);
        return status;
      }
      if (!Fill()) return 0;
    }
  }

 private:
  bool Fill() {
    char buf[8192];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<size_t>(n));
    return true;
  }

  size_t ContentLength(size_t header_end) const {
    std::string lower = buffer_.substr(0, header_end);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    const size_t at = lower.find("content-length:");
    if (at == std::string::npos) return 0;
    return static_cast<size_t>(std::atoll(lower.c_str() + at + 15));
  }

  int fd_ = -1;
  std::string buffer_;
};

struct ModeResult {
  std::string name;
  double seconds = 0.0;
  size_t ok = 0;
  size_t errors = 0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t log_lines = 0;
  uint64_t traces_retained = 0;
};

double Percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  const size_t at = std::min(
      sorted->size() - 1, static_cast<size_t>(q * (sorted->size() - 1)));
  return (*sorted)[at];
}

ModeResult RunMode(const std::string& name, const EngineInfo& info,
                   serve::BatchExecuteFn execute,
                   serve::ExpertSearchService::LabelFn label,
                   serve::ServiceConfig config, size_t clients,
                   double seconds) {
  obs::Tracer::Global().ClearRequestTraces();
  const uint64_t retained_before = obs::Tracer::Global().TracesRetained();
  std::atomic<uint64_t> log_lines{0};
  if (config.trace_mode != obs::TraceMode::kOff) {
    // Production-shaped: the structured log is on whenever tracing is.
    // The sink discards the rendered line, so the cost measured is
    // rendering + locking, not disk.
    config.access_log_sink = [&log_lines](const std::string&) {
      log_lines.fetch_add(1, std::memory_order_relaxed);
    };
  }

  auto service = std::make_unique<serve::ExpertSearchService>(
      config, info, std::move(execute), std::move(label));
  serve::HttpServer server(
      serve::HttpServerConfig(),
      [&service](const serve::HttpRequest& request,
                 serve::HttpServer::Responder respond) {
        service->Handle(request, std::move(respond));
      });
  KPEF_CHECK(server.Start().ok());

  const std::vector<std::string> queries = {
      R"({"query": "graph community search", "n": 10})",
      R"({"query": "neural network embedding", "n": 10})",
      R"({"query": "database query optimization", "n": 10})",
      R"({"query": "expert finding heterogeneous graph", "n": 10})",
  };

  struct PerThread {
    size_t ok = 0, errors = 0;
    std::vector<double> latencies_ms;
  };
  std::vector<PerThread> stats(clients);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      BenchClient client(server.port());
      if (!client.ok()) return;
      size_t i = c;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto sent = Clock::now();
        const int status = client.RoundTrip(queries[i++ % queries.size()]);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - sent)
                .count();
        if (status == 200) {
          stats[c].ok++;
          stats[c].latencies_ms.push_back(ms);
        } else {
          stats[c].errors++;
          if (status == 0) return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.ShutdownGracefully(2000.0);
  service->Drain();

  ModeResult result;
  result.name = name;
  result.seconds = elapsed;
  std::vector<double> latencies;
  for (const PerThread& t : stats) {
    result.ok += t.ok;
    result.errors += t.errors;
    latencies.insert(latencies.end(), t.latencies_ms.begin(),
                     t.latencies_ms.end());
  }
  result.throughput_rps = static_cast<double>(result.ok) / elapsed;
  result.p50_ms = Percentile(&latencies, 0.50);
  result.p99_ms = Percentile(&latencies, 0.99);
  result.log_lines = log_lines.load();
  result.traces_retained =
      obs::Tracer::Global().TracesRetained() - retained_before;
  return result;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kError);

  Dataset dataset = GenerateDataset(TinyProfile());
  const Corpus corpus = BuildPaperCorpus(dataset);
  EngineConfig engine_config;
  engine_config.k = 3;
  engine_config.seed_fraction = 0.2;
  engine_config.encoder.dim = 32;
  engine_config.trainer.epochs = 2;
  engine_config.top_m = 60;
  engine_config.pg_index.knn_k = 8;
  auto built = ExpertFindingEngine::Build(&dataset, &corpus, engine_config);
  KPEF_CHECK(built.ok());
  ExpertFindingEngine* engine = built->get();
  const EngineInfo info = engine->Info();
  const HeteroGraph* graph = &engine->dataset().graph;
  auto label = [graph](NodeId id) { return graph->Label(id); };
  auto execute = [engine](const std::vector<std::string>& texts, size_t n,
                          const BatchQueryOptions& options,
                          std::vector<QueryStats>* stats) {
    return engine->FindExpertsBatch(texts, n, options, stats);
  };

  auto config_for = [](obs::TraceMode mode) {
    serve::ServiceConfig config;
    config.batcher.max_batch_size = 16;
    config.batcher.max_queue_age_ms = 2.0;
    config.trace_mode = mode;
    config.trace_head_every = 64;
    return config;
  };
  const struct {
    const char* name;
    obs::TraceMode mode;
  } kModes[] = {
      {"off", obs::TraceMode::kOff},
      {"sampled", obs::TraceMode::kSampled},
      {"always", obs::TraceMode::kAlwaysOn},
  };

  constexpr size_t kClients = 8;
  constexpr double kSeconds = 1.2;
  constexpr int kRepeats = 3;

  // Warmup (discarded): page in the engine and the allocator.
  RunMode("warmup", info, execute, label, config_for(obs::TraceMode::kOff),
          kClients, 0.4);

  // Round-robin repeats so slow drift (thermal, noisy neighbours) hits
  // every mode equally; keep each mode's best run.
  ModeResult best[3];
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (int m = 0; m < 3; ++m) {
      ModeResult r = RunMode(kModes[m].name, info, execute, label,
                             config_for(kModes[m].mode), kClients, kSeconds);
      std::printf("rep%d %-8s %7.0f req/s  p50 %6.3fms  p99 %6.3fms  "
                  "ok=%zu log_lines=%llu retained=%llu\n",
                  rep, r.name.c_str(), r.throughput_rps, r.p50_ms, r.p99_ms,
                  r.ok, static_cast<unsigned long long>(r.log_lines),
                  static_cast<unsigned long long>(r.traces_retained));
      if (r.throughput_rps > best[m].throughput_rps) best[m] = r;
    }
  }

  const double off_rps = best[0].throughput_rps;
  double overhead_pct[3] = {0.0, 0.0, 0.0};
  for (int m = 1; m < 3; ++m) {
    overhead_pct[m] =
        off_rps > 0.0
            ? (off_rps - best[m].throughput_rps) / off_rps * 100.0
            : 0.0;
  }
  const bool sampled_ok = overhead_pct[1] < 2.0;
  std::printf("\nacceptance: sampled overhead %.2f%% vs off "
              "(budget < 2%%: %s); always-on %.2f%%\n",
              overhead_pct[1], sampled_ok ? "yes" : "NO", overhead_pct[2]);

  FILE* out = std::fopen("BENCH_pr6.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_pr6.json for writing\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"clients\": %zu, \"seconds_per_run\": %.1f, "
                    "\"repeats\": %d,\n  \"modes\": [\n",
               kClients, kSeconds, kRepeats);
  for (int m = 0; m < 3; ++m) {
    const ModeResult& r = best[m];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"throughput_rps\": %.1f, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"ok\": %zu, \"errors\": %zu, "
        "\"log_lines\": %llu, \"traces_retained\": %llu, "
        "\"overhead_pct_vs_off\": %.2f}%s\n",
        r.name.c_str(), r.throughput_rps, r.p50_ms, r.p99_ms, r.ok, r.errors,
        static_cast<unsigned long long>(r.log_lines),
        static_cast<unsigned long long>(r.traces_retained), overhead_pct[m],
        m < 2 ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"acceptance\": "
               "{\"sampled_overhead_within_2pct\": %s}\n}\n",
               sampled_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_pr6.json\n");
  return 0;
}

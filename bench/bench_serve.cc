// PR-5 acceptance bench: the serving subsystem under closed-loop load.
//
// Boots a real ExpertSearchService + epoll HttpServer (ephemeral port)
// over an engine built on the tiny synthetic profile, then drives it
// with closed-loop keep-alive HTTP clients:
//
//   1. Batching sweep: 1/4/16 clients against batch<=16/age 2ms, plus a
//      16-client run with batching disabled (batch size 1) as the
//      baseline. Records throughput, p50/p99 latency, and the mean
//      batch size observed by the engine (the acceptance bar is
//      mean > 1 under concurrent load).
//   2. Shedding: a deliberately slowed engine behind a 4-deep admission
//      queue; counts 200 vs 429 under 16 clients.
//
// Writes BENCH_pr5.json into the current working directory. Run from
// the repo root so the artifact lands next to the sources:
//
//   ./build/bench/bench_serve

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/engine.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "serve/http_server.h"
#include "serve/service.h"

namespace {

using namespace kpef;
using Clock = std::chrono::steady_clock;

// --- Minimal blocking keep-alive client ------------------------------

class BenchClient {
 public:
  explicit BenchClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  /// One POST /v1/find_experts round trip. Returns the HTTP status
  /// (0 on transport error) and the response's "batch_size" field.
  int RoundTrip(const std::string& body, double* batch_size) {
    const std::string wire =
        "POST /v1/find_experts HTTP/1.1\r\ncontent-length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return 0;
      sent += static_cast<size_t>(n);
    }
    // Read one response: headers, then content-length body bytes.
    while (true) {
      const size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const int status = std::atoi(buffer_.c_str() + 9);
        const size_t body_len = HeaderNumber(header_end, "content-length:");
        const size_t total = header_end + 4 + body_len;
        while (buffer_.size() < total) {
          if (!Fill()) return 0;
        }
        if (batch_size != nullptr) {
          *batch_size = BodyNumber(header_end + 4, total, "\"batch_size\":");
        }
        buffer_.erase(0, total);
        return status;
      }
      if (!Fill()) return 0;
    }
  }

 private:
  bool Fill() {
    char buf[8192];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<size_t>(n));
    return true;
  }

  size_t HeaderNumber(size_t header_end, const char* key) const {
    // Case-insensitive scan of the (lowercase-emitted) response head.
    const std::string head = buffer_.substr(0, header_end);
    std::string lower = head;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    const size_t at = lower.find(key);
    if (at == std::string::npos) return 0;
    return static_cast<size_t>(
        std::atoll(head.c_str() + at + std::strlen(key)));
  }

  double BodyNumber(size_t begin, size_t end, const char* key) const {
    const size_t at = buffer_.find(key, begin);
    if (at == std::string::npos || at >= end) return 0.0;
    return std::atof(buffer_.c_str() + at + std::strlen(key));
  }

  int fd_ = -1;
  std::string buffer_;
};

// --- Closed-loop scenario runner -------------------------------------

struct ScenarioResult {
  std::string name;
  size_t clients = 0;
  size_t batch_limit = 0;
  double age_ms = 0.0;
  double seconds = 0.0;
  size_t ok = 0;
  size_t shed = 0;
  size_t errors = 0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch_size = 0.0;
};

double Percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  const size_t at = std::min(
      sorted->size() - 1, static_cast<size_t>(q * (sorted->size() - 1)));
  return (*sorted)[at];
}

/// Runs `clients` closed-loop threads for `seconds` of wall clock
/// against the service described by `config`, built over `execute`.
ScenarioResult RunScenario(const std::string& name, const EngineInfo& info,
                           serve::BatchExecuteFn execute,
                           serve::ExpertSearchService::LabelFn label,
                           serve::ServiceConfig config, size_t clients,
                           double seconds) {
  auto service = std::make_unique<serve::ExpertSearchService>(
      config, info, std::move(execute), std::move(label));
  serve::HttpServer server(
      serve::HttpServerConfig(),
      [&service](const serve::HttpRequest& request,
                 serve::HttpServer::Responder respond) {
        service->Handle(request, std::move(respond));
      });
  KPEF_CHECK(server.Start().ok());

  const std::vector<std::string> queries = {
      R"({"query": "graph community search", "n": 10})",
      R"({"query": "neural network embedding", "n": 10})",
      R"({"query": "database query optimization", "n": 10})",
      R"({"query": "expert finding heterogeneous graph", "n": 10})",
  };

  struct PerThread {
    size_t ok = 0, shed = 0, errors = 0;
    double batch_sum = 0.0;
    std::vector<double> latencies_ms;
  };
  std::vector<PerThread> stats(clients);
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      BenchClient client(server.port());
      if (!client.ok()) return;
      size_t i = c;  // stagger query rotation across clients
      while (!stop.load(std::memory_order_relaxed)) {
        const auto sent = Clock::now();
        double batch = 0.0;
        const int status =
            client.RoundTrip(queries[i++ % queries.size()], &batch);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - sent)
                .count();
        if (status == 200) {
          stats[c].ok++;
          stats[c].batch_sum += batch;
          stats[c].latencies_ms.push_back(ms);
        } else if (status == 429) {
          stats[c].shed++;
        } else {
          stats[c].errors++;
          if (status == 0) return;  // transport broken: stop this client
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  server.ShutdownGracefully(2000.0);
  service->Drain();

  ScenarioResult result;
  result.name = name;
  result.clients = clients;
  result.batch_limit = config.batcher.max_batch_size;
  result.age_ms = config.batcher.max_queue_age_ms;
  result.seconds = elapsed;
  std::vector<double> latencies;
  double batch_sum = 0.0;
  for (const PerThread& t : stats) {
    result.ok += t.ok;
    result.shed += t.shed;
    result.errors += t.errors;
    batch_sum += t.batch_sum;
    latencies.insert(latencies.end(), t.latencies_ms.begin(),
                     t.latencies_ms.end());
  }
  result.throughput_rps = static_cast<double>(result.ok) / elapsed;
  result.p50_ms = Percentile(&latencies, 0.50);
  result.p99_ms = Percentile(&latencies, 0.99);
  result.mean_batch_size =
      result.ok > 0 ? batch_sum / static_cast<double>(result.ok) : 0.0;
  std::printf(
      "%-28s clients=%2zu batch<=%2zu  %7.0f req/s  p50 %6.3fms  "
      "p99 %6.3fms  mean_batch %.2f  ok=%zu shed=%zu err=%zu\n",
      name.c_str(), clients, result.batch_limit, result.throughput_rps,
      result.p50_ms, result.p99_ms, result.mean_batch_size, result.ok,
      result.shed, result.errors);
  return result;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kError);

  Dataset dataset = GenerateDataset(TinyProfile());
  const Corpus corpus = BuildPaperCorpus(dataset);
  EngineConfig engine_config;
  engine_config.k = 3;
  engine_config.seed_fraction = 0.2;
  engine_config.encoder.dim = 32;
  engine_config.trainer.epochs = 2;
  engine_config.top_m = 60;
  engine_config.pg_index.knn_k = 8;
  auto built = ExpertFindingEngine::Build(&dataset, &corpus, engine_config);
  KPEF_CHECK(built.ok());
  ExpertFindingEngine* engine = built->get();
  const EngineInfo info = engine->Info();
  const HeteroGraph* graph = &engine->dataset().graph;
  auto label = [graph](NodeId id) { return graph->Label(id); };
  auto execute = [engine](const std::vector<std::string>& texts, size_t n,
                          const BatchQueryOptions& options,
                          std::vector<QueryStats>* stats) {
    return engine->FindExpertsBatch(texts, n, options, stats);
  };

  const double kSeconds = 1.5;
  std::vector<ScenarioResult> results;

  // 1. Baseline: batching disabled, 16 concurrent closed-loop clients.
  {
    serve::ServiceConfig config;
    config.batcher.max_batch_size = 1;
    config.batcher.max_queue_age_ms = 0.0;
    results.push_back(RunScenario("unbatched", info, execute, label, config,
                                  16, kSeconds));
  }

  // 2. Batching sweep: same knobs, growing concurrency.
  for (const size_t clients : {size_t{1}, size_t{4}, size_t{16}}) {
    serve::ServiceConfig config;
    config.batcher.max_batch_size = 16;
    config.batcher.max_queue_age_ms = 2.0;
    results.push_back(RunScenario(
        "batch16_age2_c" + std::to_string(clients), info, execute, label,
        config, clients, kSeconds));
  }

  // 3. Shedding: slow the engine to 5ms per batch behind a 4-deep
  //    admission queue; 16 closed-loop clients must see 429s while the
  //    server keeps answering the admitted fraction.
  {
    serve::BatchExecuteFn slow_execute =
        [engine](const std::vector<std::string>& texts, size_t n,
                 const BatchQueryOptions& options,
                 std::vector<QueryStats>* stats) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          return engine->FindExpertsBatch(texts, n, options, stats);
        };
    serve::ServiceConfig config;
    config.batcher.max_batch_size = 4;
    config.batcher.max_queue_age_ms = 2.0;
    config.batcher.max_pending = 4;
    results.push_back(RunScenario("shed_pending4_slow5ms", info,
                                  slow_execute, label, config, 16, kSeconds));
  }

  const ScenarioResult& loaded = results[3];  // batch16_age2_c16
  const ScenarioResult& shed = results.back();
  std::printf("\nacceptance: mean batch under 16 clients = %.2f (> 1: %s), "
              "sheds at full queue = %zu (> 0: %s)\n",
              loaded.mean_batch_size,
              loaded.mean_batch_size > 1.0 ? "yes" : "NO",
              shed.shed, shed.shed > 0 ? "yes" : "NO");

  FILE* out = std::fopen("BENCH_pr5.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_pr5.json for writing\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"clients\": %zu, \"batch_limit\": %zu, "
        "\"age_ms\": %.1f, \"seconds\": %.3f, \"ok\": %zu, \"shed\": %zu, "
        "\"errors\": %zu, \"throughput_rps\": %.1f, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"mean_batch_size\": %.3f}%s\n",
        r.name.c_str(), r.clients, r.batch_limit, r.age_ms, r.seconds, r.ok,
        r.shed, r.errors, r.throughput_rps, r.p50_ms, r.p99_ms,
        r.mean_batch_size, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"acceptance\": {\"mean_batch_gt_1\": %s, "
               "\"sheds_when_full\": %s}\n}\n",
               loaded.mean_batch_size > 1.0 ? "true" : "false",
               shed.shed > 0 ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_pr5.json\n");
  return 0;
}

// Ablation A3: TA-based top-n expert finding vs full scan.
//
// Synthetic ranked lists with a controllable number of papers (m) and
// candidate experts. Expected shape: TA touches fewer list entries and
// terminates early, with identical results (verified in tests).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "obs/export.h"
#include "obs/pipeline_metrics.h"

#include "common/rng.h"
#include "ranking/expert_score.h"
#include "ranking/top_n_finder.h"

namespace {

using namespace kpef;

// Mirrors the engine's ranked lists: each "paper" has 1-5 authors drawn
// with Zipf-skewed popularity (prolific experts recur across lists), and
// scores follow Eq. 4: Zipf author weight scaled by the paper rank.
RankedLists MakeLists(size_t num_papers, size_t author_pool, uint64_t seed) {
  Rng rng(seed);
  RankedLists lists;
  lists.lists.resize(num_papers);
  lists.papers.resize(num_papers);
  std::set<NodeId> candidates;
  for (size_t j = 0; j < num_papers; ++j) {
    lists.papers[j] = static_cast<NodeId>(j);
    const size_t num_authors = 1 + rng.Uniform(5);
    std::set<NodeId> used;
    for (size_t rank = 1; rank <= num_authors; ++rank) {
      const NodeId author =
          static_cast<NodeId>(rng.Zipf(author_pool, 1.3) - 1);
      if (!used.insert(author).second) continue;
      const double score = ZipfContribution(used.size(), num_authors) /
                           static_cast<double>(j + 1);
      lists.lists[j].push_back({author, score});
      candidates.insert(author);
    }
    std::sort(lists.lists[j].begin(), lists.lists[j].end(),
              [](const ExpertScore& x, const ExpertScore& y) {
                if (x.score != y.score) return x.score > y.score;
                return x.author < y.author;
              });
  }
  lists.num_candidates = candidates.size();
  return lists;
}

const RankedLists& ListsFor(int64_t m) {
  static auto* cache = new std::map<int64_t, RankedLists>();
  auto it = cache->find(m);
  if (it == cache->end()) {
    it = cache->emplace(
                  m, MakeLists(static_cast<size_t>(m),
                               static_cast<size_t>(m) * 2, 99))
             .first;
  }
  return it->second;
}

void BM_ThresholdTopN(benchmark::State& state) {
  const RankedLists& lists = ListsFor(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  TopNStats stats;
  for (auto _ : state) {
    const auto top = ThresholdTopN(lists, n, &stats);
    benchmark::DoNotOptimize(top.data());
  }
  state.counters["entries"] = static_cast<double>(stats.entries_accessed);
  state.counters["early"] = stats.early_terminated ? 1.0 : 0.0;
}

void BM_FullScanTopN(benchmark::State& state) {
  const RankedLists& lists = ListsFor(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  TopNStats stats;
  for (auto _ : state) {
    const auto top = FullScanTopN(lists, n, &stats);
    benchmark::DoNotOptimize(top.data());
  }
  state.counters["entries"] = static_cast<double>(stats.entries_accessed);
}

}  // namespace

BENCHMARK(BM_ThresholdTopN)
    ->Args({100, 20})
    ->Args({400, 20})
    ->Args({1000, 20})
    ->Args({1000, 5})
    ->Args({1000, 100});
BENCHMARK(BM_FullScanTopN)
    ->Args({100, 20})
    ->Args({400, 20})
    ->Args({1000, 20})
    ->Args({1000, 5})
    ->Args({1000, 100});

// Custom main (instead of BENCHMARK_MAIN) so the run ends with a dump
// of the pipeline metrics accumulated across all benchmark iterations.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  kpef::obs::WarmPipelineMetrics();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  std::printf("\n### metrics (JSON)\n\n%s",
              kpef::obs::ExportMetricsJson().c_str());
  return 0;
}

// Table VI: overhead of PG-Index construction (Aminer profile).
//
// Builds the index over progressively smaller subsets of the graph (the
// paper's G, G1..G4) and reports construction time and memory. Expected
// shape: both grow roughly linearly with graph size.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "embed/pretrain.h"
#include "embed/text_embedding.h"

int main() {
  using namespace kpef;
  using namespace kpef::bench;
  SetLogLevel(LogLevel::kError);

  PrintHeader("Table VI: overhead of PG-Index (aminer)");
  std::printf("%-22s %10s %10s %12s %12s\n", "Graph", "papers", "edges",
              "Mem (MB)", "Time (s)");
  const double factors[] = {1.0, 0.8, 0.4, 0.2, 0.1};
  const char* names[] = {"G", "G1", "G2", "G3", "G4"};
  for (size_t i = 0; i < 5; ++i) {
    DatasetConfig config =
        AminerProfile().ScaledCopy(Scale() * factors[i], "");
    config.name = names[i];
    const Dataset dataset = GenerateDataset(config);
    const Corpus corpus = BuildPaperCorpus(dataset);
    // Index overhead is independent of fine-tuning; embed with the
    // pre-trained encoder directly.
    PretrainConfig pretrain;
    pretrain.dim = 64;
    const Matrix tokens =
        PretrainTokenEmbeddings(corpus, pretrain).token_embeddings;
    const Matrix embeddings = MeanEmbedAllDocuments(tokens, corpus);

    PGIndexConfig index_config;
    index_config.knn_k = 10;
    PGIndexBuildStats stats;
    const PGIndex index = PGIndex::Build(embeddings, index_config, &stats);
    std::printf("%s(%zu nodes, %zu edges) %8zu %10zu %12.2f %12.2f\n",
                names[i], dataset.graph.NumNodes(), dataset.graph.NumEdges(),
                dataset.Papers().size(), index.NumEdges(),
                static_cast<double>(index.MemoryUsageBytes()) / (1 << 20),
                stats.build_seconds);
  }
  return 0;
}

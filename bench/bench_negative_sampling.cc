// Table V: effect of the negative sampling strategy (Aminer profile).
//
// Compares Random (1:3) against Near with s = 1..4 negatives per
// positive. Expected shape: near >= random at the same s; gains saturate
// by s = 3; training time grows with s.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"

int main() {
  using namespace kpef;
  using namespace kpef::bench;
  SetLogLevel(LogLevel::kError);

  PrintHeader("Table V: effect of the negative sampling strategy (aminer)");
  const BenchDataset data(AminerProfile());
  const Evaluator evaluator(&data.dataset, &data.queries, &data.corpus,
                            &data.tfidf, &data.tokens);

  struct Config {
    const char* name;
    NegativeStrategy strategy;
    size_t s;
  };
  const Config configs[] = {
      {"Random (1:3)", NegativeStrategy::kRandom, 3},
      {"Near (1:1)", NegativeStrategy::kNear, 1},
      {"Near (1:2)", NegativeStrategy::kNear, 2},
      {"Near (1:3)", NegativeStrategy::kNear, 3},
      {"Near (1:4)", NegativeStrategy::kNear, 4},
  };
  std::printf("%-14s %7s %7s %7s %10s %10s\n", "Strategy", "MAP", "P@5",
              "ADS", "triples", "train(s)");
  for (const Config& c : configs) {
    EngineConfig config = DefaultEngineConfig(data);
    config.negative_strategy = c.strategy;
    config.negatives_per_positive = c.s;
    EngineBuildReport report;
    auto engine = BuildEngine(data, config, &report);
    const EvaluationResult r = evaluator.Evaluate(*engine, 20);
    std::printf("%-14s %7.3f %7.3f %7.3f %10zu %10.2f\n", c.name, r.map,
                r.p_at_5, r.ads, report.sampling.triples.size(),
                report.training.train_seconds);
  }
  return 0;
}

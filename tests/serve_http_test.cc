// Hostile-input tests for the serving subsystem's HTTP parser and JSON
// layer: split reads, pipelining, missing/huge/garbage Content-Length,
// truncated headers, non-UTF-8 bodies. The contract under attack input
// is "400, never crash or hang" (ISSUE 5 satellite).

#include <string>

#include <gtest/gtest.h>

#include "serve/http_parser.h"
#include "serve/json_util.h"

namespace kpef::serve {
namespace {

using State = HttpRequestParser::State;

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Feed("GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n"),
            State::kComplete);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.Path(), "/healthz");
  EXPECT_TRUE(request.keep_alive);
  EXPECT_TRUE(request.body.empty());
  ASSERT_NE(request.FindHeader("host"), nullptr);
  EXPECT_EQ(*request.FindHeader("host"), "x");
}

TEST(HttpParserTest, ParsesPostBodyAndQueryString) {
  HttpRequestParser parser;
  const std::string wire =
      "POST /v1/find_experts?verbose=1 HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 16\r\n\r\n"
      "{\"query\":\"gnn\"}\n";
  EXPECT_EQ(parser.Feed(wire), State::kComplete);
  EXPECT_EQ(parser.request().Path(), "/v1/find_experts");
  EXPECT_EQ(parser.request().body, "{\"query\":\"gnn\"}\n");
  // Header names are lowercased.
  ASSERT_NE(parser.request().FindHeader("content-type"), nullptr);
}

TEST(HttpParserTest, SplitReadsOfAnyGranularity) {
  const std::string wire =
      "POST /v1/find_experts HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
  // Byte-by-byte feed must hit kComplete exactly at the last byte.
  HttpRequestParser parser;
  for (size_t i = 0; i < wire.size(); ++i) {
    const State state = parser.Feed(&wire[i], 1);
    if (i + 1 < wire.size()) {
      ASSERT_EQ(state, State::kNeedMore) << "byte " << i;
    } else {
      ASSERT_EQ(state, State::kComplete);
    }
  }
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(HttpParserTest, PipelinedRequestsCompleteWithoutFurtherFeeds) {
  HttpRequestParser parser;
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nok";
  EXPECT_EQ(parser.Feed(two), State::kComplete);
  EXPECT_EQ(parser.request().target, "/a");
  EXPECT_EQ(parser.ConsumeRequest(), State::kComplete);
  EXPECT_EQ(parser.request().target, "/b");
  EXPECT_EQ(parser.request().body, "ok");
  EXPECT_EQ(parser.ConsumeRequest(), State::kNeedMore);
  EXPECT_EQ(parser.BufferedBytes(), 0u);
}

TEST(HttpParserTest, MissingContentLengthMeansEmptyBody) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Feed("POST /v1/find_experts HTTP/1.1\r\n\r\n"),
            State::kComplete);
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParserTest, HugeContentLengthRejectedBeforeBuffering) {
  HttpRequestParser parser;  // default max body 1 MiB
  EXPECT_EQ(
      parser.Feed("POST /x HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n"),
      State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, OverflowingContentLengthRejected) {
  HttpRequestParser parser;
  // 10^30 would wrap a naive 64-bit parse into a small allocation.
  EXPECT_EQ(parser.Feed("POST /x HTTP/1.1\r\ncontent-length: "
                        "1000000000000000000000000000000\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, NegativeAndGarbageContentLengthRejected) {
  for (const char* value : {"-5", "0x10", "12a", "1e3", ""}) {
    HttpRequestParser parser;
    const std::string wire = std::string("POST /x HTTP/1.1\r\ncontent-length:")
                             + value + "\r\n\r\n";
    EXPECT_EQ(parser.Feed(wire), State::kError) << value;
  }
}

TEST(HttpParserTest, TruncatedHeadersStayIncompleteThenBounded) {
  HttpRequestParser parser;
  // A truncated header block never completes and never errors...
  EXPECT_EQ(parser.Feed("GET /x HTTP/1.1\r\nhost: exam"), State::kNeedMore);
  // ...until it exceeds the header budget, at which point it errors
  // instead of buffering without bound.
  const std::string filler(9000, 'a');
  EXPECT_EQ(parser.Feed(filler), State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, MalformedRequestLinesRejected) {
  for (const char* line :
       {"GET\r\n\r\n", "GET /x\r\n\r\n", "GET /x HTTP/2.0\r\n\r\n",
        "GET /x HTTP/1.1 extra\r\n\r\n", " / HTTP/1.1\r\n\r\n",
        "GET x HTTP/1.1\r\n\r\n", "\r\n\r\n"}) {
    HttpRequestParser parser;
    EXPECT_EQ(parser.Feed(line), State::kError) << line;
    EXPECT_EQ(parser.error_status(), 400) << line;
  }
}

TEST(HttpParserTest, MalformedHeaderLinesRejected) {
  for (const char* header :
       {"no-colon-here\r\n", ": empty-name\r\n", "bad name: x\r\n"}) {
    HttpRequestParser parser;
    const std::string wire =
        std::string("GET /x HTTP/1.1\r\n") + header + "\r\n";
    EXPECT_EQ(parser.Feed(wire), State::kError) << header;
  }
}

TEST(HttpParserTest, TransferEncodingRejected) {
  HttpRequestParser parser;
  EXPECT_EQ(
      parser.Feed("POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
      State::kError);
}

TEST(HttpParserTest, ConnectionSemantics) {
  {
    HttpRequestParser parser;
    parser.Feed("GET /x HTTP/1.1\r\nconnection: close\r\n\r\n");
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    HttpRequestParser parser;
    parser.Feed("GET /x HTTP/1.0\r\n\r\n");
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    HttpRequestParser parser;
    parser.Feed("GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
    EXPECT_TRUE(parser.request().keep_alive);
  }
}

TEST(HttpParserTest, BareLfLineEndingsAccepted) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Feed("GET /x HTTP/1.1\nhost: y\n\n"), State::kComplete);
  EXPECT_EQ(*parser.request().FindHeader("host"), "y");
}

// --- JSON layer ------------------------------------------------------

TEST(JsonTest, ParsesFindExpertsRequest) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"query": "graph neural networks", "n": 5, "deadline_ms": 50.5})",
      &doc, &error))
      << error;
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Find("query"), nullptr);
  EXPECT_EQ(doc.Find("query")->string_value, "graph neural networks");
  EXPECT_EQ(doc.Find("n")->number_value, 5.0);
  EXPECT_EQ(doc.Find("deadline_ms")->number_value, 50.5);
}

TEST(JsonTest, RejectsNonUtf8Bodies) {
  JsonValue doc;
  std::string error;
  // Invalid lead byte, overlong encoding, lone continuation, surrogate.
  for (const std::string& body :
       {std::string("{\"query\":\"\xff\"}"),
        std::string("{\"query\":\"\xc0\xaf\"}"),
        std::string("{\"query\":\"\x80\"}"),
        std::string("{\"query\":\"\xed\xa0\x80\"}")}) {
    EXPECT_FALSE(ParseJson(body, &doc, &error)) << body;
    EXPECT_NE(error.find("UTF-8"), std::string::npos);
  }
  // Well-formed multibyte UTF-8 passes.
  EXPECT_TRUE(ParseJson("{\"query\":\"caf\xc3\xa9 \xe2\x9c\x93\"}", &doc,
                        &error))
      << error;
}

TEST(JsonTest, RejectsMalformedDocuments) {
  JsonValue doc;
  std::string error;
  for (const char* body :
       {"", "{", "{\"a\":}", "{\"a\":1,}", "[1,2", "tru", "01", "1.",
        "\"unterminated", "{\"a\" 1}", "{\"a\":1} trailing",
        "{\"a\":\"\\q\"}", "{\"a\":\"\\ud800\"}", "nan", "-", "+1"}) {
    EXPECT_FALSE(ParseJson(body, &doc, &error)) << body;
  }
}

TEST(JsonTest, DepthBombRejected) {
  std::string bomb;
  for (int i = 0; i < 4000; ++i) bomb.push_back('[');
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(ParseJson(bomb, &doc, &error));
  EXPECT_NE(error.find("deep"), std::string::npos);
}

TEST(JsonTest, SurrogatePairAndEscapeDecoding) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(
      ParseJson(R"({"s": "\u00e9\n\t\"\\\ud83d\ude00"})", &doc, &error))
      << error;
  const JsonValue* s = doc.Find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string_value, "\xc3\xa9\n\t\"\\\xf0\x9f\x98\x80");
}

TEST(JsonTest, StringEscaping) {
  std::string out;
  AppendJsonString("a\"b\\c\nd\x01", &out);
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(JsonTest, NumberFormattingRoundTrips) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(2.0), "2");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  const double value = 0.1234567890123;
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(JsonNumber(value), &doc, &error));
  EXPECT_EQ(doc.number_value, value);
}

}  // namespace
}  // namespace kpef::serve

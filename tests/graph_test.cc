#include <vector>

#include <gtest/gtest.h>

#include "graph/hetero_graph.h"
#include "graph/schema.h"

namespace kpef {
namespace {

TEST(SchemaTest, RegistersNodeAndEdgeTypes) {
  Schema schema;
  const NodeTypeId a = schema.AddNodeType("A");
  const NodeTypeId p = schema.AddNodeType("P");
  const EdgeTypeId w = schema.AddEdgeType("Write", a, p);
  EXPECT_EQ(schema.NumNodeTypes(), 2u);
  EXPECT_EQ(schema.NumEdgeTypes(), 1u);
  EXPECT_EQ(schema.FindNodeType("A"), a);
  EXPECT_EQ(schema.FindNodeType("X"), kInvalidNodeType);
  EXPECT_EQ(schema.FindEdgeType("Write"), w);
  EXPECT_EQ(schema.FindEdgeType("Cite"), kInvalidEdgeType);
  EXPECT_EQ(schema.EdgeTypeBetween(a, p), w);
  EXPECT_EQ(schema.EdgeTypeBetween(p, a), w);  // either orientation
  EXPECT_EQ(schema.EdgeTypeBetween(a, a), kInvalidEdgeType);
}

TEST(SchemaTest, AcademicSchemaShape) {
  const AcademicSchema s = AcademicSchema::Make();
  EXPECT_EQ(s.schema.NumNodeTypes(), 4u);
  EXPECT_EQ(s.schema.NumEdgeTypes(), 4u);
  EXPECT_EQ(s.schema.NodeTypeName(s.paper), "P");
  EXPECT_EQ(s.schema.EdgeSrcType(s.write), s.author);
  EXPECT_EQ(s.schema.EdgeDstType(s.write), s.paper);
  EXPECT_EQ(s.schema.EdgeSrcType(s.cite), s.paper);
  EXPECT_EQ(s.schema.EdgeDstType(s.cite), s.paper);
}

class HeteroGraphTest : public ::testing::Test {
 protected:
  HeteroGraphTest() : ids_(AcademicSchema::Make()) {
    HeteroGraphBuilder builder(ids_.schema);
    a1_ = builder.AddNode(ids_.author, "a1");
    a2_ = builder.AddNode(ids_.author, "a2");
    p1_ = builder.AddNode(ids_.paper, "paper one");
    p2_ = builder.AddNode(ids_.paper, "paper two");
    v1_ = builder.AddNode(ids_.venue, "icde");
    // p1 authored by (a1, a2) in that rank order; p2 by a2 only.
    EXPECT_TRUE(builder.AddEdge(ids_.write, a1_, p1_).ok());
    EXPECT_TRUE(builder.AddEdge(ids_.write, a2_, p1_).ok());
    EXPECT_TRUE(builder.AddEdge(ids_.write, a2_, p2_).ok());
    EXPECT_TRUE(builder.AddEdge(ids_.publish, p1_, v1_).ok());
    EXPECT_TRUE(builder.AddEdge(ids_.cite, p2_, p1_).ok());
    graph_ = std::move(builder).Build();
  }

  AcademicSchema ids_;
  HeteroGraph graph_;
  NodeId a1_, a2_, p1_, p2_, v1_;
};

TEST_F(HeteroGraphTest, CountsAndTypes) {
  EXPECT_EQ(graph_.NumNodes(), 5u);
  EXPECT_EQ(graph_.NumEdges(), 5u);
  EXPECT_EQ(graph_.NumEdgesOfType(ids_.write), 3u);
  EXPECT_EQ(graph_.NumEdgesOfType(ids_.cite), 1u);
  EXPECT_EQ(graph_.TypeOf(a1_), ids_.author);
  EXPECT_EQ(graph_.TypeOf(p1_), ids_.paper);
  EXPECT_EQ(graph_.Label(p1_), "paper one");
}

TEST_F(HeteroGraphTest, NeighborsBothDirections) {
  const auto papers_of_a2 = graph_.Neighbors(a2_, ids_.write);
  EXPECT_EQ(std::vector<NodeId>(papers_of_a2.begin(), papers_of_a2.end()),
            (std::vector<NodeId>{p1_, p2_}));
  const auto authors_of_p1 = graph_.Neighbors(p1_, ids_.write);
  EXPECT_EQ(std::vector<NodeId>(authors_of_p1.begin(), authors_of_p1.end()),
            (std::vector<NodeId>{a1_, a2_}));  // author-rank order
}

TEST_F(HeteroGraphTest, CiteIsTraversableBothWays) {
  const auto out = graph_.Neighbors(p2_, ids_.cite);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], p1_);
  const auto in = graph_.Neighbors(p1_, ids_.cite);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0], p2_);
}

TEST_F(HeteroGraphTest, NodesOfTypeAndLocalIndex) {
  const auto& papers = graph_.NodesOfType(ids_.paper);
  EXPECT_EQ(papers, (std::vector<NodeId>{p1_, p2_}));
  EXPECT_EQ(graph_.LocalIndex(p1_), 0u);
  EXPECT_EQ(graph_.LocalIndex(p2_), 1u);
  EXPECT_EQ(graph_.LocalIndex(a2_), 1u);
  EXPECT_EQ(graph_.NumNodesOfType(ids_.venue), 1u);
  EXPECT_EQ(graph_.NumNodesOfType(ids_.topic), 0u);
}

TEST_F(HeteroGraphTest, DegreeMatchesNeighborCount) {
  EXPECT_EQ(graph_.Degree(a2_, ids_.write), 2u);
  EXPECT_EQ(graph_.Degree(p1_, ids_.publish), 1u);
  EXPECT_EQ(graph_.Degree(v1_, ids_.publish), 1u);
  EXPECT_EQ(graph_.Degree(p2_, ids_.publish), 0u);
}

TEST_F(HeteroGraphTest, RejectsWrongEndpointTypes) {
  HeteroGraphBuilder builder(ids_.schema);
  const NodeId a = builder.AddNode(ids_.author);
  const NodeId p = builder.AddNode(ids_.paper);
  // Write expects (author, paper) orientation.
  EXPECT_FALSE(builder.AddEdge(ids_.write, p, a).ok());
  EXPECT_FALSE(builder.AddEdge(ids_.cite, a, p).ok());
  EXPECT_FALSE(builder.AddEdge(ids_.write, a, 99).ok());
  EXPECT_FALSE(builder.AddEdge(static_cast<EdgeTypeId>(42), a, p).ok());
}

TEST_F(HeteroGraphTest, InducedSubgraphKeepsSelectedEdges) {
  // Keep a2, p1, p2: write edges a2-p1 and a2-p2 survive; cite p2->p1
  // survives; publish edge drops with v1.
  auto [sub, mapping] = graph_.InducedSubgraph({a2_, p1_, p2_});
  EXPECT_EQ(sub.NumNodes(), 3u);
  EXPECT_EQ(sub.NumEdges(), 3u);
  EXPECT_EQ(mapping[a1_], kInvalidNode);
  EXPECT_NE(mapping[a2_], kInvalidNode);
  const NodeId new_p1 = mapping[p1_];
  EXPECT_EQ(sub.Label(new_p1), "paper one");
  EXPECT_EQ(sub.Degree(new_p1, ids_.write), 1u);
  EXPECT_EQ(sub.Degree(new_p1, ids_.cite), 1u);
  EXPECT_EQ(sub.Degree(new_p1, ids_.publish), 0u);
}

TEST_F(HeteroGraphTest, MemoryUsagePositive) {
  EXPECT_GT(graph_.MemoryUsageBytes(), 0u);
}

TEST(HeteroGraphBuildTest, EmptyGraph) {
  const AcademicSchema ids = AcademicSchema::Make();
  HeteroGraphBuilder builder(ids.schema);
  HeteroGraph graph = std::move(builder).Build();
  EXPECT_EQ(graph.NumNodes(), 0u);
  EXPECT_EQ(graph.NumEdges(), 0u);
  EXPECT_TRUE(graph.NodesOfType(ids.paper).empty());
}

}  // namespace
}  // namespace kpef

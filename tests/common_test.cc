#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"

namespace kpef {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  KPEF_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  *out = value + 1;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 6);
  EXPECT_EQ(UseAssignOrReturn(-1, &out).code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformIntRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalHasUnitVariance) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfStaysInRangeAndSkewsLow) {
  Rng rng(17);
  size_t ones = 0;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.Zipf(50, 1.2);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 50u);
    ones += (v == 1);
  }
  // Rank 1 should dominate under a Zipf law.
  EXPECT_GT(ones, 300u);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  for (size_t count : {0u, 1u, 5u, 50u, 100u}) {
    const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, count);
    EXPECT_EQ(sample.size(), count);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), count);
    for (size_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementCoversAll) {
  Rng rng(31);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(LoggingTest, LevelFilteringRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  KPEF_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ KPEF_CHECK(false) << "boom"; }, "Check failed");
}

}  // namespace
}  // namespace kpef

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "kpcore/multi_path.h"
#include "metapath/meta_path.h"
#include "metapath/p_neighbor.h"
#include "sampling/training_data.h"

namespace kpef {
namespace {

class SamplingTest : public ::testing::Test {
 protected:
  SamplingTest() : dataset_(GenerateDataset(TinyProfile())) {
    paths_.push_back(*MetaPath::Parse(dataset_.graph.schema(), "P-A-P"));
  }

  Dataset dataset_;
  std::vector<MetaPath> paths_;
};

TEST_F(SamplingTest, SeedCountFollowsFraction) {
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  SamplingConfig config;
  config.seed_fraction = 0.25;
  config.k = 2;
  const SamplingResult result = generator.Generate(config);
  const size_t expected =
      static_cast<size_t>(0.25 * dataset_.Papers().size());
  EXPECT_EQ(result.num_seeds, expected);
  EXPECT_LE(result.num_productive_seeds, result.num_seeds);
}

TEST_F(SamplingTest, SeedCountClampedToPaperCount) {
  // Regression: seed_fraction > 1 used to request more seeds than there
  // are papers, sampling phantom indices. Now it clamps.
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  for (double fraction : {1.0, 1.5, 100.0}) {
    SamplingConfig config;
    config.seed_fraction = fraction;
    config.k = 2;
    const SamplingResult result = generator.Generate(config);
    EXPECT_EQ(result.num_seeds, dataset_.Papers().size())
        << "fraction " << fraction;
  }
}

TEST_F(SamplingTest, TriplesReferenceValidDocuments) {
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  SamplingConfig config;
  config.k = 2;
  const SamplingResult result = generator.Generate(config);
  ASSERT_GT(result.triples.size(), 0u);
  const int32_t n = static_cast<int32_t>(dataset_.Papers().size());
  for (const Triple& t : result.triples) {
    EXPECT_GE(t.seed, 0);
    EXPECT_LT(t.seed, n);
    EXPECT_GE(t.positive, 0);
    EXPECT_LT(t.positive, n);
    EXPECT_GE(t.negative, 0);
    EXPECT_LT(t.negative, n);
    EXPECT_NE(t.positive, t.seed);
    EXPECT_NE(t.negative, t.seed);
    EXPECT_NE(t.negative, t.positive);
  }
}

TEST_F(SamplingTest, PositivesInsideCommunityNegativesOutside) {
  // Re-derive each seed's community and check sample membership.
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  SamplingConfig config;
  config.k = 3;
  config.seed_fraction = 0.05;
  config.strategy = NegativeStrategy::kRandom;
  const SamplingResult result = generator.Generate(config);
  const auto& papers = dataset_.Papers();
  // Group triples by seed.
  std::set<int32_t> seeds;
  for (const Triple& t : result.triples) seeds.insert(t.seed);
  for (int32_t seed_doc : seeds) {
    const NodeId seed = papers[seed_doc];
    const KPCoreCommunity community =
        MultiPathKPCoreSearch(dataset_.graph, paths_, seed, config.k);
    const std::vector<NodeId> members = community.Members();
    for (const Triple& t : result.triples) {
      if (t.seed != seed_doc) continue;
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(),
                                     papers[t.positive]));
      EXPECT_FALSE(std::binary_search(members.begin(), members.end(),
                                      papers[t.negative]));
    }
  }
}

TEST_F(SamplingTest, NegativesPerPositiveMultiplier) {
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  for (size_t s : {1u, 2u, 3u}) {
    SamplingConfig config;
    config.k = 2;
    config.seed_fraction = 0.1;
    config.negatives_per_positive = s;
    config.strategy = NegativeStrategy::kRandom;
    const SamplingResult result = generator.Generate(config);
    // Random negatives nearly never fail, so the ratio should hold.
    EXPECT_NEAR(static_cast<double>(result.triples.size()),
                static_cast<double>(result.total_positives * s),
                result.total_positives * 0.05 + 1);
  }
}

TEST_F(SamplingTest, NearNegativesDrawFromDeleteQueuesFirst) {
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  SamplingConfig config;
  config.k = 3;
  config.seed_fraction = 0.05;
  config.strategy = NegativeStrategy::kNear;
  const SamplingResult result = generator.Generate(config);
  const auto& papers = dataset_.Papers();
  std::set<int32_t> seeds;
  for (const Triple& t : result.triples) seeds.insert(t.seed);
  size_t from_d = 0, checked_seeds = 0;
  for (int32_t seed_doc : seeds) {
    const KPCoreCommunity community = MultiPathKPCoreSearch(
        dataset_.graph, paths_, papers[seed_doc], config.k);
    if (community.near_negatives.empty()) continue;  // fell back to random
    ++checked_seeds;
    const std::vector<NodeId> members = community.Members();
    size_t seed_from_d = 0;
    for (const Triple& t : result.triples) {
      if (t.seed != seed_doc) continue;
      // Every negative is outside the community; up to
      // |D| * max_near_reuse of them come from the delete queue, the rest
      // fall back to random.
      EXPECT_FALSE(std::binary_search(members.begin(), members.end(),
                                      papers[t.negative]));
      seed_from_d += std::binary_search(community.near_negatives.begin(),
                                        community.near_negatives.end(),
                                        papers[t.negative]);
    }
    EXPECT_GT(seed_from_d, 0u) << "seed " << seed_doc;
    from_d += seed_from_d;
  }
  if (checked_seeds > 0) {
    EXPECT_GT(from_d, 0u);
  }
}

TEST_F(SamplingTest, MaxPositivesCapBounds) {
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  SamplingConfig config;
  config.k = 1;
  config.seed_fraction = 0.1;
  config.max_positives_per_seed = 4;
  config.negatives_per_positive = 1;
  const SamplingResult result = generator.Generate(config);
  // Per-seed triple count <= cap * s.
  std::map<int32_t, size_t> per_seed;
  for (const Triple& t : result.triples) ++per_seed[t.seed];
  for (const auto& [seed, count] : per_seed) EXPECT_LE(count, 4u);
}

TEST_F(SamplingTest, DeterministicForSameSeed) {
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  SamplingConfig config;
  config.k = 2;
  config.rng_seed = 99;
  const SamplingResult a = generator.Generate(config);
  const SamplingResult b = generator.Generate(config);
  EXPECT_EQ(a.triples, b.triples);
}

TEST_F(SamplingTest, NoCoreModeUsesDirectNeighbors) {
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  SamplingConfig config;
  config.use_core = false;
  config.seed_fraction = 0.05;
  config.strategy = NegativeStrategy::kRandom;
  const SamplingResult result = generator.Generate(config);
  EXPECT_GT(result.triples.size(), 0u);
  // Every positive must be a direct P-neighbor of its seed.
  PNeighborFinder finder(dataset_.graph, paths_[0]);
  const auto& papers = dataset_.Papers();
  for (const Triple& t : result.triples) {
    const auto nbrs = finder.Neighbors(papers[t.seed]);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), papers[t.positive]),
              nbrs.end());
  }
}

TEST_F(SamplingTest, ByteIdenticalAcrossThreadCounts) {
  // The determinism contract: per-seed MixSeed RNG streams plus the
  // seed-ordered merge make Generate's output independent of worker
  // count and chunking.
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  ThreadPool wide(8);
  SamplingConfig sequential;
  sequential.k = 2;
  sequential.seed_fraction = 0.3;
  sequential.num_threads = 1;
  SamplingConfig parallel = sequential;
  parallel.pool = &wide;
  parallel.num_threads = 0;
  const SamplingResult a = generator.Generate(sequential);
  const SamplingResult b = generator.Generate(parallel);
  EXPECT_EQ(a.triples, b.triples);
  EXPECT_EQ(a.num_productive_seeds, b.num_productive_seeds);
  EXPECT_EQ(a.total_positives, b.total_positives);
  EXPECT_EQ(a.near_fallbacks, b.near_fallbacks);
  ThreadPool three(3);
  SamplingConfig odd = sequential;
  odd.pool = &three;
  odd.num_threads = 0;
  EXPECT_EQ(a.triples, generator.Generate(odd).triples);
}

TEST_F(SamplingTest, ProjectionAndFinderBackendsAgree) {
  // Both backends read neighbors in the same canonical order, so the
  // sampled triples must match exactly — including the no-core mode.
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  for (bool use_core : {true, false}) {
    SamplingConfig with_projection;
    with_projection.k = 2;
    with_projection.seed_fraction = 0.3;
    with_projection.use_core = use_core;
    SamplingConfig with_finder = with_projection;
    with_finder.use_projection = false;
    const SamplingResult a = generator.Generate(with_projection);
    const SamplingResult b = generator.Generate(with_finder);
    EXPECT_TRUE(a.used_projection);
    EXPECT_GT(a.projection_bytes, 0u);
    EXPECT_FALSE(b.used_projection);
    EXPECT_EQ(b.projection_bytes, 0u);
    EXPECT_EQ(a.triples, b.triples) << "use_core " << use_core;
  }
}

TEST_F(SamplingTest, BudgetRejectionFallsBackToFinder) {
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  SamplingConfig tiny_budget;
  tiny_budget.k = 2;
  tiny_budget.seed_fraction = 0.2;
  tiny_budget.projection_budget_bytes = 1;  // nothing fits
  const SamplingResult constrained = generator.Generate(tiny_budget);
  EXPECT_FALSE(constrained.used_projection);
  EXPECT_EQ(constrained.projection_bytes, 0u);
  SamplingConfig unlimited = tiny_budget;
  unlimited.projection_budget_bytes = 0;
  const SamplingResult free_run = generator.Generate(unlimited);
  EXPECT_TRUE(free_run.used_projection);
  EXPECT_EQ(constrained.triples, free_run.triples);
}

TEST_F(SamplingTest, NearFallbacksCountOnlyGenuineFallbacks) {
  TrainingDataGenerator generator(dataset_.graph, paths_, dataset_.ids.paper);
  // Regression: draws that were random by plan (near_fraction) used to
  // count as fallbacks. With near_fraction = 0 every draw is random by
  // plan, so the count must be exactly zero.
  SamplingConfig no_near;
  no_near.k = 2;
  no_near.seed_fraction = 0.2;
  no_near.strategy = NegativeStrategy::kNear;
  no_near.near_fraction = 0.0;
  EXPECT_EQ(generator.Generate(no_near).near_fallbacks, 0u);
  // Random strategy never wants near draws either.
  SamplingConfig random_strategy = no_near;
  random_strategy.near_fraction = 1.0;
  random_strategy.strategy = NegativeStrategy::kRandom;
  EXPECT_EQ(generator.Generate(random_strategy).near_fallbacks, 0u);
  // Sanity: genuine fallbacks (empty delete queues at high k with full
  // near_fraction) are still counted.
  SamplingConfig full_near = no_near;
  full_near.near_fraction = 1.0;
  const SamplingResult result = generator.Generate(full_near);
  EXPECT_LE(result.near_fallbacks,
            result.total_positives * full_near.negatives_per_positive);
}

TEST_F(SamplingTest, MultiPathSamplingWorks) {
  std::vector<MetaPath> both = paths_;
  both.push_back(*MetaPath::Parse(dataset_.graph.schema(), "P-T-P"));
  TrainingDataGenerator generator(dataset_.graph, both, dataset_.ids.paper);
  SamplingConfig config;
  config.k = 2;
  config.seed_fraction = 0.1;
  const SamplingResult result = generator.Generate(config);
  EXPECT_GT(result.num_seeds, 0u);
  // Intersection communities are smaller, so triples should not exceed the
  // single-path count for the same parameters.
  TrainingDataGenerator single(dataset_.graph, paths_, dataset_.ids.paper);
  const SamplingResult single_result = single.Generate(config);
  EXPECT_LE(result.total_positives, single_result.total_positives);
}

}  // namespace
}  // namespace kpef

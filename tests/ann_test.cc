#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "ann/brute_force.h"
#include "ann/nndescent.h"
#include "ann/pg_index.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "embed/vector_ops.h"

namespace kpef {
namespace {

Matrix RandomPoints(size_t n, size_t d, uint64_t seed,
                    size_t num_clusters = 8) {
  // Clustered points: ANN structures behave realistically on clustered
  // data (embeddings are clustered by construction).
  Rng rng(seed);
  Matrix centers(num_clusters, d);
  for (size_t r = 0; r < centers.rows(); ++r) {
    for (float& v : centers.Row(r)) v = static_cast<float>(rng.Normal(0, 5));
  }
  Matrix points(n, d);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.Uniform(num_clusters);
    for (size_t k = 0; k < d; ++k) {
      points.At(i, k) =
          centers.At(c, k) + static_cast<float>(rng.Normal(0, 1));
    }
  }
  return points;
}

TEST(BruteForceTest, FindsExactNearest) {
  Matrix points(5, 1);
  for (size_t i = 0; i < 5; ++i) points.At(i, 0) = static_cast<float>(i);
  const std::vector<float> query = {2.2f};
  const auto result = BruteForceSearch(points, query, 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 2);
  EXPECT_EQ(result[1].id, 3);
  EXPECT_EQ(result[2].id, 1);
  EXPECT_NEAR(result[0].distance, 0.2f, 1e-5);
}

TEST(BruteForceTest, KLargerThanN) {
  Matrix points(3, 2, 1.0f);
  const auto result = BruteForceSearch(points, std::vector<float>{0, 0}, 10);
  EXPECT_EQ(result.size(), 3u);
}

TEST(BruteForceTest, ResultsSortedByDistance) {
  const Matrix points = RandomPoints(200, 8, 3);
  const auto result =
      BruteForceSearch(points, std::vector<float>(8, 0.0f), 50);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

TEST(RecallTest, ComputesFraction) {
  std::vector<Neighbor> truth = {{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  std::vector<Neighbor> result = {{1, 0}, {3, 0}, {9, 0}};
  EXPECT_DOUBLE_EQ(ComputeRecall(result, truth), 0.5);
  EXPECT_DOUBLE_EQ(ComputeRecall(result, {}), 1.0);
}

TEST(NNDescentTest, ConvergesToHighRecall) {
  const Matrix points = RandomPoints(400, 12, 7);
  NNDescentConfig config;
  config.k = 10;
  const KnnGraph graph = BuildKnnGraph(points, config);
  ASSERT_EQ(graph.neighbors.size(), 400u);
  EXPECT_GT(KnnGraphRecall(points, graph), 0.90);
}

TEST(NNDescentTest, NeighborListsValid) {
  const Matrix points = RandomPoints(150, 6, 9);
  NNDescentConfig config;
  config.k = 8;
  const KnnGraph graph = BuildKnnGraph(points, config);
  for (size_t v = 0; v < graph.neighbors.size(); ++v) {
    const auto& nbrs = graph.neighbors[v];
    EXPECT_LE(nbrs.size(), 8u);
    std::set<int32_t> seen;
    for (const Neighbor& nb : nbrs) {
      EXPECT_NE(nb.id, static_cast<int32_t>(v)) << "self loop";
      EXPECT_TRUE(seen.insert(nb.id).second) << "duplicate neighbor";
      EXPECT_GE(nb.id, 0);
      EXPECT_LT(nb.id, 150);
    }
    // Sorted ascending by distance.
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LE(nbrs[i - 1].distance, nbrs[i].distance);
    }
  }
}

TEST(NNDescentTest, ExactGraphIsPerfect) {
  const Matrix points = RandomPoints(120, 4, 11);
  const KnnGraph graph = BuildExactKnnGraph(points, 5);
  EXPECT_DOUBLE_EQ(KnnGraphRecall(points, graph), 1.0);
}

TEST(NNDescentTest, TinyInputs) {
  Matrix empty(0, 4);
  EXPECT_TRUE(BuildKnnGraph(empty, {}).neighbors.empty());
  Matrix one(1, 4, 1.0f);
  const KnnGraph g1 = BuildKnnGraph(one, {});
  EXPECT_TRUE(g1.neighbors[0].empty());
}

class PGIndexTest : public ::testing::Test {
 protected:
  PGIndexTest() : points_(RandomPoints(500, 10, 13)) {
    config_.knn_k = 10;
    index_ = std::make_unique<PGIndex>(PGIndex::Build(points_, config_, &stats_));
  }

  Matrix points_;
  PGIndexConfig config_;
  PGIndexBuildStats stats_;
  std::unique_ptr<PGIndex> index_;
};

TEST_F(PGIndexTest, NavigatingNodeIsNearestToCentroid) {
  std::vector<float> centroid(points_.cols(), 0.0f);
  for (size_t i = 0; i < points_.rows(); ++i) {
    for (size_t k = 0; k < points_.cols(); ++k) {
      centroid[k] += points_.At(i, k);
    }
  }
  for (float& c : centroid) c /= static_cast<float>(points_.rows());
  const auto nearest = BruteForceSearch(points_, centroid, 1);
  EXPECT_EQ(index_->navigating_node(), nearest[0].id);
}

TEST_F(PGIndexTest, AdjacencyInvariants) {
  for (size_t v = 0; v < index_->NumPoints(); ++v) {
    const auto& nbrs = index_->NeighborsOf(static_cast<int32_t>(v));
    // The reverse-edge pass respects the degree cap; the navigating
    // node additionally carries connectivity highways.
    const size_t allowed =
        config_.max_degree +
        (static_cast<int32_t>(v) == index_->navigating_node()
             ? stats_.connectivity_edges
             : 0);
    EXPECT_LE(nbrs.size(), allowed);
    std::set<int32_t> seen;
    for (int32_t u : nbrs) {
      EXPECT_NE(u, static_cast<int32_t>(v));
      EXPECT_TRUE(seen.insert(u).second);
      EXPECT_GE(u, 0);
      EXPECT_LT(u, static_cast<int32_t>(index_->NumPoints()));
    }
  }
}

TEST_F(PGIndexTest, SearchRecallAboveNinety) {
  Rng rng(17);
  double total_recall = 0.0;
  const int num_queries = 20;
  for (int q = 0; q < num_queries; ++q) {
    std::vector<float> query(points_.cols());
    const size_t anchor = rng.Uniform(points_.rows());
    for (size_t k = 0; k < query.size(); ++k) {
      query[k] = points_.At(anchor, k) + static_cast<float>(rng.Normal(0, 0.5));
    }
    const auto approx = index_->Search(query, 10, 40);
    const auto exact = BruteForceSearch(points_, query, 10);
    total_recall += ComputeRecall(approx, exact);
  }
  EXPECT_GT(total_recall / num_queries, 0.9);
}

TEST_F(PGIndexTest, SearchVisitsFewerPointsThanBruteForce) {
  std::vector<float> query(points_.cols(), 0.0f);
  PGIndex::SearchStats stats;
  index_->Search(query, 10, 20, &stats);
  EXPECT_LT(stats.distance_computations, points_.rows());
  EXPECT_GT(stats.hops, 0u);
}

TEST_F(PGIndexTest, LargerPoolImprovesOrMaintainsRecall) {
  Rng rng(19);
  std::vector<float> query(points_.cols());
  for (float& v : query) v = static_cast<float>(rng.Normal(0, 3));
  const auto exact = BruteForceSearch(points_, query, 10);
  const auto small = index_->Search(query, 10, 10);
  const auto large = index_->Search(query, 10, 100);
  EXPECT_GE(ComputeRecall(large, exact), ComputeRecall(small, exact));
}

TEST_F(PGIndexTest, ResultsSortedAndBounded) {
  std::vector<float> query(points_.cols(), 1.0f);
  const auto result = index_->Search(query, 7);
  EXPECT_LE(result.size(), 7u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

TEST_F(PGIndexTest, SearchBatchMatchesSearch) {
  Rng rng(23);
  const size_t batch = 9;
  Matrix queries(batch, points_.cols());
  for (size_t q = 0; q < batch; ++q) {
    const size_t anchor = rng.Uniform(points_.rows());
    for (size_t k = 0; k < points_.cols(); ++k) {
      queries.At(q, k) =
          points_.At(anchor, k) + static_cast<float>(rng.Normal(0, 0.5));
    }
  }
  ThreadPool pool(4);
  std::vector<PGIndex::SearchStats> batch_stats;
  const auto batched =
      index_->SearchBatch(queries, 10, 40, &batch_stats, &pool);
  ASSERT_EQ(batched.size(), batch);
  ASSERT_EQ(batch_stats.size(), batch);
  for (size_t q = 0; q < batch; ++q) {
    PGIndex::SearchStats single_stats;
    const auto single = index_->Search(queries.Row(q), 10, 40, &single_stats);
    EXPECT_EQ(batched[q], single) << "query " << q;  // exact, incl. floats
    EXPECT_EQ(batch_stats[q].distance_computations,
              single_stats.distance_computations);
    EXPECT_EQ(batch_stats[q].hops, single_stats.hops);
  }
}

TEST_F(PGIndexTest, SearchBatchEmptyBatch) {
  const Matrix no_queries(0, points_.cols());
  std::vector<PGIndex::SearchStats> stats(3);
  EXPECT_TRUE(index_->SearchBatch(no_queries, 10, 40, &stats).empty());
  EXPECT_TRUE(stats.empty());
}

TEST_F(PGIndexTest, BuildStatsPopulated) {
  EXPECT_GT(stats_.build_seconds, 0.0);
  EXPECT_GT(stats_.distance_computations, 0u);
  EXPECT_GT(stats_.edges_after_knn, 0u);
  EXPECT_GE(stats_.edges_after_extension, stats_.edges_after_knn);
  EXPECT_LE(stats_.edges_final, stats_.edges_after_extension);
  EXPECT_EQ(stats_.edges_final, index_->NumEdges());
  EXPECT_GT(index_->MemoryUsageBytes(), points_.PaddedSize() * sizeof(float));
}

TEST(PGIndexRefinementTest, RedundantRemovalPrunesEdges) {
  const Matrix points = RandomPoints(300, 8, 23);
  PGIndexConfig with_removal;
  with_removal.knn_k = 8;
  PGIndexConfig without_removal = with_removal;
  without_removal.remove_redundant = false;
  without_removal.max_degree = 1u << 20;  // effectively uncapped
  const PGIndex pruned = PGIndex::Build(points, with_removal);
  const PGIndex unpruned = PGIndex::Build(points, without_removal);
  EXPECT_LT(pruned.NumEdges(), unpruned.NumEdges());
}

TEST(PGIndexRefinementTest, ExtensionAddsEdges) {
  const Matrix points = RandomPoints(300, 8, 29);
  PGIndexConfig base;
  base.knn_k = 8;
  base.remove_redundant = false;
  base.max_degree = 1u << 20;
  PGIndexConfig no_ext = base;
  no_ext.extend_neighbors = false;
  const PGIndex extended = PGIndex::Build(points, base);
  const PGIndex plain = PGIndex::Build(points, no_ext);
  EXPECT_GT(extended.NumEdges(), plain.NumEdges());
}

TEST(PGIndexRefinementTest, ExactKnnOptionWorks) {
  const Matrix points = RandomPoints(120, 6, 31);
  PGIndexConfig config;
  config.knn_k = 6;
  config.exact_knn = true;
  const PGIndex index = PGIndex::Build(points, config);
  const auto exact = BruteForceSearch(points, points.Row(0), 5);
  const auto approx = index.Search(points.Row(0), 5, 30);
  EXPECT_GE(ComputeRecall(approx, exact), 0.8);
}

TEST(PGIndexConnectivityTest, AllNodesReachableFromNavigatingNode) {
  // Two far-apart clusters: the raw kNN graph is disconnected, the
  // repaired index must not be.
  Rng rng(37);
  Matrix points(200, 4);
  for (size_t i = 0; i < 200; ++i) {
    const float base = i < 100 ? 0.0f : 1000.0f;
    for (size_t k = 0; k < 4; ++k) {
      points.At(i, k) = base + static_cast<float>(rng.Normal(0, 1));
    }
  }
  PGIndexConfig config;
  config.knn_k = 6;
  PGIndexBuildStats stats;
  const PGIndex index = PGIndex::Build(points, config, &stats);
  EXPECT_GT(stats.connectivity_edges, 0u);
  // BFS from the navigating node reaches everything.
  std::vector<char> seen(200, 0);
  std::vector<int32_t> stack = {index.navigating_node()};
  seen[index.navigating_node()] = 1;
  size_t count = 0;
  while (!stack.empty()) {
    const int32_t v = stack.back();
    stack.pop_back();
    ++count;
    for (int32_t u : index.NeighborsOf(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        stack.push_back(u);
      }
    }
  }
  EXPECT_EQ(count, 200u);
  // And search can now find points in the far cluster.
  std::vector<float> far_query(4, 1000.0f);
  const auto result = index.Search(far_query, 5, 20);
  ASSERT_FALSE(result.empty());
  EXPECT_GE(result[0].id, 100);
}

TEST(PGIndexEdgeCaseTest, EmptyAndSingleton) {
  Matrix empty(0, 4);
  const PGIndex e = PGIndex::Build(empty, {});
  EXPECT_TRUE(e.Search(std::vector<float>{0, 0, 0, 0}, 5).empty());
  Matrix one(1, 4, 2.0f);
  const PGIndex s = PGIndex::Build(one, {});
  const auto result = s.Search(std::vector<float>{0, 0, 0, 0}, 5);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0);
}

}  // namespace
}  // namespace kpef

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "kpcore/decomposition_index.h"
#include "kpcore/kpcore_search.h"
#include "test_graphs.h"

namespace kpef {
namespace {

class DecompositionIndexTest : public ::testing::Test {
 protected:
  DecompositionIndexTest()
      : g_(Figure2Graph::Make()),
        pap_(*MetaPath::Parse(g_.ids.schema, "P-A-P")),
        index_(g_.graph, pap_) {}

  Figure2Graph g_;
  MetaPath pap_;
  KPCoreDecompositionIndex index_;
};

TEST_F(DecompositionIndexTest, CoreNumbersMatchFigure2) {
  // Clique papers p0..p3 have core number 3; bridge p4 has at most 2 (it links p3 and
  // p5 which form a path); isolated p9 has 0.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(index_.CoreNumberOf(g_.papers[i]), 3) << "p" << i;
  }
  for (int i = 5; i < 9; ++i) {
    EXPECT_EQ(index_.CoreNumberOf(g_.papers[i]), 3) << "p" << i;
  }
  EXPECT_LE(index_.CoreNumberOf(g_.papers[4]), 2);
  EXPECT_EQ(index_.CoreNumberOf(g_.papers[9]), 0);
  EXPECT_EQ(index_.MaxCoreNumber(), 3);
}

TEST_F(DecompositionIndexTest, MembershipConsistentWithSearch) {
  for (NodeId seed : g_.papers) {
    for (int32_t k = 1; k <= 4; ++k) {
      const KPCoreCommunity community = KPCoreSearch(g_.graph, pap_, seed, k);
      // The seed is in some (k, P)-core component iff its core number
      // reaches k.
      EXPECT_EQ(!community.core.empty(), index_.InCore(seed, k))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST_F(DecompositionIndexTest, HistogramIsMonotoneSuffix) {
  const auto& sizes = index_.CoreSizeHistogram();
  ASSERT_EQ(sizes.size(), static_cast<size_t>(index_.MaxCoreNumber()) + 1);
  EXPECT_EQ(sizes[0], g_.papers.size());  // every paper is in the 0-core
  for (size_t k = 1; k < sizes.size(); ++k) {
    EXPECT_LE(sizes[k], sizes[k - 1]);
  }
}

TEST_F(DecompositionIndexTest, SuggestKRespectsCoverage) {
  // Full coverage only at k = 0 (p9 is isolated).
  EXPECT_EQ(index_.SuggestK(1.0), 0);
  // 80% of the 10 papers have core number >= 3.
  EXPECT_EQ(index_.SuggestK(0.8), 3);
}

TEST(DecompositionIndexDatasetTest, SuggestKIsReasonable) {
  const Dataset dataset = GenerateDataset(TinyProfile());
  const MetaPath pap = *MetaPath::Parse(dataset.graph.schema(), "P-A-P");
  KPCoreDecompositionIndex index(dataset.graph, pap);
  const int32_t k = index.SuggestK(0.5);
  EXPECT_GE(k, 1);
  EXPECT_LE(k, index.MaxCoreNumber());
  // The suggested core must indeed cover at least half the papers.
  size_t covered = 0;
  for (NodeId p : dataset.Papers()) covered += index.InCore(p, k);
  EXPECT_GE(covered * 2, dataset.Papers().size());
}

}  // namespace
}  // namespace kpef

// SQ8 quantization + quantized PG-Index traversal (DESIGN.md §12):
// encode/decode error bounds, kernel path agreement, the BFS-relabel
// permutation contract, batched-vs-serial determinism for any pool size
// and batch composition, and the recall contract of the fp32 rerank.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "ann/brute_force.h"
#include "ann/pg_index.h"
#include "ann/sq8.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "embed/matrix.h"
#include "embed/vector_ops.h"

namespace kpef {
namespace {

Matrix ClusteredPoints(size_t n, size_t d, uint64_t seed,
                       size_t num_clusters = 8) {
  Rng rng(seed);
  Matrix centers(num_clusters, d);
  for (size_t r = 0; r < centers.rows(); ++r) {
    for (float& v : centers.Row(r)) v = static_cast<float>(rng.Normal(0, 5));
  }
  Matrix points(n, d);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.Uniform(num_clusters);
    for (size_t k = 0; k < d; ++k) {
      points.At(i, k) =
          centers.At(c, k) + static_cast<float>(rng.Normal(0, 1));
    }
  }
  return points;
}

// --- Quantizer properties.

TEST(Sq8CodesTest, EncodeDecodeErrorBoundedByStep) {
  const Matrix points = ClusteredPoints(300, 19, 42);  // odd dim: tail path
  const Sq8Codes codes = Sq8Codes::Encode(points);
  ASSERT_EQ(codes.rows(), points.rows());
  ASSERT_EQ(codes.cols(), points.cols());
  std::vector<float> decoded(points.cols());
  for (size_t r = 0; r < points.rows(); ++r) {
    codes.DecodeRow(r, decoded);
    const auto row = points.Row(r);
    for (size_t k = 0; k < points.cols(); ++k) {
      // Rounding to the nearest code keeps every value within one step
      // of its reconstruction (half a step plus float slack).
      EXPECT_LE(std::abs(row[k] - decoded[k]), codes.StepOf(k))
          << "row " << r << " dim " << k;
    }
  }
}

TEST(Sq8CodesTest, ConstantDimensionDecodesExactly) {
  Matrix points(50, 4);
  Rng rng(7);
  for (size_t r = 0; r < points.rows(); ++r) {
    points.At(r, 0) = 3.25f;  // constant dim: step 0, code 0
    for (size_t k = 1; k < 4; ++k) {
      points.At(r, k) = static_cast<float>(rng.Normal());
    }
  }
  const Sq8Codes codes = Sq8Codes::Encode(points);
  EXPECT_EQ(codes.StepOf(0), 0.0f);
  std::vector<float> decoded(4);
  for (size_t r = 0; r < points.rows(); ++r) {
    codes.DecodeRow(r, decoded);
    EXPECT_EQ(decoded[0], 3.25f);
  }
}

TEST(Sq8CodesTest, RowsAreCacheLineAlignedAndPadded) {
  const Matrix points = ClusteredPoints(17, 33, 5);
  const Sq8Codes codes = Sq8Codes::Encode(points);
  EXPECT_EQ(codes.stride() % 64, 0u);
  EXPECT_GE(codes.stride(), codes.cols());
  for (size_t r = 0; r < codes.rows(); ++r) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(codes.RowPtr(r)) % 64, 0u);
    const auto row = codes.Row(r);
    for (size_t k = codes.cols(); k < codes.stride(); ++k) {
      EXPECT_EQ(row[k], 0u);  // zero padding: exact zero distance terms
    }
  }
}

TEST(Sq8CodesTest, EncodingCommutesWithRowPermutation) {
  const Matrix points = ClusteredPoints(64, 12, 9);
  // Deterministic shuffle of row ids.
  std::vector<int32_t> order(points.rows());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int32_t>(i);
  }
  Rng rng(13);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  Matrix permuted(points.rows(), points.cols());
  for (size_t i = 0; i < points.rows(); ++i) {
    const auto src = points.Row(order[i]);
    std::copy(src.begin(), src.end(), permuted.Row(i).begin());
  }
  const Sq8Codes direct = Sq8Codes::Encode(permuted);
  const Sq8Codes via_permute = Sq8Codes::Permuted(Sq8Codes::Encode(points),
                                                  order);
  ASSERT_EQ(direct.rows(), via_permute.rows());
  for (size_t r = 0; r < direct.rows(); ++r) {
    const auto a = direct.Row(r);
    const auto b = via_permute.Row(r);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "row " << r;
  }
}

// --- Kernel path agreement: the asymmetric int8 distance must be
// bit-identical between the scalar baseline and whatever ActiveKernel()
// dispatched to (AVX2 on supporting hardware), per the accumulation
// contract in vector_ops.h.

TEST(Sq8KernelTest, ScalarAndDispatchedPathsAgreeBitForBit) {
  Rng rng(21);
  const DistanceKernel& scalar = ScalarKernel();
  const DistanceKernel* avx2 = Avx2KernelOrNull();
  for (size_t n : {1u, 7u, 8u, 9u, 16u, 31u, 64u, 96u, 128u, 333u}) {
    std::vector<float> qt(n), step(n);
    std::vector<uint8_t> codes(n);
    for (size_t i = 0; i < n; ++i) {
      qt[i] = static_cast<float>(rng.Normal(0, 2));
      step[i] = static_cast<float>(std::abs(rng.Normal(0, 0.05)));
      codes[i] = static_cast<uint8_t>(rng.Uniform(256));
    }
    const float s = scalar.sq8_asym_l2(qt.data(), step.data(), codes.data(), n);
    const float a = ActiveKernel().sq8_asym_l2(qt.data(), step.data(),
                                               codes.data(), n);
    EXPECT_EQ(s, a) << "n=" << n;
    if (avx2 != nullptr) {
      const float v = avx2->sq8_asym_l2(qt.data(), step.data(), codes.data(),
                                        n);
      EXPECT_EQ(s, v) << "n=" << n;
    }
  }
}

TEST(Sq8KernelTest, QuadKernelMatchesFourSingleCalls) {
  // The shared-decode four-query kernel must be bit-identical, per
  // query, to four independent sq8_asym_l2 calls — on every path. The
  // batched search relies on this for its batched-equals-serial
  // contract. Duplicate query pointers (how short groups pad) must
  // also reproduce the single-call result.
  Rng rng(23);
  const DistanceKernel& scalar = ScalarKernel();
  const DistanceKernel* avx2 = Avx2KernelOrNull();
  for (size_t n : {1u, 8u, 9u, 64u, 128u, 333u}) {
    std::vector<std::vector<float>> q(4, std::vector<float>(n));
    std::vector<float> step(n);
    std::vector<uint8_t> codes(n);
    for (size_t i = 0; i < n; ++i) {
      for (int k = 0; k < 4; ++k) {
        q[k][i] = static_cast<float>(rng.Normal(0, 2));
      }
      step[i] = static_cast<float>(std::abs(rng.Normal(0, 0.05)));
      codes[i] = static_cast<uint8_t>(rng.Uniform(256));
    }
    const float* qts[4] = {q[0].data(), q[1].data(), q[2].data(),
                           q[3].data()};
    const float* dup[4] = {q[0].data(), q[1].data(), q[1].data(),
                           q[0].data()};
    for (const DistanceKernel* k :
         {&scalar, &ActiveKernel(), avx2}) {
      if (k == nullptr) continue;
      float quad[4];
      k->sq8_asym_l2x4(qts, step.data(), codes.data(), n, quad);
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(quad[j],
                  k->sq8_asym_l2(qts[j], step.data(), codes.data(), n))
            << k->name << " n=" << n << " q=" << j;
        EXPECT_EQ(quad[j],
                  scalar.sq8_asym_l2(qts[j], step.data(), codes.data(), n))
            << k->name << " n=" << n << " q=" << j;
      }
      k->sq8_asym_l2x4(dup, step.data(), codes.data(), n, quad);
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(quad[j],
                  scalar.sq8_asym_l2(dup[j], step.data(), codes.data(), n))
            << k->name << " dup n=" << n << " q=" << j;
      }
    }
  }
}

TEST(Sq8KernelTest, MatchesDoublePrecisionReference) {
  Rng rng(22);
  const size_t n = 96;
  std::vector<float> qt(n), step(n);
  std::vector<uint8_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    qt[i] = static_cast<float>(rng.Normal(0, 2));
    step[i] = static_cast<float>(std::abs(rng.Normal(0, 0.05)));
    codes[i] = static_cast<uint8_t>(rng.Uniform(256));
  }
  double ref = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(qt[i]) -
                     static_cast<double>(step[i]) * codes[i];
    ref += d * d;
  }
  const float got = Sq8AsymmetricSquaredL2(qt, step, codes);
  EXPECT_NEAR(got, ref, 1e-3 * std::max(1.0, std::abs(ref)));
}

// --- Quantized index behavior.

class Sq8IndexTest : public ::testing::Test {
 protected:
  static constexpr size_t kN = 600;
  static constexpr size_t kDim = 24;

  Sq8IndexTest() : points_(ClusteredPoints(kN, kDim, 77)) {
    PGIndexConfig config;
    config.knn_k = 8;
    index_ = std::make_unique<PGIndex>(PGIndex::Build(points_, config));
  }

  std::vector<float> RandomQuery(Rng& rng) const {
    std::vector<float> q(kDim);
    for (float& v : q) v = static_cast<float>(rng.Normal(0, 4));
    return q;
  }

  Matrix points_;
  std::unique_ptr<PGIndex> index_;
};

TEST_F(Sq8IndexTest, BuildQuantizesByDefault) {
  EXPECT_TRUE(index_->quantized());
  EXPECT_DOUBLE_EQ(index_->rerank_factor(), 2.0);
}

TEST_F(Sq8IndexTest, RelabelPermutationKeepsExternalContract) {
  const auto& perm = index_->permutation();
  ASSERT_EQ(perm.size(), kN);
  // A valid permutation whose row i of the internal matrix is the
  // external point perm[i].
  std::vector<char> hit(kN, 0);
  for (int32_t e : perm) {
    ASSERT_GE(e, 0);
    ASSERT_LT(static_cast<size_t>(e), kN);
    ASSERT_FALSE(hit[e]) << "duplicate external id " << e;
    hit[e] = 1;
  }
  for (size_t i = 0; i < kN; ++i) {
    const auto internal = index_->points().Row(i);
    const auto original = points_.Row(perm[i]);
    ASSERT_TRUE(std::equal(internal.begin(), internal.end(),
                           original.begin()));
  }
  // The navigating node is relabeled to internal row 0 (BFS root), but
  // its public id stays external.
  EXPECT_EQ(perm[0], index_->navigating_node());
  // Neighbors are reported as external ids.
  for (size_t v = 0; v < kN; ++v) {
    for (int32_t u : index_->NeighborsOf(static_cast<int32_t>(v))) {
      EXPECT_GE(u, 0);
      EXPECT_LT(static_cast<size_t>(u), kN);
    }
  }
}

TEST_F(Sq8IndexTest, BatchMatchesSerialForAnyPoolAndComposition) {
  // The batched lockstep search must return byte-identical results to
  // per-query Search, for every thread count and every way the batch
  // splits into groups — including stats, so timing attribution aside
  // the two paths are observably the same traversal.
  Rng rng(31);
  constexpr size_t kBatch = 21;  // odd size: last group is partial
  Matrix queries(kBatch, kDim);
  for (size_t q = 0; q < kBatch; ++q) {
    for (float& v : queries.Row(q)) v = static_cast<float>(rng.Normal(0, 4));
  }
  const size_t m = 10, ef = 40;
  std::vector<std::vector<Neighbor>> serial(kBatch);
  std::vector<PGIndex::SearchStats> serial_stats(kBatch);
  for (size_t q = 0; q < kBatch; ++q) {
    serial[q] = index_->Search(queries.Row(q), m, ef, &serial_stats[q]);
  }
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<PGIndex::SearchStats> stats;
    const auto batched =
        index_->SearchBatch(queries, m, ef, &stats, &pool);
    ASSERT_EQ(batched.size(), kBatch);
    for (size_t q = 0; q < kBatch; ++q) {
      ASSERT_EQ(batched[q].size(), serial[q].size()) << "q=" << q;
      for (size_t i = 0; i < serial[q].size(); ++i) {
        EXPECT_EQ(batched[q][i].id, serial[q][i].id) << "q=" << q;
        EXPECT_EQ(batched[q][i].distance, serial[q][i].distance) << "q=" << q;
      }
      EXPECT_EQ(stats[q].hops, serial_stats[q].hops) << "q=" << q;
      EXPECT_EQ(stats[q].sq8_distance_computations,
                serial_stats[q].sq8_distance_computations)
          << "q=" << q;
      EXPECT_EQ(stats[q].distance_computations,
                serial_stats[q].distance_computations)
          << "q=" << q;
      EXPECT_EQ(stats[q].rerank_candidates, serial_stats[q].rerank_candidates)
          << "q=" << q;
    }
  }
  // Different batch compositions: prefixes end mid-group, so queries
  // land in different slots/groups than in the full batch.
  for (size_t prefix : {1u, 3u, 8u, 13u}) {
    Matrix sub(prefix, kDim);
    for (size_t q = 0; q < prefix; ++q) {
      const auto src = queries.Row(q);
      std::copy(src.begin(), src.end(), sub.Row(q).begin());
    }
    ThreadPool pool(2);
    const auto batched = index_->SearchBatch(sub, m, ef, nullptr, &pool);
    for (size_t q = 0; q < prefix; ++q) {
      ASSERT_EQ(batched[q].size(), serial[q].size());
      for (size_t i = 0; i < serial[q].size(); ++i) {
        EXPECT_EQ(batched[q][i].id, serial[q][i].id);
        EXPECT_EQ(batched[q][i].distance, serial[q][i].distance);
      }
    }
  }
}

TEST_F(Sq8IndexTest, ForceExactMatchesUnquantizedBuild) {
  PGIndexConfig config;
  config.knn_k = 8;
  config.quantize = false;
  const PGIndex exact = PGIndex::Build(points_, config);
  EXPECT_FALSE(exact.quantized());
  Rng rng(5);
  PGIndex::SearchParams params;
  params.m = 10;
  params.ef = 40;
  params.force_exact = true;
  for (int q = 0; q < 10; ++q) {
    const auto query = RandomQuery(rng);
    const auto a = index_->Search(query, params);
    const auto b = exact.Search(query, 10, 40);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
}

TEST_F(Sq8IndexTest, StatsSplitTraversalAndRerank) {
  Rng rng(6);
  PGIndex::SearchStats stats;
  const auto result = index_->Search(RandomQuery(rng), 10, 40, &stats);
  ASSERT_FALSE(result.empty());
  EXPECT_GT(stats.sq8_distance_computations, 0u);   // traversal on codes
  EXPECT_GT(stats.rerank_candidates, 0u);           // fp32 rerank ran
  // Every fp32 evaluation belongs to the rerank on the quantized path.
  EXPECT_EQ(stats.distance_computations, stats.rerank_candidates);
  EXPECT_LE(stats.rerank_candidates, 2 * 10u);      // rerank_factor * m
}

TEST(Sq8RecallTest, QuantizedRecallWithinFractionOfFp32) {
  const size_t n = 2000, dim = 32, m = 10;
  const Matrix points = ClusteredPoints(n, dim, 123);
  PGIndexConfig config;
  config.knn_k = 10;
  const PGIndex index = PGIndex::Build(points, config);
  ASSERT_TRUE(index.quantized());
  Rng rng(17);
  double sq8_recall = 0.0, fp32_recall = 0.0;
  const int kQueries = 50;
  PGIndex::SearchParams quant{.m = m, .ef = 60};
  PGIndex::SearchParams exact{.m = m, .ef = 60, .force_exact = true};
  for (int q = 0; q < kQueries; ++q) {
    std::vector<float> query(dim);
    for (float& v : query) v = static_cast<float>(rng.Normal(0, 4));
    const auto truth = BruteForceSearch(points, query, m);
    sq8_recall += ComputeRecall(index.Search(query, quant), truth);
    fp32_recall += ComputeRecall(index.Search(query, exact), truth);
  }
  sq8_recall /= kQueries;
  fp32_recall /= kQueries;
  // The exact rerank restores nearly all of the fp32 path's recall.
  EXPECT_GE(sq8_recall, 0.95 * fp32_recall)
      << "sq8 " << sq8_recall << " vs fp32 " << fp32_recall;
  EXPECT_GE(sq8_recall, 0.85);  // and it is good in absolute terms
}

}  // namespace
}  // namespace kpef

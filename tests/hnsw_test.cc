#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "ann/brute_force.h"
#include "ann/hnsw.h"
#include "common/rng.h"

namespace kpef {
namespace {

Matrix ClusteredPoints(size_t n, size_t d, uint64_t seed,
                       size_t num_clusters = 8) {
  Rng rng(seed);
  Matrix centers(num_clusters, d);
  for (size_t r = 0; r < centers.rows(); ++r) {
    for (float& v : centers.Row(r)) v = static_cast<float>(rng.Normal(0, 5));
  }
  Matrix points(n, d);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.Uniform(num_clusters);
    for (size_t k = 0; k < d; ++k) {
      points.At(i, k) = centers.At(c, k) + static_cast<float>(rng.Normal(0, 1));
    }
  }
  return points;
}

class HnswTest : public ::testing::Test {
 protected:
  HnswTest() : points_(ClusteredPoints(600, 12, 21)) {
    HnswConfig config;
    config.m = 10;
    index_ = std::make_unique<Hnsw>(Hnsw::Build(points_, config, &stats_));
  }

  Matrix points_;
  HnswBuildStats stats_;
  std::unique_ptr<Hnsw> index_;
};

TEST_F(HnswTest, BuildStatsPopulated) {
  EXPECT_GT(stats_.build_seconds, 0.0);
  EXPECT_GT(stats_.distance_computations, 0u);
  EXPECT_GE(stats_.num_layers, 1u);
  EXPECT_EQ(stats_.edges_total, index_->NumEdges());
  EXPECT_GT(index_->MemoryUsageBytes(), points_.PaddedSize() * sizeof(float));
}

TEST_F(HnswTest, SearchRecallAboveNinety) {
  Rng rng(31);
  double total_recall = 0.0;
  const int num_queries = 20;
  for (int q = 0; q < num_queries; ++q) {
    std::vector<float> query(points_.cols());
    const size_t anchor = rng.Uniform(points_.rows());
    for (size_t k = 0; k < query.size(); ++k) {
      query[k] = points_.At(anchor, k) + static_cast<float>(rng.Normal(0, 0.4));
    }
    const auto approx = index_->Search(query, 10, 50);
    const auto exact = BruteForceSearch(points_, query, 10);
    total_recall += ComputeRecall(approx, exact);
  }
  EXPECT_GT(total_recall / num_queries, 0.9);
}

TEST_F(HnswTest, SearchVisitsFewerPointsThanBruteForce) {
  std::vector<float> query(points_.cols(), 0.5f);
  Hnsw::SearchStats stats;
  index_->Search(query, 10, 30, &stats);
  EXPECT_LT(stats.distance_computations, points_.rows());
}

TEST_F(HnswTest, ResultsSortedAndBounded) {
  std::vector<float> query(points_.cols(), -1.0f);
  const auto result = index_->Search(query, 7);
  EXPECT_LE(result.size(), 7u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

TEST_F(HnswTest, AdjacencyInvariants) {
  const size_t n = index_->NumPoints();
  for (size_t layer = 0; layer < index_->NumLayers(); ++layer) {
    for (size_t v = 0; v < n; ++v) {
      const auto& nbrs = index_->NeighborsOf(layer, static_cast<int32_t>(v));
      std::set<int32_t> seen;
      for (int32_t u : nbrs) {
        EXPECT_NE(u, static_cast<int32_t>(v));
        EXPECT_TRUE(seen.insert(u).second);
        EXPECT_GE(u, 0);
        EXPECT_LT(u, static_cast<int32_t>(n));
      }
    }
  }
}

TEST_F(HnswTest, LayersShrinkGoingUp) {
  // Higher layers must contain (weakly) fewer nodes with edges.
  size_t prev = SIZE_MAX;
  for (size_t layer = 0; layer < index_->NumLayers(); ++layer) {
    size_t populated = 0;
    for (size_t v = 0; v < index_->NumPoints(); ++v) {
      populated += !index_->NeighborsOf(layer, static_cast<int32_t>(v)).empty();
    }
    if (layer > 0) {
      EXPECT_LE(populated, prev);
    }
    prev = populated;
  }
}

TEST_F(HnswTest, LargerPoolImprovesOrMaintainsRecall) {
  Rng rng(41);
  std::vector<float> query(points_.cols());
  for (float& v : query) v = static_cast<float>(rng.Normal(0, 3));
  const auto exact = BruteForceSearch(points_, query, 10);
  const auto small = index_->Search(query, 10, 10);
  const auto large = index_->Search(query, 10, 120);
  EXPECT_GE(ComputeRecall(large, exact) + 1e-9, ComputeRecall(small, exact));
}

TEST(HnswEdgeCaseTest, EmptyAndSingleton) {
  Matrix empty(0, 4);
  const Hnsw e = Hnsw::Build(empty, {});
  EXPECT_TRUE(e.Search(std::vector<float>{0, 0, 0, 0}, 3).empty());
  Matrix one(1, 4, 1.0f);
  const Hnsw s = Hnsw::Build(one, {});
  const auto result = s.Search(std::vector<float>{0, 0, 0, 0}, 3);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0);
}

TEST(HnswEdgeCaseTest, DeterministicBuild) {
  const Matrix points = ClusteredPoints(200, 8, 51);
  HnswConfig config;
  config.m = 8;
  const Hnsw a = Hnsw::Build(points, config);
  const Hnsw b = Hnsw::Build(points, config);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.entry_point(), b.entry_point());
  std::vector<float> query(8, 0.0f);
  const auto ra = a.Search(query, 5, 20);
  const auto rb = b.Search(query, 5, 20);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i].id, rb[i].id);
}

}  // namespace
}  // namespace kpef

// End-to-end integration: the external-data adoption path.
// TSV rows -> graph -> save/load graph -> Dataset -> corpus -> engine
// build -> artifact save/load -> identical query results.

#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "data/corpus_builder.h"
#include "data/queries.h"
#include "data/tsv_importer.h"
#include "graph/graph_io.h"

namespace kpef {
namespace {

// Generates a small TSV bibliography with planted group/topic structure
// (like the synthetic generator, but through the public import path).
std::string MakeTsv(size_t papers_per_group, size_t groups) {
  Rng rng(77);
  std::ostringstream out;
  out << "# paper_id\tauthors\tvenue\ttopics\tcitations\ttext\n";
  size_t paper_counter = 0;
  for (size_t g = 0; g < groups; ++g) {
    const std::string topic = "topic" + std::to_string(g % 4);
    for (size_t p = 0; p < papers_per_group; ++p) {
      const std::string id = "p" + std::to_string(paper_counter++);
      // 2-3 authors from the group's pool of 5.
      std::string authors;
      const size_t num_authors = 2 + rng.Uniform(2);
      for (size_t a = 0; a < num_authors; ++a) {
        if (!authors.empty()) authors += '|';
        authors += "g" + std::to_string(g) + "a" +
                   std::to_string(rng.Uniform(5));
      }
      std::string citations;
      if (paper_counter > 2 && rng.Bernoulli(0.7)) {
        citations = "p" + std::to_string(rng.Uniform(paper_counter - 1));
      }
      std::string text;
      for (int w = 0; w < 20; ++w) {
        if (!text.empty()) text += ' ';
        text += (rng.Bernoulli(0.4) ? topic + "w" : std::string("cw")) +
                std::to_string(rng.Uniform(30));
      }
      out << id << '\t' << authors << '\t' << "venue" << (g % 3) << '\t'
          << topic << '\t' << citations << '\t' << text << '\n';
    }
  }
  return out.str();
}

TEST(IntegrationTest, TsvToServedQueriesEndToEnd) {
  // 1. Import a bibliography.
  std::stringstream tsv(MakeTsv(10, 12));
  auto imported = ImportTsvDataset(tsv, "integration");
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  // 2. Round-trip the graph through the text format.
  const std::string graph_path =
      ::testing::TempDir() + "/kpef_integration_graph.kg";
  ASSERT_TRUE(SaveGraph(imported->graph, graph_path).ok());
  auto reloaded_graph = LoadGraph(graph_path);
  ASSERT_TRUE(reloaded_graph.ok());
  auto dataset = DatasetFromGraph(std::move(*reloaded_graph), "reloaded");
  ASSERT_TRUE(dataset.ok());

  // 3. Build the full pipeline.
  const Corpus corpus = BuildPaperCorpus(*dataset);
  EngineConfig config;
  config.k = 2;
  config.encoder.dim = 24;
  config.trainer.epochs = 2;
  config.top_m = 30;
  config.pg_index.knn_k = 6;
  auto engine = ExpertFindingEngine::Build(&*dataset, &corpus, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // 4. Persist artifacts and reload into a "serving" engine.
  const std::string model_dir = ::testing::TempDir();
  ASSERT_TRUE((*engine)->SaveArtifacts(model_dir).ok());
  auto serving = ExpertFindingEngine::LoadFromArtifacts(&*dataset, &corpus,
                                                        config, model_dir);
  ASSERT_TRUE(serving.ok()) << serving.status().ToString();

  // 5. Serve queries: results identical between builder and server, and
  //    non-empty for every query.
  const QuerySet queries = GenerateQueries(*dataset, 5, 42);
  for (const Query& q : queries.queries) {
    const auto built = (*engine)->FindExperts(q.text, 8);
    const auto served = (*serving)->FindExperts(q.text, 8);
    ASSERT_FALSE(built.empty());
    ASSERT_EQ(built.size(), served.size());
    for (size_t i = 0; i < built.size(); ++i) {
      EXPECT_EQ(built[i].author, served[i].author);
      EXPECT_DOUBLE_EQ(built[i].score, served[i].score);
    }
  }
  std::remove(graph_path.c_str());
}

}  // namespace
}  // namespace kpef

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/dataset.h"
#include "ranking/expert_score.h"
#include "ranking/top_n_finder.h"
#include "test_graphs.h"

namespace kpef {
namespace {

TEST(ZipfContributionTest, MatchesFormula) {
  // Single author: weight 1.
  EXPECT_DOUBLE_EQ(ZipfContribution(1, 1), 1.0);
  // Two authors: H(2) = 1.5 -> first 2/3, second 1/3.
  EXPECT_NEAR(ZipfContribution(1, 2), 1.0 / 1.5, 1e-12);
  EXPECT_NEAR(ZipfContribution(2, 2), 1.0 / 3.0, 1e-12);
  // Three authors: H(3) = 11/6.
  EXPECT_NEAR(ZipfContribution(1, 3), 6.0 / 11.0, 1e-12);
  EXPECT_NEAR(ZipfContribution(3, 3), 2.0 / 11.0, 1e-12);
}

TEST(ZipfContributionTest, WeightsSumToOne) {
  for (size_t n : {1u, 2u, 5u, 9u}) {
    double total = 0.0;
    for (size_t r = 1; r <= n; ++r) total += ZipfContribution(r, n);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ZipfContributionTest, DecreasesWithRank) {
  for (size_t r = 1; r < 6; ++r) {
    EXPECT_GT(ZipfContribution(r, 6), ZipfContribution(r + 1, 6));
  }
}

class RankedListsTest : public ::testing::Test {
 protected:
  RankedListsTest() : g_(Figure2Graph::Make()) {}
  Figure2Graph g_;
};

TEST_F(RankedListsTest, BuildsOneListPerPaper) {
  // p3 has authors (a0, a1); p4 has (a1, a2).
  const std::vector<NodeId> papers = {g_.papers[3], g_.papers[4]};
  const RankedLists lists = BuildRankedLists(g_.graph, g_.ids.write, papers);
  ASSERT_EQ(lists.lists.size(), 2u);
  EXPECT_EQ(lists.papers, papers);
  EXPECT_EQ(lists.num_candidates, 3u);  // a0, a1, a2
  // First list: rank-1 paper -> S(a0) = (1/1)*(1/(1*1.5)) = 2/3.
  ASSERT_EQ(lists.lists[0].size(), 2u);
  EXPECT_EQ(lists.lists[0][0].author, g_.authors[0]);
  EXPECT_NEAR(lists.lists[0][0].score, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(lists.lists[0][1].author, g_.authors[1]);
  EXPECT_NEAR(lists.lists[0][1].score, 1.0 / 3.0, 1e-9);
  // Second list: rank-2 paper halves every score.
  EXPECT_NEAR(lists.lists[1][0].score, 0.5 * 2.0 / 3.0, 1e-9);
}

TEST_F(RankedListsTest, ListsSortedDescending) {
  const RankedLists lists =
      BuildRankedLists(g_.graph, g_.ids.write, g_.papers);
  for (const auto& list : lists.lists) {
    for (size_t i = 1; i < list.size(); ++i) {
      EXPECT_GE(list[i - 1].score, list[i].score);
    }
  }
}

TEST_F(RankedListsTest, PaperWithNoAuthorsYieldsEmptyList) {
  const RankedLists lists =
      BuildRankedLists(g_.graph, g_.ids.write, {g_.papers[9]});
  ASSERT_EQ(lists.lists.size(), 1u);
  EXPECT_TRUE(lists.lists[0].empty());
  EXPECT_EQ(lists.num_candidates, 0u);
}

// Builds a synthetic RankedLists with random scores (no graph needed).
RankedLists SyntheticLists(size_t num_papers, size_t num_authors,
                           double appear_prob, uint64_t seed) {
  Rng rng(seed);
  RankedLists lists;
  lists.lists.resize(num_papers);
  lists.papers.resize(num_papers);
  std::set<NodeId> candidates;
  for (size_t j = 0; j < num_papers; ++j) {
    lists.papers[j] = static_cast<NodeId>(1000 + j);
    for (size_t a = 0; a < num_authors; ++a) {
      if (!rng.Bernoulli(appear_prob)) continue;
      lists.lists[j].push_back(
          {static_cast<NodeId>(a), rng.UniformDouble(0.01, 1.0)});
      candidates.insert(static_cast<NodeId>(a));
    }
    std::sort(lists.lists[j].begin(), lists.lists[j].end(),
              [](const ExpertScore& x, const ExpertScore& y) {
                if (x.score != y.score) return x.score > y.score;
                return x.author < y.author;
              });
  }
  lists.num_candidates = candidates.size();
  return lists;
}

struct TACase {
  size_t papers;
  size_t authors;
  double prob;
  size_t n;
  uint64_t seed;
};

class ThresholdAlgorithmTest : public ::testing::TestWithParam<TACase> {};

TEST_P(ThresholdAlgorithmTest, MatchesFullScan) {
  const TACase c = GetParam();
  const RankedLists lists =
      SyntheticLists(c.papers, c.authors, c.prob, c.seed);
  TopNStats full_stats, ta_stats;
  const auto full = FullScanTopN(lists, c.n, &full_stats);
  const auto ta = ThresholdTopN(lists, c.n, &ta_stats);
  ASSERT_EQ(full.size(), ta.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].author, ta[i].author) << "rank " << i;
    EXPECT_NEAR(full[i].score, ta[i].score, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, ThresholdAlgorithmTest,
    ::testing::Values(TACase{5, 10, 0.5, 3, 1}, TACase{20, 40, 0.2, 5, 2},
                      TACase{50, 100, 0.1, 10, 3}, TACase{10, 5, 0.9, 2, 4},
                      TACase{30, 200, 0.05, 20, 5}, TACase{1, 10, 0.8, 3, 6},
                      TACase{40, 40, 0.15, 1, 7},
                      TACase{15, 8, 0.6, 100, 8}),  // n > candidates
    [](const ::testing::TestParamInfo<TACase>& info) {
      const TACase& c = info.param;
      return "m" + std::to_string(c.papers) + "_a" +
             std::to_string(c.authors) + "_n" + std::to_string(c.n) + "_s" +
             std::to_string(c.seed);
    });

TEST(ThresholdAlgorithmDetailTest, EarlyTerminationHappens) {
  // Long lists dominated by one superstar author: TA should stop early.
  RankedLists lists;
  const size_t m = 30;
  lists.lists.resize(m);
  lists.papers.resize(m);
  for (size_t j = 0; j < m; ++j) {
    lists.papers[j] = static_cast<NodeId>(j);
    lists.lists[j].push_back({0, 10.0});  // superstar tops every list
    for (size_t a = 1; a < 50; ++a) {
      lists.lists[j].push_back(
          {static_cast<NodeId>(a), 0.001 / static_cast<double>(a)});
    }
  }
  lists.num_candidates = 50;
  TopNStats stats;
  const auto top = ThresholdTopN(lists, 1, &stats);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].author, 0);
  EXPECT_NEAR(top[0].score, 300.0, 1e-9);
  EXPECT_TRUE(stats.early_terminated);
  EXPECT_LT(stats.entries_accessed, m * 50);
}

TEST(ThresholdAlgorithmDetailTest, EmptyInputs) {
  RankedLists empty;
  EXPECT_TRUE(ThresholdTopN(empty, 5).empty());
  EXPECT_TRUE(FullScanTopN(empty, 5).empty());
  const RankedLists lists = SyntheticLists(3, 5, 0.5, 9);
  EXPECT_TRUE(ThresholdTopN(lists, 0).empty());
}

TEST(ThresholdAlgorithmDetailTest, StatsAccounting) {
  const RankedLists lists = SyntheticLists(10, 30, 0.3, 11);
  TopNStats full_stats, ta_stats;
  FullScanTopN(lists, 5, &full_stats);
  ThresholdTopN(lists, 5, &ta_stats);
  size_t total_entries = 0;
  for (const auto& l : lists.lists) total_entries += l.size();
  EXPECT_EQ(full_stats.entries_accessed, total_entries);
  EXPECT_LE(ta_stats.entries_accessed, total_entries);
  EXPECT_GT(ta_stats.rounds, 0u);
}

TEST(ExpertRankingIntegrationTest, AggregatesAcrossPapers) {
  const Figure2Graph g = Figure2Graph::Make();
  // Retrieve p3 then p4: a1 appears in both (rank 2 in p3, rank 1 in p4).
  const RankedLists lists =
      BuildRankedLists(g.graph, g.ids.write, {g.papers[3], g.papers[4]});
  const auto top = FullScanTopN(lists, 3);
  ASSERT_EQ(top.size(), 3u);
  std::map<NodeId, double> scores;
  for (const auto& e : top) scores[e.author] = e.score;
  // R(a1) = 1/3 (rank2 of p3) + (1/2)*(2/3) (rank1 of p4) = 2/3.
  EXPECT_NEAR(scores[g.authors[1]], 1.0 / 3.0 + 0.5 * 2.0 / 3.0, 1e-9);
  // R(a0) = 2/3 from p3 only.
  EXPECT_NEAR(scores[g.authors[0]], 2.0 / 3.0, 1e-9);
  // a0 and a1 tie at 2/3: tie broken by smaller node id (a0 first).
  EXPECT_EQ(top[0].author, g.authors[0]);
  EXPECT_EQ(top[1].author, g.authors[1]);
}

}  // namespace
}  // namespace kpef

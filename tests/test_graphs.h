// Hand-built graphs shared by the meta-path and (k, P)-core tests.

#ifndef KPEF_TESTS_TEST_GRAPHS_H_
#define KPEF_TESTS_TEST_GRAPHS_H_

#include <vector>

#include "graph/hetero_graph.h"
#include "graph/schema.h"

namespace kpef {

/// A small academic graph reproducing the structure of the paper's
/// Figure 2 / Example 4 for P = P-A-P, k = 3:
///  - papers p[0..3] all share author a0 (a 3-core clique of 4 papers);
///  - p[4] co-authored with p[3] via a1 and with p[5] via a2
///    (so deg(p4) = 2: neighbors p3 and p5);
///  - papers p[5..8] all share author a3 (a second 3-core clique);
///  - p[9] is isolated.
/// Topics: t0 covers p0..p4, t1 covers p5..p9. Citations: p1 -> p0,
/// p2 -> p0 (p0 has citation degree 2).
struct Figure2Graph {
  AcademicSchema ids;
  HeteroGraph graph;
  std::vector<NodeId> papers;   // p0..p9
  std::vector<NodeId> authors;  // a0..a3
  std::vector<NodeId> topics;   // t0, t1

  static Figure2Graph Make() {
    Figure2Graph g;
    g.ids = AcademicSchema::Make();
    HeteroGraphBuilder builder(g.ids.schema);
    for (int i = 0; i < 4; ++i) {
      g.authors.push_back(builder.AddNode(g.ids.author));
    }
    for (int i = 0; i < 10; ++i) {
      g.papers.push_back(
          builder.AddNode(g.ids.paper, "paper " + std::to_string(i)));
    }
    for (int i = 0; i < 2; ++i) {
      g.topics.push_back(builder.AddNode(g.ids.topic));
    }
    auto edge = [&](EdgeTypeId type, NodeId src, NodeId dst) {
      const Status s = builder.AddEdge(type, src, dst);
      if (!s.ok()) std::abort();
    };
    // Clique 1: a0 writes p0..p3.
    for (int i = 0; i < 4; ++i) edge(g.ids.write, g.authors[0], g.papers[i]);
    // Bridge: a1 writes p3, p4; a2 writes p4, p5.
    edge(g.ids.write, g.authors[1], g.papers[3]);
    edge(g.ids.write, g.authors[1], g.papers[4]);
    edge(g.ids.write, g.authors[2], g.papers[4]);
    edge(g.ids.write, g.authors[2], g.papers[5]);
    // Clique 2: a3 writes p5..p8.
    for (int i = 5; i < 9; ++i) edge(g.ids.write, g.authors[3], g.papers[i]);
    // Topics.
    for (int i = 0; i < 5; ++i) edge(g.ids.mention, g.papers[i], g.topics[0]);
    for (int i = 5; i < 10; ++i) edge(g.ids.mention, g.papers[i], g.topics[1]);
    // Citations.
    edge(g.ids.cite, g.papers[1], g.papers[0]);
    edge(g.ids.cite, g.papers[2], g.papers[0]);
    g.graph = std::move(builder).Build();
    return g;
  }
};

}  // namespace kpef

#endif  // KPEF_TESTS_TEST_GRAPHS_H_

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/g2g.h"
#include "baselines/gvnr_t.h"
#include "baselines/idne.h"
#include "baselines/tadw.h"
#include "baselines/text_features.h"
#include "baselines/text_models.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/queries.h"
#include "embed/pretrain.h"
#include "eval/evaluation.h"
#include "metapath/meta_path.h"

namespace kpef {
namespace {

// Shared expensive fixtures, built once for the whole binary.
class BaselinesTest : public ::testing::Test {
 protected:
  struct Shared {
    Dataset dataset;
    Corpus corpus;
    TfIdfModel tfidf;
    Matrix tokens;
    HomogeneousProjection merged;
    QuerySet queries;

    Shared()
        : dataset(GenerateDataset(TinyProfile())),
          corpus(BuildPaperCorpus(dataset)),
          tfidf(corpus),
          tokens([&] {
            PretrainConfig config;
            config.dim = 32;
            config.epochs = 6;
            return PretrainTokenEmbeddings(corpus, config).token_embeddings;
          }()),
          merged([&] {
            std::vector<HomogeneousProjection> projections;
            for (const char* p : {"P-A-P", "P-T-P", "P-P", "P-V-P"}) {
              auto path = MetaPath::Parse(dataset.graph.schema(), p);
              projections.push_back(ProjectHomogeneous(dataset.graph, *path));
            }
            return UnionProjections(std::move(projections));
          }()),
          queries(GenerateQueries(dataset, 8, 17)) {}
  };

  static Shared& shared() {
    static Shared* s = new Shared();
    return *s;
  }
};

void ExpectValidExperts(const Dataset& dataset,
                        const std::vector<ExpertScore>& experts, size_t n) {
  EXPECT_LE(experts.size(), n);
  EXPECT_GT(experts.size(), 0u);
  std::set<NodeId> seen;
  double prev = 1e30;
  for (const ExpertScore& e : experts) {
    EXPECT_EQ(dataset.graph.TypeOf(e.author), dataset.ids.author);
    EXPECT_TRUE(seen.insert(e.author).second) << "duplicate expert";
    EXPECT_LE(e.score, prev);
    prev = e.score;
    EXPECT_GT(e.score, 0.0);
  }
}

TEST_F(BaselinesTest, TfIdfReturnsRankedExperts) {
  Shared& s = shared();
  TfIdfExpertModel model(&s.dataset, &s.corpus, &s.tfidf, 50);
  const auto experts = model.FindExperts(s.queries.queries[0].text, 10);
  ExpectValidExperts(s.dataset, experts, 10);
  EXPECT_EQ(model.name(), "TFIDF");
}

TEST_F(BaselinesTest, AvgGloveReturnsRankedExperts) {
  Shared& s = shared();
  AvgGloveModel model(&s.dataset, &s.corpus, &s.tokens, 50);
  ExpectValidExperts(s.dataset,
                     model.FindExperts(s.queries.queries[0].text, 10), 10);
  EXPECT_EQ(model.paper_embeddings().rows(), s.corpus.NumDocuments());
}

TEST_F(BaselinesTest, SbertLikeReturnsRankedExperts) {
  Shared& s = shared();
  SbertLikeModel model(&s.dataset, &s.corpus, &s.tokens, 50);
  ExpectValidExperts(s.dataset,
                     model.FindExperts(s.queries.queries[1].text, 10), 10);
}

TEST_F(BaselinesTest, TadwReturnsRankedExperts) {
  Shared& s = shared();
  TadwModel model(&s.dataset, &s.corpus, &s.merged, &s.tokens, 50);
  ExpectValidExperts(s.dataset,
                     model.FindExperts(s.queries.queries[2].text, 10), 10);
  EXPECT_EQ(model.paper_embeddings().cols(), 2 * s.tokens.cols());
}

TEST_F(BaselinesTest, GvnrTReturnsRankedExperts) {
  Shared& s = shared();
  GvnrTConfig config;
  config.dim = 24;
  config.walks_per_node = 3;
  config.walk_length = 8;
  config.epochs = 1;
  GvnrTModel model(&s.dataset, &s.corpus, &s.merged, &s.tfidf, 50, config);
  ExpectValidExperts(s.dataset,
                     model.FindExperts(s.queries.queries[3].text, 10), 10);
}

TEST_F(BaselinesTest, G2GReturnsRankedExperts) {
  Shared& s = shared();
  G2GConfig config;
  config.epochs = 1;
  config.triples_per_node = 1;
  G2GModel model(&s.dataset, &s.corpus, &s.merged, &s.tokens, 50, config);
  ExpectValidExperts(s.dataset,
                     model.FindExperts(s.queries.queries[4].text, 10), 10);
}

TEST_F(BaselinesTest, IdneReturnsRankedExperts) {
  Shared& s = shared();
  IdneConfig config;
  config.num_topics = 8;
  IdneModel model(&s.dataset, &s.corpus, &s.tokens, 50, config);
  ExpectValidExperts(s.dataset,
                     model.FindExperts(s.queries.queries[5].text, 10), 10);
}

TEST_F(BaselinesTest, TfIdfBeatsNothingness) {
  // On planted data, TFIDF must comfortably beat a zero-signal baseline
  // (topic words dominate the text).
  Shared& s = shared();
  TfIdfExpertModel model(&s.dataset, &s.corpus, &s.tfidf, 50);
  const Evaluator evaluator(&s.dataset, &s.queries, &s.corpus, &s.tfidf);
  const EvaluationResult result = evaluator.Evaluate(model, 10);
  EXPECT_GT(result.p_at_5, 0.3);
  EXPECT_GT(result.map, 0.1);
}

TEST_F(BaselinesTest, QueryEmbeddingOfOwnTextRanksPaperHighly) {
  // Self-retrieval: querying with a paper's own text should put that
  // paper's authors into the candidate pool for every dense model.
  Shared& s = shared();
  AvgGloveModel model(&s.dataset, &s.corpus, &s.tokens, 20);
  const Query& q = s.queries.queries[0];
  const auto experts = model.FindExperts(q.text, 20);
  const auto authors = s.dataset.graph.Neighbors(q.query_paper,
                                                 s.dataset.ids.write);
  size_t found = 0;
  for (const ExpertScore& e : experts) {
    for (NodeId a : authors) found += (e.author == a);
  }
  EXPECT_GT(found, 0u);
}

TEST_F(BaselinesTest, MeanTokenEmbeddingBasics) {
  Matrix table(3, 2);
  table.At(0, 0) = 1;
  table.At(1, 0) = 3;
  const std::vector<TokenId> tokens = {0, 1};
  const auto mean = MeanTokenEmbedding(table, tokens);
  EXPECT_FLOAT_EQ(mean[0], 2.0f);
  EXPECT_FLOAT_EQ(mean[1], 0.0f);
  EXPECT_EQ(MeanTokenEmbedding(table, std::vector<TokenId>{})[0], 0.0f);
}

TEST_F(BaselinesTest, SifDownweightsFrequentTokens) {
  // Token 0 appears in all docs, token 1 in one: SIF weight of token 1
  // should dominate.
  Corpus corpus;
  corpus.AddDocument("common rare");
  corpus.AddDocument("common other");
  corpus.AddDocument("common thing");
  Matrix table(corpus.vocabulary().size(), 2);
  table.At(corpus.vocabulary().Lookup("common"), 0) = 1.0f;
  table.At(corpus.vocabulary().Lookup("rare"), 1) = 1.0f;
  const auto emb =
      SifEmbedding(table, corpus.vocabulary(), corpus.NumDocuments(),
                   corpus.EncodeQuery("common rare"));
  EXPECT_GT(emb[1], emb[0]);
}

}  // namespace
}  // namespace kpef

#include <sstream>

#include <gtest/gtest.h>

#include "data/tsv_importer.h"

namespace kpef {
namespace {

constexpr char kSample[] =
    "# paper_id\tauthors\tvenue\ttopics\tcitations\ttext\n"
    "p1\talice|bob\ticde\tgraphs\t\tcommunity search over graphs\n"
    "p2\tbob\tvldb\tgraphs|ml\tp1\tlearned indexes on graphs\n"
    "p3\tcarol\ticde\tml\tp1|p2\tdeep models for text\n";

TEST(TsvImporterTest, ImportsSampleGraph) {
  std::stringstream in(kSample);
  TsvImportReport report;
  auto dataset = ImportTsvDataset(in, "sample", &report);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(report.papers, 3u);
  EXPECT_EQ(report.authors, 3u);
  EXPECT_EQ(report.venues, 2u);
  EXPECT_EQ(report.topics, 2u);
  EXPECT_EQ(report.dangling_citations, 0u);
  EXPECT_EQ(report.malformed_lines, 0u);

  const auto& graph = dataset->graph;
  EXPECT_EQ(graph.NumNodesOfType(dataset->ids.paper), 3u);
  EXPECT_EQ(graph.NumEdgesOfType(dataset->ids.cite), 3u);

  // Author rank order preserved: p1's first author is alice.
  const NodeId p1 = dataset->Papers()[0];
  const auto p1_authors = graph.Neighbors(p1, dataset->ids.write);
  ASSERT_EQ(p1_authors.size(), 2u);
  EXPECT_EQ(graph.Label(p1_authors[0]), "alice");
  EXPECT_EQ(graph.Label(p1_authors[1]), "bob");
  EXPECT_EQ(graph.Label(p1), "community search over graphs");
}

TEST(TsvImporterTest, SkipsMalformedLinesAndDanglingCitations) {
  std::stringstream in(
      "p1\talice\ticde\tml\tp9|p1\tself and dangling cites\n"
      "not a valid line\n"
      "\tno_id\ticde\tml\t\tmissing id\n"
      "p2\t\ticde\tml\t\tno authors\n");
  TsvImportReport report;
  auto dataset = ImportTsvDataset(in, "messy", &report);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(report.papers, 1u);
  EXPECT_EQ(report.malformed_lines, 3u);
  // p9 is unknown and p1 self-cite is skipped.
  EXPECT_EQ(report.dangling_citations, 2u);
  EXPECT_EQ(dataset->graph.NumEdgesOfType(dataset->ids.cite), 0u);
}

TEST(TsvImporterTest, RejectsEmptyInput) {
  std::stringstream in("# only comments\n");
  EXPECT_FALSE(ImportTsvDataset(in, "empty").ok());
}

TEST(TsvImporterTest, RejectsDuplicatePaperIds) {
  std::stringstream in(
      "p1\ta\tv\tt\t\tfirst\n"
      "p1\tb\tv\tt\t\tsecond\n");
  auto dataset = ImportTsvDataset(in, "dup");
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
}

TEST(TsvImporterTest, MissingFileIsIOError) {
  auto dataset = ImportTsvDataset("/nonexistent/papers.tsv");
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kIOError);
}

TEST(TsvImporterTest, PrimaryTopicsDerivedFromFirstMention) {
  std::stringstream in(kSample);
  auto dataset = ImportTsvDataset(in, "sample");
  ASSERT_TRUE(dataset.ok());
  // p2 mentions graphs first -> primary topic is "graphs"'s local index.
  const auto& topics = dataset->graph.NodesOfType(dataset->ids.topic);
  const NodeId p2 = dataset->Papers()[1];
  const int32_t primary =
      dataset->paper_primary_topic[dataset->graph.LocalIndex(p2)];
  EXPECT_EQ(dataset->graph.Label(topics[primary]), "graphs");
}

}  // namespace
}  // namespace kpef

// Hostile-input WAL tests (DESIGN.md §16): torn tails (truncated
// length/payload), CRC mismatches, oversized length fields, and
// fingerprint/header damage must never crash, never drop valid records,
// and never let a poisoned tail survive a writer re-open. Plus the
// ingest-batch codec round trip and its bounds checks.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/ingest_batch.h"
#include "ingest/wal.h"

namespace kpef {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("kpef_wal_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "test.wal").string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static std::vector<uint8_t> Payload(const std::string& s) {
    return std::vector<uint8_t>(s.begin(), s.end());
  }

  std::vector<uint8_t> FileBytes() const {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    return bytes;
  }

  void WriteFileBytes(const std::vector<uint8_t>& bytes) const {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  /// Writes a WAL with the given payloads and returns the file image.
  std::vector<uint8_t> WriteWal(const std::vector<std::string>& payloads) {
    auto writer = WalWriter::Open(path_, fingerprint_);
    EXPECT_TRUE(writer.ok()) << writer.status().ToString();
    for (const std::string& p : payloads) {
      EXPECT_TRUE(writer->Append(Payload(p)).ok());
    }
    writer->Close();
    return FileBytes();
  }

  WalFingerprint fingerprint_{123, 456};
  fs::path dir_;
  std::string path_;
};

TEST_F(WalTest, RoundTrip) {
  WriteWal({"alpha", "bee", "ccc"});
  auto replay = ReadWal(path_, fingerprint_);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[0], Payload("alpha"));
  EXPECT_EQ(replay->records[1], Payload("bee"));
  EXPECT_EQ(replay->records[2], Payload("ccc"));
  EXPECT_TRUE(replay->truncation_reason.empty());
  EXPECT_EQ(replay->dropped_bytes, 0u);
}

TEST_F(WalTest, TruncatedTailRecoversValidPrefix) {
  std::vector<uint8_t> intact = WriteWal({"first", "second", "third"});
  // Chop the file mid-way through the last record's payload.
  std::vector<uint8_t> torn(intact.begin(), intact.end() - 3);
  WriteFileBytes(torn);

  auto replay = ReadWal(path_, fingerprint_);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[1], Payload("second"));
  EXPECT_EQ(replay->truncation_reason, "truncated record");
  EXPECT_GT(replay->dropped_bytes, 0u);

  // Re-opening the writer truncates the torn tail; the next append must
  // land cleanly after "second", not on top of garbage.
  auto writer = WalWriter::Open(path_, fingerprint_);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append(Payload("fourth")).ok());
  writer->Close();

  auto healed = ReadWal(path_, fingerprint_);
  ASSERT_TRUE(healed.ok());
  ASSERT_EQ(healed->records.size(), 3u);
  EXPECT_EQ(healed->records[2], Payload("fourth"));
  EXPECT_TRUE(healed->truncation_reason.empty());
}

TEST_F(WalTest, CrcMismatchStopsReplayBeforeCorruptRecord) {
  std::vector<uint8_t> bytes = WriteWal({"first", "second"});
  // Flip a bit in the last payload byte; the length still reads fine.
  bytes.back() ^= 0x40;
  WriteFileBytes(bytes);

  auto replay = ReadWal(path_, fingerprint_);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0], Payload("first"));
  EXPECT_EQ(replay->truncation_reason, "crc mismatch");
}

TEST_F(WalTest, OversizedLengthTreatedAsCorruption) {
  std::vector<uint8_t> bytes = WriteWal({"first"});
  // Append a frame whose length field claims > kWalMaxRecordBytes.
  const uint32_t bogus = kWalMaxRecordBytes + 1;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>((bogus >> (8 * i)) & 0xff));
  }
  for (int i = 0; i < 8; ++i) bytes.push_back(0xab);
  WriteFileBytes(bytes);

  auto replay = ReadWal(path_, fingerprint_);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->truncation_reason, "oversized record");

  // The writer refuses to produce such a record in the first place.
  auto writer = WalWriter::Open(path_, fingerprint_);
  ASSERT_TRUE(writer.ok());
  std::vector<uint8_t> huge(kWalMaxRecordBytes + 1, 0x5a);
  EXPECT_EQ(writer->Append(huge).code(), StatusCode::kInvalidArgument);
}

TEST_F(WalTest, FingerprintMismatchRejectsReplay) {
  WriteWal({"first"});
  WalFingerprint wrong{999, 456};
  auto replay = ReadWal(path_, wrong);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kFailedPrecondition);
  auto writer = WalWriter::Open(path_, wrong);
  EXPECT_FALSE(writer.ok());
}

TEST_F(WalTest, DamagedHeaderRejected) {
  std::vector<uint8_t> bytes = WriteWal({"first"});
  bytes[0] ^= 0xff;  // break the magic
  WriteFileBytes(bytes);
  auto replay = ReadWal(path_, fingerprint_);
  EXPECT_FALSE(replay.ok());
}

TEST_F(WalTest, MissingFileIsError) {
  auto replay = ReadWal(path_, fingerprint_);
  EXPECT_FALSE(replay.ok());
}

TEST_F(WalTest, DurableBytesTracksFileSize) {
  auto writer = WalWriter::Open(path_, fingerprint_);
  ASSERT_TRUE(writer.ok());
  const uint64_t header = writer->DurableBytes();
  ASSERT_TRUE(writer->Append(Payload("xyz")).ok());
  EXPECT_EQ(writer->DurableBytes(), header + 8 + 3);
  writer->Close();
  EXPECT_EQ(FileBytes().size(), header + 8 + 3);
}

// --- Ingest batch codec ----------------------------------------------

TEST(IngestBatchCodecTest, RoundTrip) {
  IngestBatch batch;
  batch.papers.push_back(IngestPaper{"deep graph cores",
                                     {"ada", "grace"},
                                     "icde",
                                     {"graphs", "databases"},
                                     {"older paper"}});
  batch.papers.push_back(IngestPaper{"empty lists ok", {}, "", {}, {}});
  const std::vector<uint8_t> bytes = SerializeBatch(batch);
  auto parsed = ParseBatch(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->papers.size(), 2u);
  EXPECT_EQ(parsed->papers[0].text, "deep graph cores");
  EXPECT_EQ(parsed->papers[0].authors,
            (std::vector<std::string>{"ada", "grace"}));
  EXPECT_EQ(parsed->papers[0].venue, "icde");
  EXPECT_EQ(parsed->papers[0].cites,
            (std::vector<std::string>{"older paper"}));
  EXPECT_EQ(parsed->papers[1].text, "empty lists ok");
  EXPECT_TRUE(parsed->papers[1].authors.empty());
}

TEST(IngestBatchCodecTest, TruncatedAndTrailingBytesRejected) {
  IngestBatch batch;
  batch.papers.push_back(
      IngestPaper{"text", {"a"}, "v", {"t"}, {}});
  std::vector<uint8_t> bytes = SerializeBatch(batch);

  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 2);
  EXPECT_FALSE(ParseBatch(truncated).ok());

  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(ParseBatch(trailing).ok());

  // A count field that implies more bytes than the buffer holds must be
  // rejected up front, not trusted into a giant allocation.
  std::vector<uint8_t> huge_count = {0xff, 0xff, 0xff, 0x7f};
  EXPECT_FALSE(ParseBatch(huge_count).ok());
}

}  // namespace
}  // namespace kpef

// Acceptance tests for end-to-end request observability over a REAL
// engine (tiny, trained once per binary): a client-supplied
// X-Request-Id forced past the tail-latency threshold must come back
// from /v1/debug/trace?id= with the complete span tree — server ->
// queue -> batch -> encode -> search -> ranking — and the same trace id
// in the structured access log. Interleaving requests in one
// micro-batch must keep their spans separated per trace even though the
// engine fans their work across a shared thread pool.
//
// serve_server_test covers the serving layers with a fake engine; this
// file is the only place the engine's own span attribution is visible.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/queries.h"
#include "embed/model_io.h"
#include "obs/trace.h"
#include "serve/http_server.h"
#include "serve/service.h"

namespace kpef::serve {
namespace {

#ifdef KPEF_METRICS_DISABLED
#define KPEF_SKIP_IF_METRICS_DISABLED() \
  GTEST_SKIP() << "tracing compiled out (KPEF_METRICS_DISABLED)"
#else
#define KPEF_SKIP_IF_METRICS_DISABLED() \
  do {                                  \
  } while (0)
#endif

// --- Minimal blocking HTTP client (loopback) --------------------------

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool Post(const std::string& path, const std::string& body,
            const std::string& request_id = "") {
    std::string wire = "POST " + path + " HTTP/1.1\r\ncontent-length: " +
                       std::to_string(body.size()) + "\r\n";
    if (!request_id.empty()) wire += "x-request-id: " + request_id + "\r\n";
    wire += "\r\n" + body;
    return SendRaw(wire);
  }

  bool Get(const std::string& path) {
    return SendRaw("GET " + path + " HTTP/1.1\r\n\r\n");
  }

  bool ReadResponse(ClientResponse* out) {
    while (true) {
      const size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        return ParseAndFill(header_end, out);
      }
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      buffer_.append(buf, static_cast<size_t>(n));
    }
  }

 private:
  bool SendRaw(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ParseAndFill(size_t header_end, ClientResponse* out) {
    const std::string head = buffer_.substr(0, header_end);
    out->status = std::atoi(head.c_str() + 9);
    out->headers.clear();
    size_t line_start = head.find("\r\n") + 2;
    while (line_start < head.size()) {
      size_t line_end = head.find("\r\n", line_start);
      if (line_end == std::string::npos) line_end = head.size();
      const std::string line = head.substr(line_start, line_end - line_start);
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::string name = line.substr(0, colon);
        for (char& c : name) c = static_cast<char>(std::tolower(c));
        std::string value = line.substr(colon + 1);
        while (!value.empty() && value.front() == ' ') value.erase(0, 1);
        out->headers[name] = value;
      }
      line_start = line_end + 2;
    }
    const size_t content_length = static_cast<size_t>(
        std::atoll(out->headers["content-length"].c_str()));
    const size_t body_start = header_end + 4;
    while (buffer_.size() < body_start + content_length) {
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      buffer_.append(buf, static_cast<size_t>(n));
    }
    out->body = buffer_.substr(body_start, content_length);
    buffer_.erase(0, body_start + content_length);
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

// --- Shared tiny engine (trained once per binary) ---------------------

class ServeTraceTest : public ::testing::Test {
 protected:
  struct Shared {
    Dataset dataset;
    Corpus corpus;
    Matrix tokens;
    QuerySet queries;
    ThreadPool pool{4};
    std::unique_ptr<ExpertFindingEngine> engine;

    Shared()
        : dataset(GenerateDataset(TinyProfile())),
          corpus(BuildPaperCorpus(dataset)),
          tokens([&] {
            PretrainConfig config;
            config.dim = 32;
            config.epochs = 6;
            return PretrainTokenEmbeddings(corpus, config).token_embeddings;
          }()),
          queries(GenerateQueries(dataset, 6, 23)) {
      EngineConfig config;
      config.k = 3;
      config.seed_fraction = 0.2;
      config.encoder.dim = 32;
      config.trainer.epochs = 2;
      config.top_m = 60;
      config.pg_index.knn_k = 8;
      auto built =
          ExpertFindingEngine::Build(&dataset, &corpus, config, &tokens);
      if (!built.ok()) std::abort();
      engine = std::move(built).value();
    }
  };

  static Shared& shared() {
    static Shared* s = new Shared();
    return *s;
  }
};

/// Thread-safe access-log collector.
struct LogLines {
  std::mutex mutex;
  std::vector<std::string> lines;

  obs::RequestLog::Sink AsSink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mutex);
      lines.push_back(line);
    };
  }
  std::string Find(const std::string& needle) {
    std::lock_guard<std::mutex> lock(mutex);
    for (const std::string& line : lines) {
      if (line.find(needle) != std::string::npos) return line;
    }
    return "";
  }
};

struct Harness {
  std::unique_ptr<HttpServer> server;
  std::unique_ptr<ExpertSearchService> service;

  Harness(ExpertFindingEngine* engine, ServiceConfig config) {
    service = ExpertSearchService::ForEngine(engine, config);
    server = std::make_unique<HttpServer>(
        HttpServerConfig(), [this](const HttpRequest& request,
                                   HttpServer::Responder respond) {
          service->Handle(request, std::move(respond));
        });
    if (!server->Start().ok()) std::abort();
  }
  ~Harness() {
    server->ShutdownGracefully(5000.0);
    service->Drain();
  }
  uint16_t port() const { return server->port(); }
};

// The PR's acceptance case: client X-Request-Id, forced past the tail
// threshold, retrieves the complete phase tree through the debug
// endpoint, and the access log carries the same trace id.
TEST_F(ServeTraceTest, SlowRequestYieldsCompleteSpanTree) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer::Global().ClearRequestTraces();
  LogLines log;
  ServiceConfig config;
  config.batcher.max_batch_size = 4;
  config.batcher.max_queue_age_ms = 1.0;
  config.batcher.pool = &shared().pool;
  config.trace_head_every = 0;  // retention must come from the tail rule
  config.slow_e2e_ms = 0.0001;  // everything is "slow"
  config.access_log_sink = log.AsSink();
  Harness harness(shared().engine.get(), config);

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  const std::string query = shared().queries.queries[0].text;
  ASSERT_TRUE(client.Post("/v1/find_experts",
                          "{\"query\":\"" + query + "\",\"n\":5}",
                          "e2e-trace-1"));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["x-request-id"], "e2e-trace-1");

  ASSERT_TRUE(client.Get("/v1/debug/trace?id=e2e-trace-1"));
  ASSERT_TRUE(client.ReadResponse(&response));
  ASSERT_EQ(response.status, 200) << response.body;
  for (const char* span :
       {"server.request", "serve.queue", "serve.batch", "engine.encode",
        "engine.search", "engine.ranking"}) {
    EXPECT_NE(response.body.find(span), std::string::npos)
        << "missing span " << span << " in " << response.body;
  }
  EXPECT_NE(response.body.find("\"kept_tail\": true"), std::string::npos)
      << response.body;

  // Same trace id in the structured access log, with the phase split.
  const std::string line = log.Find("e2e-trace-1");
  ASSERT_FALSE(line.empty());
  EXPECT_NE(line.find("\"status\":200"), std::string::npos) << line;
  EXPECT_NE(line.find("\"encode_ms\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"search_ms\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ranking_ms\":"), std::string::npos) << line;

  // Chrome export of the same trace loads as trace-event JSON.
  ASSERT_TRUE(client.Get("/v1/debug/trace?id=e2e-trace-1&format=chrome"));
  ASSERT_TRUE(client.ReadResponse(&response));
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(response.body.find("\"displayTimeUnit\": \"ms\""),
            std::string::npos);
}

// Batchmates must not bleed spans into each other: N concurrent
// requests coalesced into shared micro-batches — with engine work fanned
// across a shared pool — each retain a trace whose spans carry only that
// request's key, with exactly one encode span each.
TEST_F(ServeTraceTest, InterleavedBatchmatesKeepSpansSeparated) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer::Global().ClearRequestTraces();
  ServiceConfig config;
  config.batcher.max_batch_size = 8;
  config.batcher.max_queue_age_ms = 25.0;  // wide coalescing window
  config.batcher.pool = &shared().pool;
  config.trace_mode = obs::TraceMode::kAlwaysOn;
  Harness harness(shared().engine.get(), config);

  constexpr int kClients = 6;
  std::vector<std::unique_ptr<TestClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<TestClient>(harness.port()));
    ASSERT_TRUE(clients.back()->connected());
  }
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const std::string query =
          shared().queries.queries[static_cast<size_t>(i) %
                                   shared().queries.queries.size()]
              .text;
      if (!clients[static_cast<size_t>(i)]->Post(
              "/v1/find_experts", "{\"query\":\"" + query + "\",\"n\":3}",
              "mate-" + std::to_string(i))) {
        return;
      }
      ClientResponse response;
      if (clients[static_cast<size_t>(i)]->ReadResponse(&response) &&
          response.status == 200) {
        ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(ok.load(), kClients);

  const std::vector<obs::TraceSnapshot> retained =
      obs::Tracer::Global().RetainedSnapshots();
  std::set<std::string> seen_ids;
  int checked = 0;
  for (const obs::TraceSnapshot& trace : retained) {
    if (trace.id.rfind("mate-", 0) != 0) continue;
    EXPECT_TRUE(seen_ids.insert(trace.id).second) << trace.id;
    ++checked;
    size_t encodes = 0;
    for (const obs::SpanRecord& span : trace.spans) {
      // Every span in a retained trace belongs to that trace's key.
      EXPECT_EQ(span.trace_key, trace.key)
          << trace.id << " holds a foreign span " << span.name;
      if (std::string_view(span.name) == "engine.encode") ++encodes;
    }
    EXPECT_EQ(encodes, 1u) << trace.id;
  }
  EXPECT_EQ(checked, kClients);
}

// A deadline miss is a tail event: the trace is retained and the 504 is
// attributed in the slow ring even when nothing else crossed a bar.
TEST_F(ServeTraceTest, DeadlineMissIsTailRetained) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer::Global().ClearRequestTraces();
  ServiceConfig config;
  config.batcher.max_batch_size = 1;
  config.batcher.max_queue_age_ms = 0.0;
  config.batcher.pool = &shared().pool;
  config.trace_head_every = 0;
  config.slow_e2e_ms = 1e9;  // only the deadline rule can fire
  config.slow_queue_wait_ms = 1e9;
  Harness harness(shared().engine.get(), config);

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  const std::string query = shared().queries.queries[1].text;
  // A 0.0001ms deadline has expired long before dispatch.
  ASSERT_TRUE(client.Post(
      "/v1/find_experts",
      "{\"query\":\"" + query + "\",\"deadline_ms\":0.0001}", "late-1"));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  ASSERT_EQ(response.status, 504);
  EXPECT_EQ(response.headers["x-request-id"], "late-1");

  ASSERT_TRUE(client.Get("/v1/debug/trace?id=late-1"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"kept_tail\": true"), std::string::npos);

  ASSERT_TRUE(client.Get("/v1/debug/slow"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"trace_id\":\"late-1\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"deadline_exceeded\":true"),
            std::string::npos);
}

}  // namespace
}  // namespace kpef::serve

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "kpcore/core_decomposition.h"
#include "kpcore/fastbcore.h"
#include "kpcore/kpcore_search.h"
#include "kpcore/multi_path.h"
#include "kpcore/naive_search.h"
#include "metapath/p_neighbor.h"
#include "metapath/projection.h"
#include "test_graphs.h"

namespace kpef {
namespace {

HomogeneousProjection FromRows(std::vector<std::vector<int32_t>> rows) {
  std::vector<NodeId> nodes(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) nodes[i] = static_cast<NodeId>(i);
  return HomogeneousProjection::FromAdjacency(0, std::move(nodes),
                                              std::move(rows));
}

HomogeneousProjection LineGraph(size_t n) {
  // Simple path graph 0-1-2-...-n-1 as a projection (for decomposition
  // tests without heterogeneous scaffolding).
  std::vector<std::vector<int32_t>> rows(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    rows[i].push_back(static_cast<int32_t>(i + 1));
    rows[i + 1].push_back(static_cast<int32_t>(i));
  }
  return FromRows(std::move(rows));
}

HomogeneousProjection Clique(size_t n) {
  std::vector<std::vector<int32_t>> rows(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) rows[i].push_back(static_cast<int32_t>(j));
    }
  }
  return FromRows(std::move(rows));
}

TEST(CoreDecompositionTest, LineGraphHasCoreNumberOne) {
  const auto cores = CoreDecomposition(LineGraph(6));
  for (int32_t c : cores) EXPECT_EQ(c, 1);
}

TEST(CoreDecompositionTest, CliqueHasCoreNumberNMinusOne) {
  const auto cores = CoreDecomposition(Clique(5));
  for (int32_t c : cores) EXPECT_EQ(c, 4);
}

TEST(CoreDecompositionTest, SingletonAndEmpty) {
  EXPECT_TRUE(CoreDecomposition(LineGraph(0)).empty());
  const auto cores = CoreDecomposition(LineGraph(1));
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0], 0);
}

TEST(CoreDecompositionTest, CliqueWithTail) {
  // 4-clique {0,1,2,3} plus tail 3-4-5.
  std::vector<std::vector<int32_t>> rows = {
      {1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2, 4}, {3, 5}, {4}};
  const HomogeneousProjection g = FromRows(std::move(rows));
  const auto cores = CoreDecomposition(g);
  EXPECT_EQ(cores[0], 3);
  EXPECT_EQ(cores[1], 3);
  EXPECT_EQ(cores[2], 3);
  EXPECT_EQ(cores[3], 3);
  EXPECT_EQ(cores[4], 1);
  EXPECT_EQ(cores[5], 1);
}

TEST(CoreDecompositionTest, KCoreComponentRespectsK) {
  HomogeneousProjection g = Clique(4);
  const auto cores = CoreDecomposition(g);
  EXPECT_EQ(KCoreComponentOf(g, cores, 0, 3).size(), 4u);
  EXPECT_TRUE(KCoreComponentOf(g, cores, 0, 4).empty());
}

class KPCoreFigure2Test : public ::testing::Test {
 protected:
  KPCoreFigure2Test()
      : g_(Figure2Graph::Make()),
        pap_(*MetaPath::Parse(g_.ids.schema, "P-A-P")) {}

  Figure2Graph g_;
  MetaPath pap_;
};

TEST_F(KPCoreFigure2Test, StrictCoreMatchesExample4) {
  // Seed p3 (has 4 P-neighbors), k = 3: strict core = clique {p0..p3}.
  const KPCoreCommunity result = KPCoreSearch(g_.graph, pap_, g_.papers[3], 3);
  EXPECT_EQ(result.core, (std::vector<NodeId>{g_.papers[0], g_.papers[1],
                                              g_.papers[2], g_.papers[3]}));
  // Extension re-admits the bridge paper p4 (deg 2 < k).
  EXPECT_EQ(result.extension, (std::vector<NodeId>{g_.papers[4]}));
}

TEST_F(KPCoreFigure2Test, PrunedBridgeStopsExpansion) {
  // With pruning, the search from p3 must not expand past p4 into the
  // second clique: p5..p8 never get their neighbor lists materialized.
  const KPCoreCommunity result = KPCoreSearch(g_.graph, pap_, g_.papers[3], 3);
  EXPECT_LE(result.papers_expanded, 6u);  // p3, p0..p2, p4 (+slack)
  KPCoreSearchOptions no_prune;
  no_prune.enable_pruning = false;
  const KPCoreCommunity full =
      KPCoreSearch(g_.graph, pap_, g_.papers[3], 3, no_prune);
  EXPECT_GT(full.papers_expanded, result.papers_expanded);
  EXPECT_EQ(full.core, result.core);  // Theorem 1: same strict core.
}

TEST_F(KPCoreFigure2Test, NearNegativesComeFromDeleteQueue) {
  const KPCoreCommunity result = KPCoreSearch(g_.graph, pap_, g_.papers[3], 3);
  // p4 went through D but was re-admitted by the extension, so the near
  // negative pool must not contain it (nor any core/extension member).
  for (NodeId v : result.near_negatives) {
    EXPECT_FALSE(result.CoreContains(v));
    EXPECT_FALSE(std::binary_search(result.extension.begin(),
                                    result.extension.end(), v));
  }
}

TEST_F(KPCoreFigure2Test, SeedBelowKGivesEmptyCore) {
  // p4 has degree 2 < 3: strict core empty; extension = its P-neighbors.
  const KPCoreCommunity result = KPCoreSearch(g_.graph, pap_, g_.papers[4], 3);
  EXPECT_TRUE(result.core.empty());
  EXPECT_EQ(result.extension,
            (std::vector<NodeId>{g_.papers[3], g_.papers[5]}));
}

TEST_F(KPCoreFigure2Test, KZeroReturnsReachableComponent) {
  const KPCoreCommunity result = KPCoreSearch(g_.graph, pap_, g_.papers[0], 0);
  // All of p0..p8 are P-A-P-reachable from p0; p9 is isolated.
  EXPECT_EQ(result.core.size(), 9u);
  EXPECT_FALSE(result.CoreContains(g_.papers[9]));
}

TEST_F(KPCoreFigure2Test, CoreShrinksAsKGrows) {
  size_t previous = g_.papers.size() + 1;
  for (int32_t k = 0; k <= 5; ++k) {
    const KPCoreCommunity result =
        KPCoreSearch(g_.graph, pap_, g_.papers[0], k);
    EXPECT_LE(result.core.size(), previous);
    previous = result.core.size();
  }
}

TEST_F(KPCoreFigure2Test, CoreMembersSatisfyDegreeConstraint) {
  for (int32_t k = 1; k <= 4; ++k) {
    const KPCoreCommunity result =
        KPCoreSearch(g_.graph, pap_, g_.papers[0], k);
    PNeighborFinder finder(g_.graph, pap_);
    for (NodeId member : result.core) {
      // Degree within the core must be >= k.
      size_t in_core = 0;
      for (NodeId u : finder.Neighbors(member)) {
        in_core += result.CoreContains(u);
      }
      EXPECT_GE(in_core, static_cast<size_t>(k));
    }
  }
}

TEST_F(KPCoreFigure2Test, ExtensionCapRespected) {
  KPCoreSearchOptions options;
  options.max_extension = 0;
  const KPCoreCommunity result =
      KPCoreSearch(g_.graph, pap_, g_.papers[3], 3, options);
  EXPECT_TRUE(result.extension.empty());
  KPCoreSearchOptions no_ext;
  no_ext.enable_extension = false;
  EXPECT_TRUE(
      KPCoreSearch(g_.graph, pap_, g_.papers[3], 3, no_ext).extension.empty());
}

TEST_F(KPCoreFigure2Test, FastBCoreMatchesOnFigure2) {
  for (NodeId seed : g_.papers) {
    for (int32_t k = 0; k <= 4; ++k) {
      const KPCoreCommunity fast = FastBCoreSearch(g_.graph, pap_, seed, k);
      const KPCoreCommunity ours = KPCoreSearch(g_.graph, pap_, seed, k);
      EXPECT_EQ(fast.core, ours.core) << "seed " << seed << " k " << k;
    }
  }
}

TEST_F(KPCoreFigure2Test, MultiPathIntersectionIsSubset) {
  auto ptp = *MetaPath::Parse(g_.ids.schema, "P-T-P");
  const KPCoreCommunity a = KPCoreSearch(g_.graph, pap_, g_.papers[3], 3);
  const KPCoreCommunity t = KPCoreSearch(g_.graph, ptp, g_.papers[3], 3);
  const KPCoreCommunity both =
      MultiPathKPCoreSearch(g_.graph, {pap_, ptp}, g_.papers[3], 3);
  for (NodeId v : both.core) {
    EXPECT_TRUE(a.CoreContains(v));
    EXPECT_TRUE(t.CoreContains(v));
  }
  // Figure 2: topic t0 covers p0..p4 so the AT intersection at k=3 is the
  // co-author clique {p0..p3}.
  EXPECT_EQ(both.core, a.core);
}

// --- Theorem 1 property test over generated datasets: the strict cores of
// the naive decomposition, FastBCore, and Algorithm 1 coincide for every
// (seed, k, meta-path).
struct TheoremCase {
  const char* path;
  int32_t k;
};

class Theorem1Test : public ::testing::TestWithParam<TheoremCase> {
 protected:
  static const Dataset& dataset() {
    static const Dataset* d = new Dataset(GenerateDataset(TinyProfile()));
    return *d;
  }
};

TEST_P(Theorem1Test, AllThreeAlgorithmsAgree) {
  const Dataset& data = dataset();
  const TheoremCase param = GetParam();
  auto path = MetaPath::Parse(data.graph.schema(), param.path);
  ASSERT_TRUE(path.ok());
  const HomogeneousProjection projection =
      ProjectHomogeneous(data.graph, *path);
  // A deterministic spread of seeds.
  const auto& papers = data.Papers();
  for (size_t i = 0; i < papers.size(); i += 17) {
    const NodeId seed = papers[i];
    const KPCoreCommunity naive =
        NaiveKPCoreSearchOnProjection(data.graph, projection, seed, param.k);
    const KPCoreCommunity fast =
        FastBCoreSearch(data.graph, *path, seed, param.k);
    const KPCoreCommunity ours = KPCoreSearch(data.graph, *path, seed, param.k);
    EXPECT_EQ(naive.core, fast.core) << "seed " << seed;
    EXPECT_EQ(fast.core, ours.core) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SweepsPathsAndK, Theorem1Test,
    ::testing::Values(TheoremCase{"P-A-P", 2}, TheoremCase{"P-A-P", 3},
                      TheoremCase{"P-A-P", 4}, TheoremCase{"P-A-P", 6},
                      TheoremCase{"P-P", 1}, TheoremCase{"P-P", 2},
                      TheoremCase{"P-P", 3}, TheoremCase{"P-T-P", 4},
                      TheoremCase{"P-T-P", 8}),
    [](const ::testing::TestParamInfo<TheoremCase>& info) {
      std::string name = info.param.path;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_k" + std::to_string(info.param.k);
    });

// --- Backend equivalence: searches over a materialized CSR projection
// must be bit-identical to the finder-backed path — core, extension,
// near negatives, AND discovery order. Generate's determinism contract
// (DESIGN.md §10) rests on this; edges_scanned intentionally differs
// (hetero edges walked vs projection entries read).
class BackendEquivalenceTest : public ::testing::TestWithParam<TheoremCase> {
 protected:
  static const Dataset& dataset() {
    static const Dataset* d = new Dataset(GenerateDataset(TinyProfile()));
    return *d;
  }
};

TEST_P(BackendEquivalenceTest, ProjectionMatchesFinder) {
  const Dataset& data = dataset();
  const TheoremCase param = GetParam();
  auto path = MetaPath::Parse(data.graph.schema(), param.path);
  ASSERT_TRUE(path.ok());
  const HomogeneousProjection projection =
      ProjectHomogeneous(data.graph, *path);
  const auto& papers = data.Papers();
  for (size_t i = 0; i < papers.size(); i += 13) {
    const NodeId seed = papers[i];
    const KPCoreCommunity finder_fast =
        FastBCoreSearch(data.graph, *path, seed, param.k);
    const KPCoreCommunity proj_fast =
        FastBCoreSearch(data.graph, projection, seed, param.k);
    EXPECT_EQ(finder_fast.core, proj_fast.core) << "seed " << seed;
    EXPECT_EQ(finder_fast.near_negatives, proj_fast.near_negatives)
        << "seed " << seed;
    EXPECT_EQ(finder_fast.core_by_discovery, proj_fast.core_by_discovery)
        << "seed " << seed;
    EXPECT_EQ(finder_fast.papers_expanded, proj_fast.papers_expanded);

    const KPCoreCommunity finder_ours =
        KPCoreSearch(data.graph, *path, seed, param.k);
    const KPCoreCommunity proj_ours =
        KPCoreSearch(data.graph, projection, seed, param.k);
    EXPECT_EQ(finder_ours.core, proj_ours.core) << "seed " << seed;
    EXPECT_EQ(finder_ours.extension, proj_ours.extension) << "seed " << seed;
    EXPECT_EQ(finder_ours.near_negatives, proj_ours.near_negatives)
        << "seed " << seed;
    EXPECT_EQ(finder_ours.core_by_discovery, proj_ours.core_by_discovery)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SweepsPathsAndK, BackendEquivalenceTest,
    ::testing::Values(TheoremCase{"P-A-P", 2}, TheoremCase{"P-A-P", 4},
                      TheoremCase{"P-P", 2}, TheoremCase{"P-T-P", 4},
                      TheoremCase{"P-V-P", 3}),
    [](const ::testing::TestParamInfo<TheoremCase>& info) {
      std::string name = info.param.path;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_k" + std::to_string(info.param.k);
    });

TEST(BackendEquivalenceMultiPathTest, ProjectionOverloadMatchesFinder) {
  const Figure2Graph g = Figure2Graph::Make();
  auto pap = *MetaPath::Parse(g.ids.schema, "P-A-P");
  auto ptp = *MetaPath::Parse(g.ids.schema, "P-T-P");
  std::vector<HomogeneousProjection> projections;
  projections.push_back(ProjectHomogeneous(g.graph, pap));
  projections.push_back(ProjectHomogeneous(g.graph, ptp));
  for (NodeId seed : g.papers) {
    const KPCoreCommunity finder_backed =
        MultiPathKPCoreSearch(g.graph, {pap, ptp}, seed, 3);
    const KPCoreCommunity proj_backed =
        MultiPathKPCoreSearch(g.graph, projections, seed, 3);
    EXPECT_EQ(finder_backed.core, proj_backed.core) << "seed " << seed;
    EXPECT_EQ(finder_backed.extension, proj_backed.extension);
    EXPECT_EQ(finder_backed.near_negatives, proj_backed.near_negatives);
    EXPECT_EQ(finder_backed.core_by_discovery, proj_backed.core_by_discovery);
  }
}

TEST(KPCorePruningEfficiencyTest, PruningNeverExpandsMore) {
  const Dataset data = GenerateDataset(TinyProfile());
  auto path = MetaPath::Parse(data.graph.schema(), "P-A-P");
  ASSERT_TRUE(path.ok());
  KPCoreSearchOptions no_prune;
  no_prune.enable_pruning = false;
  const auto& papers = data.Papers();
  for (size_t i = 0; i < papers.size(); i += 29) {
    const KPCoreCommunity pruned = KPCoreSearch(data.graph, *path, papers[i], 4);
    const KPCoreCommunity full =
        KPCoreSearch(data.graph, *path, papers[i], 4, no_prune);
    EXPECT_LE(pruned.papers_expanded, full.papers_expanded);
    EXPECT_EQ(pruned.core, full.core);
  }
}

TEST(MultiPathTest, IntersectionWithSelfIsIdentity) {
  const Figure2Graph g = Figure2Graph::Make();
  auto pap = *MetaPath::Parse(g.ids.schema, "P-A-P");
  const KPCoreCommunity once = KPCoreSearch(g.graph, pap, g.papers[3], 3);
  const KPCoreCommunity twice =
      MultiPathKPCoreSearch(g.graph, {pap, pap}, g.papers[3], 3);
  EXPECT_EQ(once.core, twice.core);
  EXPECT_EQ(once.Members(), twice.Members());
}

TEST(MultiPathTest, CostCountersAccumulate) {
  const Figure2Graph g = Figure2Graph::Make();
  auto pap = *MetaPath::Parse(g.ids.schema, "P-A-P");
  auto ptp = *MetaPath::Parse(g.ids.schema, "P-T-P");
  const KPCoreCommunity a = KPCoreSearch(g.graph, pap, g.papers[3], 3);
  const KPCoreCommunity b = KPCoreSearch(g.graph, ptp, g.papers[3], 3);
  const KPCoreCommunity both =
      MultiPathKPCoreSearch(g.graph, {pap, ptp}, g.papers[3], 3);
  EXPECT_EQ(both.edges_scanned, a.edges_scanned + b.edges_scanned);
  EXPECT_EQ(both.papers_expanded, a.papers_expanded + b.papers_expanded);
}

TEST(CommunityTest, MembersMergesCoreAndExtension) {
  KPCoreCommunity c;
  c.core = {2, 5, 9};
  c.extension = {3, 7};
  EXPECT_EQ(c.Members(), (std::vector<NodeId>{2, 3, 5, 7, 9}));
  EXPECT_TRUE(c.CoreContains(5));
  EXPECT_FALSE(c.CoreContains(3));
}

}  // namespace
}  // namespace kpef

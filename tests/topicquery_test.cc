#include <cmath>

#include <gtest/gtest.h>

#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/queries.h"
#include "eval/evaluation.h"
#include "topicquery/language_model.h"

namespace kpef {
namespace {

class LanguageModelTest : public ::testing::Test {
 protected:
  LanguageModelTest()
      : dataset_(GenerateDataset(TinyProfile())),
        corpus_(BuildPaperCorpus(dataset_)),
        finder_(&dataset_, &corpus_) {}

  Dataset dataset_;
  Corpus corpus_;
  LanguageModelExpertFinder finder_;
};

TEST_F(LanguageModelTest, QueryLikelihoodPrefersMatchingDocument) {
  // A document's own text must be (at least weakly) more likely under its
  // own language model than under a random other document's.
  size_t better = 0;
  const size_t trials = 20;
  for (size_t doc = 0; doc < trials; ++doc) {
    const auto& query = corpus_.Document(doc);
    const double own = finder_.LogQueryLikelihood(query, doc);
    const double other =
        finder_.LogQueryLikelihood(query, (doc + 50) % corpus_.NumDocuments());
    better += own > other;
  }
  EXPECT_GT(better, trials * 8 / 10);
}

TEST_F(LanguageModelTest, LikelihoodIsFinite) {
  const auto query = corpus_.EncodeQuery("w1 w2 c3");
  for (size_t doc = 0; doc < 5; ++doc) {
    const double log_p = finder_.LogQueryLikelihood(query, doc);
    EXPECT_TRUE(std::isfinite(log_p));
    EXPECT_LT(log_p, 0.0);  // probabilities < 1
  }
}

TEST_F(LanguageModelTest, ReturnsRankedExperts) {
  const QuerySet queries = GenerateQueries(dataset_, 3, 77);
  const auto experts = finder_.FindExperts(queries.queries[0].text, 10);
  EXPECT_GT(experts.size(), 0u);
  EXPECT_LE(experts.size(), 10u);
  double prev = 1e300;
  for (const ExpertScore& e : experts) {
    EXPECT_EQ(dataset_.graph.TypeOf(e.author), dataset_.ids.author);
    EXPECT_LE(e.score, prev);
    prev = e.score;
  }
}

TEST_F(LanguageModelTest, EmptyQueryYieldsNothing) {
  EXPECT_TRUE(finder_.FindExperts("zzz unknown tokens", 5).empty());
  EXPECT_TRUE(finder_.FindExperts("", 5).empty());
}

TEST_F(LanguageModelTest, SelfQueryFindsOwnAuthors) {
  // Querying with a paper's text should surface that paper's authors.
  const QuerySet queries = GenerateQueries(dataset_, 5, 99);
  size_t hits = 0;
  for (const Query& q : queries.queries) {
    const auto experts = finder_.FindExperts(q.text, 20);
    const auto authors =
        dataset_.graph.Neighbors(q.query_paper, dataset_.ids.write);
    for (const ExpertScore& e : experts) {
      for (NodeId a : authors) hits += (e.author == a);
    }
  }
  EXPECT_GT(hits, 0u);
}

TEST_F(LanguageModelTest, BeatsJunkOnPlantedData) {
  const QuerySet queries = GenerateQueries(dataset_, 10, 13);
  const TfIdfModel tfidf(corpus_);
  const Evaluator evaluator(&dataset_, &queries, &corpus_, &tfidf);
  const EvaluationResult r = evaluator.Evaluate(finder_, 10);
  EXPECT_GT(r.p_at_5, 0.2);
  EXPECT_GT(r.map, 0.05);
}

TEST_F(LanguageModelTest, LambdaExtremesStillWork) {
  LanguageModelConfig config;
  config.lambda = 0.95;  // heavy smoothing
  LanguageModelExpertFinder smoothed(&dataset_, &corpus_, config);
  const QuerySet queries = GenerateQueries(dataset_, 2, 5);
  EXPECT_GT(smoothed.FindExperts(queries.queries[0].text, 5).size(), 0u);
}

}  // namespace
}  // namespace kpef

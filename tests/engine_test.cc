#include <filesystem>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/explain.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/queries.h"
#include "embed/model_io.h"
#include "eval/evaluation.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "text/tfidf.h"

namespace kpef {
namespace {

// One shared tiny pipeline for the whole binary (training is the slow
// part; individual tests probe different aspects of the built engine).
class EngineTest : public ::testing::Test {
 protected:
  struct Shared {
    Dataset dataset;
    Corpus corpus;
    TfIdfModel tfidf;
    Matrix tokens;
    QuerySet queries;
    EngineBuildReport report;
    std::unique_ptr<ExpertFindingEngine> engine;

    Shared()
        : dataset(GenerateDataset(TinyProfile())),
          corpus(BuildPaperCorpus(dataset)),
          tfidf(corpus),
          tokens([&] {
            PretrainConfig config;
            config.dim = 32;
            config.epochs = 6;
            return PretrainTokenEmbeddings(corpus, config).token_embeddings;
          }()),
          queries(GenerateQueries(dataset, 6, 23)) {
      auto built = ExpertFindingEngine::Build(&dataset, &corpus,
                                              SmallConfig(), &tokens, &report);
      if (!built.ok()) std::abort();
      engine = std::move(built).value();
    }

    static EngineConfig SmallConfig() {
      EngineConfig config;
      config.k = 3;
      config.seed_fraction = 0.2;
      config.encoder.dim = 32;
      config.trainer.epochs = 2;
      config.top_m = 60;
      config.pg_index.knn_k = 8;
      return config;
    }
  };

  static Shared& shared() {
    static Shared* s = new Shared();
    return *s;
  }
};

TEST_F(EngineTest, BuildReportPopulated) {
  const EngineBuildReport& r = shared().report;
  EXPECT_GT(r.sampling.triples.size(), 0u);
  EXPECT_GT(r.sampling.num_seeds, 0u);
  EXPECT_EQ(r.training.num_triples, r.sampling.triples.size());
  EXPECT_FALSE(r.training.epoch_loss.empty());
  EXPECT_GT(r.index.build_seconds, 0.0);
  EXPECT_GT(r.total_seconds, 0.0);
}

TEST_F(EngineTest, EmbeddingsCoverEveryPaper) {
  Shared& s = shared();
  EXPECT_EQ(s.engine->embeddings().rows(), s.dataset.Papers().size());
  EXPECT_EQ(s.engine->embeddings().cols(), 32u);
  EXPECT_NE(s.engine->index(), nullptr);
}

TEST_F(EngineTest, FindExpertsReturnsRankedAuthors) {
  Shared& s = shared();
  const auto experts = s.engine->FindExperts(s.queries.queries[0].text, 10);
  EXPECT_LE(experts.size(), 10u);
  EXPECT_GT(experts.size(), 0u);
  double prev = 1e30;
  std::set<NodeId> seen;
  for (const ExpertScore& e : experts) {
    EXPECT_EQ(s.dataset.graph.TypeOf(e.author), s.dataset.ids.author);
    EXPECT_TRUE(seen.insert(e.author).second);
    EXPECT_LE(e.score, prev);
    prev = e.score;
  }
}

// The batched path fans queries across a pool but must return exactly
// what the serial per-query path returns (same index walk, same ranking).
TEST_F(EngineTest, FindExpertsBatchMatchesSerial) {
  Shared& s = shared();
  std::vector<std::string> texts;
  for (const Query& q : s.queries.queries) texts.push_back(q.text);
  ThreadPool pool(4);
  std::vector<QueryStats> batch_stats;
  const auto batched = s.engine->FindExpertsBatch(texts, 8, &batch_stats,
                                                  &pool);
  ASSERT_EQ(batched.size(), texts.size());
  ASSERT_EQ(batch_stats.size(), texts.size());
  for (size_t q = 0; q < texts.size(); ++q) {
    QueryStats single_stats;
    const auto single =
        s.engine->FindExpertsWithStats(texts[q], 8, &single_stats);
    ASSERT_EQ(batched[q].size(), single.size()) << "query " << q;
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batched[q][i].author, single[i].author)
          << "query " << q << " rank " << i;
      EXPECT_DOUBLE_EQ(batched[q][i].score, single[i].score)
          << "query " << q << " rank " << i;
    }
    EXPECT_EQ(batch_stats[q].distance_computations,
              single_stats.distance_computations);
    EXPECT_EQ(batch_stats[q].ranking_entries_accessed,
              single_stats.ranking_entries_accessed);
    EXPECT_EQ(batch_stats[q].ta_early_terminated,
              single_stats.ta_early_terminated);
  }
}

TEST_F(EngineTest, FindExpertsBatchEmpty) {
  Shared& s = shared();
  std::vector<QueryStats> stats(2);
  EXPECT_TRUE(s.engine->FindExpertsBatch({}, 5, &stats).empty());
  EXPECT_TRUE(stats.empty());
}

// Regression for the smeared batch average: retrieval_ms must be this
// query's own wall-clock time (encode + search), not the batch phase
// time divided by the batch size, so it is comparable to ranking_ms.
TEST_F(EngineTest, FindExpertsBatchReportsPerQueryRetrievalTime) {
  Shared& s = shared();
  std::vector<std::string> texts;
  for (const Query& q : s.queries.queries) texts.push_back(q.text);
  ThreadPool pool(4);
  std::vector<QueryStats> stats;
  s.engine->FindExpertsBatch(texts, 8, &stats, &pool);
  ASSERT_EQ(stats.size(), texts.size());
  for (size_t q = 0; q < stats.size(); ++q) {
    EXPECT_GT(stats[q].retrieval_ms, 0.0) << "query " << q;
    EXPECT_FALSE(stats[q].deadline_exceeded) << "query " << q;
  }
}

TEST_F(EngineTest, ExpiredDeadlineReturnsFlaggedPartialBatch) {
  Shared& s = shared();
  std::vector<std::string> texts;
  for (const Query& q : s.queries.queries) texts.push_back(q.text);
  ThreadPool pool(4);
  BatchQueryOptions options;
  options.pool = &pool;
  CancelToken expired = CancelToken::Cancellable();
  expired.RequestCancel();
  options.cancel = expired;
  std::vector<QueryStats> stats;
  // Must return promptly with every query flagged, not wedge.
  const auto results = s.engine->FindExpertsBatch(texts, 8, options, &stats);
  ASSERT_EQ(results.size(), texts.size());
  ASSERT_EQ(stats.size(), texts.size());
  for (size_t q = 0; q < texts.size(); ++q) {
    EXPECT_TRUE(stats[q].deadline_exceeded) << "query " << q;
    EXPECT_TRUE(results[q].empty()) << "query " << q;
  }
}

TEST_F(EngineTest, TinyDeadlineFlagsOvertakenQueriesOnly) {
  Shared& s = shared();
  std::vector<std::string> texts;
  for (const Query& q : s.queries.queries) texts.push_back(q.text);
  ThreadPool pool(4);
  BatchQueryOptions options;
  options.pool = &pool;
  options.deadline_ms = 1e-6;  // fires before the first phase boundary
  std::vector<QueryStats> stats;
  const auto results = s.engine->FindExpertsBatch(texts, 8, options, &stats);
  ASSERT_EQ(results.size(), texts.size());
  // The contract: flagged queries are empty, unflagged queries carry the
  // same answer the serial path gives.
  for (size_t q = 0; q < texts.size(); ++q) {
    if (stats[q].deadline_exceeded) {
      EXPECT_TRUE(results[q].empty()) << "query " << q;
    } else {
      const auto serial = s.engine->FindExperts(texts[q], 8);
      ASSERT_EQ(results[q].size(), serial.size()) << "query " << q;
      for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(results[q][i].author, serial[i].author);
      }
    }
  }
}

// Per-slot deadlines (PR 8): an expired slot is skipped at every phase
// boundary and flagged, while its batchmates — including ones with no
// deadline at all — come back identical to the serial path.
TEST_F(EngineTest, PerSlotDeadlineSkipsOnlyTheExpiredQuery) {
  Shared& s = shared();
  std::vector<std::string> texts;
  for (const Query& q : s.queries.queries) texts.push_back(q.text);
  ASSERT_GE(texts.size(), 2u);
  ThreadPool pool(4);
  BatchQueryOptions options;
  options.pool = &pool;
  options.deadlines.assign(texts.size(),
                           CancelToken::Clock::time_point::max());
  options.deadlines[0] =
      CancelToken::Clock::now() - std::chrono::milliseconds(1);
  std::vector<QueryStats> stats;
  const auto results = s.engine->FindExpertsBatch(texts, 8, options, &stats);
  ASSERT_EQ(results.size(), texts.size());
  ASSERT_EQ(stats.size(), texts.size());
  EXPECT_TRUE(stats[0].deadline_exceeded);
  EXPECT_TRUE(results[0].empty());
  for (size_t q = 1; q < texts.size(); ++q) {
    EXPECT_FALSE(stats[q].deadline_exceeded) << "query " << q;
    const auto serial = s.engine->FindExperts(texts[q], 8);
    ASSERT_EQ(results[q].size(), serial.size()) << "query " << q;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(results[q][i].author, serial[i].author)
          << "query " << q << " rank " << i;
      EXPECT_EQ(results[q][i].score, serial[i].score)
          << "query " << q << " rank " << i;
    }
  }
}

#ifndef KPEF_METRICS_DISABLED
TEST_F(EngineTest, DeadlineExceededQueriesCounted) {
  Shared& s = shared();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t before =
      registry.GetCounter(obs::kEngineQueriesDeadlineExceeded).Value();
  std::vector<std::string> texts;
  for (const Query& q : s.queries.queries) texts.push_back(q.text);
  ThreadPool pool(2);
  BatchQueryOptions options;
  options.pool = &pool;
  CancelToken expired = CancelToken::Cancellable();
  expired.RequestCancel();
  options.cancel = expired;
  s.engine->FindExpertsBatch(texts, 8, options);
  const uint64_t after =
      registry.GetCounter(obs::kEngineQueriesDeadlineExceeded).Value();
  EXPECT_EQ(after - before, texts.size());
}
#endif  // KPEF_METRICS_DISABLED

TEST_F(EngineTest, RetrievePapersReturnsPapers) {
  Shared& s = shared();
  QueryStats stats;
  const auto papers =
      s.engine->RetrievePapers(s.queries.queries[1].text, 25, &stats);
  EXPECT_EQ(papers.size(), 25u);
  for (NodeId p : papers) {
    EXPECT_EQ(s.dataset.graph.TypeOf(p), s.dataset.ids.paper);
  }
  EXPECT_GT(stats.distance_computations, 0u);
  // The PG-Index should touch far fewer points than the corpus size.
  EXPECT_LT(stats.distance_computations, s.dataset.Papers().size());
}

TEST_F(EngineTest, SelfQueryRetrievesOwnPaper) {
  Shared& s = shared();
  const Query& q = s.queries.queries[2];
  const auto papers = s.engine->RetrievePapers(q.text, 20);
  EXPECT_NE(std::find(papers.begin(), papers.end(), q.query_paper),
            papers.end());
}

TEST_F(EngineTest, TaAndFullScanAgree) {
  Shared& s = shared();
  EngineConfig config = Shared::SmallConfig();
  config.use_ta = false;
  EngineBuildReport report;
  auto no_ta = ExpertFindingEngine::Build(&s.dataset, &s.corpus, config,
                                          &s.tokens, &report);
  ASSERT_TRUE(no_ta.ok());
  for (const Query& q : s.queries.queries) {
    const auto a = s.engine->FindExperts(q.text, 8);
    const auto b = (*no_ta)->FindExperts(q.text, 8);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].score, b[i].score, 1e-9);
    }
  }
}

TEST_F(EngineTest, BruteForceVariantFindsSimilarExperts) {
  Shared& s = shared();
  EngineConfig config = Shared::SmallConfig();
  config.use_pg_index = false;
  auto brute = ExpertFindingEngine::Build(&s.dataset, &s.corpus, config,
                                          &s.tokens, nullptr);
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ((*brute)->index(), nullptr);
  // Approximate retrieval should still share most experts with exact.
  size_t overlap = 0, total = 0;
  for (const Query& q : s.queries.queries) {
    const auto approx = s.engine->FindExperts(q.text, 10);
    const auto exact = (*brute)->FindExperts(q.text, 10);
    std::set<NodeId> exact_set;
    for (const auto& e : exact) exact_set.insert(e.author);
    for (const auto& e : approx) overlap += exact_set.count(e.author);
    total += exact.size();
  }
  EXPECT_GT(static_cast<double>(overlap) / total, 0.6);
}

TEST_F(EngineTest, DeterministicRebuild) {
  Shared& s = shared();
  auto again = ExpertFindingEngine::Build(&s.dataset, &s.corpus,
                                          Shared::SmallConfig(), &s.tokens);
  ASSERT_TRUE(again.ok());
  const auto a = s.engine->FindExperts(s.queries.queries[0].text, 5);
  const auto b = (*again)->FindExperts(s.queries.queries[0].text, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].author, b[i].author);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST_F(EngineTest, RejectsBadMetaPath) {
  Shared& s = shared();
  EngineConfig config = Shared::SmallConfig();
  config.meta_paths = {"P-X-P"};
  auto result =
      ExpertFindingEngine::Build(&s.dataset, &s.corpus, config, &s.tokens);
  EXPECT_FALSE(result.ok());
  config.meta_paths = {"A-P-A"};  // wrong endpoints
  EXPECT_FALSE(
      ExpertFindingEngine::Build(&s.dataset, &s.corpus, config, &s.tokens)
          .ok());
  config.meta_paths = {};
  EXPECT_FALSE(
      ExpertFindingEngine::Build(&s.dataset, &s.corpus, config, &s.tokens)
          .ok());
}

TEST_F(EngineTest, QueryStatsReported) {
  Shared& s = shared();
  QueryStats stats;
  const auto experts = s.engine->FindExpertsWithStats(
      s.queries.queries[3].text, 10, &stats);
  EXPECT_GT(experts.size(), 0u);
  EXPECT_GT(stats.retrieval_ms, 0.0);
  EXPECT_GT(stats.ranking_ms, 0.0);
  EXPECT_GT(stats.ranking_entries_accessed, 0u);
}

#ifndef KPEF_METRICS_DISABLED
TEST_F(EngineTest, PipelineMetricsPopulatedAfterBuildAndQuery) {
  Shared& s = shared();  // Build ran in the fixture.
  s.engine->FindExperts(s.queries.queries[0].text, 5);
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GT(snapshot.counters.at(obs::kKpcoreSearchesTotal), 0u);
  EXPECT_GT(snapshot.counters.at(obs::kKpcoreNodesVisited), 0u);
  EXPECT_GT(snapshot.counters.at(obs::kSamplingTriplesTotal), 0u);
  EXPECT_GT(snapshot.counters.at(obs::kTrainerEpochsTotal), 0u);
  EXPECT_GT(snapshot.counters.at(obs::kPgindexBuildsTotal), 0u);
  EXPECT_GT(snapshot.counters.at(obs::kPgindexSearchesTotal), 0u);
  EXPECT_GT(snapshot.counters.at(obs::kPgindexDistanceComputations), 0u);
  EXPECT_GT(snapshot.counters.at(obs::kTaQueriesTotal), 0u);
  EXPECT_GT(snapshot.counters.at(obs::kTaEntriesAccessed), 0u);
  EXPECT_GT(snapshot.counters.at(obs::kEngineBuildsTotal), 0u);
  EXPECT_GT(snapshot.counters.at(obs::kEngineQueriesTotal), 0u);
  EXPECT_GT(snapshot.histograms.at(obs::kPgindexSearchHops).total_count, 0u);
  EXPECT_GT(snapshot.histograms.at(obs::kEngineQueryLatencyMs).total_count,
            0u);
}

TEST_F(EngineTest, RegistryDeltasMatchQueryStats) {
  Shared& s = shared();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  // Pre-register the schema: the query-stage counters may not exist yet
  // when this test runs before any query.
  obs::WarmPipelineMetrics();
  auto counters = [&registry] {
    return registry.Snapshot().counters;
  };
  const auto before = counters();
  QueryStats stats;
  s.engine->FindExpertsWithStats(s.queries.queries[4].text, 10, &stats);
  const auto after = counters();
  auto delta = [&](const char* name) {
    return after.at(name) - before.at(name);
  };
  // The registry is fed from the same per-query locals as QueryStats, so
  // for a single serial query the deltas must agree exactly. QueryStats
  // sums the SQ8 traversal and the fp32 rerank; the registry splits them
  // across two counters.
  EXPECT_EQ(delta(obs::kPgindexDistanceComputations) +
                delta(obs::kPgindexSq8DistanceComputations),
            stats.distance_computations);
  EXPECT_EQ(delta(obs::kTaEntriesAccessed), stats.ranking_entries_accessed);
  EXPECT_EQ(delta(obs::kTaQueriesTotal), 1u);
  EXPECT_EQ(delta(obs::kEngineQueriesTotal), 1u);
  EXPECT_EQ(delta(obs::kTaEarlyTerminationTotal),
            stats.ta_early_terminated ? 1u : 0u);
}

TEST_F(EngineTest, ConcurrentQueriesMergeStatsExactly) {
  Shared& s = shared();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t dist_before =
      registry.GetCounter(obs::kPgindexDistanceComputations).Value() +
      registry.GetCounter(obs::kPgindexSq8DistanceComputations).Value();
  const uint64_t entries_before =
      registry.GetCounter(obs::kTaEntriesAccessed).Value();
  constexpr size_t kRounds = 4;
  const size_t num_queries = s.queries.queries.size() * kRounds;
  std::vector<QueryStats> stats(num_queries);
  ThreadPool pool(4);
  for (size_t i = 0; i < num_queries; ++i) {
    pool.Submit([&s, &stats, i] {
      const Query& q = s.queries.queries[i % s.queries.queries.size()];
      s.engine->FindExpertsWithStats(q.text, 10, &stats[i]);
    });
  }
  pool.Wait();
  // Per-query tallies are accumulated in locals and merged once at the
  // end, so concurrent queries must neither lose nor double-count: the
  // registry delta equals the sum over all per-query stats.
  uint64_t dist_sum = 0, entries_sum = 0;
  for (const QueryStats& st : stats) {
    EXPECT_GT(st.ranking_entries_accessed, 0u);
    dist_sum += st.distance_computations;
    entries_sum += st.ranking_entries_accessed;
  }
  EXPECT_EQ(
      registry.GetCounter(obs::kPgindexDistanceComputations).Value() +
          registry.GetCounter(obs::kPgindexSq8DistanceComputations).Value() -
          dist_before,
      dist_sum);
  EXPECT_EQ(
      registry.GetCounter(obs::kTaEntriesAccessed).Value() - entries_before,
      entries_sum);
}
#endif  // KPEF_METRICS_DISABLED

TEST_F(EngineTest, EngineBeatsTextOnlyBaselineOnPlantedData) {
  // The central claim at miniature scale: core-based fine-tuning should
  // beat the raw pre-trained text embedding on topic-expert retrieval.
  Shared& s = shared();
  const Evaluator evaluator(&s.dataset, &s.queries, &s.corpus, &s.tfidf);
  const EvaluationResult ours = evaluator.Evaluate(*s.engine, 10);
  EXPECT_GT(ours.p_at_5, 0.2);
  EXPECT_GT(ours.map, 0.05);
}

TEST_F(EngineTest, ArtifactRoundTripServesIdenticalResults) {
  Shared& s = shared();
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(s.engine->SaveArtifacts(dir).ok());
  auto loaded = ExpertFindingEngine::LoadFromArtifacts(
      &s.dataset, &s.corpus, Shared::SmallConfig(), dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const Query& q : s.queries.queries) {
    const auto a = s.engine->FindExperts(q.text, 8);
    const auto b = (*loaded)->FindExperts(q.text, 8);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].author, b[i].author);
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
}

TEST_F(EngineTest, LoadFromArtifactsRejectsMissingFiles) {
  Shared& s = shared();
  auto loaded = ExpertFindingEngine::LoadFromArtifacts(
      &s.dataset, &s.corpus, Shared::SmallConfig(), "/nonexistent/dir");
  EXPECT_FALSE(loaded.ok());
}

// A mismatched artifact set (e.g. an encoder from a different build next
// to stale embeddings) must be rejected at load time, not discovered as
// garbage distances at query time.
TEST_F(EngineTest, LoadFromArtifactsRejectsDimensionMismatch) {
  Shared& s = shared();
  const std::string dir =
      ::testing::TempDir() + "kpef_dim_mismatch_artifacts";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(s.engine->SaveArtifacts(dir).ok());

  // Encoder whose output dimension disagrees with the embeddings.
  EncoderConfig narrow;
  narrow.dim = 16;
  DocumentEncoder wrong_encoder(s.corpus.vocabulary().size(), narrow);
  ASSERT_TRUE(SaveEncoder(wrong_encoder, dir + "/encoder.bin").ok());
  auto encoder_mismatch = ExpertFindingEngine::LoadFromArtifacts(
      &s.dataset, &s.corpus, Shared::SmallConfig(), dir);
  ASSERT_FALSE(encoder_mismatch.ok());
  EXPECT_EQ(encoder_mismatch.status().code(),
            StatusCode::kFailedPrecondition);

  // Encoder and embeddings agree with each other (16-d) but not with
  // the PG-Index still on disk (32-d): the index cross-check must trip.
  ASSERT_TRUE(SaveMatrix(Matrix(s.corpus.NumDocuments(), 16),
                         dir + "/embeddings.bin")
                  .ok());
  auto index_mismatch = ExpertFindingEngine::LoadFromArtifacts(
      &s.dataset, &s.corpus, Shared::SmallConfig(), dir);
  ASSERT_FALSE(index_mismatch.ok());
  EXPECT_EQ(index_mismatch.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineTest, UniformWeightingChangesScoresNotValidity) {
  Shared& s = shared();
  EngineConfig config = Shared::SmallConfig();
  config.contribution_weighting = ContributionWeighting::kUniform;
  auto uniform = ExpertFindingEngine::Build(&s.dataset, &s.corpus, config,
                                            &s.tokens);
  ASSERT_TRUE(uniform.ok());
  const auto experts = (*uniform)->FindExperts(s.queries.queries[0].text, 8);
  EXPECT_GT(experts.size(), 0u);
}

TEST_F(EngineTest, ExplanationDecomposesScoreExactly) {
  Shared& s = shared();
  const Query& q = s.queries.queries[0];
  const auto experts = s.engine->FindExperts(q.text, 5);
  ASSERT_FALSE(experts.empty());
  for (const ExpertScore& expert : experts) {
    const ExpertExplanation explanation =
        ExplainExpert(*s.engine, q.text, expert.author);
    EXPECT_NEAR(explanation.total_score, expert.score, 1e-9);
    ASSERT_FALSE(explanation.evidence.empty());
    double sum = 0.0;
    for (const ExpertEvidence& e : explanation.evidence) {
      EXPECT_GE(e.paper_rank, 1u);
      EXPECT_GE(e.author_rank, 1u);
      EXPECT_LE(e.author_rank, e.num_authors);
      EXPECT_GT(e.score_share, 0.0);
      // The evidence paper really lists this author at that rank.
      const auto authors =
          s.dataset.graph.Neighbors(e.paper, s.dataset.ids.write);
      ASSERT_LE(e.author_rank, authors.size());
      EXPECT_EQ(authors[e.author_rank - 1], expert.author);
      sum += e.score_share;
    }
    EXPECT_NEAR(sum, explanation.total_score, 1e-12);
  }
}

TEST_F(EngineTest, ExplanationForUnrelatedAuthorIsEmpty) {
  Shared& s = shared();
  // An author with no retrieved papers gets zero evidence.
  const Query& q = s.queries.queries[1];
  const auto papers = s.engine->RetrievePapers(q.text, 60);
  std::set<NodeId> retrieved_authors;
  for (NodeId p : papers) {
    for (NodeId a : s.dataset.graph.Neighbors(p, s.dataset.ids.write)) {
      retrieved_authors.insert(a);
    }
  }
  NodeId outsider = kInvalidNode;
  for (NodeId a : s.dataset.Authors()) {
    if (!retrieved_authors.count(a)) {
      outsider = a;
      break;
    }
  }
  ASSERT_NE(outsider, kInvalidNode);
  const ExpertExplanation explanation =
      ExplainExpert(*s.engine, q.text, outsider);
  EXPECT_TRUE(explanation.evidence.empty());
  EXPECT_DOUBLE_EQ(explanation.total_score, 0.0);
}

TEST_F(EngineTest, ExpertProfileCountsMatchGraph) {
  Shared& s = shared();
  const NodeId author = s.dataset.Authors()[3];
  const ExpertProfile profile = BuildExpertProfile(s.dataset, author);
  EXPECT_EQ(profile.num_papers,
            s.dataset.graph.Degree(author, s.dataset.ids.write));
  size_t topic_total = 0;
  for (const auto& [topic, count] : profile.topics) {
    EXPECT_EQ(s.dataset.graph.TypeOf(topic), s.dataset.ids.topic);
    topic_total += count;
  }
  // One mention per paper in the synthetic data.
  EXPECT_EQ(topic_total, profile.num_papers);
  EXPECT_LE(profile.num_venues, profile.num_papers);
}

TEST_F(EngineTest, WithoutCoreStillBuilds) {
  Shared& s = shared();
  EngineConfig config = Shared::SmallConfig();
  config.use_kpcore = false;
  config.seed_fraction = 0.1;
  EngineBuildReport report;
  auto engine = ExpertFindingEngine::Build(&s.dataset, &s.corpus, config,
                                           &s.tokens, &report);
  ASSERT_TRUE(engine.ok());
  EXPECT_GT(report.sampling.triples.size(), 0u);
  EXPECT_GT((*engine)->FindExperts(s.queries.queries[0].text, 5).size(), 0u);
}

}  // namespace
}  // namespace kpef

// Tests for the observability subsystem: instrument correctness under
// concurrency, span nesting, and exporter round-trips.
//
// Value assertions are skipped under KPEF_METRICS_DISABLED (instruments
// compile to no-ops there); the construction/export paths still run so
// the disabled build keeps link- and crash-coverage.

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

namespace kpef {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;

#ifdef KPEF_METRICS_DISABLED
#define KPEF_SKIP_IF_METRICS_DISABLED() \
  GTEST_SKIP() << "metrics compiled out (KPEF_METRICS_DISABLED)"
#else
#define KPEF_SKIP_IF_METRICS_DISABLED() \
  do {                                  \
  } while (0)
#endif

// --- Minimal JSON reader for exporter round-trip checks. Supports the
// subset the exporters emit: objects, arrays, strings, numbers.
class JsonValue {
 public:
  enum class Kind { kNull, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string str;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  const JsonValue& operator[](const std::string& key) const {
    static const JsonValue kNullValue;
    auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
  bool Has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    pos_ = 0;
    return ParseValue(out) && (SkipSpace(), pos_ == text_.size());
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out->push_back(text_[pos_++]);
    }
    return Consume('"');
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    // Literals: booleans read back as 1/0 numbers, null as kNull.
    for (const auto& [literal, kind, number] :
         {std::tuple<const char*, JsonValue::Kind, double>{
              "true", JsonValue::Kind::kNumber, 1.0},
          {"false", JsonValue::Kind::kNumber, 0.0},
          {"null", JsonValue::Kind::kNull, 0.0}}) {
      const size_t len = std::char_traits<char>::length(literal);
      if (text_.compare(pos_, len, literal) == 0) {
        out->kind = kind;
        out->number = number;
        pos_ += len;
        return true;
      }
    }
    // Number.
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue ParseJsonOrDie(const std::string& text) {
  JsonValue value;
  JsonParser parser(text);
  EXPECT_TRUE(parser.Parse(&value)) << "unparseable JSON: " << text;
  return value;
}

TEST(CounterTest, AddAndReset) {
  obs::Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
#ifndef KPEF_METRICS_DISABLED
  EXPECT_EQ(counter.Value(), 42u);
#endif
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  obs::Gauge gauge;
  gauge.Set(1.5);
  gauge.Set(-3.25);
#ifndef KPEF_METRICS_DISABLED
  EXPECT_DOUBLE_EQ(gauge.Value(), -3.25);
#endif
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, BucketsCountAndSum) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Histogram hist({1.0, 10.0, 100.0});
  ASSERT_EQ(hist.NumBuckets(), 4u);
  hist.Observe(0.5);    // bucket 0 (<= 1)
  hist.Observe(1.0);    // bucket 0 (boundary is inclusive)
  hist.Observe(5.0);    // bucket 1
  hist.Observe(100.0);  // bucket 2
  hist.Observe(1e6);    // overflow bucket
  EXPECT_EQ(hist.BucketCount(0), 2u);
  EXPECT_EQ(hist.BucketCount(1), 1u);
  EXPECT_EQ(hist.BucketCount(2), 1u);
  EXPECT_EQ(hist.BucketCount(3), 1u);
  EXPECT_EQ(hist.TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  hist.Reset();
  EXPECT_EQ(hist.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 0.0);
}

TEST(MetricsRegistryTest, SameNameSameInstrument) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Counter& a = registry.GetCounter("obs_test.same_name");
  obs::Counter& b = registry.GetCounter("obs_test.same_name");
  EXPECT_EQ(&a, &b);
  // Histogram bounds are honoured only at creation.
  obs::Histogram& h1 = registry.GetHistogram("obs_test.hist", {1.0, 2.0});
  obs::Histogram& h2 = registry.GetHistogram("obs_test.hist", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds().size(), 2u);
}

TEST(MetricsRegistryTest, MacrosFeedGlobalRegistry) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test.macro_counter").Reset();
  registry.GetGauge("obs_test.macro_gauge").Reset();
  registry.GetHistogram("obs_test.macro_hist").Reset();
  for (int i = 0; i < 3; ++i) KPEF_COUNTER_ADD("obs_test.macro_counter", 2);
  KPEF_GAUGE_SET("obs_test.macro_gauge", 2.5);
  KPEF_HISTOGRAM_OBSERVE("obs_test.macro_hist", 7);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("obs_test.macro_counter"), 6u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("obs_test.macro_gauge"), 2.5);
  EXPECT_EQ(snapshot.histograms.at("obs_test.macro_hist").total_count, 1u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Counter& counter = registry.GetCounter("obs_test.concurrent");
  obs::Histogram& hist = registry.GetHistogram("obs_test.concurrent_hist");
  counter.Reset();
  hist.Reset();
  constexpr size_t kTasks = 64;
  constexpr size_t kIncrementsPerTask = 1000;
  ThreadPool pool(8);
  for (size_t t = 0; t < kTasks; ++t) {
    pool.Submit([&counter, &hist] {
      for (size_t i = 0; i < kIncrementsPerTask; ++i) {
        counter.Add(1);
        hist.Observe(3.0);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.Value(), kTasks * kIncrementsPerTask);
  EXPECT_EQ(hist.TotalCount(), kTasks * kIncrementsPerTask);
  EXPECT_DOUBLE_EQ(hist.Sum(), 3.0 * kTasks * kIncrementsPerTask);
}

TEST(MetricsRegistryTest, ResetValuesKeepsRegistrations) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Counter& counter = registry.GetCounter("obs_test.reset_me");
  counter.Add(5);
  registry.ResetValues();
  EXPECT_EQ(counter.Value(), 0u);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.counters.count("obs_test.reset_me"));
}

TEST(PipelineMetricsTest, WarmRegistersCanonicalSchema) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::WarmPipelineMetrics();
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_TRUE(snapshot.counters.count(obs::kKpcoreNodesPruned));
  EXPECT_TRUE(snapshot.counters.count(obs::kPgindexDistanceComputations));
  EXPECT_TRUE(snapshot.counters.count(obs::kTaEntriesAccessed));
  EXPECT_TRUE(snapshot.counters.count(obs::kTaEarlyTerminationTotal));
  EXPECT_TRUE(snapshot.histograms.count(obs::kPgindexSearchHops));
  EXPECT_TRUE(snapshot.gauges.count(obs::kTrainerEpochLoss));
}

TEST(TracerTest, SpansNestPerThread) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  {
    KPEF_TRACE_SPAN("obs_test.outer");
    {
      KPEF_TRACE_SPAN("obs_test.inner");
    }
  }
  tracer.SetEnabled(false);
#ifndef KPEF_METRICS_DISABLED
  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first.
  EXPECT_STREQ(spans[0].name, "obs_test.inner");
  EXPECT_STREQ(spans[1].name, "obs_test.outer");
  EXPECT_EQ(spans[0].depth, spans[1].depth + 1);
  EXPECT_EQ(spans[0].thread_id, spans[1].thread_id);
  // The inner span is contained in the outer's window.
  EXPECT_GE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[0].start_ns + spans[0].duration_ns,
            spans[1].start_ns + spans[1].duration_ns);
#else
  EXPECT_EQ(tracer.NumSpans(), 0u);
#endif
  tracer.Clear();
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(false);
  {
    KPEF_TRACE_SPAN("obs_test.should_not_appear");
  }
  EXPECT_EQ(tracer.NumSpans(), 0u);
}

TEST(TracerTest, DumpJsonParses) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  {
    KPEF_TRACE_SPAN("obs_test.dump");
  }
  tracer.SetEnabled(false);
  const JsonValue doc = ParseJsonOrDie(tracer.DumpJson());
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(doc.Has("spans"));
  EXPECT_EQ(doc["dropped"].number, 0.0);
#ifndef KPEF_METRICS_DISABLED
  ASSERT_EQ(doc["spans"].array.size(), 1u);
  const JsonValue& span = doc["spans"].array[0];
  EXPECT_EQ(span["name"].str, "obs_test.dump");
  EXPECT_GE(span["dur_us"].number, 0.0);
#endif
  tracer.Clear();
}

TEST(ExportTest, JsonRoundTrip) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test.export_counter").Reset();
  registry.GetCounter("obs_test.export_counter").Add(12);
  registry.GetGauge("obs_test.export_gauge").Set(0.75);
  obs::Histogram& hist =
      registry.GetHistogram("obs_test.export_hist", {2.0, 8.0});
  hist.Reset();
  hist.Observe(1.0);
  hist.Observe(4.0);
  hist.Observe(100.0);

  const JsonValue doc = ParseJsonOrDie(obs::ExportMetricsJson());
  EXPECT_EQ(doc["counters"]["obs_test.export_counter"].number, 12.0);
  EXPECT_DOUBLE_EQ(doc["gauges"]["obs_test.export_gauge"].number, 0.75);
  const JsonValue& h = doc["histograms"]["obs_test.export_hist"];
  EXPECT_EQ(h["count"].number, 3.0);
  EXPECT_DOUBLE_EQ(h["sum"].number, 105.0);
  // Buckets are cumulative; the last ("+Inf") equals the total count.
  ASSERT_EQ(h["buckets"].array.size(), 3u);
  EXPECT_EQ(h["buckets"].array[0]["count"].number, 1.0);
  EXPECT_EQ(h["buckets"].array[1]["count"].number, 2.0);
  EXPECT_EQ(h["buckets"].array[2]["le"].str, "+Inf");
  EXPECT_EQ(h["buckets"].array[2]["count"].number, 3.0);
}

TEST(ExportTest, PrometheusTextShape) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test.prom_counter").Reset();
  registry.GetCounter("obs_test.prom_counter").Add(7);
  obs::Histogram& hist = registry.GetHistogram("obs_test.prom_hist", {5.0});
  hist.Reset();
  hist.Observe(3.0);
  const std::string text = obs::ExportPrometheusText();
  // '.' is sanitized to '_'.
  EXPECT_NE(text.find("obs_test_prom_counter 7"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"5\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_count 1"), std::string::npos);
}

// --- Request-scoped tracing (PR 6) ------------------------------------

/// Restores tracer state so request-trace tests do not leak into each
/// other (the tracer is a process-global singleton).
class RequestTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Clear();
    tracer.ClearRequestTraces();
    tracer.SetEnabled(false);
    tracer.SetMode(obs::TraceMode::kSampled);
  }
  void TearDown() override {
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.SetMode(obs::TraceMode::kOff);
    tracer.ClearRequestTraces();
    tracer.Clear();
  }
};

TEST_F(RequestTraceTest, OffModeReturnsZeroKey) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.SetMode(obs::TraceMode::kOff);
  EXPECT_EQ(tracer.BeginTrace("req-off", true), 0u);
  // Downstream calls on key 0 are safe no-ops.
  tracer.AppendToTrace(0, obs::SpanRecord{});
  tracer.EndTrace(0, true);
  obs::TraceSnapshot snapshot;
  EXPECT_FALSE(tracer.FindRetained("req-off", &snapshot));
}

TEST_F(RequestTraceTest, HeadSampledTraceIsRetained) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer& tracer = obs::Tracer::Global();
  const uint64_t key = tracer.BeginTrace("req-head", /*head_sampled=*/true);
  ASSERT_NE(key, 0u);
  EXPECT_EQ(tracer.ActiveTraceCount(), 1u);
  {
    obs::ScopedTraceContext scope(key);
    KPEF_TRACE_SPAN("obs_test.request_work");
  }
  tracer.EndTrace(key, /*keep_tail=*/false);
  EXPECT_EQ(tracer.ActiveTraceCount(), 0u);
  obs::TraceSnapshot snapshot;
  ASSERT_TRUE(tracer.FindRetained("req-head", &snapshot));
  EXPECT_TRUE(snapshot.head_sampled);
  EXPECT_FALSE(snapshot.kept_tail);
  ASSERT_EQ(snapshot.spans.size(), 1u);
  EXPECT_STREQ(snapshot.spans[0].name, "obs_test.request_work");
  EXPECT_EQ(snapshot.spans[0].trace_key, key);
  // Request-scoped spans never touch the global buffer.
  EXPECT_EQ(tracer.NumSpans(), 0u);
}

TEST_F(RequestTraceTest, UnsampledFastTraceIsDropped) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer& tracer = obs::Tracer::Global();
  const uint64_t key = tracer.BeginTrace("req-fast", /*head_sampled=*/false);
  ASSERT_NE(key, 0u);
  {
    obs::ScopedTraceContext scope(key);
    KPEF_TRACE_SPAN("obs_test.fast");
  }
  tracer.EndTrace(key, /*keep_tail=*/false);
  obs::TraceSnapshot snapshot;
  EXPECT_FALSE(tracer.FindRetained("req-fast", &snapshot));
}

TEST_F(RequestTraceTest, TailKeepRetainsUnsampledTrace) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer& tracer = obs::Tracer::Global();
  const uint64_t key = tracer.BeginTrace("req-slow", /*head_sampled=*/false);
  ASSERT_NE(key, 0u);
  obs::RecordSpan(key, "obs_test.slow_phase", 100, 50);
  tracer.EndTrace(key, /*keep_tail=*/true);
  obs::TraceSnapshot snapshot;
  ASSERT_TRUE(tracer.FindRetained("req-slow", &snapshot));
  EXPECT_FALSE(snapshot.head_sampled);
  EXPECT_TRUE(snapshot.kept_tail);
  ASSERT_EQ(snapshot.spans.size(), 1u);
  EXPECT_EQ(snapshot.spans[0].start_ns, 100u);
  EXPECT_EQ(snapshot.spans[0].duration_ns, 50u);
}

TEST_F(RequestTraceTest, AlwaysOnRetainsEverything) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.SetMode(obs::TraceMode::kAlwaysOn);
  const uint64_t key = tracer.BeginTrace("req-always", /*head_sampled=*/false);
  ASSERT_NE(key, 0u);
  tracer.EndTrace(key, /*keep_tail=*/false);
  obs::TraceSnapshot snapshot;
  EXPECT_TRUE(tracer.FindRetained("req-always", &snapshot));
}

TEST_F(RequestTraceTest, FindRetainedReturnsNewestForDuplicateIds) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer& tracer = obs::Tracer::Global();
  const uint64_t first = tracer.BeginTrace("req-dup", true);
  obs::RecordSpan(first, "obs_test.first", 1, 1);
  tracer.EndTrace(first, false);
  const uint64_t second = tracer.BeginTrace("req-dup", true);
  obs::RecordSpan(second, "obs_test.second", 2, 2);
  tracer.EndTrace(second, false);
  obs::TraceSnapshot snapshot;
  ASSERT_TRUE(tracer.FindRetained("req-dup", &snapshot));
  ASSERT_EQ(snapshot.spans.size(), 1u);
  EXPECT_STREQ(snapshot.spans[0].name, "obs_test.second");
}

TEST_F(RequestTraceTest, RetainedRingIsBounded) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer& tracer = obs::Tracer::Global();
  for (size_t i = 0; i < obs::Tracer::kMaxRetainedTraces + 8; ++i) {
    const uint64_t key =
        tracer.BeginTrace("req-ring-" + std::to_string(i), true);
    tracer.EndTrace(key, false);
  }
  EXPECT_EQ(tracer.RetainedSnapshots().size(),
            obs::Tracer::kMaxRetainedTraces);
  obs::TraceSnapshot snapshot;
  // The oldest 8 were evicted; the newest survive.
  EXPECT_FALSE(tracer.FindRetained("req-ring-0", &snapshot));
  EXPECT_TRUE(tracer.FindRetained(
      "req-ring-" + std::to_string(obs::Tracer::kMaxRetainedTraces + 7),
      &snapshot));
}

TEST_F(RequestTraceTest, PerTraceSpanCapCountsDrops) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer& tracer = obs::Tracer::Global();
  const uint64_t key = tracer.BeginTrace("req-cap", true);
  for (size_t i = 0; i < obs::Tracer::kMaxSpansPerTrace + 10; ++i) {
    obs::RecordSpan(key, "obs_test.flood", i, 1);
  }
  tracer.EndTrace(key, false);
  obs::TraceSnapshot snapshot;
  ASSERT_TRUE(tracer.FindRetained("req-cap", &snapshot));
  EXPECT_EQ(snapshot.spans.size(), obs::Tracer::kMaxSpansPerTrace);
  EXPECT_EQ(snapshot.dropped_spans, 10u);
}

TEST_F(RequestTraceTest, ScopedContextRestoresPreviousKey) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  EXPECT_EQ(obs::CurrentTraceKey(), 0u);
  {
    obs::ScopedTraceContext outer(7);
    EXPECT_EQ(obs::CurrentTraceKey(), 7u);
    {
      obs::ScopedTraceContext inner(9);
      EXPECT_EQ(obs::CurrentTraceKey(), 9u);
    }
    EXPECT_EQ(obs::CurrentTraceKey(), 7u);
  }
  EXPECT_EQ(obs::CurrentTraceKey(), 0u);
}

TEST_F(RequestTraceTest, GlobalPlaneUnaffectedByRequestPlane) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.SetEnabled(true);
  const uint64_t key = tracer.BeginTrace("req-mixed", true);
  {
    // With a request context installed the span goes to the request.
    obs::ScopedTraceContext scope(key);
    KPEF_TRACE_SPAN("obs_test.request_span");
  }
  {
    // Without one it goes to the global buffer.
    KPEF_TRACE_SPAN("obs_test.global_span");
  }
  tracer.EndTrace(key, false);
  tracer.SetEnabled(false);
  const std::vector<obs::SpanRecord> global_spans = tracer.Snapshot();
  ASSERT_EQ(global_spans.size(), 1u);
  EXPECT_STREQ(global_spans[0].name, "obs_test.global_span");
  obs::TraceSnapshot snapshot;
  ASSERT_TRUE(tracer.FindRetained("req-mixed", &snapshot));
  ASSERT_EQ(snapshot.spans.size(), 1u);
  EXPECT_STREQ(snapshot.spans[0].name, "obs_test.request_span");
}

TEST_F(RequestTraceTest, ExportTraceJsonParses) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer& tracer = obs::Tracer::Global();
  const uint64_t key = tracer.BeginTrace("req-export", true);
  obs::RecordSpan(key, "obs_test.phase_a", 1000, 2000);
  obs::RecordSpan(key, "obs_test.phase_b", 1500, 400);
  tracer.EndTrace(key, true);
  obs::TraceSnapshot snapshot;
  ASSERT_TRUE(tracer.FindRetained("req-export", &snapshot));
  const JsonValue doc = ParseJsonOrDie(obs::ExportTraceJson(snapshot));
  EXPECT_EQ(doc["trace_id"].str, "req-export");
  EXPECT_EQ(doc["dropped_spans"].number, 0.0);
  ASSERT_EQ(doc["spans"].array.size(), 2u);
  // Ordered by start time.
  EXPECT_EQ(doc["spans"].array[0]["name"].str, "obs_test.phase_a");
  EXPECT_EQ(doc["spans"].array[1]["name"].str, "obs_test.phase_b");
  EXPECT_DOUBLE_EQ(doc["spans"].array[0]["start_us"].number, 1.0);
  EXPECT_DOUBLE_EQ(doc["spans"].array[0]["dur_us"].number, 2.0);
}

TEST_F(RequestTraceTest, ExportChromeTraceParses) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer& tracer = obs::Tracer::Global();
  const uint64_t key = tracer.BeginTrace("req-chrome", true);
  obs::RecordSpan(key, "obs_test.chrome_span", 3000, 1000);
  tracer.EndTrace(key, true);
  obs::TraceSnapshot snapshot;
  ASSERT_TRUE(tracer.FindRetained("req-chrome", &snapshot));
  const JsonValue doc = ParseJsonOrDie(obs::ExportChromeTrace(snapshot));
  ASSERT_TRUE(doc.Has("traceEvents"));
  ASSERT_EQ(doc["traceEvents"].array.size(), 1u);
  const JsonValue& event = doc["traceEvents"].array[0];
  EXPECT_EQ(event["ph"].str, "X");
  EXPECT_EQ(event["name"].str, "obs_test.chrome_span");
  EXPECT_DOUBLE_EQ(event["ts"].number, 3.0);
  EXPECT_DOUBLE_EQ(event["dur"].number, 1.0);
  EXPECT_EQ(doc["displayTimeUnit"].str, "ms");
}

// --- Quantile estimation and exposition format (PR 6) -----------------

TEST(QuantileTest, EmptyHistogramIsZero) {
  MetricsSnapshot::HistogramData data;
  data.upper_bounds = {1.0, 2.0};
  data.bucket_counts = {0, 0, 0};
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 0.5), 0.0);
}

TEST(QuantileTest, InterpolatesWithinBucket) {
  MetricsSnapshot::HistogramData data;
  data.upper_bounds = {10.0, 20.0, 40.0};
  // 10 observations <= 10, 10 in (10, 20], none beyond.
  data.bucket_counts = {10, 10, 0, 0};
  data.total_count = 20;
  // Median rank = 10 lands exactly at the first bucket's upper edge.
  EXPECT_NEAR(obs::HistogramQuantile(data, 0.5), 10.0, 1e-9);
  // p75 -> rank 15: halfway through the (10, 20] bucket.
  EXPECT_NEAR(obs::HistogramQuantile(data, 0.75), 15.0, 1e-9);
  // p100 caps at the highest populated bound.
  EXPECT_NEAR(obs::HistogramQuantile(data, 1.0), 20.0, 1e-9);
}

TEST(QuantileTest, OverflowBucketClampsToHighestBound) {
  MetricsSnapshot::HistogramData data;
  data.upper_bounds = {10.0, 20.0};
  data.bucket_counts = {0, 0, 5};  // everything overflowed
  data.total_count = 5;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 0.99), 20.0);
}

TEST(ExportTest, EscapeLabelValue) {
  EXPECT_EQ(obs::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::EscapeLabelValue("a\nb"), "a\\nb");
}

TEST(ExportTest, PrometheusHelpAndTypeForCanonicalMetrics) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::WarmPipelineMetrics();
  const std::string text = obs::ExportPrometheusText();
  EXPECT_NE(text.find("# HELP serve_e2e_ms "), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_e2e_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("# HELP process_rss_bytes "), std::string::npos);
  EXPECT_NE(text.find("# TYPE process_rss_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_requests counter"), std::string::npos);
}

TEST(ExportTest, PrometheusQuantileSummaries) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::WarmPipelineMetrics();
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Histogram& hist = registry.GetHistogram(obs::kServeE2eMs);
  hist.Reset();
  for (int i = 0; i < 100; ++i) hist.Observe(0.2);
  const std::string text = obs::ExportPrometheusText();
  EXPECT_NE(text.find("# TYPE serve_e2e_ms_quantile summary"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_e2e_ms_quantile{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("serve_e2e_ms_quantile{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("serve_e2e_ms_quantile{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("serve_e2e_ms_quantile_count 100"), std::string::npos);
  // The widened buckets resolve sub-millisecond latencies: with every
  // observation at 0.2ms the p99 estimate must stay near 0.25, not be
  // flattened into a 1ms-wide first bucket.
  const MetricsSnapshot snapshot = registry.Snapshot();
  const double p99 =
      obs::HistogramQuantile(snapshot.histograms.at(obs::kServeE2eMs), 0.99);
  EXPECT_LE(p99, 0.25);
  EXPECT_GT(p99, 0.0);
}

TEST(ExportTest, PrometheusBucketsAreMonotonic) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::WarmPipelineMetrics();
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Histogram& hist = registry.GetHistogram(obs::kServeQueueWaitMs);
  hist.Reset();
  const double values[] = {0.01, 0.3, 1.7, 9.0, 80.0, 999.0, 1e5};
  for (double v : values) hist.Observe(v);
  const std::string text = obs::ExportPrometheusText();
  // Walk every _bucket series in the exposition: cumulative counts must
  // be non-decreasing within a metric and end at the +Inf bucket.
  size_t pos = 0;
  std::string current_metric;
  uint64_t last_count = 0;
  bool saw_any_bucket = false;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const size_t bucket_at = line.find("_bucket{le=\"");
    if (bucket_at == std::string::npos) continue;
    saw_any_bucket = true;
    const std::string metric = line.substr(0, bucket_at);
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const uint64_t count = std::stoull(line.substr(space + 1));
    if (metric != current_metric) {
      current_metric = metric;
      last_count = 0;
    }
    EXPECT_GE(count, last_count) << "non-monotonic buckets: " << line;
    last_count = count;
  }
  EXPECT_TRUE(saw_any_bucket);
}

TEST(ExportTest, DisabledBuildExportsEmptyDocuments) {
#ifndef KPEF_METRICS_DISABLED
  GTEST_SKIP() << "only meaningful when metrics are compiled out";
#else
  KPEF_COUNTER_ADD("obs_test.disabled_counter", 3);
  const JsonValue doc = ParseJsonOrDie(obs::ExportMetricsJson());
  EXPECT_TRUE(doc["counters"].object.empty());
  EXPECT_TRUE(doc["histograms"].object.empty());
#endif
}

}  // namespace
}  // namespace kpef

// Parallel trainer contracts (DESIGN.md §15): deterministic schedule is
// byte-identical for any thread count and either kernel; HogWild matches
// serial training on eval metrics; the new elementwise kernels agree
// bitwise between scalar and AVX2.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "embed/document_encoder.h"
#include "embed/trainer.h"
#include "embed/triplet.h"
#include "embed/vector_ops.h"
#include "text/corpus.h"

// Mirrors the trainer's own TSan detection (src/embed/trainer.cc).
#if defined(__SANITIZE_THREAD__)
#define KPEF_TEST_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KPEF_TEST_TSAN_BUILD 1
#endif
#endif

namespace kpef {
namespace {

/// Two lexical clusters; triples pair same-cluster positives with
/// cross-cluster negatives (same shape as embed_test's trainer test).
struct TrainSetup {
  Corpus corpus;
  std::vector<Triple> triples;
};

TrainSetup MakeClusteredSetup(int docs_per_cluster, int triples_per_seed) {
  TrainSetup setup;
  Rng rng(31);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < docs_per_cluster; ++i) {
      std::string text;
      for (int w = 0; w < 10; ++w) {
        text += (c == 0 ? "x" : "y") + std::to_string(rng.Uniform(8));
        text += ' ';
      }
      setup.corpus.AddDocument(text);
    }
  }
  for (int i = 0; i < docs_per_cluster; ++i) {
    for (int s = 0; s < triples_per_seed; ++s) {
      const int32_t seed = i;
      const int32_t pos = (i + 1 + s) % docs_per_cluster;
      const int32_t neg =
          docs_per_cluster +
          static_cast<int32_t>(rng.Uniform(docs_per_cluster));
      setup.triples.push_back({pos, seed, neg});
    }
  }
  return setup;
}

DocumentEncoder MakeEncoder(const Corpus& corpus, size_t dim = 16) {
  EncoderConfig config;
  config.dim = dim;
  DocumentEncoder encoder(corpus.vocabulary().size(), config);
  Rng init_rng(1);
  encoder.InitializeRandomTokens(init_rng, 0.3f);
  return encoder;
}

TrainStats TrainCopy(const TrainSetup& setup, const TrainerConfig& config,
                     DocumentEncoder& encoder) {
  TripletTrainer trainer(&encoder, &setup.corpus);
  return trainer.Train(setup.triples, config);
}

void ExpectEncodersIdentical(const DocumentEncoder& a,
                             const DocumentEncoder& b) {
  EXPECT_EQ(a.token_embeddings(), b.token_embeddings());
  EXPECT_EQ(a.projection(), b.projection());
  ASSERT_EQ(a.bias().size(), b.bias().size());
  for (size_t i = 0; i < a.bias().size(); ++i) {
    EXPECT_EQ(a.bias()[i], b.bias()[i]) << "bias[" << i << "]";
  }
}

// --- Deterministic schedule: byte-identity across thread counts.

TEST(TrainerDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  // 38 triples with batch 16: full batches, a ragged final batch, and a
  // ragged micro-chunk inside it.
  const TrainSetup setup = MakeClusteredSetup(19, 2);
  ASSERT_EQ(setup.triples.size(), 38u);

  TrainerConfig config;
  config.epochs = 3;
  config.batch_size = 16;
  config.adam.learning_rate = 5e-3;
  config.deterministic = true;

  config.num_threads = 1;
  DocumentEncoder reference = MakeEncoder(setup.corpus);
  const TrainStats ref_stats = TrainCopy(setup, config, reference);
  EXPECT_TRUE(ref_stats.deterministic);
  EXPECT_EQ(ref_stats.workers, 1u);

  for (size_t threads : {2u, 4u, 8u}) {
    config.num_threads = threads;
    DocumentEncoder encoder = MakeEncoder(setup.corpus);
    const TrainStats stats = TrainCopy(setup, config, encoder);
    EXPECT_TRUE(stats.deterministic);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectEncodersIdentical(reference, encoder);
    // Loss accumulation is also order-fixed, so the reported epoch
    // losses match exactly too.
    EXPECT_EQ(ref_stats.epoch_loss, stats.epoch_loss);
  }
}

TEST(TrainerDeterminismTest, ScalarAndAvx2TrainingByteIdentical) {
  const DistanceKernel* avx2 = Avx2KernelOrNull();
  if (avx2 == nullptr) {
    GTEST_SKIP() << "AVX2 kernel unavailable on this host/build";
  }
  const TrainSetup setup = MakeClusteredSetup(16, 2);

  TrainerConfig config;
  config.epochs = 2;
  config.batch_size = 16;
  config.adam.learning_rate = 5e-3;
  config.deterministic = true;
  config.num_threads = 2;

  config.kernel = &ScalarKernel();
  DocumentEncoder scalar_encoder = MakeEncoder(setup.corpus);
  const TrainStats scalar_stats = TrainCopy(setup, config, scalar_encoder);

  config.kernel = avx2;
  DocumentEncoder avx2_encoder = MakeEncoder(setup.corpus);
  const TrainStats avx2_stats = TrainCopy(setup, config, avx2_encoder);

  // Every kernel the trainer touches is bit-identical between paths
  // (embed/vector_ops.h contract), so whole-run results are too.
  ExpectEncodersIdentical(scalar_encoder, avx2_encoder);
  EXPECT_EQ(scalar_stats.epoch_loss, avx2_stats.epoch_loss);
}

// --- New elementwise kernels: scalar vs AVX2 bit-identity.

TEST(TrainerKernelTest, TrainingKernelsScalarVsAvx2BitIdentical) {
  const DistanceKernel* avx2 = Avx2KernelOrNull();
  if (avx2 == nullptr) {
    GTEST_SKIP() << "AVX2 kernel unavailable on this host/build";
  }
  const DistanceKernel& scalar = ScalarKernel();
  Rng rng(97);
  auto random_vec = [&](size_t n, float lo, float hi) {
    std::vector<float> v(n);
    for (float& x : v) x = static_cast<float>(rng.UniformDouble(lo, hi));
    return v;
  };
  for (size_t n : {1u, 7u, 8u, 9u, 16u, 33u, 64u, 100u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const auto x1 = random_vec(n, -2.0f, 2.0f);
    const auto x2 = random_vec(n, -2.0f, 2.0f);
    auto y_s = random_vec(n, -1.0f, 1.0f);
    auto y_a = y_s;
    scalar.axpy2(0.7f, x1.data(), -1.3f, x2.data(), y_s.data(), n);
    avx2->axpy2(0.7f, x1.data(), -1.3f, x2.data(), y_a.data(), n);
    EXPECT_EQ(y_s, y_a);

    const auto s = random_vec(n, -1.0f, 1.0f);
    const auto p = random_vec(n, -1.0f, 1.0f);
    const auto ng = random_vec(n, -1.0f, 1.0f);
    std::vector<float> gs_s(n), gp_s(n), gn_s(n), gs_a(n), gp_a(n), gn_a(n);
    scalar.triplet_grad(s.data(), p.data(), ng.data(), 1.7f, 0.9f, gs_s.data(),
                        gp_s.data(), gn_s.data(), n);
    avx2->triplet_grad(s.data(), p.data(), ng.data(), 1.7f, 0.9f, gs_a.data(),
                       gp_a.data(), gn_a.data(), n);
    EXPECT_EQ(gs_s, gs_a);
    EXPECT_EQ(gp_s, gp_a);
    EXPECT_EQ(gn_s, gn_a);

    const auto grads = random_vec(n, -0.5f, 0.5f);
    auto params_s = random_vec(n, -1.0f, 1.0f);
    auto m_s = random_vec(n, -0.1f, 0.1f);
    auto v_s = random_vec(n, 0.0f, 0.2f);
    auto params_a = params_s;
    auto m_a = m_s;
    auto v_a = v_s;
    scalar.adam_update(params_s.data(), grads.data(), m_s.data(), v_s.data(),
                       0.9f, 0.999f, 1e-3f, 1e-8f, n);
    avx2->adam_update(params_a.data(), grads.data(), m_a.data(), v_a.data(),
                      0.9f, 0.999f, 1e-3f, 1e-8f, n);
    EXPECT_EQ(params_s, params_a);
    EXPECT_EQ(m_s, m_a);
    EXPECT_EQ(v_s, v_a);
  }
}

// --- HogWild: eval parity with the serial trainer.

TEST(TrainerHogwildTest, MatchesSerialEvalMetrics) {
  const TrainSetup setup = MakeClusteredSetup(20, 2);

  TrainerConfig serial;
  serial.epochs = 12;
  serial.adam.learning_rate = 5e-3;
  serial.num_threads = 1;
  DocumentEncoder serial_encoder = MakeEncoder(setup.corpus);
  const TrainStats serial_stats = TrainCopy(setup, serial, serial_encoder);

  TrainerConfig hogwild = serial;
  hogwild.num_threads = 4;
  hogwild.deterministic = false;
  DocumentEncoder hogwild_encoder = MakeEncoder(setup.corpus);
  const TrainStats hogwild_stats = TrainCopy(setup, hogwild, hogwild_encoder);
  EXPECT_EQ(hogwild_stats.workers, 4u);

  // Both runs learn: final loss well below the initial loss...
  ASSERT_EQ(serial_stats.epoch_loss.size(), 12u);
  ASSERT_EQ(hogwild_stats.epoch_loss.size(), 12u);
  EXPECT_LT(serial_stats.epoch_loss.back(),
            0.5 * serial_stats.epoch_loss.front());
  EXPECT_LT(hogwild_stats.epoch_loss.back(),
            0.5 * hogwild_stats.epoch_loss.front());
  // ...and the HogWild run lands in an epsilon band around serial.
  EXPECT_NEAR(hogwild_stats.epoch_loss.back(), serial_stats.epoch_loss.back(),
              0.25 * serial_stats.epoch_loss.front());

  // Same held-out eval as the serial trainer test: same-cluster pairs end
  // closer than cross-cluster ones.
  const auto e0 = hogwild_encoder.Encode(setup.corpus.Document(2));
  const auto e1 = hogwild_encoder.Encode(setup.corpus.Document(7));
  const auto f0 = hogwild_encoder.Encode(setup.corpus.Document(22));
  EXPECT_LT(L2Distance(e0, e1), L2Distance(e0, f0));
}

// --- Stats and observability surface.

TEST(TrainerStatsTest, ReportsWorkersScheduleAndThroughput) {
  const TrainSetup setup = MakeClusteredSetup(10, 2);
  TrainerConfig config;
  config.epochs = 2;
  config.num_threads = 3;
  DocumentEncoder encoder = MakeEncoder(setup.corpus);
  const TrainStats stats = TrainCopy(setup, config, encoder);
  EXPECT_EQ(stats.workers, 3u);
  EXPECT_EQ(stats.num_triples, setup.triples.size());
  EXPECT_GT(stats.triples_per_sec, 0.0);
  EXPECT_EQ(stats.epoch_loss.size(), 2u);
#ifndef KPEF_TEST_TSAN_BUILD
  // num_threads > 1 without the deterministic flag selects HogWild
  // (sanitizer builds force the deterministic schedule instead).
  EXPECT_FALSE(stats.deterministic);
#endif
}

TEST(TrainerStatsTest, SerialRunIsDeterministicByConstruction) {
  const TrainSetup setup = MakeClusteredSetup(6, 1);
  TrainerConfig config;
  config.epochs = 1;
  config.num_threads = 1;
  DocumentEncoder encoder = MakeEncoder(setup.corpus);
  const TrainStats stats = TrainCopy(setup, config, encoder);
  EXPECT_TRUE(stats.deterministic);
  EXPECT_EQ(stats.workers, 1u);
}

}  // namespace
}  // namespace kpef

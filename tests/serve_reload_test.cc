// Zero-downtime hot-swap, end to end: a REAL EngineGroup (tiny trained
// artifacts, sharded) behind ExpertSearchService + HttpServer on a
// loopback socket, with sustained find_experts traffic while
// POST /v1/admin/reload swaps the serving generation. The contract
// under test: no request is dropped or errored by the swap, the old
// generation is fully drained (destroyed) once its in-flight queries
// finish, and /healthz + the reload response report the new generation.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/engine_group.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/queries.h"
#include "embed/pretrain.h"
#include "serve/http_server.h"
#include "serve/service.h"

namespace kpef::serve {
namespace {

namespace fs = std::filesystem;

// --- Minimal blocking HTTP client (same shape as serve_server_test) ---

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool Post(const std::string& path, const std::string& body) {
    return SendRaw("POST " + path + " HTTP/1.1\r\ncontent-length: " +
                   std::to_string(body.size()) + "\r\n\r\n" + body);
  }

  bool Get(const std::string& path) {
    return SendRaw("GET " + path + " HTTP/1.1\r\n\r\n");
  }

  bool ReadResponse(ClientResponse* out) {
    while (true) {
      const size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        return ParseAndFill(header_end, out);
      }
      if (!FillBuffer()) return false;
    }
  }

 private:
  bool SendRaw(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool FillBuffer() {
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<size_t>(n));
    return true;
  }

  bool ParseAndFill(size_t header_end, ClientResponse* out) {
    const std::string head = buffer_.substr(0, header_end);
    out->status = std::atoi(head.c_str() + 9);
    out->headers.clear();
    size_t line_start = head.find("\r\n") + 2;
    while (line_start < head.size()) {
      size_t line_end = head.find("\r\n", line_start);
      if (line_end == std::string::npos) line_end = head.size();
      const std::string line = head.substr(line_start, line_end - line_start);
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::string name = line.substr(0, colon);
        for (char& c : name) c = static_cast<char>(std::tolower(c));
        std::string value = line.substr(colon + 1);
        while (!value.empty() && value.front() == ' ') value.erase(0, 1);
        out->headers[name] = value;
      }
      line_start = line_end + 2;
    }
    const size_t content_length = static_cast<size_t>(
        std::atoll(out->headers["content-length"].c_str()));
    const size_t body_start = header_end + 4;
    while (buffer_.size() < body_start + content_length) {
      if (!FillBuffer()) return false;
    }
    out->body = buffer_.substr(body_start, content_length);
    buffer_.erase(0, body_start + content_length);
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

// --- Real artifacts, shared across the binary -------------------------

struct SharedArtifacts {
  Dataset dataset;
  Corpus corpus;
  QuerySet queries;
  fs::path dir_a;
  fs::path dir_b;

  SharedArtifacts()
      : dataset(GenerateDataset(TinyProfile())),
        corpus(BuildPaperCorpus(dataset)),
        queries(GenerateQueries(dataset, 4, 7)) {
    Matrix tokens = [&] {
      PretrainConfig config;
      config.dim = 32;
      config.epochs = 6;
      return PretrainTokenEmbeddings(corpus, config).token_embeddings;
    }();
    EngineConfig config;
    config.k = 3;
    config.seed_fraction = 0.2;
    config.encoder.dim = 32;
    config.trainer.epochs = 2;
    config.top_m = 60;
    config.pg_index.knn_k = 8;
    auto built = ExpertFindingEngine::Build(&dataset, &corpus, config,
                                            &tokens);
    if (!built.ok()) std::abort();
    const fs::path root =
        fs::temp_directory_path() /
        ("kpef_serve_reload_test_" + std::to_string(::getpid()));
    dir_a = root / "gen_a";
    dir_b = root / "gen_b";
    fs::create_directories(dir_a);
    if (!(*built)->SaveArtifacts(dir_a.string()).ok()) std::abort();
    std::error_code ec;
    fs::copy(dir_a, dir_b, fs::copy_options::recursive, ec);
    if (ec) std::abort();
  }

  static SharedArtifacts& Get() {
    static SharedArtifacts* s = new SharedArtifacts();
    return *s;
  }

  EngineConfig ServeConfig() const {
    EngineConfig config;
    config.k = 3;
    config.seed_fraction = 0.2;
    config.encoder.dim = 32;
    config.trainer.epochs = 2;
    config.top_m = 60;
    // Brute retrieval keeps per-reload shard builds instant and the
    // equivalence across generations exact.
    config.use_pg_index = false;
    return config;
  }
};

/// EngineGroup + service + server on an ephemeral loopback port.
struct Harness {
  std::unique_ptr<EngineGroup> group;
  std::unique_ptr<HttpServer> server;
  std::unique_ptr<ExpertSearchService> service;

  explicit Harness(size_t shards) {
    SharedArtifacts& s = SharedArtifacts::Get();
    EngineGroup::Options options;
    options.engine = s.ServeConfig();
    options.num_shards = shards;
    auto loaded = EngineGroup::Load(&s.dataset, &s.corpus, options,
                                    s.dir_a.string());
    if (!loaded.ok()) std::abort();
    group = std::move(loaded).value();

    ServiceConfig service_config;
    service_config.batcher.max_batch_size = 4;
    service_config.batcher.max_queue_age_ms = 1.0;
    service_config.batcher.max_pending = 4096;  // never shed in-test
    service_config.reload_dir = s.dir_a.string();
    service = ExpertSearchService::ForEngineGroup(group.get(),
                                                  service_config);
    server = std::make_unique<HttpServer>(
        HttpServerConfig(), [this](const HttpRequest& request,
                                   HttpServer::Responder respond) {
          service->Handle(request, std::move(respond));
        });
    if (!server->Start().ok()) std::abort();
  }

  ~Harness() {
    server->ShutdownGracefully(5000.0);
    service->Drain();
  }

  uint16_t port() const { return server->port(); }
};

std::string FindExpertsBody(const std::string& query) {
  return "{\"query\":\"" + query + "\",\"n\":5}";
}

// --- Tests ------------------------------------------------------------

// The tentpole contract: sustained query traffic across a reload, with
// zero dropped or errored in-flight requests and the old generation
// fully drained afterwards.
TEST(ServeReloadTest, ReloadUnderSustainedTrafficDropsNothing) {
  SharedArtifacts& s = SharedArtifacts::Get();
  Harness harness(/*shards=*/2);

  std::weak_ptr<const EngineGroup::Generation> old_gen =
      harness.group->Snapshot();

  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> ok_count{0};
  std::atomic<int> error_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(harness.port());
      if (!client.connected()) {
        error_count.fetch_add(1);
        return;
      }
      const std::string text =
          s.queries.queries[static_cast<size_t>(c) %
                            s.queries.queries.size()]
              .text;
      while (!stop.load()) {
        ClientResponse response;
        if (!client.Post("/v1/find_experts", FindExpertsBody(text)) ||
            !client.ReadResponse(&response)) {
          error_count.fetch_add(1);
          return;
        }
        if (response.status == 200 &&
            response.body.find("\"experts\":[") != std::string::npos) {
          ok_count.fetch_add(1);
        } else {
          error_count.fetch_add(1);
        }
      }
    });
  }

  // Let traffic establish, then swap the generation mid-stream.
  while (ok_count.load() < 20 && error_count.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    TestClient admin(harness.port());
    ASSERT_TRUE(admin.connected());
    ASSERT_TRUE(admin.Post("/v1/admin/reload",
                           "{\"dir\":\"" + s.dir_b.string() + "\"}"));
    ClientResponse response;
    ASSERT_TRUE(admin.ReadResponse(&response));
    EXPECT_EQ(response.status, 200) << response.body;
    EXPECT_NE(response.body.find("\"generation\":2"), std::string::npos)
        << response.body;
  }
  // Keep traffic flowing on the new generation before stopping.
  const int after_reload_floor = ok_count.load() + 20;
  while (ok_count.load() < after_reload_floor && error_count.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(error_count.load(), 0);
  EXPECT_GE(ok_count.load(), 40);
  EXPECT_EQ(harness.group->generation(), 2u);

  // Every in-flight query on the old generation has finished, so the
  // RCU grace period is over and the generation was destroyed.
  EXPECT_TRUE(old_gen.expired());

  // /healthz reports the swap.
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Get("/healthz"));
  ClientResponse health;
  ASSERT_TRUE(client.ReadResponse(&health));
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"generation\":2"), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"shards\":2"), std::string::npos);
}

TEST(ServeReloadTest, ReloadFailureKeeps500AndOldGenerationServing) {
  Harness harness(/*shards=*/1);
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Post("/v1/admin/reload",
                          "{\"dir\":\"/nonexistent/model/dir\"}"));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 500) << response.body;
  EXPECT_EQ(harness.group->generation(), 1u);

  // Old generation still answers.
  SharedArtifacts& s = SharedArtifacts::Get();
  ASSERT_TRUE(client.Post("/v1/find_experts",
                          FindExpertsBody(s.queries.queries[0].text)));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
}

TEST(ServeReloadTest, ReloadRejectsMalformedBodyAndWrongMethod) {
  Harness harness(/*shards=*/1);
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Post("/v1/admin/reload", "{\"dir\": 42}"));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 400);

  ASSERT_TRUE(client.Get("/v1/admin/reload"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 405);
}

// An empty body falls back to ServiceConfig::reload_dir (the serving
// directory), so operators can re-load in place after overwriting
// artifacts (what --reload-watch automates).
TEST(ServeReloadTest, EmptyBodyReloadsServingDirectory) {
  Harness harness(/*shards=*/2);
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Post("/v1/admin/reload", ""));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(harness.group->generation(), 2u);
  EXPECT_EQ(harness.group->Snapshot()->artifact_dir,
            SharedArtifacts::Get().dir_a.string());
}

}  // namespace
}  // namespace kpef::serve

// Streaming ingestion, end to end: a REAL EngineGroup + IngestCoordinator
// behind ExpertSearchService + HttpServer on a loopback socket, with
// sustained find_experts traffic while POST /v1/admin/ingest folds a
// held-out drip tail into the serving state (including a delta merge).
// The contract under test: zero dropped or errored queries across every
// ingest publish, the new papers' authors become findable, /healthz
// reports the ingest state, and the degraded paths (no coordinator,
// malformed batches, concurrent ingest) answer 503/400/409 — never
// crashing the serving path.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/engine_group.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/drip.h"
#include "data/queries.h"
#include "embed/pretrain.h"
#include "ingest/coordinator.h"
#include "serve/http_server.h"
#include "serve/service.h"

namespace kpef::serve {
namespace {

namespace fs = std::filesystem;

// --- Minimal blocking HTTP client (same shape as serve_server_test) ---

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool Post(const std::string& path, const std::string& body) {
    return SendRaw("POST " + path + " HTTP/1.1\r\ncontent-length: " +
                   std::to_string(body.size()) + "\r\n\r\n" + body);
  }

  bool Get(const std::string& path) {
    return SendRaw("GET " + path + " HTTP/1.1\r\n\r\n");
  }

  bool ReadResponse(ClientResponse* out) {
    while (true) {
      const size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        return ParseAndFill(header_end, out);
      }
      if (!FillBuffer()) return false;
    }
  }

 private:
  bool SendRaw(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool FillBuffer() {
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<size_t>(n));
    return true;
  }

  bool ParseAndFill(size_t header_end, ClientResponse* out) {
    const std::string head = buffer_.substr(0, header_end);
    out->status = std::atoi(head.c_str() + 9);
    out->headers.clear();
    size_t line_start = head.find("\r\n") + 2;
    while (line_start < head.size()) {
      size_t line_end = head.find("\r\n", line_start);
      if (line_end == std::string::npos) line_end = head.size();
      const std::string line = head.substr(line_start, line_end - line_start);
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::string name = line.substr(0, colon);
        for (char& c : name) c = static_cast<char>(std::tolower(c));
        std::string value = line.substr(colon + 1);
        while (!value.empty() && value.front() == ' ') value.erase(0, 1);
        out->headers[name] = value;
      }
      line_start = line_end + 2;
    }
    const size_t content_length = static_cast<size_t>(
        std::atoll(out->headers["content-length"].c_str()));
    const size_t body_start = header_end + 4;
    while (buffer_.size() < body_start + content_length) {
      if (!FillBuffer()) return false;
    }
    out->body = buffer_.substr(body_start, content_length);
    buffer_.erase(0, body_start + content_length);
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

// --- JSON batch building ----------------------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string JsonList(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(items[i]) + "\"";
  }
  return out + "]";
}

std::string IngestBody(const std::vector<DripPaper>& papers) {
  std::string out = "{\"papers\":[";
  for (size_t i = 0; i < papers.size(); ++i) {
    const DripPaper& p = papers[i];
    if (i > 0) out += ",";
    out += "{\"text\":\"" + JsonEscape(p.text) + "\"";
    out += ",\"authors\":" + JsonList(p.authors);
    if (!p.venue.empty()) out += ",\"venue\":\"" + JsonEscape(p.venue) + "\"";
    out += ",\"topics\":" + JsonList(p.topics);
    out += ",\"cites\":" + JsonList(p.cites);
    out += "}";
  }
  return out + "]}";
}

// --- Real artifacts, shared across the binary -------------------------

struct SharedArtifacts {
  Dataset full;
  DripSplit split;
  Corpus corpus;
  QuerySet queries;
  fs::path dir;
  fs::path root;

  SharedArtifacts() : full(GenerateDataset(TinyProfile())) {
    auto made = MakeDripSplit(full, /*holdout=*/36);
    if (!made.ok()) std::abort();
    split = std::move(made).value();
    corpus = BuildPaperCorpus(split.base);
    queries = GenerateQueries(split.base, 4, 7);
    Matrix tokens = [&] {
      PretrainConfig config;
      config.dim = 32;
      config.epochs = 6;
      return PretrainTokenEmbeddings(corpus, config).token_embeddings;
    }();
    auto built =
        ExpertFindingEngine::Build(&split.base, &corpus, Config(), &tokens);
    if (!built.ok()) std::abort();
    root = fs::temp_directory_path() /
           ("kpef_serve_ingest_test_" + std::to_string(::getpid()));
    dir = root / "artifacts";
    fs::create_directories(dir);
    if (!(*built)->SaveArtifacts(dir.string()).ok()) std::abort();
  }

  static EngineConfig Config() {
    EngineConfig config;
    config.k = 3;
    config.seed_fraction = 0.2;
    config.encoder.dim = 32;
    config.trainer.epochs = 2;
    config.top_m = 60;
    config.use_pg_index = false;  // brute keeps cross-publish answers exact
    return config;
  }

  static SharedArtifacts& Get() {
    static SharedArtifacts* s = new SharedArtifacts();
    return *s;
  }
};

/// EngineGroup (+ optional coordinator) + service + server on loopback.
struct Harness {
  std::unique_ptr<EngineGroup> group;
  std::unique_ptr<IngestCoordinator> coordinator;
  std::unique_ptr<HttpServer> server;
  std::unique_ptr<ExpertSearchService> service;

  explicit Harness(bool with_ingest, const std::string& wal_tag = "",
                   size_t merge_budget = 20000) {
    SharedArtifacts& s = SharedArtifacts::Get();
    EngineGroup::Options options;
    options.engine = SharedArtifacts::Config();
    auto loaded =
        EngineGroup::Load(&s.split.base, &s.corpus, options, s.dir.string());
    if (!loaded.ok()) std::abort();
    group = std::move(loaded).value();

    if (with_ingest) {
      IngestOptions ingest_options;
      ingest_options.wal_path =
          (s.root / ("serve_wal_" + wal_tag + ".log")).string();
      ingest_options.merge_pending_edge_budget = merge_budget;
      auto created = IngestCoordinator::Create(
          group.get(), SharedArtifacts::Config(), ingest_options);
      if (!created.ok()) std::abort();
      coordinator = std::move(created).value();
    }

    ServiceConfig service_config;
    service_config.batcher.max_batch_size = 4;
    service_config.batcher.max_queue_age_ms = 1.0;
    service_config.batcher.max_pending = 4096;  // never shed in-test
    service = ExpertSearchService::ForEngineGroup(group.get(), service_config,
                                                  coordinator.get());
    server = std::make_unique<HttpServer>(
        HttpServerConfig(), [this](const HttpRequest& request,
                                   HttpServer::Responder respond) {
          service->Handle(request, std::move(respond));
        });
    if (!server->Start().ok()) std::abort();
  }

  ~Harness() {
    server->ShutdownGracefully(5000.0);
    service->Drain();
  }

  uint16_t port() const { return server->port(); }
};

std::string FindExpertsBody(const std::string& query) {
  return "{\"query\":\"" + JsonEscape(query) + "\",\"n\":10}";
}

// --- Tests ------------------------------------------------------------

// The tentpole e2e contract: sustained query traffic while the whole
// drip tail streams in over HTTP (merge budget forced low so at least
// one delta compaction happens mid-traffic), with zero query errors and
// the ingested papers' authors findable afterwards.
TEST(ServeIngestTest, IngestUnderSustainedTrafficDropsNothing) {
  SharedArtifacts& s = SharedArtifacts::Get();
  Harness harness(/*with_ingest=*/true, "traffic", /*merge_budget=*/500);

  constexpr int kClients = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> ok_count{0};
  std::atomic<int> error_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(harness.port());
      if (!client.connected()) {
        error_count.fetch_add(1);
        return;
      }
      const std::string text =
          s.queries.queries[static_cast<size_t>(c) % s.queries.queries.size()]
              .text;
      while (!stop.load()) {
        ClientResponse response;
        if (!client.Post("/v1/find_experts", FindExpertsBody(text)) ||
            !client.ReadResponse(&response)) {
          error_count.fetch_add(1);
          return;
        }
        if (response.status == 200) {
          ok_count.fetch_add(1);
        } else {
          error_count.fetch_add(1);
        }
      }
    });
  }

  // Stream the whole tail while the clients hammer away. Each POST is
  // answered only after WAL append + apply + publish, so serially
  // posting them is the steady-state ingest pattern.
  TestClient ingest_client(harness.port());
  ASSERT_TRUE(ingest_client.connected());
  size_t applied = 0;
  bool merged = false;
  for (const auto& batch :
       DripBatches(std::vector<DripPaper>(s.split.tail), 9)) {
    ClientResponse response;
    ASSERT_TRUE(
        ingest_client.Post("/v1/admin/ingest", IngestBody(batch)) &&
        ingest_client.ReadResponse(&response));
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_NE(response.body.find("\"applied\":"), std::string::npos);
    applied += batch.size();
    if (response.body.find("\"merged\":true") != std::string::npos) {
      merged = true;
    }
  }
  EXPECT_EQ(applied, s.split.tail.size());
  EXPECT_TRUE(merged) << "merge budget 500 should have tripped mid-stream";

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(error_count.load(), 0);
  EXPECT_GT(ok_count.load(), 0);

  // The ingested papers are now served: querying a tail paper's exact
  // text must surface one of its authors.
  const DripPaper& probe = s.split.tail.back();
  ClientResponse found;
  ASSERT_TRUE(ingest_client.Post("/v1/find_experts",
                                 FindExpertsBody(probe.text)) &&
              ingest_client.ReadResponse(&found));
  ASSERT_EQ(found.status, 200);
  bool author_found = false;
  for (const std::string& author : probe.authors) {
    if (found.body.find("\"" + JsonEscape(author) + "\"") !=
        std::string::npos) {
      author_found = true;
    }
  }
  EXPECT_TRUE(author_found)
      << "no author of the probe paper in: " << found.body;

  // /healthz reports the ingest state.
  ClientResponse health;
  ASSERT_TRUE(ingest_client.Get("/healthz") &&
              ingest_client.ReadResponse(&health));
  ASSERT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"ingest_records\":" +
                             std::to_string(s.split.tail.size())),
            std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"ingest_wal_bytes\":"), std::string::npos);
  EXPECT_NE(health.body.find("\"ingest_pending_delta_edges\":"),
            std::string::npos);

  const IngestStats stats = harness.coordinator->Stats();
  EXPECT_EQ(stats.records_applied, s.split.tail.size());
  EXPECT_GT(stats.merges, 0u);
  EXPECT_GT(stats.wal_bytes, 0u);
}

TEST(ServeIngestTest, WithoutCoordinatorAnswers503) {
  Harness harness(/*with_ingest=*/false);
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ClientResponse response;
  ASSERT_TRUE(client.Post("/v1/admin/ingest",
                          "{\"papers\":[{\"text\":\"x\"}]}") &&
              client.ReadResponse(&response));
  EXPECT_EQ(response.status, 503);
}

TEST(ServeIngestTest, MalformedBatchesAnswer400AndKeepServing) {
  SharedArtifacts& s = SharedArtifacts::Get();
  Harness harness(/*with_ingest=*/true, "malformed");
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());

  const std::vector<std::string> bad_bodies = {
      "not json at all",
      "{\"papers\":\"should be a list\"}",
      "{\"papers\":[{\"authors\":[\"a\"]}]}",          // missing text
      "{\"papers\":[{\"text\":\"\"}]}",                // empty text
      "{\"papers\":[{\"text\":\"x\",\"authors\":\"nope\"}]}",
      "{}",
  };
  for (const std::string& body : bad_bodies) {
    ClientResponse response;
    ASSERT_TRUE(client.Post("/v1/admin/ingest", body) &&
                client.ReadResponse(&response));
    EXPECT_EQ(response.status, 400) << body << " -> " << response.body;
  }
  // GET on the ingest endpoint is a 405, not a crash.
  ClientResponse get_response;
  ASSERT_TRUE(client.Get("/v1/admin/ingest") &&
              client.ReadResponse(&get_response));
  EXPECT_EQ(get_response.status, 405);

  // The serving path is untouched and a valid batch still lands.
  ClientResponse good;
  ASSERT_TRUE(
      client.Post("/v1/admin/ingest",
                  IngestBody({s.split.tail.begin(), s.split.tail.begin() + 2}))
      && client.ReadResponse(&good));
  EXPECT_EQ(good.status, 200) << good.body;
  ClientResponse query;
  ASSERT_TRUE(client.Post("/v1/find_experts",
                          FindExpertsBody(s.queries.queries[0].text)) &&
              client.ReadResponse(&query));
  EXPECT_EQ(query.status, 200);
}

}  // namespace
}  // namespace kpef::serve

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "embed/adam.h"
#include "embed/document_encoder.h"
#include "embed/kmeans.h"
#include "embed/matrix.h"
#include "embed/pretrain.h"
#include "embed/trainer.h"
#include "embed/triplet.h"
#include "embed/vector_ops.h"
#include "text/corpus.h"

namespace kpef {
namespace {

TEST(VectorOpsTest, DotAndNorms) {
  std::vector<float> a = {1, 2, 3};
  std::vector<float> b = {4, -5, 6};
  EXPECT_FLOAT_EQ(Dot(a, b), 12.0f);
  EXPECT_FLOAT_EQ(L2Norm(a), std::sqrt(14.0f));
  EXPECT_FLOAT_EQ(SquaredL2Distance(a, b), 9 + 49 + 9);
  EXPECT_FLOAT_EQ(L2Distance(a, b), std::sqrt(67.0f));
}

TEST(VectorOpsTest, AxpyAndScale) {
  std::vector<float> x = {1, 1};
  std::vector<float> y = {2, 3};
  Axpy(2.0f, x, y);
  EXPECT_EQ(y, (std::vector<float>{4, 5}));
  Scale(0.5f, y);
  EXPECT_EQ(y, (std::vector<float>{2, 2.5}));
}

TEST(VectorOpsTest, NormalizeHandlesZero) {
  std::vector<float> zero = {0, 0, 0};
  NormalizeL2(zero);
  EXPECT_EQ(zero, (std::vector<float>{0, 0, 0}));
  std::vector<float> v = {3, 4};
  NormalizeL2(v);
  EXPECT_NEAR(L2Norm(v), 1.0f, 1e-6);
}

TEST(VectorOpsTest, CosineSimilarity) {
  std::vector<float> a = {1, 0};
  std::vector<float> b = {0, 1};
  std::vector<float> c = {2, 0};
  EXPECT_FLOAT_EQ(CosineSimilarity(a, b), 0.0f);
  EXPECT_FLOAT_EQ(CosineSimilarity(a, c), 1.0f);
  const std::vector<float> zero2 = {0, 0};
  EXPECT_FLOAT_EQ(CosineSimilarity(a, zero2), 0.0f);
}

TEST(MatrixTest, RowAccess) {
  Matrix m(3, 2, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  m.At(1, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m.Row(1)[1], 7.0f);
  m.Fill(0.0f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 0.0f);
}

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize f(x) = (x - 3)^2 elementwise.
  AdamConfig config;
  config.learning_rate = 0.1;
  Adam adam(4, config);
  std::vector<float> params = {0, 10, -5, 3};
  std::vector<float> grads(4);
  for (int step = 0; step < 500; ++step) {
    for (int i = 0; i < 4; ++i) grads[i] = 2.0f * (params[i] - 3.0f);
    adam.BeginStep();
    adam.UpdateDense(params, grads);
  }
  for (float p : params) EXPECT_NEAR(p, 3.0f, 0.05f);
}

TEST(AdamTest, SparseRowUpdatesOnlyTouchTargetRow) {
  Adam adam(6, {});
  Matrix params(3, 2, 1.0f);
  std::vector<float> grad = {1.0f, 1.0f};
  adam.BeginStep();
  adam.UpdateRow(params, 1, grad, 0);
  EXPECT_FLOAT_EQ(params.At(0, 0), 1.0f);
  EXPECT_LT(params.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(params.At(2, 1), 1.0f);
}

TEST(TripletLossTest, InactiveWhenNegativeFar) {
  std::vector<float> s = {0, 0};
  std::vector<float> p = {1, 0};
  std::vector<float> n = {10, 0};
  const auto result = ComputeTripletLoss(s, p, n, 1.0f);
  EXPECT_FLOAT_EQ(result.loss, 0.0f);
  EXPECT_FALSE(result.active);
}

TEST(TripletLossTest, ActiveInsideMargin) {
  std::vector<float> s = {0, 0};
  std::vector<float> p = {2, 0};
  std::vector<float> n = {2.5f, 0};
  const auto result = ComputeTripletLoss(s, p, n, 1.0f);
  EXPECT_TRUE(result.active);
  EXPECT_NEAR(result.loss, 2.0f - 2.5f + 1.0f, 1e-5);
}

TEST(TripletLossTest, GradientMatchesFiniteDifferences) {
  Rng rng(5);
  const float margin = 1.0f;
  const float eps = 1e-3f;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> s(4), p(4), n(4);
    for (int i = 0; i < 4; ++i) {
      s[i] = static_cast<float>(rng.Normal());
      p[i] = static_cast<float>(rng.Normal());
      n[i] = static_cast<float>(rng.Normal());
    }
    const auto result = ComputeTripletLoss(s, p, n, margin);
    if (!result.active) continue;
    auto loss_at = [&](std::vector<float>& vec, int dim, float delta) {
      vec[dim] += delta;
      const float loss = ComputeTripletLoss(s, p, n, margin).loss;
      vec[dim] -= delta;
      return loss;
    };
    for (int dim = 0; dim < 4; ++dim) {
      const float numeric_s =
          (loss_at(s, dim, eps) - loss_at(s, dim, -eps)) / (2 * eps);
      EXPECT_NEAR(result.grad_seed[dim], numeric_s, 5e-2f);
      const float numeric_p =
          (loss_at(p, dim, eps) - loss_at(p, dim, -eps)) / (2 * eps);
      EXPECT_NEAR(result.grad_positive[dim], numeric_p, 5e-2f);
      const float numeric_n =
          (loss_at(n, dim, eps) - loss_at(n, dim, -eps)) / (2 * eps);
      EXPECT_NEAR(result.grad_negative[dim], numeric_n, 5e-2f);
    }
  }
}

class EncoderTest : public ::testing::TestWithParam<Pooling> {
 protected:
  EncoderTest() {
    corpus_.AddDocument("alpha beta gamma");
    corpus_.AddDocument("beta beta delta");
    EncoderConfig config;
    config.dim = 6;
    config.pooling = GetParam();
    encoder_ = std::make_unique<DocumentEncoder>(corpus_.vocabulary().size(),
                                                 config);
    if (GetParam() == Pooling::kWeightedMean) {
      std::vector<float> weights(corpus_.vocabulary().size());
      for (size_t t = 0; t < weights.size(); ++t) {
        weights[t] = 0.5f + 0.1f * static_cast<float>(t % 5);
      }
      encoder_->SetTokenWeights(std::move(weights));
    }
    Rng rng(3);
    encoder_->InitializeRandomTokens(rng, 0.5f);
    // Perturb the projection so it is not exactly identity.
    Matrix& proj = encoder_->projection();
    for (size_t r = 0; r < proj.rows(); ++r) {
      for (float& v : proj.Row(r)) {
        v += static_cast<float>(rng.Normal(0.0, 0.05));
      }
    }
    for (float& v : encoder_->bias()) {
      v = static_cast<float>(rng.Normal(0.0, 0.05));
    }
  }

  Corpus corpus_;
  std::unique_ptr<DocumentEncoder> encoder_;
};

TEST_P(EncoderTest, EncodeMatchesForward) {
  for (size_t doc = 0; doc < corpus_.NumDocuments(); ++doc) {
    const auto direct = encoder_->Encode(corpus_.Document(doc));
    const auto cache = encoder_->Forward(corpus_.Document(doc));
    EXPECT_EQ(direct, cache.output);
  }
}

TEST_P(EncoderTest, EmptyDocumentEncodesToNormalizedBias) {
  const auto out = encoder_->Encode(std::vector<TokenId>{});
  std::vector<float> expected = encoder_->bias();
  NormalizeL2(expected);
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < out.size(); ++i) EXPECT_NEAR(out[i], expected[i], 1e-5);
}

TEST_P(EncoderTest, OutputIsUnitNorm) {
  for (size_t doc = 0; doc < corpus_.NumDocuments(); ++doc) {
    const auto out = encoder_->Encode(corpus_.Document(doc));
    EXPECT_NEAR(L2Norm(out), 1.0f, 1e-5);
  }
}

TEST_P(EncoderTest, BackwardMatchesFiniteDifferences) {
  const auto& doc = corpus_.Document(0);
  // Loss: L = sum_i w_i * v_i with fixed random weights (linear in output,
  // so dL/dv = w exactly).
  Rng rng(11);
  std::vector<float> w(encoder_->dim());
  for (float& x : w) x = static_cast<float>(rng.Normal());
  auto loss = [&]() {
    const auto out = encoder_->Encode(doc);
    float total = 0;
    for (size_t i = 0; i < out.size(); ++i) total += w[i] * out[i];
    return total;
  };
  EncoderGradients grads;
  grads.Reset(encoder_->dim());
  const auto cache = encoder_->Forward(doc);
  encoder_->Backward(cache, w, grads);

  const float eps = 1e-2f;
  // Projection gradient check (sample a few entries).
  const size_t dim = encoder_->dim();
  for (size_t idx : {0u, 7u, 13u, 35u}) {
    const size_t r = idx / dim;
    const size_t c = idx % dim;
    float& param = encoder_->projection().At(r, c);
    const float saved = param;
    param = saved + eps;
    const float up = loss();
    param = saved - eps;
    const float down = loss();
    param = saved;
    EXPECT_NEAR(grads.d_projection.At(r, c), (up - down) / (2 * eps), 2e-2f);
  }
  // Bias gradient (numeric: normalization makes it differ from w).
  for (size_t i = 0; i < encoder_->dim(); ++i) {
    float& param = encoder_->bias()[i];
    const float saved = param;
    param = saved + eps;
    const float up = loss();
    param = saved - eps;
    const float down = loss();
    param = saved;
    EXPECT_NEAR(grads.d_bias[i], (up - down) / (2 * eps), 2e-2f);
  }
  // Token embedding gradient for the first token of the doc.
  const TokenId token = doc[0];
  for (size_t k = 0; k < encoder_->dim(); ++k) {
    float& param = encoder_->token_embeddings().Row(token)[k];
    const float saved = param;
    param = saved + eps;
    const float up = loss();
    param = saved - eps;
    const float down = loss();
    param = saved;
    ASSERT_TRUE(grads.d_tokens.count(token));
    EXPECT_NEAR(grads.d_tokens.at(token)[k], (up - down) / (2 * eps), 2e-2f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Poolings, EncoderTest,
    ::testing::Values(Pooling::kMean, Pooling::kMax, Pooling::kWeightedMean),
    [](const ::testing::TestParamInfo<Pooling>& info) {
      switch (info.param) {
        case Pooling::kMean:
          return "Mean";
        case Pooling::kMax:
          return "Max";
        case Pooling::kWeightedMean:
          return "WeightedMean";
      }
      return "Unknown";
    });

TEST(PretrainTest, CooccurringTokensEndUpCloser) {
  // Two disjoint "topics": docs repeat tokens within a topic, never across.
  Corpus corpus;
  Rng rng(21);
  for (int i = 0; i < 60; ++i) {
    std::string text;
    const bool topic_a = i % 2 == 0;
    for (int w = 0; w < 12; ++w) {
      text += (topic_a ? "a" : "b") + std::to_string(rng.Uniform(6));
      text += ' ';
    }
    corpus.AddDocument(text);
  }
  PretrainConfig config;
  config.dim = 16;
  config.epochs = 20;
  const PretrainResult result = PretrainTokenEmbeddings(corpus, config);
  EXPECT_GT(result.num_cooccurrence_pairs, 0u);
  const Vocabulary& vocab = corpus.vocabulary();
  const auto va0 = result.token_embeddings.Row(vocab.Lookup("a0"));
  const auto va1 = result.token_embeddings.Row(vocab.Lookup("a1"));
  const auto vb0 = result.token_embeddings.Row(vocab.Lookup("b0"));
  EXPECT_GT(CosineSimilarity(va0, va1), CosineSimilarity(va0, vb0));
}

TEST(TrainerTest, LossDecreasesAndSeparatesClusters) {
  // Two lexical clusters; triples always pair same-cluster positives with
  // cross-cluster negatives.
  Corpus corpus;
  Rng rng(31);
  const int docs_per_cluster = 20;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < docs_per_cluster; ++i) {
      std::string text;
      for (int w = 0; w < 10; ++w) {
        text += (c == 0 ? "x" : "y") + std::to_string(rng.Uniform(8));
        text += ' ';
      }
      corpus.AddDocument(text);
    }
  }
  EncoderConfig encoder_config;
  encoder_config.dim = 16;
  DocumentEncoder encoder(corpus.vocabulary().size(), encoder_config);
  Rng init_rng(1);
  encoder.InitializeRandomTokens(init_rng, 0.3f);

  std::vector<Triple> triples;
  for (int i = 0; i < docs_per_cluster; ++i) {
    for (int s = 0; s < 2; ++s) {
      const int32_t seed = i;
      const int32_t pos = (i + 1 + s) % docs_per_cluster;
      const int32_t neg =
          docs_per_cluster + static_cast<int32_t>(rng.Uniform(docs_per_cluster));
      triples.push_back({pos, seed, neg});
    }
  }
  TrainerConfig config;
  config.epochs = 12;
  config.adam.learning_rate = 5e-3;
  TripletTrainer trainer(&encoder, &corpus);
  const TrainStats stats = trainer.Train(triples, config);
  ASSERT_EQ(stats.epoch_loss.size(), 12u);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());

  // Held-out pairs: same-cluster distance < cross-cluster distance.
  const auto e0 = encoder.Encode(corpus.Document(2));
  const auto e1 = encoder.Encode(corpus.Document(7));
  const auto f0 = encoder.Encode(corpus.Document(docs_per_cluster + 2));
  EXPECT_LT(L2Distance(e0, e1), L2Distance(e0, f0));
}

TEST(TrainerTest, EmptyTriplesIsNoOp) {
  Corpus corpus;
  corpus.AddDocument("hello world");
  DocumentEncoder encoder(corpus.vocabulary().size(), {});
  const Matrix before = encoder.token_embeddings();
  TripletTrainer trainer(&encoder, &corpus);
  const TrainStats stats = trainer.Train({}, {});
  EXPECT_EQ(stats.num_triples, 0u);
  EXPECT_EQ(encoder.token_embeddings(), before);
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  Rng rng(41);
  Matrix points(60, 2);
  for (size_t i = 0; i < 60; ++i) {
    const float cx = i < 30 ? 0.0f : 10.0f;
    points.At(i, 0) = cx + static_cast<float>(rng.Normal(0, 0.5));
    points.At(i, 1) = static_cast<float>(rng.Normal(0, 0.5));
  }
  KMeansConfig config;
  config.num_clusters = 2;
  const KMeansResult result = RunKMeans(points, config);
  ASSERT_EQ(result.assignment.size(), 60u);
  // All points in each half share one cluster id, and the ids differ.
  for (size_t i = 1; i < 30; ++i) {
    EXPECT_EQ(result.assignment[i], result.assignment[0]);
  }
  for (size_t i = 31; i < 60; ++i) {
    EXPECT_EQ(result.assignment[i], result.assignment[30]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[30]);
}

TEST(KMeansTest, HandlesFewerPointsThanClusters) {
  Matrix points(3, 2, 1.0f);
  KMeansConfig config;
  config.num_clusters = 8;
  const KMeansResult result = RunKMeans(points, config);
  EXPECT_EQ(result.centroids.rows(), 3u);
}

}  // namespace
}  // namespace kpef

// Stress cases for the TaskGroup executor: many concurrent callers,
// random nesting, exceptions and cancellation under load. Kept brief
// (a few seconds) so it can run in every CI configuration, including
// TSan (`ctest -R executor_stress`).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/thread_pool.h"

namespace kpef {
namespace {

TEST(ExecutorStressTest, ManyConcurrentCallersOnSharedPool) {
  ThreadPool pool(4);
  constexpr int kCallers = 8;
  constexpr int kRounds = 25;
  constexpr size_t kCount = 300;
  std::vector<std::atomic<uint64_t>> totals(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        ParallelFor(pool, kCount,
                    [&](size_t i) { totals[c].fetch_add(i + 1); });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  const uint64_t per_round = kCount * (kCount + 1) / 2;
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(totals[c].load(), per_round * kRounds) << "caller " << c;
  }
}

TEST(ExecutorStressTest, RandomDepthNestingFromConcurrentCallers) {
  ThreadPool pool(3);
  std::atomic<uint64_t> leaves{0};
  // Each caller fans out 3 levels deep on the same 3-worker pool; the
  // only way this terminates is helping joins all the way down.
  auto tree = [&](auto&& self, int depth) -> void {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    ParallelFor(pool, 3, [&](size_t) { self(self, depth - 1); });
  };
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] { tree(tree, 3); });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(leaves.load(), 4u * 27u);
}

TEST(ExecutorStressTest, ExceptionStormLeavesPoolUsable) {
  ThreadPool pool(4);
  int caught = 0;
  for (int round = 0; round < 50; ++round) {
    try {
      ParallelFor(pool, 64, [&](size_t i) {
        if (i % 17 == 3) throw std::runtime_error("storm");
      });
    } catch (const std::runtime_error&) {
      ++caught;
    }
  }
  EXPECT_EQ(caught, 50);
  std::atomic<int> counter{0};
  ParallelFor(pool, 1000, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ExecutorStressTest, CancellationUnderLoadNeverWedges) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    CancelToken token = CancelToken::AfterMillis(round % 3 == 0 ? 0.0 : 1.0);
    std::atomic<int> ran{0};
    ParallelFor(
        pool, 5000,
        [&](size_t) {
          ran.fetch_add(1);
          std::this_thread::yield();
        },
        token);
    EXPECT_LE(ran.load(), 5000);
  }
  // And the pool still completes ordinary work afterwards.
  std::atomic<int> counter{0};
  ParallelFor(pool, 500, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 500);
}

TEST(ExecutorStressTest, MixedSubmitAndParallelForTraffic) {
  ThreadPool pool(4);
  std::atomic<uint64_t> submit_total{0};
  std::atomic<uint64_t> loop_total{0};
  std::thread submitter([&] {
    TaskGroup group(pool);
    for (int i = 0; i < 2000; ++i) {
      group.Submit([&submit_total] { submit_total.fetch_add(1); });
    }
    group.Wait();
  });
  std::thread looper([&] {
    for (int round = 0; round < 20; ++round) {
      ParallelFor(pool, 500, [&](size_t) { loop_total.fetch_add(1); });
    }
  });
  submitter.join();
  looper.join();
  EXPECT_EQ(submit_total.load(), 2000u);
  EXPECT_EQ(loop_total.load(), 20u * 500u);
}

}  // namespace
}  // namespace kpef

// EngineGroup tests: the sharded-retrieval equivalence contract
// (DESIGN.md §14 — N-shard scatter + merge is bit-identical to one
// engine over the same corpus) and the RCU generation hot-swap
// (publish, drain, failure keeps the old generation serving).

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/engine_group.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/queries.h"
#include "embed/pretrain.h"

namespace kpef {
namespace {

namespace fs = std::filesystem;

// One tiny trained engine persisted once for the whole binary; every
// test loads groups from its artifact directory.
class EngineGroupTest : public ::testing::Test {
 protected:
  struct Shared {
    Dataset dataset;
    Corpus corpus;
    QuerySet queries;
    fs::path dir_a;   // primary artifact directory
    fs::path dir_b;   // byte-identical copy (a "new" generation)
    fs::path dir_bad; // exists but holds no artifacts

    Shared()
        : dataset(GenerateDataset(TinyProfile())),
          corpus(BuildPaperCorpus(dataset)),
          queries(GenerateQueries(dataset, 6, 23)) {
      Matrix tokens = [&] {
        PretrainConfig config;
        config.dim = 32;
        config.epochs = 6;
        return PretrainTokenEmbeddings(corpus, config).token_embeddings;
      }();
      auto built = ExpertFindingEngine::Build(&dataset, &corpus,
                                              SmallConfig(), &tokens);
      if (!built.ok()) std::abort();
      const fs::path root =
          fs::temp_directory_path() /
          ("kpef_engine_group_test_" + std::to_string(::getpid()));
      dir_a = root / "gen_a";
      dir_b = root / "gen_b";
      dir_bad = root / "empty";
      fs::create_directories(dir_a);
      fs::create_directories(dir_bad);
      if (!(*built)->SaveArtifacts(dir_a.string()).ok()) std::abort();
      std::error_code ec;
      fs::copy(dir_a, dir_b, fs::copy_options::recursive, ec);
      if (ec) std::abort();
    }

    static EngineConfig SmallConfig() {
      EngineConfig config;
      config.k = 3;
      config.seed_fraction = 0.2;
      config.encoder.dim = 32;
      config.trainer.epochs = 2;
      config.top_m = 60;
      config.pg_index.knn_k = 8;
      return config;
    }

    std::vector<std::string> Texts() const {
      std::vector<std::string> texts;
      for (const Query& q : queries.queries) texts.push_back(q.text);
      return texts;
    }
  };

  static Shared& shared() {
    static Shared* s = new Shared();
    return *s;
  }

  /// Serving config whose retrieval is exact, so sharded results must be
  /// bit-identical: brute mode scans every row; PG mode disables SQ8 and
  /// searches with an exhaustive candidate pool.
  static EngineConfig ExactConfig(bool use_pg_index) {
    EngineConfig config = Shared::SmallConfig();
    config.use_pg_index = use_pg_index;
    if (use_pg_index) {
      config.pg_index.quantize = false;
      config.search_ef = shared().dataset.Papers().size();
    }
    return config;
  }

  static std::unique_ptr<EngineGroup> LoadGroup(const EngineConfig& config,
                                                size_t shards,
                                                const fs::path& dir) {
    EngineGroup::Options options;
    options.engine = config;
    options.num_shards = shards;
    auto group = EngineGroup::Load(&shared().dataset, &shared().corpus,
                                   options, dir.string());
    EXPECT_TRUE(group.ok()) << group.status().ToString();
    return group.ok() ? std::move(group).value() : nullptr;
  }

  static void ExpectBitIdentical(
      const std::vector<std::vector<ExpertScore>>& got,
      const std::vector<std::vector<ExpertScore>>& want,
      const std::string& label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (size_t q = 0; q < want.size(); ++q) {
      ASSERT_EQ(got[q].size(), want[q].size()) << label << " query " << q;
      for (size_t i = 0; i < want[q].size(); ++i) {
        EXPECT_EQ(got[q][i].author, want[q][i].author)
            << label << " query " << q << " rank " << i;
        // Bit-exact, not approximate: the merged retrieval feeds the TA
        // ranking the same lists a single engine builds.
        EXPECT_EQ(got[q][i].score, want[q][i].score)
            << label << " query " << q << " rank " << i;
      }
    }
  }
};

// --- Equivalence contract.

TEST_F(EngineGroupTest, ShardedBruteForceMatchesSingleEngineBitExact) {
  Shared& s = shared();
  const EngineConfig config = ExactConfig(/*use_pg_index=*/false);
  auto single = ExpertFindingEngine::LoadFromArtifacts(&s.dataset, &s.corpus,
                                                       config, s.dir_a.string());
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  ThreadPool pool(4);
  const auto want = (*single)->FindExpertsBatch(s.Texts(), 8, nullptr, &pool);
  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    auto group = LoadGroup(config, shards, s.dir_a);
    ASSERT_NE(group, nullptr);
    std::vector<QueryStats> stats;
    const auto got = group->FindExpertsBatch(s.Texts(), 8, &stats, &pool);
    ExpectBitIdentical(got, want, "brute shards=" + std::to_string(shards));
    ASSERT_EQ(stats.size(), s.Texts().size());
    for (const QueryStats& st : stats) {
      EXPECT_FALSE(st.deadline_exceeded);
      EXPECT_GT(st.distance_computations, 0u);
    }
  }
}

TEST_F(EngineGroupTest, ShardedPGIndexMatchesSingleEngineBitExact) {
  Shared& s = shared();
  const EngineConfig config = ExactConfig(/*use_pg_index=*/true);
  auto single = ExpertFindingEngine::LoadFromArtifacts(&s.dataset, &s.corpus,
                                                       config, s.dir_a.string());
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  ThreadPool pool(4);
  const auto want = (*single)->FindExpertsBatch(s.Texts(), 8, nullptr, &pool);
  for (const size_t shards : {2u, 4u}) {
    auto group = LoadGroup(config, shards, s.dir_a);
    ASSERT_NE(group, nullptr);
    const auto got = group->FindExpertsBatch(s.Texts(), 8, nullptr, &pool);
    ExpectBitIdentical(got, want, "pg shards=" + std::to_string(shards));
  }
}

TEST_F(EngineGroupTest, SingleShardDelegatesToLoadedEngine) {
  Shared& s = shared();
  auto group = LoadGroup(Shared::SmallConfig(), 1, s.dir_a);
  ASSERT_NE(group, nullptr);
  auto snapshot = group->Snapshot();
  EXPECT_TRUE(snapshot->shards.empty());
  EXPECT_NE(snapshot->engine->index(), nullptr);
  const auto results = group->FindExpertsBatch(s.Texts(), 5);
  ASSERT_EQ(results.size(), s.Texts().size());
  for (const auto& r : results) EXPECT_GT(r.size(), 0u);
}

// --- Generation lifecycle.

TEST_F(EngineGroupTest, ReloadPublishesNewGenerationAndDrainsOld) {
  Shared& s = shared();
  auto group = LoadGroup(ExactConfig(false), 2, s.dir_a);
  ASSERT_NE(group, nullptr);
  const auto before = group->FindExpertsBatch(s.Texts(), 6);

  auto old_gen = group->Snapshot();
  EXPECT_EQ(old_gen->id, 1u);
  std::weak_ptr<const EngineGroup::Generation> old_weak = old_gen;

  const Status reloaded = group->Reload(s.dir_b.string());
  ASSERT_TRUE(reloaded.ok()) << reloaded.ToString();
  EXPECT_EQ(group->generation(), 2u);
  EXPECT_EQ(group->Snapshot()->artifact_dir, s.dir_b.string());

  // The old generation survives exactly as long as someone holds it
  // (an in-flight batch); releasing the last snapshot destroys it.
  EXPECT_FALSE(old_weak.expired());
  old_gen.reset();
  EXPECT_TRUE(old_weak.expired());

  // dir_b is a byte-copy of dir_a, so the swap is invisible to results.
  const auto after = group->FindExpertsBatch(s.Texts(), 6);
  ExpectBitIdentical(after, before, "post-reload");
}

TEST_F(EngineGroupTest, FailedReloadKeepsServingOldGeneration) {
  Shared& s = shared();
  auto group = LoadGroup(ExactConfig(false), 2, s.dir_a);
  ASSERT_NE(group, nullptr);
  const auto before = group->FindExpertsBatch(s.Texts(), 6);
  const uint64_t gen_before = group->generation();

  const Status failed = group->Reload(s.dir_bad.string());
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(group->generation(), gen_before);

  const auto after = group->FindExpertsBatch(s.Texts(), 6);
  ExpectBitIdentical(after, before, "post-failed-reload");

  // A later good reload still gets the next consecutive id: the failed
  // attempt must not burn a generation number.
  ASSERT_TRUE(group->Reload(s.dir_a.string()).ok());
  EXPECT_EQ(group->generation(), gen_before + 1);
}

TEST_F(EngineGroupTest, InfoCarriesGenerationShardsAndQueryTally) {
  Shared& s = shared();
  auto group = LoadGroup(ExactConfig(false), 4, s.dir_a);
  ASSERT_NE(group, nullptr);
  EngineInfo info = group->Info();
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.num_shards, 4u);
  EXPECT_EQ(info.artifact_dir, s.dir_a.string());
  EXPECT_EQ(info.generation_queries, 0u);
  EXPECT_EQ(info.num_papers, s.dataset.Papers().size());

  (void)group->FindExpertsBatch(s.Texts(), 5);
  info = group->Info();
  EXPECT_EQ(info.generation_queries, s.Texts().size());

  // The tally is per generation: a reload starts a fresh counter.
  ASSERT_TRUE(group->Reload(s.dir_b.string()).ok());
  info = group->Info();
  EXPECT_EQ(info.generation, 2u);
  EXPECT_EQ(info.generation_queries, 0u);
}

}  // namespace
}  // namespace kpef

// Parameterized property sweeps over the ANN structures: for a grid of
// dataset shapes and search budgets, the graph indexes must respect their
// recall/extra-work contracts against brute force.

#include <functional>
#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "ann/brute_force.h"
#include "ann/hnsw.h"
#include "ann/pg_index.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace kpef {
namespace {

struct Shape {
  size_t n;
  size_t dim;
  size_t clusters;
  uint64_t seed;
};

Matrix MakePoints(const Shape& shape) {
  Rng rng(shape.seed);
  Matrix centers(shape.clusters, shape.dim);
  for (size_t r = 0; r < centers.rows(); ++r) {
    for (float& v : centers.Row(r)) v = static_cast<float>(rng.Normal(0, 4));
  }
  Matrix points(shape.n, shape.dim);
  for (size_t i = 0; i < shape.n; ++i) {
    const size_t c = rng.Uniform(shape.clusters);
    for (size_t k = 0; k < shape.dim; ++k) {
      points.At(i, k) = centers.At(c, k) + static_cast<float>(rng.Normal(0, 1));
    }
  }
  return points;
}

// Shared point sets per shape (index construction is the slow part).
const Matrix& PointsFor(const Shape& shape) {
  static auto* cache = new std::map<std::tuple<size_t, size_t, size_t, uint64_t>,
                                    Matrix>();
  const auto key = std::make_tuple(shape.n, shape.dim, shape.clusters,
                                   shape.seed);
  auto it = cache->find(key);
  if (it == cache->end()) it = cache->emplace(key, MakePoints(shape)).first;
  return it->second;
}

double MeanRecall(const Matrix& points,
                  const std::function<std::vector<Neighbor>(
                      std::span<const float>)>& search,
                  uint64_t seed, int num_queries = 12, size_t k = 10) {
  Rng rng(seed);
  double total = 0.0;
  for (int q = 0; q < num_queries; ++q) {
    std::vector<float> query(points.cols());
    const size_t anchor = rng.Uniform(points.rows());
    for (size_t i = 0; i < query.size(); ++i) {
      query[i] = points.At(anchor, i) + static_cast<float>(rng.Normal(0, 0.5));
    }
    total += ComputeRecall(search(query), BruteForceSearch(points, query, k));
  }
  return total / num_queries;
}

class AnnRecallSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(AnnRecallSweep, PGIndexRecallContract) {
  const Matrix& points = PointsFor(GetParam());
  PGIndexConfig config;
  config.knn_k = 10;
  const PGIndex index = PGIndex::Build(points, config);
  const double recall = MeanRecall(
      points,
      [&](std::span<const float> q) { return index.Search(q, 10, 60); },
      GetParam().seed + 1);
  EXPECT_GT(recall, 0.85) << "n=" << GetParam().n;
}

TEST_P(AnnRecallSweep, HnswRecallContract) {
  const Matrix& points = PointsFor(GetParam());
  HnswConfig config;
  config.m = 10;
  const Hnsw index = Hnsw::Build(points, config);
  const double recall = MeanRecall(
      points,
      [&](std::span<const float> q) { return index.Search(q, 10, 60); },
      GetParam().seed + 2);
  EXPECT_GT(recall, 0.85) << "n=" << GetParam().n;
}

TEST_P(AnnRecallSweep, NNDescentRecallContract) {
  const Matrix& points = PointsFor(GetParam());
  NNDescentConfig config;
  config.k = 10;
  const KnnGraph graph = BuildKnnGraph(points, config);
  EXPECT_GT(KnnGraphRecall(points, graph), 0.85) << "n=" << GetParam().n;
}

TEST_P(AnnRecallSweep, GraphSearchBeatsBruteForceWork) {
  const Matrix& points = PointsFor(GetParam());
  PGIndexConfig config;
  config.knn_k = 10;
  const PGIndex index = PGIndex::Build(points, config);
  Rng rng(GetParam().seed + 3);
  std::vector<float> query(points.cols());
  for (float& v : query) v = static_cast<float>(rng.Normal(0, 2));
  PGIndex::SearchStats stats;
  index.Search(query, 10, 40, &stats);
  EXPECT_LT(stats.distance_computations, points.rows());
}

// The parallel NNDescent build promises bit-identical output for any
// pool size (nndescent.h): every stochastic choice is per-node seeded and
// updates apply in a fixed order, so graphs — including float distances,
// iteration counts, and distance tallies — must match exactly.
TEST(NNDescentDeterminismTest, BitIdenticalAcrossThreadCounts) {
  const Matrix& points = PointsFor(Shape{600, 24, 8, 77});
  NNDescentConfig config;
  config.k = 10;
  ThreadPool pool1(1), pool2(2), pool8(8);
  config.pool = &pool1;
  const KnnGraph g1 = BuildKnnGraph(points, config);
  config.pool = &pool2;
  const KnnGraph g2 = BuildKnnGraph(points, config);
  config.pool = &pool8;
  const KnnGraph g8 = BuildKnnGraph(points, config);
  EXPECT_EQ(g1.iterations_run, g2.iterations_run);
  EXPECT_EQ(g1.iterations_run, g8.iterations_run);
  EXPECT_EQ(g1.distance_computations, g2.distance_computations);
  EXPECT_EQ(g1.distance_computations, g8.distance_computations);
  EXPECT_EQ(g1.neighbors, g2.neighbors);  // Neighbor == is exact (id+float)
  EXPECT_EQ(g1.neighbors, g8.neighbors);
}

// The full PG-Index build rides on the same guarantee: same graph, same
// navigating node, same adjacency regardless of the pool.
TEST(NNDescentDeterminismTest, PGIndexBuildDeterministicAcrossThreadCounts) {
  const Matrix& points = PointsFor(Shape{500, 16, 8, 2});
  PGIndexConfig config;
  config.knn_k = 10;
  ThreadPool pool1(1), pool8(8);
  config.nndescent.pool = &pool1;
  const PGIndex a = PGIndex::Build(points, config);
  config.nndescent.pool = &pool8;
  const PGIndex b = PGIndex::Build(points, config);
  ASSERT_EQ(a.NumPoints(), b.NumPoints());
  EXPECT_EQ(a.navigating_node(), b.navigating_node());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  for (size_t v = 0; v < a.NumPoints(); ++v) {
    EXPECT_EQ(a.NeighborsOf(static_cast<int32_t>(v)),
              b.NeighborsOf(static_cast<int32_t>(v)))
        << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AnnRecallSweep,
    ::testing::Values(Shape{200, 8, 4, 1}, Shape{500, 16, 8, 2},
                      Shape{800, 32, 6, 3}, Shape{400, 64, 10, 4},
                      Shape{1000, 12, 16, 5}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.n) + "_d" +
             std::to_string(info.param.dim) + "_c" +
             std::to_string(info.param.clusters);
    });

}  // namespace
}  // namespace kpef

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "metapath/meta_path.h"
#include "metapath/p_neighbor.h"
#include "metapath/projection.h"
#include "test_graphs.h"

namespace kpef {
namespace {

class MetaPathParseTest : public ::testing::Test {
 protected:
  MetaPathParseTest() : ids_(AcademicSchema::Make()) {}
  AcademicSchema ids_;
};

TEST_F(MetaPathParseTest, ParsesCoAuthorship) {
  auto path = MetaPath::Parse(ids_.schema, "P-A-P");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->NumHops(), 2u);
  EXPECT_EQ(path->SourceType(), ids_.paper);
  EXPECT_EQ(path->TargetType(), ids_.paper);
  EXPECT_TRUE(path->IsSymmetricEndpoints());
  EXPECT_EQ(path->ToString(ids_.schema), "P-A-P");
  EXPECT_EQ(path->edge_types()[0], ids_.write);
}

TEST_F(MetaPathParseTest, ParsesCitation) {
  auto path = MetaPath::Parse(ids_.schema, "P-P");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->NumHops(), 1u);
  EXPECT_EQ(path->edge_types()[0], ids_.cite);
}

TEST_F(MetaPathParseTest, ParsesLongerPath) {
  auto path = MetaPath::Parse(ids_.schema, "P-A-P-T-P");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->NumHops(), 4u);
}

TEST_F(MetaPathParseTest, RejectsUnknownType) {
  EXPECT_FALSE(MetaPath::Parse(ids_.schema, "P-X-P").ok());
}

TEST_F(MetaPathParseTest, RejectsDisconnectedTypes) {
  // No A-T edge type exists.
  EXPECT_FALSE(MetaPath::Parse(ids_.schema, "A-T").ok());
}

TEST_F(MetaPathParseTest, RejectsSingleton) {
  EXPECT_FALSE(MetaPath::Parse(ids_.schema, "P").ok());
}

TEST_F(MetaPathParseTest, RejectsEmptyComponent) {
  EXPECT_FALSE(MetaPath::Parse(ids_.schema, "P--P").ok());
  EXPECT_FALSE(MetaPath::Parse(ids_.schema, "-P").ok());
}

TEST_F(MetaPathParseTest, EqualityComparison) {
  auto a = MetaPath::Parse(ids_.schema, "P-A-P");
  auto b = MetaPath::Parse(ids_.schema, "P-A-P");
  auto c = MetaPath::Parse(ids_.schema, "P-T-P");
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
}

class PNeighborTest : public ::testing::Test {
 protected:
  PNeighborTest() : g_(Figure2Graph::Make()) {}

  std::set<NodeId> NeighborSet(const char* path_text, NodeId v) {
    auto path = MetaPath::Parse(g_.ids.schema, path_text);
    PNeighborFinder finder(g_.graph, *path);
    const auto nbrs = finder.Neighbors(v);
    return {nbrs.begin(), nbrs.end()};
  }

  Figure2Graph g_;
};

TEST_F(PNeighborTest, CoAuthorNeighborsOfCliqueMember) {
  EXPECT_EQ(NeighborSet("P-A-P", g_.papers[0]),
            (std::set<NodeId>{g_.papers[1], g_.papers[2], g_.papers[3]}));
}

TEST_F(PNeighborTest, BridgePaperHasTwoNeighbors) {
  EXPECT_EQ(NeighborSet("P-A-P", g_.papers[4]),
            (std::set<NodeId>{g_.papers[3], g_.papers[5]}));
}

TEST_F(PNeighborTest, IsolatedPaperHasNoCoAuthorNeighbors) {
  EXPECT_TRUE(NeighborSet("P-A-P", g_.papers[9]).empty());
}

TEST_F(PNeighborTest, SelfNeverIncluded) {
  for (NodeId p : g_.papers) {
    const auto set = NeighborSet("P-A-P", p);
    EXPECT_EQ(set.count(p), 0u);
  }
}

TEST_F(PNeighborTest, TopicNeighbors) {
  // p9 shares topic t1 with p5..p8.
  EXPECT_EQ(NeighborSet("P-T-P", g_.papers[9]),
            (std::set<NodeId>{g_.papers[5], g_.papers[6], g_.papers[7],
                              g_.papers[8]}));
}

TEST_F(PNeighborTest, CitationNeighborsAreUndirected) {
  EXPECT_EQ(NeighborSet("P-P", g_.papers[0]),
            (std::set<NodeId>{g_.papers[1], g_.papers[2]}));
  EXPECT_EQ(NeighborSet("P-P", g_.papers[1]),
            (std::set<NodeId>{g_.papers[0]}));
}

TEST_F(PNeighborTest, DegreeMatchesNeighborCount) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-A-P");
  PNeighborFinder finder(g_.graph, *path);
  for (NodeId p : g_.papers) {
    EXPECT_EQ(finder.Degree(p), finder.Neighbors(p).size());
  }
}

TEST_F(PNeighborTest, DegreeAtLeastMatchesDegree) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-A-P");
  PNeighborFinder finder(g_.graph, *path);
  for (NodeId p : g_.papers) {
    const size_t deg = finder.Degree(p);
    for (size_t threshold : {0u, 1u, 2u, 3u, 4u, 5u}) {
      EXPECT_EQ(finder.DegreeAtLeast(p, threshold), deg >= threshold)
          << "paper " << p << " threshold " << threshold;
    }
  }
}

TEST_F(PNeighborTest, RepeatedQueriesAreConsistent) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-A-P");
  PNeighborFinder finder(g_.graph, *path);
  const auto first = finder.Neighbors(g_.papers[0]);
  const auto second = finder.Neighbors(g_.papers[0]);
  EXPECT_EQ(first, second);
}

TEST_F(PNeighborTest, EdgesScannedGrows) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-A-P");
  PNeighborFinder finder(g_.graph, *path);
  const uint64_t before = finder.edges_scanned();
  finder.Neighbors(g_.papers[0]);
  EXPECT_GT(finder.edges_scanned(), before);
}

TEST_F(PNeighborTest, ProjectionMatchesPerNodeNeighbors) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-A-P");
  const HomogeneousProjection proj = ProjectHomogeneous(g_.graph, *path);
  ASSERT_EQ(proj.NumNodes(), g_.papers.size());
  PNeighborFinder finder(g_.graph, *path);
  for (size_t i = 0; i < proj.NumNodes(); ++i) {
    std::set<int32_t> expected;
    for (NodeId u : finder.Neighbors(proj.nodes[i])) {
      expected.insert(static_cast<int32_t>(g_.graph.LocalIndex(u)));
    }
    const std::set<int32_t> got(proj.adjacency[i].begin(),
                                proj.adjacency[i].end());
    EXPECT_EQ(got, expected);
  }
}

TEST_F(PNeighborTest, ProjectionIsSymmetric) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-T-P");
  const HomogeneousProjection proj = ProjectHomogeneous(g_.graph, *path);
  for (size_t i = 0; i < proj.NumNodes(); ++i) {
    for (int32_t j : proj.adjacency[i]) {
      EXPECT_TRUE(std::binary_search(proj.adjacency[j].begin(),
                                     proj.adjacency[j].end(),
                                     static_cast<int32_t>(i)));
    }
  }
}

TEST_F(PNeighborTest, UnionProjectionMergesRelations) {
  auto pap = MetaPath::Parse(g_.ids.schema, "P-A-P");
  auto pp = MetaPath::Parse(g_.ids.schema, "P-P");
  const auto proj_a = ProjectHomogeneous(g_.graph, *pap);
  const auto proj_c = ProjectHomogeneous(g_.graph, *pp);
  const auto merged = UnionProjections({proj_a, proj_c});
  // p0's union neighbors: co-author {p1,p2,p3} plus citation {p1,p2}.
  const size_t p0 = g_.graph.LocalIndex(g_.papers[0]);
  EXPECT_EQ(merged.adjacency[p0].size(), 3u);
  // No duplicates anywhere.
  for (const auto& nbrs : merged.adjacency) {
    std::set<int32_t> unique(nbrs.begin(), nbrs.end());
    EXPECT_EQ(unique.size(), nbrs.size());
  }
}

TEST(PNeighborDatasetTest, WorksOnGeneratedDataset) {
  const Dataset dataset = GenerateDataset(TinyProfile());
  auto path = MetaPath::Parse(dataset.graph.schema(), "P-A-P");
  ASSERT_TRUE(path.ok());
  PNeighborFinder finder(dataset.graph, *path);
  size_t nonzero = 0;
  for (NodeId p : dataset.Papers()) {
    nonzero += finder.Degree(p) > 0;
  }
  // Group-based generation makes nearly all papers co-author-connected.
  EXPECT_GT(nonzero, dataset.Papers().size() / 2);
}

}  // namespace
}  // namespace kpef

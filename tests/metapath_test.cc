#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "metapath/meta_path.h"
#include "metapath/p_neighbor.h"
#include "metapath/projection.h"
#include "test_graphs.h"

namespace kpef {
namespace {

class MetaPathParseTest : public ::testing::Test {
 protected:
  MetaPathParseTest() : ids_(AcademicSchema::Make()) {}
  AcademicSchema ids_;
};

TEST_F(MetaPathParseTest, ParsesCoAuthorship) {
  auto path = MetaPath::Parse(ids_.schema, "P-A-P");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->NumHops(), 2u);
  EXPECT_EQ(path->SourceType(), ids_.paper);
  EXPECT_EQ(path->TargetType(), ids_.paper);
  EXPECT_TRUE(path->IsSymmetricEndpoints());
  EXPECT_EQ(path->ToString(ids_.schema), "P-A-P");
  EXPECT_EQ(path->edge_types()[0], ids_.write);
}

TEST_F(MetaPathParseTest, ParsesCitation) {
  auto path = MetaPath::Parse(ids_.schema, "P-P");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->NumHops(), 1u);
  EXPECT_EQ(path->edge_types()[0], ids_.cite);
}

TEST_F(MetaPathParseTest, ParsesLongerPath) {
  auto path = MetaPath::Parse(ids_.schema, "P-A-P-T-P");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->NumHops(), 4u);
}

TEST_F(MetaPathParseTest, RejectsUnknownType) {
  EXPECT_FALSE(MetaPath::Parse(ids_.schema, "P-X-P").ok());
}

TEST_F(MetaPathParseTest, RejectsDisconnectedTypes) {
  // No A-T edge type exists.
  EXPECT_FALSE(MetaPath::Parse(ids_.schema, "A-T").ok());
}

TEST_F(MetaPathParseTest, RejectsSingleton) {
  EXPECT_FALSE(MetaPath::Parse(ids_.schema, "P").ok());
}

TEST_F(MetaPathParseTest, RejectsEmptyComponent) {
  EXPECT_FALSE(MetaPath::Parse(ids_.schema, "P--P").ok());
  EXPECT_FALSE(MetaPath::Parse(ids_.schema, "-P").ok());
}

TEST_F(MetaPathParseTest, EqualityComparison) {
  auto a = MetaPath::Parse(ids_.schema, "P-A-P");
  auto b = MetaPath::Parse(ids_.schema, "P-A-P");
  auto c = MetaPath::Parse(ids_.schema, "P-T-P");
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
}

class PNeighborTest : public ::testing::Test {
 protected:
  PNeighborTest() : g_(Figure2Graph::Make()) {}

  std::set<NodeId> NeighborSet(const char* path_text, NodeId v) {
    auto path = MetaPath::Parse(g_.ids.schema, path_text);
    PNeighborFinder finder(g_.graph, *path);
    const auto nbrs = finder.Neighbors(v);
    return {nbrs.begin(), nbrs.end()};
  }

  Figure2Graph g_;
};

TEST_F(PNeighborTest, CoAuthorNeighborsOfCliqueMember) {
  EXPECT_EQ(NeighborSet("P-A-P", g_.papers[0]),
            (std::set<NodeId>{g_.papers[1], g_.papers[2], g_.papers[3]}));
}

TEST_F(PNeighborTest, BridgePaperHasTwoNeighbors) {
  EXPECT_EQ(NeighborSet("P-A-P", g_.papers[4]),
            (std::set<NodeId>{g_.papers[3], g_.papers[5]}));
}

TEST_F(PNeighborTest, IsolatedPaperHasNoCoAuthorNeighbors) {
  EXPECT_TRUE(NeighborSet("P-A-P", g_.papers[9]).empty());
}

TEST_F(PNeighborTest, SelfNeverIncluded) {
  for (NodeId p : g_.papers) {
    const auto set = NeighborSet("P-A-P", p);
    EXPECT_EQ(set.count(p), 0u);
  }
}

TEST_F(PNeighborTest, TopicNeighbors) {
  // p9 shares topic t1 with p5..p8.
  EXPECT_EQ(NeighborSet("P-T-P", g_.papers[9]),
            (std::set<NodeId>{g_.papers[5], g_.papers[6], g_.papers[7],
                              g_.papers[8]}));
}

TEST_F(PNeighborTest, CitationNeighborsAreUndirected) {
  EXPECT_EQ(NeighborSet("P-P", g_.papers[0]),
            (std::set<NodeId>{g_.papers[1], g_.papers[2]}));
  EXPECT_EQ(NeighborSet("P-P", g_.papers[1]),
            (std::set<NodeId>{g_.papers[0]}));
}

TEST_F(PNeighborTest, DegreeMatchesNeighborCount) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-A-P");
  PNeighborFinder finder(g_.graph, *path);
  for (NodeId p : g_.papers) {
    EXPECT_EQ(finder.Degree(p), finder.Neighbors(p).size());
  }
}

TEST_F(PNeighborTest, DegreeAtLeastMatchesDegree) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-A-P");
  PNeighborFinder finder(g_.graph, *path);
  for (NodeId p : g_.papers) {
    const size_t deg = finder.Degree(p);
    for (size_t threshold : {0u, 1u, 2u, 3u, 4u, 5u}) {
      EXPECT_EQ(finder.DegreeAtLeast(p, threshold), deg >= threshold)
          << "paper " << p << " threshold " << threshold;
    }
  }
}

TEST_F(PNeighborTest, RepeatedQueriesAreConsistent) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-A-P");
  PNeighborFinder finder(g_.graph, *path);
  const auto first = finder.Neighbors(g_.papers[0]);
  const auto second = finder.Neighbors(g_.papers[0]);
  EXPECT_EQ(first, second);
}

TEST_F(PNeighborTest, EdgesScannedGrows) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-A-P");
  PNeighborFinder finder(g_.graph, *path);
  const uint64_t before = finder.edges_scanned();
  finder.Neighbors(g_.papers[0]);
  EXPECT_GT(finder.edges_scanned(), before);
}

TEST_F(PNeighborTest, ProjectionMatchesPerNodeNeighbors) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-A-P");
  const HomogeneousProjection proj = ProjectHomogeneous(g_.graph, *path);
  ASSERT_EQ(proj.NumNodes(), g_.papers.size());
  PNeighborFinder finder(g_.graph, *path);
  for (size_t i = 0; i < proj.NumNodes(); ++i) {
    const int32_t local = static_cast<int32_t>(i);
    std::set<int32_t> expected;
    for (NodeId u : finder.Neighbors(proj.GlobalId(local))) {
      expected.insert(static_cast<int32_t>(g_.graph.LocalIndex(u)));
    }
    const auto row = proj.Neighbors(local);
    const std::set<int32_t> got(row.begin(), row.end());
    EXPECT_EQ(got, expected);
    EXPECT_EQ(proj.Degree(local), static_cast<int32_t>(expected.size()));
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  }
}

TEST_F(PNeighborTest, ProjectionIsSymmetric) {
  auto path = MetaPath::Parse(g_.ids.schema, "P-T-P");
  const HomogeneousProjection proj = ProjectHomogeneous(g_.graph, *path);
  for (size_t i = 0; i < proj.NumNodes(); ++i) {
    for (int32_t j : proj.Neighbors(static_cast<int32_t>(i))) {
      const auto back = proj.Neighbors(j);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(),
                                     static_cast<int32_t>(i)));
    }
  }
}

TEST_F(PNeighborTest, UnionProjectionMergesRelations) {
  auto pap = MetaPath::Parse(g_.ids.schema, "P-A-P");
  auto pp = MetaPath::Parse(g_.ids.schema, "P-P");
  std::vector<HomogeneousProjection> projections;
  projections.push_back(ProjectHomogeneous(g_.graph, *pap));
  projections.push_back(ProjectHomogeneous(g_.graph, *pp));
  const auto merged = UnionProjections(std::move(projections));
  // p0's union neighbors: co-author {p1,p2,p3} plus citation {p1,p2}.
  const int32_t p0 = static_cast<int32_t>(g_.graph.LocalIndex(g_.papers[0]));
  EXPECT_EQ(merged.Degree(p0), 3);
  // Rows stay sorted and duplicate-free.
  for (size_t i = 0; i < merged.NumNodes(); ++i) {
    const auto nbrs = merged.Neighbors(static_cast<int32_t>(i));
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    const std::set<int32_t> unique(nbrs.begin(), nbrs.end());
    EXPECT_EQ(unique.size(), nbrs.size());
  }
}

TEST_F(PNeighborTest, UnionOfSingleProjectionIsIdentity) {
  auto pap = MetaPath::Parse(g_.ids.schema, "P-A-P");
  const auto proj = ProjectHomogeneous(g_.graph, *pap);
  std::vector<HomogeneousProjection> one;
  one.push_back(ProjectHomogeneous(g_.graph, *pap));
  const auto merged = UnionProjections(std::move(one));
  ASSERT_EQ(merged.NumNodes(), proj.NumNodes());
  for (size_t i = 0; i < proj.NumNodes(); ++i) {
    const auto a = proj.Neighbors(static_cast<int32_t>(i));
    const auto b = merged.Neighbors(static_cast<int32_t>(i));
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(ProjectionBuildTest, BudgetRejectionFallsBackToNullopt) {
  const Figure2Graph g = Figure2Graph::Make();
  auto path = MetaPath::Parse(g.ids.schema, "P-A-P");
  ProjectionOptions tiny;
  tiny.max_bytes = 1;  // nothing fits
  EXPECT_FALSE(TryProjectHomogeneous(g.graph, *path, tiny).has_value());
  ProjectionOptions roomy;
  roomy.max_bytes = 64u << 20;
  const auto proj = TryProjectHomogeneous(g.graph, *path, roomy);
  ASSERT_TRUE(proj.has_value());
  EXPECT_LE(proj->MemoryUsageBytes(), roomy.max_bytes);
  EXPECT_EQ(proj->MemoryUsageBytes(),
            HomogeneousProjection::EstimateBytes(proj->NumNodes(),
                                                 proj->NumEntries()));
}

TEST(ProjectionBuildTest, DeterministicAcrossThreadCounts) {
  const Dataset dataset = GenerateDataset(TinyProfile());
  auto path = MetaPath::Parse(dataset.graph.schema(), "P-A-P");
  ASSERT_TRUE(path.ok());
  ThreadPool sequential(1);
  ThreadPool wide(8);
  ProjectionOptions seq_opts;
  seq_opts.pool = &sequential;
  ProjectionOptions wide_opts;
  wide_opts.pool = &wide;
  const auto a = ProjectHomogeneous(dataset.graph, *path, seq_opts);
  const auto b = ProjectHomogeneous(dataset.graph, *path, wide_opts);
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEntries(), b.NumEntries());
  for (size_t i = 0; i < a.NumNodes(); ++i) {
    const auto ra = a.Neighbors(static_cast<int32_t>(i));
    const auto rb = b.Neighbors(static_cast<int32_t>(i));
    ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
        << "row " << i;
  }
}

TEST(PNeighborDatasetTest, WorksOnGeneratedDataset) {
  const Dataset dataset = GenerateDataset(TinyProfile());
  auto path = MetaPath::Parse(dataset.graph.schema(), "P-A-P");
  ASSERT_TRUE(path.ok());
  PNeighborFinder finder(dataset.graph, *path);
  size_t nonzero = 0;
  for (NodeId p : dataset.Papers()) {
    nonzero += finder.Degree(p) > 0;
  }
  // Group-based generation makes nearly all papers co-author-connected.
  EXPECT_GT(nonzero, dataset.Papers().size() / 2);
}

}  // namespace
}  // namespace kpef

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <set>

#include <gtest/gtest.h>

#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/queries.h"
#include "metapath/meta_path.h"
#include "metapath/p_neighbor.h"

namespace kpef {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  DatasetTest() : dataset_(GenerateDataset(TinyProfile())) {}
  Dataset dataset_;
};

TEST_F(DatasetTest, StatsMatchConfig) {
  const DatasetStats stats = ComputeStats(dataset_);
  EXPECT_EQ(stats.papers, dataset_.config.num_papers);
  EXPECT_EQ(stats.experts, dataset_.config.num_authors);
  EXPECT_EQ(stats.venues, dataset_.config.num_venues);
  EXPECT_EQ(stats.topics, dataset_.config.num_topics);
  EXPECT_GT(stats.relations, stats.papers);  // at least 1+ edges per paper
}

TEST_F(DatasetTest, DeterministicForSameSeed) {
  const Dataset again = GenerateDataset(TinyProfile());
  EXPECT_EQ(again.graph.NumNodes(), dataset_.graph.NumNodes());
  EXPECT_EQ(again.graph.NumEdges(), dataset_.graph.NumEdges());
  for (NodeId p : dataset_.Papers()) {
    EXPECT_EQ(again.graph.Label(p), dataset_.graph.Label(p));
  }
}

TEST_F(DatasetTest, DifferentSeedsDiffer) {
  DatasetConfig config = TinyProfile();
  config.seed = 12345;
  const Dataset other = GenerateDataset(config);
  bool any_label_differs = false;
  for (NodeId p : dataset_.Papers()) {
    any_label_differs |= other.graph.Label(p) != dataset_.graph.Label(p);
  }
  EXPECT_TRUE(any_label_differs);
}

TEST_F(DatasetTest, EveryPaperHasTextVenueAndTopic) {
  for (NodeId p : dataset_.Papers()) {
    EXPECT_FALSE(dataset_.graph.Label(p).empty());
    EXPECT_EQ(dataset_.graph.Degree(p, dataset_.ids.publish), 1u);
    EXPECT_EQ(dataset_.graph.Degree(p, dataset_.ids.mention), 1u);
  }
}

TEST_F(DatasetTest, AuthorsAreUniquePerPaper) {
  for (NodeId p : dataset_.Papers()) {
    const auto authors = dataset_.graph.Neighbors(p, dataset_.ids.write);
    std::set<NodeId> unique(authors.begin(), authors.end());
    EXPECT_EQ(unique.size(), authors.size());
    EXPECT_GE(authors.size(), 1u);
  }
}

TEST_F(DatasetTest, CitationsPointToEarlierPapers) {
  // Paper creation order = LocalIndex order; Cite edges were inserted
  // (later -> earlier), so every paper's citation neighbors with larger
  // LocalIndex are papers citing it.
  const auto& papers = dataset_.Papers();
  size_t total_cites = dataset_.graph.NumEdgesOfType(dataset_.ids.cite);
  EXPECT_GT(total_cites, 0u);
  (void)papers;
}

TEST_F(DatasetTest, PrimaryTopicsWithinRange) {
  for (int32_t t : dataset_.paper_primary_topic) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, static_cast<int32_t>(dataset_.config.num_topics));
  }
  for (int32_t t : dataset_.author_primary_topic) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, static_cast<int32_t>(dataset_.config.num_topics));
  }
}

TEST_F(DatasetTest, PaperMentionsItsPrimaryTopic) {
  const auto& topics = dataset_.graph.NodesOfType(dataset_.ids.topic);
  for (NodeId p : dataset_.Papers()) {
    const size_t idx = dataset_.graph.LocalIndex(p);
    const NodeId primary = topics[dataset_.paper_primary_topic[idx]];
    const auto mentioned = dataset_.graph.Neighbors(p, dataset_.ids.mention);
    EXPECT_NE(std::find(mentioned.begin(), mentioned.end(), primary),
              mentioned.end());
  }
}

TEST_F(DatasetTest, TopicalTokenFractionMatchesConfig) {
  // Topical tokens use the "w<idx>" pool, background tokens "c<idx>"; the
  // observed mix should track topic_word_prob.
  size_t topical = 0, total_tokens = 0;
  for (NodeId p : dataset_.Papers()) {
    const std::string& label = dataset_.graph.Label(p);
    size_t start = 0;
    while (start < label.size()) {
      size_t end = label.find(' ', start);
      if (end == std::string::npos) end = label.size();
      ++total_tokens;
      if (label[start] == 'w') ++topical;
      start = end + 1;
    }
  }
  const double fraction = static_cast<double>(topical) / total_tokens;
  EXPECT_NEAR(fraction, dataset_.config.topic_word_prob, 0.05);
}

TEST_F(DatasetTest, SameTopicPapersShareMoreTopicalWords) {
  // Lexical separability: two same-topic papers must overlap more (in
  // topical vocabulary) than two papers of distant topics, but topics
  // must remain confusable (overlap < identical).
  auto topical_set = [&](NodeId p) {
    std::set<std::string> words;
    const std::string& label = dataset_.graph.Label(p);
    size_t start = 0;
    while (start < label.size()) {
      size_t end = label.find(' ', start);
      if (end == std::string::npos) end = label.size();
      if (label[start] == 'w') words.insert(label.substr(start, end - start));
      start = end + 1;
    }
    return words;
  };
  auto overlap = [&](const std::set<std::string>& a,
                     const std::set<std::string>& b) {
    size_t inter = 0;
    for (const auto& w : a) inter += b.count(w);
    return static_cast<double>(inter) /
           static_cast<double>(std::max<size_t>(1, std::min(a.size(), b.size())));
  };
  // Average over pairs grouped by planted primary topic.
  double same_total = 0, diff_total = 0;
  size_t same_count = 0, diff_count = 0;
  const auto& papers = dataset_.Papers();
  for (size_t i = 0; i + 1 < papers.size(); i += 2) {
    const auto a = topical_set(papers[i]);
    const auto b = topical_set(papers[i + 1]);
    const int32_t ta = dataset_.paper_primary_topic[i];
    const int32_t tb = dataset_.paper_primary_topic[i + 1];
    if (ta == tb) {
      same_total += overlap(a, b);
      ++same_count;
    } else if (std::abs(ta - tb) > 2) {  // clearly distant topics
      diff_total += overlap(a, b);
      ++diff_count;
    }
  }
  ASSERT_GT(same_count, 0u);
  ASSERT_GT(diff_count, 0u);
  EXPECT_GT(same_total / same_count, diff_total / diff_count);
}

TEST_F(DatasetTest, ScaledCopyScalesCounts) {
  const DatasetConfig half = dataset_.config.ScaledCopy(0.5, "_half");
  EXPECT_EQ(half.num_papers, dataset_.config.num_papers / 2);
  EXPECT_EQ(half.name, "tiny_half");
  const DatasetConfig same = dataset_.config.ScaledCopy(1.0, "");
  EXPECT_EQ(same.num_papers, dataset_.config.num_papers);
}

TEST_F(DatasetTest, ProfilesHaveDistinctShapes) {
  const DatasetConfig aminer = AminerProfile();
  const DatasetConfig dblp = DblpProfile();
  const DatasetConfig acm = AcmProfile();
  EXPECT_LT(aminer.num_topics, dblp.num_topics);
  EXPECT_GT(acm.num_papers, dblp.num_papers);
  EXPECT_GT(dblp.num_papers, aminer.num_papers);
}

TEST_F(DatasetTest, CorpusBuilderAlignsWithLocalIndex) {
  const Corpus corpus = BuildPaperCorpus(dataset_);
  EXPECT_EQ(corpus.NumDocuments(), dataset_.Papers().size());
  EXPECT_GT(corpus.vocabulary().size(), 0u);
  EXPECT_GT(corpus.TotalTokens(), corpus.NumDocuments() * 10);
}

TEST_F(DatasetTest, CoAuthoredPapersShareGroupTopicText) {
  // Structural sanity: co-authored papers should often share the primary
  // topic (they come from the same research group).
  auto path = MetaPath::Parse(dataset_.graph.schema(), "P-A-P");
  ASSERT_TRUE(path.ok());
  PNeighborFinder finder(dataset_.graph, *path);
  size_t same = 0, total = 0;
  for (NodeId p : dataset_.Papers()) {
    const size_t pi = dataset_.graph.LocalIndex(p);
    for (NodeId q : finder.Neighbors(p)) {
      ++total;
      same += dataset_.paper_primary_topic[pi] ==
              dataset_.paper_primary_topic[dataset_.graph.LocalIndex(q)];
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(same) / total, 0.7);
}

TEST(DatasetFromGraphTest, WrapsGeneratedGraph) {
  const Dataset original = GenerateDataset(TinyProfile());
  HeteroGraph copy = original.graph;  // value copy
  auto wrapped = DatasetFromGraph(std::move(copy), "wrapped");
  ASSERT_TRUE(wrapped.ok()) << wrapped.status().ToString();
  EXPECT_EQ(wrapped->config.name, "wrapped");
  EXPECT_EQ(wrapped->Papers().size(), original.Papers().size());
  EXPECT_EQ(wrapped->ids.paper, original.ids.paper);
  // Primary topics recovered from Mention edges match the planted ones.
  EXPECT_EQ(wrapped->paper_primary_topic, original.paper_primary_topic);
}

TEST(DatasetFromGraphTest, RejectsNonAcademicSchema) {
  Schema schema;
  const NodeTypeId a = schema.AddNodeType("X");
  schema.AddEdgeType("Knows", a, a);
  HeteroGraphBuilder builder(schema);
  builder.AddNode(a);
  auto wrapped = DatasetFromGraph(std::move(builder).Build());
  ASSERT_FALSE(wrapped.ok());
  EXPECT_EQ(wrapped.status().code(), StatusCode::kInvalidArgument);
}

class QueriesTest : public ::testing::Test {
 protected:
  QueriesTest()
      : dataset_(GenerateDataset(TinyProfile())),
        queries_(GenerateQueries(dataset_, 15, 3)) {}
  Dataset dataset_;
  QuerySet queries_;
};

TEST_F(QueriesTest, RequestedCountProduced) {
  EXPECT_EQ(queries_.queries.size(), 15u);
}

TEST_F(QueriesTest, QueryTextIsPaperLabel) {
  for (const Query& q : queries_.queries) {
    EXPECT_EQ(q.text, dataset_.graph.Label(q.query_paper));
  }
}

TEST_F(QueriesTest, GroundTruthSharesTopicWithQueryPaper) {
  for (const Query& q : queries_.queries) {
    ASSERT_FALSE(q.ground_truth.empty());
    // Collect query paper's topics.
    const auto topics = dataset_.graph.Neighbors(q.query_paper,
                                                 dataset_.ids.mention);
    const std::set<NodeId> topic_set(topics.begin(), topics.end());
    // Spot-check the first few ground-truth authors: each must have a
    // paper mentioning a shared topic.
    for (size_t i = 0; i < std::min<size_t>(5, q.ground_truth.size()); ++i) {
      const NodeId author = q.ground_truth[i];
      bool shares = false;
      for (NodeId paper :
           dataset_.graph.Neighbors(author, dataset_.ids.write)) {
        for (NodeId t : dataset_.graph.Neighbors(paper, dataset_.ids.mention)) {
          shares |= topic_set.count(t) > 0;
        }
      }
      EXPECT_TRUE(shares) << "author " << author;
    }
  }
}

TEST_F(QueriesTest, QueryAuthorsAreInGroundTruth) {
  // The query paper's own authors trivially share its topics.
  for (const Query& q : queries_.queries) {
    for (NodeId author :
         dataset_.graph.Neighbors(q.query_paper, dataset_.ids.write)) {
      EXPECT_TRUE(std::binary_search(q.ground_truth.begin(),
                                     q.ground_truth.end(), author));
    }
  }
}

TEST_F(QueriesTest, DeterministicForSameSeed) {
  const QuerySet again = GenerateQueries(dataset_, 15, 3);
  ASSERT_EQ(again.queries.size(), queries_.queries.size());
  for (size_t i = 0; i < again.queries.size(); ++i) {
    EXPECT_EQ(again.queries[i].query_paper, queries_.queries[i].query_paper);
  }
}

}  // namespace
}  // namespace kpef

#include <sstream>

#include <gtest/gtest.h>

#include "ann/brute_force.h"
#include "ann/pg_index.h"
#include "common/rng.h"
#include "embed/model_io.h"
#include "text/corpus.h"

namespace kpef {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < m.rows(); ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.Normal());
  }
  return m;
}

TEST(MatrixIoTest, RoundTrips) {
  const Matrix original = RandomMatrix(17, 9, 1);
  std::stringstream buffer;
  ASSERT_TRUE(SaveMatrix(original, buffer).ok());
  auto loaded = LoadMatrix(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rows(), 17u);
  EXPECT_EQ(loaded->cols(), 9u);
  EXPECT_EQ(*loaded, original);
}

TEST(MatrixIoTest, RoundTripsEmpty) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveMatrix(Matrix(), buffer).ok());
  auto loaded = LoadMatrix(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows(), 0u);
}

TEST(MatrixIoTest, RejectsGarbage) {
  std::stringstream buffer("this is not a matrix");
  auto loaded = LoadMatrix(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixIoTest, RejectsTruncated) {
  const Matrix original = RandomMatrix(20, 8, 2);
  std::stringstream buffer;
  ASSERT_TRUE(SaveMatrix(original, buffer).ok());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_FALSE(LoadMatrix(truncated).ok());
}

template <typename T>
void PutPod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Hand-crafts a matrix file header with the given dimensions.
std::stringstream HostileMatrixHeader(uint64_t rows, uint64_t cols) {
  std::stringstream buffer;
  PutPod<uint32_t>(buffer, 0x4B50464D);  // "KPFM"
  PutPod<uint32_t>(buffer, 1);           // version
  PutPod<uint64_t>(buffer, rows);
  PutPod<uint64_t>(buffer, cols);
  return buffer;
}

// Regression for the rows * cols overflow: hostile headers whose product
// wraps uint64_t back under the element cap must be rejected *before*
// the Matrix(rows, cols) allocation, on individual bounds.
TEST(MatrixIoTest, RejectsOverflowWrappingHeaderDims) {
  const std::pair<uint64_t, uint64_t> hostile[] = {
      {1ull << 33, 1ull << 31},  // product wraps to 0
      {1ull << 62, 1ull << 2},   // product wraps to 0
      {(1ull << 63) + 1, 2},     // product wraps to 2
      {0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull},
      {0xFFFFFFFFFFFFFFFFull, 1},
      {1, 0xFFFFFFFFFFFFFFFFull},
      {1ull << 40, 0},           // zero cols must not bypass the row bound
      {1ull << 33, 1},           // honest oversize rows
      {1, 1ull << 21},           // honest oversize cols
      {1ull << 20, 1ull << 20},  // individually fine, product too large
  };
  for (const auto& [rows, cols] : hostile) {
    std::stringstream buffer = HostileMatrixHeader(rows, cols);
    auto loaded = LoadMatrix(buffer);
    ASSERT_FALSE(loaded.ok()) << "rows=" << rows << " cols=" << cols;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(MatrixIoTest, PlausibleHeaderStillRejectedWhenTruncated) {
  // A header that passes the bounds check but has no payload must fail
  // on truncation, not crash or hand back uninitialized data.
  std::stringstream buffer = HostileMatrixHeader(8, 8);
  auto loaded = LoadMatrix(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(EncoderIoHeaderTest, RejectsOverflowWrappingHeaderDims) {
  const std::pair<uint64_t, uint64_t> hostile[] = {
      {1ull << 33, 1ull << 31},  // vocab * dim wraps to 0
      {0xFFFFFFFFFFFFFFFFull, 2},
      {1ull << 20, 1ull << 20},  // product over the element cap
  };
  for (const auto& [vocab, dim] : hostile) {
    std::stringstream buffer;
    PutPod<uint32_t>(buffer, 0x4B504645);  // "KPFE"
    PutPod<uint32_t>(buffer, 1);           // version
    PutPod<uint64_t>(buffer, vocab);
    PutPod<uint64_t>(buffer, dim);
    PutPod<int32_t>(buffer, 0);            // pooling
    PutPod<uint8_t>(buffer, 1);            // normalize_output
    auto loaded = LoadEncoder(buffer);
    ASSERT_FALSE(loaded.ok()) << "vocab=" << vocab << " dim=" << dim;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(MatrixIoTest, MissingFileIsIOError) {
  auto loaded = LoadMatrix("/nonexistent/matrix.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

class EncoderIoTest : public ::testing::Test {
 protected:
  EncoderIoTest() {
    corpus_.AddDocument("alpha beta gamma delta");
    corpus_.AddDocument("beta epsilon");
    EncoderConfig config;
    config.dim = 12;
    config.pooling = Pooling::kWeightedMean;
    encoder_ = std::make_unique<DocumentEncoder>(corpus_.vocabulary().size(),
                                                 config);
    Rng rng(7);
    encoder_->InitializeRandomTokens(rng, 0.4f);
    std::vector<float> weights(corpus_.vocabulary().size(), 1.0f);
    weights[0] = 0.25f;
    encoder_->SetTokenWeights(weights);
    Matrix& proj = encoder_->projection();
    for (size_t r = 0; r < proj.rows(); ++r) {
      for (float& v : proj.Row(r)) {
        v += static_cast<float>(rng.Normal(0, 0.1));
      }
    }
  }

  Corpus corpus_;
  std::unique_ptr<DocumentEncoder> encoder_;
};

TEST_F(EncoderIoTest, RoundTripPreservesEncodings) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveEncoder(*encoder_, buffer).ok());
  auto loaded = LoadEncoder(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->vocab_size(), encoder_->vocab_size());
  EXPECT_EQ(loaded->dim(), encoder_->dim());
  EXPECT_EQ(loaded->config().pooling, Pooling::kWeightedMean);
  for (size_t doc = 0; doc < corpus_.NumDocuments(); ++doc) {
    EXPECT_EQ(loaded->Encode(corpus_.Document(doc)),
              encoder_->Encode(corpus_.Document(doc)));
  }
}

TEST_F(EncoderIoTest, RoundTripsMeanPoolingWithoutWeights) {
  DocumentEncoder plain(5, EncoderConfig{});
  std::stringstream buffer;
  ASSERT_TRUE(SaveEncoder(plain, buffer).ok());
  auto loaded = LoadEncoder(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->token_weights().empty());
}

TEST_F(EncoderIoTest, RejectsWrongMagic) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveMatrix(Matrix(2, 2), buffer).ok());  // matrix magic
  EXPECT_FALSE(LoadEncoder(buffer).ok());
}

class PGIndexIoTest : public ::testing::Test {
 protected:
  PGIndexIoTest() : points_(RandomMatrix(300, 16, 11)) {
    PGIndexConfig config;
    config.knn_k = 8;
    index_ = std::make_unique<PGIndex>(PGIndex::Build(points_, config));
  }

  Matrix points_;
  std::unique_ptr<PGIndex> index_;
};

TEST_F(PGIndexIoTest, RoundTripPreservesStructureAndSearch) {
  std::stringstream buffer;
  ASSERT_TRUE(index_->Save(buffer).ok());
  auto loaded = PGIndex::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumPoints(), index_->NumPoints());
  EXPECT_EQ(loaded->NumEdges(), index_->NumEdges());
  EXPECT_EQ(loaded->navigating_node(), index_->navigating_node());
  for (size_t v = 0; v < index_->NumPoints(); ++v) {
    EXPECT_EQ(loaded->NeighborsOf(static_cast<int32_t>(v)),
              index_->NeighborsOf(static_cast<int32_t>(v)));
  }
  // Search results are identical.
  Rng rng(3);
  for (int q = 0; q < 5; ++q) {
    std::vector<float> query(16);
    for (float& v : query) v = static_cast<float>(rng.Normal());
    const auto a = index_->Search(query, 10, 30);
    const auto b = loaded->Search(query, 10, 30);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_FLOAT_EQ(a[i].distance, b[i].distance);
    }
  }
}

TEST_F(PGIndexIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/kpef_pgindex_test.bin";
  ASSERT_TRUE(index_->Save(path).ok());
  auto loaded = PGIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumEdges(), index_->NumEdges());
}

TEST_F(PGIndexIoTest, RejectsCorruption) {
  std::stringstream buffer;
  ASSERT_TRUE(index_->Save(buffer).ok());
  std::string data = buffer.str();
  // Flip the navigating node to an absurd value.
  data[8] = '\xff';
  data[9] = '\xff';
  data[10] = '\xff';
  data[11] = '\x7f';
  std::stringstream corrupted(data);
  // Either the header check or a later validation must fire.
  auto loaded = PGIndex::Load(corrupted);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(PGIndexIoTest, RejectsTruncation) {
  std::stringstream buffer;
  ASSERT_TRUE(index_->Save(buffer).ok());
  const std::string full = buffer.str();
  for (size_t fraction : {5u, 50u, 90u}) {
    std::stringstream truncated(full.substr(0, full.size() * fraction / 100));
    EXPECT_FALSE(PGIndex::Load(truncated).ok()) << fraction << "%";
  }
}

TEST_F(PGIndexIoTest, RoundTripKeepsQuantization) {
  std::stringstream buffer;
  ASSERT_TRUE(index_->Save(buffer).ok());
  auto loaded = PGIndex::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->quantized(), index_->quantized());
}

TEST_F(PGIndexIoTest, UnquantizedIndexRoundTripsUnquantized) {
  // An artifact saved without codes must load without codes: the
  // has-codes byte is an explicit escape, not a default.
  PGIndexConfig config;
  config.knn_k = 8;
  config.quantize = false;
  const PGIndex exact = PGIndex::Build(points_, config);
  ASSERT_FALSE(exact.quantized());
  std::stringstream buffer;
  ASSERT_TRUE(exact.Save(buffer).ok());
  auto loaded = PGIndex::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->quantized());
}

TEST_F(PGIndexIoTest, LoadsVersion1ArtifactAndQuantizesIt) {
  // Synthesize a pre-PR-7 (version 1) artifact from public accessors:
  // same header prefix, fp32 rows + adjacency in external order, no
  // code section. Load must accept it and re-encode the codes, giving
  // old artifacts the quantized fast path with identical results.
  std::stringstream v1;
  auto write_pod = [&v1](const auto& value) {
    v1.write(reinterpret_cast<const char*>(&value),
             sizeof(value));
  };
  write_pod(static_cast<uint32_t>(0x4B504749));  // magic "KPGI"
  write_pod(static_cast<uint32_t>(1));           // version 1
  write_pod(static_cast<uint64_t>(points_.rows()));
  write_pod(static_cast<uint64_t>(points_.cols()));
  write_pod(index_->navigating_node());
  for (size_t r = 0; r < points_.rows(); ++r) {
    const auto row = points_.Row(r);
    v1.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
  for (size_t v = 0; v < points_.rows(); ++v) {
    const auto nbrs = index_->NeighborsOf(static_cast<int32_t>(v));
    write_pod(static_cast<uint32_t>(nbrs.size()));
    v1.write(reinterpret_cast<const char*>(nbrs.data()),
             static_cast<std::streamsize>(nbrs.size() * sizeof(int32_t)));
  }
  auto loaded = PGIndex::Load(v1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->quantized());
  EXPECT_EQ(loaded->NumPoints(), index_->NumPoints());
  EXPECT_EQ(loaded->NumEdges(), index_->NumEdges());
  // Re-encoded codes are deterministic, so searches agree exactly with
  // the index the bytes came from.
  Rng rng(29);
  for (int q = 0; q < 5; ++q) {
    std::vector<float> query(points_.cols());
    for (float& v : query) v = static_cast<float>(rng.Normal());
    const auto a = index_->Search(query, 10, 30);
    const auto b = loaded->Search(query, 10, 30);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_FLOAT_EQ(a[i].distance, b[i].distance);
    }
  }
}

}  // namespace
}  // namespace kpef

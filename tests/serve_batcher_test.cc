// MicroBatcher as a pure unit (ISSUE 5 satellite): flush-on-size,
// flush-on-age, per-request deadline propagation into BatchQueryOptions,
// shed-when-full, and drain-on-shutdown — all against a fake engine
// function, no sockets involved.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "serve/batcher.h"

namespace kpef::serve {
namespace {

using Clock = CancelToken::Clock;

/// Records every engine call; optionally blocks until released and/or
/// sleeps to simulate slow batches.
struct FakeEngine {
  std::mutex mutex;
  std::condition_variable cv;
  bool blocked = false;
  double sleep_ms = 0.0;
  std::vector<size_t> batch_sizes;
  std::vector<size_t> top_ns;
  std::vector<BatchQueryOptions> options_seen;

  BatchExecuteFn AsFn() {
    return [this](const std::vector<std::string>& texts, size_t top_n,
                  const BatchQueryOptions& options,
                  std::vector<QueryStats>* stats) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        batch_sizes.push_back(texts.size());
        top_ns.push_back(top_n);
        options_seen.push_back(options);
        cv.wait(lock, [this] { return !blocked; });
      }
      if (sleep_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      stats->assign(texts.size(), QueryStats());
      std::vector<std::vector<ExpertScore>> results(texts.size());
      for (size_t q = 0; q < texts.size(); ++q) {
        for (size_t i = 0; i < top_n; ++i) {
          results[q].push_back(
              ExpertScore{static_cast<NodeId>(i), 1.0 / (1.0 + i)});
        }
      }
      return results;
    };
  }

  void Block() {
    std::lock_guard<std::mutex> lock(mutex);
    blocked = true;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      blocked = false;
    }
    cv.notify_all();
  }
  size_t NumCalls() {
    std::lock_guard<std::mutex> lock(mutex);
    return batch_sizes.size();
  }
};

/// Collects completions with a latch-style wait.
struct Collector {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<BatchResponse> responses;

  MicroBatcher::CompletionFn Fn() {
    return [this](BatchResponse response) {
      // Notify while holding the lock: the waiter may destroy this
      // Collector the moment the predicate holds, so an unlocked
      // notify_all could touch a dead condvar.
      std::lock_guard<std::mutex> lock(mutex);
      responses.push_back(std::move(response));
      cv.notify_all();
    };
  }

  bool WaitForCount(size_t n, double timeout_ms = 5000.0) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms),
        [&] { return responses.size() >= n; });
  }
};

BatchRequest Request(const std::string& query, size_t top_n = 5) {
  BatchRequest request;
  request.query = query;
  request.top_n = top_n;
  return request;
}

TEST(MicroBatcherTest, FlushOnSizeCoalescesIntoOneEngineCall) {
  FakeEngine engine;
  BatcherConfig config;
  config.max_batch_size = 4;
  config.max_queue_age_ms = 60000.0;  // age never fires in this test
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher.Submit(Request("q" + std::to_string(i)),
                               collector.Fn()));
  }
  ASSERT_TRUE(collector.WaitForCount(4));
  ASSERT_EQ(engine.NumCalls(), 1u);
  EXPECT_EQ(engine.batch_sizes[0], 4u);
  for (const BatchResponse& r : collector.responses) {
    EXPECT_EQ(r.batch_size, 4u);
    EXPECT_FALSE(r.deadline_exceeded);
    EXPECT_GE(r.queue_wait_ms, 0.0);
  }
}

TEST(MicroBatcherTest, FlushOnAgeDispatchesPartialBatch) {
  FakeEngine engine;
  BatcherConfig config;
  config.max_batch_size = 64;  // size never fires in this test
  config.max_queue_age_ms = 5.0;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  ASSERT_TRUE(batcher.Submit(Request("lonely"), collector.Fn()));
  // Nothing else arrives; the age timer must flush the singleton batch.
  ASSERT_TRUE(collector.WaitForCount(1));
  ASSERT_EQ(engine.NumCalls(), 1u);
  EXPECT_EQ(engine.batch_sizes[0], 1u);
  EXPECT_EQ(collector.responses[0].batch_size, 1u);
}

TEST(MicroBatcherTest, TopNIsBatchMaxAndResultsAreTruncatedPerRequest) {
  FakeEngine engine;
  BatcherConfig config;
  config.max_batch_size = 2;
  config.max_queue_age_ms = 60000.0;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  ASSERT_TRUE(batcher.Submit(Request("small", 3), collector.Fn()));
  ASSERT_TRUE(batcher.Submit(Request("large", 9), collector.Fn()));
  ASSERT_TRUE(collector.WaitForCount(2));
  ASSERT_EQ(engine.top_ns.size(), 1u);
  EXPECT_EQ(engine.top_ns[0], 9u);  // engine ran at the batch max
  // Each request got its own n back.
  std::vector<size_t> sizes;
  for (const BatchResponse& r : collector.responses) {
    sizes.push_back(r.experts.size());
  }
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{3, 9}));
}

TEST(MicroBatcherTest, DeadlinePropagatesIntoBatchQueryOptions) {
  FakeEngine engine;
  BatcherConfig config;
  config.max_batch_size = 2;
  config.max_queue_age_ms = 60000.0;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  BatchRequest a = Request("a");
  a.has_deadline = true;
  a.deadline = Clock::now() + std::chrono::seconds(30);
  BatchRequest b = Request("b");
  b.has_deadline = true;
  b.deadline = Clock::now() + std::chrono::seconds(60);
  ASSERT_TRUE(batcher.Submit(std::move(a), collector.Fn()));
  ASSERT_TRUE(batcher.Submit(std::move(b), collector.Fn()));
  ASSERT_TRUE(collector.WaitForCount(2));
  ASSERT_EQ(engine.options_seen.size(), 1u);
  // Every request carried a deadline, so the batch got a cancel token
  // (deadline = the latest of the two; it must not have fired).
  EXPECT_TRUE(engine.options_seen[0].cancel.CanBeCancelled());
  EXPECT_FALSE(engine.options_seen[0].cancel.IsCancelled());
  for (const BatchResponse& r : collector.responses) {
    EXPECT_FALSE(r.deadline_exceeded);
  }
}

TEST(MicroBatcherTest, NoCancelTokenWhenAnyRequestLacksDeadline) {
  FakeEngine engine;
  BatcherConfig config;
  config.max_batch_size = 2;
  config.max_queue_age_ms = 60000.0;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  BatchRequest a = Request("a");
  a.has_deadline = true;
  a.deadline = Clock::now() + std::chrono::seconds(30);
  ASSERT_TRUE(batcher.Submit(std::move(a), collector.Fn()));
  ASSERT_TRUE(batcher.Submit(Request("b"), collector.Fn()));  // no deadline
  ASSERT_TRUE(collector.WaitForCount(2));
  ASSERT_EQ(engine.options_seen.size(), 1u);
  // An unbounded request rides in the batch, so the engine call must
  // not be cancellable at the bounded request's deadline.
  EXPECT_FALSE(engine.options_seen[0].cancel.CanBeCancelled());
}

TEST(MicroBatcherTest, ExpiredRequestsNeverReachTheEngine) {
  FakeEngine engine;
  BatcherConfig config;
  config.max_batch_size = 2;
  config.max_queue_age_ms = 60000.0;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  BatchRequest expired = Request("expired");
  expired.has_deadline = true;
  expired.deadline = Clock::now() - std::chrono::milliseconds(1);
  ASSERT_TRUE(batcher.Submit(std::move(expired), collector.Fn()));
  ASSERT_TRUE(batcher.Submit(Request("live"), collector.Fn()));
  ASSERT_TRUE(collector.WaitForCount(2));
  // The engine saw only the live request.
  ASSERT_EQ(engine.batch_sizes.size(), 1u);
  EXPECT_EQ(engine.batch_sizes[0], 1u);
  size_t expired_count = 0;
  for (const BatchResponse& r : collector.responses) {
    if (r.deadline_exceeded) {
      ++expired_count;
      EXPECT_TRUE(r.experts.empty());
      EXPECT_EQ(r.batch_size, 0u);
    }
  }
  EXPECT_EQ(expired_count, 1u);
}

TEST(MicroBatcherTest, MissedDeadlineFlaggedAfterSlowBatch) {
  FakeEngine engine;
  engine.sleep_ms = 30.0;
  BatcherConfig config;
  config.max_batch_size = 1;
  config.max_queue_age_ms = 0.0;  // dispatch immediately
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  BatchRequest tight = Request("tight");
  tight.has_deadline = true;
  tight.deadline = Clock::now() + std::chrono::milliseconds(5);
  ASSERT_TRUE(batcher.Submit(std::move(tight), collector.Fn()));
  ASSERT_TRUE(collector.WaitForCount(1));
  EXPECT_TRUE(collector.responses[0].deadline_exceeded);
}

TEST(MicroBatcherTest, ShedsWhenQueueFull) {
  FakeEngine engine;
  engine.Block();  // first batch wedges the dispatcher
  BatcherConfig config;
  config.max_batch_size = 1;
  config.max_queue_age_ms = 0.0;
  config.max_pending = 2;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  // First submit is popped by the dispatcher (blocked in the engine);
  // wait until the queue is empty again before filling it.
  ASSERT_TRUE(batcher.Submit(Request("in-engine"), collector.Fn()));
  while (batcher.PendingForTest() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(batcher.Submit(Request("q1"), collector.Fn()));
  ASSERT_TRUE(batcher.Submit(Request("q2"), collector.Fn()));
  // Queue is at max_pending: admission control sheds, callback not run.
  EXPECT_FALSE(batcher.Submit(Request("q3"), collector.Fn()));
  EXPECT_EQ(collector.responses.size(), 0u);
  engine.Release();
  ASSERT_TRUE(collector.WaitForCount(3));
  EXPECT_EQ(collector.responses.size(), 3u);
  batcher.Shutdown();
}

TEST(MicroBatcherTest, ShutdownDrainsEveryQueuedRequest) {
  FakeEngine engine;
  engine.Block();
  BatcherConfig config;
  config.max_batch_size = 2;
  config.max_queue_age_ms = 60000.0;
  config.max_pending = 64;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(batcher.Submit(Request("q" + std::to_string(i)),
                               collector.Fn()));
  }
  // Shutdown must flush all 7 even though the age timer never fired.
  std::thread release([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    engine.Release();
  });
  batcher.Shutdown();
  release.join();
  EXPECT_EQ(collector.responses.size(), 7u);
  // After shutdown, admission is closed (and sheds without callback).
  EXPECT_FALSE(batcher.Submit(Request("late"), collector.Fn()));
  EXPECT_EQ(collector.responses.size(), 7u);
}

TEST(MicroBatcherTest, DestructorDrains) {
  FakeEngine engine;
  Collector collector;
  {
    BatcherConfig config;
    config.max_batch_size = 8;
    config.max_queue_age_ms = 60000.0;
    MicroBatcher batcher(config, engine.AsFn());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(batcher.Submit(Request("q"), collector.Fn()));
    }
  }
  EXPECT_EQ(collector.responses.size(), 3u);
}

TEST(MicroBatcherTest, ConcurrentSubmittersAllComplete) {
  FakeEngine engine;
  BatcherConfig config;
  config.max_batch_size = 8;
  config.max_queue_age_ms = 1.0;
  config.max_pending = 1024;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (batcher.Submit(Request("q"), collector.Fn())) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(collector.WaitForCount(static_cast<size_t>(accepted.load())));
  EXPECT_EQ(collector.responses.size(),
            static_cast<size_t>(accepted.load()));
  EXPECT_EQ(accepted.load(), kThreads * kPerThread);  // queue never filled
}

// Regression (PR 8): a short-deadline request batched with an unbounded
// one used to inherit the batch's LATEST deadline — the engine kept
// working on it long past its own budget and the caller got a late 200
// instead of a timely 504. Per-slot deadlines fix both sides: the
// engine sees each slot's own budget, and the unbounded rider is
// unaffected.
TEST(MicroBatcherTest, MixedDeadlinesPropagatePerSlot) {
  FakeEngine engine;
  engine.sleep_ms = 100.0;  // the batch outlives the tight deadline
  BatcherConfig config;
  config.max_batch_size = 2;
  config.max_queue_age_ms = 60000.0;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  BatchRequest tight = Request("tight");
  tight.has_deadline = true;
  // Far enough out to survive queueing, well inside the engine sleep.
  const auto tight_deadline = Clock::now() + std::chrono::milliseconds(25);
  tight.deadline = tight_deadline;
  ASSERT_TRUE(batcher.Submit(std::move(tight), collector.Fn()));
  ASSERT_TRUE(batcher.Submit(Request("unbounded"), collector.Fn()));
  ASSERT_TRUE(collector.WaitForCount(2));

  ASSERT_EQ(engine.options_seen.size(), 1u);
  const BatchQueryOptions& options = engine.options_seen[0];
  // The engine call itself stays uncancellable (the unbounded rider
  // must finish), but each slot's own budget rode along.
  EXPECT_FALSE(options.cancel.CanBeCancelled());
  ASSERT_EQ(options.deadlines.size(), 2u);
  EXPECT_EQ(options.deadlines[0], tight_deadline);
  EXPECT_EQ(options.deadlines[1], Clock::time_point::max());

  // Exactly the tight request is flagged; the unbounded one is whole.
  size_t exceeded = 0;
  for (const BatchResponse& r : collector.responses) {
    if (r.deadline_exceeded) {
      ++exceeded;
    } else {
      EXPECT_EQ(r.experts.size(), 5u);
    }
  }
  EXPECT_EQ(exceeded, 1u);
}

TEST(MicroBatcherTest, NoDeadlinesMeansNoSlotDeadlineVector) {
  FakeEngine engine;
  BatcherConfig config;
  config.max_batch_size = 2;
  config.max_queue_age_ms = 60000.0;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  ASSERT_TRUE(batcher.Submit(Request("a"), collector.Fn()));
  ASSERT_TRUE(batcher.Submit(Request("b"), collector.Fn()));
  ASSERT_TRUE(collector.WaitForCount(2));
  ASSERT_EQ(engine.options_seen.size(), 1u);
  EXPECT_TRUE(engine.options_seen[0].deadlines.empty());
}

// Regression (PR 8): the engine used to run the coalesced batch at the
// unclamped max top_n, so one n=100000 request inflated TA work for
// every rider. The batcher now clamps per request to max_top_n.
TEST(MicroBatcherTest, OversizedTopNIsClampedToConfigCap) {
  FakeEngine engine;
  BatcherConfig config;
  config.max_batch_size = 2;
  config.max_queue_age_ms = 60000.0;
  config.max_top_n = 50;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  ASSERT_TRUE(batcher.Submit(Request("huge", 100000), collector.Fn()));
  ASSERT_TRUE(batcher.Submit(Request("small", 3), collector.Fn()));
  ASSERT_TRUE(collector.WaitForCount(2));
  ASSERT_EQ(engine.top_ns.size(), 1u);
  EXPECT_EQ(engine.top_ns[0], 50u);  // clamped batch max, not 100000
  std::vector<size_t> sizes;
  for (const BatchResponse& r : collector.responses) {
    sizes.push_back(r.experts.size());
  }
  std::sort(sizes.begin(), sizes.end());
  // The oversized request is answered with the cap, not its ask.
  EXPECT_EQ(sizes, (std::vector<size_t>{3, 50}));
}

TEST(MicroBatcherTest, ZeroMaxTopNDisablesTheCap) {
  FakeEngine engine;
  BatcherConfig config;
  config.max_batch_size = 1;
  config.max_queue_age_ms = 0.0;
  config.max_top_n = 0;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  ASSERT_TRUE(batcher.Submit(Request("big", 900), collector.Fn()));
  ASSERT_TRUE(collector.WaitForCount(1));
  ASSERT_EQ(engine.top_ns.size(), 1u);
  EXPECT_EQ(engine.top_ns[0], 900u);
}

// ROADMAP leftover (PR 7 → PR 8): the batcher must hand its configured
// pool to the engine, so SearchBatch actually fans out over it instead
// of silently falling back to the engine's default pool.
TEST(MicroBatcherTest, ConfiguredPoolReachesBatchQueryOptions) {
  FakeEngine engine;
  ThreadPool pool(2);
  BatcherConfig config;
  config.max_batch_size = 1;
  config.max_queue_age_ms = 0.0;
  config.pool = &pool;
  MicroBatcher batcher(config, engine.AsFn());
  Collector collector;
  ASSERT_TRUE(batcher.Submit(Request("q"), collector.Fn()));
  ASSERT_TRUE(collector.WaitForCount(1));
  ASSERT_EQ(engine.options_seen.size(), 1u);
  EXPECT_EQ(engine.options_seen[0].pool, &pool);
}

}  // namespace
}  // namespace kpef::serve

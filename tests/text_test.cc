#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/corpus.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace kpef {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnumAndLowercases) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("Hello, World! Graph-based ANN");
  EXPECT_EQ(tokens, (std::vector<std::string>{"hello", "world", "graph",
                                              "based", "ann"}));
}

TEST(TokenizerTest, KeepsDigits) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("top2vec k9"),
            (std::vector<std::string>{"top2vec", "k9"}));
}

TEST(TokenizerTest, RespectsMaxTokens) {
  TokenizerOptions options;
  options.max_tokens = 3;
  Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("a b c d e").size(), 3u);
}

TEST(TokenizerTest, MinTokenLengthFilters) {
  TokenizerOptions options;
  options.min_token_length = 2;
  Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("a bc d efg"),
            (std::vector<std::string>{"bc", "efg"}));
}

TEST(TokenizerTest, CaseSensitiveOption) {
  TokenizerOptions options;
  options.lowercase = false;
  Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("Hello"),
            (std::vector<std::string>{"Hello"}));
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("  ,,, ").empty());
}

TEST(VocabularyTest, GetOrAddIsIdempotent) {
  Vocabulary vocab;
  const TokenId a = vocab.GetOrAdd("alpha");
  const TokenId b = vocab.GetOrAdd("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.GetOrAdd("alpha"), a);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.TokenOf(a), "alpha");
}

TEST(VocabularyTest, LookupMissingReturnsUnknown) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Lookup("nope"), kUnknownToken);
}

TEST(VocabularyTest, EncodeDropsOov) {
  Vocabulary vocab;
  vocab.GetOrAdd("a");
  const auto ids = vocab.Encode({"a", "b", "a"});
  EXPECT_EQ(ids.size(), 2u);
}

TEST(CorpusTest, AddDocumentTracksFrequencies) {
  Corpus corpus;
  corpus.AddDocument("graph core graph");
  corpus.AddDocument("core embedding");
  EXPECT_EQ(corpus.NumDocuments(), 2u);
  const Vocabulary& vocab = corpus.vocabulary();
  // "graph" appears in 1 document, "core" in 2.
  EXPECT_EQ(vocab.DocumentFrequency(vocab.Lookup("graph")), 1);
  EXPECT_EQ(vocab.DocumentFrequency(vocab.Lookup("core")), 2);
  EXPECT_EQ(corpus.TotalTokens(), 5u);
}

TEST(CorpusTest, DocumentTokensPreserved) {
  Corpus corpus;
  const size_t doc = corpus.AddDocument("alpha beta alpha");
  const auto& tokens = corpus.Document(doc);
  EXPECT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], tokens[2]);
  EXPECT_NE(tokens[0], tokens[1]);
}

TEST(CorpusTest, EncodeQueryUsesFrozenVocabulary) {
  Corpus corpus;
  corpus.AddDocument("alpha beta");
  const auto ids = corpus.EncodeQuery("alpha gamma");
  EXPECT_EQ(ids.size(), 1u);  // gamma is OOV
  EXPECT_EQ(corpus.vocabulary().size(), 2u);  // query must not grow vocab
}

class TfIdfTest : public ::testing::Test {
 protected:
  TfIdfTest() {
    corpus_.AddDocument("apple banana apple");
    corpus_.AddDocument("banana cherry");
    corpus_.AddDocument("cherry durian cherry durian");
    model_ = std::make_unique<TfIdfModel>(corpus_);
  }
  Corpus corpus_;
  std::unique_ptr<TfIdfModel> model_;
};

TEST_F(TfIdfTest, VectorsAreL2Normalized) {
  for (size_t d = 0; d < corpus_.NumDocuments(); ++d) {
    const SparseVector& v = model_->DocumentVector(d);
    double norm = 0.0;
    for (const auto& e : v) norm += static_cast<double>(e.weight) * e.weight;
    EXPECT_NEAR(norm, 1.0, 1e-5);
  }
}

TEST_F(TfIdfTest, SelfSimilarityIsOne) {
  for (size_t d = 0; d < corpus_.NumDocuments(); ++d) {
    EXPECT_NEAR(TfIdfModel::Cosine(model_->DocumentVector(d),
                                   model_->DocumentVector(d)),
                1.0, 1e-5);
  }
}

TEST_F(TfIdfTest, DisjointDocumentsScoreZero) {
  // Doc 0 (apple banana) vs doc 2 (cherry durian) share no terms.
  EXPECT_FLOAT_EQ(
      TfIdfModel::Cosine(model_->DocumentVector(0), model_->DocumentVector(2)),
      0.0f);
}

TEST_F(TfIdfTest, ScoreAllRanksLexicalOverlap) {
  const SparseVector q = model_->Vectorize(corpus_.EncodeQuery("apple apple"));
  const std::vector<float> scores = model_->ScoreAll(q);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_FLOAT_EQ(scores[2], 0.0f);
}

TEST_F(TfIdfTest, VectorizeEmptyTokensIsEmpty) {
  EXPECT_TRUE(model_->Vectorize({}).empty());
}

TEST_F(TfIdfTest, RareTermsWeighMore) {
  // "banana" appears in 2 docs, "durian" in 1: same tf in a query, the
  // rarer term should dominate the vector weight.
  const SparseVector q =
      model_->Vectorize(corpus_.EncodeQuery("banana durian"));
  ASSERT_EQ(q.size(), 2u);
  const Vocabulary& vocab = corpus_.vocabulary();
  float banana = 0, durian = 0;
  for (const auto& e : q) {
    if (e.token == vocab.Lookup("banana")) banana = e.weight;
    if (e.token == vocab.Lookup("durian")) durian = e.weight;
  }
  EXPECT_GT(durian, banana);
}

}  // namespace
}  // namespace kpef

// IngestCoordinator: the PR-10 determinism contract and recovery paths.
//
//  - Snapshot equivalence: after draining a drip-fed tail, the published
//    generation is query-equivalent to a full offline FromParts assembly
//    over the unioned graph (exact top-n on the brute path; same top-n
//    with fp-tolerant scores on the PG rerank path).
//  - Incrementally maintained (k,P)-cores equal a fresh decomposition
//    over the merged graph.
//  - Duplicate papers are skipped, never double-applied — including
//    across a WAL replay.
//  - A restart (new coordinator over the same WAL + base artifacts)
//    reconstructs the exact pre-restart serving state.
//  - Merge-budget compaction is behavior-invariant: compacting after
//    every batch serves the same answers as never compacting.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/engine_group.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/drip.h"
#include "data/queries.h"
#include "embed/pretrain.h"
#include "ingest/coordinator.h"
#include "kpcore/core_decomposition.h"
#include "metapath/meta_path.h"
#include "metapath/projection.h"

#include <unordered_map>

namespace kpef {
namespace {

namespace fs = std::filesystem;

constexpr size_t kHoldout = 40;
constexpr size_t kBatchSize = 12;
constexpr size_t kTopN = 10;

IngestBatch ToIngestBatch(const std::vector<DripPaper>& papers) {
  IngestBatch batch;
  for (const DripPaper& p : papers) {
    batch.papers.push_back(
        IngestPaper{p.text, p.authors, p.venue, p.topics, p.cites});
  }
  return batch;
}

/// Flat offline union: base graph rebuilt node-for-node, then the tail
/// papers appended in drip order with the same per-paper edge order the
/// coordinator applies (write in rank order, publish, mention, cite).
Dataset BuildUnionDataset(const Dataset& base,
                          const std::vector<DripPaper>& tail) {
  const HeteroGraph& g = base.graph;
  const AcademicSchema& ids = base.ids;
  AcademicSchema fresh = AcademicSchema::Make();
  HeteroGraphBuilder builder(fresh.schema);
  std::unordered_map<std::string, NodeId> authors, venues, topics, papers;
  std::unordered_map<NodeId, NodeId> remap;
  for (NodeId v : g.NodesOfType(ids.author)) {
    remap[v] = builder.AddNode(fresh.author, g.Label(v));
    authors[g.Label(v)] = remap[v];
  }
  for (NodeId v : g.NodesOfType(ids.venue)) {
    remap[v] = builder.AddNode(fresh.venue, g.Label(v));
    venues[g.Label(v)] = remap[v];
  }
  for (NodeId v : g.NodesOfType(ids.topic)) {
    remap[v] = builder.AddNode(fresh.topic, g.Label(v));
    topics[g.Label(v)] = remap[v];
  }
  const std::vector<NodeId>& base_papers = g.NodesOfType(ids.paper);
  for (NodeId v : base_papers) {
    remap[v] = builder.AddNode(fresh.paper, g.Label(v));
    papers[g.Label(v)] = remap[v];
  }
  for (size_t i = 0; i < base_papers.size(); ++i) {
    const NodeId p = base_papers[i];
    for (NodeId a : g.Neighbors(p, ids.write)) {
      EXPECT_TRUE(builder.AddEdge(fresh.write, remap[a], remap[p]).ok());
    }
    for (NodeId v : g.Neighbors(p, ids.publish)) {
      EXPECT_TRUE(builder.AddEdge(fresh.publish, remap[p], remap[v]).ok());
    }
    for (NodeId t : g.Neighbors(p, ids.mention)) {
      EXPECT_TRUE(builder.AddEdge(fresh.mention, remap[p], remap[t]).ok());
    }
    for (NodeId q : g.Neighbors(p, ids.cite)) {
      if (g.LocalIndex(q) < i) {
        EXPECT_TRUE(builder.AddEdge(fresh.cite, remap[p], remap[q]).ok());
      }
    }
  }
  for (const DripPaper& paper : tail) {
    const NodeId p = builder.AddNode(fresh.paper, paper.text);
    papers[paper.text] = p;
    for (const std::string& a : paper.authors) {
      auto it = authors.find(a);
      EXPECT_NE(it, authors.end()) << "drip tail introduced author " << a;
      if (it != authors.end()) {
        EXPECT_TRUE(builder.AddEdge(fresh.write, it->second, p).ok());
      }
    }
    if (!paper.venue.empty()) {
      EXPECT_TRUE(
          builder.AddEdge(fresh.publish, p, venues.at(paper.venue)).ok());
    }
    for (const std::string& t : paper.topics) {
      EXPECT_TRUE(builder.AddEdge(fresh.mention, p, topics.at(t)).ok());
    }
    for (const std::string& c : paper.cites) {
      auto it = papers.find(c);
      if (it != papers.end() && it->second != p) {
        EXPECT_TRUE(builder.AddEdge(fresh.cite, p, it->second).ok());
      }
    }
  }
  auto dataset = DatasetFromGraph(std::move(builder).Build(), "union");
  EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
  Dataset result = std::move(dataset).value();
  DatasetConfig config = base.config;
  config.name = "union";
  config.num_papers = result.Papers().size();
  result.config = std::move(config);
  return result;
}

struct SharedIngest {
  Dataset full;
  DripSplit split;
  Corpus corpus;  // over split.base
  QuerySet queries;
  Matrix tokens;
  fs::path dir_brute;
  fs::path dir_pg;
  fs::path root;

  SharedIngest() : full(GenerateDataset(TinyProfile())) {
    auto made = MakeDripSplit(full, kHoldout);
    if (!made.ok()) std::abort();
    split = std::move(made).value();
    corpus = BuildPaperCorpus(split.base);
    queries = GenerateQueries(split.base, 6, 23);
    PretrainConfig pc;
    pc.dim = 32;
    pc.epochs = 6;
    tokens = PretrainTokenEmbeddings(corpus, pc).token_embeddings;

    root = fs::temp_directory_path() /
           ("kpef_ingest_test_" + std::to_string(::getpid()));
    dir_brute = root / "brute";
    dir_pg = root / "pg";
    fs::create_directories(dir_brute);
    fs::create_directories(dir_pg);
    Persist(BruteConfig(), dir_brute);
    Persist(PgConfig(), dir_pg);
  }

  void Persist(const EngineConfig& config, const fs::path& dir) {
    auto built =
        ExpertFindingEngine::Build(&split.base, &corpus, config, &tokens);
    if (!built.ok()) std::abort();
    if (!(*built)->SaveArtifacts(dir.string()).ok()) std::abort();
  }

  static EngineConfig BruteConfig() {
    EngineConfig config;
    config.k = 3;
    config.seed_fraction = 0.2;
    config.encoder.dim = 32;
    config.trainer.epochs = 2;
    config.top_m = 60;
    config.use_pg_index = false;
    return config;
  }

  /// PG configuration whose retrieval is exact (unquantized, exhaustive
  /// ef), so the rerank path's top-n must match brute up to fp noise.
  static EngineConfig PgConfig() {
    EngineConfig config = BruteConfig();
    config.use_pg_index = true;
    config.pg_index.knn_k = 8;
    config.pg_index.quantize = false;
    config.search_ef = 4096;
    return config;
  }

  static SharedIngest& Get() {
    static SharedIngest* s = new SharedIngest();
    return *s;
  }

  std::vector<std::string> Texts() const {
    std::vector<std::string> texts;
    for (const Query& q : queries.queries) texts.push_back(q.text);
    return texts;
  }

  std::unique_ptr<EngineGroup> LoadGroup(const EngineConfig& config,
                                         const fs::path& dir) {
    EngineGroup::Options options;
    options.engine = config;
    auto group = EngineGroup::Load(&split.base, &corpus, options, dir.string());
    EXPECT_TRUE(group.ok()) << group.status().ToString();
    return group.ok() ? std::move(group).value() : nullptr;
  }

  fs::path WalPath(const std::string& tag) const {
    return root / ("wal_" + tag + ".log");
  }
};

/// Drains the whole tail through `coordinator` in drip batches.
void DrainTail(IngestCoordinator* coordinator, const SharedIngest& s) {
  size_t applied = 0;
  for (const auto& batch :
       DripBatches(std::vector<DripPaper>(s.split.tail), kBatchSize)) {
    auto result = coordinator->Apply(ToIngestBatch(batch));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    applied += result->applied;
  }
  EXPECT_EQ(applied, kHoldout);
}

/// Offline reference over the union, sharing the persisted encoder and
/// frozen-vocabulary growth so the comparison isolates the incremental
/// machinery (graph deltas, projections, index insertion).
struct OfflineReference {
  Dataset dataset;
  Corpus corpus;
  std::unique_ptr<ExpertFindingEngine> engine;

  OfflineReference(const SharedIngest& s, const EngineConfig& config,
                   const fs::path& dir) {
    auto base = ExpertFindingEngine::LoadFromArtifacts(&s.split.base, &s.corpus,
                                                       config, dir.string());
    if (!base.ok()) std::abort();
    dataset = BuildUnionDataset(s.split.base, s.split.tail);
    corpus = s.corpus;
    Matrix embeddings = (*base)->embeddings();
    for (const DripPaper& paper : s.split.tail) {
      const size_t doc = corpus.AddDocumentFrozen(paper.text);
      embeddings.AppendRow((*base)->encoder().Encode(corpus.Document(doc)));
    }
    auto built = ExpertFindingEngine::FromParts(
        &dataset, &corpus, config, DocumentEncoder((*base)->encoder()),
        std::move(embeddings), nullptr);
    if (!built.ok()) std::abort();
    engine = std::move(built).value();
  }
};

TEST(IngestTest, BruteSnapshotEquivalentToOfflineUnionRebuild) {
  SharedIngest& s = SharedIngest::Get();
  auto group = s.LoadGroup(SharedIngest::BruteConfig(), s.dir_brute);
  ASSERT_NE(group, nullptr);
  IngestOptions options;
  options.wal_path = s.WalPath("brute_eq").string();
  auto coordinator = IngestCoordinator::Create(
      group.get(), SharedIngest::BruteConfig(), options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  DrainTail(coordinator->get(), s);

  OfflineReference reference(s, SharedIngest::BruteConfig(), s.dir_brute);
  const std::vector<std::string> texts = s.Texts();
  const auto got = group->FindExpertsBatch(texts, kTopN);
  for (size_t q = 0; q < texts.size(); ++q) {
    const auto want = reference.engine->FindExperts(texts[q], kTopN);
    ASSERT_EQ(got[q].size(), want.size()) << "query " << q;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[q][i].author, want[i].author)
          << "query " << q << " rank " << i;
      EXPECT_NEAR(got[q][i].score, want[i].score, 1e-5)
          << "query " << q << " rank " << i;
    }
  }

  // The drained snapshot serves the union paper count.
  const auto snapshot = group->Snapshot();
  ASSERT_NE(snapshot->owned_dataset, nullptr);
  EXPECT_EQ(snapshot->owned_dataset->Papers().size(), s.full.Papers().size());

  // Incrementally maintained cores == fresh decomposition per meta-path.
  for (size_t i = 0; i < SharedIngest::BruteConfig().meta_paths.size(); ++i) {
    auto cores = (*coordinator)->PathCores(i);
    ASSERT_TRUE(cores.ok());
    auto path = MetaPath::Parse(
        reference.dataset.graph.schema(),
        SharedIngest::BruteConfig().meta_paths[i]);
    ASSERT_TRUE(path.ok());
    const std::vector<int32_t> want = CoreDecomposition(
        ProjectHomogeneous(reference.dataset.graph, *path));
    ASSERT_EQ(cores->size(), want.size()) << "meta-path " << i;
    for (size_t v = 0; v < want.size(); ++v) {
      EXPECT_EQ((*cores)[v], want[v]) << "meta-path " << i << " node " << v;
    }
  }
}

TEST(IngestTest, PgRerankPathMatchesBruteReferenceWithinTolerance) {
  SharedIngest& s = SharedIngest::Get();
  auto group = s.LoadGroup(SharedIngest::PgConfig(), s.dir_pg);
  ASSERT_NE(group, nullptr);
  IngestOptions options;
  options.wal_path = s.WalPath("pg_eq").string();
  auto coordinator =
      IngestCoordinator::Create(group.get(), SharedIngest::PgConfig(), options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  DrainTail(coordinator->get(), s);

  // Brute reference over the union: with an unquantized, exhaustive-ef
  // index the PG retrieval is exact, so the reranked top-n must match.
  OfflineReference reference(s, SharedIngest::BruteConfig(), s.dir_brute);
  const std::vector<std::string> texts = s.Texts();
  const auto got = group->FindExpertsBatch(texts, kTopN);
  for (size_t q = 0; q < texts.size(); ++q) {
    const auto want = reference.engine->FindExperts(texts[q], kTopN);
    ASSERT_EQ(got[q].size(), want.size()) << "query " << q;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[q][i].author, want[i].author)
          << "query " << q << " rank " << i;
      EXPECT_NEAR(got[q][i].score, want[i].score, 1e-4)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(IngestTest, DuplicatesNeverDoubleApply) {
  SharedIngest& s = SharedIngest::Get();
  auto group = s.LoadGroup(SharedIngest::BruteConfig(), s.dir_brute);
  ASSERT_NE(group, nullptr);
  IngestOptions options;
  options.wal_path = s.WalPath("dups").string();
  auto coordinator = IngestCoordinator::Create(
      group.get(), SharedIngest::BruteConfig(), options);
  ASSERT_TRUE(coordinator.ok());

  std::vector<DripPaper> first(s.split.tail.begin(), s.split.tail.begin() + 8);
  auto once = (*coordinator)->Apply(ToIngestBatch(first));
  ASSERT_TRUE(once.ok());
  EXPECT_EQ(once->applied, 8u);
  EXPECT_EQ(once->duplicates, 0u);
  const size_t papers_after =
      group->Snapshot()->owned_dataset->Papers().size();

  auto twice = (*coordinator)->Apply(ToIngestBatch(first));
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->applied, 0u);
  EXPECT_EQ(twice->duplicates, 8u);
  EXPECT_EQ(group->Snapshot()->owned_dataset->Papers().size(), papers_after);

  // A batch mixing known and new papers applies only the new ones.
  std::vector<DripPaper> mixed(s.split.tail.begin() + 6,
                               s.split.tail.begin() + 10);
  auto mix = (*coordinator)->Apply(ToIngestBatch(mixed));
  ASSERT_TRUE(mix.ok());
  EXPECT_EQ(mix->applied, 2u);
  EXPECT_EQ(mix->duplicates, 2u);
  EXPECT_EQ(group->Snapshot()->owned_dataset->Papers().size(),
            papers_after + 2);
}

TEST(IngestTest, WalReplayReconstructsServingState) {
  SharedIngest& s = SharedIngest::Get();
  const fs::path wal = s.WalPath("replay");
  const std::vector<std::string> texts = s.Texts();

  std::vector<std::vector<ExpertScore>> before;
  {
    auto group = s.LoadGroup(SharedIngest::BruteConfig(), s.dir_brute);
    ASSERT_NE(group, nullptr);
    IngestOptions options;
    options.wal_path = wal.string();
    auto coordinator = IngestCoordinator::Create(
        group.get(), SharedIngest::BruteConfig(), options);
    ASSERT_TRUE(coordinator.ok());
    DrainTail(coordinator->get(), s);
    before = group->FindExpertsBatch(texts, kTopN);
  }  // crash-equivalent: coordinator and group torn down, WAL survives

  auto group = s.LoadGroup(SharedIngest::BruteConfig(), s.dir_brute);
  ASSERT_NE(group, nullptr);
  IngestOptions options;
  options.wal_path = wal.string();
  auto coordinator = IngestCoordinator::Create(
      group.get(), SharedIngest::BruteConfig(), options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  EXPECT_EQ((*coordinator)->Stats().replayed_records, kHoldout);
  EXPECT_GT(group->generation(), 1u);  // replay published a caught-up gen
  EXPECT_EQ(group->Snapshot()->owned_dataset->Papers().size(),
            s.full.Papers().size());

  const auto after = group->FindExpertsBatch(texts, kTopN);
  ASSERT_EQ(after.size(), before.size());
  for (size_t q = 0; q < before.size(); ++q) {
    ASSERT_EQ(after[q].size(), before[q].size()) << "query " << q;
    for (size_t i = 0; i < before[q].size(); ++i) {
      EXPECT_EQ(after[q][i].author, before[q][i].author)
          << "query " << q << " rank " << i;
      EXPECT_EQ(after[q][i].score, before[q][i].score)
          << "query " << q << " rank " << i;
    }
  }

  // Replaying is idempotent: the duplicates are skipped, not re-added.
  auto again = (*coordinator)->Apply(
      ToIngestBatch({s.split.tail.begin(), s.split.tail.begin() + 4}));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->applied, 0u);
  EXPECT_EQ(again->duplicates, 4u);
}

TEST(IngestTest, MergeEveryBatchServesSameAnswersAsNeverMerging) {
  SharedIngest& s = SharedIngest::Get();
  auto group_lazy = s.LoadGroup(SharedIngest::BruteConfig(), s.dir_brute);
  auto group_eager = s.LoadGroup(SharedIngest::BruteConfig(), s.dir_brute);
  ASSERT_NE(group_lazy, nullptr);
  ASSERT_NE(group_eager, nullptr);

  IngestOptions lazy_options;
  lazy_options.wal_path = s.WalPath("merge_lazy").string();
  lazy_options.merge_pending_edge_budget = 1u << 30;  // never trips
  lazy_options.merge_delta_byte_budget = 1u << 30;
  auto lazy = IngestCoordinator::Create(group_lazy.get(),
                                        SharedIngest::BruteConfig(),
                                        lazy_options);
  ASSERT_TRUE(lazy.ok());

  IngestOptions eager_options;
  eager_options.wal_path = s.WalPath("merge_eager").string();
  eager_options.merge_pending_edge_budget = 0;  // trips every batch
  auto eager = IngestCoordinator::Create(group_eager.get(),
                                         SharedIngest::BruteConfig(),
                                         eager_options);
  ASSERT_TRUE(eager.ok());

  DrainTail(lazy->get(), s);
  DrainTail(eager->get(), s);

  EXPECT_EQ((*lazy)->Stats().merges, 0u);
  EXPECT_GT((*lazy)->Stats().pending_delta_edges, 0u);
  EXPECT_GT((*eager)->Stats().merges, 0u);
  EXPECT_EQ((*eager)->Stats().pending_delta_edges, 0u);

  const std::vector<std::string> texts = s.Texts();
  const auto lazy_results = group_lazy->FindExpertsBatch(texts, kTopN);
  const auto eager_results = group_eager->FindExpertsBatch(texts, kTopN);
  for (size_t q = 0; q < texts.size(); ++q) {
    ASSERT_EQ(lazy_results[q].size(), eager_results[q].size());
    for (size_t i = 0; i < lazy_results[q].size(); ++i) {
      EXPECT_EQ(lazy_results[q][i].author, eager_results[q][i].author)
          << "query " << q << " rank " << i;
      EXPECT_NEAR(lazy_results[q][i].score, eager_results[q][i].score, 1e-5)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(IngestTest, RejectsEmptyTextAndShardedGroups) {
  SharedIngest& s = SharedIngest::Get();
  auto group = s.LoadGroup(SharedIngest::BruteConfig(), s.dir_brute);
  ASSERT_NE(group, nullptr);
  IngestOptions options;
  options.wal_path = s.WalPath("rejects").string();
  auto coordinator = IngestCoordinator::Create(
      group.get(), SharedIngest::BruteConfig(), options);
  ASSERT_TRUE(coordinator.ok());

  IngestBatch bad;
  bad.papers.push_back(IngestPaper{"", {"someone"}, "", {}, {}});
  EXPECT_FALSE((*coordinator)->Apply(bad).ok());

  // Still serving and still ingesting after the rejected batch.
  auto ok = (*coordinator)->Apply(
      ToIngestBatch({s.split.tail.begin(), s.split.tail.begin() + 2}));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->applied, 2u);

  // Sharded groups are rejected at Create.
  EngineGroup::Options sharded;
  sharded.engine = SharedIngest::BruteConfig();
  sharded.num_shards = 2;
  auto sharded_group = EngineGroup::Load(&s.split.base, &s.corpus, sharded,
                                         s.dir_brute.string());
  ASSERT_TRUE(sharded_group.ok());
  IngestOptions sharded_options;
  sharded_options.wal_path = s.WalPath("sharded").string();
  auto rejected = IngestCoordinator::Create(
      sharded_group->get(), SharedIngest::BruteConfig(), sharded_options);
  EXPECT_FALSE(rejected.ok());
}

}  // namespace
}  // namespace kpef

// End-to-end serving tests over real loopback sockets: keep-alive,
// pipelining, concurrent clients coalescing into batches, 429 shedding,
// 504 deadlines, hostile wire input, and graceful drain. The engine is
// faked through ExpertSearchService's BatchExecuteFn seam, so these
// tests exercise every serving layer except the model itself.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "serve/http_server.h"
#include "serve/service.h"

namespace kpef::serve {
namespace {

// --- Minimal blocking HTTP client ------------------------------------

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
};

class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool SendRaw(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool Post(const std::string& path, const std::string& body) {
    return SendRaw("POST " + path + " HTTP/1.1\r\ncontent-length: " +
                   std::to_string(body.size()) + "\r\n\r\n" + body);
  }

  bool PostWithHeaders(const std::string& path, const std::string& body,
                       const std::vector<std::string>& extra_headers) {
    std::string wire = "POST " + path + " HTTP/1.1\r\ncontent-length: " +
                       std::to_string(body.size()) + "\r\n";
    for (const std::string& h : extra_headers) wire += h + "\r\n";
    wire += "\r\n" + body;
    return SendRaw(wire);
  }

  bool Get(const std::string& path) {
    return SendRaw("GET " + path + " HTTP/1.1\r\n\r\n");
  }

  /// Reads exactly one response (headers + content-length body).
  bool ReadResponse(ClientResponse* out) {
    while (true) {
      const size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        return ParseAndFill(header_end, out);
      }
      if (!FillBuffer()) return false;
    }
  }

  /// True when the server closed the connection (EOF).
  bool WaitForClose() {
    while (true) {
      char c;
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n == 0) return true;
      if (n < 0) return errno == ECONNRESET;
      buffer_.push_back(c);
    }
  }

 private:
  bool FillBuffer() {
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<size_t>(n));
    return true;
  }

  bool ParseAndFill(size_t header_end, ClientResponse* out) {
    const std::string head = buffer_.substr(0, header_end);
    out->status = std::atoi(head.c_str() + 9);  // "HTTP/1.1 NNN ..."
    out->headers.clear();
    size_t line_start = head.find("\r\n") + 2;
    while (line_start < head.size()) {
      size_t line_end = head.find("\r\n", line_start);
      if (line_end == std::string::npos) line_end = head.size();
      const std::string line = head.substr(line_start, line_end - line_start);
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::string name = line.substr(0, colon);
        for (char& c : name) c = static_cast<char>(std::tolower(c));
        std::string value = line.substr(colon + 1);
        while (!value.empty() && value.front() == ' ') value.erase(0, 1);
        out->headers[name] = value;
      }
      line_start = line_end + 2;
    }
    const size_t content_length =
        static_cast<size_t>(std::atoll(out->headers["content-length"].c_str()));
    const size_t body_start = header_end + 4;
    while (buffer_.size() < body_start + content_length) {
      if (!FillBuffer()) return false;
    }
    out->body = buffer_.substr(body_start, content_length);
    buffer_.erase(0, body_start + content_length);
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

// --- Fake engine + service/server fixture ----------------------------

struct FakeEngine {
  std::mutex mutex;
  std::condition_variable cv;
  bool blocked = false;
  double sleep_ms = 0.0;
  std::vector<size_t> batch_sizes;

  BatchExecuteFn AsFn() {
    return [this](const std::vector<std::string>& texts, size_t top_n,
                  const BatchQueryOptions& options,
                  std::vector<QueryStats>* stats) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        batch_sizes.push_back(texts.size());
        cv.wait(lock, [this] { return !blocked; });
      }
      if (sleep_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      // Simulate the real engine's per-query trace attribution so the
      // serving layers' key plumbing is testable without a model.
      for (size_t q = 0; q < options.trace_keys.size(); ++q) {
        obs::RecordSpan(options.trace_keys[q], "engine.fake",
                        obs::Tracer::Global().NowNanos(), 1000);
      }
      stats->assign(texts.size(), QueryStats());
      std::vector<std::vector<ExpertScore>> results(texts.size());
      for (size_t q = 0; q < texts.size(); ++q) {
        for (size_t i = 0; i < top_n; ++i) {
          results[q].push_back(
              ExpertScore{static_cast<NodeId>(100 + i), 1.0 / (1.0 + i)});
        }
      }
      return results;
    };
  }

  void Block() {
    std::lock_guard<std::mutex> lock(mutex);
    blocked = true;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      blocked = false;
    }
    cv.notify_all();
  }
  size_t MaxBatchSize() {
    std::lock_guard<std::mutex> lock(mutex);
    size_t best = 0;
    for (size_t s : batch_sizes) best = std::max(best, s);
    return best;
  }
};

/// Server + service pair on an ephemeral port. Declaration order
/// matters: the server must outlive the service's batcher callbacks.
struct Harness {
  FakeEngine engine;
  std::unique_ptr<HttpServer> server;
  std::unique_ptr<ExpertSearchService> service;

  explicit Harness(ServiceConfig service_config = ServiceConfig(),
                   HttpServerConfig server_config = HttpServerConfig()) {
    EngineInfo info;
    info.display_name = "fake";
    info.num_papers = 10;
    info.num_experts = 5;
    info.embedding_dim = 8;
    info.has_index = true;
    service = std::make_unique<ExpertSearchService>(
        service_config, info, engine.AsFn(),
        [](NodeId id) { return "expert-" + std::to_string(id); });
    server = std::make_unique<HttpServer>(
        server_config, [this](const HttpRequest& request,
                              HttpServer::Responder respond) {
          service->Handle(request, std::move(respond));
        });
    const Status started = server->Start();
    if (!started.ok()) std::abort();
  }

  ~Harness() {
    server->ShutdownGracefully(2000.0);
    service->Drain();
  }

  uint16_t port() const { return server->port(); }
};

ServiceConfig FastConfig() {
  ServiceConfig config;
  config.batcher.max_batch_size = 8;
  config.batcher.max_queue_age_ms = 1.0;
  return config;
}

TEST(ServeServerTest, HealthzMetricsAndKeepAlive) {
  Harness harness(FastConfig());
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Get("/healthz"));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.body.find("\"engine\":\"fake\""), std::string::npos);
  EXPECT_EQ(response.headers["connection"], "keep-alive");

  // Same connection serves the next request (keep-alive).
  ASSERT_TRUE(client.Get("/metrics"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
#ifndef KPEF_METRICS_DISABLED
  EXPECT_NE(response.body.find("serve_requests"), std::string::npos);
#endif
}

TEST(ServeServerTest, FindExpertsHappyPath) {
  Harness harness(FastConfig());
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(
      client.Post("/v1/find_experts", R"({"query":"deep learning","n":3})"));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"experts\":[{\"id\":100,"),
            std::string::npos);
  EXPECT_NE(response.body.find("expert-100"), std::string::npos);
  EXPECT_NE(response.body.find("\"stats\":"), std::string::npos);
  // n=3 requested: exactly 3 expert objects.
  size_t count = 0;
  for (size_t pos = 0;
       (pos = response.body.find("\"id\":", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(ServeServerTest, UnknownRoutesAndMethods) {
  Harness harness(FastConfig());
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ClientResponse response;
  ASSERT_TRUE(client.Get("/nope"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 404);
  ASSERT_TRUE(client.Get("/v1/find_experts"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 405);
}

TEST(ServeServerTest, ConcurrentClientsCoalesceIntoBatches) {
  ServiceConfig config;
  config.batcher.max_batch_size = 8;
  config.batcher.max_queue_age_ms = 25.0;  // wide coalescing window
  Harness harness(config);
  constexpr int kClients = 8;
  std::vector<std::unique_ptr<TestClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<TestClient>(harness.port()));
    ASSERT_TRUE(clients.back()->connected());
  }
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      if (!clients[static_cast<size_t>(i)]->Post("/v1/find_experts",
                                                 R"({"query":"q"})")) {
        return;
      }
      ClientResponse response;
      if (clients[static_cast<size_t>(i)]->ReadResponse(&response) &&
          response.status == 200) {
        ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
  // The micro-batcher must have coalesced at least two concurrent
  // requests into one engine call.
  EXPECT_GT(harness.engine.MaxBatchSize(), 1u);
}

TEST(ServeServerTest, ShedsWith429AndRetryAfter) {
  ServiceConfig config;
  config.batcher.max_batch_size = 1;
  config.batcher.max_queue_age_ms = 0.0;
  config.batcher.max_pending = 1;
  Harness harness(config);
  harness.engine.Block();

  // First request occupies the engine; second fills the queue.
  TestClient first(harness.port());
  ASSERT_TRUE(first.Post("/v1/find_experts", R"({"query":"a"})"));
  // Wait for it to be popped into the (blocked) engine call.
  while (harness.engine.MaxBatchSize() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  TestClient second(harness.port());
  ASSERT_TRUE(second.Post("/v1/find_experts", R"({"query":"b"})"));
  // Give the queued request time to be admitted before overflowing.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  TestClient third(harness.port());
  ASSERT_TRUE(third.Post("/v1/find_experts", R"({"query":"c"})"));
  ClientResponse shed;
  ASSERT_TRUE(third.ReadResponse(&shed));
  EXPECT_EQ(shed.status, 429);
  EXPECT_EQ(shed.headers["retry-after"], "1");

  harness.engine.Release();
  ClientResponse response;
  ASSERT_TRUE(first.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  ASSERT_TRUE(second.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
}

TEST(ServeServerTest, DeadlineReturns504WithPartialFlag) {
  ServiceConfig config;
  config.batcher.max_batch_size = 1;
  config.batcher.max_queue_age_ms = 0.0;
  Harness harness(config);
  harness.engine.sleep_ms = 50.0;
  TestClient client(harness.port());
  ASSERT_TRUE(client.Post("/v1/find_experts",
                          R"({"query":"slow","deadline_ms":1})"));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 504);
  EXPECT_NE(response.body.find("\"partial\":true"), std::string::npos);
  EXPECT_NE(response.body.find("\"deadline_exceeded\":true"),
            std::string::npos);
}

TEST(ServeServerTest, MalformedBodiesReturn400) {
  Harness harness(FastConfig());
  for (const std::string& body :
       {std::string("{\"query\":"), std::string("[1,2,3]"),
        std::string("{\"query\":\"\xff\xfe\"}"), std::string("{\"n\":3}"),
        std::string("{\"query\":\"x\",\"n\":0}"),
        std::string("{\"query\":\"x\",\"n\":1.5}"),
        std::string("{\"query\":\"x\",\"deadline_ms\":-1}")}) {
    TestClient client(harness.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Post("/v1/find_experts", body));
    ClientResponse response;
    ASSERT_TRUE(client.ReadResponse(&response));
    EXPECT_EQ(response.status, 400) << body;
  }
}

TEST(ServeServerTest, HostileWireInputGets400AndClose) {
  Harness harness(FastConfig());
  {
    // Huge declared Content-Length: rejected before any body arrives.
    TestClient client(harness.port());
    ASSERT_TRUE(client.SendRaw(
        "POST /v1/find_experts HTTP/1.1\r\ncontent-length: "
        "99999999999\r\n\r\n"));
    ClientResponse response;
    ASSERT_TRUE(client.ReadResponse(&response));
    EXPECT_EQ(response.status, 400);
    EXPECT_EQ(response.headers["connection"], "close");
    EXPECT_TRUE(client.WaitForClose());
  }
  {
    // Garbage request line.
    TestClient client(harness.port());
    ASSERT_TRUE(client.SendRaw("NONSENSE\r\n\r\n"));
    ClientResponse response;
    ASSERT_TRUE(client.ReadResponse(&response));
    EXPECT_EQ(response.status, 400);
    EXPECT_TRUE(client.WaitForClose());
  }
}

TEST(ServeServerTest, PipelinedRequestsAnsweredInOrder) {
  Harness harness(FastConfig());
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  const std::string body = R"({"query":"q","n":1})";
  std::string wire;
  for (int i = 0; i < 2; ++i) {
    wire += "POST /v1/find_experts HTTP/1.1\r\ncontent-length: " +
            std::to_string(body.size()) + "\r\n\r\n" + body;
  }
  wire += "GET /healthz HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(client.SendRaw(wire));
  ClientResponse response;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.ReadResponse(&response)) << i;
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("experts"), std::string::npos);
  }
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ServeServerTest, GracefulDrainFinishesInFlightThenCloses) {
  ServiceConfig config;
  config.batcher.max_batch_size = 1;
  config.batcher.max_queue_age_ms = 0.0;
  Harness harness(config);
  harness.engine.Block();

  TestClient busy(harness.port());
  ASSERT_TRUE(busy.Post("/v1/find_experts", R"({"query":"inflight"})"));
  while (harness.engine.MaxBatchSize() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  TestClient idle(harness.port());  // keep-alive, nothing in flight
  ASSERT_TRUE(idle.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  std::thread drainer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    harness.engine.Release();
  });
  harness.server->ShutdownGracefully(5000.0);
  drainer.join();
  EXPECT_TRUE(harness.server->draining());

  // The in-flight request got a real response, marked connection:close.
  ClientResponse response;
  ASSERT_TRUE(busy.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["connection"], "close");
  EXPECT_TRUE(busy.WaitForClose());
  // The idle keep-alive connection was closed without a response.
  EXPECT_TRUE(idle.WaitForClose());
  // New connections are refused (listener is gone).
  TestClient late(harness.port());
  ClientResponse none;
  EXPECT_FALSE(late.connected() && late.Get("/healthz") &&
               late.ReadResponse(&none));
}

// --- Request-scoped observability (PR 6) ------------------------------

#ifdef KPEF_METRICS_DISABLED
#define KPEF_SKIP_IF_METRICS_DISABLED() \
  GTEST_SKIP() << "tracing compiled out (KPEF_METRICS_DISABLED)"
#else
#define KPEF_SKIP_IF_METRICS_DISABLED() \
  do {                                  \
  } while (0)
#endif

/// Thread-safe collector for the access-log sink seam.
struct LogLines {
  std::mutex mutex;
  std::vector<std::string> lines;

  obs::RequestLog::Sink AsSink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mutex);
      lines.push_back(line);
    };
  }
  std::vector<std::string> Snapshot() {
    std::lock_guard<std::mutex> lock(mutex);
    return lines;
  }
  /// First line containing `needle`, or "".
  std::string Find(const std::string& needle) {
    std::lock_guard<std::mutex> lock(mutex);
    for (const std::string& line : lines) {
      if (line.find(needle) != std::string::npos) return line;
    }
    return "";
  }
};

TEST(ServeObsTest, EveryResponseEchoesRequestId) {
  Harness harness(FastConfig());
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.PostWithHeaders("/v1/find_experts",
                                     R"({"query":"q","n":1})",
                                     {"x-request-id: my-req.01"}));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["x-request-id"], "my-req.01");
  EXPECT_NE(response.body.find("\"trace_id\":\"my-req.01\""),
            std::string::npos);

  // Without a client id, a server-generated one comes back.
  ASSERT_TRUE(client.Post("/v1/find_experts", R"({"query":"q","n":1})"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_FALSE(response.headers["x-request-id"].empty());
}

TEST(ServeObsTest, HostileRequestIdsAreSanitized) {
  Harness harness(FastConfig());
  struct Case {
    std::string raw;
    std::string expected;  // "" = server generates instead
  };
  const std::vector<Case> cases = {
      // Header-injection attempt: CR/LF cannot survive into the echoed
      // header (the parser rejects embedded CRLF outright, so test the
      // in-value control bytes that do parse).
      {"abc\tdef", "abcdef"},
      {"\xc3\xa9\xf0\x9f\x92\xa9", ""},  // UTF-8 junk: nothing survives
      {"{\"x\":1}", "x1"},               // JSON-injection attempt
      {std::string(200, 'a'), std::string(64, 'a')},  // over-long: clamped
  };
  for (const Case& c : cases) {
    TestClient client(harness.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.PostWithHeaders("/v1/find_experts",
                                       R"({"query":"q","n":1})",
                                       {"x-request-id: " + c.raw}));
    ClientResponse response;
    ASSERT_TRUE(client.ReadResponse(&response));
    EXPECT_EQ(response.status, 200);
    const std::string echoed = response.headers["x-request-id"];
    if (c.expected.empty()) {
      // Fully hostile ids are replaced by a generated one.
      EXPECT_EQ(echoed.rfind("req-", 0), 0u) << "raw: " << c.raw;
    } else {
      EXPECT_EQ(echoed, c.expected) << "raw: " << c.raw;
    }
    for (char ch : echoed) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) ||
                  ch == '-' || ch == '_' || ch == '.')
          << "unsanitized byte in echoed id: " << echoed;
    }
  }
}

TEST(ServeObsTest, AccessLogLineMatchesResponse) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  LogLines log;
  ServiceConfig config = FastConfig();
  config.access_log_sink = log.AsSink();
  Harness harness(config);
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.PostWithHeaders("/v1/find_experts",
                                     R"({"query":"q","n":2})",
                                     {"x-request-id: log-me-1"}));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  // The line is written before the response is released, so it must be
  // visible now.
  const std::string line = log.Find("log-me-1");
  ASSERT_FALSE(line.empty()) << "no access-log line for the request";
  EXPECT_NE(line.find("\"status\":200"), std::string::npos) << line;
  EXPECT_NE(line.find("\"top_n\":2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"e2e_ms\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"queue_wait_ms\":"), std::string::npos) << line;
  // Startup header line carries the build stamp.
  const std::string header = log.Find("\"event\":\"start\"");
  ASSERT_FALSE(header.empty());
  EXPECT_NE(header.find("\"git\":"), std::string::npos) << header;

  // A 400 is logged too.
  ASSERT_TRUE(client.PostWithHeaders("/v1/find_experts", "not json",
                                     {"x-request-id: log-me-2"}));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 400);
  const std::string bad = log.Find("log-me-2");
  ASSERT_FALSE(bad.empty());
  EXPECT_NE(bad.find("\"status\":400"), std::string::npos) << bad;
}

TEST(ServeObsTest, SlowRequestLandsInDebugSlowAndTrace) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer::Global().ClearRequestTraces();
  ServiceConfig config = FastConfig();
  config.slow_e2e_ms = 0.0001;  // every request crosses the tail bar
  config.trace_head_every = 0;  // heads off: retention is tail-only
  Harness harness(config);
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.PostWithHeaders("/v1/find_experts",
                                     R"({"query":"needle query","n":1})",
                                     {"x-request-id: slow-req-7"}));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);

  // The slow ring has the request, newest first, with its phase split.
  ASSERT_TRUE(client.Get("/v1/debug/slow"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"trace_id\":\"slow-req-7\""),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"query\":\"needle query\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"e2e_ms\":"), std::string::npos);

  // Tail-based retention: the full span tree is queryable by id even
  // though the request was not head-sampled.
  ASSERT_TRUE(client.Get("/v1/debug/trace?id=slow-req-7"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"trace_id\": \"slow-req-7\""),
            std::string::npos);
  for (const char* span :
       {"server.request", "serve.queue", "serve.batch", "engine.fake"}) {
    EXPECT_NE(response.body.find(span), std::string::npos)
        << "missing span " << span << " in " << response.body;
  }

  // Chrome trace-event export of the same trace.
  ASSERT_TRUE(client.Get("/v1/debug/trace?id=slow-req-7&format=chrome"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(response.body.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ServeObsTest, UnknownTraceIdReturns404) {
  Harness harness(FastConfig());
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ClientResponse response;
  ASSERT_TRUE(client.Get("/v1/debug/trace?id=never-seen"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 404);
  ASSERT_TRUE(client.Get("/v1/debug/trace"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 400);
}

TEST(ServeObsTest, FastUnsampledRequestIsNotRetained) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  obs::Tracer::Global().ClearRequestTraces();
  ServiceConfig config = FastConfig();
  config.trace_head_every = 0;   // no head sampling
  config.slow_e2e_ms = 1e9;      // tail bar unreachable
  config.slow_queue_wait_ms = 1e9;
  Harness harness(config);
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.PostWithHeaders("/v1/find_experts",
                                     R"({"query":"q","n":1})",
                                     {"x-request-id: dropped-req"}));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  ASSERT_TRUE(client.Get("/v1/debug/trace?id=dropped-req"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 404);
}

TEST(ServeObsTest, HealthzCarriesBuildStamp) {
  Harness harness(FastConfig());
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ClientResponse response;
  ASSERT_TRUE(client.Get("/healthz"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"git\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"build\":"), std::string::npos);
}

TEST(ServeObsTest, MetricsExposeQuantilesAndProcessGauges) {
  KPEF_SKIP_IF_METRICS_DISABLED();
  Harness harness(FastConfig());
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  // Drive one request so the latency histograms are populated.
  ASSERT_TRUE(client.Post("/v1/find_experts", R"({"query":"q","n":1})"));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  ASSERT_TRUE(client.Get("/metrics"));
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  for (const char* needle :
       {"serve_e2e_ms_quantile{quantile=\"0.99\"}",
        "serve_queue_wait_ms_quantile{quantile=\"0.5\"}",
        "process_rss_bytes", "process_open_fds", "process_uptime_seconds",
        "pool_queue_depth", "serve_traces_started"}) {
    EXPECT_NE(response.body.find(needle), std::string::npos)
        << "missing " << needle;
  }
}

}  // namespace
}  // namespace kpef::serve

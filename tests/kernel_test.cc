// Property tests for the dispatched distance kernels (embed/vector_ops.h):
// the scalar baseline and the AVX2 path must agree bit-for-bit on every
// input (the accumulation contract), and both must track a double-precision
// reference within the documented tolerance — on random and adversarial
// lengths, including unpadded spans and misaligned (offset) pointers.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "embed/matrix.h"
#include "embed/vector_ops.h"

namespace kpef {
namespace {

// Lengths chosen to hit every dispatch shape: sub-width, exact multiples
// of the 8-float kernel width, every tail residue, and large.
const size_t kLengths[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  15,
                           16, 17, 23, 24, 31, 32, 33, 63, 64, 100, 127,
                           128, 255, 256, 1000, 1024, 4096};

std::vector<float> RandomVec(Rng& rng, size_t n, double scale = 1.0) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Normal(0.0, scale));
  return v;
}

double ReferenceDot(const std::vector<float>& a, const std::vector<float>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double ReferenceSquaredL2(const std::vector<float>& a,
                          const std::vector<float>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

TEST(KernelDispatchTest, ScalarKernelAlwaysPresent) {
  const DistanceKernel& k = ScalarKernel();
  EXPECT_STREQ(k.name, "scalar");
  ASSERT_NE(k.dot, nullptr);
  ASSERT_NE(k.squared_l2, nullptr);
  ASSERT_NE(k.axpy, nullptr);
  ASSERT_NE(k.scale, nullptr);
}

TEST(KernelDispatchTest, ActiveKernelIsScalarOrAvx2) {
  const DistanceKernel& active = ActiveKernel();
  const DistanceKernel* avx2 = Avx2KernelOrNull();
  if (avx2 != nullptr) {
    EXPECT_TRUE(&active == &ScalarKernel() || &active == avx2);
  } else {
    EXPECT_EQ(&active, &ScalarKernel());
  }
}

// The core contract: runtime dispatch can never change a result, so the
// AVX2 path must match the scalar baseline EXACTLY (no tolerance).
TEST(KernelAgreementTest, Avx2MatchesScalarBitForBit) {
  const DistanceKernel* avx2 = Avx2KernelOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable";
  const DistanceKernel& scalar = ScalarKernel();
  Rng rng(42);
  for (size_t n : kLengths) {
    for (int rep = 0; rep < 8; ++rep) {
      // Mix magnitudes so lane sums are not trivially symmetric.
      const std::vector<float> a = RandomVec(rng, n, rep % 2 ? 1.0 : 100.0);
      const std::vector<float> b = RandomVec(rng, n, rep % 3 ? 1.0 : 0.01);
      const float dot_s = scalar.dot(a.data(), b.data(), n);
      const float dot_v = avx2->dot(a.data(), b.data(), n);
      EXPECT_EQ(dot_s, dot_v) << "dot n=" << n << " rep=" << rep;
      const float l2_s = scalar.squared_l2(a.data(), b.data(), n);
      const float l2_v = avx2->squared_l2(a.data(), b.data(), n);
      EXPECT_EQ(l2_s, l2_v) << "squared_l2 n=" << n << " rep=" << rep;

      std::vector<float> ys = a, yv = a;
      scalar.axpy(0.37f, b.data(), ys.data(), n);
      avx2->axpy(0.37f, b.data(), yv.data(), n);
      EXPECT_EQ(ys, yv) << "axpy n=" << n;
      std::vector<float> xs = a, xv = a;
      scalar.scale(-1.75f, xs.data(), n);
      avx2->scale(-1.75f, xv.data(), n);
      EXPECT_EQ(xs, xv) << "scale n=" << n;
    }
  }
}

// Unaligned/offset operands: kernels take raw pointers and must not
// assume 32-byte alignment (only Matrix rows guarantee that).
TEST(KernelAgreementTest, OffsetPointersAgree) {
  const DistanceKernel* avx2 = Avx2KernelOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable";
  const DistanceKernel& scalar = ScalarKernel();
  Rng rng(7);
  const std::vector<float> a = RandomVec(rng, 256 + 8);
  const std::vector<float> b = RandomVec(rng, 256 + 8);
  for (size_t offset = 0; offset < 8; ++offset) {
    for (size_t n : {29u, 64u, 113u, 256u}) {
      const float* pa = a.data() + offset;
      const float* pb = b.data() + (7 - offset);
      EXPECT_EQ(scalar.dot(pa, pb, n), avx2->dot(pa, pb, n))
          << "offset=" << offset << " n=" << n;
      EXPECT_EQ(scalar.squared_l2(pa, pb, n), avx2->squared_l2(pa, pb, n))
          << "offset=" << offset << " n=" << n;
    }
  }
}

// Adversarial accumulation orders: values spanning many magnitudes, sign
// cancellation, and constant vectors.
TEST(KernelAgreementTest, AdversarialValuesAgree) {
  const DistanceKernel* avx2 = Avx2KernelOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable";
  const DistanceKernel& scalar = ScalarKernel();
  for (size_t n : {17u, 40u, 129u}) {
    std::vector<float> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      // Alternating huge/tiny with sign flips stresses the lane sums.
      a[i] = (i % 2 ? 1.0f : -1.0f) * std::pow(10.0f, float(i % 9) - 4.0f);
      b[i] = (i % 3 ? -1.0f : 1.0f) * std::pow(10.0f, 4.0f - float(i % 7));
    }
    EXPECT_EQ(scalar.dot(a.data(), b.data(), n), avx2->dot(a.data(), b.data(), n));
    EXPECT_EQ(scalar.squared_l2(a.data(), b.data(), n),
              avx2->squared_l2(a.data(), b.data(), n));
  }
}

TEST(KernelAccuracyTest, TracksDoubleReference) {
  Rng rng(99);
  for (size_t n : kLengths) {
    if (n == 0) continue;
    const std::vector<float> a = RandomVec(rng, n);
    const std::vector<float> b = RandomVec(rng, n);
    const double ref_dot = ReferenceDot(a, b);
    const double ref_l2 = ReferenceSquaredL2(a, b);
    // Documented contract: <= 1e-4 relative error (plus a small absolute
    // floor for near-cancelling dots).
    const double dot_tol = 1e-4 * std::abs(ref_dot) + 1e-3;
    const double l2_tol = 1e-4 * ref_l2 + 1e-5;
    EXPECT_NEAR(Dot(a, b), ref_dot, dot_tol) << "n=" << n;
    EXPECT_NEAR(SquaredL2Distance(a, b), ref_l2, l2_tol) << "n=" << n;
  }
}

// Zero padding must be a no-op: a padded-span call returns exactly the
// logical-width result (this is what lets Matrix rows skip the tail).
TEST(KernelPaddingTest, PaddedCallMatchesLogicalCall) {
  Rng rng(5);
  for (size_t cols : {1u, 3u, 7u, 12u, 20u, 65u}) {
    Matrix m(2, cols);
    for (size_t r = 0; r < 2; ++r) {
      for (float& v : m.Row(r)) v = static_cast<float>(rng.Normal());
    }
    EXPECT_EQ(SquaredL2Distance(m.Row(0), m.Row(1)),
              SquaredL2Distance(m.PaddedRow(0), m.PaddedRow(1)))
        << "cols=" << cols;
    EXPECT_EQ(Dot(m.Row(0), m.Row(1)), Dot(m.PaddedRow(0), m.PaddedRow(1)))
        << "cols=" << cols;
    // And a free-standing query padded with PadToAligned agrees too.
    const AlignedVector q = PadToAligned(m.Row(1));
    EXPECT_EQ(SquaredL2Distance(m.Row(0), m.Row(1)),
              SquaredL2Distance(m.PaddedRow(0),
                                std::span<const float>(q.data(), q.size())))
        << "cols=" << cols;
  }
}

TEST(KernelPaddingTest, MatrixRowsAreAlignedAndZeroPadded) {
  Matrix m(5, 13, 2.5f);
  EXPECT_EQ(m.stride(), 16u);
  for (size_t r = 0; r < m.rows(); ++r) {
    const auto padded = m.PaddedRow(r);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(padded.data()) % kKernelAlignment,
              0u)
        << "row " << r;
    for (size_t c = m.cols(); c < m.stride(); ++c) {
      EXPECT_EQ(padded[c], 0.0f) << "row " << r << " pad col " << c;
    }
  }
}

TEST(VectorOpsTest, FreeFunctionsRouteThroughActiveKernel) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(Dot(a, b), 12.0f);
  EXPECT_FLOAT_EQ(SquaredL2Distance(a, b), 9.0f + 49.0f + 9.0f);
  EXPECT_FLOAT_EQ(L2Distance(a, b), std::sqrt(67.0f));
  EXPECT_FLOAT_EQ(L2Norm(a), std::sqrt(14.0f));
  std::vector<float> y = {1.0f, 1.0f, 1.0f};
  Axpy(2.0f, a, y);
  EXPECT_EQ(y, (std::vector<float>{3.0f, 5.0f, 7.0f}));
  Scale(0.5f, y);
  EXPECT_EQ(y, (std::vector<float>{1.5f, 2.5f, 3.5f}));
}

}  // namespace
}  // namespace kpef

// Incremental (k,P)-core maintenance and the DeltaProjection overlay.
//
// Ground truth: after ANY sequence of node/edge insertions, the
// incrementally maintained core numbers must equal CoreDecomposition
// over the merged graph, and the DeltaProjection's merged neighbor view
// must equal a flat rebuild. Randomized insertion orders over planted
// graphs exercise the subcore flood + peel across promotions.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "kpcore/core_decomposition.h"
#include "kpcore/core_maintenance.h"
#include "metapath/delta_projection.h"
#include "metapath/meta_path.h"
#include "metapath/projection.h"

namespace kpef {
namespace {

HomogeneousProjection EmptyProjection(size_t n) {
  std::vector<NodeId> nodes(n);
  for (size_t i = 0; i < n; ++i) nodes[i] = static_cast<NodeId>(i);
  return HomogeneousProjection::FromAdjacency(
      0, std::move(nodes), std::vector<std::vector<int32_t>>(n));
}

/// Flat rebuild of the delta view for ground truth.
HomogeneousProjection Rebuild(const DeltaProjection& graph) {
  std::vector<NodeId> nodes;
  std::vector<std::vector<int32_t>> adjacency;
  std::vector<int32_t> scratch;
  for (int32_t v = 0; v < static_cast<int32_t>(graph.NumNodes()); ++v) {
    nodes.push_back(graph.GlobalId(v));
    auto row = graph.Neighbors(v, scratch);
    adjacency.emplace_back(row.begin(), row.end());
  }
  return HomogeneousProjection::FromAdjacency(0, std::move(nodes),
                                              std::move(adjacency));
}

void ExpectCoresMatch(const DeltaProjection& graph,
                      const CoreMaintenance& cores, const char* label) {
  const std::vector<int32_t> want = CoreDecomposition(Rebuild(graph));
  ASSERT_EQ(cores.NumNodes(), want.size()) << label;
  for (size_t v = 0; v < want.size(); ++v) {
    EXPECT_EQ(cores.CoreOf(static_cast<int32_t>(v)), want[v])
        << label << " node " << v;
  }
}

TEST(CoreMaintenanceTest, TriangleThenClique) {
  HomogeneousProjection base = EmptyProjection(5);
  CoreMaintenance cores(base);
  DeltaProjection graph(std::move(base));
  const std::vector<std::pair<int32_t, int32_t>> edges = {
      {0, 1}, {1, 2}, {0, 2},          // triangle: cores 2
      {3, 4},                          // pendant pair: cores 1
      {0, 3}, {1, 3}, {2, 3},          // 3 joins the clique
      {0, 4}, {1, 4}, {2, 4}, {3, 4},  // duplicate {3,4} is a no-op
  };
  for (auto [u, v] : edges) {
    auto added = graph.AddEdge(u, v);
    ASSERT_TRUE(added.ok());
    if (*added) cores.OnEdgeInserted(graph, u, v);
    ExpectCoresMatch(graph, cores, "triangle-then-clique");
  }
  // K5 minus nothing: every core number is 4.
  for (int32_t v = 0; v < 5; ++v) EXPECT_EQ(cores.CoreOf(v), 4);
}

TEST(CoreMaintenanceTest, RandomizedInsertionsMatchDecomposition) {
  Rng rng(7);
  for (int round = 0; round < 5; ++round) {
    const size_t n = 24 + static_cast<size_t>(round) * 8;
    HomogeneousProjection base = EmptyProjection(n);
    CoreMaintenance cores(base);
    DeltaProjection graph(std::move(base));
    const size_t target_edges = n * 3;
    for (size_t e = 0; e < target_edges; ++e) {
      const int32_t u = static_cast<int32_t>(rng.Next() % n);
      const int32_t v = static_cast<int32_t>(rng.Next() % n);
      auto added = graph.AddEdge(u, v);
      ASSERT_TRUE(added.ok());
      if (*added) cores.OnEdgeInserted(graph, u, v);
      if (e % 16 == 0) ExpectCoresMatch(graph, cores, "randomized");
    }
    ExpectCoresMatch(graph, cores, "randomized-final");
  }
}

TEST(CoreMaintenanceTest, NodeAppendsStartAtZeroAndJoinCores) {
  HomogeneousProjection base = EmptyProjection(3);
  CoreMaintenance cores(base);
  DeltaProjection graph(std::move(base));
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  cores.OnEdgeInserted(graph, 0, 1);

  const int32_t fresh = graph.AddNode(static_cast<NodeId>(100));
  cores.OnNodeAdded();
  EXPECT_EQ(cores.CoreOf(fresh), 0);
  for (int32_t v : {0, 1, 2}) {
    auto added = graph.AddEdge(fresh, v);
    ASSERT_TRUE(added.ok() && *added);
    cores.OnEdgeInserted(graph, fresh, v);
  }
  ExpectCoresMatch(graph, cores, "appended-node");
}

TEST(CoreMaintenanceTest, GrowsFromRealProjection) {
  // Start from a real meta-path projection and densify it further: the
  // maintenance must agree with a fresh decomposition at every step even
  // when the base already has non-trivial cores.
  const Dataset dataset = GenerateDataset(TinyProfile());
  auto path = MetaPath::Parse(dataset.graph.schema(), "P-A-P");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  HomogeneousProjection base = ProjectHomogeneous(dataset.graph, *path);
  const size_t n = base.NumNodes();
  ASSERT_GT(n, 10u);
  CoreMaintenance cores(base);
  DeltaProjection graph(std::move(base));
  ExpectCoresMatch(graph, cores, "fresh-projection");

  Rng rng(11);
  for (size_t e = 0; e < 48; ++e) {
    const int32_t u = static_cast<int32_t>(rng.Next() % n);
    const int32_t v = static_cast<int32_t>(rng.Next() % n);
    auto added = graph.AddEdge(u, v);
    ASSERT_TRUE(added.ok());
    if (*added) cores.OnEdgeInserted(graph, u, v);
    if (e % 12 == 0) ExpectCoresMatch(graph, cores, "densified");
  }
  ExpectCoresMatch(graph, cores, "densified-final");
}

// --- DeltaProjection overlay invariants -------------------------------

TEST(DeltaProjectionTest, MergedViewMatchesRebuildAndCompactIsLossless) {
  Rng rng(3);
  const size_t n = 20;
  HomogeneousProjection base = [&] {
    std::vector<NodeId> nodes(n);
    std::vector<std::vector<int32_t>> adjacency(n);
    for (size_t i = 0; i < n; ++i) nodes[i] = static_cast<NodeId>(i);
    for (size_t e = 0; e < 30; ++e) {
      auto u = static_cast<int32_t>(rng.Next() % n);
      auto v = static_cast<int32_t>(rng.Next() % n);
      if (u == v) continue;
      adjacency[static_cast<size_t>(u)].push_back(v);
      adjacency[static_cast<size_t>(v)].push_back(u);
    }
    return HomogeneousProjection::FromAdjacency(0, std::move(nodes),
                                                std::move(adjacency));
  }();
  DeltaProjection graph(std::move(base));
  const size_t base_edges = graph.NumEdges();

  size_t inserted = 0;
  for (size_t e = 0; e < 40; ++e) {
    const int32_t u = static_cast<int32_t>(rng.Next() % n);
    const int32_t v = static_cast<int32_t>(rng.Next() % n);
    auto added = graph.AddEdge(u, v);
    ASSERT_TRUE(added.ok());
    if (*added) ++inserted;
  }
  EXPECT_EQ(graph.NumEdges(), base_edges + inserted);
  EXPECT_EQ(graph.PendingDeltaEdges(), inserted);

  // Self-loops rejected as no-ops, duplicates detected across base and
  // delta rows alike.
  auto self_loop = graph.AddEdge(1, 1);
  ASSERT_TRUE(self_loop.ok());
  EXPECT_FALSE(*self_loop);

  const HomogeneousProjection before = Rebuild(graph);
  graph.Compact();
  EXPECT_EQ(graph.PendingDeltaEdges(), 0u);
  EXPECT_EQ(graph.NumEdges(), before.NumEdges());
  std::vector<int32_t> scratch;
  for (int32_t v = 0; v < static_cast<int32_t>(n); ++v) {
    auto got = graph.Neighbors(v, scratch);
    auto want = before.Neighbors(v);
    ASSERT_EQ(got.size(), want.size()) << "node " << v;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "node " << v;
    EXPECT_EQ(graph.Degree(v), static_cast<int32_t>(want.size()));
  }
}

}  // namespace
}  // namespace kpef

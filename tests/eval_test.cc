#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/corpus_builder.h"
#include "data/dataset.h"
#include "data/queries.h"
#include "eval/evaluation.h"
#include "eval/metrics.h"
#include "eval/significance.h"

namespace kpef {
namespace {

TEST(PrecisionAtNTest, HandComputed) {
  const std::vector<NodeId> truth = {1, 3, 5, 7};
  EXPECT_DOUBLE_EQ(PrecisionAtN({1, 2, 3, 4, 5}, truth, 5), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN({1, 3}, truth, 2), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN({2, 4}, truth, 2), 0.0);
  // Fewer results than n: missing slots count as misses.
  EXPECT_DOUBLE_EQ(PrecisionAtN({1}, truth, 4), 0.25);
  EXPECT_DOUBLE_EQ(PrecisionAtN({}, truth, 5), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN({1, 2}, truth, 0), 0.0);
}

TEST(AveragePrecisionTest, HandComputed) {
  // Relevant at positions 1 and 3 of 4 retrieved; truth size 2.
  // AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecision({10, 20, 11, 21}, {10, 11}),
              (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
  // Perfect ranking.
  EXPECT_DOUBLE_EQ(AveragePrecision({1, 2}, {1, 2}), 1.0);
  // Nothing relevant.
  EXPECT_DOUBLE_EQ(AveragePrecision({5, 6}, {1, 2}), 0.0);
  // Empty inputs.
  EXPECT_DOUBLE_EQ(AveragePrecision({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision({1}, {}), 0.0);
}

TEST(AveragePrecisionTest, NormalizesByRetrievalDepth) {
  // Truth has 100 experts but only 2 retrieved, both relevant: AP = 1.
  std::vector<NodeId> truth;
  for (int i = 0; i < 100; ++i) truth.push_back(i);
  EXPECT_DOUBLE_EQ(AveragePrecision({0, 1}, truth), 1.0);
}

TEST(ReciprocalRankTest, HandComputed) {
  EXPECT_DOUBLE_EQ(ReciprocalRank({5, 1, 9}, {1, 9}), 0.5);
  EXPECT_DOUBLE_EQ(ReciprocalRank({1, 5}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({5, 6}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({}, {1}), 0.0);
}

TEST(RecallAtNTest, HandComputed) {
  const std::vector<NodeId> truth = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RecallAtN({1, 2, 9}, truth, 3), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtN({1, 2, 3, 4}, truth, 4), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtN({1, 2, 3, 4}, truth, 2), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtN({9}, truth, 5), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtN({1}, {}, 5), 0.0);
}

TEST(NdcgAtNTest, HandComputed) {
  // Single relevant item at rank 1: perfect nDCG.
  EXPECT_DOUBLE_EQ(NdcgAtN({1, 9}, {1}, 2), 1.0);
  // Relevant at rank 2 of 2 with one relevant total:
  // DCG = 1/log2(3), IDCG = 1/log2(2) = 1.
  EXPECT_NEAR(NdcgAtN({9, 1}, {1}, 2), 1.0 / std::log2(3.0), 1e-12);
  // No relevant retrieved.
  EXPECT_DOUBLE_EQ(NdcgAtN({8, 9}, {1}, 2), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtN({1}, {1}, 0), 0.0);
}

TEST(NdcgAtNTest, MonotoneInRankQuality) {
  const std::vector<NodeId> truth = {1, 2, 3};
  const double good = NdcgAtN({1, 2, 3, 9, 8}, truth, 5);
  const double bad = NdcgAtN({9, 8, 1, 2, 3}, truth, 5);
  EXPECT_GT(good, bad);
  EXPECT_GT(bad, 0.0);
}

TEST(MeanAveragePrecisionTest, AveragesQueries) {
  const std::vector<std::vector<NodeId>> rankings = {{1, 2}, {9, 8}};
  const std::vector<std::vector<NodeId>> truths = {{1, 2}, {1, 2}};
  EXPECT_DOUBLE_EQ(MeanAveragePrecision(rankings, truths), 0.5);
  EXPECT_DOUBLE_EQ(MeanAveragePrecision({}, {}), 0.0);
}

// A fake model that returns the ground truth (oracle) or wrong-but-valid
// authors (junk).
class OracleModel : public RetrievalModel {
 public:
  OracleModel(const Dataset* dataset, const QuerySet* queries, bool perfect)
      : dataset_(dataset), queries_(queries), perfect_(perfect) {}

  std::string name() const override { return perfect_ ? "Oracle" : "Junk"; }

  std::vector<ExpertScore> FindExperts(const std::string& query_text,
                                       size_t n) override {
    std::vector<ExpertScore> out;
    for (const Query& q : queries_->queries) {
      if (q.text != query_text) continue;
      if (perfect_) {
        for (size_t i = 0; i < std::min(n, q.ground_truth.size()); ++i) {
          out.push_back({q.ground_truth[i], 1.0 - 0.01 * i});
        }
      } else {
        // Valid authors that are NOT in the ground truth.
        for (NodeId author : dataset_->Authors()) {
          if (out.size() >= n) break;
          if (!std::binary_search(q.ground_truth.begin(),
                                  q.ground_truth.end(), author)) {
            out.push_back({author, 0.5});
          }
        }
      }
      break;
    }
    return out;
  }

 private:
  const Dataset* dataset_;
  const QuerySet* queries_;
  bool perfect_;
};

TEST(EvaluatorTest, OracleScoresPerfectlyAndJunkZero) {
  const Dataset dataset = GenerateDataset(TinyProfile());
  const QuerySet queries = GenerateQueries(dataset, 10, 5);
  const Corpus corpus = BuildPaperCorpus(dataset);
  const TfIdfModel tfidf(corpus);
  const Evaluator evaluator(&dataset, &queries, &corpus, &tfidf);

  OracleModel oracle(&dataset, &queries, true);
  const EvaluationResult good = evaluator.Evaluate(oracle, 20);
  EXPECT_GT(good.map, 0.99);
  EXPECT_GT(good.p_at_5, 0.99);
  EXPECT_GT(good.ads, 0.0);
  EXPECT_EQ(good.num_queries, 10u);

  OracleModel junk(&dataset, &queries, false);
  const EvaluationResult bad = evaluator.Evaluate(junk, 20);
  EXPECT_DOUBLE_EQ(bad.map, 0.0);
  EXPECT_DOUBLE_EQ(bad.p_at_5, 0.0);
}

TEST(PairedBootstrapTest, DetectsClearDifference) {
  std::vector<double> a(40), b(40);
  for (size_t i = 0; i < 40; ++i) {
    a[i] = 0.7 + 0.01 * (i % 5);
    b[i] = 0.3 + 0.01 * (i % 7);
  }
  const BootstrapResult r = PairedBootstrap(a, b, 2000, 3);
  EXPECT_NEAR(r.mean_difference, 0.4, 0.05);
  EXPECT_LT(r.p_value, 0.01);
  EXPECT_GT(r.ci_low, 0.0);
  EXPECT_GE(r.ci_high, r.ci_low);
}

TEST(PairedBootstrapTest, NoDifferenceIsInsignificant) {
  // Symmetric noise around zero difference.
  std::vector<double> a(50), b(50);
  for (size_t i = 0; i < 50; ++i) {
    a[i] = 0.5 + ((i % 2 == 0) ? 0.1 : -0.1);
    b[i] = 0.5 + ((i % 2 == 0) ? -0.1 : 0.1) * ((i % 4 < 2) ? 1 : -1);
  }
  const BootstrapResult r = PairedBootstrap(a, b, 2000, 5);
  EXPECT_GT(r.p_value, 0.05);
  EXPECT_LE(r.ci_low, 0.0);
  EXPECT_GE(r.ci_high, 0.0);
}

TEST(PairedBootstrapTest, EmptyInputsAreSafe) {
  const BootstrapResult r = PairedBootstrap({}, {});
  EXPECT_EQ(r.num_queries, 0u);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(PairedBootstrapTest, DeterministicForSeed) {
  std::vector<double> a = {0.2, 0.5, 0.9, 0.4};
  std::vector<double> b = {0.1, 0.6, 0.7, 0.2};
  const BootstrapResult r1 = PairedBootstrap(a, b, 500, 42);
  const BootstrapResult r2 = PairedBootstrap(a, b, 500, 42);
  EXPECT_DOUBLE_EQ(r1.p_value, r2.p_value);
  EXPECT_DOUBLE_EQ(r1.ci_low, r2.ci_low);
}

TEST(EvaluatorTest, PrintTableDoesNotCrash) {
  EvaluationResult r;
  r.model = "Test";
  PrintResultsTable({r});
}

}  // namespace
}  // namespace kpef

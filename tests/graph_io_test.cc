#include <sstream>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "graph/graph_io.h"
#include "test_graphs.h"

namespace kpef {
namespace {

void ExpectGraphsEqual(const HeteroGraph& a, const HeteroGraph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  ASSERT_EQ(a.schema().NumNodeTypes(), b.schema().NumNodeTypes());
  ASSERT_EQ(a.schema().NumEdgeTypes(), b.schema().NumEdgeTypes());
  for (size_t t = 0; t < a.schema().NumNodeTypes(); ++t) {
    EXPECT_EQ(a.schema().NodeTypeName(static_cast<NodeTypeId>(t)),
              b.schema().NodeTypeName(static_cast<NodeTypeId>(t)));
  }
  for (size_t r = 0; r < a.schema().NumEdgeTypes(); ++r) {
    const EdgeTypeId id = static_cast<EdgeTypeId>(r);
    EXPECT_EQ(a.schema().EdgeTypeName(id), b.schema().EdgeTypeName(id));
    EXPECT_EQ(a.schema().EdgeSrcType(id), b.schema().EdgeSrcType(id));
    EXPECT_EQ(a.schema().EdgeDstType(id), b.schema().EdgeDstType(id));
  }
  for (size_t v = 0; v < a.NumNodes(); ++v) {
    const NodeId id = static_cast<NodeId>(v);
    EXPECT_EQ(a.TypeOf(id), b.TypeOf(id));
    EXPECT_EQ(a.Label(id), b.Label(id));
    // Neighbor lists must match exactly, including order (author rank).
    for (size_t r = 0; r < a.schema().NumEdgeTypes(); ++r) {
      const auto na = a.Neighbors(id, static_cast<EdgeTypeId>(r));
      const auto nb = b.Neighbors(id, static_cast<EdgeTypeId>(r));
      ASSERT_EQ(na.size(), nb.size());
      for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
    }
  }
  EXPECT_EQ(a.Edges().size(), b.Edges().size());
  for (size_t e = 0; e < a.Edges().size(); ++e) {
    EXPECT_TRUE(a.Edges()[e] == b.Edges()[e]);
  }
}

TEST(GraphIoTest, RoundTripsFigure2Graph) {
  const Figure2Graph g = Figure2Graph::Make();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(g.graph, buffer).ok());
  auto loaded = LoadGraph(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsEqual(g.graph, *loaded);
}

TEST(GraphIoTest, RoundTripsGeneratedDataset) {
  const Dataset dataset = GenerateDataset(TinyProfile());
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(dataset.graph, buffer).ok());
  auto loaded = LoadGraph(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsEqual(dataset.graph, *loaded);
}

TEST(GraphIoTest, RoundTripsLabelsWithSpecialCharacters) {
  const AcademicSchema ids = AcademicSchema::Make();
  HeteroGraphBuilder builder(ids.schema);
  builder.AddNode(ids.paper, "tab\there newline\nthere backslash\\done");
  builder.AddNode(ids.paper, "");
  const HeteroGraph graph = std::move(builder).Build();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(graph, buffer).ok());
  auto loaded = LoadGraph(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Label(0), "tab\there newline\nthere backslash\\done");
  EXPECT_EQ(loaded->Label(1), "");
}

TEST(GraphIoTest, RoundTripsEmptyGraph) {
  const AcademicSchema ids = AcademicSchema::Make();
  HeteroGraphBuilder builder(ids.schema);
  const HeteroGraph graph = std::move(builder).Build();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(graph, buffer).ok());
  auto loaded = LoadGraph(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), 0u);
}

TEST(GraphIoTest, FileRoundTrip) {
  const Figure2Graph g = Figure2Graph::Make();
  const std::string path = ::testing::TempDir() + "/kpef_graph_io_test.kg";
  ASSERT_TRUE(SaveGraph(g.graph, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsEqual(g.graph, *loaded);
}

TEST(GraphIoTest, MissingFileIsIOError) {
  auto loaded = LoadGraph("/nonexistent/path/graph.kg");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(GraphIoTest, RejectsBadMagic) {
  std::stringstream buffer("not-a-graph 1\n");
  auto loaded = LoadGraph(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, RejectsBadVersion) {
  std::stringstream buffer("kpef-graph 99\n");
  EXPECT_FALSE(LoadGraph(buffer).ok());
}

TEST(GraphIoTest, RejectsTruncatedFile) {
  const Figure2Graph g = Figure2Graph::Make();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGraph(g.graph, buffer).ok());
  const std::string full = buffer.str();
  // Chop the file at several points; every prefix must fail cleanly.
  for (size_t fraction : {10u, 40u, 70u, 95u}) {
    std::stringstream truncated(full.substr(0, full.size() * fraction / 100));
    EXPECT_FALSE(LoadGraph(truncated).ok()) << fraction << "%";
  }
}

TEST(GraphIoTest, RejectsEdgeWithBadEndpointTypes) {
  std::stringstream buffer(
      "kpef-graph 1\n"
      "nodetypes 2\nA\nP\n"
      "edgetypes 1\nWrite 0 1\n"
      "nodes 2\n0\ta\n1\tp\n"
      "edges 1\n0 1 0\n");  // src is type P, Write expects A
  auto loaded = LoadGraph(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kpef

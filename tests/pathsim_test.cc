#include <gtest/gtest.h>

#include "data/dataset.h"
#include "metapath/pathsim.h"
#include "test_graphs.h"

namespace kpef {
namespace {

class PathSimTest : public ::testing::Test {
 protected:
  PathSimTest()
      : g_(Figure2Graph::Make()),
        pap_(*MetaPath::Parse(g_.ids.schema, "P-A-P")),
        sim_(g_.graph, pap_) {}

  Figure2Graph g_;
  MetaPath pap_;
  PathSim sim_;
};

TEST_F(PathSimTest, CountsCoAuthorPathInstances) {
  // p0 and p1 share exactly one author (a0): one P-A-P instance.
  EXPECT_EQ(sim_.CountPathInstances(g_.papers[0], g_.papers[1]), 1u);
  // p4 shares a1 with p3 and a2 with p5.
  EXPECT_EQ(sim_.CountPathInstances(g_.papers[4], g_.papers[3]), 1u);
  EXPECT_EQ(sim_.CountPathInstances(g_.papers[4], g_.papers[5]), 1u);
  // p0 and p5 are not co-authored.
  EXPECT_EQ(sim_.CountPathInstances(g_.papers[0], g_.papers[5]), 0u);
}

TEST_F(PathSimTest, SelfCountEqualsAuthorDegree) {
  // Self path instances p -> a -> p: one per author of p.
  EXPECT_EQ(sim_.CountPathInstances(g_.papers[0], g_.papers[0]), 1u);
  EXPECT_EQ(sim_.CountPathInstances(g_.papers[4], g_.papers[4]), 2u);
}

TEST_F(PathSimTest, SimilarityIsSymmetricAndBounded) {
  for (NodeId x : {g_.papers[0], g_.papers[3], g_.papers[4]}) {
    for (NodeId y : {g_.papers[1], g_.papers[5], g_.papers[8]}) {
      const double xy = sim_.Similarity(x, y);
      const double yx = sim_.Similarity(y, x);
      EXPECT_NEAR(xy, yx, 1e-12);
      EXPECT_GE(xy, 0.0);
      EXPECT_LE(xy, 1.0);
    }
  }
}

TEST_F(PathSimTest, SelfSimilarityIsOne) {
  EXPECT_DOUBLE_EQ(sim_.Similarity(g_.papers[0], g_.papers[0]), 1.0);
}

TEST_F(PathSimTest, IsolatedPaperScoresZero) {
  EXPECT_DOUBLE_EQ(sim_.Similarity(g_.papers[9], g_.papers[0]), 0.0);
  EXPECT_TRUE(sim_.TopK(g_.papers[9], 5).empty());
}

TEST_F(PathSimTest, TopKRanksCliqueMembersFirst) {
  const auto top = sim_.TopK(g_.papers[0], 3);
  ASSERT_EQ(top.size(), 3u);
  for (const auto& scored : top) {
    // All of p0's P-A-P neighbors are the clique members p1..p3.
    EXPECT_TRUE(scored.node == g_.papers[1] || scored.node == g_.papers[2] ||
                scored.node == g_.papers[3]);
    EXPECT_GT(scored.score, 0.0);
  }
  // Descending scores.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

TEST_F(PathSimTest, CitationPathSim) {
  PathSim cite_sim(g_.graph, *MetaPath::Parse(g_.ids.schema, "P-P"));
  // p1 cites p0; p1's only citation path to itself... P-P self instances:
  // p1 -> p0 is one instance to p0; self count for the 1-hop path means
  // p -> p which requires a self-citation: zero. Similarity degenerates.
  EXPECT_EQ(cite_sim.CountPathInstances(g_.papers[1], g_.papers[0]), 1u);
  EXPECT_EQ(cite_sim.CountPathInstances(g_.papers[1], g_.papers[1]), 0u);
  EXPECT_DOUBLE_EQ(cite_sim.Similarity(g_.papers[1], g_.papers[0]), 0.0);
}

TEST(PathSimDatasetTest, TopKMostlySameTopic) {
  const Dataset dataset = GenerateDataset(TinyProfile());
  PathSim sim(dataset.graph, *MetaPath::Parse(dataset.graph.schema(), "P-A-P"));
  size_t same = 0, total = 0;
  const auto& papers = dataset.Papers();
  for (size_t i = 0; i < papers.size(); i += 23) {
    const auto top = sim.TopK(papers[i], 5);
    const int32_t topic =
        dataset.paper_primary_topic[dataset.graph.LocalIndex(papers[i])];
    for (const auto& scored : top) {
      ++total;
      same += dataset.paper_primary_topic[dataset.graph.LocalIndex(
                  scored.node)] == topic;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(same) / total, 0.7);
}

}  // namespace
}  // namespace kpef

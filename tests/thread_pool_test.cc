#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace kpef {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { ++counter; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t count : {0u, 1u, 3u, 7u, 100u, 1000u}) {
    std::vector<std::atomic<int>> hits(count);
    ParallelFor(pool, count, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelForTest, SingleThreadedPoolDegeneratesToLoop) {
  ThreadPool pool(1);
  std::vector<int> order;
  ParallelFor(pool, 10, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // in-order execution on one thread
}

TEST(ParallelForTest, ResultsMatchSerialComputation) {
  ThreadPool pool(4);
  const size_t n = 5000;
  std::vector<double> parallel_out(n), serial_out(n);
  auto f = [](size_t i) {
    return static_cast<double>(i) * 0.5 + static_cast<double>(i % 7);
  };
  ParallelFor(pool, n, [&](size_t i) { parallel_out[i] = f(i); });
  for (size_t i = 0; i < n; ++i) serial_out[i] = f(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelForTest, DefaultPoolWorks) {
  std::atomic<size_t> total{0};
  ParallelFor(100, [&](size_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 4950u);
}

}  // namespace
}  // namespace kpef

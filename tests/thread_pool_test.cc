#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/thread_pool.h"

namespace kpef {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { ++counter; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t count : {0u, 1u, 3u, 7u, 100u, 1000u}) {
    std::vector<std::atomic<int>> hits(count);
    ParallelFor(pool, count, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelForTest, SingleThreadedPoolDegeneratesToLoop) {
  ThreadPool pool(1);
  std::vector<int> order;
  ParallelFor(pool, 10, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // in-order execution on one thread
}

TEST(ParallelForTest, ResultsMatchSerialComputation) {
  ThreadPool pool(4);
  const size_t n = 5000;
  std::vector<double> parallel_out(n), serial_out(n);
  auto f = [](size_t i) {
    return static_cast<double>(i) * 0.5 + static_cast<double>(i % 7);
  };
  ParallelFor(pool, n, [&](size_t i) { parallel_out[i] = f(i); });
  for (size_t i = 0; i < n; ++i) serial_out[i] = f(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelForTest, DefaultPoolWorks) {
  std::atomic<size_t> total{0};
  ParallelFor(100, [&](size_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 4950u);
}

// The acceptance case for the TaskGroup executor: a ParallelFor issued
// from inside a pool task must complete instead of deadlocking the
// worker on its own pool's queue.
TEST(ParallelForTest, NestedParallelForCompletes) {
  ThreadPool pool(4);
  const size_t outer = 8, inner = 64;
  std::vector<std::vector<std::atomic<int>>> hits(outer);
  for (auto& row : hits) {
    row = std::vector<std::atomic<int>>(inner);
  }
  ParallelFor(pool, outer, [&](size_t o) {
    ParallelFor(pool, inner, [&](size_t i) { hits[o][i].fetch_add(1); });
  });
  for (size_t o = 0; o < outer; ++o) {
    for (size_t i = 0; i < inner; ++i) {
      ASSERT_EQ(hits[o][i].load(), 1) << o << "," << i;
    }
  }
}

TEST(ParallelForTest, DeeplyNestedOnTinyPool) {
  // Two workers, three levels of nesting: only helping joins can finish
  // this — there are never enough workers to park one per level.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  ParallelFor(pool, 4, [&](size_t) {
    ParallelFor(pool, 4, [&](size_t) {
      ParallelFor(pool, 4, [&](size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ParallelForTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(pool, 256,
                  [&](size_t i) {
                    if (i == 97) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must stay usable: the exception cancelled the group, not
  // the workers.
  std::atomic<int> counter{0};
  ParallelFor(pool, 100, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmittedTaskExceptionRethrownAtWait) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::logic_error);
  // The group resets after the throwing join; later batches are clean.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(TaskGroupTest, FirstExceptionCancelsRemainingGroupTasks) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  group.Submit([] { throw std::runtime_error("first"); });
  // Give the throwing task a head start so most of the rest are still
  // queued when the group flips to cancelled.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 1000; ++i) {
    group.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_LT(ran.load(), 1000);
}

TEST(TaskGroupTest, ConcurrentCallersWaitOnlyForTheirOwnGroup) {
  ThreadPool pool(4);
  std::atomic<bool> release_slow{false};
  TaskGroup slow(pool);
  slow.Submit([&release_slow] {
    while (!release_slow.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // A fast group joined while the slow group still runs: its Wait()
  // must return without waiting on the foreign task.
  std::atomic<int> fast_done{0};
  TaskGroup fast(pool);
  for (int i = 0; i < 16; ++i) {
    fast.Submit([&fast_done] { fast_done.fetch_add(1); });
  }
  fast.Wait();
  EXPECT_EQ(fast_done.load(), 16);
  release_slow.store(true);
  slow.Wait();
}

TEST(ParallelForTest, TwoThreadsDriveOnePoolConcurrently) {
  ThreadPool pool(4);
  std::atomic<size_t> total_a{0}, total_b{0};
  std::thread a([&] {
    for (int round = 0; round < 20; ++round) {
      ParallelFor(pool, 200, [&](size_t i) { total_a.fetch_add(i); });
    }
  });
  std::thread b([&] {
    for (int round = 0; round < 20; ++round) {
      ParallelFor(pool, 200, [&](size_t i) { total_b.fetch_add(i); });
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(total_a.load(), 20u * 19900u);
  EXPECT_EQ(total_b.load(), 20u * 19900u);
}

TEST(ParallelForTest, PreCancelledTokenSkipsAllWork) {
  ThreadPool pool(4);
  CancelToken token = CancelToken::Cancellable();
  token.RequestCancel();
  std::atomic<int> ran{0};
  ParallelFor(pool, 1000, [&](size_t) { ran.fetch_add(1); }, token);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelForTest, MidFlightCancelStopsUnstartedChunks) {
  ThreadPool pool(2);
  CancelToken token = CancelToken::Cancellable();
  std::atomic<int> ran{0};
  ParallelFor(
      pool, 10000,
      [&](size_t i) {
        if (i == 0) token.RequestCancel();
        ran.fetch_add(1);
      },
      token);
  // Chunks already started finish; chunks checked after the request are
  // skipped, so at least one chunk's worth of work never ran.
  EXPECT_LT(ran.load(), 10000);
}

// --- Context hooks (request-trace propagation seam, PR 6) -------------

namespace context_hooks {

thread_local uint64_t tls_context = 0;

uint64_t Capture() { return tls_context; }
uint64_t Swap(uint64_t context) {
  const uint64_t prev = tls_context;
  tls_context = context;
  return prev;
}

/// Installs the test hooks for one test body, then uninstalls them so
/// the obs layer's real hooks (registered at static init in the full
/// binary) are not left shadowed for other tests.
class ScopedHooks {
 public:
  ScopedHooks() { ThreadPool::SetContextHooks(&Capture, &Swap); }
  ~ScopedHooks() { ThreadPool::SetContextHooks(nullptr, nullptr); }
};

}  // namespace context_hooks

TEST(ThreadPoolContextTest, SubmitterContextReachesWorker) {
  context_hooks::ScopedHooks hooks;
  ThreadPool pool(2);
  context_hooks::tls_context = 42;
  std::vector<uint64_t> seen(64, 0);
  for (size_t i = 0; i < seen.size(); ++i) {
    pool.Submit([&seen, i] { seen[i] = context_hooks::tls_context; });
  }
  context_hooks::tls_context = 0;
  pool.Wait();
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 42u) << "task " << i;
  }
}

TEST(ThreadPoolContextTest, DistinctSubmittersStayDistinct) {
  context_hooks::ScopedHooks hooks;
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 128;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> submitters;
  for (int s = 1; s <= kSubmitters; ++s) {
    submitters.emplace_back([&pool, &mismatches, s] {
      context_hooks::tls_context = static_cast<uint64_t>(s);
      for (int i = 0; i < kTasksEach; ++i) {
        pool.Submit([&mismatches, s] {
          if (context_hooks::tls_context != static_cast<uint64_t>(s)) {
            mismatches.fetch_add(1);
          }
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadPoolContextTest, WorkerContextRestoredBetweenTasks) {
  context_hooks::ScopedHooks hooks;
  ThreadPool pool(1);  // one worker: tasks run back to back
  context_hooks::tls_context = 7;
  pool.Submit([] {});
  pool.Wait();
  // After the contextful task, an uncontextful submitter's task must not
  // observe a stale key left on the worker.
  context_hooks::tls_context = 0;
  uint64_t observed = 99;
  pool.Submit([&observed] { observed = context_hooks::tls_context; });
  pool.Wait();
  EXPECT_EQ(observed, 0u);
}

TEST(ThreadPoolContextTest, ContextFlowsThroughNestedParallelFor) {
  context_hooks::ScopedHooks hooks;
  ThreadPool pool(3);
  context_hooks::tls_context = 11;
  std::atomic<int> wrong{0};
  ParallelFor(pool, 64, [&](size_t) {
    if (context_hooks::tls_context != 11) wrong.fetch_add(1);
    ParallelFor(pool, 8, [&](size_t) {
      if (context_hooks::tls_context != 11) wrong.fetch_add(1);
    });
  });
  context_hooks::tls_context = 0;
  EXPECT_EQ(wrong.load(), 0);
}

TEST(ThreadPoolContextTest, QueueDepthAndActiveWorkersObservable) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.QueueDepth(), 0u);
  EXPECT_EQ(pool.ActiveWorkers(), 0u);
  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&release, &started] {
      started.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  while (started.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.ActiveWorkers(), 2u);
  pool.Submit([] {});  // both workers busy: this one queues
  EXPECT_GE(pool.QueueDepth(), 1u);
  release.store(true);
  pool.Wait();
  EXPECT_EQ(pool.QueueDepth(), 0u);
  EXPECT_EQ(pool.ActiveWorkers(), 0u);
}

TEST(CancelTokenTest, NullTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.CanBeCancelled());
  EXPECT_FALSE(token.IsCancelled());
  token.RequestCancel();  // no-op, must not crash
  EXPECT_FALSE(token.IsCancelled());
}

TEST(CancelTokenTest, DeadlineFiresAndLatches) {
  CancelToken token = CancelToken::AfterMillis(5.0);
  EXPECT_FALSE(token.IsCancelled());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(token.IsCancelled());
  EXPECT_TRUE(token.IsCancelled());  // latched
}

TEST(CancelTokenTest, ParentCancellationPropagates) {
  CancelToken parent = CancelToken::Cancellable();
  CancelToken child = CancelToken::AfterMillis(60000.0, parent);
  EXPECT_FALSE(child.IsCancelled());
  parent.RequestCancel();
  EXPECT_TRUE(child.IsCancelled());
}

}  // namespace
}  // namespace kpef

#include "core/explain.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ranking/expert_score.h"

namespace kpef {

ExpertExplanation ExplainExpert(ExpertFindingEngine& engine,
                                const std::string& query_text,
                                NodeId author) {
  ExpertExplanation explanation;
  explanation.author = author;
  const Dataset& dataset = engine.dataset();
  const std::vector<NodeId> top_papers =
      engine.RetrievePapers(query_text, engine.config().top_m);
  for (size_t j = 0; j < top_papers.size(); ++j) {
    const auto authors =
        dataset.graph.Neighbors(top_papers[j], dataset.ids.write);
    for (size_t rank = 1; rank <= authors.size(); ++rank) {
      if (authors[rank - 1] != author) continue;
      ExpertEvidence evidence;
      evidence.paper = top_papers[j];
      evidence.paper_rank = j + 1;
      evidence.author_rank = rank;
      evidence.num_authors = authors.size();
      const double w =
          engine.config().contribution_weighting == ContributionWeighting::kZipf
              ? ZipfContribution(rank, authors.size())
              : 1.0 / static_cast<double>(authors.size());
      evidence.score_share = w / static_cast<double>(j + 1);
      explanation.total_score += evidence.score_share;
      explanation.evidence.push_back(evidence);
      break;
    }
  }
  std::sort(explanation.evidence.begin(), explanation.evidence.end(),
            [](const ExpertEvidence& a, const ExpertEvidence& b) {
              if (a.score_share != b.score_share) {
                return a.score_share > b.score_share;
              }
              return a.paper < b.paper;
            });
  return explanation;
}

ExpertProfile BuildExpertProfile(const Dataset& dataset, NodeId author) {
  ExpertProfile profile;
  profile.author = author;
  const HeteroGraph& graph = dataset.graph;
  std::unordered_set<NodeId> coauthors;
  std::unordered_set<NodeId> venues;
  std::unordered_map<NodeId, size_t> topic_counts;
  const auto papers = graph.Neighbors(author, dataset.ids.write);
  profile.num_papers = papers.size();
  for (NodeId paper : papers) {
    for (NodeId coauthor : graph.Neighbors(paper, dataset.ids.write)) {
      if (coauthor != author) coauthors.insert(coauthor);
    }
    for (NodeId venue : graph.Neighbors(paper, dataset.ids.publish)) {
      venues.insert(venue);
    }
    for (NodeId topic : graph.Neighbors(paper, dataset.ids.mention)) {
      ++topic_counts[topic];
    }
  }
  profile.num_coauthors = coauthors.size();
  profile.num_venues = venues.size();
  profile.topics.assign(topic_counts.begin(), topic_counts.end());
  std::sort(profile.topics.begin(), profile.topics.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return profile;
}

}  // namespace kpef

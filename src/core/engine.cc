#include "core/engine.h"

#include <algorithm>

#include "ann/brute_force.h"
#include "embed/model_io.h"
#include "common/build_info.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "metapath/meta_path.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"
#include "ranking/top_n_finder.h"

namespace kpef {

StatusOr<std::unique_ptr<ExpertFindingEngine>> ExpertFindingEngine::Build(
    const Dataset* dataset, const Corpus* corpus, const EngineConfig& config,
    const Matrix* pretrained_tokens, EngineBuildReport* report) {
  KPEF_TRACE_SPAN("engine.build");
  Timer total_timer;
  EngineBuildReport local_report;
  if (config.meta_paths.empty()) {
    return Status::InvalidArgument("at least one meta-path is required");
  }
  std::vector<MetaPath> paths;
  for (const std::string& text : config.meta_paths) {
    KPEF_ASSIGN_OR_RETURN(MetaPath path,
                          MetaPath::Parse(dataset->graph.schema(), text));
    if (path.SourceType() != dataset->ids.paper ||
        path.TargetType() != dataset->ids.paper) {
      return Status::InvalidArgument("meta-path " + text +
                                     " must connect papers");
    }
    paths.push_back(std::move(path));
  }

  auto engine = std::unique_ptr<ExpertFindingEngine>(
      new ExpertFindingEngine(dataset, corpus, config));

  // --- Pre-trained encoder (Θ_B).
  EncoderConfig encoder_config = config.encoder;
  Matrix tokens;
  {
    KPEF_TRACE_SPAN("engine.pretrain");
    ScopedTimer pretrain_timer(&local_report.pretrain_seconds);
    if (pretrained_tokens != nullptr) {
      tokens = *pretrained_tokens;
      encoder_config.dim = tokens.cols();
    } else {
      PretrainConfig pretrain = config.pretrain;
      pretrain.dim = encoder_config.dim;
      tokens = PretrainTokenEmbeddings(*corpus, pretrain).token_embeddings;
    }
  }
  if (config.use_weighted_pooling) {
    encoder_config.pooling = Pooling::kWeightedMean;
  }
  engine->encoder_ = std::make_unique<DocumentEncoder>(
      corpus->vocabulary().size(), encoder_config);
  engine->encoder_->SetTokenEmbeddings(tokens);
  if (config.use_weighted_pooling) {
    const Vocabulary& vocab = corpus->vocabulary();
    const double n_docs =
        std::max<size_t>(1, corpus->NumDocuments());
    std::vector<float> weights(vocab.size());
    for (size_t t = 0; t < vocab.size(); ++t) {
      const double p =
          vocab.DocumentFrequency(static_cast<TokenId>(t)) / n_docs;
      weights[t] = static_cast<float>(config.sif_a / (config.sif_a + p));
    }
    engine->encoder_->SetTokenWeights(std::move(weights));
  }

  // --- (k, P)-core based training data (§III-A/B).
  TrainingDataGenerator generator(dataset->graph, paths, dataset->ids.paper);
  SamplingConfig sampling;
  sampling.seed_fraction = config.seed_fraction;
  sampling.k = config.k;
  sampling.use_core = config.use_kpcore;
  sampling.strategy = config.negative_strategy;
  sampling.negatives_per_positive = config.negatives_per_positive;
  sampling.near_fraction = config.near_fraction;
  sampling.max_positives_per_seed = config.max_positives_per_seed;
  sampling.core_options = config.core_options;
  sampling.rng_seed = config.seed;
  {
    KPEF_TRACE_SPAN("engine.sampling");
    local_report.sampling = generator.Generate(sampling);
  }

  // --- Triplet fine-tuning (§III-C).
  TrainerConfig trainer_config = config.trainer;
  trainer_config.seed = config.seed + 1;
  TripletTrainer trainer(engine->encoder_.get(), corpus);
  {
    KPEF_TRACE_SPAN("engine.training");
    local_report.training =
        trainer.Train(local_report.sampling.triples, trainer_config);
  }

  // --- Paper embeddings E.
  {
    KPEF_TRACE_SPAN("engine.encode_corpus");
    ScopedTimer embed_timer(&local_report.embed_seconds);
    engine->embeddings_ = engine->encoder_->EncodeCorpus(*corpus);
  }

  // --- PG-Index (§IV-A).
  if (config.use_pg_index) {
    engine->index_ = std::make_unique<PGIndex>(PGIndex::Build(
        engine->embeddings_, config.pg_index, &local_report.index));
  }
  local_report.total_seconds = total_timer.ElapsedSeconds();
  KPEF_COUNTER_ADD(obs::kEngineBuildsTotal, 1);
  if (report) *report = local_report;
  return engine;
}

Status ExpertFindingEngine::SaveArtifacts(const std::string& dir) const {
  KPEF_RETURN_IF_ERROR(SaveEncoder(*encoder_, dir + "/encoder.bin"));
  KPEF_RETURN_IF_ERROR(SaveMatrix(embeddings_, dir + "/embeddings.bin"));
  if (index_) {
    KPEF_RETURN_IF_ERROR(index_->Save(dir + "/pgindex.bin"));
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<ExpertFindingEngine>>
ExpertFindingEngine::LoadFromArtifacts(const Dataset* dataset,
                                       const Corpus* corpus,
                                       const EngineConfig& config,
                                       const std::string& dir) {
  auto engine = std::unique_ptr<ExpertFindingEngine>(
      new ExpertFindingEngine(dataset, corpus, config));
  KPEF_ASSIGN_OR_RETURN(DocumentEncoder encoder,
                        LoadEncoder(dir + "/encoder.bin"));
  if (encoder.vocab_size() != corpus->vocabulary().size()) {
    return Status::FailedPrecondition(
        "encoder vocabulary does not match the corpus");
  }
  engine->encoder_ = std::make_unique<DocumentEncoder>(std::move(encoder));
  KPEF_ASSIGN_OR_RETURN(engine->embeddings_,
                        LoadMatrix(dir + "/embeddings.bin"));
  if (engine->embeddings_.rows() != corpus->NumDocuments()) {
    return Status::FailedPrecondition(
        "embedding count does not match the corpus");
  }
  // Cross-check every artifact's dimensionality: a mismatched set (e.g.
  // an encoder.bin from a different build next to stale embeddings)
  // would otherwise load fine and serve garbage distances.
  if (engine->encoder_->dim() != engine->embeddings_.cols()) {
    return Status::FailedPrecondition(
        "encoder dimension does not match the embeddings");
  }
  if (config.use_pg_index) {
    KPEF_ASSIGN_OR_RETURN(PGIndex index, PGIndex::Load(dir + "/pgindex.bin"));
    if (index.NumPoints() != engine->embeddings_.rows()) {
      return Status::FailedPrecondition(
          "index size does not match the embeddings");
    }
    if (index.points().cols() != engine->embeddings_.cols()) {
      return Status::FailedPrecondition(
          "index dimension does not match the embeddings");
    }
    // Whether the index is quantized follows the artifact; the rerank
    // depth is a serving-time knob, so the config wins over the saved
    // default.
    index.set_rerank_factor(config.pg_index.rerank_factor);
    engine->index_ = std::make_unique<PGIndex>(std::move(index));
  }
  engine->artifact_dir_ = dir;
  return engine;
}

StatusOr<std::unique_ptr<ExpertFindingEngine>> ExpertFindingEngine::FromParts(
    const Dataset* dataset, const Corpus* corpus, const EngineConfig& config,
    DocumentEncoder encoder, Matrix embeddings, std::unique_ptr<PGIndex> index,
    std::string artifact_dir) {
  auto engine = std::unique_ptr<ExpertFindingEngine>(
      new ExpertFindingEngine(dataset, corpus, config));
  if (encoder.vocab_size() != corpus->vocabulary().size()) {
    return Status::FailedPrecondition(
        "encoder vocabulary does not match the corpus");
  }
  if (embeddings.rows() != corpus->NumDocuments()) {
    return Status::FailedPrecondition(
        "embedding count does not match the corpus");
  }
  if (encoder.dim() != embeddings.cols()) {
    return Status::FailedPrecondition(
        "encoder dimension does not match the embeddings");
  }
  if (index != nullptr) {
    if (index->NumPoints() != embeddings.rows()) {
      return Status::FailedPrecondition(
          "index size does not match the embeddings");
    }
    if (index->points().cols() != embeddings.cols()) {
      return Status::FailedPrecondition(
          "index dimension does not match the embeddings");
    }
    index->set_rerank_factor(config.pg_index.rerank_factor);
  }
  engine->encoder_ = std::make_unique<DocumentEncoder>(std::move(encoder));
  engine->embeddings_ = std::move(embeddings);
  engine->index_ = std::move(index);
  engine->artifact_dir_ = std::move(artifact_dir);
  return engine;
}

EngineInfo ExpertFindingEngine::Info() const {
  EngineInfo info;
  info.display_name = config_.display_name;
  info.num_papers = dataset_->Papers().size();
  info.num_experts = dataset_->Authors().size();
  info.embedding_dim = embeddings_.cols();
  info.has_index = index_ != nullptr;
  info.quantized_index = index_ != nullptr && index_->quantized();
  info.use_ta = config_.use_ta;
  info.top_m = config_.top_m;
  info.git_hash = BuildGitHash();
  info.build_type = BuildType();
  info.artifact_dir = artifact_dir_;
  return info;
}

std::vector<NodeId> ExpertFindingEngine::RetrievePapers(
    const std::string& query_text, size_t m, QueryStats* stats) {
  KPEF_TRACE_SPAN("engine.retrieve_papers");
  Timer timer;
  double encode_ms = 0.0;
  std::vector<float> query;
  {
    KPEF_TRACE_SPAN("engine.encode");
    Timer encode_timer;
    query = encoder_->Encode(corpus_->EncodeQuery(query_text));
    encode_ms = encode_timer.ElapsedMillis();
  }
  std::vector<Neighbor> neighbors;
  uint64_t distance_computations = 0;
  if (index_) {
    PGIndex::SearchStats search_stats;
    const size_t ef = config_.search_ef == 0 ? m : config_.search_ef;
    neighbors = index_->Search(query, m, ef, &search_stats);
    distance_computations = search_stats.distance_computations +
                            search_stats.sq8_distance_computations;
  } else {
    neighbors = BruteForceSearch(embeddings_, query, m);
    distance_computations = embeddings_.rows();
  }
  const std::vector<NodeId>& papers = dataset_->Papers();
  std::vector<NodeId> result;
  result.reserve(neighbors.size());
  for (const Neighbor& nb : neighbors) result.push_back(papers[nb.id]);
  if (stats) {
    stats->retrieval_ms = timer.ElapsedMillis();
    stats->encode_ms = encode_ms;
    stats->distance_computations = distance_computations;
  }
  return result;
}

std::vector<ExpertScore> ExpertFindingEngine::FindExpertsWithStats(
    const std::string& query_text, size_t n, QueryStats* stats) {
  KPEF_TRACE_SPAN("engine.find_experts");
  Timer query_timer;
  const std::vector<NodeId> top_papers =
      RetrievePapers(query_text, config_.top_m, stats);
  Timer timer;
  const RankedLists lists =
      BuildRankedLists(dataset_->graph, dataset_->ids.write, top_papers,
                       config_.contribution_weighting);
  TopNStats top_stats;
  std::vector<ExpertScore> experts =
      config_.use_ta ? ThresholdTopN(lists, n, &top_stats)
                     : FullScanTopN(lists, n, &top_stats);
  // Stats flow from per-call locals into both the caller's QueryStats
  // and the registry, so the two views agree and concurrent queries
  // never share a mutable counter.
  if (stats) {
    stats->ranking_ms = timer.ElapsedMillis();
    stats->ranking_entries_accessed = top_stats.entries_accessed;
    stats->ta_early_terminated = top_stats.early_terminated;
  }
  KPEF_COUNTER_ADD(obs::kEngineQueriesTotal, 1);
  KPEF_HISTOGRAM_OBSERVE(obs::kEngineQueryLatencyMs,
                         query_timer.ElapsedMillis());
  return experts;
}

std::vector<ExpertScore> ExpertFindingEngine::FindExperts(
    const std::string& query_text, size_t n) {
  return FindExpertsWithStats(query_text, n, nullptr);
}

std::vector<std::vector<ExpertScore>> ExpertFindingEngine::FindExpertsBatch(
    const std::vector<std::string>& query_texts, size_t n,
    std::vector<QueryStats>* stats, ThreadPool* pool) {
  BatchQueryOptions options;
  options.pool = pool;
  return FindExpertsBatch(query_texts, n, options, stats);
}

std::vector<std::vector<ExpertScore>> ExpertFindingEngine::FindExpertsBatch(
    const std::vector<std::string>& query_texts, size_t n,
    const BatchQueryOptions& options, std::vector<QueryStats>* stats) {
  KPEF_TRACE_SPAN("engine.find_experts_batch");
  Timer batch_timer;
  const size_t batch = query_texts.size();
  std::vector<std::vector<ExpertScore>> results(batch);
  std::vector<QueryStats> local(batch);
  if (batch == 0) {
    if (stats) stats->clear();
    return results;
  }
  ThreadPool& workers =
      options.pool != nullptr ? *options.pool : ThreadPool::Default();
  CancelToken cancel = options.cancel;
  if (options.deadline_ms > 0.0) {
    cancel = CancelToken::AfterMillis(options.deadline_ms, options.cancel);
  }
  const bool cancellable = cancel.CanBeCancelled();
  // Per-slot deadlines: a query whose own budget expired is skipped by
  // every later phase (and compacted out of the batched search below),
  // independent of the whole-call token.
  const bool has_slot_deadlines = !options.deadlines.empty();
  KPEF_CHECK(!has_slot_deadlines || options.deadlines.size() == batch)
      << "BatchQueryOptions::deadlines must match the query list";
  const auto slot_expired = [&](size_t q) {
    return has_slot_deadlines &&
           CancelToken::Clock::now() >= options.deadlines[q];
  };
  // Per-query request-trace key (0 = untraced); phase lambdas install it
  // as the thread's context so their spans land in the right request.
  const auto trace_key = [&options](size_t q) -> uint64_t {
    return q < options.trace_keys.size() ? options.trace_keys[q] : 0;
  };

  // Encode all queries into one padded matrix (PG-Index consumes the
  // rows in place, no per-query copies). Each phase below records which
  // queries it completed; the cancel token latches, so a query whose
  // phase ran is known to have run on real inputs.
  Matrix queries(batch, encoder_->dim());
  std::vector<char> encoded(batch, 0);
  ParallelFor(
      workers, batch,
      [&](size_t q) {
        if (slot_expired(q)) return;
        obs::ScopedTraceContext trace_scope(trace_key(q));
        KPEF_TRACE_SPAN("engine.encode");
        Timer encode_timer;
        const std::vector<float> v =
            encoder_->Encode(corpus_->EncodeQuery(query_texts[q]));
        std::copy(v.begin(), v.end(), queries.Row(q).begin());
        // Encoding counts toward retrieval time, matching the serial
        // path where RetrievePapers times encode + search together.
        local[q].encode_ms = encode_timer.ElapsedMillis();
        local[q].retrieval_ms = local[q].encode_ms;
        encoded[q] = 1;
      },
      cancel);

  // Retrieval: one batched index search (or a brute-force fan-out).
  // Per-query retrieval time comes from the per-query SearchStats, so
  // it is a real wall-clock figure comparable to ranking_ms (the batch
  // searches overlap, so a batch-average would smear them).
  const size_t m = config_.top_m;
  const size_t ef = config_.search_ef == 0 ? m : config_.search_ef;
  std::vector<std::vector<Neighbor>> neighbors(batch);
  std::vector<char> retrieved(batch, 0);
  if (options.search || index_) {
    // Queries whose slot deadline expired between encode and here are
    // compacted out of the search matrix: they never enter a lockstep
    // group, so an already-504'd request stops costing traversal work.
    std::vector<size_t> live;
    live.reserve(batch);
    for (size_t q = 0; q < batch; ++q) {
      if (encoded[q] && !slot_expired(q)) live.push_back(q);
    }
    // Bound the batched search by the latest live slot deadline — the
    // call must not outlive every remaining budget even when the caller
    // passed no whole-call token (mixed-deadline batches).
    CancelToken search_cancel = cancel;
    if (has_slot_deadlines && !live.empty()) {
      auto latest = CancelToken::Clock::time_point::min();
      for (const size_t q : live) {
        latest = std::max(latest, options.deadlines[q]);
      }
      if (latest != CancelToken::Clock::time_point::max()) {
        search_cancel = CancelToken::WithDeadline(latest, cancel);
      }
    }
    const Matrix* search_input = &queries;
    Matrix compacted;
    if (live.size() != batch) {
      compacted = Matrix(live.size(), encoder_->dim());
      for (size_t i = 0; i < live.size(); ++i) {
        const auto row = queries.Row(live[i]);
        std::copy(row.begin(), row.end(), compacted.Row(i).begin());
      }
      search_input = &compacted;
    }
    std::vector<PGIndex::SearchStats> search_stats;
    const uint64_t search_start_ns = obs::Tracer::Global().NowNanos();
    std::vector<std::vector<Neighbor>> found =
        options.search
            ? options.search(*search_input, m, ef, &search_stats, workers,
                             search_cancel)
            : index_->SearchBatch(*search_input, m, ef, &search_stats,
                                  &workers, search_cancel);
    for (size_t i = 0; i < live.size(); ++i) {
      const size_t q = live[i];
      if (i < found.size()) neighbors[q] = std::move(found[i]);
      if (i >= search_stats.size()) continue;
      local[q].distance_computations =
          search_stats[i].distance_computations +
          search_stats[i].sq8_distance_computations;
      local[q].retrieval_ms += search_stats[i].search_ms;
      retrieved[q] = !search_stats[i].cancelled;
      // The index layer stays trace-free; attribute each query's share
      // of the batched search as a manual span anchored at dispatch.
      obs::RecordSpan(
          trace_key(q), "engine.search", search_start_ns,
          static_cast<uint64_t>(search_stats[i].search_ms * 1e6));
    }
  } else {
    ParallelFor(
        workers, batch,
        [&](size_t q) {
          if (!encoded[q] || slot_expired(q) ||
              (cancellable && cancel.IsCancelled())) {
            return;
          }
          obs::ScopedTraceContext trace_scope(trace_key(q));
          KPEF_TRACE_SPAN("engine.search");
          Timer search_timer;
          neighbors[q] = BruteForceSearch(embeddings_, queries.Row(q), m);
          local[q].distance_computations = embeddings_.rows();
          local[q].retrieval_ms += search_timer.ElapsedMillis();
          retrieved[q] = 1;
        },
        cancel);
  }

  // Ranking: independent per query over the shared (read-only) graph.
  const std::vector<NodeId>& papers = dataset_->Papers();
  std::vector<char> ranked(batch, 0);
  ParallelFor(
      workers, batch,
      [&](size_t q) {
        if (!retrieved[q] || slot_expired(q) ||
            (cancellable && cancel.IsCancelled())) {
          return;
        }
        obs::ScopedTraceContext trace_scope(trace_key(q));
        KPEF_TRACE_SPAN("engine.ranking");
        Timer ranking_timer;
        std::vector<NodeId> top_papers;
        top_papers.reserve(neighbors[q].size());
        for (const Neighbor& nb : neighbors[q]) {
          top_papers.push_back(papers[nb.id]);
        }
        const RankedLists lists =
            BuildRankedLists(dataset_->graph, dataset_->ids.write, top_papers,
                             config_.contribution_weighting);
        TopNStats top_stats;
        results[q] = config_.use_ta ? ThresholdTopN(lists, n, &top_stats)
                                    : FullScanTopN(lists, n, &top_stats);
        local[q].ranking_ms = ranking_timer.ElapsedMillis();
        local[q].ranking_entries_accessed = top_stats.entries_accessed;
        local[q].ta_early_terminated = top_stats.early_terminated;
        ranked[q] = 1;
      },
      cancel);

  uint64_t exceeded = 0;
  for (size_t q = 0; q < batch; ++q) {
    if (!ranked[q]) {
      local[q].deadline_exceeded = true;
      ++exceeded;
    }
  }
  if (exceeded > 0) {
    KPEF_COUNTER_ADD(obs::kEngineQueriesDeadlineExceeded, exceeded);
  }
  KPEF_COUNTER_ADD(obs::kEngineQueriesTotal, batch);
  KPEF_COUNTER_ADD(obs::kEngineBatchQueriesTotal, 1);
  KPEF_HISTOGRAM_OBSERVE(obs::kEngineBatchSize, batch);
  KPEF_HISTOGRAM_OBSERVE(obs::kEngineBatchLatencyMs,
                         batch_timer.ElapsedMillis());
  if (stats) *stats = std::move(local);
  return results;
}

}  // namespace kpef

// Explainability helpers: why was this expert returned for this query?
//
// The ranking score R(a) (Eq. 6) is a sum of per-paper contributions, so
// every recommendation decomposes exactly into (paper, retrieval rank,
// author rank, score share) tuples — the "expertise evidence" of the
// document-centric framework. ExpertProfile summarizes an author's
// standing in the graph independent of any query.

#ifndef KPEF_CORE_EXPLAIN_H_
#define KPEF_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/engine.h"

namespace kpef {

/// One piece of evidence behind a recommendation.
struct ExpertEvidence {
  NodeId paper = kInvalidNode;
  /// Retrieval rank I(p) of the paper for this query (1-based).
  size_t paper_rank = 0;
  /// The expert's author rank I(a) within the paper (1-based).
  size_t author_rank = 0;
  size_t num_authors = 0;
  /// Contribution S(a, p) to the ranking score.
  double score_share = 0.0;
};

/// Full explanation of one expert for one query.
struct ExpertExplanation {
  NodeId author = kInvalidNode;
  double total_score = 0.0;
  /// Evidence papers, descending by score share.
  std::vector<ExpertEvidence> evidence;
};

/// Recomputes the evidence decomposition for `author` under `query_text`
/// (same retrieval pipeline as FindExperts; deterministic).
ExpertExplanation ExplainExpert(ExpertFindingEngine& engine,
                                const std::string& query_text, NodeId author);

/// Query-independent summary of an author.
struct ExpertProfile {
  NodeId author = kInvalidNode;
  size_t num_papers = 0;
  /// Distinct co-authors over all papers.
  size_t num_coauthors = 0;
  /// Topics of the author's papers with paper counts, descending.
  std::vector<std::pair<NodeId, size_t>> topics;
  /// Venue spread (distinct venues published in).
  size_t num_venues = 0;
};

/// Builds the profile from the heterogeneous graph.
ExpertProfile BuildExpertProfile(const Dataset& dataset, NodeId author);

}  // namespace kpef

#endif  // KPEF_CORE_EXPLAIN_H_

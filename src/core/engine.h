// ExpertFindingEngine: the paper's full pipeline behind one facade.
//
// Offline (Build): meta-path (k, P)-core communities -> triple sampling ->
// triplet fine-tuning of the document encoder -> paper embeddings E ->
// PG-Index. Online (FindExperts): encode query -> top-m papers via
// PG-Index (or brute force) -> TA-based (or full-scan) top-n experts.

#ifndef KPEF_CORE_ENGINE_H_
#define KPEF_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ann/pg_index.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "data/dataset.h"
#include "embed/document_encoder.h"
#include "embed/pretrain.h"
#include "embed/trainer.h"
#include "eval/retrieval_model.h"
#include "ranking/expert_score.h"
#include "sampling/training_data.h"
#include "text/corpus.h"

namespace kpef {

/// Full pipeline configuration; defaults follow §VI-A scaled to the
/// synthetic corpora (top-m is proportionally smaller because the corpora
/// are ~500x smaller than the paper's).
struct EngineConfig {
  /// Meta-paths between papers; several entries activate the §V
  /// intersection. Default: the paper's best setting P-A-P ∩ P-T-P ("AT").
  std::vector<std::string> meta_paths = {"P-A-P", "P-T-P"};
  int32_t k = 4;

  // --- Sampling (§III-B).
  double seed_fraction = 0.3;
  bool use_kpcore = true;  // Table IV row 1 when false
  /// The paper defaults to kNear; with our from-scratch encoder the
  /// hard-only near negatives collapse the global geometry (documented in
  /// DESIGN.md §5 and measured by bench_negative_sampling), so the engine
  /// defaults to random negatives.
  NegativeStrategy negative_strategy = NegativeStrategy::kRandom;
  size_t negatives_per_positive = 3;
  /// See SamplingConfig::near_fraction.
  double near_fraction = 1.0;
  size_t max_positives_per_seed = 128;
  KPCoreSearchOptions core_options;

  // --- Embedding (§III-C).
  PretrainConfig pretrain;
  EncoderConfig encoder;
  /// Use frequency-weighted (SIF) pooling instead of the plain mean —
  /// our analog of a contextual encoder's attention; downweights
  /// background words. Overrides encoder.pooling when true.
  bool use_weighted_pooling = true;
  /// SIF weight parameter: w(t) = sif_a / (sif_a + p(t)).
  double sif_a = 1e-3;
  TrainerConfig trainer;

  // --- Retrieval (§IV).
  /// Author-contribution weighting of Eq. 4 (Zipf per the paper, or
  /// uniform = reciprocal-rank scoring for ablation).
  ContributionWeighting contribution_weighting = ContributionWeighting::kZipf;
  PGIndexConfig pg_index;
  size_t top_m = 400;
  /// Candidate-pool size of the greedy search (0 = top_m).
  size_t search_ef = 0;
  bool use_pg_index = true;  // Ours-3/4 of Figure 7 when false
  bool use_ta = true;        // Ours-2/4 of Figure 7 when false

  uint64_t seed = 1234;
  /// Display name in result tables.
  std::string display_name = "Ours";
};

/// Offline build diagnostics, one per phase.
struct EngineBuildReport {
  double pretrain_seconds = 0.0;
  SamplingResult sampling;
  TrainStats training;
  PGIndexBuildStats index;
  double embed_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Lightweight serving-time summary of a built/loaded engine — what a
/// health endpoint or a serving binary's startup banner needs, without
/// exposing the artifact objects themselves.
struct EngineInfo {
  std::string display_name;
  size_t num_papers = 0;
  size_t num_experts = 0;
  size_t embedding_dim = 0;
  bool has_index = false;
  /// The index traverses SQ8 codes with fp32 rerank (PGIndexConfig
  /// quantize / the loaded artifact's codes).
  bool quantized_index = false;
  bool use_ta = false;
  size_t top_m = 0;
  /// Build stamp (common/build_info.h): short git hash and build type.
  std::string git_hash;
  std::string build_type;
  /// Artifact generation serving queries (EngineGroup hot-swap; a bare
  /// engine is generation 1 of itself). Monotonic per process.
  uint64_t generation = 1;
  /// Corpus partitions the retrieval scatters over (1 = unsharded).
  size_t num_shards = 1;
  /// Directory the serving generation's artifacts were loaded from
  /// (empty for a freshly built, never-persisted engine).
  std::string artifact_dir;
  /// Queries answered by the serving generation since it was published.
  uint64_t generation_queries = 0;

  // --- Streaming-ingest state (IngestCoordinator; zero when the process
  // serves a static snapshot).
  /// Ingest records applied since startup (WAL replay + live batches).
  uint64_t ingest_records = 0;
  /// Byte offset of the last durable WAL record (replay position).
  uint64_t ingest_wal_bytes = 0;
  /// Graph + index delta edges not yet merged into the base CSRs.
  uint64_t ingest_pending_delta_edges = 0;
  /// Generation id published by the last delta merge (0 = never merged).
  uint64_t ingest_last_merge_generation = 0;
};

/// Per-query online statistics. In the batch path both timing fields are
/// real per-query wall-clock times (the retrieval time comes from the
/// per-query SearchStats inside SearchBatch), so they are comparable.
struct QueryStats {
  double retrieval_ms = 0.0;
  /// Query-encoding share of retrieval_ms (retrieval_ms = encode +
  /// index/brute-force search).
  double encode_ms = 0.0;
  double ranking_ms = 0.0;
  /// All retrieval distance evaluations: SQ8 traversal + fp32 rerank on
  /// a quantized index, plain fp32 otherwise — comparable across modes.
  uint64_t distance_computations = 0;
  size_t ranking_entries_accessed = 0;
  bool ta_early_terminated = false;
  /// True when the batch deadline (or external cancel token) fired
  /// before this query completed; its result list is empty and the
  /// timing fields cover only the phases that ran.
  bool deadline_exceeded = false;
};

/// Replaces the engine's own retrieval (index or brute-force scan) in
/// FindExpertsBatch — the seam EngineGroup uses to scatter the search
/// across per-shard indexes while sharing the engine's encode, deadline,
/// and ranking phases. Receives the encoded rows still live at the
/// search boundary, the retrieval depth `m`, the candidate-pool `ef`,
/// the batch pool, and the bounded cancel token. Must return one
/// neighbor list per query row, ascending by (distance, id), with ids
/// indexing the engine's paper rows, and resize `*stats` to the batch
/// (SearchStats::cancelled marks rows it skipped).
using BatchSearchFn = std::function<std::vector<std::vector<Neighbor>>(
    const Matrix& queries, size_t m, size_t ef,
    std::vector<PGIndex::SearchStats>* stats, ThreadPool& pool,
    const CancelToken& cancel)>;

/// Per-call knobs for FindExpertsBatch beyond the query list itself.
struct BatchQueryOptions {
  /// Pool the batch fans out over (nullptr = ThreadPool::Default()).
  ThreadPool* pool = nullptr;
  /// Soft wall-clock budget for the whole call, in milliseconds
  /// (<= 0 = none). Checked at per-query phase boundaries: queries
  /// finished before expiry return normally, the rest come back empty
  /// with QueryStats::deadline_exceeded set. The call never wedges.
  double deadline_ms = 0.0;
  /// External cancellation, combined with the deadline (whichever fires
  /// first wins). A null token never fires.
  CancelToken cancel;
  /// Per-query absolute deadlines (time_point::max() = none for that
  /// slot). When non-empty, must match the query list's size. Checked at
  /// phase boundaries: an expired query is skipped by later phases
  /// (compacted out of the batched search) and comes back empty with
  /// QueryStats::deadline_exceeded set, so one tight budget never keeps
  /// consuming engine time for a result nobody will read. The batched
  /// search itself is additionally bounded by the latest live slot
  /// deadline, so the call never outlives every budget.
  std::vector<CancelToken::Clock::time_point> deadlines;
  /// Retrieval override for EngineGroup's shard scatter (see
  /// BatchSearchFn). Null = the engine's own index / brute-force path.
  BatchSearchFn search;
  /// Per-query request-trace keys (obs::Tracer::BeginTrace). When
  /// non-empty, must match the query list's size; query q's encode /
  /// search / ranking spans are recorded into trace_keys[q] (0 entries
  /// skip recording). Empty = no request tracing.
  std::vector<uint64_t> trace_keys;
};

class ExpertFindingEngine : public RetrievalModel {
 public:
  /// Builds the full offline pipeline. `pretrained_tokens`, when provided,
  /// skips GloVe pre-training (lets benches share one pre-training run
  /// across methods). The dataset and corpus must outlive the engine.
  static StatusOr<std::unique_ptr<ExpertFindingEngine>> Build(
      const Dataset* dataset, const Corpus* corpus, const EngineConfig& config,
      const Matrix* pretrained_tokens = nullptr,
      EngineBuildReport* report = nullptr);

  /// Persists the offline artifacts (encoder.bin, embeddings.bin and,
  /// when built with an index, pgindex.bin) under `dir` (must exist).
  Status SaveArtifacts(const std::string& dir) const;

  /// Reconstructs a serving engine from artifacts written by
  /// SaveArtifacts, skipping sampling and training entirely. The dataset
  /// and corpus must be the ones the artifacts were built from.
  static StatusOr<std::unique_ptr<ExpertFindingEngine>> LoadFromArtifacts(
      const Dataset* dataset, const Corpus* corpus, const EngineConfig& config,
      const std::string& dir);

  /// Assembles a serving engine directly from in-memory parts — the
  /// streaming-ingest path, where the coordinator extends a loaded
  /// encoder/embedding/index set with appended rows and publishes the
  /// result as a new generation without touching disk. Cross-checks
  /// mirror LoadFromArtifacts: encoder vocab == corpus vocab, embedding
  /// rows == corpus documents, index (when present) matching the
  /// embedding shape. The dataset and corpus must outlive the engine.
  static StatusOr<std::unique_ptr<ExpertFindingEngine>> FromParts(
      const Dataset* dataset, const Corpus* corpus, const EngineConfig& config,
      DocumentEncoder encoder, Matrix embeddings,
      std::unique_ptr<PGIndex> index, std::string artifact_dir = "");

  std::string name() const override { return config_.display_name; }

  std::vector<ExpertScore> FindExperts(const std::string& query_text,
                                       size_t n) override;

  /// FindExperts with per-phase timing (efficiency benches).
  std::vector<ExpertScore> FindExpertsWithStats(const std::string& query_text,
                                                size_t n, QueryStats* stats);

  /// Answers every query in one call, fanning encoding, retrieval, and
  /// ranking across the thread pool (nullptr = ThreadPool::Default()).
  /// result[q] matches FindExperts(query_texts[q], n); per-query stats
  /// land in `*stats` (resized to the batch).
  std::vector<std::vector<ExpertScore>> FindExpertsBatch(
      const std::vector<std::string>& query_texts, size_t n,
      std::vector<QueryStats>* stats = nullptr, ThreadPool* pool = nullptr);

  /// FindExpertsBatch with a per-call deadline and/or cancellation (see
  /// BatchQueryOptions). Queries the deadline overtakes return empty
  /// with QueryStats::deadline_exceeded set; the rest are identical to
  /// the serial path.
  std::vector<std::vector<ExpertScore>> FindExpertsBatch(
      const std::vector<std::string>& query_texts, size_t n,
      const BatchQueryOptions& options,
      std::vector<QueryStats>* stats = nullptr);

  /// Top-m semantically similar papers for a query (§IV-B), best first.
  std::vector<NodeId> RetrievePapers(const std::string& query_text, size_t m,
                                     QueryStats* stats = nullptr);

  /// Adjusts the retrieval depth m without rebuilding (Figure 8(c)).
  void set_top_m(size_t m) { config_.top_m = m; }
  /// Toggles the TA path without rebuilding (Figure 7 variants).
  void set_use_ta(bool use_ta) { config_.use_ta = use_ta; }

  /// Serving-time summary (dimensions, corpus sizes, active retrieval
  /// paths) for health endpoints and startup logs.
  EngineInfo Info() const;

  const Dataset& dataset() const { return *dataset_; }
  const Corpus& corpus() const { return *corpus_; }
  const Matrix& embeddings() const { return embeddings_; }
  const DocumentEncoder& encoder() const { return *encoder_; }
  const PGIndex* index() const { return index_.get(); }
  const EngineConfig& config() const { return config_; }

 private:
  ExpertFindingEngine(const Dataset* dataset, const Corpus* corpus,
                      EngineConfig config)
      : dataset_(dataset), corpus_(corpus), config_(std::move(config)) {}

  const Dataset* dataset_;
  const Corpus* corpus_;
  EngineConfig config_;
  std::unique_ptr<DocumentEncoder> encoder_;
  Matrix embeddings_;
  std::unique_ptr<PGIndex> index_;
  /// Set by LoadFromArtifacts; empty for a freshly built engine.
  std::string artifact_dir_;
};

}  // namespace kpef

#endif  // KPEF_CORE_ENGINE_H_

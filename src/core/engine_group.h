// EngineGroup: sharded, hot-swappable serving facade over
// ExpertFindingEngine (DESIGN.md §14).
//
// Sharding: the paper corpus is partitioned round-robin over N shards
// (global row r lives in shard r % N), each shard carrying its own
// PG-Index (or brute-force row block). A batch query encodes once, the
// retrieval scatters PGIndex::SearchBatch across the shards on the
// shared ThreadPool, and the per-shard neighbor lists are k-way merged
// by (distance, global row) into the global top-m *before* ranking —
// the paper's per-paper ranked lists L_1..L_m and the TA threshold then
// see exactly the retrieval a single engine would have produced, so the
// sharded top-n is bit-identical to the single-engine path (equivalence
// contract; proof sketch in DESIGN.md §14).
//
// Hot swap: each artifact load produces an immutable Generation behind
// a std::shared_ptr<const Generation>. Queries snapshot the pointer for
// the duration of one batch; Reload() builds the next generation on the
// calling thread and publishes it with one pointer store. In-flight
// batches drain on the old generation, which is destroyed when the last
// snapshot releases — RCU semantics with shared_ptr as the grace
// period, no reader-side locks beyond one mutex-guarded pointer copy.

#ifndef KPEF_CORE_ENGINE_GROUP_H_
#define KPEF_CORE_ENGINE_GROUP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"

namespace kpef {

class EngineGroup {
 public:
  struct Options {
    /// Serving configuration applied to every generation (retrieval
    /// depth, rerank factor, TA toggle, ...). use_pg_index selects
    /// per-shard PG-Indexes vs per-shard brute-force scans.
    EngineConfig engine;
    /// Corpus partitions (>= 1). One shard serves straight through the
    /// loaded engine; N > 1 rebuilds per-shard indexes at load time.
    size_t num_shards = 1;
  };

  /// One corpus partition of a generation. In PG mode the index owns
  /// the shard's rows; in brute mode the embedding block does.
  struct Shard {
    /// rows[local] = global paper row (strictly increasing).
    std::vector<int32_t> rows;
    Matrix embeddings;
    std::unique_ptr<PGIndex> index;
  };

  /// An immutable, atomically published artifact load. Public so tests
  /// can hold snapshots and assert drain behavior (weak_ptr expiry).
  struct Generation {
    uint64_t id = 0;
    std::string artifact_dir;
    double load_seconds = 0.0;
    /// Streaming-ingest generations own deep copies of the grown
    /// dataset/corpus (a reload from disk serves the base ones via the
    /// group's pointers instead and these stay null). Declared before
    /// `engine`, which holds raw pointers into them, so destruction
    /// order (reverse declaration) tears the engine down first.
    std::shared_ptr<const Dataset> owned_dataset;
    std::shared_ptr<const Corpus> owned_corpus;
    /// The loaded engine: encoder + embeddings + (for num_shards == 1)
    /// the persisted index. Sharded generations route retrieval through
    /// `shards` instead via the engine's BatchSearchFn seam.
    std::unique_ptr<ExpertFindingEngine> engine;
    std::vector<Shard> shards;  // empty when num_shards == 1
    // Per-generation serving tallies (relaxed; exported as gauges).
    mutable std::atomic<uint64_t> queries{0};
    mutable std::atomic<uint64_t> latency_us{0};
    /// Snapshot of the publisher's ingest state (EngineInfo passthrough).
    uint64_t ingest_records = 0;
    uint64_t ingest_wal_bytes = 0;
    uint64_t ingest_pending_delta_edges = 0;
    uint64_t ingest_last_merge_generation = 0;
  };

  /// Loads generation 1 from `dir` (artifacts written by SaveArtifacts /
  /// `kpef_cli build`). The dataset and corpus must be the ones the
  /// artifacts were built from and must outlive the group.
  static StatusOr<std::unique_ptr<EngineGroup>> Load(const Dataset* dataset,
                                                     const Corpus* corpus,
                                                     Options options,
                                                     const std::string& dir);

  /// Builds the next generation from `dir` ("" = the current
  /// generation's directory) and atomically publishes it; in-flight
  /// queries finish on the old generation. On failure the current
  /// generation keeps serving untouched. Concurrent Reload() calls are
  /// serialized; safe to call from any thread while queries run.
  Status Reload(const std::string& dir);

  /// Atomically publishes an externally assembled generation (the
  /// streaming-ingest path: the IngestCoordinator builds a Generation
  /// holding deep copies of its staging dataset/corpus plus an engine
  /// over them, then swaps it in here). Assigns the next generation id
  /// (written into generation->id) under the same serialization as
  /// Reload and returns it. Restricted to unsharded groups — ingest
  /// appends rows, and re-sharding per batch would defeat the point.
  StatusOr<uint64_t> PublishExternal(std::shared_ptr<Generation> generation);

  /// Same contract as ExpertFindingEngine::FindExpertsBatch, answered
  /// by the current generation (snapshotted once per call). Sharded
  /// generations return bit-identical results to a single engine over
  /// the same corpus when the per-shard retrieval is exact (brute mode,
  /// or an exhaustive-ef unquantized index).
  std::vector<std::vector<ExpertScore>> FindExpertsBatch(
      const std::vector<std::string>& query_texts, size_t n,
      const BatchQueryOptions& options,
      std::vector<QueryStats>* stats = nullptr);

  std::vector<std::vector<ExpertScore>> FindExpertsBatch(
      const std::vector<std::string>& query_texts, size_t n,
      std::vector<QueryStats>* stats = nullptr, ThreadPool* pool = nullptr);

  /// The current generation (never null after a successful Load).
  std::shared_ptr<const Generation> Snapshot() const;

  /// Serving summary of the current generation, including generation id,
  /// shard count, artifact dir, and per-generation query tally.
  EngineInfo Info() const;

  /// Exports the generation gauges (serve.generation, per-generation
  /// request/latency) to the metrics registry; call at scrape time.
  void SampleMetrics() const;

  uint64_t generation() const { return Snapshot()->id; }
  size_t num_shards() const { return options_.num_shards; }
  const Dataset& dataset() const { return *dataset_; }

 private:
  EngineGroup(const Dataset* dataset, const Corpus* corpus, Options options)
      : dataset_(dataset), corpus_(corpus), options_(std::move(options)) {}

  /// Loads + shards one generation (does not publish).
  StatusOr<std::shared_ptr<const Generation>> BuildGeneration(
      const std::string& dir, uint64_t id) const;

  void Publish(std::shared_ptr<const Generation> generation);

  const Dataset* dataset_;
  const Corpus* corpus_;
  const Options options_;

  /// Serializes loaders (a reload is expensive; overlapping ones would
  /// race on the generation counter and thrash memory).
  std::mutex reload_mutex_;
  std::atomic<uint64_t> next_generation_{1};

  /// Guards only the pointer copy; readers hold it for nanoseconds.
  mutable std::mutex current_mutex_;
  std::shared_ptr<const Generation> current_;
};

}  // namespace kpef

#endif  // KPEF_CORE_ENGINE_GROUP_H_

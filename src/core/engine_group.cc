#include "core/engine_group.h"

#include <algorithm>
#include <utility>

#include "ann/brute_force.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"

namespace kpef {

namespace {

/// Scatter one encoded query batch across the generation's shards and
/// merge per-shard neighbors into the global top-m by (distance, global
/// row). Exactness: each shard returns its local top-m under the same
/// distance kernel on bit-identical rows, and the global top-m is a
/// subset of the union of shard-local top-m lists, so sorting the union
/// by Neighbor's (distance, id) order and truncating reproduces the
/// single-engine result exactly whenever the per-shard retrieval is
/// exact. Stats: counters sum across shards; search_ms takes the max
/// (shards overlap in time on a multi-core pool).
std::vector<std::vector<Neighbor>> ScatterSearch(
    const EngineGroup::Generation& gen, const Matrix& queries, size_t m,
    size_t ef, std::vector<PGIndex::SearchStats>* stats, ThreadPool& pool,
    const CancelToken& cancel) {
  const size_t nq = queries.rows();
  const size_t ns = gen.shards.size();
  std::vector<std::vector<std::vector<Neighbor>>> found(ns);
  std::vector<std::vector<PGIndex::SearchStats>> shard_stats(ns);
  // Nested ParallelFor is safe on this pool (helping joins): each shard
  // task runs its own SearchBatch fan-out on the same workers.
  ParallelFor(
      pool, ns,
      [&](size_t s) {
        const EngineGroup::Shard& shard = gen.shards[s];
        if (shard.index) {
          found[s] = shard.index->SearchBatch(queries, m, ef, &shard_stats[s],
                                              &pool, cancel);
        } else {
          found[s].resize(nq);
          shard_stats[s].resize(nq);
          const bool cancellable = cancel.CanBeCancelled();
          std::vector<char> done(nq, 0);
          ParallelFor(
              pool, nq,
              [&](size_t q) {
                if (cancellable && cancel.IsCancelled()) return;
                Timer timer;
                found[s][q] =
                    BruteForceSearch(shard.embeddings, queries.Row(q), m);
                shard_stats[s][q].distance_computations =
                    shard.embeddings.rows();
                shard_stats[s][q].search_ms = timer.ElapsedMillis();
                done[q] = 1;
              },
              cancel);
          for (size_t q = 0; q < nq; ++q) {
            shard_stats[s][q].cancelled = !done[q];
          }
        }
      },
      cancel);

  std::vector<std::vector<Neighbor>> merged(nq);
  if (stats) stats->assign(nq, PGIndex::SearchStats{});
  ParallelFor(
      pool, nq,
      [&](size_t q) {
        std::vector<Neighbor> all;
        all.reserve(ns * m);
        PGIndex::SearchStats agg;
        for (size_t s = 0; s < ns; ++s) {
          const auto& st =
              q < shard_stats[s].size() ? shard_stats[s][q]
                                        : PGIndex::SearchStats{};
          // A shard the token skipped leaves this query's global result
          // incomplete; surface that as cancelled rather than serving a
          // silently narrower corpus.
          agg.cancelled = agg.cancelled || st.cancelled ||
                          q >= found[s].size();
          agg.distance_computations += st.distance_computations;
          agg.sq8_distance_computations += st.sq8_distance_computations;
          agg.rerank_candidates += st.rerank_candidates;
          agg.hops += st.hops;
          agg.search_ms = std::max(agg.search_ms, st.search_ms);
          if (q >= found[s].size()) continue;
          const std::vector<int32_t>& rows = gen.shards[s].rows;
          for (const Neighbor& nb : found[s][q]) {
            all.push_back(Neighbor{rows[nb.id], nb.distance});
          }
        }
        std::sort(all.begin(), all.end());
        if (all.size() > m) all.resize(m);
        if (agg.cancelled) all.clear();
        merged[q] = std::move(all);
        if (stats) (*stats)[q] = agg;
      },
      cancel);
  return merged;
}

}  // namespace

StatusOr<std::unique_ptr<EngineGroup>> EngineGroup::Load(
    const Dataset* dataset, const Corpus* corpus, Options options,
    const std::string& dir) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  auto group = std::unique_ptr<EngineGroup>(
      new EngineGroup(dataset, corpus, std::move(options)));
  KPEF_ASSIGN_OR_RETURN(
      std::shared_ptr<const Generation> generation,
      group->BuildGeneration(dir, group->next_generation_.fetch_add(1) ));
  group->Publish(std::move(generation));
  return group;
}

StatusOr<std::shared_ptr<const EngineGroup::Generation>>
EngineGroup::BuildGeneration(const std::string& dir, uint64_t id) const {
  Timer timer;
  auto generation = std::make_shared<Generation>();
  generation->id = id;
  generation->artifact_dir = dir;

  // A sharded generation never loads the persisted full-corpus index:
  // the engine carries encoder + embeddings + ranking config, and the
  // retrieval runs through the per-shard indexes built below.
  EngineConfig inner = options_.engine;
  if (options_.num_shards > 1) inner.use_pg_index = false;
  KPEF_ASSIGN_OR_RETURN(
      generation->engine,
      ExpertFindingEngine::LoadFromArtifacts(dataset_, corpus_, inner, dir));

  if (options_.num_shards > 1) {
    const Matrix& embeddings = generation->engine->embeddings();
    const size_t n = embeddings.rows();
    const size_t dim = embeddings.cols();
    const size_t ns = std::min(options_.num_shards, std::max<size_t>(n, 1));
    generation->shards.resize(ns);
    for (size_t s = 0; s < ns; ++s) {
      Shard& shard = generation->shards[s];
      for (size_t r = s; r < n; r += ns) {
        shard.rows.push_back(static_cast<int32_t>(r));
      }
      shard.embeddings = Matrix(shard.rows.size(), dim);
      for (size_t local = 0; local < shard.rows.size(); ++local) {
        const auto src = embeddings.Row(shard.rows[local]);
        std::copy(src.begin(), src.end(),
                  shard.embeddings.Row(local).begin());
      }
      if (options_.engine.use_pg_index && !shard.rows.empty()) {
        shard.index = std::make_unique<PGIndex>(
            PGIndex::Build(shard.embeddings, options_.engine.pg_index));
        shard.index->set_rerank_factor(options_.engine.pg_index.rerank_factor);
        // The index owns its own copy of the rows; the staging block
        // only stays for brute-mode shards.
        shard.embeddings = Matrix();
      }
    }
  }
  generation->load_seconds = timer.ElapsedSeconds();
  return std::shared_ptr<const Generation>(std::move(generation));
}

void EngineGroup::Publish(std::shared_ptr<const Generation> generation) {
  std::lock_guard<std::mutex> lock(current_mutex_);
  current_ = std::move(generation);
}

std::shared_ptr<const EngineGroup::Generation> EngineGroup::Snapshot() const {
  std::lock_guard<std::mutex> lock(current_mutex_);
  return current_;
}

StatusOr<uint64_t> EngineGroup::PublishExternal(
    std::shared_ptr<Generation> generation) {
  if (generation == nullptr || generation->engine == nullptr) {
    return Status::InvalidArgument("external generation must carry an engine");
  }
  if (options_.num_shards > 1) {
    return Status::FailedPrecondition(
        "streaming ingest requires an unsharded group");
  }
  std::lock_guard<std::mutex> reload_lock(reload_mutex_);
  const uint64_t id = next_generation_.fetch_add(1);
  generation->id = id;
  Publish(std::shared_ptr<const Generation>(std::move(generation)));
  return id;
}

Status EngineGroup::Reload(const std::string& dir) {
  std::lock_guard<std::mutex> reload_lock(reload_mutex_);
  std::string target = dir;
  if (target.empty()) target = Snapshot()->artifact_dir;
  auto built = BuildGeneration(target, next_generation_.load());
  if (!built.ok()) return built.status();
  // The id is consumed only on success so a failed load never burns a
  // generation number (health checks count published generations).
  next_generation_.fetch_add(1);
  Publish(std::move(built).value());
  return Status::OK();
}

std::vector<std::vector<ExpertScore>> EngineGroup::FindExpertsBatch(
    const std::vector<std::string>& query_texts, size_t n,
    const BatchQueryOptions& options, std::vector<QueryStats>* stats) {
  // The snapshot keeps the generation (engine, shards, indexes) alive
  // for the whole call even if a reload publishes mid-batch.
  const std::shared_ptr<const Generation> gen = Snapshot();
  Timer timer;
  std::vector<std::vector<ExpertScore>> results;
  if (gen->shards.empty()) {
    results = gen->engine->FindExpertsBatch(query_texts, n, options, stats);
  } else {
    BatchQueryOptions scatter = options;
    const Generation* raw = gen.get();
    scatter.search = [raw](const Matrix& queries, size_t m, size_t ef,
                           std::vector<PGIndex::SearchStats>* search_stats,
                           ThreadPool& pool, const CancelToken& cancel) {
      return ScatterSearch(*raw, queries, m, ef, search_stats, pool, cancel);
    };
    results = gen->engine->FindExpertsBatch(query_texts, n, scatter, stats);
  }
  gen->queries.fetch_add(query_texts.size(), std::memory_order_relaxed);
  gen->latency_us.fetch_add(
      static_cast<uint64_t>(timer.ElapsedMillis() * 1000.0),
      std::memory_order_relaxed);
  return results;
}

std::vector<std::vector<ExpertScore>> EngineGroup::FindExpertsBatch(
    const std::vector<std::string>& query_texts, size_t n,
    std::vector<QueryStats>* stats, ThreadPool* pool) {
  BatchQueryOptions options;
  options.pool = pool;
  return FindExpertsBatch(query_texts, n, options, stats);
}

EngineInfo EngineGroup::Info() const {
  const std::shared_ptr<const Generation> gen = Snapshot();
  EngineInfo info = gen->engine->Info();
  info.generation = gen->id;
  info.num_shards = std::max<size_t>(1, gen->shards.size());
  info.artifact_dir = gen->artifact_dir;
  info.generation_queries = gen->queries.load(std::memory_order_relaxed);
  if (!gen->shards.empty()) {
    info.has_index = gen->shards.front().index != nullptr;
    info.quantized_index =
        info.has_index && gen->shards.front().index->quantized();
  }
  info.ingest_records = gen->ingest_records;
  info.ingest_wal_bytes = gen->ingest_wal_bytes;
  info.ingest_pending_delta_edges = gen->ingest_pending_delta_edges;
  info.ingest_last_merge_generation = gen->ingest_last_merge_generation;
  return info;
}

void EngineGroup::SampleMetrics() const {
  const std::shared_ptr<const Generation> gen = Snapshot();
  const uint64_t queries = gen->queries.load(std::memory_order_relaxed);
  const uint64_t latency_us = gen->latency_us.load(std::memory_order_relaxed);
  KPEF_GAUGE_SET(obs::kServeGeneration, static_cast<double>(gen->id));
  KPEF_GAUGE_SET(obs::kServeShards,
                 static_cast<double>(std::max<size_t>(1, gen->shards.size())));
  KPEF_GAUGE_SET(obs::kServeGenerationQueries, static_cast<double>(queries));
  KPEF_GAUGE_SET(obs::kServeGenerationLatencyMsMean,
                 queries == 0 ? 0.0
                              : latency_us / 1000.0 /
                                    static_cast<double>(queries));
  KPEF_GAUGE_SET(obs::kServeGenerationLoadSeconds, gen->load_seconds);
}

}  // namespace kpef

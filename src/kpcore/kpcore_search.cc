#include "kpcore/kpcore_search.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/logging.h"
#include "kpcore/neighbor_source.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

namespace kpef {
namespace {

// Algorithm 1 over any neighbor source (on-the-fly BFS or CSR
// projection). Both sources deliver each node's P-neighbors sorted
// ascending, so every instantiation produces bit-identical communities.
template <typename NeighborSource>
KPCoreCommunity KPCoreSearchImpl(NeighborSource& source, NodeId seed,
                                 int32_t k,
                                 const KPCoreSearchOptions& options) {
  KPCoreCommunity result;
  result.seed = seed;

  // --- Candidate nodes selection (Algorithm 1 lines 2-11). ---
  // Dense-local bookkeeping over discovered papers.
  std::unordered_map<NodeId, int32_t> local_of;
  std::vector<NodeId> nodes;
  std::vector<std::vector<NodeId>> psi;  // full P-neighbor list per node
  std::vector<char> expanded_from;       // qualified (deg >= k) and expanded
  auto intern = [&](NodeId v) {
    auto [it, inserted] =
        local_of.emplace(v, static_cast<int32_t>(nodes.size()));
    if (inserted) {
      nodes.push_back(v);
      psi.emplace_back();
      expanded_from.push_back(0);
    }
    return it->second;
  };
  intern(seed);
  std::deque<int32_t> queue = {0};
  std::deque<int32_t> delete_queue;  // D
  std::vector<char> in_delete(1, 0);
  std::vector<NodeId> nbrs;  // reused per-poll scratch
  size_t polled = 0;
  size_t pruned = 0;  // sub-k papers whose expansion Theorem 1 skipped
  while (!queue.empty()) {
    const int32_t v = queue.front();
    queue.pop_front();
    ++polled;
    source.Collect(nodes[v], nbrs);
    psi[v] = nbrs;
    const bool qualified =
        static_cast<int32_t>(nbrs.size()) >= k || !options.enable_pruning;
    if (!qualified) ++pruned;
    if (qualified) {
      expanded_from[v] = 1;
      for (NodeId u : nbrs) {
        const size_t before = nodes.size();
        const int32_t lu = intern(u);  // may grow `psi`
        if (nodes.size() > before) {
          in_delete.push_back(0);
          queue.push_back(lu);
        }
      }
    }
    if (static_cast<int32_t>(nbrs.size()) < k) {
      delete_queue.push_back(v);
      in_delete[v] = 1;
    }
  }
  result.papers_expanded = polled;
  result.edges_scanned = source.edges_scanned();
  // Merge one search's local tallies into the global registry at once;
  // searches run concurrently in callers, so the loop above must not
  // touch shared counters per node.
  KPEF_COUNTER_ADD(obs::kKpcoreSearchesTotal, 1);
  KPEF_COUNTER_ADD(obs::kKpcoreNodesVisited, polled);
  KPEF_COUNTER_ADD(obs::kKpcoreNodesPruned, pruned);
  KPEF_COUNTER_ADD(obs::kKpcoreEdgesScanned, result.edges_scanned);
  KPEF_HISTOGRAM_OBSERVE(obs::kKpcoreDeleteQueueSize, delete_queue.size());

  // --- Unpromising nodes prune (lines 12-18). ---
  // Degree of each candidate counted within the candidate set.
  const size_t n = nodes.size();
  std::vector<int32_t> count(n, 0);
  std::vector<char> removed(n, 0);
  for (size_t v = 0; v < n; ++v) {
    int32_t c = 0;
    for (NodeId u : psi[v]) {
      auto it = local_of.find(u);
      if (it != local_of.end()) ++c;
    }
    count[v] = c;
    // With pruning disabled every discovered node was expanded; with it
    // enabled, sub-k nodes are already queued for deletion above.
  }
  while (!delete_queue.empty()) {
    const int32_t v = delete_queue.front();
    delete_queue.pop_front();
    if (removed[v]) continue;
    removed[v] = 1;
    result.near_negatives.push_back(nodes[v]);
    for (NodeId u : psi[v]) {
      auto it = local_of.find(u);
      if (it == local_of.end()) continue;
      const int32_t lu = it->second;
      if (removed[lu] || in_delete[lu]) continue;
      if (--count[lu] < k) {
        in_delete[lu] = 1;
        delete_queue.push_back(lu);
      }
    }
  }

  // Connected community-search semantics: the seed's component among the
  // survivors.
  const int32_t seed_local = 0;
  if (!removed[seed_local]) {
    std::vector<char> visited(n, 0);
    std::vector<int32_t> stack = {seed_local};
    visited[seed_local] = 1;
    while (!stack.empty()) {
      const int32_t v = stack.back();
      stack.pop_back();
      result.core.push_back(nodes[v]);
      for (NodeId u : psi[v]) {
        auto it = local_of.find(u);
        if (it == local_of.end()) continue;
        const int32_t lu = it->second;
        if (!removed[lu] && !visited[lu]) {
          visited[lu] = 1;
          stack.push_back(lu);
        }
      }
    }
  }
  std::sort(result.core.begin(), result.core.end());
  // Discovery order: nodes were interned in BFS order from the seed.
  result.core_by_discovery.reserve(result.core.size());
  for (size_t v = 0; v < n; ++v) {
    if (result.CoreContains(nodes[v])) {
      result.core_by_discovery.push_back(nodes[v]);
    }
  }

  // --- (k, P)-core extension (lines 19-20). ---
  if (options.enable_extension) {
    for (NodeId u : psi[seed_local]) {
      if (result.extension.size() >= options.max_extension) break;
      if (!result.CoreContains(u)) result.extension.push_back(u);
    }
    std::sort(result.extension.begin(), result.extension.end());
  }

  // Near negatives: D members that are neither the seed nor re-admitted by
  // the extension.
  std::sort(result.near_negatives.begin(), result.near_negatives.end());
  result.near_negatives.erase(
      std::unique(result.near_negatives.begin(), result.near_negatives.end()),
      result.near_negatives.end());
  std::vector<NodeId> filtered;
  filtered.reserve(result.near_negatives.size());
  for (NodeId v : result.near_negatives) {
    if (v == seed) continue;
    if (std::binary_search(result.extension.begin(), result.extension.end(),
                           v)) {
      continue;
    }
    filtered.push_back(v);
  }
  result.near_negatives = std::move(filtered);
  return result;
}

// Projection-specialized Algorithm 1. The generic template above pays a
// hash lookup per edge (NodeId -> dense slot) and copies every neighbor
// list; with a CSR covering all papers we can run the whole search in
// projection-local index space — neighbor lists are zero-copy spans and
// the candidate-set membership test is one flat-array read. Every phase
// visits nodes/edges in exactly the order of the template instantiated
// over ProjectionNeighborSource (CSR rows are sorted, and local order
// equals NodeId order within one type), so the output is bit-identical;
// BackendEquivalenceTest enforces this.
KPCoreCommunity ProjectionKPCoreSearch(const HeteroGraph& graph,
                                       const HomogeneousProjection& projection,
                                       NodeId seed, int32_t k,
                                       const KPCoreSearchOptions& options) {
  KPCoreCommunity result;
  result.seed = seed;
  const size_t n = projection.NumNodes();
  const int32_t seed_local = static_cast<int32_t>(graph.LocalIndex(seed));

  // --- Candidate nodes selection (Algorithm 1 lines 2-11). ---
  std::vector<int32_t> slot_of(n, -1);  // projection local -> candidate slot
  std::vector<int32_t> nodes;           // candidate slot -> projection local
  nodes.push_back(seed_local);
  slot_of[seed_local] = 0;
  std::deque<int32_t> queue = {0};
  std::deque<int32_t> delete_queue;  // D, candidate slots
  std::vector<char> in_delete(1, 0);
  size_t polled = 0;
  size_t pruned = 0;
  uint64_t edges_scanned = 0;
  while (!queue.empty()) {
    const int32_t v = queue.front();
    queue.pop_front();
    ++polled;
    const auto nbrs = projection.Neighbors(nodes[v]);
    edges_scanned += nbrs.size();
    const int32_t deg = static_cast<int32_t>(nbrs.size());
    const bool qualified = deg >= k || !options.enable_pruning;
    if (!qualified) ++pruned;
    if (qualified) {
      for (int32_t u : nbrs) {
        if (slot_of[u] < 0) {
          slot_of[u] = static_cast<int32_t>(nodes.size());
          nodes.push_back(u);
          in_delete.push_back(0);
          queue.push_back(slot_of[u]);
        }
      }
    }
    if (deg < k) {
      delete_queue.push_back(v);
      in_delete[v] = 1;
    }
  }
  result.papers_expanded = polled;
  result.edges_scanned = edges_scanned;
  KPEF_COUNTER_ADD(obs::kKpcoreSearchesTotal, 1);
  KPEF_COUNTER_ADD(obs::kKpcoreNodesVisited, polled);
  KPEF_COUNTER_ADD(obs::kKpcoreNodesPruned, pruned);
  KPEF_COUNTER_ADD(obs::kKpcoreEdgesScanned, edges_scanned);
  KPEF_HISTOGRAM_OBSERVE(obs::kKpcoreDeleteQueueSize, delete_queue.size());

  // --- Unpromising nodes prune (lines 12-18). ---
  const size_t m = nodes.size();
  std::vector<int32_t> count(m, 0);
  std::vector<char> removed(m, 0);
  for (size_t v = 0; v < m; ++v) {
    int32_t c = 0;
    for (int32_t u : projection.Neighbors(nodes[v])) c += slot_of[u] >= 0;
    count[v] = c;
  }
  std::vector<int32_t> deleted_order;  // peel order, candidate slots
  while (!delete_queue.empty()) {
    const int32_t v = delete_queue.front();
    delete_queue.pop_front();
    if (removed[v]) continue;
    removed[v] = 1;
    deleted_order.push_back(v);
    for (int32_t u : projection.Neighbors(nodes[v])) {
      const int32_t lu = slot_of[u];
      if (lu < 0 || removed[lu] || in_delete[lu]) continue;
      if (--count[lu] < k) {
        in_delete[lu] = 1;
        delete_queue.push_back(lu);
      }
    }
  }

  // Connected community-search semantics: the seed's component among the
  // survivors.
  std::vector<char> in_core(m, 0);
  if (!removed[0]) {
    std::vector<int32_t> stack = {0};
    in_core[0] = 1;
    while (!stack.empty()) {
      const int32_t v = stack.back();
      stack.pop_back();
      result.core.push_back(projection.GlobalId(nodes[v]));
      for (int32_t u : projection.Neighbors(nodes[v])) {
        const int32_t lu = slot_of[u];
        if (lu >= 0 && !removed[lu] && !in_core[lu]) {
          in_core[lu] = 1;
          stack.push_back(lu);
        }
      }
    }
  }
  std::sort(result.core.begin(), result.core.end());
  // Discovery order: slots were interned in BFS order from the seed, and
  // in_core marks exactly the members of result.core.
  result.core_by_discovery.reserve(result.core.size());
  for (size_t v = 0; v < m; ++v) {
    if (in_core[v] && !removed[v]) {
      result.core_by_discovery.push_back(projection.GlobalId(nodes[v]));
    }
  }

  // --- (k, P)-core extension (lines 19-20). ---
  if (options.enable_extension) {
    for (int32_t u : projection.Neighbors(seed_local)) {
      if (result.extension.size() >= options.max_extension) break;
      const int32_t lu = slot_of[u];
      if (lu < 0 || removed[lu] || !in_core[lu]) {
        result.extension.push_back(projection.GlobalId(u));
      }
    }
    std::sort(result.extension.begin(), result.extension.end());
  }

  // Near negatives: D members that are neither the seed nor re-admitted by
  // the extension.
  result.near_negatives.reserve(deleted_order.size());
  for (int32_t v : deleted_order) {
    result.near_negatives.push_back(projection.GlobalId(nodes[v]));
  }
  std::sort(result.near_negatives.begin(), result.near_negatives.end());
  result.near_negatives.erase(
      std::unique(result.near_negatives.begin(), result.near_negatives.end()),
      result.near_negatives.end());
  std::vector<NodeId> filtered;
  filtered.reserve(result.near_negatives.size());
  for (NodeId v : result.near_negatives) {
    if (v == seed) continue;
    if (std::binary_search(result.extension.begin(), result.extension.end(),
                           v)) {
      continue;
    }
    filtered.push_back(v);
  }
  result.near_negatives = std::move(filtered);
  return result;
}

}  // namespace

KPCoreCommunity KPCoreSearch(const HeteroGraph& graph, const MetaPath& path,
                             NodeId seed, int32_t k,
                             const KPCoreSearchOptions& options) {
  KPEF_TRACE_SPAN("kpcore.search");
  KPEF_CHECK(graph.TypeOf(seed) == path.SourceType());
  FinderNeighborSource source(graph, path);
  return KPCoreSearchImpl(source, seed, k, options);
}

KPCoreCommunity KPCoreSearch(const HeteroGraph& graph,
                             const HomogeneousProjection& projection,
                             NodeId seed, int32_t k,
                             const KPCoreSearchOptions& options) {
  KPEF_TRACE_SPAN("kpcore.search");
  KPEF_CHECK(graph.TypeOf(seed) == projection.node_type());
  return ProjectionKPCoreSearch(graph, projection, seed, k, options);
}

}  // namespace kpef

#include "kpcore/core_maintenance.h"

#include <algorithm>

#include "kpcore/core_decomposition.h"

namespace kpef {

CoreMaintenance::CoreMaintenance(const HomogeneousProjection& base)
    : core_(CoreDecomposition(base)) {}

// Traversal insertion algorithm. With r = min(core(u), core(v)):
//  - no core number below r or above r can change (monotonicity), and
//    changes are at most +1;
//  - the nodes that can change are the subcore: nodes of core exactly r
//    reachable from the lower-core endpoint(s) through nodes of core r;
//  - a subcore node survives into the (r+1)-core iff it keeps >= r+1
//    neighbors that are themselves survivors or already have core > r.
// So: flood the subcore, seed each member's effective degree with
// |{w in N(c) : core(w) >= r}| (its equal-core neighbors are adjacent to
// the subcore and hence members of it), peel members whose effective
// degree falls to r, and promote the survivors.
void CoreMaintenance::OnEdgeInserted(const DeltaProjection& graph, int32_t u,
                                     int32_t v) {
  const size_t n = graph.NumNodes();
  if (core_.size() < n) core_.resize(n, 0);
  if (u == v || u < 0 || v < 0 || static_cast<size_t>(u) >= n ||
      static_cast<size_t>(v) >= n) {
    return;
  }
  const int32_t r = std::min(core_[u], core_[v]);
  if (in_subcore_.size() < n) {
    in_subcore_.resize(n, 0);
    effective_degree_.resize(n, 0);
  }

  candidates_.clear();
  stack_.clear();
  auto push_root = [&](int32_t x) {
    if (core_[x] == r && !in_subcore_[x]) {
      in_subcore_[x] = 1;
      stack_.push_back(x);
    }
  };
  push_root(u);
  push_root(v);
  while (!stack_.empty()) {
    const int32_t c = stack_.back();
    stack_.pop_back();
    candidates_.push_back(c);
    int32_t ed = 0;
    for (const int32_t w : graph.Neighbors(c, neighbor_scratch_)) {
      if (core_[w] >= r) ++ed;
      if (core_[w] == r && !in_subcore_[w]) {
        in_subcore_[w] = 1;
        stack_.push_back(w);
      }
    }
    effective_degree_[c] = ed;
  }

  // Peel. A member of the r-core always has >= r neighbors of core >= r,
  // so effective degrees start at >= r and cross the removal threshold
  // (== r) exactly once; in_subcore_ doubles as the not-yet-removed mark.
  std::vector<int32_t>& worklist = stack_;
  for (const int32_t c : candidates_) {
    if (effective_degree_[c] <= r) worklist.push_back(c);
  }
  while (!worklist.empty()) {
    const int32_t c = worklist.back();
    worklist.pop_back();
    if (!in_subcore_[c]) continue;
    in_subcore_[c] = 0;
    for (const int32_t w : graph.Neighbors(c, neighbor_scratch_)) {
      if (core_[w] == r && in_subcore_[w] && --effective_degree_[w] == r) {
        worklist.push_back(w);
      }
    }
  }

  for (const int32_t c : candidates_) {
    if (in_subcore_[c]) core_[c] = r + 1;
    in_subcore_[c] = 0;
    effective_degree_[c] = 0;
  }
}

}  // namespace kpef

// Meta-path core decomposition: the core number of every paper w.r.t. a
// meta-path P, i.e. the largest k for which the paper is in some
// (k, P)-core.
//
// A library utility on top of the paper's machinery: it answers "which k
// should I use?" (§VI-D sweeps k by hand) and provides O(1) membership
// checks for any (k, P)-core after one offline decomposition.

#ifndef KPEF_KPCORE_DECOMPOSITION_INDEX_H_
#define KPEF_KPCORE_DECOMPOSITION_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/hetero_graph.h"
#include "metapath/meta_path.h"

namespace kpef {

/// Offline index of (k, P)-core membership for one meta-path.
class KPCoreDecompositionIndex {
 public:
  /// Materializes the homogeneous projection and decomposes it.
  KPCoreDecompositionIndex(const HeteroGraph& graph, const MetaPath& path);

  /// Core number of a paper (largest k with the paper in the (k, P)-core).
  int32_t CoreNumberOf(NodeId paper) const;

  /// True iff the paper belongs to the (k, P)-core.
  bool InCore(NodeId paper, int32_t k) const {
    return CoreNumberOf(paper) >= k;
  }

  /// The largest k for which the (k, P)-core is non-empty (the graph's
  /// P-degeneracy).
  int32_t MaxCoreNumber() const { return max_core_; }

  /// Number of papers in the (k, P)-core, for k in [0, MaxCoreNumber()].
  /// (Useful for choosing k: the paper's §VI-D balances community
  /// cohesiveness against training-data volume.)
  const std::vector<size_t>& CoreSizeHistogram() const { return core_sizes_; }

  /// Suggests the largest k whose core still covers at least
  /// `min_coverage` (fraction) of all papers — a heuristic default for
  /// the §VI-D trade-off.
  int32_t SuggestK(double min_coverage = 0.5) const;

 private:
  const HeteroGraph* graph_;
  std::vector<int32_t> core_numbers_;  // by paper LocalIndex
  std::vector<size_t> core_sizes_;     // core_sizes_[k] = |(k,P)-core|
  int32_t max_core_ = 0;
};

}  // namespace kpef

#endif  // KPEF_KPCORE_DECOMPOSITION_INDEX_H_

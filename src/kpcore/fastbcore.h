// FastBCore [30]: the extended baseline of §III-A. A labeled BFS collects
// every paper reachable from the seed via P, then unqualified papers are
// peeled until all survivors meet the k-constraint.
//
// Compared to Algorithm 1 it lacks (a) early pruning of low-degree papers
// during the BFS and (b) the seed-neighbor extension.

#ifndef KPEF_KPCORE_FASTBCORE_H_
#define KPEF_KPCORE_FASTBCORE_H_

#include "graph/hetero_graph.h"
#include "kpcore/community.h"
#include "metapath/meta_path.h"
#include "metapath/projection.h"

namespace kpef {

/// Runs FastBCore for one seed paper.
KPCoreCommunity FastBCoreSearch(const HeteroGraph& graph, const MetaPath& path,
                                NodeId seed, int32_t k);

/// Same search reading a materialized CSR projection instead of running a
/// per-node meta-path BFS. Output is bit-identical to the finder-backed
/// overload (both deliver neighbors in ascending NodeId order).
KPCoreCommunity FastBCoreSearch(const HeteroGraph& graph,
                                const HomogeneousProjection& projection,
                                NodeId seed, int32_t k);

}  // namespace kpef

#endif  // KPEF_KPCORE_FASTBCORE_H_

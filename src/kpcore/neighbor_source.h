// Internal to kpcore/: uniform access to sorted P-neighbor lists for the
// community-search algorithms. Two sources exist — an on-the-fly
// meta-path BFS (PNeighborFinder) and a materialized CSR projection —
// and both yield the same neighbor sets in the same ascending-NodeId
// order, so a search template instantiated over either source produces
// bit-identical communities (core, extension, near_negatives, AND
// core_by_discovery). The sampling determinism contract of DESIGN.md §10
// rests on that equivalence.

#ifndef KPEF_KPCORE_NEIGHBOR_SOURCE_H_
#define KPEF_KPCORE_NEIGHBOR_SOURCE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/hetero_graph.h"
#include "metapath/meta_path.h"
#include "metapath/p_neighbor.h"
#include "metapath/projection.h"

namespace kpef {

/// Derives each neighbor list with a fresh meta-path BFS. The BFS emits
/// in discovery order, so Collect sorts to reach the canonical order.
class FinderNeighborSource {
 public:
  FinderNeighborSource(const HeteroGraph& graph, const MetaPath& path)
      : finder_(graph, path) {}

  void Collect(NodeId v, std::vector<NodeId>& out) {
    out = finder_.Neighbors(v);
    std::sort(out.begin(), out.end());
  }

  /// Heterogeneous adjacency entries scanned by the BFS expansions.
  uint64_t edges_scanned() const { return finder_.edges_scanned(); }

 private:
  PNeighborFinder finder_;
};

/// Reads neighbor lists out of a prebuilt CSR projection. Rows store
/// sorted local indices; local-index order equals NodeId order within
/// one type, so the translated list is already canonically sorted.
class ProjectionNeighborSource {
 public:
  ProjectionNeighborSource(const HeteroGraph& graph,
                           const HomogeneousProjection& projection)
      : graph_(&graph), projection_(&projection) {}

  void Collect(NodeId v, std::vector<NodeId>& out) {
    out.clear();
    const auto row =
        projection_->Neighbors(static_cast<int32_t>(graph_->LocalIndex(v)));
    out.reserve(row.size());
    for (int32_t local : row) out.push_back(projection_->GlobalId(local));
    edges_scanned_ += row.size();
  }

  /// Projection entries read — the machine-independent analogue of the
  /// finder's counter (the hetero edges were scanned once at build time).
  uint64_t edges_scanned() const { return edges_scanned_; }

 private:
  const HeteroGraph* graph_;
  const HomogeneousProjection* projection_;
  uint64_t edges_scanned_ = 0;
};

}  // namespace kpef

#endif  // KPEF_KPCORE_NEIGHBOR_SOURCE_H_

// Result type shared by all (k, P)-core community-search algorithms.

#ifndef KPEF_KPCORE_COMMUNITY_H_
#define KPEF_KPCORE_COMMUNITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace kpef {

/// Output of a seed-centered (k, P)-core search.
///
/// All algorithms in this module use connected community-search semantics:
/// `core` is the connected component of the seed within the (k, P)-core
/// (empty when the seed itself does not survive the k-constraint).
struct KPCoreCommunity {
  /// Seed paper the search started from.
  NodeId seed = kInvalidNode;
  /// Strict (k, P)-core members connected to the seed, sorted ascending.
  /// Includes the seed when non-empty.
  std::vector<NodeId> core;
  /// The same members in BFS discovery order from the seed (seed first,
  /// direct P-neighbors next, ...). When a community is far larger than
  /// the positive-sample budget, the sampler takes a prefix of this order
  /// so positives stay close to the seed. May be empty for algorithms
  /// that do not track discovery order (naive decomposition).
  std::vector<NodeId> core_by_discovery;
  /// The seed's P-neighbors with P-degree < k, added by the extension
  /// optimization of Algorithm 1 (empty for the baseline algorithms).
  /// Disjoint from `core`, sorted ascending.
  std::vector<NodeId> extension;
  /// Papers that entered the delete queue D (pruned or peeled), i.e. the
  /// "near negative" candidates of §III-B. Excludes extension members.
  /// Sorted ascending.
  std::vector<NodeId> near_negatives;

  // --- Cost counters for the efficiency benchmarks. ---
  /// Adjacency entries scanned while enumerating P-neighbors.
  uint64_t edges_scanned = 0;
  /// Papers whose P-neighbor lists were materialized.
  size_t papers_expanded = 0;

  /// Core plus extension: the community actually used for positive
  /// sampling (the "final result" of Example 4). Sorted ascending.
  std::vector<NodeId> Members() const;

  /// True if `v` is in `core` (binary search).
  bool CoreContains(NodeId v) const;
};

}  // namespace kpef

#endif  // KPEF_KPCORE_COMMUNITY_H_

#include "kpcore/decomposition_index.h"

#include <algorithm>

#include "common/logging.h"
#include "kpcore/core_decomposition.h"
#include "metapath/projection.h"

namespace kpef {

KPCoreDecompositionIndex::KPCoreDecompositionIndex(const HeteroGraph& graph,
                                                   const MetaPath& path)
    : graph_(&graph) {
  KPEF_CHECK(path.IsSymmetricEndpoints());
  const HomogeneousProjection projection = ProjectHomogeneous(graph, path);
  core_numbers_ = CoreDecomposition(projection);
  max_core_ = 0;
  for (int32_t c : core_numbers_) max_core_ = std::max(max_core_, c);
  core_sizes_.assign(static_cast<size_t>(max_core_) + 1, 0);
  // core_sizes_[k] counts papers with core number >= k (suffix counts).
  std::vector<size_t> exact(static_cast<size_t>(max_core_) + 1, 0);
  for (int32_t c : core_numbers_) ++exact[c];
  size_t running = 0;
  for (int32_t k = max_core_; k >= 0; --k) {
    running += exact[k];
    core_sizes_[k] = running;
  }
}

int32_t KPCoreDecompositionIndex::CoreNumberOf(NodeId paper) const {
  return core_numbers_[graph_->LocalIndex(paper)];
}

int32_t KPCoreDecompositionIndex::SuggestK(double min_coverage) const {
  const size_t total = core_numbers_.size();
  if (total == 0) return 0;
  int32_t best = 0;
  for (int32_t k = 0; k <= max_core_; ++k) {
    const double coverage =
        static_cast<double>(core_sizes_[k]) / static_cast<double>(total);
    if (coverage >= min_coverage) best = k;
  }
  return best;
}

}  // namespace kpef

// Incremental (k, P)-core maintenance under edge insertion
// (DESIGN.md §16).
//
// Streaming ingestion only ever *adds* papers and meta-path edges, and
// core numbers are monotone under edge insertion: inserting one edge
// changes no core number by more than +1, and the only candidates for
// that +1 are the nodes with core number r = min(core(u), core(v)) that
// reach the lower-core endpoint through nodes of core exactly r (the
// subcore). So instead of re-running the O(m) Batagelj-Zaversnik peel of
// core_decomposition.h per batch, OnEdgeInserted walks just the subcore
// and peels it locally — the same monotonicity Algorithm 1 exploits for
// query-time pruning, applied to maintenance.

#ifndef KPEF_KPCORE_CORE_MAINTENANCE_H_
#define KPEF_KPCORE_CORE_MAINTENANCE_H_

#include <cstdint>
#include <vector>

#include "metapath/delta_projection.h"

namespace kpef {

/// Maintains the core number of every node of one DeltaProjection across
/// node appends and edge insertions. Not thread-safe (single ingest
/// writer). Equivalent, after any insertion sequence, to
/// CoreDecomposition over the final merged graph — asserted by
/// core_maintenance_test.cc on randomized sequences.
class CoreMaintenance {
 public:
  CoreMaintenance() = default;

  /// Seeds from the base projection (full Batagelj-Zaversnik pass).
  explicit CoreMaintenance(const HomogeneousProjection& base);

  /// Registers one appended node (isolated => core 0).
  void OnNodeAdded() { core_.push_back(0); }

  /// Updates core numbers for the undirected edge {u, v}, which must
  /// already be present in `graph` (insert into the projection first,
  /// then notify). Cost is proportional to the subcore of the lower
  /// endpoint, not the graph.
  void OnEdgeInserted(const DeltaProjection& graph, int32_t u, int32_t v);

  int32_t CoreOf(int32_t local) const { return core_[local]; }
  const std::vector<int32_t>& cores() const { return core_; }
  size_t NumNodes() const { return core_.size(); }

 private:
  std::vector<int32_t> core_;
  // Reused traversal scratch (avoids per-insert allocation).
  std::vector<int32_t> stack_;
  std::vector<int32_t> candidates_;
  std::vector<uint8_t> in_subcore_;
  std::vector<int32_t> effective_degree_;
  std::vector<int32_t> neighbor_scratch_;
};

}  // namespace kpef

#endif  // KPEF_KPCORE_CORE_MAINTENANCE_H_

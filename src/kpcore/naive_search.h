// "Straightforward solution" of §III-A: materialize the homogeneous
// meta-path graph, run a full core decomposition, and read off the seed's
// component. Correct but deliberately expensive — the baseline the paper's
// Algorithm 1 is measured against.

#ifndef KPEF_KPCORE_NAIVE_SEARCH_H_
#define KPEF_KPCORE_NAIVE_SEARCH_H_

#include "graph/hetero_graph.h"
#include "kpcore/community.h"
#include "metapath/meta_path.h"
#include "metapath/projection.h"

namespace kpef {

/// Runs the naive pipeline end-to-end for one seed. Enumerates the
/// P-neighbors of *every* paper in the graph regardless of the seed.
KPCoreCommunity NaiveKPCoreSearch(const HeteroGraph& graph,
                                  const MetaPath& path, NodeId seed, int32_t k);

/// Same, but against an already-materialized projection (used when many
/// seeds share one projection; the projection cost is then amortized).
KPCoreCommunity NaiveKPCoreSearchOnProjection(
    const HeteroGraph& graph, const HomogeneousProjection& projection,
    NodeId seed, int32_t k);

}  // namespace kpef

#endif  // KPEF_KPCORE_NAIVE_SEARCH_H_

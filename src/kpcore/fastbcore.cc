#include "kpcore/fastbcore.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/logging.h"
#include "kpcore/neighbor_source.h"

namespace kpef {
namespace {

// FastBCore over any neighbor source; see neighbor_source.h for the
// bit-identical-output contract between the two instantiations.
template <typename NeighborSource>
KPCoreCommunity FastBCoreImpl(NeighborSource& source, NodeId seed, int32_t k) {
  KPCoreCommunity result;
  result.seed = seed;

  // Step 1: labeled search. BFS over P-neighbors from the seed; every
  // reachable paper is expanded, qualified or not.
  std::unordered_map<NodeId, int32_t> local_of;  // node -> dense index
  std::vector<NodeId> nodes;                      // dense index -> node
  std::vector<std::vector<int32_t>> adjacency;    // dense adjacency
  auto intern = [&](NodeId v) {
    auto [it, inserted] =
        local_of.emplace(v, static_cast<int32_t>(nodes.size()));
    if (inserted) {
      nodes.push_back(v);
      adjacency.emplace_back();
    }
    return it->second;
  };
  intern(seed);
  std::deque<int32_t> queue = {0};
  size_t expanded = 0;
  std::vector<NodeId> nbrs;  // reused per-poll scratch
  while (!queue.empty()) {
    const int32_t v = queue.front();
    queue.pop_front();
    ++expanded;
    source.Collect(nodes[v], nbrs);
    std::vector<int32_t> adj;
    adj.reserve(nbrs.size());
    for (NodeId u : nbrs) {
      const size_t before = nodes.size();
      const int32_t lu = intern(u);  // may grow `adjacency`
      adj.push_back(lu);
      if (nodes.size() > before) queue.push_back(lu);
    }
    adjacency[v] = std::move(adj);
  }
  result.papers_expanded = expanded;
  result.edges_scanned = source.edges_scanned();

  // Step 2: clean up nodes. Iteratively remove papers whose degree within
  // the surviving set is below k.
  const size_t n = nodes.size();
  std::vector<int32_t> degree(n);
  std::vector<char> removed(n, 0);
  std::deque<int32_t> delete_queue;
  for (size_t v = 0; v < n; ++v) {
    degree[v] = static_cast<int32_t>(adjacency[v].size());
    if (degree[v] < k) {
      removed[v] = 1;
      delete_queue.push_back(static_cast<int32_t>(v));
    }
  }
  while (!delete_queue.empty()) {
    const int32_t v = delete_queue.front();
    delete_queue.pop_front();
    result.near_negatives.push_back(nodes[v]);
    for (int32_t u : adjacency[v]) {
      if (removed[u]) continue;
      if (--degree[u] < k) {
        removed[u] = 1;
        delete_queue.push_back(u);
      }
    }
  }

  // Connected community-search semantics: keep the seed's component.
  const int32_t seed_local = local_of[seed];
  if (!removed[seed_local]) {
    std::vector<char> visited(n, 0);
    std::vector<int32_t> stack = {seed_local};
    visited[seed_local] = 1;
    while (!stack.empty()) {
      const int32_t v = stack.back();
      stack.pop_back();
      result.core.push_back(nodes[v]);
      for (int32_t u : adjacency[v]) {
        if (!removed[u] && !visited[u]) {
          visited[u] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  std::sort(result.core.begin(), result.core.end());
  // Discovery order: nodes were interned in BFS order from the seed.
  result.core_by_discovery.reserve(result.core.size());
  for (size_t v = 0; v < n; ++v) {
    if (result.CoreContains(nodes[v])) {
      result.core_by_discovery.push_back(nodes[v]);
    }
  }
  std::sort(result.near_negatives.begin(), result.near_negatives.end());
  result.near_negatives.erase(
      std::unique(result.near_negatives.begin(), result.near_negatives.end()),
      result.near_negatives.end());
  return result;
}

}  // namespace

KPCoreCommunity FastBCoreSearch(const HeteroGraph& graph, const MetaPath& path,
                                NodeId seed, int32_t k) {
  KPEF_CHECK(graph.TypeOf(seed) == path.SourceType());
  FinderNeighborSource source(graph, path);
  return FastBCoreImpl(source, seed, k);
}

KPCoreCommunity FastBCoreSearch(const HeteroGraph& graph,
                                const HomogeneousProjection& projection,
                                NodeId seed, int32_t k) {
  KPEF_CHECK(graph.TypeOf(seed) == projection.node_type());
  ProjectionNeighborSource source(graph, projection);
  return FastBCoreImpl(source, seed, k);
}

}  // namespace kpef

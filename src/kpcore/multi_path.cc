#include "kpcore/multi_path.h"

#include <algorithm>

#include "common/logging.h"

namespace kpef {
namespace {

std::vector<NodeId> IntersectSorted(const std::vector<NodeId>& a,
                                    const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<NodeId> UnionSorted(const std::vector<NodeId>& a,
                                const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

KPCoreCommunity IntersectCommunities(
    const std::vector<KPCoreCommunity>& communities) {
  KPEF_CHECK(!communities.empty());
  KPCoreCommunity result;
  result.seed = communities[0].seed;
  std::vector<NodeId> core = communities[0].core;
  std::vector<NodeId> members = communities[0].Members();
  std::vector<NodeId> near = communities[0].near_negatives;
  // Union of every path's relaxed community: a paper cohesive with the
  // seed under ANY meta-path is never a near negative.
  std::vector<NodeId> any_member = communities[0].Members();
  result.edges_scanned = communities[0].edges_scanned;
  result.papers_expanded = communities[0].papers_expanded;
  for (size_t i = 1; i < communities.size(); ++i) {
    KPEF_CHECK(communities[i].seed == result.seed)
        << "intersecting communities of different seeds";
    core = IntersectSorted(core, communities[i].core);
    members = IntersectSorted(members, communities[i].Members());
    near = UnionSorted(near, communities[i].near_negatives);
    any_member = UnionSorted(any_member, communities[i].Members());
    result.edges_scanned += communities[i].edges_scanned;
    result.papers_expanded += communities[i].papers_expanded;
  }
  result.core = std::move(core);
  // Discovery order inherited from the first path's search, filtered to
  // the intersection.
  for (NodeId v : communities[0].core_by_discovery) {
    if (result.CoreContains(v)) result.core_by_discovery.push_back(v);
  }
  // Relaxed members that did not make the intersected strict core.
  result.extension.clear();
  std::set_difference(members.begin(), members.end(), result.core.begin(),
                      result.core.end(),
                      std::back_inserter(result.extension));
  // A near negative that is cohesive with the seed under any meta-path
  // is not a negative.
  result.near_negatives.clear();
  std::set_difference(near.begin(), near.end(), any_member.begin(),
                      any_member.end(),
                      std::back_inserter(result.near_negatives));
  return result;
}

KPCoreCommunity MultiPathKPCoreSearch(const HeteroGraph& graph,
                                      const std::vector<MetaPath>& paths,
                                      NodeId seed, int32_t k,
                                      const KPCoreSearchOptions& options) {
  KPEF_CHECK(!paths.empty());
  std::vector<KPCoreCommunity> communities;
  communities.reserve(paths.size());
  for (const MetaPath& path : paths) {
    communities.push_back(KPCoreSearch(graph, path, seed, k, options));
  }
  return IntersectCommunities(communities);
}

KPCoreCommunity MultiPathKPCoreSearch(
    const HeteroGraph& graph,
    const std::vector<HomogeneousProjection>& projections, NodeId seed,
    int32_t k, const KPCoreSearchOptions& options) {
  KPEF_CHECK(!projections.empty());
  std::vector<KPCoreCommunity> communities;
  communities.reserve(projections.size());
  for (const HomogeneousProjection& projection : projections) {
    communities.push_back(KPCoreSearch(graph, projection, seed, k, options));
  }
  return IntersectCommunities(communities);
}

}  // namespace kpef

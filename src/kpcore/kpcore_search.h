// Algorithm 1: optimized (k, P)-core community search.
//
// Improves FastBCore with (1) early pruning — papers whose P-degree is
// below k are never expanded (safe by Theorem 1) — and (2) a community
// extension that re-admits the seed's own P-neighbors that fail the
// k-constraint. The delete queue D doubles as the "near negative" pool of
// the sampling stage (§III-B).

#ifndef KPEF_KPCORE_KPCORE_SEARCH_H_
#define KPEF_KPCORE_KPCORE_SEARCH_H_

#include <cstddef>
#include <cstdint>

#include "graph/hetero_graph.h"
#include "kpcore/community.h"
#include "metapath/meta_path.h"
#include "metapath/projection.h"

namespace kpef {

/// Tuning knobs; the defaults run the full Algorithm 1. Disabling flags
/// recovers the ablation variants measured by bench_kpcore.
struct KPCoreSearchOptions {
  /// Optimization (1): stop expanding from papers with P-degree < k.
  bool enable_pruning = true;
  /// Optimization (2): append the seed's sub-k P-neighbors to the result.
  bool enable_extension = true;
  /// Cap on the number of extension papers (the paper adds "a small
  /// amount"); default keeps all, matching Algorithm 1 line 19.
  size_t max_extension = static_cast<size_t>(-1);
};

/// Runs Algorithm 1 for one seed paper.
///
/// The strict core (`result.core`) equals FastBCoreSearch's core for every
/// input (Theorem 1); `result.extension` holds the relaxation papers.
KPCoreCommunity KPCoreSearch(const HeteroGraph& graph, const MetaPath& path,
                             NodeId seed, int32_t k,
                             const KPCoreSearchOptions& options = {});

/// Same search over a materialized CSR projection of the meta-path:
/// neighbor lists become O(1) span reads instead of per-node BFS, so
/// `Degree` checks and expansions touch no heterogeneous edges. Produces
/// bit-identical output to the finder-backed overload (both read
/// neighbors in ascending NodeId order).
KPCoreCommunity KPCoreSearch(const HeteroGraph& graph,
                             const HomogeneousProjection& projection,
                             NodeId seed, int32_t k,
                             const KPCoreSearchOptions& options = {});

}  // namespace kpef

#endif  // KPEF_KPCORE_KPCORE_SEARCH_H_

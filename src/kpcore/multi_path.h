// §V optimization: combine several meta-paths by intersecting their
// per-seed (k, P)-cores, G^k_{P1..l} = G^k_{P1} ∩ ... ∩ G^k_{Pl}.

#ifndef KPEF_KPCORE_MULTI_PATH_H_
#define KPEF_KPCORE_MULTI_PATH_H_

#include <vector>

#include "graph/hetero_graph.h"
#include "kpcore/community.h"
#include "kpcore/kpcore_search.h"
#include "metapath/meta_path.h"
#include "metapath/projection.h"

namespace kpef {

/// Intersects communities found for the same seed under different
/// meta-paths.
///
/// - `core` = intersection of the strict cores (Eq. 8).
/// - `extension` = intersection of each path's (core ∪ extension), minus
///   the intersected core: a paper stays in the relaxed community only if
///   every meta-path admitted it at least via its extension.
/// - `near_negatives` = union of the per-path delete queues.
/// Cost counters are summed.
KPCoreCommunity IntersectCommunities(
    const std::vector<KPCoreCommunity>& communities);

/// Convenience: runs KPCoreSearch for every meta-path on the same seed and
/// intersects the results. `paths` must be non-empty.
KPCoreCommunity MultiPathKPCoreSearch(const HeteroGraph& graph,
                                      const std::vector<MetaPath>& paths,
                                      NodeId seed, int32_t k,
                                      const KPCoreSearchOptions& options = {});

/// Projection-backed variant: one prebuilt CSR projection per meta-path.
/// Bit-identical to the finder-backed overload run on the corresponding
/// paths. `projections` must be non-empty.
KPCoreCommunity MultiPathKPCoreSearch(
    const HeteroGraph& graph,
    const std::vector<HomogeneousProjection>& projections, NodeId seed,
    int32_t k, const KPCoreSearchOptions& options = {});

}  // namespace kpef

#endif  // KPEF_KPCORE_MULTI_PATH_H_

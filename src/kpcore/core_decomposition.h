// Classic O(m) k-core decomposition (Batagelj-Zaversnik [29]) on a
// materialized homogeneous projection. Building block of the
// "straightforward solution" of §III-A and the ground truth for the
// Theorem 1 property tests.

#ifndef KPEF_KPCORE_CORE_DECOMPOSITION_H_
#define KPEF_KPCORE_CORE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "metapath/projection.h"

namespace kpef {

/// Core number of every node of a homogeneous projection: the largest k
/// such that the node belongs to the k-core.
std::vector<int32_t> CoreDecomposition(const HomogeneousProjection& graph);

/// Local indices (into graph.nodes) of the members of the connected
/// component of `seed_local` inside the k-core, or empty if the seed's
/// core number is below k.
std::vector<int32_t> KCoreComponentOf(const HomogeneousProjection& graph,
                                      const std::vector<int32_t>& core_numbers,
                                      int32_t seed_local, int32_t k);

}  // namespace kpef

#endif  // KPEF_KPCORE_CORE_DECOMPOSITION_H_

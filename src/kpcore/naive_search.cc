#include "kpcore/naive_search.h"

#include <algorithm>

#include "common/logging.h"
#include "kpcore/core_decomposition.h"

namespace kpef {

KPCoreCommunity NaiveKPCoreSearch(const HeteroGraph& graph,
                                  const MetaPath& path, NodeId seed,
                                  int32_t k) {
  const HomogeneousProjection projection = ProjectHomogeneous(graph, path);
  KPCoreCommunity result =
      NaiveKPCoreSearchOnProjection(graph, projection, seed, k);
  // The projection enumerated every paper's neighbor list.
  result.papers_expanded = projection.NumNodes();
  return result;
}

KPCoreCommunity NaiveKPCoreSearchOnProjection(
    const HeteroGraph& graph, const HomogeneousProjection& projection,
    NodeId seed, int32_t k) {
  KPEF_CHECK(graph.TypeOf(seed) == projection.node_type());
  KPCoreCommunity result;
  result.seed = seed;
  const int32_t seed_local = static_cast<int32_t>(graph.LocalIndex(seed));

  const std::vector<int32_t> core_numbers = CoreDecomposition(projection);
  const std::vector<int32_t> component =
      KCoreComponentOf(projection, core_numbers, seed_local, k);
  result.core.reserve(component.size());
  for (int32_t local : component) {
    result.core.push_back(projection.GlobalId(local));
  }
  std::sort(result.core.begin(), result.core.end());
  return result;
}

}  // namespace kpef

#include "kpcore/core_decomposition.h"

#include <algorithm>

#include "common/logging.h"

namespace kpef {

std::vector<int32_t> CoreDecomposition(const HomogeneousProjection& graph) {
  const size_t n = graph.NumNodes();
  std::vector<int32_t> degree(n);
  int32_t max_degree = 0;
  for (size_t v = 0; v < n; ++v) {
    degree[v] = graph.Degree(static_cast<int32_t>(v));
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort nodes by degree (bin[d] = start offset of degree-d nodes).
  std::vector<int32_t> bin(max_degree + 2, 0);
  for (size_t v = 0; v < n; ++v) ++bin[degree[v] + 1];
  for (int32_t d = 0; d <= max_degree; ++d) bin[d + 1] += bin[d];
  std::vector<int32_t> order(n);   // nodes sorted by current degree
  std::vector<int32_t> pos(n);     // position of each node in `order`
  {
    std::vector<int32_t> cursor(bin.begin(), bin.end() - 1);
    for (size_t v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]]++;
      order[pos[v]] = static_cast<int32_t>(v);
    }
  }

  // Peel in nondecreasing degree order; degree[] becomes the core number.
  for (size_t i = 0; i < n; ++i) {
    const int32_t v = order[i];
    for (int32_t u : graph.Neighbors(v)) {
      if (degree[u] > degree[v]) {
        // Swap u with the first node of its degree bucket, then shrink u's
        // degree by one.
        const int32_t du = degree[u];
        const int32_t pu = pos[u];
        const int32_t pw = bin[du];
        const int32_t w = order[pw];
        if (u != w) {
          pos[u] = pw;
          order[pw] = u;
          pos[w] = pu;
          order[pu] = w;
        }
        ++bin[du];
        --degree[u];
      }
    }
  }
  return degree;
}

std::vector<int32_t> KCoreComponentOf(const HomogeneousProjection& graph,
                                      const std::vector<int32_t>& core_numbers,
                                      int32_t seed_local, int32_t k) {
  KPEF_CHECK(core_numbers.size() == graph.NumNodes());
  std::vector<int32_t> component;
  if (core_numbers[seed_local] < k) return component;
  std::vector<char> visited(graph.NumNodes(), 0);
  std::vector<int32_t> stack = {seed_local};
  visited[seed_local] = 1;
  while (!stack.empty()) {
    const int32_t v = stack.back();
    stack.pop_back();
    component.push_back(v);
    for (int32_t u : graph.Neighbors(v)) {
      if (!visited[u] && core_numbers[u] >= k) {
        visited[u] = 1;
        stack.push_back(u);
      }
    }
  }
  std::sort(component.begin(), component.end());
  return component;
}

}  // namespace kpef

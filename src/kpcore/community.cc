#include "kpcore/community.h"

#include <algorithm>

namespace kpef {

std::vector<NodeId> KPCoreCommunity::Members() const {
  std::vector<NodeId> members;
  members.reserve(core.size() + extension.size());
  std::merge(core.begin(), core.end(), extension.begin(), extension.end(),
             std::back_inserter(members));
  return members;
}

bool KPCoreCommunity::CoreContains(NodeId v) const {
  return std::binary_search(core.begin(), core.end(), v);
}

}  // namespace kpef

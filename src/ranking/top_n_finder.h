// Top-n expert extraction from the ranked lists: the TA-based early-
// terminating algorithm of §IV-C and the exhaustive full-scan baseline
// ("w/o TA" in Figure 7).

#ifndef KPEF_RANKING_TOP_N_FINDER_H_
#define KPEF_RANKING_TOP_N_FINDER_H_

#include <cstdint>
#include <vector>

#include "ranking/expert_score.h"

namespace kpef {

/// Work counters comparing TA against the full scan.
struct TopNStats {
  /// Rounds of sorted access (depth reached in the lists).
  size_t rounds = 0;
  /// List entries read.
  uint64_t entries_accessed = 0;
  /// Distinct experts materialized.
  size_t experts_touched = 0;
  /// True when TA stopped before exhausting the lists.
  bool early_terminated = false;
};

/// Exact top-n by full aggregation of every list (scores all candidates).
/// Descending by R(a), ties broken by author id.
std::vector<ExpertScore> FullScanTopN(const RankedLists& lists, size_t n,
                                      TopNStats* stats = nullptr);

/// Threshold-algorithm top-n with upper/lower bound maintenance and the
/// LB >= UB termination check (Theorem 2). Returns exactly the same
/// experts and scores as FullScanTopN.
std::vector<ExpertScore> ThresholdTopN(const RankedLists& lists, size_t n,
                                       TopNStats* stats = nullptr);

}  // namespace kpef

#endif  // KPEF_RANKING_TOP_N_FINDER_H_

#include "ranking/top_n_finder.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

namespace kpef {
namespace {

bool BetterExpert(const ExpertScore& a, const ExpertScore& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.author < b.author;
}

}  // namespace

std::vector<ExpertScore> FullScanTopN(const RankedLists& lists, size_t n,
                                      TopNStats* stats) {
  KPEF_TRACE_SPAN("ranking.full_scan");
  TopNStats local;
  std::unordered_map<NodeId, double> totals;
  for (const auto& list : lists.lists) {
    for (const ExpertScore& entry : list) {
      totals[entry.author] += entry.score;
      ++local.entries_accessed;
    }
    ++local.rounds;
  }
  local.experts_touched = totals.size();
  std::vector<ExpertScore> all;
  all.reserve(totals.size());
  for (const auto& [author, score] : totals) all.push_back({author, score});
  std::sort(all.begin(), all.end(), BetterExpert);
  if (all.size() > n) all.resize(n);
  KPEF_COUNTER_ADD(obs::kRankingFullScansTotal, 1);
  KPEF_COUNTER_ADD(obs::kRankingFullScanEntriesAccessed,
                   local.entries_accessed);
  if (stats) *stats = local;
  return all;
}

std::vector<ExpertScore> ThresholdTopN(const RankedLists& lists, size_t n,
                                       TopNStats* stats) {
  KPEF_TRACE_SPAN("ranking.threshold_topn");
  TopNStats local;
  const size_t m = lists.lists.size();
  if (m == 0 || n == 0) {
    if (stats) *stats = local;
    return {};
  }

  // Dense per-author state, indexed on first sight.
  std::unordered_map<NodeId, int32_t> author_index;
  std::vector<NodeId> authors;             // dense id -> author
  std::vector<double> lower;               // exact partial sum
  std::vector<double> cur_sum_found;       // sum of cur[j] over found lists
  // Flat (list, author) log of sorted accesses, for threshold updates.
  std::vector<std::pair<int32_t, int32_t>> access_log;
  access_log.reserve(4 * m);

  // Per-list sorted-access state. cur[j] bounds unseen entries of list j.
  std::vector<double> cur(m, 0.0);
  double tau = 0.0;  // upper bound on a completely unseen author
  size_t max_depth = 0;
  for (size_t j = 0; j < m; ++j) {
    cur[j] = lists.lists[j].empty() ? 0.0 : lists.lists[j][0].score;
    tau += cur[j];
    max_depth = std::max(max_depth, lists.lists[j].size());
  }

  auto intern = [&](NodeId author) {
    auto [it, inserted] =
        author_index.emplace(author, static_cast<int32_t>(authors.size()));
    if (inserted) {
      authors.push_back(author);
      lower.push_back(0.0);
      cur_sum_found.push_back(0.0);
    }
    return it->second;
  };

  std::vector<std::pair<double, int32_t>> ranked;  // reused scratch
  bool exhausted_all = true;
  size_t depth = 0;
  for (; depth < max_depth; ++depth) {
    // One round of sorted access across all lists still holding entries.
    for (size_t j = 0; j < m; ++j) {
      const auto& list = lists.lists[j];
      if (depth >= list.size()) continue;
      const ExpertScore& entry = list[depth];
      ++local.entries_accessed;
      const int32_t a = intern(entry.author);
      lower[a] += entry.score;
      access_log.push_back({static_cast<int32_t>(j), a});
    }
    // Refresh per-list thresholds.
    for (size_t j = 0; j < m; ++j) {
      const auto& list = lists.lists[j];
      const double next =
          depth + 1 < list.size() ? list[depth + 1].score : 0.0;
      tau += next - cur[j];
      cur[j] = next;
    }
    ++local.rounds;

    // Termination check (LB >= UB). Skipped until enough experts exist.
    const size_t c = authors.size();
    if (c < n && c < lists.num_candidates) continue;
    // cur_sum_found[a] = sum of cur[j] over the lists a was found in;
    // recomputed from the flat access log (lists are short, so the log
    // stays proportional to the entries read).
    std::fill(cur_sum_found.begin(), cur_sum_found.end(), 0.0);
    for (const auto& [j, a] : access_log) cur_sum_found[a] += cur[j];
    ranked.clear();
    ranked.reserve(c);
    for (size_t a = 0; a < c; ++a) {
      ranked.push_back({lower[a], static_cast<int32_t>(a)});
    }
    const size_t top_count = std::min(n, ranked.size());
    std::nth_element(ranked.begin(), ranked.begin() + (top_count - 1),
                     ranked.end(), [](const auto& x, const auto& y) {
                       if (x.first != y.first) return x.first > y.first;
                       return x.second < y.second;
                     });
    const double lb = ranked[top_count - 1].first;
    // UB over everyone outside the current top-n: visited others via
    // their tight bounds, unseen authors via tau.
    double ub = c < lists.num_candidates ? tau : 0.0;
    for (size_t i = top_count; i < ranked.size(); ++i) {
      const int32_t a = ranked[i].second;
      ub = std::max(ub, lower[a] + (tau - cur_sum_found[a]));
    }
    if (lb >= ub) {
      local.early_terminated = depth + 1 < max_depth;
      exhausted_all = depth + 1 >= max_depth;
      ++depth;
      break;
    }
  }
  if (depth >= max_depth) exhausted_all = true;
  local.experts_touched = authors.size();

  // Select the top-n by lower bound (exact when every list was drained).
  ranked.clear();
  for (size_t a = 0; a < authors.size(); ++a) {
    ranked.push_back({lower[a], static_cast<int32_t>(a)});
  }
  std::sort(ranked.begin(), ranked.end(), [&](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return authors[x.second] < authors[y.second];
  });
  const size_t top_count = std::min(n, ranked.size());

  std::vector<ExpertScore> result;
  result.reserve(top_count);
  if (exhausted_all) {
    // Lower bounds are the exact scores.
    for (size_t i = 0; i < top_count; ++i) {
      result.push_back({authors[ranked[i].second], ranked[i].first});
    }
  } else {
    // Resolve exact scores of the chosen experts with one filtered pass
    // (sorted access already proved nobody else can enter the top-n).
    std::unordered_map<NodeId, double> exact;
    exact.reserve(top_count * 2);
    for (size_t i = 0; i < top_count; ++i) {
      exact[authors[ranked[i].second]] = 0.0;
    }
    for (const auto& list : lists.lists) {
      for (const ExpertScore& entry : list) {
        auto it = exact.find(entry.author);
        if (it != exact.end()) it->second += entry.score;
      }
    }
    for (const auto& [author, score] : exact) result.push_back({author, score});
    std::sort(result.begin(), result.end(), BetterExpert);
  }
  KPEF_COUNTER_ADD(obs::kTaQueriesTotal, 1);
  KPEF_COUNTER_ADD(obs::kTaEntriesAccessed, local.entries_accessed);
  if (local.early_terminated) {
    KPEF_COUNTER_ADD(obs::kTaEarlyTerminationTotal, 1);
  }
  KPEF_HISTOGRAM_OBSERVE(obs::kTaRounds, local.rounds);
  if (stats) *stats = local;
  return result;
}

}  // namespace kpef

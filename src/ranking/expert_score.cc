#include "ranking/expert_score.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace kpef {

double ZipfContribution(size_t author_rank, size_t num_authors) {
  KPEF_CHECK(author_rank >= 1 && author_rank <= num_authors);
  double harmonic = 0.0;
  for (size_t i = 1; i <= num_authors; ++i) {
    harmonic += 1.0 / static_cast<double>(i);
  }
  return 1.0 / (static_cast<double>(author_rank) * harmonic);
}

RankedLists BuildRankedLists(const HeteroGraph& graph, EdgeTypeId write_type,
                             const std::vector<NodeId>& top_papers,
                             ContributionWeighting weighting) {
  RankedLists result;
  result.papers = top_papers;
  result.lists.resize(top_papers.size());
  std::unordered_set<NodeId> candidates;
  for (size_t j = 0; j < top_papers.size(); ++j) {
    const NodeId paper = top_papers[j];
    // Segments (base + ingest delta) concatenated are the author list in
    // insertion (author-rank) order — Eq. 5's rank still holds for
    // papers whose edges arrived via streaming ingestion.
    const auto segments = graph.NeighborSegments(paper, write_type);
    const size_t num_authors = segments.size();
    auto& list = result.lists[j];
    list.reserve(num_authors);
    const double inv_paper_rank = 1.0 / static_cast<double>(j + 1);
    for (size_t rank = 1; rank <= num_authors; ++rank) {
      const size_t slot = rank - 1;
      const NodeId author = slot < segments.base.size()
                                ? segments.base[slot]
                                : segments.delta[slot - segments.base.size()];
      // S(a, p) = w(a, p) / I(p)  (Eq. 4).
      const double w = weighting == ContributionWeighting::kZipf
                           ? ZipfContribution(rank, num_authors)
                           : 1.0 / static_cast<double>(num_authors);
      list.push_back({author, inv_paper_rank * w});
      candidates.insert(author);
    }
    std::sort(list.begin(), list.end(),
              [](const ExpertScore& a, const ExpertScore& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.author < b.author;
              });
  }
  result.num_candidates = candidates.size();
  return result;
}

}  // namespace kpef

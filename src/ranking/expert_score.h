// Expert scoring (§IV-C, Eq. 4-6): per-paper expert scores with Zipf
// author-contribution weights, aggregated into the ranking score R(a).
//
// Note on polarity: the paper's Eq. 1 says "argmin R(a)" but its own
// Eq. 4-6, Figure 6 and Theorem 2 all treat larger R as better (more
// well-ranked papers => larger sum). We follow the TA semantics: top-n
// experts are those with the LARGEST ranking score.

#ifndef KPEF_RANKING_EXPERT_SCORE_H_
#define KPEF_RANKING_EXPERT_SCORE_H_

#include <cstdint>
#include <vector>

#include "ann/neighbor.h"
#include "graph/hetero_graph.h"

namespace kpef {

/// An expert with an aggregated ranking score.
struct ExpertScore {
  NodeId author = kInvalidNode;
  double score = 0.0;
};

/// Zipf contribution weight w(a, p) (Eq. 5) for the author at 1-based
/// `author_rank` among `num_authors` authors: 1 / (rank * H(num_authors)).
double ZipfContribution(size_t author_rank, size_t num_authors);

/// How an author's contribution to a paper is weighted in Eq. 4.
enum class ContributionWeighting {
  /// The paper's Zipf author-position weight (Eq. 5).
  kZipf,
  /// Uniform 1/|Cp| weight: the reciprocal-rank scoring of Macdonald &
  /// Ounis [37] that the paper uses as its point of comparison.
  kUniform,
};

/// The m ranked lists L_1..L_m of Figure 6, one per retrieved paper
/// (papers ordered by retrieval rank I(p) = j+1).
struct RankedLists {
  /// lists[j] = candidate experts of paper j with their S(a, p_j),
  /// descending by score (ties broken by author id).
  std::vector<std::vector<ExpertScore>> lists;
  /// Papers behind each list, in rank order.
  std::vector<NodeId> papers;
  /// Distinct candidate experts over all lists.
  size_t num_candidates = 0;
};

/// Builds the ranked score lists for the retrieved papers `top_papers`
/// (descending relevance; index i has retrieval rank I(p) = i + 1).
/// Authors are read from the graph's Write adjacency, whose order is the
/// author-rank order.
RankedLists BuildRankedLists(
    const HeteroGraph& graph, EdgeTypeId write_type,
    const std::vector<NodeId>& top_papers,
    ContributionWeighting weighting = ContributionWeighting::kZipf);

}  // namespace kpef

#endif  // KPEF_RANKING_EXPERT_SCORE_H_

// Meta-paths (Definition 3): typed node sequences over the schema, e.g.
// P-A-P (co-authorship), P-T-P (same topic), P-P (citation).

#ifndef KPEF_METAPATH_META_PATH_H_
#define KPEF_METAPATH_META_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/schema.h"
#include "graph/types.h"

namespace kpef {

/// A validated meta-path: alternating node types and the edge types
/// connecting them.
///
/// The paper's meta-paths always start and end at the Paper type; Parse
/// enforces symmetric endpoints only when `require_paper_endpoints` names
/// a type.
class MetaPath {
 public:
  /// Parses "P-A-P"-style strings against `schema`. Each dash-separated
  /// component must be a node type name; consecutive components must be
  /// connected by exactly one schema edge type (EdgeTypeBetween).
  static StatusOr<MetaPath> Parse(const Schema& schema, std::string_view text);

  /// Builds a meta-path from explicit node types, inferring edge types
  /// from the schema.
  static StatusOr<MetaPath> FromNodeTypes(
      const Schema& schema, const std::vector<NodeTypeId>& node_types);

  /// Number of hops l (= edges). P-A-P has 2, P-P has 1.
  size_t NumHops() const { return edge_types_.size(); }

  const std::vector<NodeTypeId>& node_types() const { return node_types_; }
  const std::vector<EdgeTypeId>& edge_types() const { return edge_types_; }

  NodeTypeId SourceType() const { return node_types_.front(); }
  NodeTypeId TargetType() const { return node_types_.back(); }

  /// True if source and target node types coincide (required for
  /// (k, P)-cores over papers).
  bool IsSymmetricEndpoints() const { return SourceType() == TargetType(); }

  /// "P-A-P" rendering.
  std::string ToString(const Schema& schema) const;

  bool operator==(const MetaPath& other) const {
    return node_types_ == other.node_types_ &&
           edge_types_ == other.edge_types_;
  }

 private:
  MetaPath(std::vector<NodeTypeId> node_types,
           std::vector<EdgeTypeId> edge_types)
      : node_types_(std::move(node_types)),
        edge_types_(std::move(edge_types)) {}

  std::vector<NodeTypeId> node_types_;
  std::vector<EdgeTypeId> edge_types_;
};

}  // namespace kpef

#endif  // KPEF_METAPATH_META_PATH_H_

#include "metapath/p_neighbor.h"

#include "common/logging.h"

namespace kpef {

PNeighborFinder::PNeighborFinder(const HeteroGraph& graph, MetaPath path)
    : graph_(&graph), path_(std::move(path)) {
  const size_t levels = path_.NumHops() + 1;
  visited_marks_.assign(levels, std::vector<uint64_t>(graph.NumNodes(), 0));
  frontiers_.resize(levels);
}

template <typename Emit>
void PNeighborFinder::Expand(NodeId v, Emit emit) {
  KPEF_CHECK(graph_->TypeOf(v) == path_.SourceType())
      << "node type does not match meta-path source";
  ++current_stamp_;
  const size_t hops = path_.NumHops();
  frontiers_[0].clear();
  frontiers_[0].push_back(v);
  visited_marks_[0][v] = current_stamp_;
  for (size_t level = 0; level < hops; ++level) {
    const EdgeTypeId edge_type = path_.edge_types()[level];
    const NodeTypeId next_type = path_.node_types()[level + 1];
    auto& next_frontier = frontiers_[level + 1];
    next_frontier.clear();
    auto& next_marks = visited_marks_[level + 1];
    const bool terminal = (level + 1 == hops);
    for (NodeId u : frontiers_[level]) {
      for (NodeId w : graph_->Neighbors(u, edge_type)) {
        ++edges_scanned_;
        if (graph_->TypeOf(w) != next_type) continue;
        if (next_marks[w] == current_stamp_) continue;
        next_marks[w] = current_stamp_;
        if (terminal) {
          if (w == v) continue;
          if (!emit(w)) return;
        } else {
          next_frontier.push_back(w);
        }
      }
    }
  }
}

std::vector<NodeId> PNeighborFinder::Neighbors(NodeId v) {
  std::vector<NodeId> out;
  Expand(v, [&](NodeId u) {
    out.push_back(u);
    return true;
  });
  return out;
}

size_t PNeighborFinder::NeighborLocalIndices(NodeId v, int32_t* out) {
  size_t count = 0;
  Expand(v, [&](NodeId u) {
    out[count++] = static_cast<int32_t>(graph_->LocalIndex(u));
    return true;
  });
  return count;
}

size_t PNeighborFinder::Degree(NodeId v) {
  size_t count = 0;
  Expand(v, [&](NodeId) {
    ++count;
    return true;
  });
  return count;
}

bool PNeighborFinder::DegreeAtLeast(NodeId v, size_t threshold) {
  if (threshold == 0) return true;
  size_t count = 0;
  Expand(v, [&](NodeId) {
    ++count;
    return count < threshold;  // Stop as soon as the threshold is met.
  });
  return count >= threshold;
}

}  // namespace kpef

// Delta overlay over an immutable HomogeneousProjection (DESIGN.md §16).
//
// Streaming ingestion appends papers and meta-path edges to a projection
// that was frozen at build time. Rebuilding the CSR per batch would make
// ingest O(corpus) instead of O(batch), so the overlay keeps the base
// CSR untouched and accumulates appended rows / extra edges in small
// sorted per-node vectors. Readers see the merged view (base row ∪ delta
// row, sorted, duplicate-free); Compact() folds the delta into a fresh
// CSR when a byte or edge budget trips.

#ifndef KPEF_METAPATH_DELTA_PROJECTION_H_
#define KPEF_METAPATH_DELTA_PROJECTION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "metapath/projection.h"

namespace kpef {

/// Mutable wrapper around one homogeneous projection. Not thread-safe:
/// the IngestCoordinator is the only writer and publishes immutable
/// snapshots to readers.
class DeltaProjection {
 public:
  DeltaProjection() = default;
  explicit DeltaProjection(HomogeneousProjection base);

  /// Registers one appended node (new last local index). Its row starts
  /// empty; its global id extends nodes().
  int32_t AddNode(NodeId global);

  /// Inserts the undirected edge {u, v}. Self-loops and duplicates of
  /// existing (base or delta) edges are ignored and reported as false.
  StatusOr<bool> AddEdge(int32_t u, int32_t v);

  size_t NumNodes() const { return base_.NumNodes() + appended_nodes_.size(); }
  /// Undirected edges in the merged view.
  size_t NumEdges() const { return base_.NumEdges() + delta_edges_; }
  /// Undirected delta edges awaiting a Compact().
  size_t PendingDeltaEdges() const { return delta_edges_; }
  /// Heap bytes held by the delta structures alone.
  size_t DeltaBytes() const;

  NodeId GlobalId(int32_t local) const {
    return local < static_cast<int32_t>(base_.NumNodes())
               ? base_.GlobalId(local)
               : appended_nodes_[local - base_.NumNodes()];
  }

  /// Merged degree (base + delta) in O(1).
  int32_t Degree(int32_t local) const;

  /// Merged, sorted, duplicate-free neighbor row. Returns the base span
  /// copy-free when `local` has no delta; otherwise merges into
  /// `scratch` and returns a span over it (valid until the next use of
  /// the same scratch).
  std::span<const int32_t> Neighbors(int32_t local,
                                     std::vector<int32_t>& scratch) const;

  const HomogeneousProjection& base() const { return base_; }

  /// Folds the delta into a fresh base CSR (FromAdjacency over the
  /// merged rows) and clears the overlay. Readers of the merged view
  /// observe the identical graph before and after.
  void Compact();

 private:
  HomogeneousProjection base_;
  std::vector<NodeId> appended_nodes_;
  /// Extra sorted neighbor rows, keyed by local index (base rows stay
  /// in the CSR; appended rows live here entirely).
  std::unordered_map<int32_t, std::vector<int32_t>> delta_;
  /// Merged degree per delta-touched node (avoids re-merging for O(1)
  /// Degree); nodes absent here have their base degree.
  std::unordered_map<int32_t, int32_t> delta_degree_;
  size_t delta_edges_ = 0;
};

}  // namespace kpef

#endif  // KPEF_METAPATH_DELTA_PROJECTION_H_

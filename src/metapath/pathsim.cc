#include "metapath/pathsim.h"

#include <algorithm>

#include "common/logging.h"

namespace kpef {

PathSim::PathSim(const HeteroGraph& graph, MetaPath path)
    : graph_(&graph), path_(std::move(path)) {
  KPEF_CHECK(path_.IsSymmetricEndpoints())
      << "PathSim requires a symmetric meta-path";
  count_.assign(graph.NumNodes(), 0);
  stamp_.assign(graph.NumNodes(), 0);
}

std::vector<std::pair<NodeId, uint64_t>> PathSim::CountsFrom(NodeId x) {
  KPEF_CHECK(graph_->TypeOf(x) == path_.SourceType());
  // Layered dynamic programming over path positions: counts[v] at level l
  // = number of path instances from x to v following the first l hops.
  std::vector<std::pair<NodeId, uint64_t>> frontier = {{x, 1}};
  for (size_t level = 0; level < path_.NumHops(); ++level) {
    const EdgeTypeId edge_type = path_.edge_types()[level];
    const NodeTypeId next_type = path_.node_types()[level + 1];
    ++current_stamp_;
    std::vector<NodeId> next_nodes;
    for (const auto& [v, c] : frontier) {
      for (NodeId w : graph_->Neighbors(v, edge_type)) {
        if (graph_->TypeOf(w) != next_type) continue;
        if (stamp_[w] != current_stamp_) {
          stamp_[w] = current_stamp_;
          count_[w] = 0;
          next_nodes.push_back(w);
        }
        count_[w] += c;
      }
    }
    frontier.clear();
    frontier.reserve(next_nodes.size());
    for (NodeId w : next_nodes) frontier.push_back({w, count_[w]});
  }
  return frontier;
}

uint64_t PathSim::CountPathInstances(NodeId x, NodeId y) {
  for (const auto& [node, count] : CountsFrom(x)) {
    if (node == y) return count;
  }
  return 0;
}

double PathSim::Similarity(NodeId x, NodeId y) {
  const auto counts = CountsFrom(x);
  uint64_t xy = 0, xx = 0;
  for (const auto& [node, count] : counts) {
    if (node == y) xy = count;
    if (node == x) xx = count;
  }
  uint64_t yy = CountPathInstances(y, y);
  const uint64_t denom = xx + yy;
  if (denom == 0) return 0.0;
  return 2.0 * static_cast<double>(xy) / static_cast<double>(denom);
}

std::vector<PathSim::Scored> PathSim::TopK(NodeId x, size_t k) {
  const auto counts = CountsFrom(x);
  uint64_t xx = 0;
  for (const auto& [node, count] : counts) {
    if (node == x) {
      xx = count;
      break;
    }
  }
  std::vector<Scored> scored;
  scored.reserve(counts.size());
  for (const auto& [node, count] : counts) {
    if (node == x) continue;
    const uint64_t yy = CountPathInstances(node, node);
    const uint64_t denom = xx + yy;
    if (denom == 0) continue;
    scored.push_back(
        {node, 2.0 * static_cast<double>(count) / static_cast<double>(denom)});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace kpef

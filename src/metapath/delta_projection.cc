#include "metapath/delta_projection.h"

#include <algorithm>
#include <utility>

namespace kpef {

DeltaProjection::DeltaProjection(HomogeneousProjection base)
    : base_(std::move(base)) {}

int32_t DeltaProjection::AddNode(NodeId global) {
  const int32_t local = static_cast<int32_t>(NumNodes());
  appended_nodes_.push_back(global);
  return local;
}

StatusOr<bool> DeltaProjection::AddEdge(int32_t u, int32_t v) {
  const int32_t n = static_cast<int32_t>(NumNodes());
  if (u < 0 || v < 0 || u >= n || v >= n) {
    return Status::InvalidArgument("delta edge endpoint out of range");
  }
  if (u == v) return false;  // projections never hold self-loops

  const int32_t base_nodes = static_cast<int32_t>(base_.NumNodes());
  auto present = [&](int32_t a, int32_t b) {
    if (a < base_nodes) {
      const auto row = base_.Neighbors(a);
      if (std::binary_search(row.begin(), row.end(), b)) return true;
    }
    auto it = delta_.find(a);
    if (it == delta_.end()) return false;
    return std::binary_search(it->second.begin(), it->second.end(), b);
  };
  if (present(u, v)) return false;

  auto insert_sorted = [&](int32_t a, int32_t b) {
    std::vector<int32_t>& row = delta_[a];
    row.insert(std::upper_bound(row.begin(), row.end(), b), b);
    auto [it, fresh] = delta_degree_.try_emplace(a, 0);
    if (fresh) it->second = a < base_nodes ? base_.Degree(a) : 0;
    ++it->second;
  };
  insert_sorted(u, v);
  insert_sorted(v, u);
  ++delta_edges_;
  return true;
}

size_t DeltaProjection::DeltaBytes() const {
  size_t bytes = appended_nodes_.capacity() * sizeof(NodeId);
  for (const auto& [local, row] : delta_) {
    (void)local;
    bytes += sizeof(int32_t) + row.capacity() * sizeof(int32_t);
  }
  bytes += delta_degree_.size() * 2 * sizeof(int32_t);
  return bytes;
}

int32_t DeltaProjection::Degree(int32_t local) const {
  auto it = delta_degree_.find(local);
  if (it != delta_degree_.end()) return it->second;
  return local < static_cast<int32_t>(base_.NumNodes()) ? base_.Degree(local)
                                                        : 0;
}

std::span<const int32_t> DeltaProjection::Neighbors(
    int32_t local, std::vector<int32_t>& scratch) const {
  const bool in_base = local < static_cast<int32_t>(base_.NumNodes());
  auto it = delta_.find(local);
  if (it == delta_.end()) {
    if (in_base) return base_.Neighbors(local);
    return {};
  }
  if (!in_base) return {it->second.data(), it->second.size()};
  const auto base_row = base_.Neighbors(local);
  scratch.clear();
  scratch.reserve(base_row.size() + it->second.size());
  std::merge(base_row.begin(), base_row.end(), it->second.begin(),
             it->second.end(), std::back_inserter(scratch));
  return {scratch.data(), scratch.size()};
}

void DeltaProjection::Compact() {
  if (delta_.empty() && appended_nodes_.empty()) return;
  const size_t n = NumNodes();
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  nodes.insert(nodes.end(), base_.nodes().begin(), base_.nodes().end());
  nodes.insert(nodes.end(), appended_nodes_.begin(), appended_nodes_.end());
  std::vector<std::vector<int32_t>> adjacency(n);
  std::vector<int32_t> scratch;
  for (size_t local = 0; local < n; ++local) {
    const auto row = Neighbors(static_cast<int32_t>(local), scratch);
    adjacency[local].assign(row.begin(), row.end());
  }
  base_ = HomogeneousProjection::FromAdjacency(base_.node_type(),
                                               std::move(nodes),
                                               std::move(adjacency));
  appended_nodes_.clear();
  delta_.clear();
  delta_degree_.clear();
  delta_edges_ = 0;
}

}  // namespace kpef

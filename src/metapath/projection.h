// Homogeneous projection: materializes the paper-paper graph induced by a
// meta-path (the "straightforward solution" of §III-A). Stored as a flat
// immutable CSR (offsets + neighbor array + degree array) so that the
// (k, P)-core searches can answer Degree / DegreeAtLeast in O(1) and walk
// a node's P-neighbors without re-running the meta-path BFS — the cost
// TrainingDataGenerator used to pay once per seed per path.

#ifndef KPEF_METAPATH_PROJECTION_H_
#define KPEF_METAPATH_PROJECTION_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/hetero_graph.h"
#include "metapath/meta_path.h"

namespace kpef {

class ThreadPool;

/// Immutable homogeneous graph over the nodes of one type, in CSR form.
///
/// Rows are indexed by the node's LocalIndex within its type; each row
/// holds the node's distinct P-neighbors as local indices, sorted
/// ascending (local index order equals NodeId order within one type, so
/// every consumer sees the same canonical neighbor order as the sorted
/// PNeighborFinder path — the bit-identity contract of DESIGN.md §10).
/// A node is never its own P-neighbor.
class HomogeneousProjection {
 public:
  HomogeneousProjection() = default;

  /// Builds a projection from trusted CSR arrays. `offsets` must have
  /// `nodes.size() + 1` monotonically non-decreasing entries starting at
  /// 0 and ending at `neighbors.size()`; each row must already be a
  /// sorted, duplicate-free slice of valid local indices.
  static HomogeneousProjection FromCsr(NodeTypeId node_type,
                                       std::vector<NodeId> nodes,
                                       std::vector<int64_t> offsets,
                                       std::vector<int32_t> neighbors);

  /// Convenience for tests and small graphs: flattens adjacency lists
  /// (rows are sorted and deduplicated here, so callers may pass them in
  /// any order).
  static HomogeneousProjection FromAdjacency(
      NodeTypeId node_type, std::vector<NodeId> nodes,
      std::vector<std::vector<int32_t>> adjacency);

  /// Node type the projection covers (e.g., Paper).
  NodeTypeId node_type() const { return node_type_; }

  /// Global node id per local index.
  const std::vector<NodeId>& nodes() const { return nodes_; }
  NodeId GlobalId(int32_t local) const { return nodes_[local]; }

  size_t NumNodes() const { return nodes_.size(); }
  /// Undirected edge count (every edge appears in both endpoint rows).
  size_t NumEdges() const { return neighbors_.size() / 2; }
  /// Directed adjacency entries (= sum of all degrees).
  size_t NumEntries() const { return neighbors_.size(); }

  /// P-neighbors of `local`, as sorted local indices.
  std::span<const int32_t> Neighbors(int32_t local) const {
    const int64_t begin = offsets_[local];
    return {neighbors_.data() + begin,
            static_cast<size_t>(offsets_[local + 1] - begin)};
  }

  /// P-degree (Definition 5) in O(1).
  int32_t Degree(int32_t local) const { return degrees_[local]; }
  bool DegreeAtLeast(int32_t local, int32_t threshold) const {
    return degrees_[local] >= threshold;
  }

  /// Heap footprint of the CSR arrays, in bytes.
  size_t MemoryUsageBytes() const;

  /// Projected footprint of a CSR with the given shape — what the build's
  /// count pass compares against ProjectionOptions::max_bytes before
  /// allocating the neighbor array.
  static size_t EstimateBytes(size_t num_nodes, size_t num_entries);

 private:
  NodeTypeId node_type_ = kInvalidNodeType;
  std::vector<NodeId> nodes_;
  std::vector<int64_t> offsets_;    // NumNodes() + 1
  std::vector<int32_t> degrees_;    // NumNodes(); == offsets_[i+1]-offsets_[i]
  std::vector<int32_t> neighbors_;  // flat rows, each sorted ascending
};

struct ProjectionOptions {
  /// Reject the build (TryProjectHomogeneous returns nullopt) when the
  /// count pass shows the CSR would exceed this many bytes. 0 = no limit.
  size_t max_bytes = 0;
  /// Pool for the parallel count/fill passes (null = ThreadPool::Default()).
  ThreadPool* pool = nullptr;
};

/// Materializes the full homogeneous graph for `path` with a parallel
/// two-pass count/fill build. Deterministic: the CSR is bit-identical for
/// every pool size. Requires symmetric endpoints.
///
/// Expensive by design for a single search — this is exactly the cost
/// Algorithm 1 avoids — but built once it amortizes across the thousands
/// of per-seed searches of the sampling stage.
HomogeneousProjection ProjectHomogeneous(const HeteroGraph& graph,
                                         const MetaPath& path,
                                         const ProjectionOptions& options = {});

/// Budgeted variant: returns nullopt (without allocating the neighbor
/// array) when the projection would exceed `options.max_bytes`. Callers
/// fall back to the on-the-fly PNeighborFinder path in that case.
std::optional<HomogeneousProjection> TryProjectHomogeneous(
    const HeteroGraph& graph, const MetaPath& path,
    const ProjectionOptions& options = {});

/// Union of several projections over the same node type (used by the
/// homogeneous-graph baselines, which merge all relations into one
/// paper-paper graph — the noise the paper's introduction criticizes).
/// Takes the inputs by value so callers can move them in; rows are merged
/// sorted-set-wise into an exactly-sized CSR (no re-sort of merged rows).
HomogeneousProjection UnionProjections(
    std::vector<HomogeneousProjection> projections);

}  // namespace kpef

#endif  // KPEF_METAPATH_PROJECTION_H_

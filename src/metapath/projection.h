// Homogeneous projection: materializes the paper-paper graph induced by a
// meta-path (the "straightforward solution" of §III-A, and the substrate
// for the homogeneous network-embedding baselines).

#ifndef KPEF_METAPATH_PROJECTION_H_
#define KPEF_METAPATH_PROJECTION_H_

#include <vector>

#include "graph/hetero_graph.h"
#include "metapath/meta_path.h"

namespace kpef {

/// Homogeneous graph over the nodes of one type, stored as adjacency
/// lists indexed by the node's LocalIndex within its type.
struct HomogeneousProjection {
  /// Node type the projection covers (e.g., Paper).
  NodeTypeId node_type;
  /// Global node id per local index.
  std::vector<NodeId> nodes;
  /// adjacency[i] = local indices of P-neighbors of nodes[i], sorted.
  std::vector<std::vector<int32_t>> adjacency;

  size_t NumNodes() const { return nodes.size(); }
  size_t NumEdges() const;
};

/// Materializes the full homogeneous graph for `path` by enumerating the
/// P-neighbors of every node of the source type. Expensive by design —
/// this is exactly the cost Algorithm 1 avoids.
HomogeneousProjection ProjectHomogeneous(const HeteroGraph& graph,
                                         const MetaPath& path);

/// Union of several projections over the same node type (used by the
/// homogeneous-graph baselines, which merge all relations into one
/// paper-paper graph — the noise the paper's introduction criticizes).
HomogeneousProjection UnionProjections(
    const std::vector<HomogeneousProjection>& projections);

}  // namespace kpef

#endif  // KPEF_METAPATH_PROJECTION_H_

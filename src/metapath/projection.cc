#include "metapath/projection.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "metapath/p_neighbor.h"

namespace kpef {

size_t HomogeneousProjection::NumEdges() const {
  size_t total = 0;
  for (const auto& nbrs : adjacency) total += nbrs.size();
  return total / 2;
}

HomogeneousProjection ProjectHomogeneous(const HeteroGraph& graph,
                                         const MetaPath& path) {
  KPEF_CHECK(path.IsSymmetricEndpoints());
  HomogeneousProjection proj;
  proj.node_type = path.SourceType();
  proj.nodes = graph.NodesOfType(proj.node_type);
  proj.adjacency.resize(proj.nodes.size());
  // One finder per worker chunk (PNeighborFinder keeps mutable scratch).
  ThreadPool& pool = ThreadPool::Default();
  const size_t n = proj.nodes.size();
  const size_t workers = std::max<size_t>(1, pool.num_threads());
  const size_t chunk = (n + workers - 1) / workers;
  auto project_range = [&](size_t begin, size_t end) {
    PNeighborFinder finder(graph, path);
    for (size_t i = begin; i < end; ++i) {
      std::vector<NodeId> nbrs = finder.Neighbors(proj.nodes[i]);
      auto& out = proj.adjacency[i];
      out.reserve(nbrs.size());
      for (NodeId u : nbrs) {
        out.push_back(static_cast<int32_t>(graph.LocalIndex(u)));
      }
      std::sort(out.begin(), out.end());
    }
  };
  if (workers <= 1 || n < 2 * workers) {
    project_range(0, n);
  } else {
    for (size_t start = 0; start < n; start += chunk) {
      const size_t end = std::min(n, start + chunk);
      pool.Submit([&, start, end] { project_range(start, end); });
    }
    pool.Wait();
  }
  return proj;
}

HomogeneousProjection UnionProjections(
    const std::vector<HomogeneousProjection>& projections) {
  KPEF_CHECK(!projections.empty());
  HomogeneousProjection out;
  out.node_type = projections[0].node_type;
  out.nodes = projections[0].nodes;
  out.adjacency.resize(out.nodes.size());
  for (const auto& proj : projections) {
    KPEF_CHECK(proj.node_type == out.node_type);
    KPEF_CHECK(proj.nodes.size() == out.nodes.size());
    for (size_t i = 0; i < proj.adjacency.size(); ++i) {
      auto& dst = out.adjacency[i];
      dst.insert(dst.end(), proj.adjacency[i].begin(),
                 proj.adjacency[i].end());
    }
  }
  for (auto& nbrs : out.adjacency) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return out;
}

}  // namespace kpef

#include "metapath/projection.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "metapath/p_neighbor.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"

namespace kpef {

HomogeneousProjection HomogeneousProjection::FromCsr(
    NodeTypeId node_type, std::vector<NodeId> nodes,
    std::vector<int64_t> offsets, std::vector<int32_t> neighbors) {
  const size_t n = nodes.size();
  KPEF_CHECK(offsets.size() == n + 1);
  KPEF_CHECK(offsets.empty() || offsets.front() == 0);
  KPEF_CHECK(offsets.empty() ||
             offsets.back() == static_cast<int64_t>(neighbors.size()));
  HomogeneousProjection proj;
  proj.node_type_ = node_type;
  proj.nodes_ = std::move(nodes);
  proj.offsets_ = std::move(offsets);
  proj.neighbors_ = std::move(neighbors);
  proj.degrees_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t degree = proj.offsets_[i + 1] - proj.offsets_[i];
    KPEF_CHECK(degree >= 0) << "offsets must be non-decreasing";
    proj.degrees_[i] = static_cast<int32_t>(degree);
  }
  return proj;
}

HomogeneousProjection HomogeneousProjection::FromAdjacency(
    NodeTypeId node_type, std::vector<NodeId> nodes,
    std::vector<std::vector<int32_t>> adjacency) {
  KPEF_CHECK(adjacency.size() == nodes.size());
  std::vector<int64_t> offsets(nodes.size() + 1, 0);
  for (auto& row : adjacency) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  for (size_t i = 0; i < adjacency.size(); ++i) {
    offsets[i + 1] = offsets[i] + static_cast<int64_t>(adjacency[i].size());
  }
  std::vector<int32_t> neighbors;
  neighbors.reserve(static_cast<size_t>(offsets.back()));
  for (const auto& row : adjacency) {
    neighbors.insert(neighbors.end(), row.begin(), row.end());
  }
  return FromCsr(node_type, std::move(nodes), std::move(offsets),
                 std::move(neighbors));
}

size_t HomogeneousProjection::MemoryUsageBytes() const {
  return nodes_.capacity() * sizeof(NodeId) +
         offsets_.capacity() * sizeof(int64_t) +
         degrees_.capacity() * sizeof(int32_t) +
         neighbors_.capacity() * sizeof(int32_t);
}

size_t HomogeneousProjection::EstimateBytes(size_t num_nodes,
                                            size_t num_entries) {
  return num_nodes * sizeof(NodeId) + (num_nodes + 1) * sizeof(int64_t) +
         num_nodes * sizeof(int32_t) + num_entries * sizeof(int32_t);
}

HomogeneousProjection ProjectHomogeneous(const HeteroGraph& graph,
                                         const MetaPath& path,
                                         const ProjectionOptions& options) {
  std::optional<HomogeneousProjection> proj =
      TryProjectHomogeneous(graph, path, options);
  KPEF_CHECK(proj.has_value())
      << "projection exceeded max_bytes; use TryProjectHomogeneous to "
         "handle the budget rejection";
  return std::move(*proj);
}

std::optional<HomogeneousProjection> TryProjectHomogeneous(
    const HeteroGraph& graph, const MetaPath& path,
    const ProjectionOptions& options) {
  KPEF_CHECK(path.IsSymmetricEndpoints());
  Timer build_timer;
  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::Default();
  const NodeTypeId node_type = path.SourceType();
  const std::vector<NodeId>& nodes = graph.NodesOfType(node_type);
  const size_t n = nodes.size();

  // Pass 1 (count): offsets[i + 1] <- deg(i), then prefix-summed. Knowing
  // every row size up front lets pass 2 write rows straight into their
  // final flat slots (no per-row vectors, no growth), and lets the budget
  // check reject oversized projections before the big allocation.
  std::vector<int64_t> offsets(n + 1, 0);
  ParallelForChunks(pool, n, [&](size_t begin, size_t end) {
    // One finder per chunk: it keeps mutable BFS scratch and is not
    // thread-safe; the chunk amortizes its construction.
    PNeighborFinder finder(graph, path);
    for (size_t i = begin; i < end; ++i) {
      offsets[i + 1] = static_cast<int64_t>(finder.Degree(nodes[i]));
    }
  });
  for (size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];
  const size_t entries = static_cast<size_t>(offsets[n]);

  if (options.max_bytes > 0 &&
      HomogeneousProjection::EstimateBytes(n, entries) > options.max_bytes) {
    KPEF_COUNTER_ADD(obs::kProjectionBudgetRejections, 1);
    return std::nullopt;
  }

  // Pass 2 (fill): re-expand each node, writing local indices into its
  // slot, then sort the row. Local-index order equals NodeId order within
  // one type, so sorted rows are the canonical neighbor order shared with
  // the finder-backed searches.
  std::vector<int32_t> neighbors(entries);
  ParallelForChunks(pool, n, [&](size_t begin, size_t end) {
    PNeighborFinder finder(graph, path);
    for (size_t i = begin; i < end; ++i) {
      int32_t* row = neighbors.data() + offsets[i];
      const size_t degree = finder.NeighborLocalIndices(nodes[i], row);
      KPEF_CHECK(degree == static_cast<size_t>(offsets[i + 1] - offsets[i]));
      std::sort(row, row + degree);
    }
  });

  HomogeneousProjection proj = HomogeneousProjection::FromCsr(
      node_type, nodes, std::move(offsets), std::move(neighbors));
  KPEF_COUNTER_ADD(obs::kProjectionBuildsTotal, 1);
  KPEF_COUNTER_ADD(obs::kProjectionEdges, entries);
  KPEF_HISTOGRAM_OBSERVE(obs::kProjectionBuildMs, build_timer.ElapsedMillis());
  return proj;
}

namespace {

// Walks the sorted-set union of one row across several projections,
// emitting each distinct neighbor once, ascending. `cursors` is reusable
// scratch sized to the projection count.
template <typename Emit>
void ForEachUnionNeighbor(
    const std::vector<HomogeneousProjection>& projections, int32_t row,
    std::vector<std::span<const int32_t>>& cursors, Emit emit) {
  cursors.clear();
  for (const HomogeneousProjection& proj : projections) {
    std::span<const int32_t> span = proj.Neighbors(row);
    if (!span.empty()) cursors.push_back(span);
  }
  while (!cursors.empty()) {
    int32_t min_value = cursors[0].front();
    for (size_t c = 1; c < cursors.size(); ++c) {
      min_value = std::min(min_value, cursors[c].front());
    }
    emit(min_value);
    for (size_t c = 0; c < cursors.size();) {
      if (cursors[c].front() == min_value) {
        cursors[c] = cursors[c].subspan(1);
        if (cursors[c].empty()) {
          cursors.erase(cursors.begin() + static_cast<ptrdiff_t>(c));
          continue;
        }
      }
      ++c;
    }
  }
}

}  // namespace

HomogeneousProjection UnionProjections(
    std::vector<HomogeneousProjection> projections) {
  KPEF_CHECK(!projections.empty());
  const NodeTypeId node_type = projections[0].node_type();
  const size_t n = projections[0].NumNodes();
  for (const HomogeneousProjection& proj : projections) {
    KPEF_CHECK(proj.node_type() == node_type);
    KPEF_CHECK(proj.NumNodes() == n);
  }
  if (projections.size() == 1) return std::move(projections[0]);

  ThreadPool& pool = ThreadPool::Default();
  // Same two-pass shape as the build: count each union row, prefix-sum,
  // then merge into exactly-sized slots.
  std::vector<int64_t> offsets(n + 1, 0);
  ParallelForChunks(pool, n, [&](size_t begin, size_t end) {
    std::vector<std::span<const int32_t>> cursors;
    for (size_t i = begin; i < end; ++i) {
      int64_t count = 0;
      ForEachUnionNeighbor(projections, static_cast<int32_t>(i), cursors,
                           [&](int32_t) { ++count; });
      offsets[i + 1] = count;
    }
  });
  for (size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];

  std::vector<int32_t> neighbors(static_cast<size_t>(offsets[n]));
  ParallelForChunks(pool, n, [&](size_t begin, size_t end) {
    std::vector<std::span<const int32_t>> cursors;
    for (size_t i = begin; i < end; ++i) {
      int32_t* out = neighbors.data() + offsets[i];
      ForEachUnionNeighbor(projections, static_cast<int32_t>(i), cursors,
                           [&](int32_t value) { *out++ = value; });
    }
  });

  return HomogeneousProjection::FromCsr(node_type, projections[0].nodes(),
                                        std::move(offsets),
                                        std::move(neighbors));
}

}  // namespace kpef

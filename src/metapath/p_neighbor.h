// P-neighbor computation (Definition 4): the set of nodes reachable from a
// node via path instances of a meta-path P.

#ifndef KPEF_METAPATH_P_NEIGHBOR_H_
#define KPEF_METAPATH_P_NEIGHBOR_H_

#include <cstdint>
#include <vector>

#include "graph/hetero_graph.h"
#include "metapath/meta_path.h"

namespace kpef {

/// Enumerates P-neighbors of individual nodes.
///
/// Uses timestamped visited marks so repeated queries reuse scratch
/// buffers without clearing them; a finder is therefore cheap to query
/// many times but is NOT thread-safe (clone one per thread).
///
/// A node is never its own P-neighbor (the paper's deg(p) counts *other*
/// papers connected to p).
class PNeighborFinder {
 public:
  PNeighborFinder(const HeteroGraph& graph, MetaPath path);

  /// All distinct P-neighbors of `v`, in discovery (BFS layer) order.
  std::vector<NodeId> Neighbors(NodeId v);

  /// Writes the LocalIndex of every distinct P-neighbor of `v` into
  /// `out`, which must have room for Degree(v) entries; returns the
  /// count. Allocation-free — the CSR projection build fills each row
  /// in place with this.
  size_t NeighborLocalIndices(NodeId v, int32_t* out);

  /// Number of distinct P-neighbors of `v` (= deg(v) in Definition 5).
  size_t Degree(NodeId v);

  /// True iff `v` has at least `threshold` P-neighbors; stops early once
  /// the threshold is reached, which Algorithm 1's pruning check exploits.
  bool DegreeAtLeast(NodeId v, size_t threshold);

  const MetaPath& path() const { return path_; }
  const HeteroGraph& graph() const { return *graph_; }

  /// Total adjacency-list entries scanned since construction; the
  /// (k, P)-core benchmarks report this as a machine-independent cost.
  uint64_t edges_scanned() const { return edges_scanned_; }

 private:
  // Expands layer-by-layer; calls `emit(u)` for each new terminal node u
  // != v. If `emit` returns false, expansion stops early.
  template <typename Emit>
  void Expand(NodeId v, Emit emit);

  const HeteroGraph* graph_;
  MetaPath path_;
  // visited_mark_[level][node] == current_stamp_ means already reached at
  // that meta-path level during the current query.
  std::vector<std::vector<uint64_t>> visited_marks_;
  uint64_t current_stamp_ = 0;
  // Reused frontier buffers, one per level.
  std::vector<std::vector<NodeId>> frontiers_;
  uint64_t edges_scanned_ = 0;
};

}  // namespace kpef

#endif  // KPEF_METAPATH_P_NEIGHBOR_H_

// PathSim [27]: meta-path-based similarity between two nodes of the same
// type, cited by the paper as the foundation of meta-path semantics.
//
//   PathSim(x, y) = 2 * |paths x~>y| / (|paths x~>x| + |paths y~>y|)
//
// where paths are instances of a symmetric meta-path P. Provided as a
// library utility: it gives a *weighted* notion of P-closeness, where the
// (k, P)-core uses only the binary P-neighbor relation.

#ifndef KPEF_METAPATH_PATHSIM_H_
#define KPEF_METAPATH_PATHSIM_H_

#include <cstdint>
#include <vector>

#include "graph/hetero_graph.h"
#include "metapath/meta_path.h"

namespace kpef {

/// Computes path-instance counts and PathSim scores for one source node.
///
/// Like PNeighborFinder this object keeps reusable scratch space and is
/// not thread-safe.
class PathSim {
 public:
  /// `path` must have symmetric endpoints.
  PathSim(const HeteroGraph& graph, MetaPath path);

  /// Number of path instances from `x` to `y` (0 when unreachable).
  /// Instances are counted with multiplicity (two shared co-authors =
  /// two P-A-P instances).
  uint64_t CountPathInstances(NodeId x, NodeId y);

  /// PathSim(x, y) in [0, 1]; 1 iff x and y have identical connection
  /// structure weight. PathSim(x, x) == 1 for any node with at least one
  /// self path instance.
  double Similarity(NodeId x, NodeId y);

  /// Scored list of the top-k most PathSim-similar nodes to `x`
  /// (excluding x), descending; ties broken by node id.
  struct Scored {
    NodeId node;
    double score;
  };
  std::vector<Scored> TopK(NodeId x, size_t k);

 private:
  // Path-instance counts from x to every reachable terminal node.
  // Returns pairs (node, count), unordered.
  std::vector<std::pair<NodeId, uint64_t>> CountsFrom(NodeId x);

  const HeteroGraph* graph_;
  MetaPath path_;
  // Scratch: per-node accumulators with a timestamp trick.
  std::vector<uint64_t> count_;
  std::vector<uint64_t> stamp_;
  uint64_t current_stamp_ = 0;
};

}  // namespace kpef

#endif  // KPEF_METAPATH_PATHSIM_H_

#include "metapath/meta_path.h"

#include <sstream>

namespace kpef {

StatusOr<MetaPath> MetaPath::Parse(const Schema& schema,
                                   std::string_view text) {
  std::vector<NodeTypeId> node_types;
  size_t start = 0;
  while (start <= text.size()) {
    size_t dash = text.find('-', start);
    const std::string_view part =
        text.substr(start, dash == std::string_view::npos ? std::string_view::npos
                                                          : dash - start);
    if (part.empty()) {
      return Status::InvalidArgument("empty component in meta-path \"" +
                                     std::string(text) + "\"");
    }
    const NodeTypeId t = schema.FindNodeType(part);
    if (t == kInvalidNodeType) {
      return Status::InvalidArgument("unknown node type \"" +
                                     std::string(part) + "\" in meta-path");
    }
    node_types.push_back(t);
    if (dash == std::string_view::npos) break;
    start = dash + 1;
  }
  return FromNodeTypes(schema, node_types);
}

StatusOr<MetaPath> MetaPath::FromNodeTypes(
    const Schema& schema, const std::vector<NodeTypeId>& node_types) {
  if (node_types.size() < 2) {
    return Status::InvalidArgument("meta-path needs at least two node types");
  }
  std::vector<EdgeTypeId> edge_types;
  edge_types.reserve(node_types.size() - 1);
  for (size_t i = 0; i + 1 < node_types.size(); ++i) {
    const EdgeTypeId e =
        schema.EdgeTypeBetween(node_types[i], node_types[i + 1]);
    if (e == kInvalidEdgeType) {
      std::ostringstream msg;
      msg << "no edge type connects " << schema.NodeTypeName(node_types[i])
          << " and " << schema.NodeTypeName(node_types[i + 1]);
      return Status::InvalidArgument(msg.str());
    }
    edge_types.push_back(e);
  }
  return MetaPath(node_types, std::move(edge_types));
}

std::string MetaPath::ToString(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < node_types_.size(); ++i) {
    if (i > 0) out += '-';
    out += schema.NodeTypeName(node_types_[i]);
  }
  return out;
}

}  // namespace kpef

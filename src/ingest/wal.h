// Write-ahead log for streaming ingestion (DESIGN.md §16).
//
// Durability contract: an ingest batch is acknowledged only after its
// serialized record is appended and flushed here, so a crash between the
// ack and the next snapshot loses nothing — replaying the WAL over the
// base artifacts reconstructs the exact staging state.
//
// On-disk layout (all integers little-endian):
//
//   header  : magic "KPWL" (u32) | version (u32) |
//             base_nodes (u64) | base_edges (u64)
//   record* : payload_len (u32) | crc32(payload) (u32) | payload bytes
//
// The header fingerprint (node/edge counts of the base graph the log
// extends) rejects replay against the wrong artifact set. Records are
// length-prefixed and CRC-checked; a torn tail (truncated length/crc/
// payload, CRC mismatch, or an absurd length) ends replay at the last
// valid record — the reader reports how many bytes were dropped and the
// writer truncates the file back to the valid prefix before appending,
// so a crash mid-append can never poison later records.

#ifndef KPEF_INGEST_WAL_H_
#define KPEF_INGEST_WAL_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace kpef {

/// CRC-32 (IEEE 802.3, reflected) over `data`. Software table; used for
/// WAL record payloads only, not on a hot path.
uint32_t Crc32(std::span<const uint8_t> data);

/// Identity of the base state a WAL extends.
struct WalFingerprint {
  uint64_t base_nodes = 0;
  uint64_t base_edges = 0;
};

/// Result of scanning a WAL file.
struct WalReplay {
  /// Record payloads, in append order, up to the last valid record.
  std::vector<std::vector<uint8_t>> records;
  /// Byte length of the valid prefix (header + intact records).
  uint64_t valid_bytes = 0;
  /// Bytes past the valid prefix that were dropped.
  uint64_t dropped_bytes = 0;
  /// Empty when the file ended cleanly; otherwise why replay stopped
  /// ("truncated record", "crc mismatch", "oversized record").
  std::string truncation_reason;
};

/// Records larger than this are treated as corruption, not data: a
/// length field past the bound means the length itself is damaged.
inline constexpr uint32_t kWalMaxRecordBytes = 64u << 20;

/// Scans `path`, validating the header against `expected` and every
/// record's CRC. Missing file => error. A wrong magic/version/
/// fingerprint is an error (the caller is replaying against the wrong
/// base); torn tails are NOT errors — they surface via truncation_reason
/// and dropped_bytes with all preceding records intact.
StatusOr<WalReplay> ReadWal(const std::string& path,
                            const WalFingerprint& expected);

/// Append-only WAL writer. Open() creates the file (with header) when
/// absent; when present it validates the header and truncates any torn
/// tail so the next Append lands after the last valid record. Not
/// thread-safe (the coordinator serializes appends).
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  static StatusOr<WalWriter> Open(const std::string& path,
                                  const WalFingerprint& fingerprint);

  /// Appends one record (len | crc | payload) and flushes it to the OS.
  Status Append(std::span<const uint8_t> payload);

  /// Byte offset after the last flushed record (== file size).
  uint64_t DurableBytes() const { return durable_bytes_; }

  const std::string& path() const { return path_; }
  bool is_open() const { return file_ != nullptr; }
  void Close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t durable_bytes_ = 0;
};

}  // namespace kpef

#endif  // KPEF_INGEST_WAL_H_

// Wire format of one streaming-ingest batch (DESIGN.md §16).
//
// A batch is a list of new papers. Entities are named by label strings —
// authors/venues/topics resolve against the live graph's labels (new
// labels create new nodes), and a paper's text doubles as its identity:
// the corpus stores L(p) = title + abstract as the paper's label, so
// `text` is both the document body, the duplicate key, and the target of
// `cites` references. The binary encoding below is what lands in WAL
// records; the HTTP endpoint accepts the same shape as JSON and
// serializes it before logging.

#ifndef KPEF_INGEST_INGEST_BATCH_H_
#define KPEF_INGEST_INGEST_BATCH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace kpef {

struct IngestPaper {
  /// L(p): title + abstract. Also the paper's label and dedup key.
  std::string text;
  /// Author labels in contribution-rank order (Eq. 5's Zipf ranks).
  std::vector<std::string> authors;
  /// Venue label; "" = unpublished (no Publish edge).
  std::string venue;
  /// Topic labels; first one becomes the paper's primary topic.
  std::vector<std::string> topics;
  /// Texts (labels) of cited papers; unresolved citations are skipped.
  std::vector<std::string> cites;
};

struct IngestBatch {
  std::vector<IngestPaper> papers;
};

/// Binary encoding: u32 paper count, then per paper each field as
/// (u32 length | bytes) strings and (u32 count | strings) lists, all
/// little-endian. This is the exact WAL record payload.
std::vector<uint8_t> SerializeBatch(const IngestBatch& batch);

/// Bounds-checked decode; any overrun or trailing garbage is an error
/// (WAL CRCs make in-record corruption unreachable in practice, but the
/// HTTP path feeds this with attacker-shaped bytes in tests).
StatusOr<IngestBatch> ParseBatch(std::span<const uint8_t> payload);

}  // namespace kpef

#endif  // KPEF_INGEST_INGEST_BATCH_H_

// IngestCoordinator: folds streaming ingest batches into live serving
// state (DESIGN.md §16).
//
// The coordinator owns a mutable *staging* copy of the base dataset,
// corpus, embeddings, and PG-Index. Applying a batch (after its WAL
// record is durable) appends to every layer in lockstep:
//
//   graph    — AppendNode/AppendEdge delta segments on the HeteroGraph
//   text     — Corpus::AddDocumentFrozen (vocabulary stays frozen)
//   embed    — DocumentEncoder::Encode of the new doc -> Matrix row
//   ann      — PGIndex::InsertBatch local-join insertion (when indexed)
//   metapath — DeltaProjection edges for every configured meta-path
//   kpcore   — CoreMaintenance subcore updates per inserted edge
//
// and then publishes an immutable Generation (deep copies of the staging
// dataset/corpus plus an ExpertFindingEngine::FromParts engine) through
// EngineGroup::PublishExternal — queries never observe the mutable
// staging state, so concurrent query traffic needs no locks (the RCU
// contract of DESIGN.md §14). When the accumulated deltas cross the
// merge budget the coordinator compacts every overlay back into flat
// CSRs before publishing.
//
// Determinism contract (asserted by ingest_test.cc): a drained snapshot
// is query-equivalent to a full offline assembly over the unioned graph
// — identical top-n on the brute-force path, scores within fp tolerance
// on the reranked PG path.

#ifndef KPEF_INGEST_COORDINATOR_H_
#define KPEF_INGEST_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine_group.h"
#include "ingest/ingest_batch.h"
#include "ingest/wal.h"
#include "kpcore/core_maintenance.h"
#include "metapath/delta_projection.h"

namespace kpef {

struct IngestOptions {
  /// WAL file; created (with header) when absent, replayed when present.
  std::string wal_path;
  /// Pending delta edges (graph + index + projections) that trigger a
  /// compaction before the next publish. 0 = compact every batch.
  size_t merge_pending_edge_budget = 20000;
  /// Delta heap bytes that trigger a compaction, whichever trips first.
  size_t merge_delta_byte_budget = 32u << 20;
  /// PG-Index insertion knobs (ignored on brute-force engines).
  PGIndex::InsertParams insert;
};

/// Monotonic ingest state, for /healthz and tests.
struct IngestStats {
  uint64_t records_applied = 0;
  uint64_t batches_applied = 0;
  uint64_t duplicates_skipped = 0;
  uint64_t replayed_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t pending_delta_edges = 0;
  uint64_t merges = 0;
  /// Generation id published by the most recent merge (0 = never).
  uint64_t last_merge_generation = 0;
  /// Generation id of the most recent publish (0 = base generation).
  uint64_t last_publish_generation = 0;
};

struct IngestApplyResult {
  size_t applied = 0;
  size_t duplicates = 0;
  bool merged = false;
  uint64_t generation = 0;
};

class IngestCoordinator {
 public:
  /// Builds the staging state from `group`'s current generation, opens
  /// (or creates) the WAL, replays any logged records into staging, and
  /// — when the replay applied anything — publishes the caught-up
  /// generation. `group` must be unsharded and must outlive the
  /// coordinator; `config` must be the EngineConfig the group serves
  /// with (the published engines inherit it).
  static StatusOr<std::unique_ptr<IngestCoordinator>> Create(
      EngineGroup* group, const EngineConfig& config, IngestOptions options);

  /// Logs `batch` to the WAL, applies it to staging, maybe compacts,
  /// and publishes a new generation. Serialized internally; safe to
  /// call while queries run.
  StatusOr<IngestApplyResult> Apply(const IngestBatch& batch);

  IngestStats Stats() const;

  /// Incrementally maintained core numbers for meta-path `i` (order of
  /// EngineConfig::meta_paths) — introspection seam for tests, which
  /// compare against a fresh CoreDecomposition over the merged graph.
  StatusOr<std::vector<int32_t>> PathCores(size_t i) const;

 private:
  IngestCoordinator(const EngineConfig& config, IngestOptions options)
      : config_(config), options_(std::move(options)) {}

  /// One meta-path's incremental machinery.
  struct PathState {
    MetaPath path;
    DeltaProjection projection;
    CoreMaintenance cores;
  };

  Status InitStaging(EngineGroup* group);
  StatusOr<IngestApplyResult> ApplyLocked(const IngestBatch& batch,
                                          bool log_to_wal, bool publish);
  /// Appends one paper to every staging layer; false = duplicate.
  StatusOr<bool> ApplyPaper(const IngestPaper& paper,
                            std::vector<size_t>* new_rows);
  /// Papers reachable from `paper` over `path` in the staging graph.
  std::vector<int32_t> PathNeighbors(const MetaPath& path, NodeId paper) const;
  size_t PendingDeltaEdges() const;
  size_t DeltaBytes() const;
  void CompactAll();
  StatusOr<uint64_t> PublishSnapshot();

  const EngineConfig config_;
  const IngestOptions options_;
  EngineGroup* group_ = nullptr;
  std::string base_artifact_dir_;

  mutable std::mutex mutex_;
  // --- Staging state (guarded by mutex_; published as deep copies).
  std::shared_ptr<Dataset> dataset_;
  std::shared_ptr<Corpus> corpus_;
  std::unique_ptr<DocumentEncoder> encoder_;
  Matrix embeddings_;
  std::unique_ptr<PGIndex> index_;
  std::vector<PathState> paths_;
  /// Label -> node id per entity kind (papers key on their text).
  std::unordered_map<std::string, NodeId> paper_by_label_;
  std::unordered_map<std::string, NodeId> author_by_label_;
  std::unordered_map<std::string, NodeId> venue_by_label_;
  std::unordered_map<std::string, NodeId> topic_by_label_;

  WalWriter wal_;
  IngestStats stats_;
  /// A compaction ran since the last publish; the next published id
  /// becomes stats_.last_merge_generation.
  bool merged_since_publish_ = false;
};

}  // namespace kpef

#endif  // KPEF_INGEST_COORDINATOR_H_

#include "ingest/coordinator.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "metapath/projection.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"

namespace kpef {

StatusOr<std::unique_ptr<IngestCoordinator>> IngestCoordinator::Create(
    EngineGroup* group, const EngineConfig& config, IngestOptions options) {
  if (group == nullptr) {
    return Status::InvalidArgument("ingest needs an engine group");
  }
  if (group->num_shards() > 1) {
    return Status::FailedPrecondition(
        "streaming ingest requires an unsharded group");
  }
  if (options.wal_path.empty()) {
    return Status::InvalidArgument("ingest needs a WAL path");
  }
  auto coordinator = std::unique_ptr<IngestCoordinator>(
      new IngestCoordinator(config, std::move(options)));
  coordinator->group_ = group;
  KPEF_RETURN_IF_ERROR(coordinator->InitStaging(group));

  // The fingerprint pins the WAL to the artifacts it extends: the base
  // graph's node/edge counts are identical across restarts of the same
  // artifact set and differ across rebuilds.
  const WalFingerprint fingerprint{group->dataset().graph.NumNodes(),
                                   group->dataset().graph.NumEdges()};
  std::vector<std::vector<uint8_t>> replay_records;
  std::error_code ec;
  if (std::filesystem::exists(coordinator->options_.wal_path, ec)) {
    KPEF_ASSIGN_OR_RETURN(
        WalReplay replay,
        ReadWal(coordinator->options_.wal_path, fingerprint));
    if (!replay.truncation_reason.empty()) {
      KPEF_LOG(Warning) << "WAL tail dropped (" << replay.truncation_reason
                        << "): " << replay.dropped_bytes
                        << " bytes past offset " << replay.valid_bytes;
    }
    replay_records = std::move(replay.records);
  }
  // Open() truncates the torn tail, so the next append extends exactly
  // the prefix that was replayed above.
  KPEF_ASSIGN_OR_RETURN(
      coordinator->wal_,
      WalWriter::Open(coordinator->options_.wal_path, fingerprint));
  coordinator->stats_.wal_bytes = coordinator->wal_.DurableBytes();

  {
    std::lock_guard<std::mutex> lock(coordinator->mutex_);
    size_t replayed = 0;
    for (const std::vector<uint8_t>& record : replay_records) {
      StatusOr<IngestBatch> batch = ParseBatch(record);
      if (!batch.ok()) {
        // CRC-valid but unparseable means a writer bug, not disk rot;
        // skip the record rather than refuse to serve.
        KPEF_LOG(Error) << "skipping unparseable WAL record: "
                        << batch.status().ToString();
        continue;
      }
      KPEF_ASSIGN_OR_RETURN(
          const IngestApplyResult result,
          coordinator->ApplyLocked(batch.value(), /*log_to_wal=*/false,
                                   /*publish=*/false));
      replayed += result.applied;
    }
    coordinator->stats_.replayed_records = replayed;
    if (replayed > 0) {
      KPEF_RETURN_IF_ERROR(coordinator->PublishSnapshot().status());
      KPEF_LOG(Info) << "WAL replay: " << replayed << " records over "
                     << replay_records.size() << " batches from "
                     << coordinator->options_.wal_path;
    }
  }
  return coordinator;
}

Status IngestCoordinator::InitStaging(EngineGroup* group) {
  const std::shared_ptr<const EngineGroup::Generation> gen = group->Snapshot();
  if (gen == nullptr || gen->engine == nullptr) {
    return Status::FailedPrecondition("ingest needs a loaded generation");
  }
  if (!gen->shards.empty()) {
    return Status::FailedPrecondition(
        "streaming ingest requires an unsharded group");
  }
  const ExpertFindingEngine& engine = *gen->engine;
  base_artifact_dir_ = gen->artifact_dir;
  dataset_ = std::make_shared<Dataset>(engine.dataset());
  corpus_ = std::make_shared<Corpus>(engine.corpus());
  encoder_ = std::make_unique<DocumentEncoder>(engine.encoder());
  embeddings_ = engine.embeddings();
  if (engine.index() != nullptr) {
    index_ = std::make_unique<PGIndex>(*engine.index());
  }

  const HeteroGraph& graph = dataset_->graph;
  const auto fill = [&graph](NodeTypeId type,
                             std::unordered_map<std::string, NodeId>& map) {
    for (const NodeId v : graph.NodesOfType(type)) {
      map.emplace(graph.Label(v), v);
    }
  };
  fill(dataset_->ids.paper, paper_by_label_);
  fill(dataset_->ids.author, author_by_label_);
  fill(dataset_->ids.venue, venue_by_label_);
  fill(dataset_->ids.topic, topic_by_label_);

  for (const std::string& text : config_.meta_paths) {
    KPEF_ASSIGN_OR_RETURN(MetaPath path,
                          MetaPath::Parse(graph.schema(), text));
    if (!path.IsSymmetricEndpoints() ||
        path.SourceType() != dataset_->ids.paper) {
      return Status::InvalidArgument("meta-path " + text +
                                     " must connect papers");
    }
    HomogeneousProjection projection = ProjectHomogeneous(graph, path);
    CoreMaintenance cores(projection);
    paths_.push_back(PathState{std::move(path),
                               DeltaProjection(std::move(projection)),
                               std::move(cores)});
  }
  return Status::OK();
}

StatusOr<IngestApplyResult> IngestCoordinator::Apply(
    const IngestBatch& batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ApplyLocked(batch, /*log_to_wal=*/true, /*publish=*/true);
}

StatusOr<IngestApplyResult> IngestCoordinator::ApplyLocked(
    const IngestBatch& batch, bool log_to_wal, bool publish) {
  Timer timer;
  if (log_to_wal) {
    const std::vector<uint8_t> payload = SerializeBatch(batch);
    KPEF_RETURN_IF_ERROR(wal_.Append(payload));
    stats_.wal_bytes = wal_.DurableBytes();
  }

  IngestApplyResult result;
  std::vector<size_t> new_rows;
  for (const IngestPaper& paper : batch.papers) {
    KPEF_ASSIGN_OR_RETURN(const bool applied, ApplyPaper(paper, &new_rows));
    if (applied) {
      ++result.applied;
    } else {
      ++result.duplicates;
    }
  }

  if (index_ != nullptr && !new_rows.empty()) {
    Matrix rows(new_rows.size(), embeddings_.cols());
    for (size_t i = 0; i < new_rows.size(); ++i) {
      const auto src = embeddings_.Row(new_rows[i]);
      std::copy(src.begin(), src.end(), rows.Row(i).begin());
    }
    KPEF_RETURN_IF_ERROR(index_->InsertBatch(rows, options_.insert));
  }

  stats_.records_applied += result.applied;
  stats_.duplicates_skipped += result.duplicates;
  ++stats_.batches_applied;
  KPEF_COUNTER_ADD(obs::kIngestRecords, result.applied);
  KPEF_COUNTER_ADD(obs::kIngestDuplicates, result.duplicates);
  KPEF_COUNTER_ADD(obs::kIngestBatches, 1);

  if (PendingDeltaEdges() > options_.merge_pending_edge_budget ||
      DeltaBytes() > options_.merge_delta_byte_budget) {
    Timer merge_timer;
    CompactAll();
    result.merged = true;
    merged_since_publish_ = true;
    ++stats_.merges;
    KPEF_HISTOGRAM_OBSERVE(obs::kIngestMergeMs, merge_timer.ElapsedMillis());
  }
  stats_.pending_delta_edges = PendingDeltaEdges();

  if (publish) {
    KPEF_ASSIGN_OR_RETURN(result.generation, PublishSnapshot());
  }
  KPEF_HISTOGRAM_OBSERVE(obs::kIngestApplyMs, timer.ElapsedMillis());
  KPEF_GAUGE_SET(obs::kIngestWalBytes,
                 static_cast<double>(stats_.wal_bytes));
  KPEF_GAUGE_SET(obs::kIngestPendingDeltaEdges,
                 static_cast<double>(stats_.pending_delta_edges));
  return result;
}

StatusOr<bool> IngestCoordinator::ApplyPaper(const IngestPaper& paper,
                                             std::vector<size_t>* new_rows) {
  if (paper.text.empty()) {
    return Status::InvalidArgument("ingest paper needs non-empty text");
  }
  if (paper_by_label_.find(paper.text) != paper_by_label_.end()) {
    return false;
  }
  HeteroGraph& graph = dataset_->graph;
  const AcademicSchema& ids = dataset_->ids;

  const NodeId paper_node = graph.AppendNode(ids.paper, paper.text);
  paper_by_label_.emplace(paper.text, paper_node);
  const size_t paper_local = graph.LocalIndex(paper_node);

  // Corpus doc id must track paper LocalIndex (the row-alignment
  // invariant every ranking/retrieval stage assumes).
  const size_t doc = corpus_->AddDocumentFrozen(paper.text);
  KPEF_CHECK(doc == paper_local)
      << "corpus/paper alignment broken: doc " << doc << " vs paper "
      << paper_local;
  embeddings_.AppendRow(encoder_->Encode(corpus_->Document(doc)));
  new_rows->push_back(paper_local);

  // Write edges in author-rank order (Eq. 5's Zipf weights read the
  // adjacency order), duplicates within the paper dropped.
  std::unordered_set<std::string> seen;
  std::vector<NodeId> author_nodes;
  for (const std::string& label : paper.authors) {
    if (label.empty() || !seen.insert(label).second) continue;
    NodeId author;
    const auto it = author_by_label_.find(label);
    if (it == author_by_label_.end()) {
      author = graph.AppendNode(ids.author, label);
      author_by_label_.emplace(label, author);
      dataset_->author_primary_topic.push_back(0);
    } else {
      author = it->second;
    }
    KPEF_RETURN_IF_ERROR(graph.AppendEdge(ids.write, author, paper_node));
    author_nodes.push_back(author);
  }

  if (!paper.venue.empty()) {
    NodeId venue;
    const auto it = venue_by_label_.find(paper.venue);
    if (it == venue_by_label_.end()) {
      venue = graph.AppendNode(ids.venue, paper.venue);
      venue_by_label_.emplace(paper.venue, venue);
    } else {
      venue = it->second;
    }
    KPEF_RETURN_IF_ERROR(graph.AppendEdge(ids.publish, paper_node, venue));
  }

  // Topics; the first Mention neighbor defines the primary topic, the
  // same derivation DatasetFromGraph applies to offline graphs.
  int32_t primary_topic = 0;
  bool first_topic = true;
  seen.clear();
  for (const std::string& label : paper.topics) {
    if (label.empty() || !seen.insert(label).second) continue;
    NodeId topic;
    const auto it = topic_by_label_.find(label);
    if (it == topic_by_label_.end()) {
      topic = graph.AppendNode(ids.topic, label);
      topic_by_label_.emplace(label, topic);
    } else {
      topic = it->second;
    }
    KPEF_RETURN_IF_ERROR(graph.AppendEdge(ids.mention, paper_node, topic));
    if (first_topic) {
      primary_topic = static_cast<int32_t>(graph.LocalIndex(topic));
      first_topic = false;
    }
  }
  dataset_->paper_primary_topic.push_back(primary_topic);

  // An author whose first paper this is inherits its primary topic
  // (DatasetFromGraph's first-written-paper rule).
  for (const NodeId author : author_nodes) {
    if (graph.NeighborSegments(author, ids.write).size() == 1) {
      dataset_->author_primary_topic[graph.LocalIndex(author)] =
          primary_topic;
    }
  }

  // Citations resolve by target text; unknown or self targets skip.
  seen.clear();
  for (const std::string& target_text : paper.cites) {
    if (!seen.insert(target_text).second) continue;
    const auto it = paper_by_label_.find(target_text);
    if (it == paper_by_label_.end() || it->second == paper_node) continue;
    KPEF_RETURN_IF_ERROR(graph.AppendEdge(ids.cite, paper_node, it->second));
  }

  // Every new meta-path instance passes through the new paper (old
  // papers gained no mutual connections), so the projection delta is
  // exactly the new paper's P-neighbor row.
  for (PathState& state : paths_) {
    state.projection.AddNode(paper_node);
    state.cores.OnNodeAdded();
    for (const int32_t nbr : PathNeighbors(state.path, paper_node)) {
      KPEF_ASSIGN_OR_RETURN(
          const bool inserted,
          state.projection.AddEdge(static_cast<int32_t>(paper_local), nbr));
      if (inserted) {
        state.cores.OnEdgeInserted(state.projection,
                                   static_cast<int32_t>(paper_local), nbr);
      }
    }
  }
  return true;
}

std::vector<int32_t> IngestCoordinator::PathNeighbors(const MetaPath& path,
                                                      NodeId paper) const {
  const HeteroGraph& graph = dataset_->graph;
  std::vector<NodeId> frontier{paper};
  std::vector<NodeId> next;
  std::unordered_set<NodeId> dedup;
  for (size_t hop = 0; hop < path.NumHops(); ++hop) {
    next.clear();
    dedup.clear();
    const EdgeTypeId edge = path.edge_types()[hop];
    const NodeTypeId want = path.node_types()[hop + 1];
    for (const NodeId v : frontier) {
      const HeteroGraph::NeighborSpans spans = graph.NeighborSegments(v, edge);
      for (const auto& segment : {spans.base, spans.delta}) {
        for (const NodeId w : segment) {
          if (graph.TypeOf(w) != want) continue;
          if (dedup.insert(w).second) next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  std::vector<int32_t> result;
  result.reserve(frontier.size());
  for (const NodeId w : frontier) {
    if (w == paper) continue;
    result.push_back(static_cast<int32_t>(graph.LocalIndex(w)));
  }
  std::sort(result.begin(), result.end());
  return result;
}

size_t IngestCoordinator::PendingDeltaEdges() const {
  size_t pending = dataset_->graph.PendingDeltaEdges();
  if (index_ != nullptr) pending += index_->PendingDeltaEdges();
  for (const PathState& state : paths_) {
    pending += state.projection.PendingDeltaEdges();
  }
  return pending;
}

size_t IngestCoordinator::DeltaBytes() const {
  size_t bytes = 0;
  for (const PathState& state : paths_) {
    bytes += state.projection.DeltaBytes();
  }
  return bytes;
}

void IngestCoordinator::CompactAll() {
  dataset_->graph.CompactDeltas();
  if (index_ != nullptr) index_->CompactDelta();
  for (PathState& state : paths_) {
    state.projection.Compact();
  }
}

StatusOr<uint64_t> IngestCoordinator::PublishSnapshot() {
  Timer timer;
  auto dataset = std::make_shared<Dataset>(*dataset_);
  dataset->config.num_papers = dataset->graph.NumNodesOfType(dataset->ids.paper);
  dataset->config.num_authors =
      dataset->graph.NumNodesOfType(dataset->ids.author);
  dataset->config.num_venues = dataset->graph.NumNodesOfType(dataset->ids.venue);
  dataset->config.num_topics = dataset->graph.NumNodesOfType(dataset->ids.topic);
  auto corpus = std::make_shared<Corpus>(*corpus_);
  std::unique_ptr<PGIndex> index;
  if (index_ != nullptr) index = std::make_unique<PGIndex>(*index_);

  KPEF_ASSIGN_OR_RETURN(
      std::unique_ptr<ExpertFindingEngine> engine,
      ExpertFindingEngine::FromParts(dataset.get(), corpus.get(), config_,
                                     *encoder_, Matrix(embeddings_),
                                     std::move(index), base_artifact_dir_));
  auto generation = std::make_shared<EngineGroup::Generation>();
  generation->artifact_dir = base_artifact_dir_;
  generation->owned_dataset = dataset;
  generation->owned_corpus = corpus;
  generation->engine = std::move(engine);
  generation->load_seconds = timer.ElapsedSeconds();
  generation->ingest_records = stats_.records_applied;
  generation->ingest_wal_bytes = stats_.wal_bytes;
  generation->ingest_pending_delta_edges = stats_.pending_delta_edges;
  generation->ingest_last_merge_generation = stats_.last_merge_generation;
  KPEF_ASSIGN_OR_RETURN(const uint64_t id,
                        group_->PublishExternal(std::move(generation)));
  if (merged_since_publish_) {
    stats_.last_merge_generation = id;
    merged_since_publish_ = false;
  }
  stats_.last_publish_generation = id;
  return id;
}

IngestStats IngestCoordinator::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

StatusOr<std::vector<int32_t>> IngestCoordinator::PathCores(size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (i >= paths_.size()) {
    return Status::InvalidArgument("no meta-path at index " +
                                   std::to_string(i));
  }
  return paths_[i].cores.cores();
}

}  // namespace kpef

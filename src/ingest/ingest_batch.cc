#include "ingest/ingest_batch.h"

#include <cstring>

namespace kpef {

namespace {

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void PutStringList(std::vector<uint8_t>& out,
                   const std::vector<std::string>& list) {
  PutU32(out, static_cast<uint32_t>(list.size()));
  for (const std::string& s : list) PutString(out, s);
}

/// Cursor with hard bounds; every getter fails cleanly past the end.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  StatusOr<uint32_t> U32() {
    if (bytes_.size() - pos_ < 4) {
      return Status::InvalidArgument("ingest batch truncated");
    }
    const uint8_t* p = bytes_.data() + pos_;
    pos_ += 4;
    return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
  }

  StatusOr<std::string> String() {
    KPEF_ASSIGN_OR_RETURN(const uint32_t len, U32());
    if (bytes_.size() - pos_ < len) {
      return Status::InvalidArgument("ingest batch string overruns payload");
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  StatusOr<std::vector<std::string>> StringList() {
    KPEF_ASSIGN_OR_RETURN(const uint32_t count, U32());
    // Each entry needs at least its length prefix, bounding count.
    if (bytes_.size() - pos_ < static_cast<size_t>(count) * 4) {
      return Status::InvalidArgument("ingest batch list count overruns");
    }
    std::vector<std::string> list;
    list.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      KPEF_ASSIGN_OR_RETURN(std::string s, String());
      list.push_back(std::move(s));
    }
    return list;
  }

  size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> SerializeBatch(const IngestBatch& batch) {
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(batch.papers.size()));
  for (const IngestPaper& paper : batch.papers) {
    PutString(out, paper.text);
    PutStringList(out, paper.authors);
    PutString(out, paper.venue);
    PutStringList(out, paper.topics);
    PutStringList(out, paper.cites);
  }
  return out;
}

StatusOr<IngestBatch> ParseBatch(std::span<const uint8_t> payload) {
  Reader reader(payload);
  KPEF_ASSIGN_OR_RETURN(const uint32_t count, reader.U32());
  // Minimum 20 bytes per paper (five empty fields), bounding count.
  if (payload.size() < static_cast<size_t>(count) * 20) {
    return Status::InvalidArgument("ingest batch paper count overruns");
  }
  IngestBatch batch;
  batch.papers.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    IngestPaper paper;
    KPEF_ASSIGN_OR_RETURN(paper.text, reader.String());
    KPEF_ASSIGN_OR_RETURN(paper.authors, reader.StringList());
    KPEF_ASSIGN_OR_RETURN(paper.venue, reader.String());
    KPEF_ASSIGN_OR_RETURN(paper.topics, reader.StringList());
    KPEF_ASSIGN_OR_RETURN(paper.cites, reader.StringList());
    batch.papers.push_back(std::move(paper));
  }
  if (reader.Remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after ingest batch");
  }
  return batch;
}

}  // namespace kpef

#include "ingest/wal.h"

#include <array>
#include <cstring>
#include <filesystem>
#include <utility>

namespace kpef {

namespace {

constexpr uint32_t kWalMagic = 0x4C57504Bu;  // "KPWL" little-endian
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

std::vector<uint8_t> HeaderBytes(const WalFingerprint& fp) {
  std::vector<uint8_t> header;
  header.reserve(kHeaderBytes);
  PutU32(header, kWalMagic);
  PutU32(header, kWalVersion);
  PutU64(header, fp.base_nodes);
  PutU64(header, fp.base_edges);
  return header;
}

/// Reads the whole file; IOError on open/read failure.
StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open WAL: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(size > 0 ? static_cast<size_t>(size) : 0);
  if (!bytes.empty() && std::fread(bytes.data(), 1, bytes.size(), f) !=
                            bytes.size()) {
    std::fclose(f);
    return Status::IOError("short read on WAL: " + path);
  }
  std::fclose(f);
  return bytes;
}

/// Scans raw WAL bytes. Header errors are Status failures; torn tails
/// land in WalReplay::truncation_reason.
StatusOr<WalReplay> ScanWal(const std::vector<uint8_t>& bytes,
                            const WalFingerprint& expected) {
  if (bytes.size() < kHeaderBytes) {
    return Status::IOError("WAL shorter than its header");
  }
  if (GetU32(bytes.data()) != kWalMagic) {
    return Status::IOError("WAL magic mismatch (not a KPWL file)");
  }
  if (GetU32(bytes.data() + 4) != kWalVersion) {
    return Status::IOError("unsupported WAL version");
  }
  const WalFingerprint fp{GetU64(bytes.data() + 8), GetU64(bytes.data() + 16)};
  if (fp.base_nodes != expected.base_nodes ||
      fp.base_edges != expected.base_edges) {
    return Status::FailedPrecondition(
        "WAL fingerprint does not match the base graph (" +
        std::to_string(fp.base_nodes) + " nodes/" +
        std::to_string(fp.base_edges) + " edges logged vs " +
        std::to_string(expected.base_nodes) + "/" +
        std::to_string(expected.base_edges) + " loaded)");
  }

  WalReplay replay;
  size_t pos = kHeaderBytes;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      replay.truncation_reason = "truncated record";
      break;
    }
    const uint32_t len = GetU32(bytes.data() + pos);
    const uint32_t crc = GetU32(bytes.data() + pos + 4);
    if (len > kWalMaxRecordBytes) {
      replay.truncation_reason = "oversized record";
      break;
    }
    if (bytes.size() - pos - 8 < len) {
      replay.truncation_reason = "truncated record";
      break;
    }
    const std::span<const uint8_t> payload(bytes.data() + pos + 8, len);
    if (Crc32(payload) != crc) {
      replay.truncation_reason = "crc mismatch";
      break;
    }
    replay.records.emplace_back(payload.begin(), payload.end());
    pos += 8 + len;
  }
  replay.valid_bytes = pos;
  replay.dropped_bytes = bytes.size() - pos;
  return replay;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  const auto& table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (const uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

StatusOr<WalReplay> ReadWal(const std::string& path,
                            const WalFingerprint& expected) {
  KPEF_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return ScanWal(bytes, expected);
}

WalWriter::~WalWriter() { Close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)),
      durable_bytes_(other.durable_bytes_) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    durable_bytes_ = other.durable_bytes_;
  }
  return *this;
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

StatusOr<WalWriter> WalWriter::Open(const std::string& path,
                                    const WalFingerprint& fingerprint) {
  uint64_t valid_bytes = 0;
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    // Validate the existing log and chop any torn tail so the next
    // append extends the valid prefix.
    KPEF_ASSIGN_OR_RETURN(WalReplay replay, ReadWal(path, fingerprint));
    valid_bytes = replay.valid_bytes;
    if (replay.dropped_bytes > 0) {
      std::filesystem::resize_file(path, valid_bytes, ec);
      if (ec) {
        return Status::IOError("cannot truncate torn WAL tail: " +
                               ec.message());
      }
    }
  } else {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IOError("cannot create WAL: " + path);
    const std::vector<uint8_t> header = HeaderBytes(fingerprint);
    const bool ok =
        std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
        std::fflush(f) == 0;
    std::fclose(f);
    if (!ok) return Status::IOError("cannot write WAL header: " + path);
    valid_bytes = header.size();
  }

  WalWriter writer;
  writer.file_ = std::fopen(path.c_str(), "ab");
  if (writer.file_ == nullptr) {
    return Status::IOError("cannot open WAL for append: " + path);
  }
  writer.path_ = path;
  writer.durable_bytes_ = valid_bytes;
  return writer;
}

Status WalWriter::Append(std::span<const uint8_t> payload) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  if (payload.size() > kWalMaxRecordBytes) {
    return Status::InvalidArgument("WAL record exceeds the 64 MiB bound");
  }
  std::vector<uint8_t> frame;
  frame.reserve(8 + payload.size());
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  PutU32(frame, Crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    return Status::IOError("WAL append failed: " + path_);
  }
  durable_bytes_ += frame.size();
  return Status::OK();
}

}  // namespace kpef

// Synthetic academic-network generation.
//
// Stands in for the Aminer/DBLP/ACM dumps of Table I (unavailable
// offline). The generator plants the structure every method in the paper
// exploits: research-group co-authorship (so (k, P-A-P)-cores exist),
// topic-aligned venues/citations, and topic-conditioned text whose lexical
// similarity correlates with community membership.

#ifndef KPEF_DATA_DATASET_H_
#define KPEF_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/hetero_graph.h"
#include "graph/schema.h"

namespace kpef {

/// Generator knobs. Sizes default to laptop scale (the paper's datasets,
/// ~100-1000x down); `ScaledCopy` derives the Table VI size sweep.
struct DatasetConfig {
  std::string name = "synthetic";
  uint64_t seed = 1;

  // --- Entity counts.
  size_t num_papers = 3000;
  size_t num_authors = 2200;
  size_t num_venues = 40;
  size_t num_topics = 40;

  // --- Structure.
  /// Research-group size range; papers are co-authored within a group.
  size_t group_size_min = 4;
  size_t group_size_max = 8;
  /// Authors per paper range (rank order = contribution order).
  size_t authors_per_paper_min = 2;
  size_t authors_per_paper_max = 5;
  /// Probability a paper mentions a second topic.
  double second_topic_prob = 0.3;
  /// Mean out-citations per paper (Poisson-ish, earlier papers only).
  double mean_citations = 4.0;
  /// Probability a citation stays within the citing paper's primary topic.
  double citation_same_topic_prob = 0.8;
  /// Probability a co-author is drawn from outside the paper's group.
  double external_coauthor_prob = 0.25;

  // --- Text.
  /// Global pool of topical terms shared by all topics. Each topic draws
  /// its words from a window of the pool centered at its own offset, so
  /// adjacent topics overlap heavily — mimicking real research areas that
  /// share terminology and making the retrieval task non-trivial.
  size_t topical_pool_words = 800;
  /// Width of each topic's window into the pool. Larger than the
  /// center-to-center spacing => neighboring topics are confusable.
  size_t topic_window_words = 300;
  size_t common_vocabulary_words = 600;
  /// Surface forms per topical concept (synonymy): each occurrence of a
  /// concept picks one of its variants uniformly. Exact-match retrieval
  /// (TFIDF) suffers vocabulary mismatch; distributional methods recover
  /// the equivalence from shared contexts — matching the real-world gap
  /// between lexical and semantic retrieval.
  size_t surface_variants = 4;
  /// Size of the actual surface vocabulary the (concept, variant) pairs
  /// are hashed onto. Smaller than concepts x variants => polysemy:
  /// distant topics reuse surface words, so an exact lexical match is
  /// ambiguous evidence (as in real text), while aggregated embeddings
  /// still denoise over a document's many tokens. 0 disables folding.
  size_t surface_vocabulary_words = 450;
  size_t title_tokens = 8;
  size_t abstract_tokens = 56;
  /// Probability a token is topical rather than background.
  double topic_word_prob = 0.22;
  /// Sub-areas per topic. Each subfield has its own window into the
  /// topical pool; a paper draws most topical tokens from its primary
  /// subfield. Same-topic papers from different subfields thus share
  /// little exact vocabulary (a real property of coarse topic labels)
  /// even though both are relevant to topic-level queries.
  size_t subfields_per_topic = 3;
  /// Probability a topical token comes from a sibling subfield of the
  /// same topic instead of the paper's primary subfield (lexical bridge
  /// that lets co-occurrence models relate sibling subfields).
  double subfield_mix_prob = 0.3;
  /// Per-document bursty words: each paper repeats a few style words many
  /// times, creating strong spurious lexical matches between unrelated
  /// papers (word burstiness, as in real text).
  size_t bursty_words_per_doc = 3;
  size_t burst_repeats = 5;

  /// Returns a copy with all entity counts multiplied by `factor`
  /// (name suffixed), used for the PG-Index overhead sweep.
  DatasetConfig ScaledCopy(double factor, const std::string& suffix) const;
};

/// Per-dataset profiles mirroring the relative shapes of Table I
/// (Aminer: fewer/coarser topics; ACM: largest).
DatasetConfig AminerProfile();
DatasetConfig DblpProfile();
DatasetConfig AcmProfile();
/// Small profile for unit/integration tests.
DatasetConfig TinyProfile();

/// A generated dataset: the graph plus the planted assignments that the
/// evaluation needs (query ground truth, case-study inspection).
struct Dataset {
  DatasetConfig config;
  AcademicSchema ids;  // schema handle with node/edge type ids
  HeteroGraph graph;
  /// Primary planted topic per paper (index = paper LocalIndex).
  std::vector<int32_t> paper_primary_topic;
  /// Primary planted topic per author (index = author LocalIndex).
  std::vector<int32_t> author_primary_topic;

  /// Convenience accessors.
  const std::vector<NodeId>& Papers() const {
    return graph.NodesOfType(ids.paper);
  }
  const std::vector<NodeId>& Authors() const {
    return graph.NodesOfType(ids.author);
  }
};

/// Generates a dataset deterministically from the config.
Dataset GenerateDataset(const DatasetConfig& config);

/// Wraps an externally-provided heterogeneous graph (e.g. loaded with
/// LoadGraph from a converted DBLP dump) as a Dataset. The graph's schema
/// must contain the academic node types A/P/V/T and edge types
/// Write/Publish/Mention/Cite; planted-topic arrays are derived from each
/// paper's first Mention edge (papers without one get topic 0).
StatusOr<Dataset> DatasetFromGraph(HeteroGraph graph, std::string name = "external");

/// Table I row: entity and relation counts.
struct DatasetStats {
  size_t papers = 0;
  size_t experts = 0;
  size_t venues = 0;
  size_t topics = 0;
  size_t relations = 0;
};

DatasetStats ComputeStats(const Dataset& dataset);

}  // namespace kpef

#endif  // KPEF_DATA_DATASET_H_

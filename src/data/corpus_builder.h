// Builds the tokenized paper corpus from a dataset's labels, preserving
// the invariant corpus-doc-id == paper LocalIndex.

#ifndef KPEF_DATA_CORPUS_BUILDER_H_
#define KPEF_DATA_CORPUS_BUILDER_H_

#include "data/dataset.h"
#include "text/corpus.h"

namespace kpef {

/// Tokenizes every paper's L(p) in LocalIndex order.
Corpus BuildPaperCorpus(const Dataset& dataset,
                        TokenizerOptions tokenizer_options = {});

}  // namespace kpef

#endif  // KPEF_DATA_CORPUS_BUILDER_H_

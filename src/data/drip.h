// "Drip" mode: split a generated dataset into a base prefix plus a
// time-ordered tail of held-out papers, replayable as streaming-ingest
// batches (DESIGN.md §16). The tail papers are described by labels only
// (text, author names, venue, topics, cited-paper texts) so the split is
// independent of the ingest wire format — bench_ingest converts each
// DripPaper to an IngestBatch record verbatim.
//
// The base dataset keeps every author/venue/topic node and the first
// `num_papers - holdout` papers (paper index = time order: the generator
// only cites backwards). Held-out papers' citations are restricted to
// earlier papers, so replaying the tail in order always resolves them.

#ifndef KPEF_DATA_DRIP_H_
#define KPEF_DATA_DRIP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace kpef {

/// One held-out paper, described entirely by labels. Field order matches
/// the generator's edge-add order (authors in contribution-rank order).
struct DripPaper {
  std::string text;
  std::vector<std::string> authors;
  std::string venue;
  std::vector<std::string> topics;
  /// Texts of cited papers that precede this one in time order.
  std::vector<std::string> cites;
};

struct DripSplit {
  /// Prefix dataset: all non-paper nodes, papers [0, kept).
  Dataset base;
  /// Held-out papers in time (= generation) order.
  std::vector<DripPaper> tail;
};

/// Splits `full` into a base prefix and a held-out tail of `holdout`
/// papers. Fails when holdout is 0 or >= the paper count.
StatusOr<DripSplit> MakeDripSplit(const Dataset& full, size_t holdout);

/// Chunks `tail` into consecutive batches of at most `batch_size`.
std::vector<std::vector<DripPaper>> DripBatches(std::vector<DripPaper> tail,
                                                size_t batch_size);

}  // namespace kpef

#endif  // KPEF_DATA_DRIP_H_

#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace kpef {
namespace {

// Knuth's Poisson sampler (small means only).
size_t SamplePoisson(Rng& rng, double mean) {
  const double limit = std::exp(-mean);
  double p = 1.0;
  size_t k = 0;
  do {
    ++k;
    p *= rng.UniformDouble();
  } while (p > limit);
  return k - 1;
}

// A research group: authors of one topic who co-author papers.
struct Group {
  int32_t topic;
  std::vector<NodeId> members;
};

std::string CommonWord(size_t index) { return "c" + std::to_string(index); }

// Samples a topical word for a (global) subfield: a Zipf draw within the
// subfield's window of the global pool, centered at the subfield's own
// offset. Adjacent subfields' windows overlap, so their vocabularies are
// confusable; the Zipf concentration near the center keeps each subfield
// identifiable.
std::string TopicalWord(Rng& rng, const DatasetConfig& config,
                        size_t subfield) {
  const size_t pool = config.topical_pool_words;
  const size_t window = std::min(config.topic_window_words, pool);
  const size_t num_subfields =
      std::max<size_t>(1, config.num_topics * config.subfields_per_topic);
  const size_t center = (subfield * pool) / num_subfields;
  // Zipf rank 1..window, mapped symmetrically around the center:
  // rank 1 -> center, rank 2 -> center+1, rank 3 -> center-1, ...
  const uint64_t rank = rng.Zipf(window, 1.04) - 1;
  const int64_t offset =
      (rank % 2 == 0) ? static_cast<int64_t>(rank / 2)
                      : -static_cast<int64_t>((rank + 1) / 2);
  const size_t index =
      static_cast<size_t>((static_cast<int64_t>(center + pool) + offset)) %
      pool;
  // Synonymy: each concept has several interchangeable surface forms.
  const size_t variant =
      config.surface_variants <= 1 ? 0 : rng.Uniform(config.surface_variants);
  if (config.surface_vocabulary_words == 0) {
    return "w" + std::to_string(index) + "v" + std::to_string(variant);
  }
  // Polysemy: hash-fold (concept, variant) onto a smaller surface
  // vocabulary so distant topics reuse words.
  uint64_t h = index * 0x9E3779B97F4A7C15ULL + variant * 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 31;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 29;
  return "w" + std::to_string(h % config.surface_vocabulary_words);
}

}  // namespace

DatasetConfig DatasetConfig::ScaledCopy(double factor,
                                        const std::string& suffix) const {
  DatasetConfig scaled = *this;
  auto scale = [&](size_t v) {
    return std::max<size_t>(1, static_cast<size_t>(
                                   std::llround(static_cast<double>(v) * factor)));
  };
  scaled.num_papers = scale(num_papers);
  scaled.num_authors = scale(num_authors);
  scaled.num_venues = scale(num_venues);
  scaled.num_topics = std::max<size_t>(4, scale(num_topics));
  scaled.name = name + suffix;
  return scaled;
}

DatasetConfig AminerProfile() {
  DatasetConfig config;
  config.name = "aminer";
  config.seed = 101;
  config.num_papers = 3000;
  config.num_authors = 2300;
  config.num_venues = 42;
  // Aminer has the coarsest topic granularity in Table I.
  config.num_topics = 28;
  config.mean_citations = 4.4;
  return config;
}

DatasetConfig DblpProfile() {
  DatasetConfig config;
  config.name = "dblp";
  config.seed = 202;
  config.num_papers = 3600;
  config.num_authors = 2600;
  config.num_venues = 24;
  config.num_topics = 44;
  config.mean_citations = 4.6;
  return config;
}

DatasetConfig AcmProfile() {
  DatasetConfig config;
  config.name = "acm";
  config.seed = 303;
  config.num_papers = 4400;
  config.num_authors = 3500;
  config.num_venues = 34;
  config.num_topics = 44;
  config.mean_citations = 3.4;
  return config;
}

DatasetConfig TinyProfile() {
  DatasetConfig config;
  config.name = "tiny";
  config.seed = 7;
  config.num_papers = 220;
  config.num_authors = 160;
  config.num_venues = 8;
  config.num_topics = 8;
  config.common_vocabulary_words = 120;
  config.topical_pool_words = 300;
  config.topic_window_words = 60;
  config.abstract_tokens = 30;
  return config;
}

Dataset GenerateDataset(const DatasetConfig& config) {
  Dataset dataset;
  dataset.config = config;
  dataset.ids = AcademicSchema::Make();
  const AcademicSchema& ids = dataset.ids;
  HeteroGraphBuilder builder(ids.schema);
  Rng rng(config.seed);

  // --- Topic and venue nodes.
  std::vector<NodeId> topics(config.num_topics);
  for (size_t t = 0; t < config.num_topics; ++t) {
    topics[t] = builder.AddNode(ids.topic, "topic" + std::to_string(t));
  }
  std::vector<NodeId> venues(config.num_venues);
  std::vector<int32_t> venue_topic(config.num_venues);
  std::vector<std::vector<size_t>> venues_of_topic(config.num_topics);
  for (size_t v = 0; v < config.num_venues; ++v) {
    venues[v] = builder.AddNode(ids.venue, "venue" + std::to_string(v));
    venue_topic[v] = static_cast<int32_t>(v % config.num_topics);
    venues_of_topic[venue_topic[v]].push_back(v);
  }

  // --- Authors: Zipf-popular topics, partitioned into research groups.
  std::vector<double> topic_weights(config.num_topics);
  for (size_t t = 0; t < config.num_topics; ++t) {
    topic_weights[t] = 1.0 / std::pow(static_cast<double>(t + 1), 0.6);
  }
  std::vector<NodeId> authors(config.num_authors);
  dataset.author_primary_topic.resize(config.num_authors);
  std::vector<std::vector<NodeId>> authors_of_topic(config.num_topics);
  for (size_t a = 0; a < config.num_authors; ++a) {
    authors[a] = builder.AddNode(ids.author, "author" + std::to_string(a));
    const int32_t topic = static_cast<int32_t>(rng.Discrete(topic_weights));
    dataset.author_primary_topic[a] = topic;
    authors_of_topic[topic].push_back(authors[a]);
  }
  std::vector<Group> groups;
  for (size_t t = 0; t < config.num_topics; ++t) {
    auto& pool = authors_of_topic[t];
    rng.Shuffle(pool);
    size_t cursor = 0;
    while (cursor < pool.size()) {
      const size_t size = std::min(
          pool.size() - cursor,
          static_cast<size_t>(rng.UniformInt(
              static_cast<int64_t>(config.group_size_min),
              static_cast<int64_t>(config.group_size_max))));
      Group group;
      group.topic = static_cast<int32_t>(t);
      group.members.assign(pool.begin() + cursor,
                           pool.begin() + cursor + size);
      groups.push_back(std::move(group));
      cursor += size;
    }
  }
  KPEF_CHECK(!groups.empty());

  // --- Papers.
  std::vector<NodeId> papers(config.num_papers);
  dataset.paper_primary_topic.resize(config.num_papers);
  std::vector<std::vector<size_t>> papers_of_topic(config.num_topics);
  std::vector<std::vector<int32_t>> paper_topics(config.num_papers);
  std::vector<size_t> paper_group(config.num_papers);
  for (size_t i = 0; i < config.num_papers; ++i) {
    paper_group[i] = rng.Uniform(groups.size());
    const Group& group = groups[paper_group[i]];
    const int32_t topic = group.topic;
    dataset.paper_primary_topic[i] = topic;
    paper_topics[i].push_back(topic);
    if (rng.Bernoulli(config.second_topic_prob) && config.num_topics > 1) {
      int32_t second = topic;
      while (second == topic) {
        second = static_cast<int32_t>(rng.Discrete(topic_weights));
      }
      paper_topics[i].push_back(second);
    }

    // Text: topic- and subfield-conditioned mixture over a Zipf
    // vocabulary, plus per-document bursty style words.
    const size_t S = std::max<size_t>(1, config.subfields_per_topic);
    const size_t primary_subfield =
        static_cast<size_t>(topic) * S + rng.Uniform(S);
    std::vector<size_t> bursty(config.bursty_words_per_doc);
    for (size_t& b : bursty) b = rng.Uniform(config.common_vocabulary_words);
    const size_t total_tokens = config.title_tokens + config.abstract_tokens;
    const double background_slots =
        std::max(1.0, total_tokens * (1.0 - config.topic_word_prob));
    const double burst_prob =
        std::min(0.9, static_cast<double>(config.bursty_words_per_doc *
                                          config.burst_repeats) /
                          background_slots);
    std::string text;
    for (size_t w = 0; w < total_tokens; ++w) {
      if (!text.empty()) text += ' ';
      if (rng.Bernoulli(config.topic_word_prob)) {
        const int32_t tw =
            paper_topics[i][rng.Uniform(paper_topics[i].size())];
        size_t subfield;
        if (tw == topic && !rng.Bernoulli(config.subfield_mix_prob)) {
          subfield = primary_subfield;
        } else {
          subfield = static_cast<size_t>(tw) * S + rng.Uniform(S);
        }
        text += TopicalWord(rng, config, subfield);
      } else if (!bursty.empty() && rng.Bernoulli(burst_prob)) {
        text += CommonWord(bursty[rng.Uniform(bursty.size())]);
      } else {
        text += CommonWord(rng.Zipf(config.common_vocabulary_words, 1.2) - 1);
      }
    }
    papers[i] = builder.AddNode(ids.paper, text);
  }

  auto add_edge = [&](EdgeTypeId type, NodeId src, NodeId dst) {
    const Status s = builder.AddEdge(type, src, dst);
    KPEF_CHECK(s.ok()) << s.ToString();
  };

  // --- Edges, paper by paper. Write edges are inserted in author-rank
  // order (first author first) — the order Eq. 5 weights depend on.
  for (size_t i = 0; i < config.num_papers; ++i) {
    const int32_t topic = dataset.paper_primary_topic[i];

    // Authors: a subset of the paper's research group.
    const Group& group = groups[paper_group[i]];
    size_t num_paper_authors = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(config.authors_per_paper_min),
                       static_cast<int64_t>(config.authors_per_paper_max)));
    num_paper_authors = std::min(num_paper_authors, group.members.size());
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(group.members.size(), num_paper_authors);
    std::vector<NodeId> paper_authors;
    paper_authors.reserve(picks.size());
    for (size_t pick : picks) paper_authors.push_back(group.members[pick]);
    // Occasional external collaborator (cross-topic noise).
    if (!paper_authors.empty() &&
        rng.Bernoulli(config.external_coauthor_prob)) {
      paper_authors.back() = authors[rng.Uniform(authors.size())];
    }
    // Dedup while keeping rank order.
    std::unordered_set<NodeId> used;
    std::vector<NodeId> unique_authors;
    for (NodeId a : paper_authors) {
      if (used.insert(a).second) unique_authors.push_back(a);
    }
    for (NodeId a : unique_authors) add_edge(ids.write, a, papers[i]);

    // Venue matching the primary topic when one exists.
    const auto& venue_pool = venues_of_topic[topic];
    const size_t venue_index = venue_pool.empty()
                                   ? rng.Uniform(config.num_venues)
                                   : venue_pool[rng.Uniform(venue_pool.size())];
    add_edge(ids.publish, papers[i], venues[venue_index]);

    // Topic mention: the paper is labeled with its primary topic only.
    // Secondary topics influence the text (interdisciplinary content) but
    // not the label; labeling every influence would glue all topic
    // cliques into one giant P-T-P component and void the (k, P-T-P)
    // constraint.
    add_edge(ids.mention, papers[i], topics[topic]);

    // Citations to earlier papers, biased to the same topic.
    if (i > 0) {
      const size_t num_cites =
          std::min(SamplePoisson(rng, config.mean_citations), i);
      std::unordered_set<size_t> cited;
      for (size_t c = 0; c < num_cites; ++c) {
        size_t target = i;
        if (rng.Bernoulli(config.citation_same_topic_prob) &&
            !papers_of_topic[topic].empty()) {
          const auto& pool = papers_of_topic[topic];
          target = pool[rng.Uniform(pool.size())];
        } else {
          target = rng.Uniform(i);
        }
        if (target >= i || !cited.insert(target).second) continue;
        add_edge(ids.cite, papers[i], papers[target]);
      }
    }
    papers_of_topic[topic].push_back(i);
  }

  dataset.graph = std::move(builder).Build();
  KPEF_LOG(Info) << "generated dataset '" << config.name << "': "
                 << dataset.graph.NumNodes() << " nodes, "
                 << dataset.graph.NumEdges() << " edges";
  return dataset;
}

StatusOr<Dataset> DatasetFromGraph(HeteroGraph graph, std::string name) {
  Dataset dataset;
  dataset.config.name = std::move(name);
  const Schema& schema = graph.schema();
  AcademicSchema& ids = dataset.ids;
  ids.schema = schema;
  ids.author = schema.FindNodeType("A");
  ids.paper = schema.FindNodeType("P");
  ids.venue = schema.FindNodeType("V");
  ids.topic = schema.FindNodeType("T");
  ids.write = schema.FindEdgeType("Write");
  ids.publish = schema.FindEdgeType("Publish");
  ids.mention = schema.FindEdgeType("Mention");
  ids.cite = schema.FindEdgeType("Cite");
  if (ids.author == kInvalidNodeType || ids.paper == kInvalidNodeType ||
      ids.venue == kInvalidNodeType || ids.topic == kInvalidNodeType) {
    return Status::InvalidArgument(
        "graph schema missing one of the node types A/P/V/T");
  }
  if (ids.write == kInvalidEdgeType || ids.publish == kInvalidEdgeType ||
      ids.mention == kInvalidEdgeType || ids.cite == kInvalidEdgeType) {
    return Status::InvalidArgument(
        "graph schema missing one of Write/Publish/Mention/Cite");
  }
  dataset.graph = std::move(graph);
  dataset.config.num_papers = dataset.graph.NumNodesOfType(ids.paper);
  dataset.config.num_authors = dataset.graph.NumNodesOfType(ids.author);
  dataset.config.num_venues = dataset.graph.NumNodesOfType(ids.venue);
  dataset.config.num_topics = dataset.graph.NumNodesOfType(ids.topic);
  dataset.paper_primary_topic.assign(dataset.config.num_papers, 0);
  for (NodeId paper : dataset.graph.NodesOfType(ids.paper)) {
    const auto topics = dataset.graph.Neighbors(paper, ids.mention);
    if (!topics.empty()) {
      dataset.paper_primary_topic[dataset.graph.LocalIndex(paper)] =
          static_cast<int32_t>(dataset.graph.LocalIndex(topics[0]));
    }
  }
  dataset.author_primary_topic.assign(dataset.config.num_authors, 0);
  for (NodeId author : dataset.graph.NodesOfType(ids.author)) {
    const auto papers = dataset.graph.Neighbors(author, ids.write);
    if (!papers.empty()) {
      dataset.author_primary_topic[dataset.graph.LocalIndex(author)] =
          dataset.paper_primary_topic[dataset.graph.LocalIndex(papers[0])];
    }
  }
  return dataset;
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.papers = dataset.graph.NumNodesOfType(dataset.ids.paper);
  stats.experts = dataset.graph.NumNodesOfType(dataset.ids.author);
  stats.venues = dataset.graph.NumNodesOfType(dataset.ids.venue);
  stats.topics = dataset.graph.NumNodesOfType(dataset.ids.topic);
  stats.relations = dataset.graph.NumEdges();
  return stats;
}

}  // namespace kpef

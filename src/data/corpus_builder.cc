#include "data/corpus_builder.h"

#include "common/logging.h"

namespace kpef {

Corpus BuildPaperCorpus(const Dataset& dataset,
                        TokenizerOptions tokenizer_options) {
  Corpus corpus(tokenizer_options);
  for (NodeId paper : dataset.Papers()) {
    const size_t doc = corpus.AddDocument(dataset.graph.Label(paper));
    KPEF_CHECK(doc == dataset.graph.LocalIndex(paper))
        << "corpus order must match paper LocalIndex order";
  }
  return corpus;
}

}  // namespace kpef

// Query and ground-truth generation (§VI-A): queries are papers' own
// textual labels; the ground truth for a query is every author who shares
// a topic with the query paper.

#ifndef KPEF_DATA_QUERIES_H_
#define KPEF_DATA_QUERIES_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace kpef {

/// One evaluation query.
struct Query {
  /// Paper the query text was taken from.
  NodeId query_paper = kInvalidNode;
  /// The query text T (the paper's L(p) = title + abstract).
  std::string text;
  /// Relevant experts: authors with at least one paper sharing a topic
  /// with the query paper. Sorted ascending.
  std::vector<NodeId> ground_truth;
};

struct QuerySet {
  std::vector<Query> queries;
};

/// Samples `num_queries` query papers uniformly and computes their ground
/// truth by walking Paper -> Topic -> Paper -> Author.
QuerySet GenerateQueries(const Dataset& dataset, size_t num_queries,
                         uint64_t seed);

}  // namespace kpef

#endif  // KPEF_DATA_QUERIES_H_

#include "data/queries.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace kpef {

QuerySet GenerateQueries(const Dataset& dataset, size_t num_queries,
                         uint64_t seed) {
  QuerySet set;
  const HeteroGraph& graph = dataset.graph;
  const AcademicSchema& ids = dataset.ids;
  const std::vector<NodeId>& papers = dataset.Papers();
  if (papers.empty()) return set;

  // Precompute topic -> authors once (authors of any paper mentioning the
  // topic); per-query ground truth is then a union over the query paper's
  // topics.
  const size_t num_topics = graph.NumNodesOfType(ids.topic);
  std::vector<std::vector<NodeId>> authors_of_topic(num_topics);
  for (NodeId topic : graph.NodesOfType(ids.topic)) {
    std::unordered_set<NodeId> authors;
    for (NodeId paper : graph.Neighbors(topic, ids.mention)) {
      for (NodeId author : graph.Neighbors(paper, ids.write)) {
        authors.insert(author);
      }
    }
    auto& out = authors_of_topic[graph.LocalIndex(topic)];
    out.assign(authors.begin(), authors.end());
    std::sort(out.begin(), out.end());
  }

  Rng rng(seed);
  const std::vector<size_t> picks = rng.SampleWithoutReplacement(
      papers.size(), std::min(num_queries, papers.size()));
  set.queries.reserve(picks.size());
  for (size_t pick : picks) {
    Query query;
    query.query_paper = papers[pick];
    query.text = graph.Label(query.query_paper);
    std::unordered_set<NodeId> truth;
    for (NodeId topic : graph.Neighbors(query.query_paper, ids.mention)) {
      const auto& authors = authors_of_topic[graph.LocalIndex(topic)];
      truth.insert(authors.begin(), authors.end());
    }
    query.ground_truth.assign(truth.begin(), truth.end());
    std::sort(query.ground_truth.begin(), query.ground_truth.end());
    set.queries.push_back(std::move(query));
  }
  KPEF_LOG(Info) << "generated " << set.queries.size() << " queries";
  return set;
}

}  // namespace kpef

#include "data/drip.h"

#include <unordered_map>
#include <utility>

namespace kpef {

StatusOr<DripSplit> MakeDripSplit(const Dataset& full, size_t holdout) {
  const HeteroGraph& g = full.graph;
  const AcademicSchema& ids = full.ids;
  const std::vector<NodeId>& papers = g.NodesOfType(ids.paper);
  if (holdout == 0 || holdout >= papers.size()) {
    return Status::InvalidArgument("drip holdout must be in [1, num_papers), got " +
                           std::to_string(holdout) + " of " +
                           std::to_string(papers.size()));
  }
  const size_t kept = papers.size() - holdout;

  // Rebuild the prefix graph: every non-paper node (same per-type order,
  // so author/venue/topic LocalIndex is stable) plus papers [0, kept).
  AcademicSchema fresh = AcademicSchema::Make();
  HeteroGraphBuilder builder(fresh.schema);
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(g.NumNodes());
  for (NodeId v : g.NodesOfType(ids.author)) {
    remap[v] = builder.AddNode(fresh.author, g.Label(v));
  }
  for (NodeId v : g.NodesOfType(ids.venue)) {
    remap[v] = builder.AddNode(fresh.venue, g.Label(v));
  }
  for (NodeId v : g.NodesOfType(ids.topic)) {
    remap[v] = builder.AddNode(fresh.topic, g.Label(v));
  }
  for (size_t i = 0; i < kept; ++i) {
    remap[papers[i]] = builder.AddNode(fresh.paper, g.Label(papers[i]));
  }

  // Re-add edges paper by paper in the generator's per-paper order
  // (write in author-rank order, then publish, mention, cite), which is
  // exactly the order the ingest path applies them in.
  for (size_t i = 0; i < kept; ++i) {
    const NodeId p = papers[i];
    for (NodeId a : g.Neighbors(p, ids.write)) {
      KPEF_RETURN_IF_ERROR(builder.AddEdge(fresh.write, remap[a], remap[p]));
    }
    for (NodeId v : g.Neighbors(p, ids.publish)) {
      KPEF_RETURN_IF_ERROR(builder.AddEdge(fresh.publish, remap[p], remap[v]));
    }
    for (NodeId t : g.Neighbors(p, ids.mention)) {
      KPEF_RETURN_IF_ERROR(builder.AddEdge(fresh.mention, remap[p], remap[t]));
    }
    for (NodeId q : g.Neighbors(p, ids.cite)) {
      // Cite rows mix both directions; out-citations are the earlier
      // papers (the generator only cites backwards).
      if (g.LocalIndex(q) < i) {
        KPEF_RETURN_IF_ERROR(builder.AddEdge(fresh.cite, remap[p], remap[q]));
      }
    }
  }

  DripSplit split;
  KPEF_ASSIGN_OR_RETURN(
      split.base,
      DatasetFromGraph(std::move(builder).Build(), full.config.name + "-base"));
  DatasetConfig base_config = full.config;
  base_config.name = full.config.name + "-base";
  base_config.num_papers = kept;
  split.base.config = std::move(base_config);

  // Describe the tail by labels, in time order.
  split.tail.reserve(holdout);
  for (size_t i = kept; i < papers.size(); ++i) {
    const NodeId p = papers[i];
    DripPaper out;
    out.text = g.Label(p);
    for (NodeId a : g.Neighbors(p, ids.write)) out.authors.push_back(g.Label(a));
    std::span<const NodeId> venues = g.Neighbors(p, ids.publish);
    if (!venues.empty()) out.venue = g.Label(venues.front());
    for (NodeId t : g.Neighbors(p, ids.mention)) out.topics.push_back(g.Label(t));
    for (NodeId q : g.Neighbors(p, ids.cite)) {
      if (g.LocalIndex(q) < i) out.cites.push_back(g.Label(q));
    }
    split.tail.push_back(std::move(out));
  }
  return split;
}

std::vector<std::vector<DripPaper>> DripBatches(std::vector<DripPaper> tail,
                                                size_t batch_size) {
  std::vector<std::vector<DripPaper>> batches;
  if (batch_size == 0) batch_size = 1;
  for (size_t begin = 0; begin < tail.size(); begin += batch_size) {
    const size_t end = std::min(tail.size(), begin + batch_size);
    std::vector<DripPaper> batch;
    batch.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) batch.push_back(std::move(tail[i]));
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace kpef

#include "data/tsv_importer.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace kpef {
namespace {

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    if (end > start) parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

struct PaperRow {
  std::string id;
  std::vector<std::string> authors;
  std::string venue;
  std::vector<std::string> topics;
  std::vector<std::string> citations;
  std::string text;
};

bool ParseRow(const std::string& line, PaperRow& row) {
  const std::vector<std::string> columns = [&] {
    std::vector<std::string> cols;
    size_t start = 0;
    // Keep empty columns (unlike SplitOn): fields may legitimately be
    // empty (a paper without topics).
    for (;;) {
      const size_t end = line.find('\t', start);
      cols.push_back(line.substr(
          start, end == std::string::npos ? std::string::npos : end - start));
      if (end == std::string::npos) break;
      start = end + 1;
    }
    return cols;
  }();
  if (columns.size() != 6) return false;
  row.id = columns[0];
  if (row.id.empty()) return false;
  row.authors = SplitOn(columns[1], '|');
  if (row.authors.empty()) return false;  // a paper needs an author
  row.venue = columns[2];
  if (row.venue.empty()) return false;
  row.topics = SplitOn(columns[3], '|');
  row.citations = SplitOn(columns[4], '|');
  row.text = columns[5];
  return true;
}

}  // namespace

StatusOr<Dataset> ImportTsvDataset(std::istream& in, const std::string& name,
                                   TsvImportReport* report) {
  TsvImportReport local_report;
  std::vector<PaperRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    PaperRow row;
    if (ParseRow(line, row)) {
      rows.push_back(std::move(row));
    } else {
      ++local_report.malformed_lines;
    }
  }
  if (rows.empty()) {
    return Status::InvalidArgument("no valid paper rows in TSV input");
  }

  AcademicSchema ids = AcademicSchema::Make();
  HeteroGraphBuilder builder(ids.schema);
  std::unordered_map<std::string, NodeId> authors, venues, topics;
  std::unordered_map<std::string, NodeId> paper_ids;

  auto intern = [&](std::unordered_map<std::string, NodeId>& table,
                    NodeTypeId type, const std::string& key) {
    auto [it, inserted] = table.emplace(key, kInvalidNode);
    if (inserted) it->second = builder.AddNode(type, key);
    return it->second;
  };

  // Pass 1: create entity and paper nodes (papers in file order so that
  // LocalIndex == row order).
  for (const PaperRow& row : rows) {
    for (const std::string& a : row.authors) intern(authors, ids.author, a);
    intern(venues, ids.venue, row.venue);
    for (const std::string& t : row.topics) intern(topics, ids.topic, t);
  }
  for (const PaperRow& row : rows) {
    auto [it, inserted] = paper_ids.emplace(row.id, kInvalidNode);
    if (!inserted) {
      return Status::InvalidArgument("duplicate paper id \"" + row.id +
                                     "\"");
    }
    it->second = builder.AddNode(ids.paper, row.text);
  }

  // Pass 2: edges. Write edges in the row's author order (= rank order).
  auto add_edge = [&](EdgeTypeId type, NodeId src, NodeId dst) -> Status {
    return builder.AddEdge(type, src, dst);
  };
  for (const PaperRow& row : rows) {
    const NodeId paper = paper_ids[row.id];
    for (const std::string& a : row.authors) {
      KPEF_RETURN_IF_ERROR(add_edge(ids.write, authors[a], paper));
    }
    KPEF_RETURN_IF_ERROR(add_edge(ids.publish, paper, venues[row.venue]));
    for (const std::string& t : row.topics) {
      KPEF_RETURN_IF_ERROR(add_edge(ids.mention, paper, topics[t]));
    }
    for (const std::string& c : row.citations) {
      auto it = paper_ids.find(c);
      if (it == paper_ids.end() || it->second == paper) {
        ++local_report.dangling_citations;
        continue;
      }
      KPEF_RETURN_IF_ERROR(add_edge(ids.cite, paper, it->second));
    }
  }

  KPEF_ASSIGN_OR_RETURN(Dataset dataset,
                        DatasetFromGraph(std::move(builder).Build(), name));
  local_report.papers = rows.size();
  local_report.authors = authors.size();
  local_report.venues = venues.size();
  local_report.topics = topics.size();
  if (local_report.malformed_lines > 0 ||
      local_report.dangling_citations > 0) {
    KPEF_LOG(Warning) << "TSV import skipped " << local_report.malformed_lines
                      << " malformed lines and "
                      << local_report.dangling_citations
                      << " dangling citations";
  }
  if (report) *report = local_report;
  return dataset;
}

StatusOr<Dataset> ImportTsvDataset(const std::string& path,
                                   TsvImportReport* report) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ImportTsvDataset(in, path, report);
}

}  // namespace kpef

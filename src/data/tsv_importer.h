// TSV importer: builds an academic heterogeneous graph from a simple
// one-paper-per-line tab-separated file, the intended path for loading
// real bibliographies (e.g., a converted DBLP/Aminer dump).
//
// Columns (tab-separated, one paper per line, '#' lines are comments):
//   paper_id <TAB> authors <TAB> venue <TAB> topics <TAB> citations <TAB> text
// where authors/topics/citations are '|'-separated keys (authors in rank
// order, citations referencing other papers' paper_ids; unknown citation
// targets are skipped with a warning count). Author/venue/topic nodes are
// created on first mention; paper text becomes the node label L(p).

#ifndef KPEF_DATA_TSV_IMPORTER_H_
#define KPEF_DATA_TSV_IMPORTER_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace kpef {

/// Import diagnostics.
struct TsvImportReport {
  size_t papers = 0;
  size_t authors = 0;
  size_t venues = 0;
  size_t topics = 0;
  /// Citation references to unknown paper ids (skipped).
  size_t dangling_citations = 0;
  /// Lines that could not be parsed (skipped).
  size_t malformed_lines = 0;
};

/// Imports a dataset from a TSV file.
StatusOr<Dataset> ImportTsvDataset(const std::string& path,
                                   TsvImportReport* report = nullptr);

/// Imports from an arbitrary stream (testing / piping).
StatusOr<Dataset> ImportTsvDataset(std::istream& in, const std::string& name,
                                   TsvImportReport* report = nullptr);

}  // namespace kpef

#endif  // KPEF_DATA_TSV_IMPORTER_H_

// Wall-clock timing helpers used by the benchmark harnesses.

#ifndef KPEF_COMMON_TIMER_H_
#define KPEF_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace kpef {

/// Monotonic stopwatch. Starts on construction; Restart() resets it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kpef

#endif  // KPEF_COMMON_TIMER_H_

// Wall-clock timing helpers used by the benchmark harnesses.

#ifndef KPEF_COMMON_TIMER_H_
#define KPEF_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace kpef {

/// Monotonic stopwatch. Starts on construction; Restart() resets it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed time in integer nanoseconds (no floating-point rounding;
  /// suitable for trace timestamps and accumulating tiny intervals).
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII phase timer: adds the scope's elapsed seconds to `*accumulator`
/// on destruction. Replaces hand-rolled Timer start/stop pairs:
///
///   { ScopedTimer t(&report.pretrain_seconds); Pretrain(); }
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator) : accumulator_(accumulator) {}
  ~ScopedTimer() {
    if (accumulator_ != nullptr) *accumulator_ += timer_.ElapsedSeconds();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* accumulator_;
  Timer timer_;
};

}  // namespace kpef

#endif  // KPEF_COMMON_TIMER_H_

// Cooperative cancellation for parallel work: a copyable token backed by
// shared state that flips exactly once, optionally driven by a
// steady-clock deadline. Tokens are checked at chunk boundaries by
// ParallelFor and at per-query boundaries by the batch search/query
// paths, so cancellation yields *partial* results rather than aborts.

#ifndef KPEF_COMMON_CANCELLATION_H_
#define KPEF_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <memory>

namespace kpef {

/// Copyable cancellation handle. A default-constructed token is "null":
/// it can never fire and IsCancelled() costs one pointer test. Tokens
/// with state share it across copies; RequestCancel() on any copy is
/// observed by all. A deadline token additionally fires once
/// steady_clock passes the deadline (the flag latches, so later checks
/// are a single relaxed load even after the clock read).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// A token that only fires via RequestCancel().
  static CancelToken Cancellable() {
    CancelToken token;
    token.state_ = std::make_shared<State>();
    return token;
  }

  /// A token that fires at `deadline` (or earlier via RequestCancel()).
  /// When `parent` is non-null, the token also fires whenever the parent
  /// does — used to combine a caller-supplied token with a per-call
  /// deadline.
  static CancelToken WithDeadline(Clock::time_point deadline,
                                  CancelToken parent = CancelToken()) {
    CancelToken token;
    token.state_ = std::make_shared<State>();
    token.state_->has_deadline = true;
    token.state_->deadline = deadline;
    token.state_->parent = std::move(parent.state_);
    return token;
  }

  /// A token that fires `ms` milliseconds from now.
  static CancelToken AfterMillis(double ms,
                                 CancelToken parent = CancelToken()) {
    return WithDeadline(
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(ms)),
        std::move(parent));
  }

  /// True when this token can ever fire (i.e. it is not the null token).
  bool CanBeCancelled() const { return state_ != nullptr; }

  /// Requests cancellation; idempotent, safe from any thread. No-op on a
  /// null token.
  void RequestCancel() const {
    if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// True once cancellation was requested or the deadline passed (on
  /// this token or any ancestor).
  bool IsCancelled() const {
    return state_ != nullptr && state_->Fired();
  }

 private:
  struct State {
    bool Fired() const {
      if (cancelled.load(std::memory_order_relaxed)) return true;
      if ((parent && parent->Fired()) ||
          (has_deadline && Clock::now() >= deadline)) {
        cancelled.store(true, std::memory_order_relaxed);
        return true;
      }
      return false;
    }

    mutable std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    Clock::time_point deadline{};
    std::shared_ptr<State> parent;
  };

  std::shared_ptr<State> state_;
};

}  // namespace kpef

#endif  // KPEF_COMMON_CANCELLATION_H_

// Build/version stamp, filled at configure time (build_info.cc.in):
// surfaced in /healthz, EngineInfo, the access-log header line, and the
// kpef_serve startup banner so a log segment or a metrics scrape is
// attributable to an exact build.

#ifndef KPEF_COMMON_BUILD_INFO_H_
#define KPEF_COMMON_BUILD_INFO_H_

namespace kpef {

/// Short git hash of the checkout ("unknown" outside a git tree).
const char* BuildGitHash();

/// CMake build type ("Release", "Debug", ... or "unspecified").
const char* BuildType();

}  // namespace kpef

#endif  // KPEF_COMMON_BUILD_INFO_H_

#include "common/rng.h"

#include <cmath>
#include <unordered_set>

namespace kpef {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  has_cached_normal_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0 && s > 0.0);
  // Devroye's rejection method for the Zipf distribution.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = UniformDouble();
    const double v = UniformDouble();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<uint64_t>(x);
    }
  }
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  assert(count <= n);
  std::vector<size_t> out;
  out.reserve(count);
  if (count == 0) return out;
  if (count * 3 >= n) {
    // Dense case: shuffle a full index vector and take a prefix.
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(all);
    all.resize(count);
    return all;
  }
  // Sparse case: Floyd's algorithm.
  std::unordered_set<size_t> seen;
  seen.reserve(count * 2);
  for (size_t j = n - count; j < n; ++j) {
    size_t t = Uniform(j + 1);
    if (seen.count(t)) t = j;
    seen.insert(t);
    out.push_back(t);
  }
  return out;
}

}  // namespace kpef

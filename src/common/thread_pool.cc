#include "common/thread_pool.h"

#include <algorithm>

namespace kpef {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  const size_t workers = pool.num_threads();
  if (workers <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const size_t num_chunks = std::min(count, workers * 4);
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  for (size_t start = 0; start < count; start += chunk) {
    const size_t end = std::min(count, start + chunk);
    pool.Submit([&fn, start, end] {
      for (size_t i = start; i < end; ++i) fn(i);
    });
  }
  pool.Wait();
}

void ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  ParallelFor(ThreadPool::Default(), count, fn);
}

}  // namespace kpef

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace kpef {

namespace {

std::atomic<ThreadPool::MetricsHook> g_metrics_hook{nullptr};
std::atomic<ThreadPool::ContextCaptureHook> g_context_capture{nullptr};
std::atomic<ThreadPool::ContextSwapHook> g_context_swap{nullptr};

}  // namespace

void ThreadPool::SetMetricsHook(MetricsHook hook) {
  g_metrics_hook.store(hook, std::memory_order_release);
}

void ThreadPool::SetContextHooks(ContextCaptureHook capture,
                                 ContextSwapHook swap) {
  g_context_capture.store(capture, std::memory_order_release);
  g_context_swap.store(swap, std::memory_order_release);
}

void ThreadPool::EmitMetric(const char* counter, uint64_t delta) {
  if (MetricsHook hook = g_metrics_hook.load(std::memory_order_acquire)) {
    hook(counter, delta);
  }
}

// --- TaskGroup.

TaskGroup::~TaskGroup() { pool_.WaitForGroup(*this); }

void TaskGroup::Submit(std::function<void()> task) {
  pool_.SubmitToGroup(*this, std::move(task));
}

void TaskGroup::Wait() {
  pool_.WaitForGroup(*this);
  std::exception_ptr first;
  {
    std::lock_guard<std::mutex> lock(exception_mutex_);
    first = std::exchange(first_exception_, nullptr);
  }
  // Every task has settled, so the group can be re-armed for reuse
  // whether the join is clean or exceptional.
  cancelled_.store(false, std::memory_order_relaxed);
  if (first) std::rethrow_exception(first);
}

// --- ThreadPool.

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  default_group_.Submit(std::move(task));
}

void ThreadPool::Wait() { default_group_.Wait(); }

void ThreadPool::SubmitToGroup(TaskGroup& group, std::function<void()> task) {
  uint64_t context = 0;
  if (ContextCaptureHook capture =
          g_context_capture.load(std::memory_order_acquire)) {
    context = capture();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++group.pending_;
    tasks_.push_back({&group, std::move(task), context});
  }
  task_available_.notify_one();
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void ThreadPool::RunTask(QueuedTask task) {
  TaskGroup* group = task.group;
  if (group->cancelled()) {
    // Skip the body but still settle the latch below, so joiners see the
    // task accounted for.
    EmitMetric("pool.tasks_cancelled", 1);
  } else {
    // Install the submitter's context (trace key) around the body; the
    // swap hook returns this thread's previous context for restoration,
    // which also covers helping joins re-entering RunTask.
    ContextSwapHook swap = g_context_swap.load(std::memory_order_acquire);
    const uint64_t prev_context = swap ? swap(task.context) : 0;
    active_workers_.fetch_add(1, std::memory_order_relaxed);
    try {
      task.fn();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(group->exception_mutex_);
        if (!group->first_exception_) {
          group->first_exception_ = std::current_exception();
        }
      }
      // First failure cancels the rest of the group; the exception
      // surfaces at the join point instead of escaping the worker.
      group->Cancel();
    }
    active_workers_.fetch_sub(1, std::memory_order_relaxed);
    if (swap) swap(prev_context);
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (--group->pending_ == 0) group_settled_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;  // Woken but a helping waiter claimed the task.
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    RunTask(std::move(task));
  }
}

void ThreadPool::WaitForGroup(TaskGroup& group) {
  uint64_t help_runs = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (group.pending_ == 0) break;
      // Help: claim a queued task of *this* group and run it here. This
      // is what makes nested ParallelFor deadlock-free — a worker
      // waiting on its sub-group drains that sub-group itself instead of
      // parking while the sub-group's tasks sit behind it in the queue.
      auto it = std::find_if(
          tasks_.begin(), tasks_.end(),
          [&group](const QueuedTask& t) { return t.group == &group; });
      if (it != tasks_.end()) {
        QueuedTask task = std::move(*it);
        tasks_.erase(it);
        lock.unlock();
        RunTask(std::move(task));
        ++help_runs;
        lock.lock();
        continue;
      }
      // Nothing left to help with: every remaining task of the group is
      // running on some other thread, which will settle the latch.
      group_settled_.wait(lock);
    }
  }
  if (help_runs > 0) EmitMetric("pool.wait_help_runs", help_runs);
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn,
                 const CancelToken& cancel) {
  if (count == 0) return;
  const bool cancellable = cancel.CanBeCancelled();
  const size_t workers = pool.num_threads();
  if (workers <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) {
      // Poll every 64 iterations: deadline tokens read the clock on
      // each check, which would dominate cheap loop bodies.
      if (cancellable && (i & 63) == 0 && cancel.IsCancelled()) return;
      fn(i);
    }
    return;
  }
  const size_t num_chunks = std::min(count, workers * 4);
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  TaskGroup group(pool);
  for (size_t start = 0; start < count; start += chunk) {
    const size_t end = std::min(count, start + chunk);
    group.Submit([&fn, &cancel, cancellable, start, end] {
      if (cancellable && cancel.IsCancelled()) return;
      for (size_t i = start; i < end; ++i) fn(i);
    });
  }
  group.Wait();
}

void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 const CancelToken& cancel) {
  ParallelFor(ThreadPool::Default(), count, fn, cancel);
}

void ParallelForChunks(ThreadPool& pool, size_t count,
                       const std::function<void(size_t, size_t)>& fn,
                       size_t max_workers) {
  if (count == 0) return;
  size_t workers = pool.num_threads();
  if (max_workers > 0) workers = std::min(workers, max_workers);
  if (workers <= 1 || count == 1) {
    fn(0, count);
    return;
  }
  // An explicit worker cap means the caller is bounding concurrency, so
  // issue exactly that many chunks; otherwise over-decompose 4x for load
  // balance (per-chunk state amortizes either way).
  const size_t num_chunks =
      std::min(count, max_workers > 0 ? workers : workers * 4);
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  TaskGroup group(pool);
  for (size_t start = 0; start < count; start += chunk) {
    const size_t end = std::min(count, start + chunk);
    group.Submit([&fn, start, end] { fn(start, end); });
  }
  group.Wait();
}

}  // namespace kpef

#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace kpef {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ == LogLevel::kFatal ||
      static_cast<int>(level_) >= static_cast<int>(GetLogLevel())) {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace kpef

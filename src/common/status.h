// Lightweight Status / StatusOr error-handling primitives.
//
// The library does not use exceptions (following the database-engine
// convention); fallible operations return a Status or StatusOr<T> that the
// caller must inspect.

#ifndef KPEF_COMMON_STATUS_H_
#define KPEF_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace kpef {

/// Canonical error space, a small subset of the usual database codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kUnimplemented,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// Statuses are cheap to copy in the OK case (empty message) and carry a
/// diagnostic string otherwise. Use the factory functions
/// (Status::InvalidArgument(...) etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds both.
///
/// Access the value with value() / operator* only after checking ok();
/// violations abort in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: allows `return my_t;` in functions returning
  /// StatusOr<T>.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: allows `return Status::NotFound(...);`.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace kpef

/// Propagates an error status from an expression returning Status.
#define KPEF_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::kpef::Status _kpef_status = (expr);          \
    if (!_kpef_status.ok()) return _kpef_status;   \
  } while (false)

/// Evaluates an expression returning StatusOr<T>; on success assigns the
/// value to `lhs`, otherwise propagates the error status.
#define KPEF_ASSIGN_OR_RETURN(lhs, expr)          \
  KPEF_ASSIGN_OR_RETURN_IMPL_(                    \
      KPEF_STATUS_CONCAT_(_kpef_statusor, __LINE__), lhs, expr)

#define KPEF_STATUS_CONCAT_INNER_(a, b) a##b
#define KPEF_STATUS_CONCAT_(a, b) KPEF_STATUS_CONCAT_INNER_(a, b)
#define KPEF_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // KPEF_COMMON_STATUS_H_

// Minimal leveled logging for library diagnostics.
//
// Logging is stderr-only and off by default above the configured level;
// benchmark binaries raise the level to INFO to narrate progress.

#ifndef KPEF_COMMON_LOGGING_H_
#define KPEF_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace kpef {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns the process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum emitted level.
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and flushes it (with level prefix) on
/// destruction. FATAL aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Lets a LogMessage expression terminate the false branch of the
/// level-filter conditional: `&` binds looser than `<<`, so the whole
/// streamed chain is built (and the message flushed) only when the level
/// passed the filter.
class Voidify {
 public:
  void operator&(const LogMessage&) {}
};

}  // namespace internal_logging
}  // namespace kpef

#define KPEF_LOG_INTERNAL_(level)                                      \
  (static_cast<int>(level) < static_cast<int>(::kpef::GetLogLevel()))  \
      ? void(0)                                                        \
      : ::kpef::internal_logging::Voidify() &                          \
            ::kpef::internal_logging::LogMessage(level, __FILE__, __LINE__)

/// Streams a log line at the given severity, e.g.
/// KPEF_LOG(INFO) << "built index in " << secs << "s";
/// Filtered-out severities short-circuit: the streamed operands are
/// never evaluated and no LogMessage is constructed.
#define KPEF_LOG(severity) \
  KPEF_LOG_INTERNAL_(::kpef::LogLevel::k##severity)

/// Aborts with a message if `cond` is false. Active in all build types:
/// these guard internal invariants whose violation would corrupt results.
#define KPEF_CHECK(cond)                                        \
  if (!(cond))                                                  \
  ::kpef::internal_logging::LogMessage(::kpef::LogLevel::kFatal, \
                                       __FILE__, __LINE__)      \
      << "Check failed: " #cond " "

#endif  // KPEF_COMMON_LOGGING_H_

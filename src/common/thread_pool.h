// Fixed-size thread pool with a ParallelFor helper.
//
// The paper's experiments ran on a 24-core server; the library's offline
// phases (homogeneous projection, corpus encoding, PG-Index refinement)
// are embarrassingly parallel and use ParallelFor. Every parallel loop is
// deterministic: work is partitioned into contiguous chunks, not stolen.

#ifndef KPEF_COMMON_THREAD_POOL_H_
#define KPEF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kpef {

/// A fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool, sized to the hardware. Created on first
  /// use and intentionally leaked (threads run for the process lifetime).
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, count), split into contiguous chunks
/// across the pool. Blocks until complete. With a single-threaded pool
/// (or count small) it degenerates to a plain loop. `fn` must be safe to
/// call concurrently for distinct i. Not reentrant on a shared pool: one
/// ParallelFor at a time per pool (nested calls would deadlock-wait on
/// each other's tasks).
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn);

/// ParallelFor over the default pool.
void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

}  // namespace kpef

#endif  // KPEF_COMMON_THREAD_POOL_H_

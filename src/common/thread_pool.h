// Fixed-size thread pool with TaskGroup-scoped joining and a ParallelFor
// helper.
//
// The paper's experiments ran on a 24-core server; the library's offline
// phases (homogeneous projection, corpus encoding, PG-Index refinement)
// are embarrassingly parallel and use ParallelFor. Every parallel loop is
// deterministic: work is partitioned into contiguous chunks, not stolen.
//
// Execution model (DESIGN.md §9): each Submit/ParallelFor batch joins a
// TaskGroup with its own completion latch, so concurrent callers sharing
// one pool wait only for their own work. TaskGroup::Wait() *helps* — it
// pops and runs this group's queued tasks on the waiting thread instead
// of blocking — which makes ParallelFor nested inside a pool task
// deadlock-free (the worker drains its own sub-group). The first
// exception thrown by a group task is captured, the group's remaining
// queued tasks are cancelled (skipped, not run), and the exception is
// rethrown from Wait(); the pool itself survives and stays reusable.

#ifndef KPEF_COMMON_THREAD_POOL_H_
#define KPEF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"

namespace kpef {

class ThreadPool;

/// One joinable batch of tasks on a ThreadPool. Submit from any thread;
/// Wait() from any thread (including a pool worker running a task of an
/// *enclosing* group). A group is reusable after Wait() returns or
/// throws. Groups must not outlive their pool.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// Blocks destruction until every submitted task finished (exceptions,
  /// if any, are swallowed here — join explicitly to observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues a task on the pool under this group; returns immediately.
  void Submit(std::function<void()> task);

  /// Joins the group: helps run this group's queued tasks on the calling
  /// thread, then blocks until stragglers running elsewhere finish. If
  /// any task threw, rethrows the first captured exception (after every
  /// task finished or was cancelled) and resets the group for reuse.
  void Wait();

  /// Marks the group cancelled: queued-but-unstarted tasks are skipped
  /// (already-running tasks complete). Wait() still joins normally.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  friend class ThreadPool;

  ThreadPool& pool_;
  /// Tasks submitted but not yet finished/skipped; guarded by the pool
  /// mutex (the completion latch).
  size_t pending_ = 0;
  std::atomic<bool> cancelled_{false};
  std::mutex exception_mutex_;
  std::exception_ptr first_exception_;
};

/// A fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task under the pool's shared default group; returns
  /// immediately. Prefer a dedicated TaskGroup when the caller needs an
  /// isolated join (concurrent callers of this legacy API share one
  /// latch, as before).
  void Submit(std::function<void()> task);

  /// Joins the default group (all tasks submitted via Submit above);
  /// helps while waiting and rethrows the first task exception.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool, sized to the hardware. Created on first
  /// use and intentionally leaked (threads run for the process lifetime).
  static ThreadPool& Default();

  /// Optional process-wide bridge into the metrics registry: called as
  /// hook(counter_name, delta) for "pool.tasks_cancelled" and
  /// "pool.wait_help_runs". Installed by kpef_obs (pipeline_metrics.cc);
  /// the pool itself stays free of the obs dependency. Must be
  /// data-race-free; installed once at startup.
  using MetricsHook = void (*)(const char* counter, uint64_t delta);
  static void SetMetricsHook(MetricsHook hook);

  /// Optional process-wide context propagation (request trace contexts):
  /// capture() runs on the submitting thread at enqueue time and its
  /// value rides along with the task; swap(value) runs on the executing
  /// thread immediately before the task body (and again afterwards with
  /// the returned previous value, restoring it). Both must be
  /// data-race-free. Installed by kpef_obs (pipeline_metrics.cc) so the
  /// pool stays free of the obs dependency; 0 means "no context".
  using ContextCaptureHook = uint64_t (*)();
  using ContextSwapHook = uint64_t (*)(uint64_t context);
  static void SetContextHooks(ContextCaptureHook capture,
                              ContextSwapHook swap);

  /// Tasks queued but not yet claimed (all groups); sampled on /metrics
  /// scrapes.
  size_t QueueDepth() const;

  /// Workers (or helping waiters) currently inside a task body.
  size_t ActiveWorkers() const {
    return active_workers_.load(std::memory_order_relaxed);
  }

 private:
  friend class TaskGroup;

  struct QueuedTask {
    TaskGroup* group;
    std::function<void()> fn;
    /// Submitter's context, captured at enqueue time (0 = none).
    uint64_t context = 0;
  };

  void WorkerLoop();
  /// Runs (or, for a cancelled group, skips) one dequeued task, captures
  /// exceptions into the group, and settles the group's latch.
  void RunTask(QueuedTask task);
  void SubmitToGroup(TaskGroup& group, std::function<void()> task);
  /// The helping join: runs queued tasks of `group` on this thread until
  /// none remain, then blocks for tasks running on other threads.
  void WaitForGroup(TaskGroup& group);

  static void EmitMetric(const char* counter, uint64_t delta);

  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable group_settled_;
  std::deque<QueuedTask> tasks_;
  bool shutting_down_ = false;
  std::atomic<size_t> active_workers_{0};
  std::vector<std::thread> workers_;
  /// Latch for the legacy Submit()/Wait() API.
  TaskGroup default_group_{*this};
};

/// Runs fn(i) for every i in [0, count), split into contiguous chunks
/// across the pool; blocks until complete. With a single-threaded pool
/// (or count small) it degenerates to a plain loop. `fn` must be safe to
/// call concurrently for distinct i. Safe to nest: a ParallelFor issued
/// from inside a pool task joins its own TaskGroup and helps instead of
/// blocking a worker. If fn throws, the first exception is rethrown here
/// after the loop's remaining chunks are cancelled; which indices ran is
/// then unspecified. A non-null `cancel` token is checked at chunk
/// boundaries: once it fires, remaining chunks are skipped and
/// ParallelFor returns normally — the caller decides how to surface the
/// partial coverage.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn,
                 const CancelToken& cancel = CancelToken());

/// ParallelFor over the default pool.
void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 const CancelToken& cancel = CancelToken());

/// Runs fn(begin, end) over contiguous chunks covering [0, count), split
/// across the pool (≈4 chunks per worker). Unlike ParallelFor's per-index
/// callback, the chunk callback lets callers build per-chunk state once
/// (scratch buffers, PNeighborFinder instances) and amortize it over the
/// whole range. `max_workers` caps the number of chunks in flight
/// (0 = pool width; 1 degenerates to one inline fn(0, count) call).
/// Chunk boundaries must not affect the result — callers write disjoint
/// output slots — so the outcome is identical for every pool size.
void ParallelForChunks(ThreadPool& pool, size_t count,
                       const std::function<void(size_t, size_t)>& fn,
                       size_t max_workers = 0);

}  // namespace kpef

#endif  // KPEF_COMMON_THREAD_POOL_H_

// Over-aligned storage for SIMD kernels.
//
// The distance kernels (embed/vector_ops.h) use 32-byte (AVX2-width)
// loads; vectors that flow through them are stored in AlignedVector /
// Matrix so the hot loops can assume aligned, 8-float-padded rows.

#ifndef KPEF_COMMON_ALIGNED_BUFFER_H_
#define KPEF_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace kpef {

/// Alignment (bytes) guaranteed for kernel operands: one AVX2 register.
inline constexpr size_t kKernelAlignment = 32;

/// Number of floats per kernel lane group; row strides are padded to a
/// multiple of this so the 8-wide hot loop covers a row with no tail.
inline constexpr size_t kKernelWidthFloats = 8;

/// Rounds `n` up to the next multiple of kKernelWidthFloats.
constexpr size_t PadToKernelWidth(size_t n) {
  return (n + kKernelWidthFloats - 1) / kKernelWidthFloats *
         kKernelWidthFloats;
}

/// Alignment (bytes) for structures laid out on cache-line boundaries
/// (e.g. the SQ8 code matrix rows in ann/sq8.h).
inline constexpr size_t kCacheLineBytes = 64;

/// Minimal C++17 allocator handing out `Alignment`-aligned blocks
/// (defaults to the kernel operand alignment).
template <typename T, size_t Alignment = kKernelAlignment>
struct AlignedAllocator {
  using value_type = T;
  // The non-type Alignment parameter defeats allocator_traits' default
  // rebind, so spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Alignment));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Alignment>&) const {
    return false;
  }
};

/// Float vector whose data() is 32-byte aligned.
using AlignedVector = std::vector<float, AlignedAllocator<float>>;

/// Byte vector whose data() is cache-line (64-byte) aligned.
using AlignedByteVector =
    std::vector<uint8_t, AlignedAllocator<uint8_t, kCacheLineBytes>>;

/// Copies `src[0..n)` into an AlignedVector padded with zeros to the
/// kernel width, so it can be paired with Matrix::PaddedRow spans.
template <typename Span>
AlignedVector PadToAligned(const Span& src) {
  AlignedVector out(PadToKernelWidth(src.size()), 0.0f);
  for (size_t i = 0; i < src.size(); ++i) out[i] = src[i];
  return out;
}

}  // namespace kpef

#endif  // KPEF_COMMON_ALIGNED_BUFFER_H_

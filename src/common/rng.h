// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (dataset generation, sampling,
// training initialization, NNDescent) draw from Rng so that a fixed seed
// reproduces an entire experiment bit-for-bit.

#ifndef KPEF_COMMON_RNG_H_
#define KPEF_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kpef {

/// SplitMix64-style finalizer deriving an independent RNG seed for one
/// (stream, index) pair from a single user-visible seed. Parallel phases
/// give every work item (NNDescent node, sampling seed paper) its own
/// Rng(MixSeed(seed, stream, index)) stream, which makes their combined
/// output independent of scheduling and thread count.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream, uint64_t index) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1) +
               0xBF58476D1CE4E5B9ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG seeded via SplitMix64.
///
/// Fast, high-quality, and deterministic across platforms (unlike
/// std::mt19937 + std::uniform_*_distribution, whose distribution
/// implementations vary between standard libraries).
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal variate (Marsaglia polar method).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-distributed integer in [1, n] with exponent `s` (s > 0).
  /// Implemented by inverse-CDF over precomputed weights is too costly per
  /// call, so this uses the rejection method of Devroye.
  uint64_t Zipf(uint64_t n, double s);

  /// Samples an index according to the (unnormalized, non-negative) weights.
  /// Requires at least one strictly positive weight.
  size_t Discrete(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (count <= n), in
  /// selection order. Uses Floyd's algorithm for small count relative to n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

 private:
  uint64_t state_[4];
  // Cached second variate from the polar method.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace kpef

#endif  // KPEF_COMMON_RNG_H_

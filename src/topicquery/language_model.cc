#include "topicquery/language_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace kpef {

LanguageModelExpertFinder::LanguageModelExpertFinder(
    const Dataset* dataset, const Corpus* corpus, LanguageModelConfig config)
    : dataset_(dataset), corpus_(corpus), config_(config) {
  const size_t vocab = corpus_->vocabulary().size();
  postings_.resize(vocab);
  doc_length_.resize(corpus_->NumDocuments());
  std::vector<int64_t> term_count(vocab, 0);
  for (size_t doc = 0; doc < corpus_->NumDocuments(); ++doc) {
    const auto& tokens = corpus_->Document(doc);
    doc_length_[doc] = static_cast<int32_t>(tokens.size());
    total_tokens_ += static_cast<int64_t>(tokens.size());
    std::unordered_map<TokenId, int32_t> counts;
    for (TokenId t : tokens) ++counts[t];
    for (const auto& [token, tf] : counts) {
      postings_[token].push_back({static_cast<int32_t>(doc), tf});
      term_count[token] += tf;
    }
  }
  collection_prob_.resize(vocab);
  for (size_t t = 0; t < vocab; ++t) {
    collection_prob_[t] =
        static_cast<double>(term_count[t]) /
        static_cast<double>(std::max<int64_t>(1, total_tokens_));
  }
}

double LanguageModelExpertFinder::LogQueryLikelihood(
    const std::vector<TokenId>& query, size_t doc) const {
  // log p(q|d) = sum_t log((1-l) tf/|d| + l p(t|C)).
  double log_p = 0.0;
  const double len = std::max(1, doc_length_[doc]);
  for (TokenId t : query) {
    int32_t count = 0;
    const auto& plist = postings_[t];
    const auto it = std::lower_bound(
        plist.begin(), plist.end(), static_cast<int32_t>(doc),
        [](const auto& entry, int32_t d) { return entry.first < d; });
    if (it != plist.end() && it->first == static_cast<int32_t>(doc)) {
      count = it->second;
    }
    const double p = (1.0 - config_.lambda) * count / len +
                     config_.lambda * collection_prob_[t];
    log_p += std::log(std::max(p, 1e-300));
  }
  return log_p;
}

std::vector<ExpertScore> LanguageModelExpertFinder::FindExperts(
    const std::string& query_text, size_t n) {
  const std::vector<TokenId> query = corpus_->EncodeQuery(query_text);
  if (query.empty()) return {};

  // Score documents sparsely: every document's score starts at the
  // background sum_t log(l p(t|C)); documents containing query terms get
  // the matching correction log(1 + (1-l) tf / (|d| l p(t|C))).
  std::unordered_map<int32_t, double> corrections;
  double background = 0.0;
  for (TokenId t : query) {
    const double pc = std::max(collection_prob_[t], 1e-300);
    background += std::log(config_.lambda * pc);
    for (const auto& [doc, tf] : postings_[t]) {
      const double len = std::max(1, doc_length_[doc]);
      corrections[doc] += std::log1p((1.0 - config_.lambda) * tf /
                                     (len * config_.lambda * pc));
    }
  }
  std::vector<std::pair<double, int32_t>> scored;
  scored.reserve(corrections.size());
  for (const auto& [doc, correction] : corrections) {
    scored.push_back({background + correction, doc});
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (scored.size() > config_.max_candidate_documents) {
    scored.resize(config_.max_candidate_documents);
  }

  // p(q|a) = sum_{d in D_a} p(q|d) / |D_a|. Work with likelihoods shifted
  // by the best document's log-likelihood for numerical stability.
  const double shift = scored.empty() ? 0.0 : scored[0].first;
  std::unordered_map<int32_t, double> doc_likelihood;
  for (const auto& [log_p, doc] : scored) {
    doc_likelihood[doc] = std::exp(log_p - shift);
  }
  const auto& papers = dataset_->Papers();
  std::unordered_map<NodeId, double> expert_scores;
  for (const auto& [doc, likelihood] : doc_likelihood) {
    const NodeId paper = papers[doc];
    for (NodeId author :
         dataset_->graph.Neighbors(paper, dataset_->ids.write)) {
      const size_t num_papers =
          dataset_->graph.Degree(author, dataset_->ids.write);
      expert_scores[author] +=
          likelihood / static_cast<double>(std::max<size_t>(1, num_papers));
    }
  }
  std::vector<ExpertScore> result;
  result.reserve(expert_scores.size());
  for (const auto& [author, score] : expert_scores) {
    result.push_back({author, score});
  }
  std::sort(result.begin(), result.end(),
            [](const ExpertScore& a, const ExpertScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.author < b.author;
            });
  if (result.size() > n) result.resize(n);
  return result;
}

}  // namespace kpef

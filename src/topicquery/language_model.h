// Statistical language-model expert finding (topic-based queries, §I).
//
// The paper's introduction and related work describe the classic
// document-centric approach for topic-based queries [2], [12], [20]:
// rank expert a by p(q|a) = sum_{d in D_a} p(q|d) p(d|a), with a smoothed
// unigram language model per document. Implemented here (Balog's Model 2
// with Jelinek-Mercer smoothing) as an extension module, both as a
// topic-query entry point and as an additional text-query baseline.

#ifndef KPEF_TOPICQUERY_LANGUAGE_MODEL_H_
#define KPEF_TOPICQUERY_LANGUAGE_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/retrieval_model.h"
#include "text/corpus.h"

namespace kpef {

struct LanguageModelConfig {
  /// Jelinek-Mercer smoothing weight of the collection model:
  /// p(t|d) = (1 - lambda) tf/|d| + lambda p(t|C).
  double lambda = 0.5;
  /// Papers scored per query: only documents containing at least one
  /// query term are scored exactly (others contribute background mass).
  /// Candidate experts come from the scored documents.
  size_t max_candidate_documents = 2000;
};

/// Document-centric language-model expert finder.
class LanguageModelExpertFinder : public RetrievalModel {
 public:
  /// Builds the inverted index and per-document statistics.
  LanguageModelExpertFinder(const Dataset* dataset, const Corpus* corpus,
                            LanguageModelConfig config = {});

  std::string name() const override { return "LM-Model2"; }

  /// Works for both query forms: a short topic list ("graph community
  /// search") or a full paper text.
  std::vector<ExpertScore> FindExperts(const std::string& query_text,
                                       size_t n) override;

  /// log p(q|d) for one document (exposed for testing).
  double LogQueryLikelihood(const std::vector<TokenId>& query,
                            size_t doc) const;

 private:
  const Dataset* dataset_;
  const Corpus* corpus_;
  LanguageModelConfig config_;
  /// Inverted index: token -> (doc, term frequency).
  std::vector<std::vector<std::pair<int32_t, int32_t>>> postings_;
  std::vector<int32_t> doc_length_;
  std::vector<double> collection_prob_;  // p(t|C)
  int64_t total_tokens_ = 0;
};

}  // namespace kpef

#endif  // KPEF_TOPICQUERY_LANGUAGE_MODEL_H_

// Text serialization of heterogeneous graphs.
//
// Lets users persist generated datasets or load their own academic
// networks (e.g., converted DBLP dumps) into the engine. The format is a
// line-oriented text file that round-trips the graph exactly, including
// the edge insertion order that defines author-rank neighbor ordering.

#ifndef KPEF_GRAPH_GRAPH_IO_H_
#define KPEF_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/hetero_graph.h"

namespace kpef {

/// Writes `graph` to `path` in the kpef-graph v1 text format:
///
///   kpef-graph 1
///   nodetypes <count>
///   <name>                      (one per node type)
///   edgetypes <count>
///   <name> <src_type_id> <dst_type_id>
///   nodes <count>
///   <type_id> <escaped label>   (one per node, id = line order)
///   edges <count>
///   <edge_type_id> <src> <dst>  (insertion order)
///
/// Labels are escaped: '\\' -> "\\\\", '\n' -> "\\n", '\t' -> "\\t".
Status SaveGraph(const HeteroGraph& graph, const std::string& path);

/// Serializes to an arbitrary stream (testing / piping).
Status SaveGraph(const HeteroGraph& graph, std::ostream& out);

/// Reads a graph written by SaveGraph. Fails with IOError on unreadable
/// files and InvalidArgument on malformed content.
StatusOr<HeteroGraph> LoadGraph(const std::string& path);

/// Deserializes from an arbitrary stream.
StatusOr<HeteroGraph> LoadGraph(std::istream& in);

}  // namespace kpef

#endif  // KPEF_GRAPH_GRAPH_IO_H_

#include "graph/schema.h"

#include "common/logging.h"

namespace kpef {

NodeTypeId Schema::AddNodeType(std::string_view name) {
  KPEF_CHECK(FindNodeType(name) == kInvalidNodeType)
      << "duplicate node type " << name;
  node_type_names_.emplace_back(name);
  return static_cast<NodeTypeId>(node_type_names_.size() - 1);
}

EdgeTypeId Schema::AddEdgeType(std::string_view name, NodeTypeId src,
                               NodeTypeId dst) {
  KPEF_CHECK(FindEdgeType(name) == kInvalidEdgeType)
      << "duplicate edge type " << name;
  KPEF_CHECK(src >= 0 && static_cast<size_t>(src) < node_type_names_.size());
  KPEF_CHECK(dst >= 0 && static_cast<size_t>(dst) < node_type_names_.size());
  edge_types_.push_back({std::string(name), src, dst});
  return static_cast<EdgeTypeId>(edge_types_.size() - 1);
}

NodeTypeId Schema::FindNodeType(std::string_view name) const {
  for (size_t i = 0; i < node_type_names_.size(); ++i) {
    if (node_type_names_[i] == name) return static_cast<NodeTypeId>(i);
  }
  return kInvalidNodeType;
}

EdgeTypeId Schema::FindEdgeType(std::string_view name) const {
  for (size_t i = 0; i < edge_types_.size(); ++i) {
    if (edge_types_[i].name == name) return static_cast<EdgeTypeId>(i);
  }
  return kInvalidEdgeType;
}

EdgeTypeId Schema::EdgeTypeBetween(NodeTypeId a, NodeTypeId b) const {
  for (size_t i = 0; i < edge_types_.size(); ++i) {
    const EdgeTypeInfo& e = edge_types_[i];
    if ((e.src == a && e.dst == b) || (e.src == b && e.dst == a)) {
      return static_cast<EdgeTypeId>(i);
    }
  }
  return kInvalidEdgeType;
}

AcademicSchema AcademicSchema::Make() {
  AcademicSchema s;
  s.author = s.schema.AddNodeType("A");
  s.paper = s.schema.AddNodeType("P");
  s.venue = s.schema.AddNodeType("V");
  s.topic = s.schema.AddNodeType("T");
  s.write = s.schema.AddEdgeType("Write", s.author, s.paper);
  s.publish = s.schema.AddEdgeType("Publish", s.paper, s.venue);
  s.mention = s.schema.AddEdgeType("Mention", s.paper, s.topic);
  s.cite = s.schema.AddEdgeType("Cite", s.paper, s.paper);
  return s;
}

}  // namespace kpef

#include "graph/graph_io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>

namespace kpef {
namespace {

constexpr char kMagic[] = "kpef-graph";
constexpr int kVersion = 1;

std::string EscapeLabel(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeLabel(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out += text[i];
      continue;
    }
    ++i;
    switch (text[i]) {
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      default:
        out += text[i];
    }
  }
  return out;
}

// Reads one line; returns false at EOF.
bool GetLine(std::istream& in, std::string& line) {
  return static_cast<bool>(std::getline(in, line));
}

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed graph file: " + what);
}

}  // namespace

Status SaveGraph(const HeteroGraph& graph, std::ostream& out) {
  const Schema& schema = graph.schema();
  out << kMagic << ' ' << kVersion << '\n';
  out << "nodetypes " << schema.NumNodeTypes() << '\n';
  for (size_t t = 0; t < schema.NumNodeTypes(); ++t) {
    out << schema.NodeTypeName(static_cast<NodeTypeId>(t)) << '\n';
  }
  out << "edgetypes " << schema.NumEdgeTypes() << '\n';
  for (size_t r = 0; r < schema.NumEdgeTypes(); ++r) {
    const EdgeTypeId id = static_cast<EdgeTypeId>(r);
    out << schema.EdgeTypeName(id) << ' ' << schema.EdgeSrcType(id) << ' '
        << schema.EdgeDstType(id) << '\n';
  }
  out << "nodes " << graph.NumNodes() << '\n';
  for (size_t v = 0; v < graph.NumNodes(); ++v) {
    const NodeId id = static_cast<NodeId>(v);
    out << graph.TypeOf(id) << '\t' << EscapeLabel(graph.Label(id)) << '\n';
  }
  out << "edges " << graph.Edges().size() << '\n';
  for (const auto& e : graph.Edges()) {
    out << e.type << ' ' << e.src << ' ' << e.dst << '\n';
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveGraph(const HeteroGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  KPEF_RETURN_IF_ERROR(SaveGraph(graph, out));
  out.close();
  if (!out) return Status::IOError("flush failed for " + path);
  return Status::OK();
}

StatusOr<HeteroGraph> LoadGraph(std::istream& in) {
  std::string line;
  if (!GetLine(in, line)) return Malformed("empty file");
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kMagic) return Malformed("bad magic \"" + magic + "\"");
    if (version != kVersion) {
      return Malformed("unsupported version " + std::to_string(version));
    }
  }

  auto read_count = [&](const std::string& keyword) -> StatusOr<size_t> {
    std::string current;
    if (!GetLine(in, current)) return Malformed("missing " + keyword);
    std::istringstream parse(current);
    std::string word;
    size_t count = 0;
    parse >> word >> count;
    if (word != keyword) {
      return Malformed("expected \"" + keyword + "\", got \"" + word + "\"");
    }
    return count;
  };

  Schema schema;
  KPEF_ASSIGN_OR_RETURN(const size_t num_node_types, read_count("nodetypes"));
  for (size_t t = 0; t < num_node_types; ++t) {
    if (!GetLine(in, line) || line.empty()) return Malformed("node type name");
    schema.AddNodeType(line);
  }
  KPEF_ASSIGN_OR_RETURN(const size_t num_edge_types, read_count("edgetypes"));
  for (size_t r = 0; r < num_edge_types; ++r) {
    if (!GetLine(in, line)) return Malformed("edge type line");
    std::istringstream parse(line);
    std::string name;
    int src = -1, dst = -1;
    parse >> name >> src >> dst;
    if (name.empty() || src < 0 || dst < 0 ||
        static_cast<size_t>(src) >= num_node_types ||
        static_cast<size_t>(dst) >= num_node_types) {
      return Malformed("edge type \"" + line + "\"");
    }
    schema.AddEdgeType(name, static_cast<NodeTypeId>(src),
                       static_cast<NodeTypeId>(dst));
  }

  HeteroGraphBuilder builder(schema);
  KPEF_ASSIGN_OR_RETURN(const size_t num_nodes, read_count("nodes"));
  for (size_t v = 0; v < num_nodes; ++v) {
    if (!GetLine(in, line)) return Malformed("node line");
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) return Malformed("node line without tab");
    int type = -1;
    const auto [ptr, ec] =
        std::from_chars(line.data(), line.data() + tab, type);
    if (ec != std::errc() || ptr != line.data() + tab) {
      return Malformed("node type id \"" + line.substr(0, tab) + "\"");
    }
    if (type < 0 || static_cast<size_t>(type) >= num_node_types) {
      return Malformed("node type id out of range");
    }
    builder.AddNode(static_cast<NodeTypeId>(type),
                    UnescapeLabel(line.substr(tab + 1)));
  }
  KPEF_ASSIGN_OR_RETURN(const size_t num_edges, read_count("edges"));
  for (size_t e = 0; e < num_edges; ++e) {
    if (!GetLine(in, line)) return Malformed("edge line");
    std::istringstream parse(line);
    long long type = -1, src = -1, dst = -1;
    parse >> type >> src >> dst;
    if (parse.fail()) return Malformed("edge line \"" + line + "\"");
    const Status added =
        builder.AddEdge(static_cast<EdgeTypeId>(type),
                        static_cast<NodeId>(src), static_cast<NodeId>(dst));
    if (!added.ok()) return Malformed(added.message());
  }
  return std::move(builder).Build();
}

StatusOr<HeteroGraph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadGraph(in);
}

}  // namespace kpef

// Heterogeneous graph G = (V, E, L) (Definition 1) with CSR adjacency
// per edge type.

#ifndef KPEF_GRAPH_HETERO_GRAPH_H_
#define KPEF_GRAPH_HETERO_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/schema.h"
#include "graph/types.h"

namespace kpef {

class HeteroGraphBuilder;

/// Heterogeneous graph with an immutable CSR base plus an append-only
/// delta overlay.
///
/// Storage: one undirected CSR slice per edge type, frozen at Build()
/// time. Every relation is traversable from both endpoints
/// (Neighbors(author, Write) yields the author's papers; Neighbors(paper,
/// Write) yields its authors). Nodes and edges appended after Build()
/// (streaming ingestion) live in per-type delta segments until
/// CompactDeltas() folds them into the base CSR.
///
/// Ordering guarantee: within a node's neighbor list for one edge type,
/// neighbors appear in edge-insertion order — base segment first, then
/// delta segment, each internally in insertion order. Dataset builders
/// insert Write edges in author-rank order, so the paper's merged
/// neighbor list is its author list ranked first-author-first — the
/// order the expert ranking score (Eq. 5) depends on. CompactDeltas()
/// preserves the merged order exactly.
class HeteroGraph {
 public:
  /// One edge as originally inserted (canonical src->dst orientation).
  struct EdgeRecord {
    EdgeTypeId type;
    NodeId src;
    NodeId dst;

    bool operator==(const EdgeRecord&) const = default;
  };

  /// Constructs an empty graph (use HeteroGraphBuilder to populate one).
  HeteroGraph() = default;

  const Schema& schema() const { return schema_; }

  size_t NumNodes() const { return node_types_.size(); }
  /// Number of undirected edges over all types.
  size_t NumEdges() const { return num_edges_; }
  /// Number of undirected edges of one type.
  size_t NumEdgesOfType(EdgeTypeId type) const;

  NodeTypeId TypeOf(NodeId v) const { return node_types_[v]; }

  /// Node label L(v); empty when the node carries no text.
  const std::string& Label(NodeId v) const { return labels_[v]; }

  /// Base-segment neighbors of `v` through edges of type `type`, both
  /// orientations. Edges appended after Build() are NOT included — use
  /// NeighborSegments() on graphs that may carry deltas. For a node
  /// appended after Build() the base segment is empty.
  std::span<const NodeId> Neighbors(NodeId v, EdgeTypeId type) const;

  /// Base + delta neighbor segments of `v` for `type`. Concatenated they
  /// are the full neighbor list in edge-insertion order. The delta span
  /// is invalidated by the next AppendEdge/CompactDeltas call.
  struct NeighborSpans {
    std::span<const NodeId> base;
    std::span<const NodeId> delta;
    size_t size() const { return base.size() + delta.size(); }
    bool empty() const { return base.empty() && delta.empty(); }
  };
  NeighborSpans NeighborSegments(NodeId v, EdgeTypeId type) const;

  /// Appends a node of `type` to the delta overlay; returns its id. The
  /// node joins NodesOfType/LocalIndex immediately (papers appended in
  /// order keep the LocalIndex == corpus-doc-id invariant).
  NodeId AppendNode(NodeTypeId type, std::string label = "");

  /// Appends an undirected edge to the delta overlay. Endpoints may be
  /// base or appended nodes; validation matches HeteroGraphBuilder.
  Status AppendEdge(EdgeTypeId type, NodeId src, NodeId dst);

  /// Undirected edges currently sitting in the delta overlay.
  size_t PendingDeltaEdges() const { return pending_delta_edges_; }
  /// Nodes appended after Build().
  size_t NumAppendedNodes() const { return NumNodes() - base_num_nodes_; }

  /// Folds the delta overlay into the base CSRs by re-running the exact
  /// counting sort of HeteroGraphBuilder::Build() over Edges(). After
  /// this, Neighbors() covers every edge and PendingDeltaEdges() == 0.
  /// Merged neighbor order is unchanged.
  void CompactDeltas();

  /// Degree of `v` restricted to edges of type `type`.
  size_t Degree(NodeId v, EdgeTypeId type) const {
    return Neighbors(v, type).size();
  }

  /// All node ids of the given type, ascending.
  const std::vector<NodeId>& NodesOfType(NodeTypeId type) const {
    return nodes_by_type_[type];
  }
  size_t NumNodesOfType(NodeTypeId type) const {
    return nodes_by_type_[type].size();
  }

  /// Index of `v` within NodesOfType(TypeOf(v)). Papers are created
  /// contiguously by the dataset builders, so for them this is also the
  /// corpus document id.
  size_t LocalIndex(NodeId v) const { return local_index_[v]; }

  /// Induced subgraph on `keep` (any order, no duplicates): nodes are
  /// remapped densely in the order given; edges survive iff both endpoints
  /// are kept. Returns the subgraph and old->new id map (kInvalidNode for
  /// dropped nodes).
  std::pair<HeteroGraph, std::vector<NodeId>> InducedSubgraph(
      const std::vector<NodeId>& keep) const;

  /// Edges in insertion order (the order that defines per-node neighbor
  /// ordering, e.g. author rank). Basis for serialization.
  const std::vector<EdgeRecord>& Edges() const { return edges_; }

  /// Approximate heap footprint of the adjacency structures, in bytes.
  size_t MemoryUsageBytes() const;

 private:
  friend class HeteroGraphBuilder;

  struct Csr {
    std::vector<int64_t> offsets;  // size base_num_nodes_+1
    std::vector<NodeId> targets;
  };

  void RebuildCsr();

  Schema schema_;
  std::vector<NodeTypeId> node_types_;
  std::vector<std::string> labels_;
  std::vector<std::vector<NodeId>> nodes_by_type_;
  std::vector<size_t> local_index_;
  std::vector<Csr> adjacency_;  // one per edge type, base segment only
  std::vector<size_t> edges_per_type_;
  std::vector<EdgeRecord> edges_;  // insertion order (base then delta)
  size_t num_edges_ = 0;
  /// Nodes covered by the base CSRs; ids >= this are appended nodes.
  size_t base_num_nodes_ = 0;
  /// Delta overlay: per edge type, appended neighbors keyed by node id.
  std::vector<std::unordered_map<NodeId, std::vector<NodeId>>> delta_adjacency_;
  size_t pending_delta_edges_ = 0;
};

/// Accumulates nodes and edges, then finalizes into a HeteroGraph.
class HeteroGraphBuilder {
 public:
  explicit HeteroGraphBuilder(Schema schema) : schema_(std::move(schema)) {}

  /// Adds a node of `type` with optional text label; returns its id.
  NodeId AddNode(NodeTypeId type, std::string label = "");

  /// Adds an undirected edge of `type`. Endpoint node types must match the
  /// schema's (src, dst) pair in the given orientation.
  Status AddEdge(EdgeTypeId type, NodeId src, NodeId dst);

  size_t NumNodes() const { return node_types_.size(); }

  /// Finalizes into an immutable graph. The builder is consumed.
  HeteroGraph Build() &&;

 private:
  struct Edge {
    EdgeTypeId type;
    NodeId src;
    NodeId dst;
  };

  Schema schema_;
  std::vector<NodeTypeId> node_types_;
  std::vector<std::string> labels_;
  std::vector<Edge> edges_;
};

}  // namespace kpef

#endif  // KPEF_GRAPH_HETERO_GRAPH_H_

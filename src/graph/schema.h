// Schema of a heterogeneous graph (Definition 2): the node-type set A and
// edge-type set R, with each edge type constrained to a (src, dst) node
// type pair.

#ifndef KPEF_GRAPH_SCHEMA_H_
#define KPEF_GRAPH_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace kpef {

/// Declares the node and edge types of a heterogeneous graph.
///
/// Edge types are stored with a canonical (src, dst) orientation but the
/// graph treats every relation as traversable in both directions, matching
/// the paper's meta-paths (e.g., P-A-P walks Write edges against their
/// Author->Paper orientation).
class Schema {
 public:
  Schema() = default;

  /// Registers a node type; returns its id. Names must be unique.
  NodeTypeId AddNodeType(std::string_view name);

  /// Registers an edge type between two existing node types; returns its
  /// id. Names must be unique.
  EdgeTypeId AddEdgeType(std::string_view name, NodeTypeId src,
                         NodeTypeId dst);

  /// Node type id by name, or kInvalidNodeType.
  NodeTypeId FindNodeType(std::string_view name) const;

  /// Edge type id by name, or kInvalidEdgeType.
  EdgeTypeId FindEdgeType(std::string_view name) const;

  /// The unique edge type connecting `a` and `b` in either orientation.
  /// Returns kInvalidEdgeType if none exists; if several exist, returns
  /// the first registered (callers needing a specific relation should use
  /// FindEdgeType by name).
  EdgeTypeId EdgeTypeBetween(NodeTypeId a, NodeTypeId b) const;

  size_t NumNodeTypes() const { return node_type_names_.size(); }
  size_t NumEdgeTypes() const { return edge_types_.size(); }

  const std::string& NodeTypeName(NodeTypeId id) const {
    return node_type_names_[id];
  }
  const std::string& EdgeTypeName(EdgeTypeId id) const {
    return edge_types_[id].name;
  }
  NodeTypeId EdgeSrcType(EdgeTypeId id) const { return edge_types_[id].src; }
  NodeTypeId EdgeDstType(EdgeTypeId id) const { return edge_types_[id].dst; }

 private:
  struct EdgeTypeInfo {
    std::string name;
    NodeTypeId src;
    NodeTypeId dst;
  };

  std::vector<std::string> node_type_names_;
  std::vector<EdgeTypeInfo> edge_types_;
};

/// The DBLP-style academic schema used throughout the paper (Figure 2):
/// node types A(uthor), P(aper), V(enue), T(opic); edge types
/// Write(A-P), Publish(P-V), Mention(P-T), Cite(P-P).
struct AcademicSchema {
  Schema schema;
  NodeTypeId author;
  NodeTypeId paper;
  NodeTypeId venue;
  NodeTypeId topic;
  EdgeTypeId write;
  EdgeTypeId publish;
  EdgeTypeId mention;
  EdgeTypeId cite;

  static AcademicSchema Make();
};

}  // namespace kpef

#endif  // KPEF_GRAPH_SCHEMA_H_

#include "graph/hetero_graph.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace kpef {

size_t HeteroGraph::NumEdgesOfType(EdgeTypeId type) const {
  return edges_per_type_[type];
}

std::span<const NodeId> HeteroGraph::Neighbors(NodeId v,
                                               EdgeTypeId type) const {
  if (static_cast<size_t>(v) >= base_num_nodes_) return {};
  const Csr& csr = adjacency_[type];
  const int64_t begin = csr.offsets[v];
  const int64_t end = csr.offsets[v + 1];
  return {csr.targets.data() + begin, static_cast<size_t>(end - begin)};
}

HeteroGraph::NeighborSpans HeteroGraph::NeighborSegments(
    NodeId v, EdgeTypeId type) const {
  NeighborSpans spans;
  spans.base = Neighbors(v, type);
  if (static_cast<size_t>(type) < delta_adjacency_.size()) {
    const auto& per_node = delta_adjacency_[type];
    if (auto it = per_node.find(v); it != per_node.end()) {
      spans.delta = {it->second.data(), it->second.size()};
    }
  }
  return spans;
}

NodeId HeteroGraph::AppendNode(NodeTypeId type, std::string label) {
  KPEF_CHECK(type >= 0 && static_cast<size_t>(type) < schema_.NumNodeTypes());
  node_types_.push_back(type);
  labels_.push_back(std::move(label));
  const NodeId id = static_cast<NodeId>(node_types_.size() - 1);
  auto& bucket = nodes_by_type_[type];
  local_index_.push_back(bucket.size());
  bucket.push_back(id);
  return id;
}

Status HeteroGraph::AppendEdge(EdgeTypeId type, NodeId src, NodeId dst) {
  if (type < 0 || static_cast<size_t>(type) >= schema_.NumEdgeTypes()) {
    return Status::InvalidArgument("unknown edge type");
  }
  if (src < 0 || static_cast<size_t>(src) >= node_types_.size() || dst < 0 ||
      static_cast<size_t>(dst) >= node_types_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (node_types_[src] != schema_.EdgeSrcType(type) ||
      node_types_[dst] != schema_.EdgeDstType(type)) {
    return Status::InvalidArgument("edge endpoint types do not match schema");
  }
  if (delta_adjacency_.size() < schema_.NumEdgeTypes()) {
    delta_adjacency_.resize(schema_.NumEdgeTypes());
  }
  edges_.push_back({type, src, dst});
  ++edges_per_type_[type];
  ++num_edges_;
  ++pending_delta_edges_;
  // Mirror the Build() counting sort: the edge lands in both endpoints'
  // lists, twice in the same list for a self-loop.
  auto& per_node = delta_adjacency_[type];
  per_node[src].push_back(dst);
  per_node[dst].push_back(src);
  return Status::OK();
}

void HeteroGraph::CompactDeltas() {
  if (pending_delta_edges_ == 0 && NumAppendedNodes() == 0) return;
  RebuildCsr();
  delta_adjacency_.assign(schema_.NumEdgeTypes(), {});
  base_num_nodes_ = node_types_.size();
  pending_delta_edges_ = 0;
}

void HeteroGraph::RebuildCsr() {
  const size_t n = node_types_.size();
  const size_t num_edge_types = schema_.NumEdgeTypes();
  adjacency_.assign(num_edge_types, {});
  for (size_t r = 0; r < num_edge_types; ++r) {
    adjacency_[r].offsets.assign(n + 1, 0);
  }
  for (const auto& e : edges_) {
    auto& csr = adjacency_[e.type];
    ++csr.offsets[e.src + 1];
    ++csr.offsets[e.dst + 1];
  }
  for (size_t r = 0; r < num_edge_types; ++r) {
    auto& csr = adjacency_[r];
    for (size_t v = 0; v < n; ++v) csr.offsets[v + 1] += csr.offsets[v];
    csr.targets.resize(csr.offsets[n]);
  }
  std::vector<std::vector<int64_t>> cursors(num_edge_types);
  for (size_t r = 0; r < num_edge_types; ++r) {
    cursors[r].assign(adjacency_[r].offsets.begin(),
                      adjacency_[r].offsets.end() - 1);
  }
  for (const auto& e : edges_) {
    auto& csr = adjacency_[e.type];
    auto& cur = cursors[e.type];
    csr.targets[cur[e.src]++] = e.dst;
    csr.targets[cur[e.dst]++] = e.src;
  }
}

std::pair<HeteroGraph, std::vector<NodeId>> HeteroGraph::InducedSubgraph(
    const std::vector<NodeId>& keep) const {
  std::vector<NodeId> old_to_new(NumNodes(), kInvalidNode);
  HeteroGraphBuilder builder(schema_);
  for (NodeId old_id : keep) {
    old_to_new[old_id] = builder.AddNode(node_types_[old_id], labels_[old_id]);
  }
  // Emit each undirected edge once: from the canonical src orientation.
  for (EdgeTypeId r = 0; r < static_cast<EdgeTypeId>(adjacency_.size());
       ++r) {
    const NodeTypeId src_type = schema_.EdgeSrcType(r);
    const NodeTypeId dst_type = schema_.EdgeDstType(r);
    const bool self_relation = (src_type == dst_type);
    for (NodeId old_id : keep) {
      if (node_types_[old_id] != src_type) continue;
      const NeighborSpans spans = NeighborSegments(old_id, r);
      for (const auto& segment : {spans.base, spans.delta}) {
        for (NodeId nbr : segment) {
          if (old_to_new[nbr] == kInvalidNode) continue;
          // For self-relations (Cite) each undirected edge appears in both
          // endpoints' lists; keep only one copy via an id tiebreak. This
          // loses edge direction, which no consumer of subgraphs needs.
          if (self_relation && old_id > nbr) continue;
          Status s = builder.AddEdge(r, old_to_new[old_id], old_to_new[nbr]);
          KPEF_CHECK(s.ok()) << s.ToString();
        }
      }
    }
  }
  return {std::move(builder).Build(), std::move(old_to_new)};
}

size_t HeteroGraph::MemoryUsageBytes() const {
  size_t bytes = node_types_.size() * sizeof(NodeTypeId) +
                 local_index_.size() * sizeof(size_t) +
                 edges_.size() * sizeof(EdgeRecord);
  for (const Csr& csr : adjacency_) {
    bytes += csr.offsets.size() * sizeof(int64_t) +
             csr.targets.size() * sizeof(NodeId);
  }
  for (const auto& per_type : nodes_by_type_) {
    bytes += per_type.size() * sizeof(NodeId);
  }
  for (const auto& per_node : delta_adjacency_) {
    for (const auto& [node, list] : per_node) {
      bytes += sizeof(NodeId) + list.capacity() * sizeof(NodeId);
    }
  }
  for (const auto& label : labels_) bytes += label.capacity();
  return bytes;
}

NodeId HeteroGraphBuilder::AddNode(NodeTypeId type, std::string label) {
  KPEF_CHECK(type >= 0 &&
             static_cast<size_t>(type) < schema_.NumNodeTypes());
  node_types_.push_back(type);
  labels_.push_back(std::move(label));
  return static_cast<NodeId>(node_types_.size() - 1);
}

Status HeteroGraphBuilder::AddEdge(EdgeTypeId type, NodeId src, NodeId dst) {
  if (type < 0 || static_cast<size_t>(type) >= schema_.NumEdgeTypes()) {
    return Status::InvalidArgument("unknown edge type");
  }
  if (src < 0 || static_cast<size_t>(src) >= node_types_.size() || dst < 0 ||
      static_cast<size_t>(dst) >= node_types_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (node_types_[src] != schema_.EdgeSrcType(type) ||
      node_types_[dst] != schema_.EdgeDstType(type)) {
    std::ostringstream msg;
    msg << "edge type " << schema_.EdgeTypeName(type)
        << " expects endpoint types ("
        << schema_.NodeTypeName(schema_.EdgeSrcType(type)) << ", "
        << schema_.NodeTypeName(schema_.EdgeDstType(type)) << ") but got ("
        << schema_.NodeTypeName(node_types_[src]) << ", "
        << schema_.NodeTypeName(node_types_[dst]) << ")";
    return Status::InvalidArgument(msg.str());
  }
  edges_.push_back({type, src, dst});
  return Status::OK();
}

HeteroGraph HeteroGraphBuilder::Build() && {
  HeteroGraph g;
  g.schema_ = std::move(schema_);
  g.node_types_ = std::move(node_types_);
  g.labels_ = std::move(labels_);
  const size_t n = g.node_types_.size();
  const size_t num_edge_types = g.schema_.NumEdgeTypes();

  g.nodes_by_type_.resize(g.schema_.NumNodeTypes());
  g.local_index_.resize(n);
  for (size_t v = 0; v < n; ++v) {
    auto& bucket = g.nodes_by_type_[g.node_types_[v]];
    g.local_index_[v] = bucket.size();
    bucket.push_back(static_cast<NodeId>(v));
  }

  g.edges_per_type_.assign(num_edge_types, 0);
  for (const auto& e : edges_) ++g.edges_per_type_[e.type];
  g.num_edges_ = edges_.size();
  g.edges_.reserve(edges_.size());
  for (const auto& e : edges_) g.edges_.push_back({e.type, e.src, e.dst});

  // Counting sort into per-type CSR; each undirected edge lands in both
  // endpoints' lists (including self-relations like Cite), in insertion
  // order so per-node neighbor lists preserve edge order.
  g.base_num_nodes_ = n;
  g.RebuildCsr();
  g.delta_adjacency_.assign(num_edge_types, {});
  return g;
}

}  // namespace kpef

// Fundamental id types for the heterogeneous graph.

#ifndef KPEF_GRAPH_TYPES_H_
#define KPEF_GRAPH_TYPES_H_

#include <cstdint>

namespace kpef {

/// Global node id, dense in [0, num_nodes).
using NodeId = int32_t;

/// Node type id, dense in [0, num_node_types) per Schema.
using NodeTypeId = int16_t;

/// Edge type id, dense in [0, num_edge_types) per Schema.
using EdgeTypeId = int16_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr NodeTypeId kInvalidNodeType = -1;
inline constexpr EdgeTypeId kInvalidEdgeType = -1;

}  // namespace kpef

#endif  // KPEF_GRAPH_TYPES_H_

// Process-wide metrics: thread-safe counters, gauges, and fixed-bucket
// latency/size histograms behind a global MetricsRegistry.
//
// Design rules (see DESIGN.md §Observability):
//  - Instruments are registered once and never deleted, so references
//    returned by the registry stay valid for the process lifetime. The
//    KPEF_COUNTER_ADD / KPEF_GAUGE_SET / KPEF_HISTOGRAM_OBSERVE macros
//    cache that reference in a function-local static, so the steady-state
//    cost of an instrumented site is one relaxed atomic RMW.
//  - Hot loops must NOT call the macros per iteration; they accumulate
//    into a stack-local counter and merge once at the end (the same
//    pattern that keeps per-query stats race-free across concurrent
//    queries).
//  - Defining KPEF_METRICS_DISABLED compiles every instrument and macro
//    to a no-op; the registry stays empty and exporters emit empty
//    documents.

#ifndef KPEF_OBS_METRICS_H_
#define KPEF_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace kpef::obs {

#ifndef KPEF_METRICS_DISABLED

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. most recent epoch loss).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]
/// (exclusive of lower buckets); one overflow bucket catches the rest.
/// Observe() is wait-free (relaxed atomics), so concurrent observers
/// never block; cross-field reads (count vs. sum) are only guaranteed
/// consistent once writers are quiescent, which is when exports happen.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Buckets = upper_bounds().size() + 1; the last is the overflow bucket.
  size_t NumBuckets() const { return bounds_.size() + 1; }
  uint64_t BucketCount(size_t bucket) const {
    return counts_[bucket].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const {
    return total_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

#else  // KPEF_METRICS_DISABLED

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(double) {}
  double Value() const { return 0.0; }
  void Reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> = {}) {}
  void Observe(double) {}
  const std::vector<double>& upper_bounds() const {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  size_t NumBuckets() const { return 0; }
  uint64_t BucketCount(size_t) const { return 0; }
  uint64_t TotalCount() const { return 0; }
  double Sum() const { return 0.0; }
  void Reset() {}
};

#endif  // KPEF_METRICS_DISABLED

/// Default histogram bounds: powers of two 1, 2, 4, ..., 2^20. Suitable
/// for the count-valued distributions the pipeline records (search hops,
/// list entries, queue sizes) and acceptable for millisecond latencies.
const std::vector<double>& DefaultHistogramBounds();

/// Bounds for millisecond-valued latency histograms: sub-millisecond
/// resolution at the low end (serve-path queries complete in tens of
/// microseconds on small corpora) through 60 s at the top, so tail
/// percentiles derived from the snapshot are not saturated in one
/// bucket. Pass to the registry at warm-up; the creating call wins.
const std::vector<double>& LatencyHistogramBounds();

/// Immutable copy of every instrument's current value, taken under the
/// registration lock (values themselves are relaxed-atomic reads).
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> upper_bounds;
    /// Per-bucket (non-cumulative) counts; size = upper_bounds + 1.
    std::vector<uint64_t> bucket_counts;
    uint64_t total_count = 0;
    double sum = 0.0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
};

/// Name -> instrument map. Registration is mutex-guarded; instrument
/// updates are lock-free. Counters, gauges, and histograms live in
/// separate namespaces, so one name can back at most one of each kind
/// (pipeline names never overlap in practice).
class MetricsRegistry {
 public:
  /// The process-wide registry (created on first use, never destroyed).
  static MetricsRegistry& Global();

  /// Returns the instrument registered under `name`, creating it on
  /// first use. The returned reference is valid forever.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `upper_bounds` is honoured only by the call that creates the
  /// histogram; later calls return the existing instrument unchanged.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = {});

  /// Zeroes every instrument's value, keeping registrations (and thus
  /// outstanding references) intact. Test/benchmark isolation aid.
  void ResetValues();

  MetricsSnapshot Snapshot() const;

 private:
  MetricsRegistry() = default;

#ifndef KPEF_METRICS_DISABLED
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
#endif
};

}  // namespace kpef::obs

// --- Instrumentation macros -------------------------------------------
//
// `name` must be a string literal (the registry reference is cached in a
// function-local static keyed by the call site).

#ifndef KPEF_METRICS_DISABLED

#define KPEF_COUNTER_ADD(name, delta)                              \
  do {                                                             \
    static ::kpef::obs::Counter& kpef_metrics_counter_ =           \
        ::kpef::obs::MetricsRegistry::Global().GetCounter(name);   \
    kpef_metrics_counter_.Add(delta);                              \
  } while (0)

#define KPEF_GAUGE_SET(name, value)                                \
  do {                                                             \
    static ::kpef::obs::Gauge& kpef_metrics_gauge_ =               \
        ::kpef::obs::MetricsRegistry::Global().GetGauge(name);     \
    kpef_metrics_gauge_.Set(value);                                \
  } while (0)

#define KPEF_HISTOGRAM_OBSERVE(name, value)                        \
  do {                                                             \
    static ::kpef::obs::Histogram& kpef_metrics_histogram_ =       \
        ::kpef::obs::MetricsRegistry::Global().GetHistogram(name); \
    kpef_metrics_histogram_.Observe(                               \
        static_cast<double>(value));                               \
  } while (0)

#else  // KPEF_METRICS_DISABLED

// sizeof keeps the operands "used" (silencing -Wunused warnings at call
// sites) without ever evaluating them.
#define KPEF_COUNTER_ADD(name, delta) \
  do {                                \
    (void)sizeof((name));             \
    (void)sizeof((delta));            \
  } while (0)
#define KPEF_GAUGE_SET(name, value) \
  do {                              \
    (void)sizeof((name));           \
    (void)sizeof((value));          \
  } while (0)
#define KPEF_HISTOGRAM_OBSERVE(name, value) \
  do {                                      \
    (void)sizeof((name));                   \
    (void)sizeof((value));                  \
  } while (0)

#endif  // KPEF_METRICS_DISABLED

#endif  // KPEF_OBS_METRICS_H_

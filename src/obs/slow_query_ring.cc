#include "obs/slow_query_ring.h"

#include <algorithm>

namespace kpef::obs {

SlowQueryRing::SlowQueryRing(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void SlowQueryRing::Push(SlowQueryRecord record) {
  if (record.query.size() > kMaxQueryBytes) {
    record.query.resize(kMaxQueryBytes);
  }
  pushed_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::vector<SlowQueryRecord> SlowQueryRing::SnapshotNewestFirst() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SlowQueryRecord> out;
  out.reserve(ring_.size());
  // Insertion order is ring_[next_..end) then ring_[0..next_) once the
  // ring wrapped; before that it is simply ring_[0..size). Walk it
  // backwards for newest-first.
  const size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    const size_t idx =
        n < capacity_ ? n - 1 - i : (next_ + n - 1 - i) % capacity_;
    out.push_back(ring_[idx]);
  }
  return out;
}

void SlowQueryRing::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
}

}  // namespace kpef::obs

// Metric exporters: Prometheus text exposition and a JSON dump, both
// rendered from a MetricsSnapshot so one export is internally
// consistent.

#ifndef KPEF_OBS_EXPORT_H_
#define KPEF_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace kpef::obs {

/// Prometheus text format. Metric names are sanitized ('.' and other
/// non-[a-zA-Z0-9_:] characters become '_'); histograms expand into the
/// conventional cumulative _bucket{le=...}/_sum/_count series. Canonical
/// pipeline metrics get a `# HELP` line; the serving-latency histograms
/// additionally export a `<id>_quantile` summary family with p50/p95/p99
/// derived from the bucket snapshot (see HistogramQuantile).
std::string ExportPrometheusText(const MetricsSnapshot& snapshot);
std::string ExportPrometheusText();  // Global registry.

/// Estimates quantile `q` in [0, 1] from a bucketed snapshot by linear
/// interpolation inside the bucket holding the target rank (lower edge 0
/// for the first bucket). Observations in the overflow bucket clamp to
/// the highest finite bound — the reason serve latencies use the wide
/// LatencyHistogramBounds(). Returns 0 for an empty histogram.
double HistogramQuantile(const MetricsSnapshot::HistogramData& data,
                         double q);

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string EscapeLabelValue(const std::string& value);

/// JSON document:
///   {"counters": {name: integer, ...},
///    "gauges": {name: number, ...},
///    "histograms": {name: {"count": n, "sum": s,
///                          "buckets": [{"le": bound|"+Inf",
///                                       "count": n}, ...]}, ...}}
/// Bucket counts are cumulative, mirroring the Prometheus exposition.
std::string ExportMetricsJson(const MetricsSnapshot& snapshot);
std::string ExportMetricsJson();  // Global registry.

/// Writes the global registry to `path`: Prometheus text when the path
/// ends in ".prom" or ".txt", JSON otherwise.
Status WriteMetricsFile(const std::string& path);

}  // namespace kpef::obs

#endif  // KPEF_OBS_EXPORT_H_

// Metric exporters: Prometheus text exposition and a JSON dump, both
// rendered from a MetricsSnapshot so one export is internally
// consistent.

#ifndef KPEF_OBS_EXPORT_H_
#define KPEF_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace kpef::obs {

/// Prometheus text format. Metric names are sanitized ('.' and other
/// non-[a-zA-Z0-9_:] characters become '_'); histograms expand into the
/// conventional cumulative _bucket{le=...}/_sum/_count series.
std::string ExportPrometheusText(const MetricsSnapshot& snapshot);
std::string ExportPrometheusText();  // Global registry.

/// JSON document:
///   {"counters": {name: integer, ...},
///    "gauges": {name: number, ...},
///    "histograms": {name: {"count": n, "sum": s,
///                          "buckets": [{"le": bound|"+Inf",
///                                       "count": n}, ...]}, ...}}
/// Bucket counts are cumulative, mirroring the Prometheus exposition.
std::string ExportMetricsJson(const MetricsSnapshot& snapshot);
std::string ExportMetricsJson();  // Global registry.

/// Writes the global registry to `path`: Prometheus text when the path
/// ends in ".prom" or ".txt", JSON otherwise.
Status WriteMetricsFile(const std::string& path);

}  // namespace kpef::obs

#endif  // KPEF_OBS_EXPORT_H_

// Context-keyed span tracer (DESIGN.md §12).
//
// Two recording planes share one clock and one ScopedSpan type:
//
//  - Process-global spans (the PR 1 model, kept for kpef_cli
//    --trace-out): SetEnabled(true) makes every KPEF_TRACE_SPAN record
//    into one bounded global buffer; DumpJson() reconstructs the flame
//    shape of an offline run.
//  - Request-scoped spans: the serving layer calls BeginTrace() per
//    request and installs the returned key as the thread's current
//    trace context (ScopedTraceContext). Every span opened while a
//    context is installed — including spans on pool workers, which
//    inherit the submitter's context through ThreadPool's context
//    hooks — lands in that request's private buffer, so one request's
//    flame is reconstructable even when its work interleaves with 15
//    batchmates across the pool. EndTrace() either retains the buffer
//    (head-sampled, tail-slow, or always-on mode) in a bounded ring
//    queryable by external id, or drops it.
//
// Costs: with mode kOff and tracing disabled a span is one thread-local
// read plus one relaxed atomic load. An active request span adds two
// steady_clock reads and one sharded-mutex append. Span names must be
// string literals (records keep the pointer).

#ifndef KPEF_OBS_TRACE_H_
#define KPEF_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace kpef::obs {

/// One completed span. Times are nanoseconds since the tracer's epoch
/// (process-local, monotonic).
struct SpanRecord {
  const char* name = "";
  /// Owning request trace (0 = process-global span).
  uint64_t trace_key = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Dense per-process thread number (0, 1, ...), not the OS tid.
  uint32_t thread_id = 0;
  /// Nesting depth within the thread at the time the span opened.
  uint32_t depth = 0;
};

/// Request-tracing policy. kSampled and kAlwaysOn record identically
/// (tail-based keep needs the spans before it knows the request was
/// slow); they differ only in retention — kAlwaysOn keeps every
/// completed trace, kSampled keeps head-sampled and tail-slow ones.
enum class TraceMode { kOff, kSampled, kAlwaysOn };

/// One completed, retained request trace.
struct TraceSnapshot {
  uint64_t key = 0;
  /// External id (sanitized X-Request-Id or generated).
  std::string id;
  bool head_sampled = false;
  /// Retained because a tail rule fired (slow / deadline), not heads.
  bool kept_tail = false;
  /// Spans dropped once the per-trace cap was hit.
  uint64_t dropped_spans = 0;
  std::vector<SpanRecord> spans;
};

class Tracer {
 public:
  static Tracer& Global();

  // --- Process-global plane (offline runs, kpef_cli --trace-out).

  /// Turns global span recording on/off. Clearing/dumping work either
  /// way. Does not affect request-scoped recording (see SetMode).
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a completed global span; drops it (counting the drop) once
  /// the buffer holds kMaxSpans records.
  void Record(const SpanRecord& span);

  std::vector<SpanRecord> Snapshot() const;
  size_t NumSpans() const;
  uint64_t NumDropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void Clear();

  /// Flame-style JSON: {"spans": [{"name", "thread", "depth",
  /// "start_us", "dur_us"}, ...]} ordered by (thread, start). A span's
  /// children are exactly the later spans with depth+1 nested inside its
  /// [start, start+dur) window on the same thread.
  std::string DumpJson() const;

  /// Nanoseconds since the tracer epoch (first use in the process).
  uint64_t NowNanos() const;

  // --- Request-scoped plane (serving layer).

  /// Request-tracing policy. Under KPEF_METRICS_DISABLED the mode is
  /// pinned to kOff and BeginTrace always returns 0.
  void SetMode(TraceMode mode);
  TraceMode mode() const { return mode_.load(std::memory_order_relaxed); }

  /// Opens a request trace and returns its key (0 when mode is kOff or
  /// the active-trace table is full — all downstream calls no-op on 0).
  /// `external_id` is the client-visible id used for retained lookup.
  uint64_t BeginTrace(std::string external_id, bool head_sampled);

  /// Appends a completed span to an active trace; no-op for key 0 or an
  /// unknown key. Spans beyond kMaxSpansPerTrace are counted as dropped.
  void AppendToTrace(uint64_t key, const SpanRecord& span);

  /// Closes a trace. The buffer is retained (bounded ring, oldest
  /// evicted) when head-sampled, `keep_tail` is true, or the mode is
  /// kAlwaysOn; otherwise it is discarded.
  void EndTrace(uint64_t key, bool keep_tail);

  /// Most recent retained trace with `external_id`; false if none.
  bool FindRetained(std::string_view external_id, TraceSnapshot* out) const;

  std::vector<TraceSnapshot> RetainedSnapshots() const;
  size_t ActiveTraceCount() const {
    return active_count_.load(std::memory_order_relaxed);
  }
  uint64_t TracesRetained() const {
    return retained_total_.load(std::memory_order_relaxed);
  }

  /// Drops every active and retained request trace (test isolation).
  void ClearRequestTraces();

  static constexpr size_t kMaxSpans = 1 << 20;
  static constexpr size_t kMaxSpansPerTrace = 512;
  static constexpr size_t kMaxRetainedTraces = 64;
  static constexpr size_t kMaxActiveTraces = 4096;

 private:
  /// A request trace still in flight.
  struct ActiveTrace {
    std::string id;
    bool head_sampled = false;
    uint64_t dropped = 0;
    std::vector<SpanRecord> spans;
  };
  /// Sharded by key so 16 batchmates appending concurrently rarely
  /// contend on one mutex.
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<uint64_t, ActiveTrace> active;
  };
  static constexpr size_t kShards = 8;

  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  Shard& ShardFor(uint64_t key) { return shards_[key % kShards]; }

  std::atomic<bool> enabled_{false};
  std::atomic<TraceMode> mode_{TraceMode::kOff};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> next_key_{1};
  std::atomic<size_t> active_count_{0};
  std::atomic<uint64_t> retained_total_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  Shard shards_[kShards];
  mutable std::mutex retained_mutex_;
  std::deque<TraceSnapshot> retained_;
  const std::chrono::steady_clock::time_point epoch_;
};

// --- Thread-local trace context ---------------------------------------

/// Trace key installed on the calling thread (0 = none).
uint64_t CurrentTraceKey();

/// Installs `key` as the thread's current trace key and returns the
/// previous one. Used by ThreadPool's context hooks to hand a
/// submitter's context to pool workers; prefer ScopedTraceContext in
/// normal code.
uint64_t SwapCurrentTraceKey(uint64_t key);

/// RAII: installs a trace key for the enclosing scope (restores the
/// previous key on exit). Key 0 uninstalls.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(uint64_t key) : prev_(SwapCurrentTraceKey(key)) {}
  ~ScopedTraceContext() { SwapCurrentTraceKey(prev_); }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  uint64_t prev_;
};

/// Appends a manually-timed span (phases measured by timers rather than
/// scopes, e.g. the per-query share of a batched index search). No-op
/// when `trace_key` is 0. `name` must be a string literal.
void RecordSpan(uint64_t trace_key, const char* name, uint64_t start_ns,
                uint64_t duration_ns);

// --- Trace exports -----------------------------------------------------

/// {"trace_id", "head_sampled", "kept_tail", "dropped_spans",
///  "spans": [{"name", "thread", "depth", "start_us", "dur_us"}, ...]}
/// with spans ordered by start time.
std::string ExportTraceJson(const TraceSnapshot& trace);

/// Chrome trace-event JSON (load in chrome://tracing or Perfetto):
/// {"traceEvents": [{"name", "cat", "ph": "X", "ts", "dur", "pid",
///  "tid", "args": {...}}, ...], "displayTimeUnit": "ms"}.
std::string ExportChromeTrace(const TraceSnapshot& trace);

/// RAII span: records itself on destruction into the thread's current
/// request trace (when one is installed) or the global buffer (when
/// global tracing was enabled at construction time).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t trace_key_ = 0;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace kpef::obs

#define KPEF_TRACE_CONCAT_INNER_(a, b) a##b
#define KPEF_TRACE_CONCAT_(a, b) KPEF_TRACE_CONCAT_INNER_(a, b)

#ifndef KPEF_METRICS_DISABLED
/// Opens a span covering the rest of the enclosing scope.
#define KPEF_TRACE_SPAN(name)                                     \
  ::kpef::obs::ScopedSpan KPEF_TRACE_CONCAT_(kpef_trace_span_,    \
                                             __LINE__)(name)
#else
#define KPEF_TRACE_SPAN(name) \
  do {                        \
    (void)sizeof((name));     \
  } while (0)
#endif

#endif  // KPEF_OBS_TRACE_H_

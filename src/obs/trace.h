// Lightweight scoped-span tracer.
//
// KPEF_TRACE_SPAN("pgindex.search") opens a span that closes at scope
// exit; spans nest per thread (a thread-local depth counter), so a dump
// reconstructs the flame shape of one run. Tracing is off by default:
// a disabled span costs one relaxed atomic load. Enabled spans record
// two steady_clock reads and, on close, one mutex-guarded append to the
// global span buffer — fine for the pipeline's per-phase / per-query
// granularity, too coarse for inner loops (don't put spans there).
//
// Span names must be string literals (records keep the pointer).

#ifndef KPEF_OBS_TRACE_H_
#define KPEF_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace kpef::obs {

/// One completed span. Times are nanoseconds since the tracer's epoch
/// (process-local, monotonic).
struct SpanRecord {
  const char* name = "";
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Dense per-process thread number (0, 1, ...), not the OS tid.
  uint32_t thread_id = 0;
  /// Nesting depth within the thread at the time the span opened.
  uint32_t depth = 0;
};

class Tracer {
 public:
  static Tracer& Global();

  /// Turns span recording on/off. Clearing and dumping work either way.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a completed span; drops it (counting the drop) once the
  /// buffer holds kMaxSpans records.
  void Record(const SpanRecord& span);

  std::vector<SpanRecord> Snapshot() const;
  size_t NumSpans() const;
  uint64_t NumDropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void Clear();

  /// Flame-style JSON: {"spans": [{"name", "thread", "depth",
  /// "start_us", "dur_us"}, ...]} ordered by (thread, start). A span's
  /// children are exactly the later spans with depth+1 nested inside its
  /// [start, start+dur) window on the same thread.
  std::string DumpJson() const;

  /// Nanoseconds since the tracer epoch (first use in the process).
  uint64_t NowNanos() const;

  static constexpr size_t kMaxSpans = 1 << 20;

 private:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  const std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: records itself on destruction when tracing was enabled at
/// construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace kpef::obs

#define KPEF_TRACE_CONCAT_INNER_(a, b) a##b
#define KPEF_TRACE_CONCAT_(a, b) KPEF_TRACE_CONCAT_INNER_(a, b)

#ifndef KPEF_METRICS_DISABLED
/// Opens a span covering the rest of the enclosing scope.
#define KPEF_TRACE_SPAN(name)                                     \
  ::kpef::obs::ScopedSpan KPEF_TRACE_CONCAT_(kpef_trace_span_,    \
                                             __LINE__)(name)
#else
#define KPEF_TRACE_SPAN(name) \
  do {                        \
    (void)sizeof((name));     \
  } while (0)
#endif

#endif  // KPEF_OBS_TRACE_H_

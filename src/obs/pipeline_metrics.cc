#include "obs/pipeline_metrics.h"

#include <map>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kpef::obs {

namespace {

// Bridges ThreadPool's layering-free metric callouts into the registry.
// common/ cannot depend on obs/, so the pool exposes a hook and any
// binary that links kpef_obs gets the counters wired at static-init
// time (hook invocations only happen at runtime, after init completes).
void PoolMetricsHook(const char* counter, uint64_t delta) {
  MetricsRegistry::Global().GetCounter(counter).Add(delta);
}

// Same bridge for trace contexts: a task submitted while a request
// trace is installed carries its key onto the worker, so spans opened
// inside pool tasks land in the submitting request's trace.
uint64_t TraceContextCapture() { return CurrentTraceKey(); }
uint64_t TraceContextSwap(uint64_t key) { return SwapCurrentTraceKey(key); }

const bool g_pool_hooks_installed = [] {
  ThreadPool::SetMetricsHook(&PoolMetricsHook);
  ThreadPool::SetContextHooks(&TraceContextCapture, &TraceContextSwap);
  return true;
}();

}  // namespace

void WarmPipelineMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const char* name :
       {kKpcoreSearchesTotal, kKpcoreNodesVisited, kKpcoreNodesPruned,
        kKpcoreEdgesScanned, kProjectionBuildsTotal, kProjectionEdges,
        kProjectionBudgetRejections, kSamplingSeedsTotal,
        kSamplingTriplesTotal, kSamplingNearNegativesTotal,
        kSamplingRandomNegativesTotal, kSamplingSeedsParallel,
        kTrainerEpochsTotal, kPgindexBuildsTotal, kPgindexNndescentIterations,
        kPgindexBuildDistanceComputations, kPgindexSearchesTotal,
        kPgindexBatchSearchesTotal, kPgindexDistanceComputations,
        kPgindexSq8DistanceComputations, kPgindexRerankCandidates,
        kPgindexBatchInterleavedHops, kTaQueriesTotal, kTaEntriesAccessed, kTaEarlyTerminationTotal,
        kRankingFullScansTotal, kRankingFullScanEntriesAccessed,
        kPoolTasksCancelled, kPoolWaitHelpRuns, kEngineBuildsTotal,
        kEngineQueriesTotal, kEngineBatchQueriesTotal,
        kEngineQueriesDeadlineExceeded, kServeRequests, kServeShed,
        kServeDeadlineExceeded, kServeBadRequests, kServeBatches,
        kServeSlowQueries, kServeTracesStarted, kServeTracesRetained,
        kServeTopNClamped, kServeReloads, kServeReloadFailures,
        kIngestRecords, kIngestBatches, kIngestDuplicates, kIngestRejected}) {
    registry.GetCounter(name);
  }
  for (const char* name :
       {kTrainerEpochLoss, kTrainerTriplesPerSec, kTrainerActiveTriples,
        kTrainerWorkers, kProcessRssBytes,
        kProcessOpenFds, kProcessUptimeSeconds, kPoolQueueDepth,
        kPoolActiveWorkers, kPoolThreads, kServeGeneration, kServeShards,
        kServeGenerationQueries, kServeGenerationLatencyMsMean,
        kServeGenerationLoadSeconds, kIngestWalBytes,
        kIngestPendingDeltaEdges}) {
    registry.GetGauge(name);
  }
  // Latency-valued histograms get sub-millisecond .. 60 s bounds so tail
  // quantiles resolve; count-valued ones keep the power-of-two default.
  for (const char* name : {kEngineQueryLatencyMs, kEngineBatchLatencyMs,
                           kServeQueueWaitMs, kServeE2eMs, kIngestMergeMs,
                           kIngestApplyMs}) {
    registry.GetHistogram(name, LatencyHistogramBounds());
  }
  for (const char* name :
       {kKpcoreDeleteQueueSize, kProjectionBuildMs, kPgindexSearchHops,
        kPgindexCandidatePoolOccupancy, kTaRounds, kEngineBatchSize,
        kServeBatchSize}) {
    registry.GetHistogram(name);
  }
}

const char* PipelineMetricHelp(const std::string& name) {
  static const std::map<std::string, const char*>* help =
      new std::map<std::string, const char*>{
          {kServeRequests, "HTTP requests accepted by the service router."},
          {kServeShed, "Requests shed by admission control (429)."},
          {kServeDeadlineExceeded,
           "Requests that missed their deadline (504)."},
          {kServeBadRequests, "Malformed requests rejected (400)."},
          {kServeBatches, "Micro-batches dispatched to the engine."},
          {kServeBatchSize, "Queries coalesced per dispatched micro-batch."},
          {kServeQueueWaitMs,
           "Time a query waited in the batcher queue, milliseconds."},
          {kServeE2eMs,
           "End-to-end service latency (parse to response), milliseconds."},
          {kServeSlowQueries,
           "Requests that crossed a slow threshold (tail-kept trace)."},
          {kServeTracesStarted, "Request traces opened."},
          {kServeTracesRetained, "Request traces retained for debugging."},
          {kServeTopNClamped,
           "Requests whose n exceeded the batcher cap and was clamped."},
          {kServeReloads, "Successful artifact generation hot-swaps."},
          {kServeReloadFailures,
           "Reload attempts that failed; old generation kept serving."},
          {kServeGeneration, "Artifact generation currently serving."},
          {kServeShards, "Shards the serving generation scatters over."},
          {kServeGenerationQueries,
           "Queries answered by the serving generation since publish."},
          {kServeGenerationLatencyMsMean,
           "Mean engine-batch latency of the serving generation, ms."},
          {kServeGenerationLoadSeconds,
           "Wall-clock seconds the serving generation took to load."},
          {kIngestRecords, "Ingest records (papers) applied."},
          {kIngestBatches, "Ingest batches applied (one WAL record each)."},
          {kIngestDuplicates,
           "Ingest records skipped as duplicates of existing papers."},
          {kIngestRejected, "Ingest batches rejected before any change."},
          {kIngestWalBytes, "Byte offset of the last durable WAL record."},
          {kIngestPendingDeltaEdges,
           "Graph + index delta edges awaiting a base-CSR merge."},
          {kIngestMergeMs, "Delta-merge (compaction) wall-clock, ms."},
          {kIngestApplyMs, "Per-batch ingest apply wall-clock, ms."},
          {kProcessRssBytes, "Resident set size, bytes (sampled on scrape)."},
          {kProcessOpenFds,
           "Open file descriptors (sampled on scrape)."},
          {kProcessUptimeSeconds, "Process uptime, seconds."},
          {kPoolQueueDepth, "Thread-pool tasks queued at scrape time."},
          {kPoolActiveWorkers,
           "Thread-pool workers inside a task body at scrape time."},
          {kPoolThreads, "Thread-pool worker count."},
          {kEngineQueriesTotal, "Queries answered by the engine facade."},
          {kEngineQueryLatencyMs,
           "End-to-end FindExperts latency, milliseconds."},
          {kEngineBatchLatencyMs,
           "End-to-end FindExpertsBatch latency, milliseconds."},
          {kEngineQueriesDeadlineExceeded,
           "Queries whose batch deadline fired before completion."},
          {kPoolTasksCancelled,
           "Pool tasks skipped because their TaskGroup was cancelled."},
          {kPoolWaitHelpRuns,
           "Queued tasks run on a waiting thread (helping joins)."},
          {kPgindexSq8DistanceComputations,
           "SQ8 asymmetric distance evaluations (quantized traversal)."},
          {kPgindexRerankCandidates,
           "Candidates exact-reranked in fp32 after the SQ8 traversal."},
          {kPgindexBatchInterleavedHops,
           "Batch hops executed while >= 2 lockstep queries were live."},
          {kTrainerEpochLoss,
           "Mean triplet loss of the most recent training epoch."},
          {kTrainerTriplesPerSec,
           "Training throughput of the most recent Train() call."},
          {kTrainerActiveTriples,
           "Fraction of margin-active triples in the final epoch."},
          {kTrainerWorkers,
           "Worker threads the most recent Train() call used."},
      };
  auto it = help->find(name);
  return it == help->end() ? nullptr : it->second;
}

}  // namespace kpef::obs

#include "obs/pipeline_metrics.h"

#include "obs/metrics.h"

namespace kpef::obs {

void WarmPipelineMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const char* name :
       {kKpcoreSearchesTotal, kKpcoreNodesVisited, kKpcoreNodesPruned,
        kKpcoreEdgesScanned, kSamplingSeedsTotal, kSamplingTriplesTotal,
        kSamplingNearNegativesTotal, kSamplingRandomNegativesTotal,
        kTrainerEpochsTotal, kPgindexBuildsTotal, kPgindexNndescentIterations,
        kPgindexBuildDistanceComputations, kPgindexSearchesTotal,
        kPgindexBatchSearchesTotal, kPgindexDistanceComputations,
        kTaQueriesTotal, kTaEntriesAccessed, kTaEarlyTerminationTotal,
        kRankingFullScansTotal, kRankingFullScanEntriesAccessed,
        kEngineBuildsTotal, kEngineQueriesTotal, kEngineBatchQueriesTotal}) {
    registry.GetCounter(name);
  }
  for (const char* name : {kTrainerLastEpochLoss, kTrainerTriplesPerSec}) {
    registry.GetGauge(name);
  }
  for (const char* name :
       {kKpcoreDeleteQueueSize, kPgindexSearchHops,
        kPgindexCandidatePoolOccupancy, kTaRounds, kEngineQueryLatencyMs,
        kEngineBatchSize, kEngineBatchLatencyMs}) {
    registry.GetHistogram(name);
  }
}

}  // namespace kpef::obs

#include "obs/pipeline_metrics.h"

#include "obs/metrics.h"

namespace kpef::obs {

void WarmPipelineMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const char* name :
       {kKpcoreSearchesTotal, kKpcoreNodesVisited, kKpcoreNodesPruned,
        kKpcoreEdgesScanned, kSamplingSeedsTotal, kSamplingTriplesTotal,
        kSamplingNearNegativesTotal, kSamplingRandomNegativesTotal,
        kTrainerEpochsTotal, kPgindexBuildsTotal, kPgindexNndescentIterations,
        kPgindexBuildDistanceComputations, kPgindexSearchesTotal,
        kPgindexDistanceComputations, kTaQueriesTotal, kTaEntriesAccessed,
        kTaEarlyTerminationTotal, kRankingFullScansTotal,
        kRankingFullScanEntriesAccessed, kEngineBuildsTotal,
        kEngineQueriesTotal}) {
    registry.GetCounter(name);
  }
  for (const char* name : {kTrainerLastEpochLoss, kTrainerTriplesPerSec}) {
    registry.GetGauge(name);
  }
  for (const char* name :
       {kKpcoreDeleteQueueSize, kPgindexSearchHops,
        kPgindexCandidatePoolOccupancy, kTaRounds, kEngineQueryLatencyMs}) {
    registry.GetHistogram(name);
  }
}

}  // namespace kpef::obs

#include "obs/pipeline_metrics.h"

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace kpef::obs {

namespace {

// Bridges ThreadPool's layering-free metric callouts into the registry.
// common/ cannot depend on obs/, so the pool exposes a hook and any
// binary that links kpef_obs gets the counters wired at static-init
// time (hook invocations only happen at runtime, after init completes).
void PoolMetricsHook(const char* counter, uint64_t delta) {
  MetricsRegistry::Global().GetCounter(counter).Add(delta);
}

const bool g_pool_hook_installed = [] {
  ThreadPool::SetMetricsHook(&PoolMetricsHook);
  return true;
}();

}  // namespace

void WarmPipelineMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const char* name :
       {kKpcoreSearchesTotal, kKpcoreNodesVisited, kKpcoreNodesPruned,
        kKpcoreEdgesScanned, kProjectionBuildsTotal, kProjectionEdges,
        kProjectionBudgetRejections, kSamplingSeedsTotal,
        kSamplingTriplesTotal, kSamplingNearNegativesTotal,
        kSamplingRandomNegativesTotal, kSamplingSeedsParallel,
        kTrainerEpochsTotal, kPgindexBuildsTotal, kPgindexNndescentIterations,
        kPgindexBuildDistanceComputations, kPgindexSearchesTotal,
        kPgindexBatchSearchesTotal, kPgindexDistanceComputations,
        kTaQueriesTotal, kTaEntriesAccessed, kTaEarlyTerminationTotal,
        kRankingFullScansTotal, kRankingFullScanEntriesAccessed,
        kPoolTasksCancelled, kPoolWaitHelpRuns, kEngineBuildsTotal,
        kEngineQueriesTotal, kEngineBatchQueriesTotal,
        kEngineQueriesDeadlineExceeded, kServeRequests, kServeShed,
        kServeDeadlineExceeded, kServeBadRequests, kServeBatches}) {
    registry.GetCounter(name);
  }
  for (const char* name : {kTrainerLastEpochLoss, kTrainerTriplesPerSec}) {
    registry.GetGauge(name);
  }
  for (const char* name :
       {kKpcoreDeleteQueueSize, kProjectionBuildMs, kPgindexSearchHops,
        kPgindexCandidatePoolOccupancy, kTaRounds, kEngineQueryLatencyMs,
        kEngineBatchSize, kEngineBatchLatencyMs, kServeBatchSize,
        kServeQueueWaitMs, kServeE2eMs}) {
    registry.GetHistogram(name);
  }
}

}  // namespace kpef::obs

#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace kpef::obs {
namespace {

// Dense thread numbering for trace records.
uint32_t CurrentThreadNumber() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

// Per-thread nesting depth of currently-open spans.
thread_local uint32_t tls_span_depth = 0;

}  // namespace

Tracer& Tracer::Global() {
  // Leaked: ScopedSpan destructors may run during static teardown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

uint64_t Tracer::NowNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(span);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t Tracer::NumSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::DumpJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
  std::string out = "{\"spans\": [";
  char buf[256];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"thread\": %" PRIu32
                  ", \"depth\": %" PRIu32
                  ", \"start_us\": %.3f, \"dur_us\": %.3f}",
                  i == 0 ? "" : ",", s.name, s.thread_id, s.depth,
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.duration_ns) / 1e3);
    out += buf;
  }
  out += "\n], \"dropped\": ";
  std::snprintf(buf, sizeof(buf), "%" PRIu64 "}", NumDropped());
  out += buf;
  return out;
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  depth_ = tls_span_depth++;
  start_ns_ = tracer.NowNanos();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::Global();
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.duration_ns = tracer.NowNanos() - start_ns_;
  record.thread_id = CurrentThreadNumber();
  record.depth = depth_;
  --tls_span_depth;
  tracer.Record(record);
}

}  // namespace kpef::obs

#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace kpef::obs {
namespace {

// Dense thread numbering for trace records.
uint32_t CurrentThreadNumber() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

// Per-thread nesting depth of currently-open spans.
thread_local uint32_t tls_span_depth = 0;

// Request trace key installed on this thread (0 = none).
thread_local uint64_t tls_trace_key = 0;

// Minimal JSON string escaper (obs/ cannot depend on serve/json_util).
void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendSpanJson(std::string* out, const SpanRecord& s, bool first) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s\n  {\"name\": \"%s\", \"thread\": %" PRIu32
                ", \"depth\": %" PRIu32
                ", \"start_us\": %.3f, \"dur_us\": %.3f}",
                first ? "" : ",", s.name, s.thread_id, s.depth,
                static_cast<double>(s.start_ns) / 1e3,
                static_cast<double>(s.duration_ns) / 1e3);
  *out += buf;
}

}  // namespace

Tracer& Tracer::Global() {
  // Leaked: ScopedSpan destructors may run during static teardown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

uint64_t Tracer::NowNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(span);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t Tracer::NumSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::DumpJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
  std::string out = "{\"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    AppendSpanJson(&out, spans[i], i == 0);
  }
  out += "\n], \"dropped\": ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 "}", NumDropped());
  out += buf;
  return out;
}

void Tracer::SetMode(TraceMode mode) {
#ifdef KPEF_METRICS_DISABLED
  (void)mode;
  mode_.store(TraceMode::kOff, std::memory_order_relaxed);
#else
  mode_.store(mode, std::memory_order_relaxed);
#endif
}

uint64_t Tracer::BeginTrace(std::string external_id, bool head_sampled) {
  if (mode() == TraceMode::kOff) return 0;
  if (active_count_.load(std::memory_order_relaxed) >= kMaxActiveTraces) {
    return 0;
  }
  const uint64_t key = next_key_.fetch_add(1, std::memory_order_relaxed);
  ActiveTrace trace;
  trace.id = std::move(external_id);
  trace.head_sampled = head_sampled;
  trace.spans.reserve(16);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.active.emplace(key, std::move(trace));
  }
  active_count_.fetch_add(1, std::memory_order_relaxed);
  return key;
}

void Tracer::AppendToTrace(uint64_t key, const SpanRecord& span) {
  if (key == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.active.find(key);
  if (it == shard.active.end()) return;
  if (it->second.spans.size() >= kMaxSpansPerTrace) {
    ++it->second.dropped;
    return;
  }
  it->second.spans.push_back(span);
}

void Tracer::EndTrace(uint64_t key, bool keep_tail) {
  if (key == 0) return;
  ActiveTrace trace;
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.active.find(key);
    if (it == shard.active.end()) return;
    trace = std::move(it->second);
    shard.active.erase(it);
  }
  active_count_.fetch_sub(1, std::memory_order_relaxed);
  const bool keep = trace.head_sampled || keep_tail ||
                    mode() == TraceMode::kAlwaysOn;
  if (!keep) return;
  TraceSnapshot snapshot;
  snapshot.key = key;
  snapshot.id = std::move(trace.id);
  snapshot.head_sampled = trace.head_sampled;
  snapshot.kept_tail = keep_tail;
  snapshot.dropped_spans = trace.dropped;
  snapshot.spans = std::move(trace.spans);
  std::sort(snapshot.spans.begin(), snapshot.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
  retained_total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(retained_mutex_);
  retained_.push_back(std::move(snapshot));
  while (retained_.size() > kMaxRetainedTraces) retained_.pop_front();
}

bool Tracer::FindRetained(std::string_view external_id,
                          TraceSnapshot* out) const {
  std::lock_guard<std::mutex> lock(retained_mutex_);
  for (auto it = retained_.rbegin(); it != retained_.rend(); ++it) {
    if (it->id == external_id) {
      *out = *it;
      return true;
    }
  }
  return false;
}

std::vector<TraceSnapshot> Tracer::RetainedSnapshots() const {
  std::lock_guard<std::mutex> lock(retained_mutex_);
  return {retained_.begin(), retained_.end()};
}

void Tracer::ClearRequestTraces() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.active.clear();
  }
  active_count_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(retained_mutex_);
  retained_.clear();
}

uint64_t CurrentTraceKey() { return tls_trace_key; }

uint64_t SwapCurrentTraceKey(uint64_t key) {
  const uint64_t prev = tls_trace_key;
  tls_trace_key = key;
  return prev;
}

void RecordSpan(uint64_t trace_key, const char* name, uint64_t start_ns,
                uint64_t duration_ns) {
  if (trace_key == 0) return;
  SpanRecord record;
  record.name = name;
  record.trace_key = trace_key;
  record.start_ns = start_ns;
  record.duration_ns = duration_ns;
  record.thread_id = CurrentThreadNumber();
  record.depth = 0;
  Tracer::Global().AppendToTrace(trace_key, record);
}

std::string ExportTraceJson(const TraceSnapshot& trace) {
  std::string out = "{\"trace_id\": \"";
  AppendEscaped(&out, trace.id);
  out += "\", \"head_sampled\": ";
  out += trace.head_sampled ? "true" : "false";
  out += ", \"kept_tail\": ";
  out += trace.kept_tail ? "true" : "false";
  char buf[64];
  std::snprintf(buf, sizeof(buf), ", \"dropped_spans\": %" PRIu64,
                trace.dropped_spans);
  out += buf;
  out += ", \"spans\": [";
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    AppendSpanJson(&out, trace.spans[i], i == 0);
  }
  out += "\n]}";
  return out;
}

std::string ExportChromeTrace(const TraceSnapshot& trace) {
  std::string out = "{\"traceEvents\": [";
  char buf[256];
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const SpanRecord& s = trace.spans[i];
    std::string name;
    AppendEscaped(&name, s.name);
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"kpef\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %" PRIu32
                  ", \"args\": {\"depth\": %" PRIu32 "}}",
                  i == 0 ? "" : ",", name.c_str(),
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.duration_ns) / 1e3, s.thread_id,
                  s.depth);
    out += buf;
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"trace_id\": \"";
  AppendEscaped(&out, trace.id);
  out += "\"}}";
  return out;
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  Tracer& tracer = Tracer::Global();
  trace_key_ = tls_trace_key;
  if (trace_key_ == 0 && !tracer.enabled()) return;
  active_ = true;
  depth_ = tls_span_depth++;
  start_ns_ = tracer.NowNanos();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::Global();
  SpanRecord record;
  record.name = name_;
  record.trace_key = trace_key_;
  record.start_ns = start_ns_;
  record.duration_ns = tracer.NowNanos() - start_ns_;
  record.thread_id = CurrentThreadNumber();
  record.depth = depth_;
  --tls_span_depth;
  if (trace_key_ != 0) {
    tracer.AppendToTrace(trace_key_, record);
  } else {
    tracer.Record(record);
  }
}

}  // namespace kpef::obs

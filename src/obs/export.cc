#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace kpef::obs {
namespace {

std::string Sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') {
      c = '_';
    }
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string FormatU64(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

}  // namespace

std::string ExportPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string id = Sanitize(name);
    out += "# TYPE " + id + " counter\n";
    out += id + " " + FormatU64(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string id = Sanitize(name);
    out += "# TYPE " + id + " gauge\n";
    out += id + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string id = Sanitize(name);
    out += "# TYPE " + id + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < data.bucket_counts.size(); ++i) {
      cumulative += data.bucket_counts[i];
      const std::string le = i < data.upper_bounds.size()
                                 ? FormatDouble(data.upper_bounds[i])
                                 : "+Inf";
      out += id + "_bucket{le=\"" + le + "\"} " + FormatU64(cumulative) + "\n";
    }
    out += id + "_sum " + FormatDouble(data.sum) + "\n";
    out += id + "_count " + FormatU64(data.total_count) + "\n";
  }
  return out;
}

std::string ExportPrometheusText() {
  return ExportPrometheusText(MetricsRegistry::Global().Snapshot());
}

std::string ExportMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + FormatU64(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + FormatDouble(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": {\"count\": " + FormatU64(data.total_count) +
           ", \"sum\": " + FormatDouble(data.sum) + ", \"buckets\": [";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < data.bucket_counts.size(); ++i) {
      cumulative += data.bucket_counts[i];
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < data.upper_bounds.size()
                 ? FormatDouble(data.upper_bounds[i])
                 : std::string("\"+Inf\"");
      out += ", \"count\": " + FormatU64(cumulative) + "}";
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string ExportMetricsJson() {
  return ExportMetricsJson(MetricsRegistry::Global().Snapshot());
}

Status WriteMetricsFile(const std::string& path) {
  const bool prometheus = path.size() >= 5 && (path.ends_with(".prom") ||
                                               path.ends_with(".txt"));
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << (prometheus ? ExportPrometheusText() : ExportMetricsJson());
  out.close();
  if (!out) return Status::IOError("flush failed for " + path);
  return Status::OK();
}

}  // namespace kpef::obs

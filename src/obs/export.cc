#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "obs/pipeline_metrics.h"

namespace kpef::obs {
namespace {

/// Histograms that additionally export a p50/p95/p99 summary family.
constexpr const char* kQuantileHistograms[] = {"serve.e2e_ms",
                                               "serve.queue_wait_ms",
                                               "serve.batch_size"};
constexpr double kQuantiles[] = {0.5, 0.95, 0.99};

std::string Sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') {
      c = '_';
    }
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string FormatU64(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

void AppendHelp(std::string* out, const std::string& name,
                const std::string& id) {
  if (const char* help = PipelineMetricHelp(name)) {
    *out += "# HELP " + id + " " + help + "\n";
  }
}

}  // namespace

double HistogramQuantile(const MetricsSnapshot::HistogramData& data,
                         double q) {
  if (data.total_count == 0 || data.upper_bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(data.total_count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < data.bucket_counts.size(); ++i) {
    const uint64_t prev = cumulative;
    cumulative += data.bucket_counts[i];
    if (static_cast<double>(cumulative) >= rank && data.bucket_counts[i] > 0) {
      if (i >= data.upper_bounds.size()) return data.upper_bounds.back();
      const double lo = i == 0 ? 0.0 : data.upper_bounds[i - 1];
      const double hi = data.upper_bounds[i];
      const double frac = std::clamp(
          (rank - static_cast<double>(prev)) /
              static_cast<double>(data.bucket_counts[i]),
          0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
  }
  return data.upper_bounds.back();
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string ExportPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string id = Sanitize(name);
    AppendHelp(&out, name, id);
    out += "# TYPE " + id + " counter\n";
    out += id + " " + FormatU64(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string id = Sanitize(name);
    AppendHelp(&out, name, id);
    out += "# TYPE " + id + " gauge\n";
    out += id + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string id = Sanitize(name);
    AppendHelp(&out, name, id);
    out += "# TYPE " + id + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < data.bucket_counts.size(); ++i) {
      cumulative += data.bucket_counts[i];
      const std::string le = i < data.upper_bounds.size()
                                 ? FormatDouble(data.upper_bounds[i])
                                 : "+Inf";
      out += id + "_bucket{le=\"" + le + "\"} " + FormatU64(cumulative) + "\n";
    }
    out += id + "_sum " + FormatDouble(data.sum) + "\n";
    out += id + "_count " + FormatU64(data.total_count) + "\n";
  }
  // Summary-style tail quantiles for the serving-latency histograms,
  // derived from the same snapshot so they agree with the buckets above.
  for (const char* name : kQuantileHistograms) {
    auto it = snapshot.histograms.find(name);
    if (it == snapshot.histograms.end()) continue;
    const auto& data = it->second;
    const std::string id = Sanitize(name) + "_quantile";
    if (const char* help = PipelineMetricHelp(name)) {
      out += "# HELP " + id + " " + help;
      out += " (tail quantiles derived from the histogram)\n";
    }
    out += "# TYPE " + id + " summary\n";
    for (double q : kQuantiles) {
      char qbuf[16];
      std::snprintf(qbuf, sizeof(qbuf), "%g", q);
      out += id + "{quantile=\"" + qbuf + "\"} " +
             FormatDouble(HistogramQuantile(data, q)) + "\n";
    }
    out += id + "_sum " + FormatDouble(data.sum) + "\n";
    out += id + "_count " + FormatU64(data.total_count) + "\n";
  }
  return out;
}

std::string ExportPrometheusText() {
  return ExportPrometheusText(MetricsRegistry::Global().Snapshot());
}

std::string ExportMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + FormatU64(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + FormatDouble(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": {\"count\": " + FormatU64(data.total_count) +
           ", \"sum\": " + FormatDouble(data.sum) + ", \"buckets\": [";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < data.bucket_counts.size(); ++i) {
      cumulative += data.bucket_counts[i];
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < data.upper_bounds.size()
                 ? FormatDouble(data.upper_bounds[i])
                 : std::string("\"+Inf\"");
      out += ", \"count\": " + FormatU64(cumulative) + "}";
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string ExportMetricsJson() {
  return ExportMetricsJson(MetricsRegistry::Global().Snapshot());
}

Status WriteMetricsFile(const std::string& path) {
  const bool prometheus = path.size() >= 5 && (path.ends_with(".prom") ||
                                               path.ends_with(".txt"));
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << (prometheus ? ExportPrometheusText() : ExportMetricsJson());
  out.close();
  if (!out) return Status::IOError("flush failed for " + path);
  return Status::OK();
}

}  // namespace kpef::obs

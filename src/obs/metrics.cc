#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace kpef::obs {

const std::vector<double>& DefaultHistogramBounds() {
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>();
    for (double v = 1.0; v <= 1048576.0; v *= 2.0) b->push_back(v);
    return b;
  }();
  return *bounds;
}

const std::vector<double>& LatencyHistogramBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      0.05, 0.1,  0.25, 0.5,   1.0,   2.5,   5.0,    10.0,    25.0,   50.0,
      100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0};
  return *bounds;
}

#ifndef KPEF_METRICS_DISABLED

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) bounds_ = DefaultHistogramBounds();
  KPEF_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be increasing";
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrument references handed out by the registry
  // must stay valid through static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.upper_bounds = histogram->upper_bounds();
    data.bucket_counts.reserve(histogram->NumBuckets());
    for (size_t i = 0; i < histogram->NumBuckets(); ++i) {
      data.bucket_counts.push_back(histogram->BucketCount(i));
    }
    data.total_count = histogram->TotalCount();
    data.sum = histogram->Sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

#else  // KPEF_METRICS_DISABLED

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string&) {
  static Counter counter;
  return counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string&) {
  static Gauge gauge;
  return gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string&,
                                         std::vector<double>) {
  static Histogram histogram;
  return histogram;
}

void MetricsRegistry::ResetValues() {}

MetricsSnapshot MetricsRegistry::Snapshot() const { return {}; }

#endif  // KPEF_METRICS_DISABLED

}  // namespace kpef::obs

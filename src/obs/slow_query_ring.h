// Bounded ring of the most recent slow requests, behind /v1/debug/slow.
// Lock-light by construction: only requests that crossed a slow
// threshold ever touch the mutex (fast-path requests pay nothing), and a
// push is a couple of string moves into a pre-sized slot.

#ifndef KPEF_OBS_SLOW_QUERY_RING_H_
#define KPEF_OBS_SLOW_QUERY_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace kpef::obs {

struct SlowQueryRecord {
  std::string trace_id;
  /// Query text, truncated to kMaxQueryBytes.
  std::string query;
  int status = 0;
  double e2e_ms = 0.0;
  double queue_wait_ms = 0.0;
  double encode_ms = 0.0;
  double search_ms = 0.0;
  double ranking_ms = 0.0;
  size_t batch_size = 0;
  bool deadline_exceeded = false;
};

class SlowQueryRing {
 public:
  static constexpr size_t kMaxQueryBytes = 256;

  explicit SlowQueryRing(size_t capacity = 128);

  /// Records a slow request, evicting the oldest once full. Truncates
  /// record.query to kMaxQueryBytes.
  void Push(SlowQueryRecord record);

  /// Newest first.
  std::vector<SlowQueryRecord> SnapshotNewestFirst() const;

  size_t capacity() const { return capacity_; }
  uint64_t TotalPushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SlowQueryRecord> ring_;
  /// Next slot to overwrite once ring_ reached capacity.
  size_t next_ = 0;
  std::atomic<uint64_t> pushed_{0};
};

}  // namespace kpef::obs

#endif  // KPEF_OBS_SLOW_QUERY_RING_H_

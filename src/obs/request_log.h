// JSON-lines structured access log: one line per served request with the
// trace id, status, batching facts, and the encode/search/ranking latency
// split, so a grep over the log attributes any slow response without
// re-running it. The sink is pluggable (tests capture lines in memory;
// kpef_serve appends to a file or stdout).

#ifndef KPEF_OBS_REQUEST_LOG_H_
#define KPEF_OBS_REQUEST_LOG_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace kpef::obs {

/// One served request, as logged.
struct RequestLogRecord {
  std::string trace_id;
  int status = 0;
  size_t top_n = 0;
  size_t batch_size = 0;
  double e2e_ms = 0.0;
  double queue_wait_ms = 0.0;
  /// Stage split from QueryStats (0 when the engine was never reached).
  double encode_ms = 0.0;
  double search_ms = 0.0;
  double ranking_ms = 0.0;
  bool shed = false;
  bool deadline_exceeded = false;
  /// Head-sampling decision and whether the trace was retained.
  bool sampled = false;
  bool trace_kept = false;
};

/// Thread-safe JSON-lines writer. Each line is a self-contained object;
/// the first line (WriteHeader) identifies the process and build so a
/// rotated log segment is attributable on its own.
class RequestLog {
 public:
  using Sink = std::function<void(const std::string& line)>;

  /// Lines go to `sink` (already newline-terminated).
  explicit RequestLog(Sink sink) : sink_(std::move(sink)) {}
  ~RequestLog();

  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  /// Opens an append-mode file log ("-" = stdout). Null when the file
  /// cannot be opened.
  static std::unique_ptr<RequestLog> Open(const std::string& path);

  /// {"event":"start","service":...,"git":...,"build":...}
  void WriteHeader(const std::string& service);

  void Write(const RequestLogRecord& record);

  uint64_t lines_written() const { return lines_; }

 private:
  RequestLog() = default;

  void Emit(std::string line);

  std::mutex mutex_;
  Sink sink_;
  FILE* file_ = nullptr;
  bool owns_file_ = false;
  uint64_t lines_ = 0;
};

}  // namespace kpef::obs

#endif  // KPEF_OBS_REQUEST_LOG_H_

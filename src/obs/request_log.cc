#include "obs/request_log.h"

#include <cinttypes>
#include <ctime>

#include "common/build_info.h"

namespace kpef::obs {
namespace {

// Minimal JSON string escaper (obs/ cannot depend on serve/json_util).
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// ISO-8601 UTC with millisecond precision ("2026-08-08T12:34:56.789Z").
std::string NowIso8601() {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char buf[40];
  const size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf + n, sizeof(buf) - n, ".%03ldZ", ts.tv_nsec / 1000000);
  return buf;
}

void AppendField(std::string* out, const char* key, const std::string& value,
                 bool* first) {
  *out += *first ? "{\"" : ",\"";
  *first = false;
  *out += key;
  *out += "\":\"";
  AppendEscaped(out, value);
  *out += '"';
}

void AppendRawField(std::string* out, const char* key,
                    const std::string& raw, bool* first) {
  *out += *first ? "{\"" : ",\"";
  *first = false;
  *out += key;
  *out += "\":";
  *out += raw;
}

std::string FormatMs(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace

RequestLog::~RequestLog() {
  if (file_ != nullptr) {
    std::fflush(file_);
    if (owns_file_) std::fclose(file_);
  }
}

std::unique_ptr<RequestLog> RequestLog::Open(const std::string& path) {
  FILE* file = nullptr;
  bool owns = false;
  if (path == "-") {
    file = stdout;
  } else {
    file = std::fopen(path.c_str(), "a");
    if (file == nullptr) return nullptr;
    owns = true;
  }
  std::unique_ptr<RequestLog> log(new RequestLog());
  log->file_ = file;
  log->owns_file_ = owns;
  return log;
}

void RequestLog::WriteHeader(const std::string& service) {
  std::string line;
  bool first = true;
  AppendField(&line, "event", "start", &first);
  AppendField(&line, "ts", NowIso8601(), &first);
  AppendField(&line, "service", service, &first);
  AppendField(&line, "git", BuildGitHash(), &first);
  AppendField(&line, "build", BuildType(), &first);
  line += "}\n";
  Emit(std::move(line));
}

void RequestLog::Write(const RequestLogRecord& r) {
  std::string line;
  bool first = true;
  AppendField(&line, "ts", NowIso8601(), &first);
  AppendField(&line, "trace_id", r.trace_id, &first);
  AppendRawField(&line, "status", std::to_string(r.status), &first);
  AppendRawField(&line, "top_n", std::to_string(r.top_n), &first);
  AppendRawField(&line, "batch_size", std::to_string(r.batch_size), &first);
  AppendRawField(&line, "e2e_ms", FormatMs(r.e2e_ms), &first);
  AppendRawField(&line, "queue_wait_ms", FormatMs(r.queue_wait_ms), &first);
  AppendRawField(&line, "encode_ms", FormatMs(r.encode_ms), &first);
  AppendRawField(&line, "search_ms", FormatMs(r.search_ms), &first);
  AppendRawField(&line, "ranking_ms", FormatMs(r.ranking_ms), &first);
  AppendRawField(&line, "shed", r.shed ? "true" : "false", &first);
  AppendRawField(&line, "deadline_exceeded",
                 r.deadline_exceeded ? "true" : "false", &first);
  AppendRawField(&line, "sampled", r.sampled ? "true" : "false", &first);
  AppendRawField(&line, "trace_kept", r.trace_kept ? "true" : "false",
                 &first);
  line += "}\n";
  Emit(std::move(line));
}

void RequestLog::Emit(std::string line) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++lines_;
  if (sink_) {
    sink_(line);
    return;
  }
  if (file_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
  }
}

}  // namespace kpef::obs

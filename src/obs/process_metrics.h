// Process self-metrics, sampled on demand (the /metrics handler calls
// this right before snapshotting the registry): RSS, open fd count,
// uptime, and thread-pool occupancy.

#ifndef KPEF_OBS_PROCESS_METRICS_H_
#define KPEF_OBS_PROCESS_METRICS_H_

namespace kpef {
class ThreadPool;
}  // namespace kpef

namespace kpef::obs {

/// Reads /proc/self and sets the process.* gauges; with a non-null
/// `pool` also sets the pool.* occupancy gauges. Values are best-effort
/// (a gauge keeps its previous value when the proc read fails). No-op
/// under KPEF_METRICS_DISABLED.
void SampleProcessMetrics(ThreadPool* pool = nullptr);

}  // namespace kpef::obs

#endif  // KPEF_OBS_PROCESS_METRICS_H_

// Canonical metric names emitted by the pipeline, in one place so
// producers (src/*), consumers (CLI, benches), and tests agree, plus a
// warm-up that pre-registers them all — a run that exercised only part
// of the pipeline still exports the full schema (untouched instruments
// read zero).

#ifndef KPEF_OBS_PIPELINE_METRICS_H_
#define KPEF_OBS_PIPELINE_METRICS_H_

#include <string>

namespace kpef::obs {

// --- (k, P)-core search (Algorithm 1, §III-A).
inline constexpr char kKpcoreSearchesTotal[] = "kpcore.searches_total";
/// Candidate papers polled from the expansion queue.
inline constexpr char kKpcoreNodesVisited[] = "kpcore.nodes_visited";
/// Sub-k papers whose expansion Theorem 1 skipped.
inline constexpr char kKpcoreNodesPruned[] = "kpcore.nodes_pruned";
inline constexpr char kKpcoreEdgesScanned[] = "kpcore.edges_scanned";
/// Histogram: size of the delete queue D when peeling starts.
inline constexpr char kKpcoreDeleteQueueSize[] = "kpcore.delete_queue_size";

// --- Meta-path CSR projections (§III-A materialization).
inline constexpr char kProjectionBuildsTotal[] = "projection.builds_total";
/// Directed adjacency entries materialized across all builds.
inline constexpr char kProjectionEdges[] = "projection.edges";
/// Builds rejected by ProjectionOptions::max_bytes after the count pass.
inline constexpr char kProjectionBudgetRejections[] =
    "projection.budget_rejections_total";
/// Histogram: wall-clock per projection build (count + fill), ms.
inline constexpr char kProjectionBuildMs[] = "projection.build_ms";

// --- Training-data sampling (§III-B).
inline constexpr char kSamplingSeedsTotal[] = "sampling.seeds_total";
inline constexpr char kSamplingTriplesTotal[] = "sampling.triples_total";
inline constexpr char kSamplingNearNegativesTotal[] =
    "sampling.near_negatives_total";
inline constexpr char kSamplingRandomNegativesTotal[] =
    "sampling.random_negatives_total";
/// Seed papers processed by the parallel seed loop (0 when Generate ran
/// sequentially — single-thread pool or explicit num_threads = 1).
inline constexpr char kSamplingSeedsParallel[] = "sampling.seeds_parallel";

// --- Triplet fine-tuning (§III-C).
inline constexpr char kTrainerEpochsTotal[] = "trainer.epochs_total";
/// Gauge: mean triplet loss of the most recent epoch.
inline constexpr char kTrainerEpochLoss[] = "trainer.epoch_loss";
/// Gauge: training throughput of the most recent Train() call.
inline constexpr char kTrainerTriplesPerSec[] = "trainer.triples_per_sec";
/// Gauge: fraction of margin-active triples in the final epoch of the
/// most recent Train() call.
inline constexpr char kTrainerActiveTriples[] = "trainer.active_triples";
/// Gauge: worker threads the most recent Train() call used.
inline constexpr char kTrainerWorkers[] = "trainer.workers";

// --- PG-Index build (Algorithm 2, §IV-A).
inline constexpr char kPgindexBuildsTotal[] = "pgindex.builds_total";
inline constexpr char kPgindexNndescentIterations[] =
    "pgindex.nndescent_iterations";
inline constexpr char kPgindexBuildDistanceComputations[] =
    "pgindex.build_distance_computations";

// --- PG-Index greedy search (§IV-B).
inline constexpr char kPgindexSearchesTotal[] = "pgindex.searches_total";
/// SearchBatch calls (each also counts its queries in searches_total).
inline constexpr char kPgindexBatchSearchesTotal[] =
    "pgindex.batch_searches_total";
inline constexpr char kPgindexDistanceComputations[] =
    "pgindex.distance_computations";
/// SQ8 asymmetric distance evaluations (quantized traversal).
inline constexpr char kPgindexSq8DistanceComputations[] =
    "pgindex.sq8_distance_computations";
/// Candidates exact-reranked in fp32 after the SQ8 traversal.
inline constexpr char kPgindexRerankCandidates[] =
    "pgindex.rerank_candidates";
/// Batch-search hops executed while >= 2 queries of a lockstep group
/// were still live (the share of the traversal that ran interleaved).
inline constexpr char kPgindexBatchInterleavedHops[] =
    "pgindex.batch_interleaved_hops";
/// Histogram: adjacency expansions per search.
inline constexpr char kPgindexSearchHops[] = "pgindex.search_hops";
/// Histogram: result-pool occupancy when the search terminated.
inline constexpr char kPgindexCandidatePoolOccupancy[] =
    "pgindex.candidate_pool_occupancy";

// --- TA top-n ranking (§IV-C).
inline constexpr char kTaQueriesTotal[] = "ta.queries_total";
inline constexpr char kTaEntriesAccessed[] = "ta.entries_accessed";
inline constexpr char kTaEarlyTerminationTotal[] =
    "ta.early_termination_total";
/// Histogram: sorted-access rounds (depth reached) per TA run.
inline constexpr char kTaRounds[] = "ta.rounds";
inline constexpr char kRankingFullScansTotal[] = "ranking.full_scans_total";
inline constexpr char kRankingFullScanEntriesAccessed[] =
    "ranking.full_scan_entries_accessed";

// --- Shared executor (common/thread_pool.h).
/// Tasks skipped because their TaskGroup was cancelled (first task
/// exception, or an explicit Cancel()).
inline constexpr char kPoolTasksCancelled[] = "pool.tasks_cancelled";
/// Queued tasks a TaskGroup::Wait() ran on the waiting thread instead of
/// blocking (the "helping" joins that make nested ParallelFor safe).
inline constexpr char kPoolWaitHelpRuns[] = "pool.wait_help_runs";

// --- Engine facade.
inline constexpr char kEngineBuildsTotal[] = "engine.builds_total";
inline constexpr char kEngineQueriesTotal[] = "engine.queries_total";
/// Histogram: end-to-end FindExperts latency, milliseconds.
inline constexpr char kEngineQueryLatencyMs[] = "engine.query_latency_ms";
/// FindExpertsBatch calls (queries also count in queries_total).
inline constexpr char kEngineBatchQueriesTotal[] =
    "engine.batch_queries_total";
/// Histogram: queries per FindExpertsBatch call.
inline constexpr char kEngineBatchSize[] = "engine.batch_size";
/// Histogram: end-to-end FindExpertsBatch latency, milliseconds.
inline constexpr char kEngineBatchLatencyMs[] = "engine.batch_latency_ms";
/// Queries whose batch deadline fired before they completed (their
/// QueryStats carry deadline_exceeded = true and empty results).
inline constexpr char kEngineQueriesDeadlineExceeded[] =
    "engine.queries_deadline_exceeded";

// --- Online serving (src/serve/).
/// HTTP requests accepted by the service router (all endpoints).
inline constexpr char kServeRequests[] = "serve.requests";
/// Requests shed by admission control (bounded queue full -> 429).
inline constexpr char kServeShed[] = "serve.shed";
/// Requests that missed their per-request deadline (-> 504).
inline constexpr char kServeDeadlineExceeded[] = "serve.deadline_exceeded";
/// Malformed requests rejected by the HTTP or JSON layer (-> 400).
inline constexpr char kServeBadRequests[] = "serve.bad_requests";
/// Micro-batches dispatched to the engine.
inline constexpr char kServeBatches[] = "serve.batches";
/// Histogram: queries coalesced per dispatched micro-batch.
inline constexpr char kServeBatchSize[] = "serve.batch_size";
/// Histogram: time a query waited in the batcher queue, milliseconds.
inline constexpr char kServeQueueWaitMs[] = "serve.queue_wait_ms";
/// Histogram: end-to-end service latency (parse -> response), ms.
inline constexpr char kServeE2eMs[] = "serve.e2e_ms";
/// Requests that crossed a slow threshold (tail-kept trace + ring entry).
inline constexpr char kServeSlowQueries[] = "serve.slow_queries";
/// Request traces opened (mode sampled or always-on).
inline constexpr char kServeTracesStarted[] = "serve.traces_started";
/// Request traces retained for /v1/debug/trace (head + tail + always-on).
inline constexpr char kServeTracesRetained[] = "serve.traces_retained";
/// Requests whose n exceeded BatcherConfig::max_top_n and was clamped.
inline constexpr char kServeTopNClamped[] = "serve.top_n_clamped";
/// Successful /v1/admin/reload generation swaps.
inline constexpr char kServeReloads[] = "serve.reloads_total";
/// /v1/admin/reload attempts that failed (old generation kept serving).
inline constexpr char kServeReloadFailures[] = "serve.reload_failures_total";

// --- EngineGroup generation gauges (sampled on /metrics scrape).
/// Gauge: artifact generation currently serving (bumps on hot swap).
inline constexpr char kServeGeneration[] = "serve.generation";
/// Gauge: shards the serving generation scatters retrieval over.
inline constexpr char kServeShards[] = "serve.shards";
/// Gauge: queries answered by the serving generation since publish.
inline constexpr char kServeGenerationQueries[] =
    "serve.generation_queries";
/// Gauge: mean engine-batch latency of the serving generation, ms.
inline constexpr char kServeGenerationLatencyMsMean[] =
    "serve.generation_latency_ms_mean";
/// Gauge: wall-clock seconds the serving generation took to load.
inline constexpr char kServeGenerationLoadSeconds[] =
    "serve.generation_load_seconds";

// --- Streaming ingestion (src/ingest; DESIGN.md §16).
/// Ingest records (papers) applied to the staging state.
inline constexpr char kIngestRecords[] = "ingest.records";
/// Ingest batches applied (one WAL record each).
inline constexpr char kIngestBatches[] = "ingest.batches";
/// Records skipped as duplicates (same paper label already present).
inline constexpr char kIngestDuplicates[] = "ingest.duplicates";
/// Ingest batches rejected before any state change (bad schema, ...).
inline constexpr char kIngestRejected[] = "ingest.rejected";
/// Gauge: byte offset of the last durable WAL record.
inline constexpr char kIngestWalBytes[] = "ingest.wal_bytes";
/// Gauge: graph + index delta edges awaiting a merge into the base CSRs.
inline constexpr char kIngestPendingDeltaEdges[] =
    "ingest.pending_delta_edges";
/// Histogram: wall-clock milliseconds per delta merge (compaction).
inline constexpr char kIngestMergeMs[] = "ingest.merge_ms";
/// Histogram: wall-clock milliseconds per applied ingest batch.
inline constexpr char kIngestApplyMs[] = "ingest.apply_ms";

// --- Process self-metrics (gauges, sampled on /metrics scrape).
inline constexpr char kProcessRssBytes[] = "process.rss_bytes";
inline constexpr char kProcessOpenFds[] = "process.open_fds";
inline constexpr char kProcessUptimeSeconds[] = "process.uptime_seconds";
/// Gauge: tasks queued on the serving pool at scrape time.
inline constexpr char kPoolQueueDepth[] = "pool.queue_depth";
/// Gauge: pool workers inside a task body at scrape time.
inline constexpr char kPoolActiveWorkers[] = "pool.active_workers";
inline constexpr char kPoolThreads[] = "pool.threads";

/// Registers every canonical metric above (no-op values). Call before
/// exporting so dumps always contain the full schema. Latency-valued
/// serve/engine histograms are registered with LatencyHistogramBounds(),
/// so calling this before the first observation also fixes their bucket
/// layout (the creating registration wins).
void WarmPipelineMetrics();

/// One-line HELP text for a canonical metric name (nullptr if unknown);
/// the Prometheus exporter emits it as a `# HELP` line.
const char* PipelineMetricHelp(const std::string& name);

}  // namespace kpef::obs

#endif  // KPEF_OBS_PIPELINE_METRICS_H_

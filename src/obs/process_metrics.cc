#include "obs/process_metrics.h"

#include <chrono>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"

#ifndef KPEF_METRICS_DISABLED
#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#endif

namespace kpef::obs {

#ifndef KPEF_METRICS_DISABLED

namespace {

// Captured at first use; close enough to process start for an uptime
// gauge (kpef_obs initializes well before the server accepts traffic).
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

// Resident pages from /proc/self/statm (field 2), in bytes; 0 on error.
double ReadRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long size_pages = 0;
  long resident_pages = 0;
  const int matched = std::fscanf(f, "%ld %ld", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0.0;
  return static_cast<double>(resident_pages) *
         static_cast<double>(sysconf(_SC_PAGESIZE));
}

// Entries in /proc/self/fd (excluding . and ..); -1 on error.
double ReadOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1.0;
  int count = 0;
  while (const dirent* entry = readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  closedir(dir);
  // The traversal itself holds one descriptor open on the directory.
  return static_cast<double>(count > 0 ? count - 1 : count);
}

}  // namespace

void SampleProcessMetrics(ThreadPool* pool) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const double rss = ReadRssBytes();
  if (rss > 0.0) registry.GetGauge(kProcessRssBytes).Set(rss);
  const double fds = ReadOpenFds();
  if (fds >= 0.0) registry.GetGauge(kProcessOpenFds).Set(fds);
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_process_start)
          .count();
  registry.GetGauge(kProcessUptimeSeconds).Set(uptime);
  if (pool != nullptr) {
    registry.GetGauge(kPoolQueueDepth)
        .Set(static_cast<double>(pool->QueueDepth()));
    registry.GetGauge(kPoolActiveWorkers)
        .Set(static_cast<double>(pool->ActiveWorkers()));
    registry.GetGauge(kPoolThreads)
        .Set(static_cast<double>(pool->num_threads()));
  }
}

#else  // KPEF_METRICS_DISABLED

void SampleProcessMetrics(ThreadPool* pool) { (void)pool; }

#endif  // KPEF_METRICS_DISABLED

}  // namespace kpef::obs

#include "embed/vector_ops.h"

#include <cassert>
#include <cmath>

namespace kpef {

float Dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(sum);
}

float SquaredL2Distance(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return static_cast<float>(sum);
}

float L2Distance(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(SquaredL2Distance(a, b));
}

float L2Norm(std::span<const float> a) {
  double sum = 0.0;
  for (float v : a) sum += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(sum));
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(float alpha, std::span<float> x) {
  for (float& v : x) v *= alpha;
}

void NormalizeL2(std::span<float> x) {
  const float norm = L2Norm(x);
  if (norm > 0.0f) Scale(1.0f / norm, x);
}

float CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const float na = L2Norm(a);
  const float nb = L2Norm(b);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return Dot(a, b) / (na * nb);
}

}  // namespace kpef

#include "embed/vector_ops.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <string_view>

namespace kpef {
namespace {

// --- Scalar baseline: 8 independent lanes, fixed reduction order (see
// the contract in vector_ops.h). The lane-parallel body auto-vectorizes
// to SSE on the x86-64 baseline without changing results, because every
// lane is an independent float accumulator.

inline float ReduceLanes(const float* l) {
  // Mirrors the AVX2 horizontal reduction: lo+hi halves, movehl, add.
  const float m0 = l[0] + l[4];
  const float m1 = l[1] + l[5];
  const float m2 = l[2] + l[6];
  const float m3 = l[3] + l[7];
  return (m0 + m2) + (m1 + m3);
}

float DotScalar(const float* a, const float* b, size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t j = 0; j < 8; ++j) lanes[j] += a[i + j] * b[i + j];
  }
  for (size_t i = n8; i < n; ++i) lanes[i - n8] += a[i] * b[i];
  return ReduceLanes(lanes);
}

float SquaredL2Scalar(const float* a, const float* b, size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const float d = a[i + j] - b[i + j];
      lanes[j] += d * d;
    }
  }
  for (size_t i = n8; i < n; ++i) {
    const float d = a[i] - b[i];
    lanes[i - n8] += d * d;
  }
  return ReduceLanes(lanes);
}

void AxpyScalar(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(float alpha, float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

float Sq8AsymL2Scalar(const float* qt, const float* step,
                      const uint8_t* codes, size_t n) {
  // Sixteen virtual lanes as two 8-lane chains (element i goes to
  // chain (i % 16) / 8, lane i % 8), folded chain0 + chain1 per lane
  // before the standard reduction — see the sq8 accumulation contract
  // in vector_ops.h. Unlike the fp32 kernels, the uint8 -> float
  // conversion feeds the accumulate, so a single 8-lane chain is
  // latency-bound; two chains let consecutive 8-groups overlap.
  float chain0[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  float chain1[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const size_t n16 = n - n % 16;
  for (size_t i = 0; i < n16; i += 16) {
    for (size_t j = 0; j < 8; ++j) {
      const float d =
          qt[i + j] - step[i + j] * static_cast<float>(codes[i + j]);
      chain0[j] += d * d;
    }
    for (size_t j = 0; j < 8; ++j) {
      const float d =
          qt[i + 8 + j] - step[i + 8 + j] * static_cast<float>(codes[i + 8 + j]);
      chain1[j] += d * d;
    }
  }
  for (size_t i = n16; i < n; ++i) {
    const size_t off = i - n16;
    const float d = qt[i] - step[i] * static_cast<float>(codes[i]);
    (off < 8 ? chain0[off] : chain1[off - 8]) += d * d;
  }
  float lanes[8];
  for (size_t j = 0; j < 8; ++j) lanes[j] = chain0[j] + chain1[j];
  return ReduceLanes(lanes);
}

void Sq8AsymL2x4Scalar(const float* const qts[4], const float* step,
                       const uint8_t* codes, size_t n, float out[4]) {
  // The scalar baseline has no shared-decode advantage to exploit; four
  // independent calls are already the contract's exact result.
  for (int k = 0; k < 4; ++k) out[k] = Sq8AsymL2Scalar(qts[k], step, codes, n);
}

// --- Trainer kernels: purely elementwise (no accumulator lanes), so the
// scalar and AVX2 paths are bit-identical as long as neither contracts
// mul+add into FMA (this TU targets baseline x86-64, which has no FMA;
// the AVX2 TU is compiled with -ffp-contract=off).

void Axpy2Scalar(float a, const float* x1, float b, const float* x2, float* y,
                 size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a * x1[i] + b * x2[i];
}

void TripletGradScalar(const float* s, const float* p, const float* n_,
                       float inv_dpos, float inv_dneg, float* gs, float* gp,
                       float* gn, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float up = (s[i] - p[i]) * inv_dpos;
    const float un = (s[i] - n_[i]) * inv_dneg;
    gs[i] = up - un;
    gp[i] = -up;
    gn[i] = un;
  }
}

void AdamUpdateScalar(float* params, const float* grads, float* m, float* v,
                      float beta1, float beta2, float alpha, float eps,
                      size_t n) {
  const float omb1 = 1.0f - beta1;
  const float omb2 = 1.0f - beta2;
  for (size_t i = 0; i < n; ++i) {
    const float g = grads[i];
    const float mi = beta1 * m[i] + omb1 * g;
    const float vi = beta2 * v[i] + omb2 * (g * g);
    m[i] = mi;
    v[i] = vi;
    params[i] -= (alpha * mi) / (std::sqrt(vi) + eps);
  }
}

constexpr DistanceKernel kScalarKernel = {
    "scalar",        DotScalar,         SquaredL2Scalar,
    AxpyScalar,      ScaleScalar,       Sq8AsymL2Scalar,
    Sq8AsymL2x4Scalar, Axpy2Scalar,     TripletGradScalar,
    AdamUpdateScalar};

}  // namespace

const DistanceKernel& ScalarKernel() { return kScalarKernel; }

#if defined(KPEF_HAVE_AVX2)
// Implemented in vector_ops_avx2.cc (compiled with -mavx2).
namespace internal {
const DistanceKernel& Avx2Kernel();
}

const DistanceKernel* Avx2KernelOrNull() {
#if defined(__GNUC__) || defined(__clang__)
  static const bool supported = __builtin_cpu_supports("avx2");
#else
  static const bool supported = false;
#endif
  return supported ? &internal::Avx2Kernel() : nullptr;
}
#else
const DistanceKernel* Avx2KernelOrNull() { return nullptr; }
#endif

const DistanceKernel& ActiveKernel() {
  static const DistanceKernel* const kernel = [] {
    const char* env = std::getenv("KPEF_SIMD");
    if (env != nullptr && std::string_view(env) == "scalar") {
      return &ScalarKernel();
    }
    if (const DistanceKernel* avx2 = Avx2KernelOrNull()) return avx2;
    return &ScalarKernel();
  }();
  return *kernel;
}

float Dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  return ActiveKernel().dot(a.data(), b.data(), a.size());
}

float SquaredL2Distance(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  return ActiveKernel().squared_l2(a.data(), b.data(), a.size());
}

float Sq8AsymmetricSquaredL2(std::span<const float> qt,
                             std::span<const float> step,
                             std::span<const uint8_t> codes) {
  assert(qt.size() == step.size() && qt.size() == codes.size());
  return ActiveKernel().sq8_asym_l2(qt.data(), step.data(), codes.data(),
                                    qt.size());
}

float L2Distance(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(SquaredL2Distance(a, b));
}

float L2Norm(std::span<const float> a) {
  return std::sqrt(ActiveKernel().dot(a.data(), a.data(), a.size()));
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  ActiveKernel().axpy(alpha, x.data(), y.data(), x.size());
}

void Scale(float alpha, std::span<float> x) {
  ActiveKernel().scale(alpha, x.data(), x.size());
}

void NormalizeL2(std::span<float> x) {
  const float norm = L2Norm(x);
  if (norm > 0.0f) Scale(1.0f / norm, x);
}

float CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const float na = L2Norm(a);
  const float nb = L2Norm(b);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return Dot(a, b) / (na * nb);
}

}  // namespace kpef

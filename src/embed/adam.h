// Adam optimizer [33] with dense and sparse-row update paths.

#ifndef KPEF_EMBED_ADAM_H_
#define KPEF_EMBED_ADAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "embed/matrix.h"

namespace kpef {

/// Adam hyperparameters. β1/β2 follow the paper (§III-C, citing BERT's
/// recipe); the default learning rate is scaled up from the paper's 2e-5
/// because our encoder is orders of magnitude smaller than SciBERT.
struct AdamConfig {
  double learning_rate = 2e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Adam state for one flat parameter block of fixed size.
///
/// Usage per optimizer step: call BeginStep() once (advances the bias-
/// correction step t), then UpdateDense / UpdateRow for the block's
/// gradients. Sparse rows only advance their own moments, so untouched
/// rows pay no cost (lazy Adam).
class Adam {
 public:
  Adam(size_t num_params, AdamConfig config);

  void BeginStep() { ++step_; }

  /// Dense update of params[offset .. offset+grads.size()).
  void UpdateDense(std::span<float> params, std::span<const float> grads,
                   size_t offset = 0);

  /// Sparse update of one row of a parameter matrix whose storage begins
  /// at `block_offset` within this optimizer's state.
  void UpdateRow(Matrix& params, size_t row, std::span<const float> grads,
                 size_t block_offset);

  int64_t step() const { return step_; }
  const AdamConfig& config() const { return config_; }

 private:
  void UpdateSlice(float* params, const float* grads, size_t count,
                   size_t state_offset);

  AdamConfig config_;
  std::vector<float> m_;
  std::vector<float> v_;
  int64_t step_ = 0;
};

}  // namespace kpef

#endif  // KPEF_EMBED_ADAM_H_

// Adam optimizer [33] with dense and sparse-row update paths.
//
// The moment/parameter update runs entirely in float32 through the
// DistanceKernel::adam_update entry (embed/vector_ops.h), so the scalar
// and AVX2 paths are bit-identical and the whole optimizer vectorizes.
// Only the bias-corrected step size is computed in double (once per
// step) before being folded to float.
//
// ## Thread safety (HogWild)
//
// The step counter is atomic, so concurrent workers may BeginStep() and
// issue UpdateDense/UpdateRow against the *same* Adam instance without
// locks. The float moment and parameter writes themselves are then
// intentionally racy — the lock-free HogWild contract of the triplet
// trainer (DESIGN.md §15): races touch only m/v cells and parameter
// floats, never sizes or pointers, and a lost update is equivalent to a
// slightly delayed gradient. Deterministic callers simply keep all
// updates on one thread, as before.

#ifndef KPEF_EMBED_ADAM_H_
#define KPEF_EMBED_ADAM_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "embed/matrix.h"
#include "embed/vector_ops.h"

namespace kpef {

/// Adam hyperparameters. β1/β2 follow the paper (§III-C, citing BERT's
/// recipe); the default learning rate is scaled up from the paper's 2e-5
/// because our encoder is orders of magnitude smaller than SciBERT.
struct AdamConfig {
  double learning_rate = 2e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Adam state for one flat parameter block of fixed size.
///
/// Usage per optimizer step: call BeginStep() once (advances the bias-
/// correction step t), then UpdateDense / UpdateRow for the block's
/// gradients. Sparse rows only advance their own moments, so untouched
/// rows pay no cost (lazy Adam).
class Adam {
 public:
  /// `kernel` routes the fused moment/parameter update (nullptr =
  /// ActiveKernel()); benches pass an explicit kernel to time both
  /// paths in one process. Scalar and AVX2 agree bitwise.
  Adam(size_t num_params, AdamConfig config,
       const DistanceKernel* kernel = nullptr);

  /// Advances the bias-correction step and returns its new value.
  /// Atomic: HogWild workers each begin their own steps against the
  /// shared moment arrays.
  int64_t BeginStep() {
    return step_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Dense update of params[offset .. offset+grads.size()).
  void UpdateDense(std::span<float> params, std::span<const float> grads,
                   size_t offset = 0);

  /// Sparse update of one row of a parameter matrix whose storage begins
  /// at `block_offset` within this optimizer's state.
  void UpdateRow(Matrix& params, size_t row, std::span<const float> grads,
                 size_t block_offset);

  int64_t step() const { return step_.load(std::memory_order_relaxed); }
  const AdamConfig& config() const { return config_; }

  /// Bias-corrected step size for step `t`, folded to float:
  /// lr * sqrt(1 - b2^t) / (1 - b1^t).
  float StepSize(int64_t t) const;

 private:
  void UpdateSlice(float* params, const float* grads, size_t count,
                   size_t state_offset);

  AdamConfig config_;
  const DistanceKernel* kernel_;
  std::vector<float> m_;
  std::vector<float> v_;
  std::atomic<int64_t> step_{0};
};

}  // namespace kpef

#endif  // KPEF_EMBED_ADAM_H_

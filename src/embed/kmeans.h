// Lloyd's k-means over dense row vectors (used by the IDNE baseline's
// topic discovery and available as a general utility).

#ifndef KPEF_EMBED_KMEANS_H_
#define KPEF_EMBED_KMEANS_H_

#include <cstdint>
#include <vector>

#include "embed/matrix.h"

namespace kpef {

struct KMeansConfig {
  size_t num_clusters = 16;
  size_t max_iterations = 25;
  uint64_t seed = 33;
};

struct KMeansResult {
  Matrix centroids;                  // num_clusters x dim
  std::vector<int32_t> assignment;   // row -> cluster
  size_t iterations_run = 0;
  double inertia = 0.0;              // sum of squared distances
};

/// Clusters the rows of `points`. Initialization is k-means++ style
/// (distance-weighted seeding); empty clusters are reseeded from the
/// farthest point.
KMeansResult RunKMeans(const Matrix& points, const KMeansConfig& config);

}  // namespace kpef

#endif  // KPEF_EMBED_KMEANS_H_

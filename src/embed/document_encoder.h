// Trainable document encoder (§III-C, Figure 4).
//
// Substitutes the paper's SciBERT encoder with a compact differentiable
// model: token-embedding lookup -> mean/max pooling -> linear projection.
// The token table is initialized from GloVe-style pre-training (the
// "pre-trained Θ_B") and the whole model is fine-tuned by the triplet loss.

#ifndef KPEF_EMBED_DOCUMENT_ENCODER_H_
#define KPEF_EMBED_DOCUMENT_ENCODER_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "embed/matrix.h"
#include "text/corpus.h"

namespace kpef {

/// Pooling strategy Φ_P of Eq. 2. Mean pooling is the paper's default;
/// weighted pooling downweights frequent background tokens (our stand-in
/// for the attention a contextual encoder like SciBERT applies).
enum class Pooling {
  kMean,
  kMax,
  /// Weighted mean with fixed per-token weights (SetTokenWeights).
  kWeightedMean,
};

struct EncoderConfig {
  /// Embedding dimensionality d.
  size_t dim = 64;
  Pooling pooling = Pooling::kMean;
  /// L2-normalize the output vector. Keeps the L2-distance retrieval of
  /// §IV equivalent to cosine ranking and makes the triplet margin scale-
  /// free (documents of different lengths otherwise differ mostly in
  /// norm). Gradients flow through the normalization.
  bool normalize_output = true;
};

/// Accumulated parameter gradients for one (mini-)batch.
///
/// The projection gradients are dense; token gradients are kept sparse
/// because a batch touches only a small slice of the vocabulary.
struct EncoderGradients {
  Matrix d_projection;        // dim x dim
  std::vector<float> d_bias;  // dim
  std::unordered_map<TokenId, std::vector<float>> d_tokens;

  void Reset(size_t dim);

  /// Backward() scratch, reused across calls so the trainer's hot loop
  /// allocates nothing per triple. Not part of the accumulated result.
  std::vector<float> scratch_grad_projected;
  std::vector<float> scratch_grad_pooled;
};

struct DistanceKernel;

/// The encoder model. Parameters: token table E (V x d), projection
/// W (d x d), bias b (d). Encode(tokens) = W * pool(E[tokens]) + b.
class DocumentEncoder {
 public:
  DocumentEncoder(size_t vocab_size, EncoderConfig config);

  /// Copies pre-trained token embeddings (must be vocab_size x dim).
  void SetTokenEmbeddings(const Matrix& pretrained);

  /// Random-initializes the token table (used when training from scratch
  /// in tests); the projection always starts near identity so that the
  /// initial encoder approximates plain pooled token embeddings.
  void InitializeRandomTokens(Rng& rng, float scale = 0.1f);

  /// Sets the fixed per-token pooling weights used by
  /// Pooling::kWeightedMean (size must equal vocab_size; weights >= 0).
  void SetTokenWeights(std::vector<float> weights);

  /// Encodes a token stream into a d-dimensional vector.
  std::vector<float> Encode(std::span<const TokenId> tokens) const;

  /// Encodes every document of the corpus; row i is document i. This
  /// produces the embedding set E of §III-C.
  Matrix EncodeCorpus(const Corpus& corpus) const;

  /// Forward pass state kept for backpropagation.
  struct ForwardCache {
    std::vector<TokenId> tokens;
    std::vector<float> pooled;      // h = pool(E[tokens])
    std::vector<float> projected;   // v = W h + b
    std::vector<float> output;      // u = v/||v|| (or v when unnormalized)
    float norm = 1.0f;              // ||v||
    std::vector<int32_t> argmax;    // max pooling: winning token slot per dim
  };

  ForwardCache Forward(std::span<const TokenId> tokens) const;

  /// Forward() into a caller-owned cache, reusing its buffers — the
  /// trainer's per-worker workspaces make the hot loop allocation-free.
  /// `kernel` routes the pooling/matmul math (nullptr = ActiveKernel());
  /// scalar and AVX2 agree bitwise, so the choice only changes speed.
  void ForwardInto(std::span<const TokenId> tokens, ForwardCache& cache,
                   const DistanceKernel* kernel = nullptr) const;

  /// Accumulates dL/dW, dL/db, dL/dE into `grads` given dL/dv. Uses the
  /// scratch buffers inside `grads`; `kernel` as in ForwardInto.
  void Backward(const ForwardCache& cache, std::span<const float> grad_output,
                EncoderGradients& grads,
                const DistanceKernel* kernel = nullptr) const;

  size_t dim() const { return config_.dim; }
  size_t vocab_size() const { return token_embeddings_.rows(); }
  const EncoderConfig& config() const { return config_; }

  Matrix& token_embeddings() { return token_embeddings_; }
  const Matrix& token_embeddings() const { return token_embeddings_; }
  Matrix& projection() { return projection_; }
  const Matrix& projection() const { return projection_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& bias() const { return bias_; }
  /// Pooling weights (empty unless SetTokenWeights was called).
  const std::vector<float>& token_weights() const { return token_weights_; }

 private:
  void Pool(std::span<const TokenId> tokens, std::vector<float>& pooled,
            std::vector<int32_t>* argmax, const DistanceKernel& kernel) const;

  EncoderConfig config_;
  Matrix token_embeddings_;  // V x d
  Matrix projection_;        // d x d
  std::vector<float> bias_;  // d
  std::vector<float> token_weights_;  // V (kWeightedMean only)
};

}  // namespace kpef

#endif  // KPEF_EMBED_DOCUMENT_ENCODER_H_

// Binary persistence for embedding artifacts: matrices (token tables,
// paper embeddings E) and the fine-tuned document encoder.
//
// The paper's pipeline builds embeddings and the PG-Index offline and
// serves queries online; these helpers let the offline artifacts be
// written to disk and reloaded by a serving process. Format is
// host-endian binary with magic headers (not a cross-architecture
// interchange format).

#ifndef KPEF_EMBED_MODEL_IO_H_
#define KPEF_EMBED_MODEL_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "embed/document_encoder.h"
#include "embed/matrix.h"

namespace kpef {

/// Writes a matrix (magic, rows, cols, row-major float data).
Status SaveMatrix(const Matrix& matrix, const std::string& path);
Status SaveMatrix(const Matrix& matrix, std::ostream& out);

/// Reads a matrix written by SaveMatrix.
StatusOr<Matrix> LoadMatrix(const std::string& path);
StatusOr<Matrix> LoadMatrix(std::istream& in);

/// Writes the encoder: config (dim, pooling, normalization), token table,
/// projection, bias, and optional pooling weights.
Status SaveEncoder(const DocumentEncoder& encoder, const std::string& path);
Status SaveEncoder(const DocumentEncoder& encoder, std::ostream& out);

/// Reads an encoder written by SaveEncoder.
StatusOr<DocumentEncoder> LoadEncoder(const std::string& path);
StatusOr<DocumentEncoder> LoadEncoder(std::istream& in);

}  // namespace kpef

#endif  // KPEF_EMBED_MODEL_IO_H_

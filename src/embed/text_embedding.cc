#include "embed/text_embedding.h"

#include <algorithm>

#include "embed/vector_ops.h"

namespace kpef {

std::vector<float> MeanTokenEmbedding(const Matrix& token_embeddings,
                                      std::span<const TokenId> tokens) {
  const size_t d = token_embeddings.cols();
  std::vector<float> out(d, 0.0f);
  if (tokens.empty()) return out;
  for (TokenId t : tokens) {
    auto row = token_embeddings.Row(static_cast<size_t>(t));
    for (size_t k = 0; k < d; ++k) out[k] += row[k];
  }
  const float inv = 1.0f / static_cast<float>(tokens.size());
  for (float& v : out) v *= inv;
  return out;
}

std::vector<float> SifEmbedding(const Matrix& token_embeddings,
                                const Vocabulary& vocabulary,
                                size_t num_documents,
                                std::span<const TokenId> tokens, double a) {
  const size_t d = token_embeddings.cols();
  std::vector<float> out(d, 0.0f);
  if (tokens.empty() || num_documents == 0) return out;
  double weight_total = 0.0;
  for (TokenId t : tokens) {
    const double p =
        static_cast<double>(vocabulary.DocumentFrequency(t)) /
        static_cast<double>(num_documents);
    const float w = static_cast<float>(a / (a + p));
    weight_total += w;
    auto row = token_embeddings.Row(static_cast<size_t>(t));
    for (size_t k = 0; k < d; ++k) out[k] += w * row[k];
  }
  if (weight_total > 0.0) {
    const float inv = static_cast<float>(1.0 / weight_total);
    for (float& v : out) v *= inv;
  }
  NormalizeL2(out);
  return out;
}

Matrix MeanEmbedAllDocuments(const Matrix& token_embeddings,
                             const Corpus& corpus) {
  Matrix out(corpus.NumDocuments(), token_embeddings.cols());
  for (size_t doc = 0; doc < corpus.NumDocuments(); ++doc) {
    const std::vector<float> v =
        MeanTokenEmbedding(token_embeddings, corpus.Document(doc));
    std::copy(v.begin(), v.end(), out.Row(doc).begin());
  }
  return out;
}

}  // namespace kpef

// Dense text-feature helpers: plain and frequency-weighted (SIF)
// sentence embeddings over a token-embedding table.

#ifndef KPEF_EMBED_TEXT_EMBEDDING_H_
#define KPEF_EMBED_TEXT_EMBEDDING_H_

#include <span>
#include <vector>

#include "embed/matrix.h"
#include "text/corpus.h"

namespace kpef {

/// Mean of the token embeddings of `tokens` (zero vector when empty).
std::vector<float> MeanTokenEmbedding(const Matrix& token_embeddings,
                                      std::span<const TokenId> tokens);

/// Smooth-inverse-frequency weighted mean (Arora et al. style):
/// weight(t) = a / (a + p(t)) with p(t) the corpus token probability.
/// Result is L2-normalized. Used by the SBERT-like baseline as a stronger
/// text-only sentence embedding than the plain average.
std::vector<float> SifEmbedding(const Matrix& token_embeddings,
                                const Vocabulary& vocabulary,
                                size_t num_documents,
                                std::span<const TokenId> tokens,
                                double a = 1e-3);

/// Embeds every corpus document with MeanTokenEmbedding.
Matrix MeanEmbedAllDocuments(const Matrix& token_embeddings,
                             const Corpus& corpus);

}  // namespace kpef

#endif  // KPEF_EMBED_TEXT_EMBEDDING_H_

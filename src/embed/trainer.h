// Fine-tuning loop of §III-C: minimizes the triplet loss over the sampled
// triples with Adam, updating the encoder's token table and projection.

#ifndef KPEF_EMBED_TRAINER_H_
#define KPEF_EMBED_TRAINER_H_

#include <cstdint>
#include <vector>

#include "embed/adam.h"
#include "embed/document_encoder.h"
#include "embed/triplet.h"
#include "text/corpus.h"

namespace kpef {

/// Training hyperparameters. Defaults follow §VI-A: margin c = 1,
/// 4 epochs, batch size 64 used for gradient accumulation.
struct TrainerConfig {
  size_t epochs = 4;
  size_t batch_size = 64;
  float margin = 1.0f;
  AdamConfig adam;
  uint64_t seed = 7;
  /// Also fine-tune the token embedding table (Θ_B); disabling restricts
  /// training to the projection head.
  bool train_token_embeddings = true;
};

/// Outcome of a training run.
struct TrainStats {
  /// Mean triplet loss per epoch, in order.
  std::vector<double> epoch_loss;
  /// Fraction of margin-active triples in the final epoch.
  double final_active_fraction = 0.0;
  size_t num_triples = 0;
  double train_seconds = 0.0;
};

/// Runs triplet fine-tuning in place on `encoder`.
class TripletTrainer {
 public:
  TripletTrainer(DocumentEncoder* encoder, const Corpus* corpus)
      : encoder_(encoder), corpus_(corpus) {}

  TrainStats Train(const std::vector<Triple>& triples,
                   const TrainerConfig& config);

 private:
  DocumentEncoder* encoder_;
  const Corpus* corpus_;
};

}  // namespace kpef

#endif  // KPEF_EMBED_TRAINER_H_

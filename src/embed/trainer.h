// Fine-tuning loop of §III-C: minimizes the triplet loss over the sampled
// triples with Adam, updating the encoder's token table and projection.
//
// The trainer runs in one of two parallel schedules (DESIGN.md §15):
//
//  - **Deterministic** (TrainerConfig::deterministic, or whenever only one
//    worker is resolved): each mini-batch is split into fixed micro-chunks
//    of kDeterministicChunk triples; workers fill disjoint per-chunk
//    gradient buffers, which are then merged *serially in chunk order*
//    and applied by a single Adam step. Chunk boundaries and the merge
//    order depend only on the shuffle (seeded) — never on the thread
//    count — so the trained parameters are byte-identical for any
//    `num_threads`, including 1.
//
//  - **HogWild** (the default for num_threads > 1): the shuffled triple
//    stream is sliced across workers that read and write the *shared*
//    encoder parameters and Adam moments without locks. Races lose or
//    reorder a few component updates, which SGD absorbs as slightly stale
//    gradients; final eval metrics match the serial trainer within noise
//    while throughput scales with cores. Not bitwise reproducible.
//
// Under ThreadSanitizer builds the HogWild schedule is replaced by the
// deterministic one: the races are intentional and benign on x86 (aligned
// 4-byte float loads/stores), but TSan has no way to express that.

#ifndef KPEF_EMBED_TRAINER_H_
#define KPEF_EMBED_TRAINER_H_

#include <cstdint>
#include <vector>

#include "embed/adam.h"
#include "embed/document_encoder.h"
#include "embed/triplet.h"
#include "text/corpus.h"

namespace kpef {

struct DistanceKernel;

/// Training hyperparameters. Defaults follow §VI-A: margin c = 1,
/// 4 epochs, batch size 64 used for gradient accumulation.
struct TrainerConfig {
  size_t epochs = 4;
  size_t batch_size = 64;
  float margin = 1.0f;
  AdamConfig adam;
  uint64_t seed = 7;
  /// Also fine-tune the token embedding table (Θ_B); disabling restricts
  /// training to the projection head.
  bool train_token_embeddings = true;
  /// Worker threads for the training loop (0 = hardware concurrency).
  /// 1 keeps the classic serial loop (trivially deterministic).
  size_t num_threads = 1;
  /// Force the deterministic chunked schedule even with multiple
  /// workers: byte-identical parameters for any thread count, at the
  /// cost of a merge barrier per mini-batch. Off = HogWild (fastest).
  bool deterministic = false;
  /// Compute kernel for forward/backward/Adam math (nullptr =
  /// ActiveKernel()). Scalar and AVX2 agree bitwise on every kernel the
  /// trainer uses, so this only changes speed; benches pin it to time
  /// one path end-to-end.
  const DistanceKernel* kernel = nullptr;
};

/// Outcome of a training run.
struct TrainStats {
  /// Mean triplet loss per epoch, in order.
  std::vector<double> epoch_loss;
  /// Fraction of margin-active triples in the final epoch.
  double final_active_fraction = 0.0;
  size_t num_triples = 0;
  double train_seconds = 0.0;
  /// Triples processed per second across all epochs.
  double triples_per_sec = 0.0;
  /// Worker threads the run actually used.
  size_t workers = 1;
  /// True when the run used the deterministic schedule (serial runs
  /// always do).
  bool deterministic = true;
};

/// Runs triplet fine-tuning in place on `encoder`.
class TripletTrainer {
 public:
  /// Micro-chunk width of the deterministic schedule. Fixed so that the
  /// chunk decomposition of a batch is a property of the shuffle alone.
  static constexpr size_t kDeterministicChunk = 8;

  TripletTrainer(DocumentEncoder* encoder, const Corpus* corpus)
      : encoder_(encoder), corpus_(corpus) {}

  TrainStats Train(const std::vector<Triple>& triples,
                   const TrainerConfig& config);

 private:
  DocumentEncoder* encoder_;
  const Corpus* corpus_;
};

}  // namespace kpef

#endif  // KPEF_EMBED_TRAINER_H_

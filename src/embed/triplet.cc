#include "embed/triplet.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "embed/vector_ops.h"

namespace kpef {

void ComputeTripletLossInto(std::span<const float> seed,
                            std::span<const float> positive,
                            std::span<const float> negative, float margin,
                            float epsilon, const DistanceKernel& kernel,
                            TripletLossResult& result) {
  KPEF_CHECK(seed.size() == positive.size());
  KPEF_CHECK(seed.size() == negative.size());
  const size_t d = seed.size();

  const float d_pos = std::max(
      std::sqrt(kernel.squared_l2(seed.data(), positive.data(), d)), epsilon);
  const float d_neg = std::max(
      std::sqrt(kernel.squared_l2(seed.data(), negative.data(), d)), epsilon);
  const float raw = d_pos - d_neg + margin;
  if (raw <= 0.0f) {
    result.loss = 0.0f;
    result.active = false;
    return;
  }
  result.loss = raw;
  result.active = true;
  result.grad_seed.resize(d);
  result.grad_positive.resize(d);
  result.grad_negative.resize(d);
  // d||a-b|| / da = (a-b)/||a-b||, applied as one fused reciprocal-scaled
  // pass over all three gradients.
  kernel.triplet_grad(seed.data(), positive.data(), negative.data(),
                      1.0f / d_pos, 1.0f / d_neg, result.grad_seed.data(),
                      result.grad_positive.data(), result.grad_negative.data(),
                      d);
}

TripletLossResult ComputeTripletLoss(std::span<const float> seed,
                                     std::span<const float> positive,
                                     std::span<const float> negative,
                                     float margin, float epsilon) {
  TripletLossResult result;
  ComputeTripletLossInto(seed, positive, negative, margin, epsilon,
                         ActiveKernel(), result);
  return result;
}

}  // namespace kpef

#include "embed/triplet.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "embed/vector_ops.h"

namespace kpef {

TripletLossResult ComputeTripletLoss(std::span<const float> seed,
                                     std::span<const float> positive,
                                     std::span<const float> negative,
                                     float margin, float epsilon) {
  KPEF_CHECK(seed.size() == positive.size());
  KPEF_CHECK(seed.size() == negative.size());
  const size_t d = seed.size();
  TripletLossResult result;

  const float d_pos = std::max(L2Distance(seed, positive), epsilon);
  const float d_neg = std::max(L2Distance(seed, negative), epsilon);
  const float raw = d_pos - d_neg + margin;
  if (raw <= 0.0f) {
    result.loss = 0.0f;
    result.active = false;
    return result;
  }
  result.loss = raw;
  result.active = true;
  result.grad_seed.assign(d, 0.0f);
  result.grad_positive.assign(d, 0.0f);
  result.grad_negative.assign(d, 0.0f);
  // d||a-b|| / da = (a-b)/||a-b||.
  for (size_t k = 0; k < d; ++k) {
    const float u_pos = (seed[k] - positive[k]) / d_pos;
    const float u_neg = (seed[k] - negative[k]) / d_neg;
    result.grad_seed[k] = u_pos - u_neg;
    result.grad_positive[k] = -u_pos;
    result.grad_negative[k] = u_neg;
  }
  return result;
}

}  // namespace kpef

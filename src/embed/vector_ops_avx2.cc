// AVX2 implementations of the DistanceKernel. This translation unit is
// the only one compiled with -mavx2; callers must go through
// Avx2KernelOrNull(), which checks CPUID before handing the pointers
// out. Compiled with -ffp-contract=off so mul+add never fuses into FMA:
// per the contract in vector_ops.h, each lane here performs the same
// float operations as the scalar baseline's lane, keeping the two paths
// bit-identical.

#if defined(KPEF_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "embed/vector_ops.h"

namespace kpef {
namespace {

inline float ReduceAvx2(__m256 acc) {
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  const __m128 m = _mm_add_ps(lo, hi);                 // lanes j + j+4
  const __m128 t = _mm_add_ps(m, _mm_movehl_ps(m, m)); // (0+4)+(2+6), (1+5)+(3+7)
  return _mm_cvtss_f32(_mm_add_ss(t, _mm_shuffle_ps(t, t, 0x55)));
}

float DotAvx2(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
  }
  if (n8 == n) return ReduceAvx2(acc);
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (size_t i = n8; i < n; ++i) lanes[i - n8] += a[i] * b[i];
  return ReduceAvx2(_mm256_load_ps(lanes));
}

float SquaredL2Avx2(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                   _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
  }
  if (n8 == n) return ReduceAvx2(acc);
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (size_t i = n8; i < n; ++i) {
    const float d = a[i] - b[i];
    lanes[i - n8] += d * d;
  }
  return ReduceAvx2(_mm256_load_ps(lanes));
}

void AxpyAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 vy = _mm256_add_ps(
        _mm256_loadu_ps(y + i), _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
    _mm256_storeu_ps(y + i, vy);
  }
  for (size_t i = n8; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(float alpha, float* x, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (size_t i = n8; i < n; ++i) x[i] *= alpha;
}

// One 8-code block: codes -> exact float values (uint8 fits a float
// mantissa), dequantize against step, subtract from the prepared query.
inline __m256 Sq8Delta(const float* qt, const float* step,
                       const uint8_t* codes) {
  const __m128i c8 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes));
  const __m256 cf = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(c8));
  return _mm256_sub_ps(_mm256_loadu_ps(qt),
                       _mm256_mul_ps(_mm256_loadu_ps(step), cf));
}

float Sq8AsymL2Avx2(const float* qt, const float* step, const uint8_t* codes,
                    size_t n) {
  // Two accumulator chains over 16-code blocks (the sq8 accumulation
  // contract in vector_ops.h): the convert->sub->mul feeding each add
  // makes a single chain latency-bound, two chains overlap it.
  __m256 chain0 = _mm256_setzero_ps();
  __m256 chain1 = _mm256_setzero_ps();
  const size_t n16 = n - n % 16;
  for (size_t i = 0; i < n16; i += 16) {
    const __m256 d0 = Sq8Delta(qt + i, step + i, codes + i);
    chain0 = _mm256_add_ps(chain0, _mm256_mul_ps(d0, d0));
    const __m256 d1 = Sq8Delta(qt + i + 8, step + i + 8, codes + i + 8);
    chain1 = _mm256_add_ps(chain1, _mm256_mul_ps(d1, d1));
  }
  if (n16 == n) {
    return ReduceAvx2(_mm256_add_ps(chain0, chain1));
  }
  alignas(32) float tail[16];
  _mm256_store_ps(tail, chain0);
  _mm256_store_ps(tail + 8, chain1);
  for (size_t i = n16; i < n; ++i) {
    const float d = qt[i] - step[i] * static_cast<float>(codes[i]);
    tail[i - n16] += d * d;
  }
  const __m256 merged = _mm256_add_ps(_mm256_load_ps(tail),
                                      _mm256_load_ps(tail + 8));
  return ReduceAvx2(merged);
}

void Sq8AsymL2x4Avx2(const float* const qts[4], const float* step,
                     const uint8_t* codes, size_t n, float out[4]) {
  // One shared dequantization (cvt + step-mul) per 8-code block, four
  // queries scored against it, each with the contract's two
  // accumulator chains. Per query this is the same float sequence as
  // Sq8AsymL2Avx2 — the shared product is one rounded value either
  // way — so out[k] is bit-identical to a single call, while the
  // decode work is paid once instead of four times.
  __m256 chain0[4] = {_mm256_setzero_ps(), _mm256_setzero_ps(),
                      _mm256_setzero_ps(), _mm256_setzero_ps()};
  __m256 chain1[4] = {_mm256_setzero_ps(), _mm256_setzero_ps(),
                      _mm256_setzero_ps(), _mm256_setzero_ps()};
  const size_t n16 = n - n % 16;
  for (size_t i = 0; i < n16; i += 16) {
    const __m128i c0 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m256 dec0 = _mm256_mul_ps(
        _mm256_loadu_ps(step + i),
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(c0)));
    const __m128i c1 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(codes + i + 8));
    const __m256 dec1 = _mm256_mul_ps(
        _mm256_loadu_ps(step + i + 8),
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(c1)));
    for (int k = 0; k < 4; ++k) {
      const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(qts[k] + i), dec0);
      chain0[k] = _mm256_add_ps(chain0[k], _mm256_mul_ps(d0, d0));
      const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(qts[k] + i + 8), dec1);
      chain1[k] = _mm256_add_ps(chain1[k], _mm256_mul_ps(d1, d1));
    }
  }
  if (n16 == n) {
    for (int k = 0; k < 4; ++k) {
      out[k] = ReduceAvx2(_mm256_add_ps(chain0[k], chain1[k]));
    }
    return;
  }
  alignas(32) float tail[4][16];
  for (int k = 0; k < 4; ++k) {
    _mm256_store_ps(tail[k], chain0[k]);
    _mm256_store_ps(tail[k] + 8, chain1[k]);
  }
  for (size_t i = n16; i < n; ++i) {
    const float dec = step[i] * static_cast<float>(codes[i]);
    for (int k = 0; k < 4; ++k) {
      const float d = qts[k][i] - dec;
      tail[k][i - n16] += d * d;
    }
  }
  for (int k = 0; k < 4; ++k) {
    const __m256 merged = _mm256_add_ps(_mm256_load_ps(tail[k]),
                                        _mm256_load_ps(tail[k] + 8));
    out[k] = ReduceAvx2(merged);
  }
}

// --- Trainer kernels: elementwise, mirroring the scalar baseline's
// per-element operation order exactly (no FMA: -ffp-contract=off), so
// results are bit-identical to vector_ops.cc. vsqrtps and vdivps are
// IEEE correctly rounded, same as their scalar counterparts.

void Axpy2Avx2(float a, const float* x1, float b, const float* x2, float* y,
               size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  const __m256 vb = _mm256_set1_ps(b);
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 t = _mm256_add_ps(_mm256_mul_ps(va, _mm256_loadu_ps(x1 + i)),
                                   _mm256_mul_ps(vb, _mm256_loadu_ps(x2 + i)));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), t));
  }
  for (size_t i = n8; i < n; ++i) y[i] += a * x1[i] + b * x2[i];
}

void TripletGradAvx2(const float* s, const float* p, const float* n_,
                     float inv_dpos, float inv_dneg, float* gs, float* gp,
                     float* gn, size_t n) {
  const __m256 vip = _mm256_set1_ps(inv_dpos);
  const __m256 vin = _mm256_set1_ps(inv_dneg);
  const __m256 vzero = _mm256_setzero_ps();
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 vs = _mm256_loadu_ps(s + i);
    const __m256 up = _mm256_mul_ps(
        _mm256_sub_ps(vs, _mm256_loadu_ps(p + i)), vip);
    const __m256 un = _mm256_mul_ps(
        _mm256_sub_ps(vs, _mm256_loadu_ps(n_ + i)), vin);
    _mm256_storeu_ps(gs + i, _mm256_sub_ps(up, un));
    _mm256_storeu_ps(gp + i, _mm256_sub_ps(vzero, up));
    _mm256_storeu_ps(gn + i, un);
  }
  for (size_t i = n8; i < n; ++i) {
    const float up = (s[i] - p[i]) * inv_dpos;
    const float un = (s[i] - n_[i]) * inv_dneg;
    gs[i] = up - un;
    gp[i] = -up;
    gn[i] = un;
  }
}

void AdamUpdateAvx2(float* params, const float* grads, float* m, float* v,
                    float beta1, float beta2, float alpha, float eps,
                    size_t n) {
  const float omb1s = 1.0f - beta1;
  const float omb2s = 1.0f - beta2;
  const __m256 vb1 = _mm256_set1_ps(beta1);
  const __m256 vb2 = _mm256_set1_ps(beta2);
  const __m256 vomb1 = _mm256_set1_ps(omb1s);
  const __m256 vomb2 = _mm256_set1_ps(omb2s);
  const __m256 valpha = _mm256_set1_ps(alpha);
  const __m256 veps = _mm256_set1_ps(eps);
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 g = _mm256_loadu_ps(grads + i);
    const __m256 mi = _mm256_add_ps(
        _mm256_mul_ps(vb1, _mm256_loadu_ps(m + i)), _mm256_mul_ps(vomb1, g));
    const __m256 vi = _mm256_add_ps(
        _mm256_mul_ps(vb2, _mm256_loadu_ps(v + i)),
        _mm256_mul_ps(vomb2, _mm256_mul_ps(g, g)));
    _mm256_storeu_ps(m + i, mi);
    _mm256_storeu_ps(v + i, vi);
    const __m256 upd = _mm256_div_ps(
        _mm256_mul_ps(valpha, mi),
        _mm256_add_ps(_mm256_sqrt_ps(vi), veps));
    _mm256_storeu_ps(params + i, _mm256_sub_ps(_mm256_loadu_ps(params + i),
                                               upd));
  }
  for (size_t i = n8; i < n; ++i) {
    const float g = grads[i];
    const float mi = beta1 * m[i] + omb1s * g;
    const float vi = beta2 * v[i] + omb2s * (g * g);
    m[i] = mi;
    v[i] = vi;
    params[i] -= (alpha * mi) / (std::sqrt(vi) + eps);
  }
}

constexpr DistanceKernel kAvx2Kernel = {
    "avx2",          DotAvx2,         SquaredL2Avx2,
    AxpyAvx2,        ScaleAvx2,       Sq8AsymL2Avx2,
    Sq8AsymL2x4Avx2, Axpy2Avx2,       TripletGradAvx2,
    AdamUpdateAvx2};

}  // namespace

namespace internal {
const DistanceKernel& Avx2Kernel() { return kAvx2Kernel; }
}  // namespace internal

}  // namespace kpef

#endif  // KPEF_HAVE_AVX2

// AVX2 implementations of the DistanceKernel. This translation unit is
// the only one compiled with -mavx2; callers must go through
// Avx2KernelOrNull(), which checks CPUID before handing the pointers
// out. Compiled with -ffp-contract=off so mul+add never fuses into FMA:
// per the contract in vector_ops.h, each lane here performs the same
// float operations as the scalar baseline's lane, keeping the two paths
// bit-identical.

#if defined(KPEF_HAVE_AVX2)

#include <immintrin.h>

#include <cstddef>

#include "embed/vector_ops.h"

namespace kpef {
namespace {

inline float ReduceAvx2(__m256 acc) {
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  const __m128 m = _mm_add_ps(lo, hi);                 // lanes j + j+4
  const __m128 t = _mm_add_ps(m, _mm_movehl_ps(m, m)); // (0+4)+(2+6), (1+5)+(3+7)
  return _mm_cvtss_f32(_mm_add_ss(t, _mm_shuffle_ps(t, t, 0x55)));
}

float DotAvx2(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
  }
  if (n8 == n) return ReduceAvx2(acc);
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (size_t i = n8; i < n; ++i) lanes[i - n8] += a[i] * b[i];
  return ReduceAvx2(_mm256_load_ps(lanes));
}

float SquaredL2Avx2(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                   _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
  }
  if (n8 == n) return ReduceAvx2(acc);
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (size_t i = n8; i < n; ++i) {
    const float d = a[i] - b[i];
    lanes[i - n8] += d * d;
  }
  return ReduceAvx2(_mm256_load_ps(lanes));
}

void AxpyAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    const __m256 vy = _mm256_add_ps(
        _mm256_loadu_ps(y + i), _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
    _mm256_storeu_ps(y + i, vy);
  }
  for (size_t i = n8; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(float alpha, float* x, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  const size_t n8 = n - n % 8;
  for (size_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (size_t i = n8; i < n; ++i) x[i] *= alpha;
}

constexpr DistanceKernel kAvx2Kernel = {
    "avx2", DotAvx2, SquaredL2Avx2, AxpyAvx2, ScaleAvx2};

}  // namespace

namespace internal {
const DistanceKernel& Avx2Kernel() { return kAvx2Kernel; }
}  // namespace internal

}  // namespace kpef

#endif  // KPEF_HAVE_AVX2

// Dense row-major float matrix used for embedding tables, projection
// weights, and ANN point sets.
//
// Storage contract (relied on by the kernels in embed/vector_ops.h):
//  - the buffer is 32-byte aligned and every row starts at a 32-byte
//    boundary (the row stride is padded to a multiple of 8 floats), and
//  - the padding tail of every row is always exactly 0.0f.
// Row() exposes only the logical `cols` values, so ordinary mutation
// cannot break the invariant; PaddedRow() exposes the stride-wide span
// for kernel calls that want a tail-free 8-wide hot loop (the zero
// padding contributes exact zero terms, so results are identical to the
// logical-width call).

#ifndef KPEF_EMBED_MATRIX_H_
#define KPEF_EMBED_MATRIX_H_

#include <cstddef>
#include <span>

#include "common/aligned_buffer.h"
#include "common/logging.h"

namespace kpef {

/// Row-major dense matrix of floats. Rows are the unit of access
/// (embedding per token / document).
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows),
        cols_(cols),
        stride_(PadToKernelWidth(cols)),
        data_(rows * stride_, 0.0f) {
    if (fill != 0.0f) Fill(fill);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Allocated floats per row (cols rounded up to a multiple of 8).
  size_t stride() const { return stride_; }

  std::span<float> Row(size_t r) {
    KPEF_CHECK(r < rows_);
    return {data_.data() + r * stride_, cols_};
  }
  std::span<const float> Row(size_t r) const {
    KPEF_CHECK(r < rows_);
    return {data_.data() + r * stride_, cols_};
  }

  /// The full stride-wide row: `cols` values followed by zero padding.
  /// 32-byte aligned; pair with another PaddedRow (or a PadToAligned
  /// buffer) so distance kernels run without a tail loop.
  std::span<const float> PaddedRow(size_t r) const {
    KPEF_CHECK(r < rows_);
    return {data_.data() + r * stride_, stride_};
  }

  float& At(size_t r, size_t c) { return data_[r * stride_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * stride_ + c]; }

  /// Sets every logical value (padding stays zero).
  void Fill(float value) {
    for (size_t r = 0; r < rows_; ++r) {
      float* row = data_.data() + r * stride_;
      for (size_t c = 0; c < cols_; ++c) row[c] = value;
      for (size_t c = cols_; c < stride_; ++c) row[c] = 0.0f;
    }
  }

  /// Appends a row (values.size() must equal cols; padding stays zero).
  /// Streaming ingestion appends one embedding per new document; existing
  /// rows are untouched, so serialized prefixes stay byte-identical.
  void AppendRow(std::span<const float> values) {
    KPEF_CHECK(values.size() == cols_);
    data_.resize((rows_ + 1) * stride_, 0.0f);
    float* row = data_.data() + rows_ * stride_;
    for (size_t c = 0; c < cols_; ++c) row[c] = values[c];
    ++rows_;
  }

  /// Total allocated floats (rows * stride), e.g. for memory accounting.
  size_t PaddedSize() const { return rows_ * stride_; }

  /// Logical element-wise equality (padding excluded).
  bool operator==(const Matrix& other) const {
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    for (size_t r = 0; r < rows_; ++r) {
      const auto a = Row(r);
      const auto b = other.Row(r);
      for (size_t c = 0; c < cols_; ++c) {
        if (a[c] != b[c]) return false;
      }
    }
    return true;
  }
  bool operator!=(const Matrix& other) const { return !(*this == other); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  AlignedVector data_;
};

}  // namespace kpef

#endif  // KPEF_EMBED_MATRIX_H_

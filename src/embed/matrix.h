// Dense row-major float matrix used for embedding tables and projection
// weights.

#ifndef KPEF_EMBED_MATRIX_H_
#define KPEF_EMBED_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/logging.h"

namespace kpef {

/// Row-major dense matrix of floats. Rows are the unit of access
/// (embedding per token / document).
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  std::span<float> Row(size_t r) {
    KPEF_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> Row(size_t r) const {
    KPEF_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void Fill(float value) { data_.assign(data_.size(), value); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace kpef

#endif  // KPEF_EMBED_MATRIX_H_

// Dense float-vector kernels shared by the embedding models and the ANN
// stack, behind a runtime-dispatched DistanceKernel.
//
// ## Accumulation contract
//
// Every reducing kernel (dot, squared L2) accumulates in eight
// independent float lanes: element i is added into lane i % 8, and the
// lanes are reduced in the fixed order
//
//   result = ((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))
//
// which is exactly the horizontal reduction of one AVX2 register
// (low/high halves, then movehl, then scalar add). The scalar baseline
// implements the same lane assignment and reduction order, and the AVX2
// translation unit is compiled with floating-point contraction disabled,
// so the two paths are **bit-identical** on identical inputs — selecting
// a different kernel at runtime can never change a result. Tests assert
// exact equality between paths (tests/kernel_test.cc).
//
// Against an infinitely precise reference, the lane scheme behaves like
// pairwise summation over n/8 chunks: the absolute error of dot(a, b) is
// bounded by ~(n/8 + 3) * eps * sum_i |a_i * b_i| with float eps
// (2^-24). For the library's operating range (n <= 4096, unit-ish
// vectors) results agree with a double-precision reference to within
// 1e-4 relative error; kernel_test checks that tolerance on random and
// adversarial inputs.
//
// ## Alignment
//
// Kernels accept any pointers/lengths (there is an in-loop scalar tail
// for n % 8 != 0), but the fast path is full 8-float groups. Matrix
// (embed/matrix.h) stores rows 32-byte aligned and zero-padded to a
// multiple of 8 floats, so row-vs-row and row-vs-padded-query calls run
// the hot loop with no tail at all: zero padding contributes exact zero
// terms to every lane. Pad free-standing queries with PadToAligned()
// (common/aligned_buffer.h) to get the same guarantee.

#ifndef KPEF_EMBED_VECTOR_OPS_H_
#define KPEF_EMBED_VECTOR_OPS_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace kpef {

/// One implementation of the hot vector kernels. All function pointers
/// are non-null. Implementations obey the accumulation contract above.
struct DistanceKernel {
  const char* name;
  float (*dot)(const float* a, const float* b, size_t n);
  float (*squared_l2)(const float* a, const float* b, size_t n);
  /// y += alpha * x
  void (*axpy)(float alpha, const float* x, float* y, size_t n);
  /// x *= alpha
  void (*scale)(float alpha, float* x, size_t n);
  /// Asymmetric squared L2 between a prepared fp32 query and one SQ8
  /// code row (ann/sq8.h): sum over i of (qt[i] - step[i] * codes[i])^2,
  /// where qt[i] = query[i] - min[i] was precomputed once per query.
  ///
  /// Sq8 accumulation contract: *sixteen* virtual lanes as two 8-lane
  /// chains — element i accumulates into chain (i % 16) / 8, lane
  /// i % 8; the chains are added lane-wise and the result reduced in
  /// the same fixed order as the fp32 kernels. The extra chain exists
  /// because the uint8 -> float convert + dequantize feeding each
  /// accumulate makes a single 8-lane chain latency-bound; the fp32
  /// kernels keep the plain 8-lane scheme. Scalar and AVX2 paths
  /// implement the identical order and stay bit-identical (the
  /// conversion is exact; no FMA contraction on either path). Padding
  /// tails with qt = step = 0 contribute exact zero terms.
  float (*sq8_asym_l2)(const float* qt, const float* step,
                       const uint8_t* codes, size_t n);
  /// Four asymmetric squared L2 distances against the *same* SQ8 code
  /// row: out[k] = sum over i of (qts[k][i] - step[i] * codes[i])^2.
  /// The batched PG-Index search uses this when several queries of a
  /// lockstep group expand the same node — the row's dequantization
  /// (step[i] * codes[i]) is computed once and shared, and the four
  /// accumulator chains are independent, so the per-query cost drops
  /// well below four single-row calls. Each out[k] is bit-identical to
  /// sq8_asym_l2(qts[k], step, codes, n): the shared product is the
  /// same rounded float, and each query keeps its own 8-lane
  /// accumulation per the contract above. qts entries may repeat (a
  /// short group pads with a duplicate pointer).
  void (*sq8_asym_l2x4)(const float* const qts[4], const float* step,
                        const uint8_t* codes, size_t n, float out[4]);
  /// Fused two-term axpy: y += a * x1 + b * x2. Elementwise in index
  /// order — y[i] + (a*x1[i] + b*x2[i]) with one rounding per arithmetic
  /// op and no FMA contraction — so, having no accumulator lanes at all,
  /// the scalar and AVX2 paths are bit-identical by construction. Used by
  /// the encoder's normalization backprop (a*grad_out + b*output in one
  /// pass).
  void (*axpy2)(float a, const float* x1, float b, const float* x2, float* y,
                size_t n);
  /// Triplet-loss input gradients (embed/triplet.h). Given the three
  /// encoded vectors and the *reciprocal* distances inv_dpos = 1/δ(s,p),
  /// inv_dneg = 1/δ(s,n), overwrites
  ///   gs[i] = (s[i]-p[i])*inv_dpos - (s[i]-n[i])*inv_dneg
  ///   gp[i] = -(s[i]-p[i])*inv_dpos
  ///   gn[i] =  (s[i]-n[i])*inv_dneg
  /// Elementwise (sub, mul, sub/neg per element, fixed order, no FMA), so
  /// scalar and AVX2 are bit-identical.
  void (*triplet_grad)(const float* s, const float* p, const float* n_,
                       float inv_dpos, float inv_dneg, float* gs, float* gp,
                       float* gn, size_t n);
  /// Fused Adam moment + parameter update (embed/adam.h), all float32:
  ///   m[i] = b1*m[i] + (1-b1)*g      (two mults, one add)
  ///   v[i] = b2*v[i] + (1-b2)*(g*g)
  ///   p[i] -= (alpha*m[i]) / (sqrt(v[i]) + eps)
  /// sqrt and div are IEEE correctly rounded on both paths and there are
  /// no reductions, so scalar and AVX2 are bit-identical. `alpha` is the
  /// bias-corrected step size, folded by the caller once per step.
  void (*adam_update)(float* params, const float* grads, float* m, float* v,
                      float beta1, float beta2, float alpha, float eps,
                      size_t n);
};

/// The portable 8-lane-unrolled baseline. Always available.
const DistanceKernel& ScalarKernel();

/// The AVX2 kernel, or nullptr when the binary was built without AVX2
/// support (KPEF_ENABLE_AVX2=OFF) or the CPU lacks it.
const DistanceKernel* Avx2KernelOrNull();

/// The kernel every vector op below routes through. Chosen once, at
/// first use: AVX2 when compiled in and supported by the CPU, unless the
/// environment variable KPEF_SIMD=scalar forces the baseline.
const DistanceKernel& ActiveKernel();

/// Dot product. Spans must have equal size.
float Dot(std::span<const float> a, std::span<const float> b);

/// Squared L2 distance ||a - b||^2.
float SquaredL2Distance(std::span<const float> a, std::span<const float> b);

/// Asymmetric squared L2 between a prepared query (qt = query - mins)
/// and an SQ8 code row, with per-dimension dequantization steps. All
/// three spans must have equal size.
float Sq8AsymmetricSquaredL2(std::span<const float> qt,
                             std::span<const float> step,
                             std::span<const uint8_t> codes);

/// L2 norm distance δ(a, b) = ||a - b||_2 (the paper's distance).
float L2Distance(std::span<const float> a, std::span<const float> b);

/// Euclidean norm ||a||_2.
float L2Norm(std::span<const float> a);

/// y += alpha * x.
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void Scale(float alpha, std::span<float> x);

/// Normalizes x to unit L2 norm; leaves the zero vector untouched.
void NormalizeL2(std::span<float> x);

/// Cosine similarity; 0 when either vector is zero.
float CosineSimilarity(std::span<const float> a, std::span<const float> b);

}  // namespace kpef

#endif  // KPEF_EMBED_VECTOR_OPS_H_

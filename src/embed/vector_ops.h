// Small dense float-vector kernels shared by the embedding models and the
// ANN index.

#ifndef KPEF_EMBED_VECTOR_OPS_H_
#define KPEF_EMBED_VECTOR_OPS_H_

#include <cstddef>
#include <span>

namespace kpef {

/// Dot product. Spans must have equal size.
float Dot(std::span<const float> a, std::span<const float> b);

/// Squared L2 distance ||a - b||^2.
float SquaredL2Distance(std::span<const float> a, std::span<const float> b);

/// L2 norm distance δ(a, b) = ||a - b||_2 (the paper's distance).
float L2Distance(std::span<const float> a, std::span<const float> b);

/// Euclidean norm ||a||_2.
float L2Norm(std::span<const float> a);

/// y += alpha * x.
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void Scale(float alpha, std::span<float> x);

/// Normalizes x to unit L2 norm; leaves the zero vector untouched.
void NormalizeL2(std::span<float> x);

/// Cosine similarity; 0 when either vector is zero.
float CosineSimilarity(std::span<const float> a, std::span<const float> b);

}  // namespace kpef

#endif  // KPEF_EMBED_VECTOR_OPS_H_
